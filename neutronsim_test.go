package neutronsim

import (
	"testing"
)

func TestDeviceCatalog(t *testing.T) {
	devices := Devices()
	if len(devices) != 8 {
		t.Fatalf("%d devices, want 8", len(devices))
	}
	for _, d := range devices {
		got, err := DeviceByName(d.Name)
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != d.Name {
			t.Errorf("lookup returned %s", got.Name)
		}
	}
	if _, err := DeviceByName("ENIAC"); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestWorkloadsList(t *testing.T) {
	if len(Workloads()) != 9 {
		t.Errorf("%d workloads, want 9", len(Workloads()))
	}
}

func TestFacadeAssessPipeline(t *testing.T) {
	d, err := DeviceByName("K20")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Assess(d, []string{"MxM"}, QuickBudget(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.FIT(DataCenter(NYC()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() <= 0 {
		t.Error("no FIT from facade pipeline")
	}
	rows := RatioTable([]*Assessment{a})
	if len(rows) != 1 || rows[0].Device != "K20" {
		t.Errorf("ratio table: %+v", rows)
	}
	shares, err := ShareTable([]*Assessment{a}, []Environment{DataCenter(Leadville())})
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 1 || shares[0].SDCThermalShare <= 0 {
		t.Errorf("share table: %+v", shares)
	}
}

func TestFacadeLocations(t *testing.T) {
	if NYC().FastFluxPerHour <= 0 {
		t.Error("NYC fluxless")
	}
	if Leadville().FastFluxPerHour <= NYC().FastFluxPerHour {
		t.Error("Leadville should exceed NYC")
	}
	if AtAltitude("x", 1000).FastFluxPerHour <= NYC().FastFluxPerHour {
		t.Error("altitude scaling broken")
	}
}

func TestFacadeMemory(t *testing.T) {
	res, err := RunMemoryCampaign(DDR3Module(), 3, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == 0 {
		t.Error("no memory events in 3 h")
	}
	if DDR4Module().Generation != DDR4 {
		t.Error("generation constant mismatch")
	}
}

func TestFacadeWaterExperiment(t *testing.T) {
	res, err := RunWaterExperiment(3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Change.Significant {
		t.Error("water step not detected through the facade")
	}
}

func TestFacadeTop10(t *testing.T) {
	rows, err := ProjectTop10(Top10(), map[MemoryGeneration]CrossSection{
		DDR3: 1e-10,
		DDR4: 1e-11,
	}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Errorf("%d rows", len(rows))
	}
}

func TestFacadeComputeFIT(t *testing.T) {
	rep, err := ComputeFIT(Sigmas{SDCFast: 1e-9, SDCThermal: 1e-9}, DataCenter(NYC()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.SDC.ThermalShare() <= 0 {
		t.Error("no thermal share")
	}
}

func TestFacadeFleetPipeline(t *testing.T) {
	site := AtAltitude("test site", 2000)
	sigmas := Sigmas{SDCFast: 8e-7, SDCThermal: 8e-7, DUEFast: 3e-7, DUEThermal: 3e-7}
	log, err := SimulateFleet(FleetConfig{
		Classes: []NodeClass{
			{Name: "a", Count: 500, Env: Environment{Location: site, ConcreteFloor: true}, Sigmas: sigmas},
			{Name: "b", Count: 500, Env: DataCenter(site), Sigmas: sigmas},
		},
		Days:            60,
		RainProbability: 0.3,
		Seed:            5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeFleet(log)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerClass) != 2 || len(rep.Comparisons) != 1 {
		t.Errorf("report shape: %+v", rep)
	}
}

func TestFacadeCheckpointPlan(t *testing.T) {
	plan, err := PlanCheckpoints(FIT(3e6), FIT(4.5e6), 1800, []WeatherDay{
		{Raining: false}, {Raining: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Days) != 2 {
		t.Fatalf("plan days: %d", len(plan.Days))
	}
	if plan.Days[1].IntervalSeconds >= plan.Days[0].IntervalSeconds {
		t.Error("rainy interval should be shorter")
	}
}

func TestFacadeDossierAndJob(t *testing.T) {
	d, err := DeviceByName("TitanX")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Assess(d, []string{"HotSpot"}, QuickBudget(), 9)
	if err != nil {
		t.Fatal(err)
	}
	md, err := ReliabilityDossier(a, []Environment{DataCenter(NYC())}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(md) == 0 {
		t.Fatal("empty dossier")
	}
	res, err := SimulateJob(JobParams{
		MTBFSeconds:       6 * 3600,
		IntervalSeconds:   1800,
		CheckpointSeconds: 60,
		RestartSeconds:    300,
		HorizonSeconds:    30 * 86400,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Goodput <= 0 || res.Goodput >= 1 {
		t.Errorf("goodput = %v", res.Goodput)
	}
}
