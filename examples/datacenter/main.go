// Datacenter: a Trinity-like supercomputer at Los Alamos altitude. The
// example shows the two environment effects the paper measured — node
// placement near water-cooling loops and the concrete machine-room slab —
// and the memory story: DDR4 fleets, rainy days, and what SECDED buys.
package main

import (
	"fmt"
	"log"

	"neutronsim"
)

func main() {
	// Los Alamos sits at ~2231 m; the site flux dwarfs sea level.
	site := neutronsim.AtAltitude("Los Alamos, NM", 2231)
	fmt.Printf("site: %s — fast %.0f n/cm²/h, thermal (bare) %.0f n/cm²/h\n\n",
		site.Name, site.FastFluxPerHour, site.ThermalFluxPerHour)

	// Assess the compute device once; reuse it for every node position.
	phi, err := neutronsim.DeviceByName("XeonPhi")
	if err != nil {
		log.Fatal(err)
	}
	assessment, err := neutronsim.Assess(phi, nil, neutronsim.QuickBudget(), 7)
	if err != nil {
		log.Fatal(err)
	}

	// Node positions: away from the cooling loops vs right next to them.
	positions := []struct {
		name string
		env  neutronsim.Environment
	}{
		{"dry aisle (concrete only)", neutronsim.Environment{Location: site, ConcreteFloor: true}},
		{"next to cooling pipes", neutronsim.DataCenter(site)},
	}
	fmt.Println("per-node accelerator failure rates:")
	for _, p := range positions {
		rep, err := assessment.FIT(p.env)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s total %8.4g FIT  (thermal share SDC %.1f%%, DUE %.1f%%)\n",
			p.name, float64(rep.Total()),
			rep.SDC.ThermalShare()*100, rep.DUE.ThermalShare()*100)
	}

	// The memory fleet: measure DDR4 per-Gbit sensitivity at ROTAX, then
	// project the full 2 PB system, with and without SECDED.
	fmt.Println("\nmemory fleet (2070 TB DDR4):")
	mem, err := neutronsim.RunMemoryCampaign(neutronsim.DDR4Module(), 40, true, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  measured σ/Gbit = %.3g cm² (%d events)\n", mem.SigmaPerGbit.Rate, mem.Events)

	rows, err := neutronsim.ProjectTop10(neutronsim.Top10(),
		map[neutronsim.MemoryGeneration]neutronsim.CrossSection{
			neutronsim.DDR3: neutronsim.CrossSection(mem.SigmaPerGbit.Rate * 10), // paper: DDR3 ≈ 10× DDR4
			neutronsim.DDR4: neutronsim.CrossSection(mem.SigmaPerGbit.Rate),
		}, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		if r.Machine.Name != "Trinity" {
			continue
		}
		fmt.Printf("  Trinity DDR thermal FIT: %v (rainy day %v, with SECDED %v)\n",
			r.ThermalFIT, r.RainyDayFIT, r.WithECC)
		fmt.Printf("  i.e. one thermal-neutron memory event every %.1f h on a dry day\n",
			r.ThermalFIT.MTBF())
	}
}
