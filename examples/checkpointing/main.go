// Checkpointing: the paper closes §VI by suggesting that "the checkpoint
// frequency may need to consider weather conditions" — rain doubles the
// thermal-neutron flux, raising the DUE rate of thermally sensitive
// machines. This example measures a device, scales it to a full machine,
// and plans a week of weather-aware checkpoint intervals.
package main

import (
	"fmt"
	"log"

	"neutronsim"
	"neutronsim/internal/checkpoint"
)

func main() {
	// The APU is the catalog's most thermally DUE-sensitive part.
	apu, err := neutronsim.DeviceByName("APU-CPU+GPU")
	if err != nil {
		log.Fatal(err)
	}
	assessment, err := neutronsim.Assess(apu, nil, neutronsim.QuickBudget(), 51)
	if err != nil {
		log.Fatal(err)
	}

	site := neutronsim.AtAltitude("Los Alamos, NM", 2231)
	sunny, err := assessment.FIT(neutronsim.DataCenter(site))
	if err != nil {
		log.Fatal(err)
	}
	rainyEnv := neutronsim.DataCenter(site)
	rainyEnv.Raining = true
	rainy, err := assessment.FIT(rainyEnv)
	if err != nil {
		log.Fatal(err)
	}

	const nodes = 9000
	sunnyDUE := neutronsim.FIT(float64(sunny.DUE.Total()) * nodes)
	rainyDUE := neutronsim.FIT(float64(rainy.DUE.Total()) * nodes)
	fmt.Printf("machine: %d × %s at %s\n", nodes, apu.Name, site.Name)
	fmt.Printf("system DUE rate: %.3g FIT sunny → %.3g FIT rainy (+%.0f%%)\n\n",
		float64(sunnyDUE), float64(rainyDUE),
		(float64(rainyDUE)/float64(sunnyDUE)-1)*100)

	week := []checkpoint.Day{
		{Raining: false}, {Raining: false}, {Raining: true}, {Raining: true},
		{Raining: true}, {Raining: false}, {Raining: false},
	}
	plan, err := checkpoint.PlanSchedule(sunnyDUE, rainyDUE, 1800, week)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-5s %-8s %10s %16s %10s\n", "day", "weather", "MTBF [h]", "interval [min]", "waste")
	for i, d := range plan.Days {
		weather := "sunny"
		if d.Raining {
			weather = "rainy"
		}
		fmt.Printf("%-5d %-8s %10.0f %16.0f %9.1f%%\n",
			i+1, weather, d.MTBFSeconds/3600, d.IntervalSeconds/60, d.AdaptiveWaste*100)
	}
	fmt.Printf("\nweek mean waste: adaptive %.2f%% vs static %.2f%% (saving %.3f%%)\n",
		plan.MeanAdaptiveWaste*100, plan.MeanStaticWaste*100, plan.Savings()*100)
	fmt.Println("the optimum is flat, so the saving is modest — but on rainy days")
	fmt.Println("the machine should checkpoint measurably more often.")
}
