// Quickstart: measure a device's fast and thermal neutron sensitivity with
// matched beam campaigns, then turn it into failure rates for a data
// center — the end-to-end pipeline of the paper in ~40 lines.
package main

import (
	"fmt"
	"log"

	"neutronsim"
)

func main() {
	// 1. Pick a device from the paper's catalog.
	k20, err := neutronsim.DeviceByName("K20")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device: %s (%s, %s)\n", k20.Name, k20.Vendor, k20.Process)

	// 2. Irradiate it at both beamlines while it runs its HPC benchmark
	//    set (ChipIR for high-energy neutrons, ROTAX for thermals).
	assessment, err := neutronsim.Assess(k20, nil, neutronsim.QuickBudget(), 1)
	if err != nil {
		log.Fatal(err)
	}
	sdcRatio, _, _ := assessment.SDCRatio()
	dueRatio, _, _ := assessment.DUERatio()
	fmt.Printf("fast:thermal cross-section ratio — SDC %.1f, DUE %.1f\n", sdcRatio, dueRatio)
	fmt.Println("(a ratio near 1 means thermal neutrons are as dangerous as fast ones)")

	// 3. Put the device in a water-cooled machine room over a concrete
	//    slab in New York City and compute its failure rates.
	env := neutronsim.DataCenter(neutronsim.NYC())
	report, err := assessment.FIT(env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nenvironment: %s\n", env)
	fmt.Printf("SDC: %v total, %.1f%% from thermal neutrons\n",
		report.SDC.Total(), report.SDC.ThermalShare()*100)
	fmt.Printf("DUE: %v total, %.1f%% from thermal neutrons\n",
		report.DUE.Total(), report.DUE.ThermalShare()*100)
	fmt.Printf("ignoring thermals would underestimate the rate by %.2fx\n",
		report.UnderestimationFactor())
}
