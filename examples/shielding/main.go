// Shielding: §VI of the paper notes that, unlike fast neutrons, thermals
// can be shielded — a thin cadmium sheet or inches of borated plastic —
// but both options are impractical near hot hardware. This example runs
// the transport engine over candidate shields and quantifies what each
// would buy a device, and what it costs.
package main

import (
	"fmt"
	"log"

	"neutronsim"
	"neutronsim/internal/materials"
	"neutronsim/internal/rng"
	"neutronsim/internal/transport"
	"neutronsim/internal/units"
)

func main() {
	s := rng.New(99)
	shields := []struct {
		name      string
		mat       *materials.Material
		thickness float64
		label     string
		caveat    string
	}{
		{"cadmium", materials.CadmiumSheet(), 0.1, "1 mm",
			"toxic when heated — cannot sit near hot devices or cooling loops"},
		{"borated PE 5%", materials.BoratedPolyethylene(0.05), 5.08, "2 in",
			"thermally insulates the device — blocks the cooling path"},
	}

	fmt.Println("shield survey (transport Monte Carlo):")
	type shieldResult struct {
		name    string
		thermal float64
	}
	var results []shieldResult
	for _, sh := range shields {
		thermalTrans, _, err := transport.ShieldTransmission(sh.mat, sh.thickness, 0.0253, 20000, s)
		if err != nil {
			log.Fatal(err)
		}
		fastTrans, _, err := transport.ShieldTransmission(sh.mat, sh.thickness, 14*units.MeV, 20000, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %-6s thermal transmission %5.2f%%, fast transmission %5.1f%%\n",
			sh.name, sh.label, thermalTrans*100, fastTrans*100)
		fmt.Printf("    caveat: %s\n", sh.caveat)
		results = append(results, shieldResult{sh.name, thermalTrans})
	}

	// What would a perfect thermal shield buy the worst-affected device?
	apu, err := neutronsim.DeviceByName("APU-CPU+GPU")
	if err != nil {
		log.Fatal(err)
	}
	assessment, err := neutronsim.Assess(apu, nil, neutronsim.QuickBudget(), 31)
	if err != nil {
		log.Fatal(err)
	}
	env := neutronsim.DataCenter(neutronsim.Leadville())
	unshielded, err := assessment.FIT(env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s at %s:\n", apu.Name, env)
	fmt.Printf("  unshielded: %8.4g FIT total (%.1f%% of DUEs from thermals)\n",
		float64(unshielded.Total()), unshielded.DUE.ThermalShare()*100)
	for _, r := range results {
		shieldedEnv := env
		shieldedEnv.ExtraThermalFactor = r.thermal // residual thermal flux
		if shieldedEnv.ExtraThermalFactor == 0 {
			shieldedEnv.ExtraThermalFactor = 1e-9
		}
		rep, err := assessment.FIT(shieldedEnv)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  behind %-14s %8.4g FIT total (%.1fx reduction)\n",
			r.name+":", float64(rep.Total()),
			float64(unshielded.Total())/float64(rep.Total()))
	}
	fmt.Println("\nthe residual rate is the irreducible fast-neutron component —")
	fmt.Println("shielding buys back exactly the thermal share and nothing more.")
}
