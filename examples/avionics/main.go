// Avionics: the paper's §II-A notes the fast flux "increases exponentially
// with altitude, reaching a maximum at about 60,000 ft", and its §VI lists
// fuel among the hydrogen-rich moderators around a vehicle's electronics.
// This example flies a COTS GPU from the ground to cruise altitude, with a
// kerosene tank near the avionics bay, and watches the failure rates.
package main

import (
	"fmt"
	"log"

	"neutronsim"
	"neutronsim/internal/materials"
	"neutronsim/internal/rng"
	"neutronsim/internal/transport"
	"neutronsim/internal/units"
)

func main() {
	gpu, err := neutronsim.DeviceByName("TitanX")
	if err != nil {
		log.Fatal(err)
	}
	assessment, err := neutronsim.Assess(gpu, []string{"YOLO"}, neutronsim.QuickBudget(), 61)
	if err != nil {
		log.Fatal(err)
	}

	// The fuel tank acts like the paper's water box: fast neutrons
	// thermalize in the kerosene and come back at the avionics.
	s := rng.New(62)
	fastSource := func(st *rng.Stream) units.Energy {
		return units.Energy(st.WattEnergy(0.988, 2.249) * 1e6)
	}
	albedo, err := transport.ThermalAlbedo(materials.Kerosene(), 30, 20000, fastSource, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kerosene tank thermal albedo (30 cm): %.3f\n\n", albedo)

	fmt.Printf("%-22s %12s %12s %12s %14s\n",
		"altitude", "fast n/cm²/h", "SDC FIT", "DUE FIT", "thermal share")
	for _, alt := range []float64{0, 3000, 8000, 12000, 18300} {
		site := neutronsim.AtAltitude(fmt.Sprintf("%.0f m", alt), alt)
		env := neutronsim.Environment{Location: site}
		// Fold the fuel-tank moderation in: albedo × coupling ×
		// fast:thermal ratio, like the machine-room water loops.
		ratio := site.FastFluxPerHour / site.ThermalFluxPerHour
		env.ExtraThermalFactor = 1 + albedo*0.5*ratio
		rep, err := assessment.FIT(env)
		if err != nil {
			log.Fatal(err)
		}
		total := rep.Total()
		share := float64(rep.SDC.Thermal+rep.DUE.Thermal) / float64(total)
		fmt.Printf("%-22s %12.3g %12.4g %12.4g %13.1f%%\n",
			site.Name, site.FastFluxPerHour,
			float64(rep.SDC.Total()), float64(rep.DUE.Total()), share*100)
	}
	fmt.Println("\nat cruise the same part fails hundreds of times more often than on")
	fmt.Println("the ground — and the fuel tank (like the passengers, who are mostly")
	fmt.Println("water) keeps feeding thermalized neutrons back at the avionics.")
}
