// Automotive: the paper's motivating corner case — a COTS GPU running a
// CNN object detector in an autonomous vehicle. The road is concrete, the
// weather changes, and reliability must be paramount: this example
// computes how the SDC/DUE rates of a TitanX running YOLO move between a
// sunny and a rainy day.
package main

import (
	"fmt"
	"log"

	"neutronsim"
)

func main() {
	gpu, err := neutronsim.DeviceByName("TitanX")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vehicle compute: %s (%s) running YOLO object detection\n\n",
		gpu.Name, gpu.Process)

	// Only the CNN matters for the driving stack.
	assessment, err := neutronsim.Assess(gpu, []string{"YOLO"}, neutronsim.QuickBudget(), 21)
	if err != nil {
		log.Fatal(err)
	}
	sdcRatio, _, _ := assessment.SDCRatio()
	fmt.Printf("measured fast:thermal SDC ratio: %.1f\n", sdcRatio)
	fmt.Println("(every thermal neutron matters ~1/3 as much as a fast one for this part)")

	// A city street: concrete road surface, no water cooling.
	street := neutronsim.Environment{Location: neutronsim.NYC(), ConcreteFloor: true}
	rainy := street
	rainy.Raining = true

	fmt.Printf("\n%-8s %12s %12s %12s %14s\n", "weather", "SDC FIT", "DUE FIT", "total FIT", "thermal share")
	var dry, wet neutronsim.FIT
	for _, sc := range []struct {
		name string
		env  neutronsim.Environment
	}{{"sunny", street}, {"rainy", rainy}} {
		rep, err := assessment.FIT(sc.env)
		if err != nil {
			log.Fatal(err)
		}
		total := rep.Total()
		thermalShare := float64(rep.SDC.Thermal+rep.DUE.Thermal) / float64(total)
		fmt.Printf("%-8s %12.4g %12.4g %12.4g %13.1f%%\n",
			sc.name, float64(rep.SDC.Total()), float64(rep.DUE.Total()),
			float64(total), thermalShare*100)
		if sc.name == "sunny" {
			dry = total
		} else {
			wet = total
		}
	}
	fmt.Printf("\nrain raises the error rate by %.1f%% — the paper's point:\n",
		(float64(wet)/float64(dry)-1)*100)
	fmt.Println("the thermal flux, unlike the fast flux, depends on the weather and")
	fmt.Println("the materials around the device, so a fleet's error rate does too.")
}
