package neutronsim

import (
	"context"
	"fmt"

	"neutronsim/internal/beam"
	"neutronsim/internal/checkpoint"
	"neutronsim/internal/core"
	"neutronsim/internal/detector"
	"neutronsim/internal/device"
	"neutronsim/internal/fit"
	"neutronsim/internal/fleet"
	"neutronsim/internal/jobsim"
	"neutronsim/internal/memsim"
	"neutronsim/internal/plan"
	"neutronsim/internal/report"
	"neutronsim/internal/rng"
	"neutronsim/internal/spectrum"
	"neutronsim/internal/units"
	"neutronsim/internal/workload"
)

// Core types re-exported as the public API surface.
type (
	// Device is a chip sensitivity model.
	Device = device.Device
	// Assessment is a device's measured fast/thermal sensitivity.
	Assessment = core.Assessment
	// Budget sets simulated beam time for an assessment.
	Budget = core.Budget
	// Bias opts campaigns into importance-sampled transport with per-band
	// oversampling factors (see Budget.Bias).
	Bias = plan.Bias
	// RatioRow is one line of the cross-section ratio table.
	RatioRow = core.RatioRow
	// ShareRow is one line of the thermal-FIT-share table.
	ShareRow = core.ShareRow
	// Location holds a site's natural neutron fluxes.
	Location = fit.Location
	// Environment is a located device's surroundings.
	Environment = fit.Environment
	// FITReport is a per-band FIT decomposition.
	FITReport = fit.Report
	// Sigmas are measured device cross sections.
	Sigmas = fit.Sigmas
	// Supercomputer describes a Top-10 machine.
	Supercomputer = fit.Supercomputer
	// SupercomputerFIT is a projected DDR thermal-FIT row.
	SupercomputerFIT = fit.SupercomputerFIT
	// ModuleSpec describes a DRAM module under test.
	ModuleSpec = memsim.ModuleSpec
	// MemoryResult is a DRAM correct-loop campaign outcome.
	MemoryResult = memsim.Result
	// BeamResult is one beam campaign outcome.
	BeamResult = beam.Result
	// Detector is a Tin-II instance.
	Detector = detector.Detector
	// WaterExperimentResult is the Fig. "turkeypan" reproduction.
	WaterExperimentResult = detector.WaterExperimentResult
	// FIT is a failure rate in failures per 10⁹ device-hours.
	FIT = units.FIT
	// CrossSection is a device cross section in cm².
	CrossSection = units.CrossSection
	// MemoryGeneration distinguishes DDR3 from DDR4.
	MemoryGeneration = memsim.Generation
)

// Memory generations.
const (
	DDR3 = memsim.DDR3
	DDR4 = memsim.DDR4
)

// Devices returns the full device catalog (including the three APU
// configurations).
func Devices() []*Device { return device.All() }

// DeviceByName looks a catalog device up by name.
func DeviceByName(name string) (*Device, error) {
	for _, d := range device.All() {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("neutronsim: unknown device %q", name)
}

// Workloads lists the benchmark names.
func Workloads() []string { return workload.Names() }

// Assess measures a device's fast and thermal sensitivity with matched
// ChipIR/ROTAX campaigns. Pass nil workloads for the paper's default
// assignment and DefaultBudget or QuickBudget for the beam time.
func Assess(d *Device, workloads []string, b Budget, seed uint64) (*Assessment, error) {
	return core.Assess(d, workloads, b, seed)
}

// AssessContext is Assess with a caller context, so long assessments can be
// canceled (e.g. on SIGINT) and observed per campaign.
func AssessContext(ctx context.Context, d *Device, workloads []string, b Budget, seed uint64) (*Assessment, error) {
	return core.AssessContext(ctx, d, workloads, b, seed)
}

// DefaultBudget gives production-quality campaign statistics.
func DefaultBudget() Budget { return core.DefaultBudget() }

// QuickBudget trades precision for speed while preserving all ratios.
func QuickBudget() Budget { return core.QuickBudget() }

// RatioTable builds the paper's Fig. cs_ratio table.
func RatioTable(as []*Assessment) []RatioRow { return core.RatioTable(as) }

// ShareTable builds the thermal-FIT-share table across environments.
func ShareTable(as []*Assessment, envs []Environment) ([]ShareRow, error) {
	return core.ShareTable(as, envs)
}

// NYC is the sea-level reference site.
func NYC() Location { return fit.NYC() }

// Leadville is the 10,151 ft reference site.
func Leadville() Location { return fit.Leadville() }

// AtAltitude scales the reference fluxes to an altitude in meters.
func AtAltitude(name string, meters float64) Location { return fit.AtAltitude(name, meters) }

// DataCenter is a concrete-slab, water-cooled machine room (+44% thermal).
func DataCenter(l Location) Environment { return fit.DataCenter(l) }

// ComputeFIT folds measured cross sections and an environment into FIT
// rates.
func ComputeFIT(s Sigmas, env Environment) (FITReport, error) { return fit.Compute(s, env) }

// DDR3Module and DDR4Module return the paper's memory DUTs.
func DDR3Module() ModuleSpec { return memsim.DDR3Module() }

// DDR4Module returns the paper's 8 GB DDR4 DUT.
func DDR4Module() ModuleSpec { return memsim.DDR4Module() }

// RunMemoryCampaign runs a thermal-beam correct-loop campaign on a module
// for the given number of hours.
func RunMemoryCampaign(spec ModuleSpec, hours float64, ecc bool, seed uint64) (*MemoryResult, error) {
	return memsim.Run(memsim.Config{
		Spec:            spec,
		Band:            memsim.ThermalBeam,
		Flux:            spectrum.ROTAXTotalFlux,
		DurationSeconds: hours * 3600,
		ECC:             ecc,
		Seed:            seed,
	})
}

// NewDetector builds a Tin-II thermal-neutron detector.
func NewDetector(seed uint64) (*Detector, error) {
	return detector.New(detector.Config{}, rng.New(seed))
}

// RunWaterExperiment reproduces the paper's water-over-detector
// measurement: counting before and after two inches of water are placed
// over Tin-II, with change detection on the hourly series.
func RunWaterExperiment(seed uint64) (*WaterExperimentResult, error) {
	d, err := NewDetector(seed)
	if err != nil {
		return nil, err
	}
	return detector.RunWaterExperiment(detector.WaterExperimentConfig{Detector: d}, rng.New(seed+1))
}

// Top10 returns the June-2019 Top-10 supercomputers.
func Top10() []Supercomputer { return fit.Top10() }

// ProjectTop10 projects whole-system DDR thermal FIT rates for the given
// machines using per-generation cross sections.
func ProjectTop10(machines []Supercomputer, sigmaPerGbit map[MemoryGeneration]CrossSection, eccResidual float64) ([]SupercomputerFIT, error) {
	return fit.ProjectTop10(machines, sigmaPerGbit, eccResidual)
}

// Fleet and checkpointing types.
type (
	// FleetConfig drives a production-fleet error-log simulation.
	FleetConfig = fleet.Config
	// NodeClass is a group of identical nodes sharing an environment.
	NodeClass = fleet.NodeClass
	// FleetLog is a simulated error log with exposure bookkeeping.
	FleetLog = fleet.Log
	// FleetReport is the field-data analysis of a FleetLog.
	FleetReport = fleet.Report
	// WeatherDay is one day of weather for checkpoint scheduling.
	WeatherDay = checkpoint.Day
	// CheckpointPlan is a weather-aware checkpoint schedule.
	CheckpointPlan = checkpoint.Plan
)

// SimulateFleet runs a fleet error-log simulation (the field-study
// pipeline of §II).
func SimulateFleet(cfg FleetConfig) (*FleetLog, error) { return fleet.Simulate(cfg) }

// SimulateFleetContext is SimulateFleet with a caller context; cancellation
// stops the simulation at the next day boundary.
func SimulateFleetContext(ctx context.Context, cfg FleetConfig) (*FleetLog, error) {
	return fleet.SimulateContext(ctx, cfg)
}

// AnalyzeFleet recovers per-class FIT rates from an error log and tests
// placement and weather effects.
func AnalyzeFleet(log *FleetLog) (*FleetReport, error) { return fleet.Analyze(log) }

// PlanCheckpoints builds a weather-aware Daly checkpoint schedule from
// sunny/rainy system DUE rates (§VI's closing suggestion).
func PlanCheckpoints(sunnyDUE, rainyDUE FIT, checkpointSeconds float64, days []WeatherDay) (CheckpointPlan, error) {
	return checkpoint.PlanSchedule(sunnyDUE, rainyDUE, checkpointSeconds, days)
}

// Reliability dossiers and job simulation.

// ReliabilityDossier renders a Markdown reliability report for an
// assessment across environments; systemNodes > 0 adds checkpoint advice.
func ReliabilityDossier(a *Assessment, envs []Environment, systemNodes int) (string, error) {
	return report.Markdown(report.Input{
		Assessment:   a,
		Environments: envs,
		SystemNodes:  systemNodes,
	})
}

// JobParams configures a goodput simulation.
type JobParams = jobsim.Params

// JobResult is a goodput simulation outcome.
type JobResult = jobsim.Result

// SimulateJob runs a discrete-event checkpoint/failure simulation of a
// long-running job (the §I productivity analysis).
func SimulateJob(p JobParams, seed uint64) (JobResult, error) {
	return jobsim.Simulate(p, rng.New(seed))
}
