package rng

import (
	"math"
	"testing"
)

func TestAliasTableRejectsBadWeights(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
	}{
		{"empty", nil},
		{"negative", []float64{1, -0.5}},
		{"nan", []float64{1, math.NaN()}},
		{"inf", []float64{math.Inf(1)}},
		{"all zero", []float64{0, 0, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewAliasTable(tc.weights); err == nil {
				t.Fatalf("NewAliasTable(%v) succeeded, want error", tc.weights)
			}
		})
	}
}

func TestAliasTableSingleOutcome(t *testing.T) {
	at, err := NewAliasTable([]float64{3.7})
	if err != nil {
		t.Fatal(err)
	}
	s := New(1)
	for i := 0; i < 100; i++ {
		if got := at.Draw(s); got != 0 {
			t.Fatalf("Draw = %d, want 0", got)
		}
	}
}

// TestAliasTableZeroWeightNeverDrawn: zero-weight outcomes are legal table
// entries but must never be produced.
func TestAliasTableZeroWeightNeverDrawn(t *testing.T) {
	at, err := NewAliasTable([]float64{0, 1, 0, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	s := New(2)
	for i := 0; i < 50000; i++ {
		switch at.Draw(s) {
		case 1, 3:
		default:
			t.Fatal("drew a zero-weight outcome")
		}
	}
}

// TestAliasTableExtremeDynamicRange covers weights spanning 1e-12…1e12: the
// heavy outcome must dominate and construction must not overflow or lose
// the table's invariants.
func TestAliasTableExtremeDynamicRange(t *testing.T) {
	at, err := NewAliasTable([]float64{1e-12, 1, 1e12})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < at.Len(); i++ {
		p, a := at.Slot(i)
		if math.IsNaN(p) || p < 0 || p > 1 {
			t.Fatalf("slot %d prob = %v", i, p)
		}
		if a < 0 || a >= at.Len() {
			t.Fatalf("slot %d alias = %d", i, a)
		}
	}
	s := New(3)
	const n = 200000
	counts := [3]int{}
	for i := 0; i < n; i++ {
		counts[at.Draw(s)]++
	}
	// P(outcome 2) = 1e12/(1e12+1+1e-12): all but ~1e-12 of the mass.
	if counts[2] < n-10 {
		t.Fatalf("heavy outcome drawn %d/%d times", counts[2], n)
	}
	if counts[0] > 0 {
		t.Fatalf("1e-24-probability outcome drawn %d times", counts[0])
	}
}

// TestAliasTableDistribution checks the drawn frequencies against the
// construction weights within 4-sigma binomial tolerances.
func TestAliasTableDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4, 0.5}
	at, err := NewAliasTable(weights)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	s := New(4)
	const n = 1000000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[at.Draw(s)]++
	}
	for i, w := range weights {
		p := w / total
		got := float64(counts[i]) / n
		sigma := math.Sqrt(p * (1 - p) / n)
		if math.Abs(got-p) > 4*sigma {
			t.Errorf("outcome %d frequency %v, want %v ± %v", i, got, p, 4*sigma)
		}
	}
}

// TestAliasTableMassConservation: summing each outcome's retained and
// redirected mass over the whole table must reconstruct the input
// probabilities — the structural invariant of a correct alias table.
func TestAliasTableMassConservation(t *testing.T) {
	weights := []float64{0.1, 7, 2.5, 1e-6, 4, 0, 12}
	at, err := NewAliasTable(weights)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	n := at.Len()
	mass := make([]float64, n)
	for i := 0; i < n; i++ {
		p, a := at.Slot(i)
		mass[i] += p / float64(n)
		mass[a] += (1 - p) / float64(n)
	}
	for i, w := range weights {
		want := w / total
		if math.Abs(mass[i]-want) > 1e-12 {
			t.Errorf("outcome %d reconstructed mass %v, want %v", i, mass[i], want)
		}
	}
}

func BenchmarkAliasTableDraw(b *testing.B) {
	weights := make([]float64, 1024)
	for i := range weights {
		weights[i] = float64(i%17) + 0.1
	}
	at, err := NewAliasTable(weights)
	if err != nil {
		b.Fatal(err)
	}
	s := New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = at.Draw(s)
	}
}
