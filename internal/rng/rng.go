// Package rng provides the deterministic random number generation used by
// every simulator in neutronsim.
//
// All stochastic components draw from a *Stream, a PCG-XSL-RR-128/64
// generator. Streams are cheap to create and splittable: Split derives an
// independent child stream from a parent, so concurrent simulation shards
// (multiple boards on the ChipIR beam, detector tubes, DRAM banks) get
// reproducible, non-overlapping randomness from a single experiment seed.
package rng

import (
	"math"
	"math/bits"
)

// Stream is a deterministic pseudo-random stream (PCG-XSL-RR 128/64).
// The zero value is not usable; construct streams with New or Split.
type Stream struct {
	stateHi, stateLo uint64
	incHi, incLo     uint64

	// cached spare normal variate for Normal().
	hasSpare bool
	spare    float64

	// Read-ahead buffer (see ReadAhead): outputs pre-generated in batch,
	// served in generation order. ahead is the refill size; zero means the
	// buffer is drained and never refilled (unbuffered operation).
	buf   []uint64
	pos   int
	ahead int
}

// PCG 128-bit multiplier (Melissa O'Neill's reference constant).
const (
	mulHi = 2549297995355413924
	mulLo = 4865540595714422341
)

// New returns a stream seeded from seed with the default sequence selector.
func New(seed uint64) *Stream {
	return NewSequence(seed, 0xda3e39cb94b95bdb)
}

// NewSequence returns a stream seeded from seed on an explicit sequence.
// Distinct sequence values yield statistically independent streams even for
// identical seeds.
func NewSequence(seed, seq uint64) *Stream {
	s := &Stream{}
	// The increment must be odd; fold the sequence id into both halves.
	s.incHi = splitmix(seq)
	s.incLo = splitmix(seq+0x9e3779b97f4a7c15) | 1
	s.stateHi = 0
	s.stateLo = 0
	s.step()
	s.addState(splitmix(seed), splitmix(seed+0x632be59bd9b4e019))
	s.step()
	return s
}

// splitmix is the SplitMix64 finalizer, used to decorrelate raw seeds.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (s *Stream) addState(hi, lo uint64) {
	var carry uint64
	s.stateLo, carry = bits.Add64(s.stateLo, lo, 0)
	s.stateHi, _ = bits.Add64(s.stateHi, hi, carry)
}

// step advances the 128-bit LCG state.
func (s *Stream) step() {
	// state = state*mul + inc (mod 2^128)
	hi, lo := bits.Mul64(s.stateLo, mulLo)
	hi += s.stateHi*mulLo + s.stateLo*mulHi
	var carry uint64
	lo, carry = bits.Add64(lo, s.incLo, 0)
	hi, _ = bits.Add64(hi, s.incHi, carry)
	s.stateHi, s.stateLo = hi, lo
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Stream) Uint64() uint64 {
	if s.pos < len(s.buf) {
		// Buffered read-ahead mode: serve the pre-generated outputs in
		// order. This is the single branch buffering adds to the direct
		// path, and it is perfectly predicted for unbuffered streams
		// (len(buf) == 0 forever).
		v := s.buf[s.pos]
		s.pos++
		return v
	}
	if s.ahead > 0 {
		s.refill()
		s.pos = 1
		return s.buf[0]
	}
	s.step()
	// XSL-RR output function: xor-fold the state, then rotate by the top bits.
	xored := s.stateHi ^ s.stateLo
	rot := uint(s.stateHi >> 58)
	return bits.RotateLeft64(xored, -int(rot))
}

// ReadAhead switches the stream into buffered mode: outputs are
// pre-generated n at a time into a fixed buffer by a tight batch loop
// (state kept in registers across the whole refill instead of loaded and
// stored per draw) and every draw method serves from that buffer in
// generation order. The served sequence is bit-identical to the
// unbuffered stream's — buffering moves only WHEN the generator advances,
// never what it produces — so data-dependent consumers (Poisson loops,
// rejection sampling, device physics) observe exactly the draws they
// would have observed unbuffered, across any number of refill
// boundaries. This is the sequence-preserving buffered uniform source the
// batched beam run loop fills once per batch (DESIGN.md §16).
//
// n <= 0 returns the stream to unbuffered operation: draws already
// generated into the buffer are still served first (dropping them would
// skip sequence values), then the stream steps directly again.
//
// The buffer is (re)allocated here, never during refills, so a run loop
// that enables read-ahead at setup stays allocation-free in steady state.
// The one draw-time cost is a single extra predictable branch in Uint64.
func (s *Stream) ReadAhead(n int) {
	if n <= 0 {
		s.ahead = 0
		return
	}
	s.ahead = n
	if cap(s.buf) < n {
		pending := s.buf[s.pos:]
		grown := make([]uint64, len(pending), n)
		copy(grown, pending)
		s.buf, s.pos = grown, 0
	}
}

// refill regenerates the read-ahead buffer. Only called with every
// buffered value served, so it never overwrites pending outputs.
func (s *Stream) refill() {
	s.buf = s.buf[:s.ahead]
	s.fillRaw(s.buf)
	s.pos = 0
}

// Fill overwrites buf with the stream's next len(buf) Uint64 outputs —
// the batch equivalent of len(buf) successive Uint64 calls, bit for bit.
// Any outputs already pre-generated by ReadAhead are served first; the
// rest come from the tight batch generator.
func (s *Stream) Fill(buf []uint64) {
	n := copy(buf, s.buf[s.pos:])
	s.pos += n
	s.fillRaw(buf[n:])
}

// fillRaw batch-generates len(buf) outputs directly from the generator,
// bypassing the read-ahead buffer. The 128-bit state and increment live
// in locals for the whole loop, which is where batch filling beats
// per-call stepping: one state load/store pair per batch instead of per
// draw.
func (s *Stream) fillRaw(buf []uint64) {
	hi, lo := s.stateHi, s.stateLo
	incHi, incLo := s.incHi, s.incLo
	for i := range buf {
		h, l := bits.Mul64(lo, mulLo)
		h += hi*mulLo + lo*mulHi
		var carry uint64
		l, carry = bits.Add64(l, incLo, 0)
		h, _ = bits.Add64(h, incHi, carry)
		hi, lo = h, l
		buf[i] = bits.RotateLeft64(h^l, -int(h>>58))
	}
	s.stateHi, s.stateLo = hi, lo
}

// Split derives an independent child stream. The parent advances by one
// draw, so successive Splits produce distinct children.
func (s *Stream) Split() *Stream {
	seed := s.Uint64()
	seq := s.Uint64()
	return NewSequence(seed, seq|1)
}

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform value in (0, 1), safe for log transforms.
func (s *Stream) Float64Open() float64 {
	for {
		v := s.Float64()
		if v > 0 {
			return v
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's unbiased method.
func (s *Stream) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		threshold := -n % n
		for lo < threshold {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Bool returns a fair coin flip.
func (s *Stream) Bool() bool { return s.Uint64()&1 == 1 }

// Bernoulli returns true with probability p (clamped to [0,1]).
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Exponential returns a draw from Exp(rate); the mean is 1/rate.
// It panics if rate <= 0.
func (s *Stream) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential with non-positive rate")
	}
	return -math.Log(s.Float64Open()) / rate
}

// Normal returns a standard normal draw (Marsaglia polar method).
func (s *Stream) Normal() float64 {
	if s.hasSpare {
		s.hasSpare = false
		return s.spare
	}
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		r2 := u*u + v*v
		if r2 >= 1 || r2 == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(r2) / r2)
		s.spare = v * f
		s.hasSpare = true
		return u * f
	}
}

// NormalMeanStd returns a normal draw with the given mean and standard
// deviation.
func (s *Stream) NormalMeanStd(mean, std float64) float64 {
	return mean + std*s.Normal()
}

// LogNormal returns a draw whose logarithm is Normal(mu, sigma).
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.Normal())
}

// Poisson returns a draw from Poisson(mean). Small means use Knuth's
// product method; large means use a normal approximation with continuity
// correction, which is accurate to well under the statistical noise for the
// count magnitudes simulated here (detector hourly counts, error tallies).
func (s *Stream) Poisson(mean float64) int64 {
	switch {
	case mean <= 0:
		return 0
	case mean < 30:
		return s.knuthPoisson(math.Exp(-mean))
	default:
		v := math.Round(s.NormalMeanStd(mean, math.Sqrt(mean)))
		if v < 0 {
			return 0
		}
		return int64(v)
	}
}

// PoissonExp is Poisson with a caller-cached exp(-mean). Run loops that
// draw from a fixed-rate Poisson on every iteration (the beam campaign's
// per-run interaction count) pay math.Exp once at setup instead of per
// draw. It consumes the stream draw-for-draw exactly like Poisson(mean)
// whenever expNegMean == math.Exp(-mean), which the beam run-loop test
// pins.
func (s *Stream) PoissonExp(mean, expNegMean float64) int64 {
	switch {
	case mean <= 0:
		return 0
	case mean < 30:
		return s.knuthPoisson(expNegMean)
	default:
		return s.Poisson(mean)
	}
}

// knuthPoisson is Knuth's product method: multiply uniforms until the
// product drops below exp(-mean); the number of factors minus one is the
// draw. Shared by Poisson and PoissonExp so the two are draw-for-draw
// identical by construction.
func (s *Stream) knuthPoisson(expNegMean float64) int64 {
	var k int64
	p := 1.0
	for {
		p *= s.Float64()
		if p <= expNegMean {
			return k
		}
		k++
	}
}

// Binomial returns a draw from Binomial(n, p). It uses direct simulation
// for small n and a Poisson/normal approximation for large n, matching the
// accuracy needs of error tallies.
func (s *Stream) Binomial(n int64, p float64) int64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	mean := float64(n) * p
	switch {
	case n <= 64:
		var k int64
		for i := int64(0); i < n; i++ {
			if s.Float64() < p {
				k++
			}
		}
		return k
	case mean < 20:
		// Rare-event regime: Poisson approximation, truncated to n.
		k := s.Poisson(mean)
		if k > n {
			k = n
		}
		return k
	default:
		v := math.Round(s.NormalMeanStd(mean, math.Sqrt(mean*(1-p))))
		if v < 0 {
			return 0
		}
		if v > float64(n) {
			return n
		}
		return int64(v)
	}
}

// MaxwellEnergy returns a kinetic energy drawn from a Maxwell-Boltzmann
// distribution with temperature kT (in the same unit as the return value).
// The energy of a particle with Maxwellian velocity components is
// E = kT/2 * (z1²+z2²+z3²) with zi standard normal.
func (s *Stream) MaxwellEnergy(kT float64) float64 {
	z1, z2, z3 := s.Normal(), s.Normal(), s.Normal()
	return 0.5 * kT * (z1*z1 + z2*z2 + z3*z3)
}

// WattEnergy returns an energy (MeV) drawn from a Watt fission-like
// spectrum p(E) ∝ exp(-E/a)·sinh(sqrt(b·E)), the classic analytic shape
// used for fast-neutron sources. a is in MeV, b in 1/MeV.
func (s *Stream) WattEnergy(a, b float64) float64 {
	// Standard sampling scheme (e.g. MCNP manual): sample from a Maxwellian
	// and shift.
	k := 1 + a*b/8
	l := a * (k + math.Sqrt(k*k-1))
	m := l/a - 1
	for {
		x := -math.Log(s.Float64Open())
		y := -math.Log(s.Float64Open())
		d := y - m*(x+1)
		if d*d <= b*l*x {
			return l * x
		}
	}
}

// PowerLawEnergy samples E in [lo, hi] from p(E) ∝ E^(-gamma).
func (s *Stream) PowerLawEnergy(lo, hi, gamma float64) float64 {
	if lo <= 0 || hi <= lo {
		panic("rng: PowerLawEnergy requires 0 < lo < hi")
	}
	u := s.Float64()
	if math.Abs(gamma-1) < 1e-12 {
		return lo * math.Pow(hi/lo, u)
	}
	g := 1 - gamma
	return math.Pow(math.Pow(lo, g)+u*(math.Pow(hi, g)-math.Pow(lo, g)), 1/g)
}

// LogUniform samples a value in [lo, hi] uniform in log-space.
func (s *Stream) LogUniform(lo, hi float64) float64 {
	if lo <= 0 || hi < lo {
		panic("rng: LogUniform requires 0 < lo <= hi")
	}
	return lo * math.Exp(s.Float64()*math.Log(hi/lo))
}

// Shuffle randomizes the order of n elements via the provided swap function.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
