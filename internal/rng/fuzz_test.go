package rng

import "testing"

// drawPrefix captures the first k outputs of a stream.
func drawPrefix(s *Stream, k int) []uint64 {
	out := make([]uint64, k)
	for i := range out {
		out[i] = s.Uint64()
	}
	return out
}

func equalPrefix(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzNewSequence checks the stream-independence contract the sharded
// engine relies on: NewSequence is reproducible, distinct sequence
// selectors yield diverging streams for the same seed (and vice versa),
// and the derived variates stay inside their documented ranges.
func FuzzNewSequence(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(1))
	f.Add(uint64(1), uint64(0x6b79a7f3c5d80e25), uint64(0x6b79a7f3c5d80e26))
	f.Add(uint64(1<<63), uint64(42), uint64(43))
	f.Add(^uint64(0), ^uint64(0), uint64(7))
	f.Fuzz(func(t *testing.T, seed, seqA, seqB uint64) {
		const k = 16
		a := drawPrefix(NewSequence(seed, seqA), k)
		again := drawPrefix(NewSequence(seed, seqA), k)
		if !equalPrefix(a, again) {
			t.Fatalf("NewSequence(%d,%d) not reproducible", seed, seqA)
		}
		if seqA != seqB {
			b := drawPrefix(NewSequence(seed, seqB), k)
			if equalPrefix(a, b) {
				t.Errorf("sequences %d and %d coincide for seed %d over %d draws", seqA, seqB, seed, k)
			}
		}
		if seed != seqA { // reuse the operands as two distinct seeds
			c := drawPrefix(NewSequence(seqA, seqB), k)
			d := drawPrefix(NewSequence(seed, seqB), k)
			if equalPrefix(c, d) {
				t.Errorf("seeds %d and %d coincide on sequence %d", seqA, seed, seqB)
			}
		}
		s := NewSequence(seed, seqA)
		for i := 0; i < 8; i++ {
			if v := s.Float64(); v < 0 || v >= 1 {
				t.Fatalf("Float64 = %v out of [0,1)", v)
			}
			if v := s.Intn(17); v < 0 || v >= 17 {
				t.Fatalf("Intn(17) = %d out of range", v)
			}
			if v := s.Poisson(float64(i) * 12.5); v < 0 {
				t.Fatalf("Poisson = %d negative", v)
			}
			if v := s.Exponential(3); v < 0 {
				t.Fatalf("Exponential = %v negative", v)
			}
		}
	})
}

// FuzzSplit checks that Split yields children independent of the parent
// and of each other, deterministically.
func FuzzSplit(f *testing.F) {
	f.Add(uint64(1), uint8(0))
	f.Add(uint64(0xdeadbeef), uint8(5))
	f.Add(^uint64(0), uint8(17))
	f.Fuzz(func(t *testing.T, seed uint64, skip uint8) {
		const k = 16
		mk := func() *Stream {
			s := New(seed)
			for i := 0; i < int(skip); i++ { // vary the split point
				s.Uint64()
			}
			return s
		}
		p1 := mk()
		child := drawPrefix(p1.Split(), k)
		parentAfter := drawPrefix(p1, k)

		p2 := mk()
		childAgain := drawPrefix(p2.Split(), k)
		if !equalPrefix(child, childAgain) {
			t.Fatalf("Split not deterministic for seed %d skip %d", seed, skip)
		}
		if equalPrefix(child, parentAfter) {
			t.Errorf("child tracks parent after Split (seed %d skip %d)", seed, skip)
		}
		p3 := mk()
		first := drawPrefix(p3.Split(), k)
		second := drawPrefix(p3.Split(), k)
		if equalPrefix(first, second) {
			t.Errorf("successive Splits coincide (seed %d skip %d)", seed, skip)
		}
	})
}

// FuzzReadAhead drives a buffered and an unbuffered stream through an
// identical, input-chosen op sequence — including mid-sequence buffer
// resizes and disables — and demands bit-identical outputs. ops bytes map
// to draw methods with data-dependent consumption, so the fuzzer explores
// refill boundaries landing inside every kind of multi-draw primitive.
func FuzzReadAhead(f *testing.F) {
	f.Add(uint64(1), uint16(1), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(uint64(42), uint16(7), []byte{2, 2, 2, 9, 1, 1, 9, 3})
	f.Add(^uint64(0), uint16(4096), []byte{6, 5, 4, 3, 2, 1, 0})
	f.Fuzz(func(t *testing.T, seed uint64, size uint16, ops []byte) {
		buffered := New(seed)
		buffered.ReadAhead(int(size%4097) + 1)
		ref := New(seed)
		for i, op := range ops {
			if len(ops) > 256 {
				break
			}
			var got, want float64
			switch op % 10 {
			case 0:
				got, want = float64(buffered.Uint64()), float64(ref.Uint64())
			case 1:
				got, want = buffered.Float64(), ref.Float64()
			case 2:
				got, want = float64(buffered.Intn(13)), float64(ref.Intn(13))
			case 3:
				got, want = float64(buffered.Poisson(3)), float64(ref.Poisson(3))
			case 4:
				got, want = buffered.Normal(), ref.Normal()
			case 5:
				got, want = buffered.Exponential(2), ref.Exponential(2)
			case 6:
				got, want = float64(buffered.Binomial(40, 0.3)), float64(ref.Binomial(40, 0.3))
			case 7:
				got, want = float64(buffered.Split().Uint64()), float64(ref.Split().Uint64())
			case 8:
				// Resize mid-sequence; the reference stream is untouched.
				buffered.ReadAhead(int(op)%97 + 1)
				continue
			default:
				buffered.ReadAhead(0) // disable; pending values must still serve
				continue
			}
			if got != want {
				t.Fatalf("op %d (%d): buffered=%v unbuffered=%v", i, op%10, got, want)
			}
		}
	})
}
