package rng

import "testing"

// drawPrefix captures the first k outputs of a stream.
func drawPrefix(s *Stream, k int) []uint64 {
	out := make([]uint64, k)
	for i := range out {
		out[i] = s.Uint64()
	}
	return out
}

func equalPrefix(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzNewSequence checks the stream-independence contract the sharded
// engine relies on: NewSequence is reproducible, distinct sequence
// selectors yield diverging streams for the same seed (and vice versa),
// and the derived variates stay inside their documented ranges.
func FuzzNewSequence(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(1))
	f.Add(uint64(1), uint64(0x6b79a7f3c5d80e25), uint64(0x6b79a7f3c5d80e26))
	f.Add(uint64(1<<63), uint64(42), uint64(43))
	f.Add(^uint64(0), ^uint64(0), uint64(7))
	f.Fuzz(func(t *testing.T, seed, seqA, seqB uint64) {
		const k = 16
		a := drawPrefix(NewSequence(seed, seqA), k)
		again := drawPrefix(NewSequence(seed, seqA), k)
		if !equalPrefix(a, again) {
			t.Fatalf("NewSequence(%d,%d) not reproducible", seed, seqA)
		}
		if seqA != seqB {
			b := drawPrefix(NewSequence(seed, seqB), k)
			if equalPrefix(a, b) {
				t.Errorf("sequences %d and %d coincide for seed %d over %d draws", seqA, seqB, seed, k)
			}
		}
		if seed != seqA { // reuse the operands as two distinct seeds
			c := drawPrefix(NewSequence(seqA, seqB), k)
			d := drawPrefix(NewSequence(seed, seqB), k)
			if equalPrefix(c, d) {
				t.Errorf("seeds %d and %d coincide on sequence %d", seqA, seed, seqB)
			}
		}
		s := NewSequence(seed, seqA)
		for i := 0; i < 8; i++ {
			if v := s.Float64(); v < 0 || v >= 1 {
				t.Fatalf("Float64 = %v out of [0,1)", v)
			}
			if v := s.Intn(17); v < 0 || v >= 17 {
				t.Fatalf("Intn(17) = %d out of range", v)
			}
			if v := s.Poisson(float64(i) * 12.5); v < 0 {
				t.Fatalf("Poisson = %d negative", v)
			}
			if v := s.Exponential(3); v < 0 {
				t.Fatalf("Exponential = %v negative", v)
			}
		}
	})
}

// FuzzSplit checks that Split yields children independent of the parent
// and of each other, deterministically.
func FuzzSplit(f *testing.F) {
	f.Add(uint64(1), uint8(0))
	f.Add(uint64(0xdeadbeef), uint8(5))
	f.Add(^uint64(0), uint8(17))
	f.Fuzz(func(t *testing.T, seed uint64, skip uint8) {
		const k = 16
		mk := func() *Stream {
			s := New(seed)
			for i := 0; i < int(skip); i++ { // vary the split point
				s.Uint64()
			}
			return s
		}
		p1 := mk()
		child := drawPrefix(p1.Split(), k)
		parentAfter := drawPrefix(p1, k)

		p2 := mk()
		childAgain := drawPrefix(p2.Split(), k)
		if !equalPrefix(child, childAgain) {
			t.Fatalf("Split not deterministic for seed %d skip %d", seed, skip)
		}
		if equalPrefix(child, parentAfter) {
			t.Errorf("child tracks parent after Split (seed %d skip %d)", seed, skip)
		}
		p3 := mk()
		first := drawPrefix(p3.Split(), k)
		second := drawPrefix(p3.Split(), k)
		if equalPrefix(first, second) {
			t.Errorf("successive Splits coincide (seed %d skip %d)", seed, skip)
		}
	})
}
