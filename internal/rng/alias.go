package rng

import (
	"errors"
	"fmt"
	"math"
)

// AliasTable draws from a fixed discrete distribution in O(1) time using
// Walker's alias method (Vose's linear-time construction). A draw costs one
// uniform variate and one table read, independent of the number of
// outcomes — the constant-time replacement for linear scans and
// binary searches over cumulative-weight tables in sampling hot loops.
//
// The table is immutable after construction and safe for concurrent Draw
// calls (each caller supplies its own *Stream).
type AliasTable struct {
	// prob[i] is the probability that slot i keeps its own outcome; with
	// probability 1-prob[i] the draw is redirected to alias[i]. Every slot
	// carries exactly 1/n of the total mass, which is what makes the draw
	// constant-time.
	prob  []float64
	alias []int32
}

// NewAliasTable builds an alias table over the given outcome weights.
// Weights must be finite and non-negative with a positive total;
// zero-weight outcomes are accepted and are simply never drawn.
func NewAliasTable(weights []float64) (*AliasTable, error) {
	n := len(weights)
	if n == 0 {
		return nil, errors.New("rng: alias table needs at least one weight")
	}
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("rng: alias table size %d exceeds int32 indices", n)
	}
	// Kahan-compensated total: weight tables routinely mix magnitudes
	// spanning many decades (e.g. interaction probabilities with long
	// zero or near-zero prefixes), where a naive sum loses the small
	// contributions entirely.
	var sum, comp float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("rng: alias weight %d must be finite and non-negative, got %v", i, w)
		}
		y := w - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	if sum <= 0 {
		return nil, errors.New("rng: alias weights must have a positive total")
	}
	t := &AliasTable{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	// Vose construction: scale each weight to mean 1, then repeatedly pair
	// an under-full slot with an over-full one. prob doubles as the scaled
	// workspace — once a slot leaves the small list its value is final.
	scaled := t.prob
	scale := float64(n) / sum
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * scale
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.alias[s] = l
		scaled[l] = (scaled[l] + scaled[s]) - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Leftovers are exactly-full slots up to rounding; both lists can be
	// non-empty here only through floating-point drift.
	for _, i := range large {
		scaled[i] = 1
		t.alias[i] = i
	}
	for _, i := range small {
		scaled[i] = 1
		t.alias[i] = i
	}
	return t, nil
}

// Len returns the number of outcomes.
func (t *AliasTable) Len() int { return len(t.prob) }

// Slot exposes slot i's acceptance probability and alias target, letting
// callers fuse the table with their own per-outcome payloads into a single
// cache-friendly array (see beam's interaction sampler).
func (t *AliasTable) Slot(i int) (prob float64, alias int) {
	return t.prob[i], int(t.alias[i])
}

// Draw returns an outcome index distributed according to the construction
// weights. It consumes exactly one uniform variate: the integer part picks
// the slot and the fractional part decides between the slot's own outcome
// and its alias.
func (t *AliasTable) Draw(s *Stream) int {
	n := len(t.prob)
	u := s.Float64() * float64(n)
	i := int(u)
	if i >= n {
		// Float64 < 1, but u can round up to exactly n for large n.
		i = n - 1
	}
	if u-float64(i) < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}
