package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with the same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	collide := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			collide++
		}
	}
	if collide > 0 {
		t.Errorf("split children collided %d times", collide)
	}
}

func TestSplitDeterministic(t *testing.T) {
	mk := func() []uint64 {
		p := New(99)
		c := p.Split()
		out := make([]uint64, 10)
		for i := range out {
			out[i] = c.Uint64()
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("split stream not reproducible at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	f := func(_ int) bool {
		v := s.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) hit only %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	s := New(6)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Uint64n(10)]++
	}
	for v, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Errorf("value %d frequency %v, want ~0.1", v, frac)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(8)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(9)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(10)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exponential(2)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Exp(rate=2) mean = %v, want 0.5", mean)
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exponential(0) did not panic")
		}
	}()
	New(1).Exponential(0)
}

func TestNormalMoments(t *testing.T) {
	s := New(11)
	const n = 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, mean := range []float64{0.5, 3, 25, 100, 5000} {
		s := New(uint64(100 + mean))
		const n = 20000
		sum, sum2 := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := float64(s.Poisson(mean))
			sum += v
			sum2 += v * v
		}
		m := sum / n
		v := sum2/n - m*m
		if math.Abs(m-mean) > 4*math.Sqrt(mean/n)+0.02*mean {
			t.Errorf("Poisson(%v) mean = %v", mean, m)
		}
		if math.Abs(v-mean)/mean > 0.1 {
			t.Errorf("Poisson(%v) variance = %v", mean, v)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	s := New(12)
	if got := s.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d", got)
	}
	if got := s.Poisson(-5); got != 0 {
		t.Errorf("Poisson(-5) = %d", got)
	}
}

func TestBinomialMoments(t *testing.T) {
	type tc struct {
		n int64
		p float64
	}
	for _, c := range []tc{{10, 0.5}, {1000, 0.001}, {100000, 0.3}} {
		s := New(uint64(c.n))
		const reps = 20000
		sum := 0.0
		for i := 0; i < reps; i++ {
			sum += float64(s.Binomial(c.n, c.p))
		}
		mean := sum / reps
		want := float64(c.n) * c.p
		tol := 5*math.Sqrt(want*(1-c.p)/reps) + 0.02*want + 0.05
		if math.Abs(mean-want) > tol {
			t.Errorf("Binomial(%d,%v) mean = %v, want %v (tol %v)", c.n, c.p, mean, want, tol)
		}
	}
}

func TestBinomialEdges(t *testing.T) {
	s := New(13)
	if got := s.Binomial(100, 0); got != 0 {
		t.Errorf("Binomial(100,0) = %d", got)
	}
	if got := s.Binomial(100, 1); got != 100 {
		t.Errorf("Binomial(100,1) = %d", got)
	}
	if got := s.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0,0.5) = %d", got)
	}
}

func TestBinomialNeverExceedsN(t *testing.T) {
	s := New(14)
	for i := 0; i < 2000; i++ {
		if got := s.Binomial(100, 0.15); got < 0 || got > 100 {
			t.Fatalf("Binomial out of range: %d", got)
		}
	}
}

func TestMaxwellEnergyMean(t *testing.T) {
	s := New(15)
	const kT = 0.0253
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.MaxwellEnergy(kT)
	}
	mean := sum / n
	want := 1.5 * kT // <E> = 3/2 kT
	if math.Abs(mean-want)/want > 0.02 {
		t.Errorf("Maxwell mean energy = %v, want %v", mean, want)
	}
}

func TestMaxwellEnergyPositive(t *testing.T) {
	s := New(16)
	for i := 0; i < 10000; i++ {
		if e := s.MaxwellEnergy(0.0253); e < 0 {
			t.Fatalf("negative Maxwell energy %v", e)
		}
	}
}

func TestWattEnergyMean(t *testing.T) {
	s := New(17)
	// Watt spectrum with a=0.988 MeV, b=2.249/MeV (U-235-like):
	// mean = 3a/2 + a²b/4 ≈ 2.03 MeV.
	const a, b = 0.988, 2.249
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.WattEnergy(a, b)
	}
	mean := sum / n
	want := 1.5*a + a*a*b/4
	if math.Abs(mean-want)/want > 0.03 {
		t.Errorf("Watt mean = %v, want %v", mean, want)
	}
}

func TestPowerLawEnergyBounds(t *testing.T) {
	s := New(18)
	for i := 0; i < 10000; i++ {
		e := s.PowerLawEnergy(1, 1000, 1.5)
		if e < 1 || e > 1000 {
			t.Fatalf("power-law sample %v out of [1,1000]", e)
		}
	}
}

func TestPowerLawGammaOne(t *testing.T) {
	s := New(19)
	// gamma=1 is log-uniform; median should be sqrt(lo*hi).
	const n = 100000
	below := 0
	for i := 0; i < n; i++ {
		if s.PowerLawEnergy(1, 10000, 1) < 100 {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("log-uniform median check: frac below sqrt = %v", frac)
	}
}

func TestLogUniformBounds(t *testing.T) {
	s := New(20)
	for i := 0; i < 10000; i++ {
		v := s.LogUniform(0.01, 100)
		if v < 0.01 || v > 100 {
			t.Fatalf("LogUniform out of bounds: %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(21)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleUniformish(t *testing.T) {
	s := New(22)
	// Position of element 0 after shuffling [0,1,2] should be ~uniform.
	counts := [3]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		a := []int{0, 1, 2}
		s.Shuffle(3, func(x, y int) { a[x], a[y] = a[y], a[x] })
		for pos, v := range a {
			if v == 0 {
				counts[pos]++
			}
		}
	}
	for pos, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-1.0/3) > 0.02 {
			t.Errorf("element 0 at position %d with frequency %v", pos, frac)
		}
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	s := New(23)
	for i := 0; i < 100000; i++ {
		if s.Float64Open() == 0 {
			t.Fatal("Float64Open returned 0")
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Normal()
	}
}

func BenchmarkPoissonSmall(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Poisson(3)
	}
}

func BenchmarkWattEnergy(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.WattEnergy(0.988, 2.249)
	}
}
