package workload

import (
	"errors"
	"math"
	"testing"
)

// runAll resets and runs a workload to completion, failing the test on any
// step error.
func runAll(t *testing.T, w Workload, seed uint64) []float64 {
	t.Helper()
	w.Reset(seed)
	for i := 0; i < w.Steps(); i++ {
		if err := w.Step(i); err != nil {
			t.Fatalf("%s step %d: %v", w.Name(), i, err)
		}
	}
	return w.Output()
}

func TestRegistryCoversAllNames(t *testing.T) {
	for _, name := range Names() {
		w, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if w.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, w.Name())
		}
	}
}

func TestRegistryUnknown(t *testing.T) {
	if _, err := New("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestAllWorkloadsDeterministic(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			w1, _ := New(name)
			w2, _ := New(name)
			o1 := runAll(t, w1, 42)
			o2 := runAll(t, w2, 42)
			if len(o1) == 0 {
				t.Fatal("empty output")
			}
			for i := range o1 {
				if o1[i] != o2[i] {
					t.Fatalf("outputs differ at %d: %v vs %v", i, o1[i], o2[i])
				}
			}
		})
	}
}

func TestSeedChangesOutput(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			w1, _ := New(name)
			w2, _ := New(name)
			o1 := runAll(t, w1, 1)
			o2 := runAll(t, w2, 2)
			same := true
			for i := range o1 {
				if o1[i] != o2[i] {
					same = false
					break
				}
			}
			if same {
				t.Error("different seeds produced identical outputs")
			}
		})
	}
}

func TestResetRestoresCleanState(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			w, _ := New(name)
			o1 := runAll(t, w, 7)
			// Corrupt everything, then Reset and re-run.
			for _, r := range w.Regions() {
				for i := 0; i < r.Words(); i += 3 {
					if err := r.FlipBit(i, 5); err != nil {
						t.Fatal(err)
					}
				}
			}
			o2 := runAll(t, w, 7)
			for i := range o1 {
				if o1[i] != o2[i] {
					t.Fatalf("Reset did not restore state (index %d)", i)
				}
			}
		})
	}
}

func TestRegionsNonEmpty(t *testing.T) {
	for _, name := range Names() {
		w, _ := New(name)
		w.Reset(1)
		if TotalWords(w.Regions()) == 0 {
			t.Errorf("%s exposes no injectable state", name)
		}
		for _, r := range w.Regions() {
			if r.Name == "" {
				t.Errorf("%s has an unnamed region", name)
			}
			if (r.F64 == nil) == (r.U32 == nil) {
				t.Errorf("%s region %q must have exactly one backing slice", name, r.Name)
			}
		}
	}
}

func TestFlipBitF64(t *testing.T) {
	r := Region{Name: "x", F64: []float64{1.0}}
	if err := r.FlipBit(0, 63); err != nil { // sign bit
		t.Fatal(err)
	}
	if r.F64[0] != -1.0 {
		t.Errorf("sign-bit flip gave %v, want -1", r.F64[0])
	}
	if err := r.FlipBit(0, 63); err != nil {
		t.Fatal(err)
	}
	if r.F64[0] != 1.0 {
		t.Error("double flip did not restore value")
	}
}

func TestFlipBitU32(t *testing.T) {
	r := Region{Name: "x", U32: []uint32{0}}
	if err := r.FlipBit(0, 31); err != nil {
		t.Fatal(err)
	}
	if r.U32[0] != 1<<31 {
		t.Errorf("got %v", r.U32[0])
	}
}

func TestFlipBitBounds(t *testing.T) {
	r := Region{Name: "x", F64: []float64{1, 2}}
	if err := r.FlipBit(2, 0); err == nil {
		t.Error("out-of-range word accepted")
	}
	if err := r.FlipBit(0, 64); err == nil {
		t.Error("out-of-range bit accepted")
	}
	if err := r.FlipBit(-1, 0); err == nil {
		t.Error("negative word accepted")
	}
	u := Region{Name: "y", U32: []uint32{0}}
	if err := u.FlipBit(0, 32); err == nil {
		t.Error("bit 32 accepted on u32 region")
	}
}

func TestBitsPerWord(t *testing.T) {
	if (Region{F64: []float64{0}}).BitsPerWord() != 64 {
		t.Error("f64 width")
	}
	if (Region{U32: []uint32{0}}).BitsPerWord() != 32 {
		t.Error("u32 width")
	}
}

func TestStepOutOfRangeErrors(t *testing.T) {
	for _, name := range Names() {
		w, _ := New(name)
		w.Reset(1)
		if err := w.Step(w.Steps()); err == nil {
			t.Errorf("%s accepted out-of-range step", name)
		}
		if err := w.Step(-1); err == nil {
			t.Errorf("%s accepted negative step", name)
		}
	}
}

func TestForDeviceKind(t *testing.T) {
	tests := []struct {
		kind string
		want int
	}{
		{"accelerator", 4},
		{"GPU", 5},
		{"APU", 3},
		{"FPGA", 2},
		{"toaster", 0},
	}
	for _, tt := range tests {
		if got := len(ForDeviceKind(tt.kind)); got != tt.want {
			t.Errorf("ForDeviceKind(%q) has %d codes, want %d", tt.kind, got, tt.want)
		}
	}
}

func TestClassString(t *testing.T) {
	if ClassHPC.String() != "HPC" || ClassHeterogeneous.String() != "heterogeneous" ||
		ClassNeuralNetwork.String() != "neural network" || Class(0).String() != "unknown" {
		t.Error("class names wrong")
	}
}

// --- kernel-specific correctness ---

func TestMxMCorrectness(t *testing.T) {
	m := NewMxM(3)
	m.Reset(1)
	// Overwrite with known matrices: A = I scaled by 2, B arbitrary.
	for i := range m.a {
		m.a[i] = 0
	}
	for i := 0; i < 3; i++ {
		m.a[i*3+i] = 2
	}
	for i := range m.b {
		m.b[i] = float64(i)
	}
	for i := 0; i < m.Steps(); i++ {
		if err := m.Step(i); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range m.Output() {
		if v != 2*float64(i) {
			t.Fatalf("C[%d] = %v, want %v", i, v, 2*float64(i))
		}
	}
}

func TestLUDReconstructs(t *testing.T) {
	l := NewLUD(8)
	l.Reset(3)
	orig := append([]float64(nil), l.m...)
	for i := 0; i < l.Steps(); i++ {
		if err := l.Step(i); err != nil {
			t.Fatal(err)
		}
	}
	// Rebuild A = L·U and compare.
	n := 8
	lu := l.Output()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for k := 0; k <= min(i, j); k++ {
				var lv float64
				if k == i {
					lv = 1
				} else {
					lv = lu[i*n+k]
				}
				if k <= j {
					sum += lv * lu[k*n+j]
				}
			}
			if math.Abs(sum-orig[i*n+j]) > 1e-8*math.Max(1, math.Abs(orig[i*n+j])) {
				t.Fatalf("LU reconstruction failed at (%d,%d): %v vs %v", i, j, sum, orig[i*n+j])
			}
		}
	}
}

func TestLUDDetectsCorruptPivot(t *testing.T) {
	l := NewLUD(8)
	l.Reset(3)
	l.m[0] = math.NaN()
	if err := l.Step(0); !errors.Is(err, ErrCorruptState) {
		t.Errorf("NaN pivot gave %v, want ErrCorruptState", err)
	}
}

func TestLavaMDForcesAntisymmetric(t *testing.T) {
	// Total force over a closed system should be ~0 when all particles
	// interact symmetrically (all pairs within cutoff).
	l := NewLavaMD(2, 4)
	l.Reset(5)
	for i := 0; i < l.Steps(); i++ {
		if err := l.Step(i); err != nil {
			t.Fatal(err)
		}
	}
	// Newton's third law holds pairwise only when both boxes see each
	// other; with clamped neighbor lists every pair within cutoff is
	// symmetric, so total force cancels.
	var fx, fy, fz float64
	out := l.Output()
	for i := 0; i < len(out); i += 3 {
		fx += out[i]
		fy += out[i+1]
		fz += out[i+2]
	}
	if math.Abs(fx)+math.Abs(fy)+math.Abs(fz) > 1e-6 {
		t.Errorf("net force = (%v,%v,%v), want ~0", fx, fy, fz)
	}
}

func TestLavaMDDetectsCorruptNeighbor(t *testing.T) {
	l := NewLavaMD(3, 2)
	l.Reset(1)
	l.neighbors[0] = 9999
	if err := l.Step(0); !errors.Is(err, ErrCorruptState) {
		t.Errorf("corrupt neighbor gave %v", err)
	}
}

func TestHotSpotHeatsUnderPower(t *testing.T) {
	h := NewHotSpot(16, 8)
	h.Reset(2)
	before := 0.0
	for _, v := range h.temp {
		before += v
	}
	for i := 0; i < h.Steps(); i++ {
		if err := h.Step(i); err != nil {
			t.Fatal(err)
		}
	}
	after := 0.0
	for _, v := range h.Output() {
		after += v
	}
	if after <= before {
		t.Errorf("powered grid did not heat: %v -> %v", before, after)
	}
}

func TestSCCompactsCorrectly(t *testing.T) {
	c := NewSC(64)
	c.Reset(9)
	want := []float64{}
	for _, v := range c.data {
		if v > 0 {
			want = append(want, v)
		}
	}
	for i := 0; i < c.Steps(); i++ {
		if err := c.Step(i); err != nil {
			t.Fatal(err)
		}
	}
	out := c.Output()
	count := int(out[len(out)-1])
	if count != len(want) {
		t.Fatalf("compacted %d elements, want %d", count, len(want))
	}
	for i, v := range want {
		if out[i] != v {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], v)
		}
	}
}

func TestSCDetectsCorruptCursor(t *testing.T) {
	c := NewSC(64)
	c.Reset(9)
	c.cursor[0] = 1 << 30
	// Find a chunk with at least one kept element; step it.
	for i := 0; i < c.Steps(); i++ {
		if err := c.Step(i); err != nil {
			if !errors.Is(err, ErrCorruptState) {
				t.Fatalf("got %v", err)
			}
			return
		}
	}
	t.Error("corrupt cursor never detected")
}

func TestSCDetectsCorruptFlag(t *testing.T) {
	c := NewSC(64)
	c.Reset(9)
	c.flags[3] = 7
	if err := c.Step(0); !errors.Is(err, ErrCorruptState) {
		t.Errorf("corrupt flag gave %v", err)
	}
}

func TestCEDFindsEdges(t *testing.T) {
	c := NewCED(32)
	out := runAll(t, c, 4)
	edges := 0
	for _, v := range out {
		if v == 1 {
			edges++
		} else if v != 0 {
			t.Fatalf("edge map value %v not binary", v)
		}
	}
	if edges == 0 {
		t.Error("no edges detected in synthetic scene with boxes")
	}
	if edges > len(out)/2 {
		t.Errorf("%d of %d pixels are edges; threshold too low", edges, len(out))
	}
}

func TestBFSDistances(t *testing.T) {
	b := NewBFS(64, 3)
	out := runAll(t, b, 11)
	if out[0] != 0 {
		t.Fatalf("source distance = %v", out[0])
	}
	// Ring edge guarantees reachability of every node.
	for i, d := range out {
		if d == float64(unvisited) {
			t.Fatalf("node %d unreachable", i)
		}
		if d > 64 {
			t.Fatalf("distance %v exceeds node count", d)
		}
	}
	// Distance of node 1 must be 1 (direct ring edge from source).
	if out[1] != 1 {
		t.Errorf("dist(1) = %v, want 1", out[1])
	}
}

func TestBFSDetectsCorruptEdge(t *testing.T) {
	b := NewBFS(64, 3)
	b.Reset(1)
	b.edges[0] = 1 << 20
	if err := b.Step(0); !errors.Is(err, ErrCorruptState) {
		t.Errorf("corrupt edge gave %v", err)
	}
}

func TestBFSDetectsCorruptOffsets(t *testing.T) {
	b := NewBFS(64, 3)
	b.Reset(1)
	b.offsets[1] = 1 << 30
	if err := b.Step(0); !errors.Is(err, ErrCorruptState) {
		t.Errorf("corrupt offset gave %v", err)
	}
}

func TestYOLOOutputShape(t *testing.T) {
	y := NewYOLO()
	out := runAll(t, y, 13)
	if len(out) != 11 { // argmax + 10 confidences
		t.Fatalf("output length %d", len(out))
	}
	cls := out[0]
	if cls < 0 || cls > 9 || cls != math.Trunc(cls) {
		t.Fatalf("class = %v", cls)
	}
	sum := 0.0
	for _, v := range out[1:] {
		if v < 0 || v > 1 {
			t.Fatalf("confidence %v out of [0,1]", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 0.06 { // quantized to 0.01 × 10 classes
		t.Errorf("confidences sum to %v", sum)
	}
}

func TestCNNMasksTinyPerturbations(t *testing.T) {
	// The detection-criterion output should be invariant to a low-order
	// mantissa flip in an activation — that is the masking the paper
	// relies on for CNN workloads.
	y1 := NewYOLO()
	golden := runAll(t, y1, 21)
	y2 := NewYOLO()
	y2.Reset(21)
	if err := y2.Step(0); err != nil {
		t.Fatal(err)
	}
	// Flip a low mantissa bit in an activation after the first layer.
	if err := (Region{F64: y2.a1}).FlipBit(10, 2); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < y2.Steps(); i++ {
		if err := y2.Step(i); err != nil {
			t.Fatal(err)
		}
	}
	out := y2.Output()
	for i := range golden {
		if out[i] != golden[i] {
			t.Fatalf("low-order activation flip changed detection output at %d", i)
		}
	}
}

func TestMNISTOutputStable(t *testing.T) {
	m := NewMNIST()
	out := runAll(t, m, 17)
	if len(out) != 11 {
		t.Fatalf("output length %d", len(out))
	}
}

func TestSoftmaxHandlesNaN(t *testing.T) {
	scores := []float64{math.NaN(), 1, 2}
	softmax(scores) // must not panic; leaves raw values
	if !math.IsNaN(scores[0]) {
		t.Error("NaN should propagate for golden mismatch detection")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Performance baselines for the kernels (one full execution each).
func benchWorkload(b *testing.B, name string) {
	b.Helper()
	w, err := New(name)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		w.Reset(uint64(i))
		for s := 0; s < w.Steps(); s++ {
			if err := w.Step(s); err != nil {
				b.Fatal(err)
			}
		}
		if out := w.Output(); len(out) == 0 {
			b.Fatal("empty output")
		}
	}
}

func BenchmarkMxM(b *testing.B)     { benchWorkload(b, "MxM") }
func BenchmarkLUD(b *testing.B)     { benchWorkload(b, "LUD") }
func BenchmarkLavaMD(b *testing.B)  { benchWorkload(b, "LavaMD") }
func BenchmarkHotSpot(b *testing.B) { benchWorkload(b, "HotSpot") }
func BenchmarkSC(b *testing.B)      { benchWorkload(b, "SC") }
func BenchmarkCED(b *testing.B)     { benchWorkload(b, "CED") }
func BenchmarkBFS(b *testing.B)     { benchWorkload(b, "BFS") }
func BenchmarkYOLO(b *testing.B)    { benchWorkload(b, "YOLO") }
func BenchmarkMNIST(b *testing.B)   { benchWorkload(b, "MNIST") }
