package workload

import (
	"fmt"
	"math"
)

// MxM ------------------------------------------------------------------------

// MxM is dense matrix multiplication C = A×B, the paper's representative of
// highly arithmetic compute-bound HPC codes (and CNN feature extraction).
type MxM struct {
	n       int
	a, b, c []float64
}

// NewMxM builds an n×n matrix multiplication workload.
func NewMxM(n int) *MxM {
	if n < 2 {
		n = 2
	}
	return &MxM{
		n: n,
		a: make([]float64, n*n),
		b: make([]float64, n*n),
		c: make([]float64, n*n),
	}
}

// Name implements Workload.
func (m *MxM) Name() string { return "MxM" }

// Class implements Workload.
func (m *MxM) Class() Class { return ClassHPC }

// Reset implements Workload.
func (m *MxM) Reset(seed uint64) {
	g := splitmix(seed)
	for i := range m.a {
		m.a[i] = 2*g.float() - 1
		m.b[i] = 2*g.float() - 1
		m.c[i] = 0
	}
}

// Steps implements Workload: one step per output row.
func (m *MxM) Steps() int { return m.n }

// Step computes row i of C.
func (m *MxM) Step(i int) error {
	if i < 0 || i >= m.n {
		return fmt.Errorf("MxM: step %d out of range", i)
	}
	n := m.n
	for j := 0; j < n; j++ {
		sum := 0.0
		for k := 0; k < n; k++ {
			sum += m.a[i*n+k] * m.b[k*n+j]
		}
		m.c[i*n+j] = sum
	}
	return nil
}

// Output implements Workload.
func (m *MxM) Output() []float64 { return append([]float64(nil), m.c...) }

// Regions implements Workload.
func (m *MxM) Regions() []Region {
	return []Region{
		{Name: "A", F64: m.a},
		{Name: "B", F64: m.b},
		{Name: "C", F64: m.c},
	}
}

// LUD ------------------------------------------------------------------------

// LUD performs an in-place Doolittle LU decomposition of a symmetric
// positive-definite matrix — the paper's dense linear-solver kernel.
type LUD struct {
	n int
	m []float64
}

// NewLUD builds an n×n decomposition workload.
func NewLUD(n int) *LUD {
	if n < 2 {
		n = 2
	}
	return &LUD{n: n, m: make([]float64, n*n)}
}

// Name implements Workload.
func (l *LUD) Name() string { return "LUD" }

// Class implements Workload.
func (l *LUD) Class() Class { return ClassHPC }

// Reset fills the matrix with A·Aᵀ + n·I, which is SPD and hence safely
// factorizable without pivoting.
func (l *LUD) Reset(seed uint64) {
	g := splitmix(seed)
	n := l.n
	a := make([]float64, n*n)
	for i := range a {
		a[i] = 2*g.float() - 1
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += a[i*n+k] * a[j*n+k]
			}
			if i == j {
				sum += float64(n)
			}
			l.m[i*n+j] = sum
		}
	}
}

// Steps implements Workload: one elimination step per pivot column.
func (l *LUD) Steps() int { return l.n }

// Step eliminates column i. A vanishing pivot — which cannot occur on the
// clean SPD input — indicates corrupted state and reports ErrCorruptState.
func (l *LUD) Step(i int) error {
	n := l.n
	if i < 0 || i >= n {
		return fmt.Errorf("LUD: step %d out of range", i)
	}
	pivot := l.m[i*n+i]
	if math.Abs(pivot) < 1e-9 || math.IsNaN(pivot) || math.IsInf(pivot, 0) {
		return ErrCorruptState
	}
	for r := i + 1; r < n; r++ {
		f := l.m[r*n+i] / pivot
		l.m[r*n+i] = f
		for c := i + 1; c < n; c++ {
			l.m[r*n+c] -= f * l.m[i*n+c]
		}
	}
	return nil
}

// Output implements Workload.
func (l *LUD) Output() []float64 { return append([]float64(nil), l.m...) }

// Regions implements Workload.
func (l *LUD) Regions() []Region {
	return []Region{{Name: "M", F64: l.m}}
}

// LavaMD ---------------------------------------------------------------------

// LavaMD simulates short-range particle interactions across a 3-D grid of
// boxes, the paper's N-body / finite-difference representative.
type LavaMD struct {
	dim       int // boxes per axis
	particles int // particles per box
	pos       []float64
	charge    []float64
	force     []float64
	neighbors []uint32 // per box: indices of neighbor boxes (27 each, self included)
	perBox    int
}

// NewLavaMD builds a dim³-box simulation with p particles per box.
func NewLavaMD(dim, p int) *LavaMD {
	if dim < 2 {
		dim = 2
	}
	if p < 1 {
		p = 1
	}
	boxes := dim * dim * dim
	return &LavaMD{
		dim:       dim,
		particles: p,
		pos:       make([]float64, 3*boxes*p),
		charge:    make([]float64, boxes*p),
		force:     make([]float64, 3*boxes*p),
		neighbors: make([]uint32, boxes*27),
		perBox:    27,
	}
}

// Name implements Workload.
func (l *LavaMD) Name() string { return "LavaMD" }

// Class implements Workload.
func (l *LavaMD) Class() Class { return ClassHPC }

// Reset implements Workload.
func (l *LavaMD) Reset(seed uint64) {
	g := splitmix(seed)
	d := l.dim
	for b := 0; b < d*d*d; b++ {
		bx, by, bz := b%d, (b/d)%d, b/(d*d)
		for k := 0; k < l.particles; k++ {
			idx := b*l.particles + k
			l.pos[3*idx] = float64(bx) + g.float()
			l.pos[3*idx+1] = float64(by) + g.float()
			l.pos[3*idx+2] = float64(bz) + g.float()
			l.charge[idx] = 2*g.float() - 1
			l.force[3*idx] = 0
			l.force[3*idx+1] = 0
			l.force[3*idx+2] = 0
		}
		// Neighbor list: the 27 surrounding boxes with clamped coordinates.
		ni := 0
		for dz := -1; dz <= 1; dz++ {
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nx, ny, nz := clamp(bx+dx, d), clamp(by+dy, d), clamp(bz+dz, d)
					l.neighbors[b*27+ni] = uint32(nx + ny*d + nz*d*d)
					ni++
				}
			}
		}
	}
}

func clamp(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}

// Steps implements Workload: one step per box.
func (l *LavaMD) Steps() int { return l.dim * l.dim * l.dim }

// Step accumulates forces on the particles of box i from all neighbor
// boxes. A neighbor index pointing outside the grid is corrupted control
// state.
func (l *LavaMD) Step(i int) error {
	boxes := l.dim * l.dim * l.dim
	if i < 0 || i >= boxes {
		return fmt.Errorf("LavaMD: step %d out of range", i)
	}
	const cutoff2 = 2.25 // (1.5 box widths)²
	for k := 0; k < l.particles; k++ {
		pi := i*l.particles + k
		var fx, fy, fz float64
		for n := 0; n < 27; n++ {
			nb := l.neighbors[i*27+n]
			if int(nb) >= boxes {
				return ErrCorruptState
			}
			for k2 := 0; k2 < l.particles; k2++ {
				pj := int(nb)*l.particles + k2
				if pj == pi {
					continue
				}
				dx := l.pos[3*pi] - l.pos[3*pj]
				dy := l.pos[3*pi+1] - l.pos[3*pj+1]
				dz := l.pos[3*pi+2] - l.pos[3*pj+2]
				r2 := dx*dx + dy*dy + dz*dz
				if r2 > cutoff2 || r2 < 1e-9 {
					continue
				}
				f := l.charge[pi] * l.charge[pj] / (r2 * math.Sqrt(r2))
				fx += f * dx
				fy += f * dy
				fz += f * dz
			}
		}
		l.force[3*pi] += fx
		l.force[3*pi+1] += fy
		l.force[3*pi+2] += fz
	}
	return nil
}

// Output implements Workload.
func (l *LavaMD) Output() []float64 { return append([]float64(nil), l.force...) }

// Regions implements Workload.
func (l *LavaMD) Regions() []Region {
	return []Region{
		{Name: "positions", F64: l.pos},
		{Name: "charges", F64: l.charge},
		{Name: "forces", F64: l.force},
		{Name: "neighbors", U32: l.neighbors},
	}
}

// HotSpot --------------------------------------------------------------------

// HotSpot is the 2-D thermal stencil solver: it iterates a heat-diffusion
// update over a processor floorplan's power map.
type HotSpot struct {
	n          int
	iterations int
	temp       []float64
	next       []float64
	power      []float64
}

// NewHotSpot builds an n×n grid solved for the given iteration count.
func NewHotSpot(n, iterations int) *HotSpot {
	if n < 4 {
		n = 4
	}
	if iterations < 1 {
		iterations = 1
	}
	return &HotSpot{
		n:          n,
		iterations: iterations,
		temp:       make([]float64, n*n),
		next:       make([]float64, n*n),
		power:      make([]float64, n*n),
	}
}

// Name implements Workload.
func (h *HotSpot) Name() string { return "HotSpot" }

// Class implements Workload.
func (h *HotSpot) Class() Class { return ClassHPC }

// Reset implements Workload.
func (h *HotSpot) Reset(seed uint64) {
	g := splitmix(seed)
	for i := range h.temp {
		h.temp[i] = 45 + 10*g.float() // ambient-ish °C
		h.next[i] = 0
		h.power[i] = 0
	}
	// A few hot functional units.
	n := h.n
	for u := 0; u < 4; u++ {
		cx, cy := g.intn(n), g.intn(n)
		for dy := -2; dy <= 2; dy++ {
			for dx := -2; dx <= 2; dx++ {
				x, y := clamp(cx+dx, n), clamp(cy+dy, n)
				h.power[y*n+x] += 1.5
			}
		}
	}
}

// Steps implements Workload: one diffusion iteration per step.
func (h *HotSpot) Steps() int { return h.iterations }

// Step applies one explicit diffusion update.
func (h *HotSpot) Step(i int) error {
	if i < 0 || i >= h.iterations {
		return fmt.Errorf("HotSpot: step %d out of range", i)
	}
	n := h.n
	const k = 0.2
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			c := h.temp[y*n+x]
			up := h.temp[clamp(y-1, n)*n+x]
			down := h.temp[clamp(y+1, n)*n+x]
			left := h.temp[y*n+clamp(x-1, n)]
			right := h.temp[y*n+clamp(x+1, n)]
			h.next[y*n+x] = c + k*((up+down+left+right)/4-c) + 0.1*h.power[y*n+x]
		}
	}
	h.temp, h.next = h.next, h.temp
	return nil
}

// Output implements Workload.
func (h *HotSpot) Output() []float64 { return append([]float64(nil), h.temp...) }

// Regions implements Workload.
func (h *HotSpot) Regions() []Region {
	return []Region{
		{Name: "temperature", F64: h.temp},
		{Name: "power", F64: h.power},
	}
}
