package workload

import (
	"fmt"
	"math"
)

// convNet is the shared machinery of the two CNN-ish workloads. Weights
// and activations are plain slices so the injector can flip bits in them —
// faults in weights model configuration/parameter memory corruption,
// faults in activations model datapath strikes.
type convNet struct {
	in, act1, act2, act3 []float64
	dense                []float64
	out                  []float64
}

// YOLO is a miniature object-detection network: two convolution+pool
// blocks feeding a detection head. It stands in for the YOLOv2 CNN the
// paper runs for autonomous-driving object detection. Output correctness
// follows the paper's criterion for CNNs: the detected class and its
// (quantized) confidence, not bit-exact tensors — CNNs mask most small
// numerical upsets.
type YOLO struct {
	size    int // input edge (32)
	classes int
	conv1   []float64 // 8 filters 3×3
	conv2   []float64 // 16 filters 3×3×8
	dense   []float64 // classes × flattened
	in      []float64
	a1      []float64 // 32×32×8
	p1      []float64 // 16×16×8
	a2      []float64 // 16×16×16
	p2      []float64 // 8×8×16
	scores  []float64
}

// NewYOLO builds the detection network.
func NewYOLO() *YOLO {
	const size, c1, c2, classes = 32, 8, 16, 10
	half, quarter := size/2, size/4
	return &YOLO{
		size:    size,
		classes: classes,
		conv1:   make([]float64, c1*3*3),
		conv2:   make([]float64, c2*c1*3*3),
		dense:   make([]float64, classes*quarter*quarter*c2),
		in:      make([]float64, size*size),
		a1:      make([]float64, size*size*c1),
		p1:      make([]float64, half*half*c1),
		a2:      make([]float64, half*half*c2),
		p2:      make([]float64, quarter*quarter*c2),
		scores:  make([]float64, classes),
	}
}

// Name implements Workload.
func (y *YOLO) Name() string { return "YOLO" }

// Class implements Workload.
func (y *YOLO) Class() Class { return ClassNeuralNetwork }

// Reset initializes weights (deterministic Xavier-ish) and paints a
// synthetic road scene.
func (y *YOLO) Reset(seed uint64) {
	g := splitmix(seed)
	initWeights(y.conv1, &g, 9)
	initWeights(y.conv2, &g, 72)
	initWeights(y.dense, &g, len(y.dense)/y.classes)
	n := y.size
	for yy := 0; yy < n; yy++ {
		for x := 0; x < n; x++ {
			y.in[yy*n+x] = 0.2 + 0.1*g.float()
		}
	}
	// A bright "vehicle" blob.
	cx, cy := 8+g.intn(16), 8+g.intn(16)
	for dy := -3; dy <= 3; dy++ {
		for dx := -3; dx <= 3; dx++ {
			y.in[clamp(cy+dy, n)*n+clamp(cx+dx, n)] = 0.95
		}
	}
	zero(y.a1)
	zero(y.p1)
	zero(y.a2)
	zero(y.p2)
	zero(y.scores)
}

func zero(xs []float64) {
	for i := range xs {
		xs[i] = 0
	}
}

func initWeights(w []float64, g *splitmix, fanIn int) {
	scale := math.Sqrt(2 / float64(fanIn))
	for i := range w {
		w[i] = (2*g.float() - 1) * scale
	}
}

// Steps implements Workload: conv1, pool1, conv2, pool2, head, softmax.
func (y *YOLO) Steps() int { return 6 }

// Step runs stage i of the network.
func (y *YOLO) Step(i int) error {
	const c1, c2 = 8, 16
	n := y.size
	half := n / 2
	switch i {
	case 0:
		conv2D(y.in, n, 1, y.conv1, c1, y.a1, true)
	case 1:
		maxPool(y.a1, n, c1, y.p1)
	case 2:
		conv2D(y.p1, half, c1, y.conv2, c2, y.a2, true)
	case 3:
		maxPool(y.a2, half, c2, y.p2)
	case 4:
		denseLayer(y.p2, y.dense, y.scores)
	case 5:
		softmax(y.scores)
	default:
		return fmt.Errorf("YOLO: step %d out of range", i)
	}
	return nil
}

// Output implements Workload: argmax class plus per-class confidences
// quantized to 0.01 (the paper-style detection-correctness criterion).
func (y *YOLO) Output() []float64 { return detectionOutput(y.scores) }

// Regions implements Workload.
func (y *YOLO) Regions() []Region {
	return []Region{
		{Name: "frame", F64: y.in},
		{Name: "conv1.w", F64: y.conv1},
		{Name: "conv2.w", F64: y.conv2},
		{Name: "head.w", F64: y.dense},
		{Name: "act1", F64: y.a1},
		{Name: "act2", F64: y.a2},
		{Name: "pool2", F64: y.p2},
	}
}

// MNIST is a small fully connected classifier for handwritten digits; the
// paper runs it on the FPGA, where it is large enough to exercise the
// fabric but too small for GPUs.
type MNIST struct {
	size   int // input edge (16)
	hidden int
	w1     []float64
	w2     []float64
	in     []float64
	h      []float64
	scores []float64
}

// NewMNIST builds the classifier.
func NewMNIST() *MNIST {
	const size, hidden, classes = 16, 64, 10
	return &MNIST{
		size:   size,
		hidden: hidden,
		w1:     make([]float64, hidden*size*size),
		w2:     make([]float64, classes*hidden),
		in:     make([]float64, size*size),
		h:      make([]float64, hidden),
		scores: make([]float64, classes),
	}
}

// Name implements Workload.
func (m *MNIST) Name() string { return "MNIST" }

// Class implements Workload.
func (m *MNIST) Class() Class { return ClassNeuralNetwork }

// Reset initializes weights and draws a synthetic digit (a bright stroke).
func (m *MNIST) Reset(seed uint64) {
	g := splitmix(seed)
	initWeights(m.w1, &g, m.size*m.size)
	initWeights(m.w2, &g, m.hidden)
	n := m.size
	for i := range m.in {
		m.in[i] = 0.05 * g.float()
	}
	// Vertical stroke with a random slant: a "1"-ish glyph.
	x := 4 + g.intn(8)
	slant := g.intn(3) - 1
	for yy := 2; yy < n-2; yy++ {
		px := clamp(x+slant*yy/8, n)
		m.in[yy*n+px] = 0.9
		m.in[yy*n+clamp(px+1, n)] = 0.6
	}
	zero(m.h)
	zero(m.scores)
}

// Steps implements Workload: hidden layer, output layer, softmax.
func (m *MNIST) Steps() int { return 3 }

// Step runs stage i.
func (m *MNIST) Step(i int) error {
	switch i {
	case 0:
		for h := 0; h < m.hidden; h++ {
			sum := 0.0
			base := h * m.size * m.size
			for j, v := range m.in {
				sum += m.w1[base+j] * v
			}
			if sum < 0 {
				sum = 0
			}
			m.h[h] = sum
		}
	case 1:
		denseLayer(m.h, m.w2, m.scores)
	case 2:
		softmax(m.scores)
	default:
		return fmt.Errorf("MNIST: step %d out of range", i)
	}
	return nil
}

// Output implements Workload (same detection criterion as YOLO).
func (m *MNIST) Output() []float64 { return detectionOutput(m.scores) }

// Regions implements Workload.
func (m *MNIST) Regions() []Region {
	return []Region{
		{Name: "digit", F64: m.in},
		{Name: "w1", F64: m.w1},
		{Name: "w2", F64: m.w2},
		{Name: "hidden", F64: m.h},
	}
}

// Shared NN primitives -------------------------------------------------------

// conv2D applies chOut 3×3 filters over a chIn-channel square input with
// clamped borders, writing chOut feature maps; relu optionally rectifies.
func conv2D(in []float64, n, chIn int, w []float64, chOut int, out []float64, relu bool) {
	for co := 0; co < chOut; co++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				sum := 0.0
				for ci := 0; ci < chIn; ci++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							wi := ((co*chIn+ci)*3+(dy+1))*3 + (dx + 1)
							sum += w[wi] * in[(ci*n+clamp(y+dy, n))*n+clamp(x+dx, n)]
						}
					}
				}
				if relu && sum < 0 {
					sum = 0
				}
				out[(co*n+y)*n+x] = sum
			}
		}
	}
}

// maxPool halves each of ch n×n maps with 2×2 max pooling.
func maxPool(in []float64, n, ch int, out []float64) {
	half := n / 2
	for c := 0; c < ch; c++ {
		for y := 0; y < half; y++ {
			for x := 0; x < half; x++ {
				m := in[(c*n+2*y)*n+2*x]
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						v := in[(c*n+2*y+dy)*n+2*x+dx]
						if v > m {
							m = v
						}
					}
				}
				out[(c*half+y)*half+x] = m
			}
		}
	}
}

// denseLayer computes out = W·in with W laid out row-major
// (len(out) × len(in)).
func denseLayer(in, w, out []float64) {
	cols := len(in)
	for r := range out {
		sum := 0.0
		base := r * cols
		for j, v := range in {
			sum += w[base+j] * v
		}
		out[r] = sum
	}
}

// softmax normalizes scores in place (numerically stabilized).
func softmax(scores []float64) {
	maxV := math.Inf(-1)
	for _, v := range scores {
		if v > maxV {
			maxV = v
		}
	}
	sum := 0.0
	for i, v := range scores {
		scores[i] = math.Exp(v - maxV)
		sum += scores[i]
	}
	if sum == 0 || math.IsNaN(sum) {
		return // leave raw; golden comparison will flag the corruption
	}
	for i := range scores {
		scores[i] /= sum
	}
}

// detectionOutput builds the CNN correctness signature: argmax first, then
// confidences quantized to 0.01.
func detectionOutput(scores []float64) []float64 {
	out := make([]float64, len(scores)+1)
	best := 0
	for i, v := range scores {
		if v > scores[best] {
			best = i
		}
		out[i+1] = math.Round(v*100) / 100
	}
	out[0] = float64(best)
	return out
}
