// Package workload implements the nine benchmark codes the paper runs on
// its devices (§III-B): four HPC kernels (MxM, LUD, LavaMD, HotSpot), three
// heterogeneous codes (SC, CED, BFS), and two neural networks (YOLO,
// MNIST).
//
// Each workload executes in discrete steps between which the fault injector
// may flip bits in its exposed memory regions; its final output is compared
// bit-exactly against a golden run to detect SDCs, while corrupted control
// state and runaway iteration surface as errors (the DUE path).
package workload

import (
	"errors"
	"fmt"
	"math"
)

// Class groups workloads the way the paper assigns them to devices.
type Class int

// Workload classes.
const (
	ClassHPC Class = iota + 1
	ClassHeterogeneous
	ClassNeuralNetwork
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassHPC:
		return "HPC"
	case ClassHeterogeneous:
		return "heterogeneous"
	case ClassNeuralNetwork:
		return "neural network"
	default:
		return "unknown"
	}
}

// Execution errors: a workload returning one of these from Step is what
// the beam harness classifies as a DUE (the application "dies or gets
// stuck", §III-C).
var (
	// ErrHang marks a step that exceeded its iteration watchdog.
	ErrHang = errors.New("workload: hang detected")
	// ErrCorruptState marks detectably corrupted control state (the
	// analogue of a crash / illegal access).
	ErrCorruptState = errors.New("workload: corrupt control state")
)

// Workload is a deterministic, stepwise, fault-injectable kernel.
type Workload interface {
	// Name is the benchmark's short name (e.g. "MxM").
	Name() string
	// Class is the benchmark family.
	Class() Class
	// Reset (re)initializes all inputs and state from the seed.
	Reset(seed uint64)
	// Steps is the number of execution steps after Reset.
	Steps() int
	// Step runs step i (0-based). It may return ErrHang or
	// ErrCorruptState when injected faults break control flow.
	Step(i int) error
	// Output returns a copy of the result signature used for golden
	// comparison. For the CNNs this is the quantized detection output
	// (class + confidence), matching how the paper judges CNN correctness.
	Output() []float64
	// Regions exposes the mutable state for fault injection.
	Regions() []Region
}

// Region is one injectable memory region. Exactly one of F64 or U32 is
// non-nil. U32 regions hold control-ish state (indices, flags) whose
// corruption tends toward DUEs; F64 regions hold data.
type Region struct {
	Name string
	F64  []float64
	U32  []uint32
}

// Words returns the number of injectable words in the region.
func (r Region) Words() int {
	if r.F64 != nil {
		return len(r.F64)
	}
	return len(r.U32)
}

// BitsPerWord returns the word width in bits.
func (r Region) BitsPerWord() int {
	if r.F64 != nil {
		return 64
	}
	return 32
}

// FlipBit flips one bit of one word in place. It returns an error for
// out-of-range coordinates.
func (r Region) FlipBit(word, bit int) error {
	if word < 0 || word >= r.Words() {
		return fmt.Errorf("workload: word %d out of range [0,%d)", word, r.Words())
	}
	if bit < 0 || bit >= r.BitsPerWord() {
		return fmt.Errorf("workload: bit %d out of range [0,%d)", bit, r.BitsPerWord())
	}
	if r.F64 != nil {
		r.F64[word] = math.Float64frombits(math.Float64bits(r.F64[word]) ^ (1 << uint(bit)))
		return nil
	}
	r.U32[word] ^= 1 << uint(bit)
	return nil
}

// TotalWords sums injectable words over a region set.
func TotalWords(regions []Region) int {
	n := 0
	for _, r := range regions {
		n += r.Words()
	}
	return n
}

// Registry ------------------------------------------------------------------

// New constructs a workload by name. Names match the paper's benchmark
// list: MxM, LUD, LavaMD, HotSpot, SC, CED, BFS, YOLO, MNIST.
func New(name string) (Workload, error) {
	switch name {
	case "MxM":
		return NewMxM(24), nil
	case "LUD":
		return NewLUD(32), nil
	case "LavaMD":
		return NewLavaMD(3, 8), nil
	case "HotSpot":
		return NewHotSpot(32, 16), nil
	case "SC":
		return NewSC(4096), nil
	case "CED":
		return NewCED(48), nil
	case "BFS":
		return NewBFS(1024, 4), nil
	case "YOLO":
		return NewYOLO(), nil
	case "MNIST":
		return NewMNIST(), nil
	default:
		return nil, fmt.Errorf("workload: unknown benchmark %q", name)
	}
}

// Names lists all benchmarks in the paper's order.
func Names() []string {
	return []string{"MxM", "LUD", "LavaMD", "HotSpot", "SC", "CED", "BFS", "YOLO", "MNIST"}
}

// ForDeviceKind returns the benchmark names the paper runs on a device
// class (§III-B): HPC codes on Xeon Phi and GPUs (plus YOLO on GPUs),
// heterogeneous codes on the APU, and the CNNs on the FPGA.
func ForDeviceKind(kind string) []string {
	switch kind {
	case "accelerator": // Xeon Phi
		return []string{"MxM", "LUD", "LavaMD", "HotSpot"}
	case "GPU":
		return []string{"MxM", "LUD", "LavaMD", "HotSpot", "YOLO"}
	case "APU":
		return []string{"SC", "CED", "BFS"}
	case "FPGA":
		return []string{"MNIST", "YOLO"}
	default:
		return nil
	}
}

// splitmix is a tiny deterministic generator for input initialization; the
// workloads must not depend on package rng to keep the dependency graph
// one-directional (rng is for the simulators).
type splitmix uint64

func (s *splitmix) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	x := uint64(*s)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// float returns a uniform value in [0, 1).
func (s *splitmix) float() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// intn returns a uniform int in [0, n).
func (s *splitmix) intn(n int) int {
	return int(s.next() % uint64(n))
}
