package workload

import (
	"fmt"
	"math"
)

// SC -------------------------------------------------------------------------

// SC is stream compaction, the paper's memory-bound data-manipulation
// primitive: it removes the elements failing a predicate from an array.
type SC struct {
	n      int
	chunks int
	data   []float64
	out    []float64
	flags  []uint32
	cursor []uint32 // [0] = write position; control state
}

// NewSC builds a stream-compaction workload over n elements.
func NewSC(n int) *SC {
	if n < 16 {
		n = 16
	}
	return &SC{
		n:      n,
		chunks: 16,
		data:   make([]float64, n),
		out:    make([]float64, n),
		flags:  make([]uint32, n),
		cursor: make([]uint32, 1),
	}
}

// Name implements Workload.
func (c *SC) Name() string { return "SC" }

// Class implements Workload.
func (c *SC) Class() Class { return ClassHeterogeneous }

// Reset implements Workload.
func (c *SC) Reset(seed uint64) {
	g := splitmix(seed)
	for i := range c.data {
		c.data[i] = 2*g.float() - 1
		c.out[i] = 0
		if c.data[i] > 0 {
			c.flags[i] = 1
		} else {
			c.flags[i] = 0
		}
	}
	c.cursor[0] = 0
}

// Steps implements Workload: the array is compacted chunk by chunk.
func (c *SC) Steps() int { return c.chunks }

// Step compacts chunk i. A write cursor pointing outside the output array
// is corrupted control state.
func (c *SC) Step(i int) error {
	if i < 0 || i >= c.chunks {
		return fmt.Errorf("SC: step %d out of range", i)
	}
	chunk := (c.n + c.chunks - 1) / c.chunks
	lo := i * chunk
	hi := lo + chunk
	if hi > c.n {
		hi = c.n
	}
	for j := lo; j < hi; j++ {
		if c.flags[j] == 0 {
			continue
		}
		if c.flags[j] != 1 {
			return ErrCorruptState // flags are strictly 0/1
		}
		w := c.cursor[0]
		if int(w) >= c.n {
			return ErrCorruptState
		}
		c.out[w] = c.data[j]
		c.cursor[0] = w + 1
	}
	return nil
}

// Output implements Workload: the compacted prefix plus the final count.
func (c *SC) Output() []float64 {
	out := make([]float64, c.n+1)
	copy(out, c.out)
	out[c.n] = float64(c.cursor[0])
	return out
}

// Regions implements Workload.
func (c *SC) Regions() []Region {
	return []Region{
		{Name: "data", F64: c.data},
		{Name: "out", F64: c.out},
		{Name: "flags", U32: c.flags},
		{Name: "cursor", U32: c.cursor},
	}
}

// CED ------------------------------------------------------------------------

// CED is Canny-style edge detection on a synthetic frame: Gaussian blur,
// Sobel gradients, and hysteresis-free thresholding. The paper runs it
// concurrently on the APU's CPU and GPU.
type CED struct {
	n     int
	img   []float64
	blur  []float64
	grad  []float64
	edges []float64
}

// NewCED builds an n×n edge-detection workload.
func NewCED(n int) *CED {
	if n < 8 {
		n = 8
	}
	return &CED{
		n:     n,
		img:   make([]float64, n*n),
		blur:  make([]float64, n*n),
		grad:  make([]float64, n*n),
		edges: make([]float64, n*n),
	}
}

// Name implements Workload.
func (c *CED) Name() string { return "CED" }

// Class implements Workload.
func (c *CED) Class() Class { return ClassHeterogeneous }

// Reset paints a synthetic scene: gradient background with bright boxes
// (urban-dataset-like content without the dataset).
func (c *CED) Reset(seed uint64) {
	g := splitmix(seed)
	n := c.n
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			c.img[y*n+x] = float64(x)/float64(n)*0.3 + 0.05*g.float()
		}
	}
	for b := 0; b < 3; b++ {
		cx, cy := g.intn(n), g.intn(n)
		w := 3 + g.intn(5)
		for dy := 0; dy < w; dy++ {
			for dx := 0; dx < w; dx++ {
				x, y := clamp(cx+dx, n), clamp(cy+dy, n)
				c.img[y*n+x] = 0.9
			}
		}
	}
	for i := range c.blur {
		c.blur[i], c.grad[i], c.edges[i] = 0, 0, 0
	}
}

// Steps implements Workload: blur, gradient, threshold.
func (c *CED) Steps() int { return 3 }

// Step runs pipeline stage i.
func (c *CED) Step(i int) error {
	n := c.n
	switch i {
	case 0: // 3×3 Gaussian blur
		k := [3][3]float64{{1, 2, 1}, {2, 4, 2}, {1, 2, 1}}
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				sum := 0.0
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						sum += k[dy+1][dx+1] * c.img[clamp(y+dy, n)*n+clamp(x+dx, n)]
					}
				}
				c.blur[y*n+x] = sum / 16
			}
		}
	case 1: // Sobel gradient magnitude
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				p := func(dx, dy int) float64 {
					return c.blur[clamp(y+dy, n)*n+clamp(x+dx, n)]
				}
				gx := -p(-1, -1) - 2*p(-1, 0) - p(-1, 1) + p(1, -1) + 2*p(1, 0) + p(1, 1)
				gy := -p(-1, -1) - 2*p(0, -1) - p(1, -1) + p(-1, 1) + 2*p(0, 1) + p(1, 1)
				c.grad[y*n+x] = math.Sqrt(gx*gx + gy*gy)
			}
		}
	case 2: // threshold
		for j, v := range c.grad {
			if v > 0.4 {
				c.edges[j] = 1
			} else {
				c.edges[j] = 0
			}
		}
	default:
		return fmt.Errorf("CED: step %d out of range", i)
	}
	return nil
}

// Output implements Workload.
func (c *CED) Output() []float64 { return append([]float64(nil), c.edges...) }

// Regions implements Workload.
func (c *CED) Regions() []Region {
	return []Region{
		{Name: "frame", F64: c.img},
		{Name: "blur", F64: c.blur},
		{Name: "gradient", F64: c.grad},
		{Name: "edges", F64: c.edges},
	}
}

// BFS ------------------------------------------------------------------------

// unvisited marks a node not yet reached by the search.
const unvisited = math.MaxUint32

// BFS is level-synchronous breadth-first search over a synthetic road-like
// graph (ring plus random shortcuts), the paper's irregular-memory-access
// code used in navigation systems.
type BFS struct {
	n       int
	degree  int
	offsets []uint32 // CSR offsets, len n+1
	edges   []uint32 // CSR targets
	dist    []uint32
	levels  int
}

// NewBFS builds a BFS workload over n nodes with the given average degree.
func NewBFS(n, degree int) *BFS {
	if n < 8 {
		n = 8
	}
	if degree < 2 {
		degree = 2
	}
	return &BFS{
		n:       n,
		degree:  degree,
		offsets: make([]uint32, n+1),
		edges:   make([]uint32, n*degree),
		dist:    make([]uint32, n),
		levels:  64,
	}
}

// Name implements Workload.
func (b *BFS) Name() string { return "BFS" }

// Class implements Workload.
func (b *BFS) Class() Class { return ClassHeterogeneous }

// Reset builds the graph: each node links to its ring successor and
// degree-1 random shortcuts, giving small-world distances.
func (b *BFS) Reset(seed uint64) {
	g := splitmix(seed)
	e := 0
	for v := 0; v < b.n; v++ {
		b.offsets[v] = uint32(e)
		b.edges[e] = uint32((v + 1) % b.n)
		e++
		for k := 1; k < b.degree; k++ {
			b.edges[e] = uint32(g.intn(b.n))
			e++
		}
		b.dist[v] = unvisited
	}
	b.offsets[b.n] = uint32(e)
	b.dist[0] = 0
}

// Steps implements Workload: one frontier level per step, up to the level
// watchdog.
func (b *BFS) Steps() int { return b.levels }

// Step relaxes the frontier at distance i. Edge targets or offsets outside
// the graph are corrupted control state.
func (b *BFS) Step(i int) error {
	if i < 0 || i >= b.levels {
		return fmt.Errorf("BFS: step %d out of range", i)
	}
	level := uint32(i)
	for v := 0; v < b.n; v++ {
		if b.dist[v] != level {
			continue
		}
		lo, hi := b.offsets[v], b.offsets[v+1]
		if lo > hi || int(hi) > len(b.edges) {
			return ErrCorruptState
		}
		for e := lo; e < hi; e++ {
			t := b.edges[e]
			if int(t) >= b.n {
				return ErrCorruptState
			}
			if b.dist[t] == unvisited {
				b.dist[t] = level + 1
			}
		}
	}
	return nil
}

// Output implements Workload.
func (b *BFS) Output() []float64 {
	out := make([]float64, b.n)
	for i, d := range b.dist {
		out[i] = float64(d)
	}
	return out
}

// Regions implements Workload.
func (b *BFS) Regions() []Region {
	return []Region{
		{Name: "offsets", U32: b.offsets},
		{Name: "edges", U32: b.edges},
		{Name: "dist", U32: b.dist},
	}
}
