// Package checkpoint turns the failure rates produced by the fit engine
// into checkpoint/restart policy, implementing the paper's closing
// observation (§VI): "when supercomputer time is allocated, the checkpoint
// frequency may need to consider weather conditions" — because rain
// doubles the thermal-neutron flux and with it the DUE rate.
//
// The model is the classic Young/Daly first-order optimum with the
// standard waste accounting: an application that checkpoints every tau
// seconds at cost delta, on a machine with MTBF M, wastes approximately
// delta/tau (checkpoint overhead) + tau/(2M) (lost work per failure).
package checkpoint

import (
	"errors"
	"math"

	"neutronsim/internal/units"
)

// YoungInterval returns the first-order optimal checkpoint interval
// tau = sqrt(2·delta·M) in seconds.
func YoungInterval(deltaSeconds, mtbfSeconds float64) (float64, error) {
	if deltaSeconds <= 0 {
		return 0, errors.New("checkpoint: non-positive checkpoint cost")
	}
	if mtbfSeconds <= 0 {
		return 0, errors.New("checkpoint: non-positive MTBF")
	}
	return math.Sqrt(2 * deltaSeconds * mtbfSeconds), nil
}

// DalyInterval returns Daly's higher-order refinement of the optimal
// interval, valid for delta < 2M:
//
//	tau = sqrt(2·delta·M) · [1 + (1/3)·sqrt(delta/(2M)) + (delta/(2M))/9] − delta
//
// For delta >= 2M the machine fails faster than it checkpoints; the
// returned interval degenerates to M (checkpoint constantly).
func DalyInterval(deltaSeconds, mtbfSeconds float64) (float64, error) {
	if deltaSeconds <= 0 {
		return 0, errors.New("checkpoint: non-positive checkpoint cost")
	}
	if mtbfSeconds <= 0 {
		return 0, errors.New("checkpoint: non-positive MTBF")
	}
	if deltaSeconds >= 2*mtbfSeconds {
		return mtbfSeconds, nil
	}
	x := deltaSeconds / (2 * mtbfSeconds)
	tau := math.Sqrt(2*deltaSeconds*mtbfSeconds)*(1+math.Sqrt(x)/3+x/9) - deltaSeconds
	if tau <= 0 {
		tau = mtbfSeconds
	}
	return tau, nil
}

// Waste returns the expected fraction of machine time lost to checkpoint
// overhead plus failure rework for interval tau.
func Waste(tauSeconds, deltaSeconds, mtbfSeconds float64) float64 {
	if tauSeconds <= 0 || mtbfSeconds <= 0 {
		return 1
	}
	w := deltaSeconds/tauSeconds + (tauSeconds+deltaSeconds)/(2*mtbfSeconds)
	if w > 1 {
		w = 1
	}
	return w
}

// MTBFSeconds converts a DUE FIT rate into seconds between failures.
func MTBFSeconds(due units.FIT) float64 {
	return due.MTBF() * 3600
}

// Day is one day of weather for an adaptive schedule.
type Day struct {
	Raining bool
}

// DayPlan is the policy and cost for one day.
type DayPlan struct {
	Raining bool
	// MTBF in seconds for the day's weather.
	MTBFSeconds float64
	// Interval is the adaptively optimal checkpoint period (Daly).
	IntervalSeconds float64
	// AdaptiveWaste is the waste using Interval.
	AdaptiveWaste float64
	// StaticWaste is the waste if the sunny-day interval is kept.
	StaticWaste float64
}

// Plan is a weather-aware checkpoint schedule.
type Plan struct {
	Days []DayPlan
	// SunnyIntervalSeconds is the static policy baseline.
	SunnyIntervalSeconds float64
	// MeanAdaptiveWaste and MeanStaticWaste average over the days.
	MeanAdaptiveWaste float64
	MeanStaticWaste   float64
}

// Savings is the absolute waste reduction of the adaptive policy.
func (p Plan) Savings() float64 { return p.MeanStaticWaste - p.MeanAdaptiveWaste }

// PlanSchedule builds the adaptive schedule for a weather sequence given
// the machine's DUE rates on dry and rainy days and the checkpoint cost.
func PlanSchedule(sunnyDUE, rainyDUE units.FIT, deltaSeconds float64, days []Day) (Plan, error) {
	if len(days) == 0 {
		return Plan{}, errors.New("checkpoint: empty weather sequence")
	}
	if sunnyDUE <= 0 || rainyDUE <= 0 {
		return Plan{}, errors.New("checkpoint: non-positive DUE rate")
	}
	if rainyDUE < sunnyDUE {
		return Plan{}, errors.New("checkpoint: rainy DUE rate below sunny rate")
	}
	mtbfSunny := MTBFSeconds(sunnyDUE)
	mtbfRainy := MTBFSeconds(rainyDUE)
	staticTau, err := DalyInterval(deltaSeconds, mtbfSunny)
	if err != nil {
		return Plan{}, err
	}
	plan := Plan{SunnyIntervalSeconds: staticTau}
	for _, d := range days {
		m := mtbfSunny
		if d.Raining {
			m = mtbfRainy
		}
		tau, err := DalyInterval(deltaSeconds, m)
		if err != nil {
			return Plan{}, err
		}
		dp := DayPlan{
			Raining:         d.Raining,
			MTBFSeconds:     m,
			IntervalSeconds: tau,
			AdaptiveWaste:   Waste(tau, deltaSeconds, m),
			StaticWaste:     Waste(staticTau, deltaSeconds, m),
		}
		plan.Days = append(plan.Days, dp)
		plan.MeanAdaptiveWaste += dp.AdaptiveWaste
		plan.MeanStaticWaste += dp.StaticWaste
	}
	plan.MeanAdaptiveWaste /= float64(len(days))
	plan.MeanStaticWaste /= float64(len(days))
	return plan, nil
}
