package checkpoint

import (
	"math"
	"testing"
	"testing/quick"

	"neutronsim/internal/units"
)

func TestYoungInterval(t *testing.T) {
	// delta=60s, M=24h: tau = sqrt(2*60*86400) ≈ 3221 s.
	tau, err := YoungInterval(60, 86400)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tau-3221) > 2 {
		t.Errorf("Young interval = %v, want ~3221", tau)
	}
}

func TestYoungValidation(t *testing.T) {
	if _, err := YoungInterval(0, 100); err == nil {
		t.Error("zero delta accepted")
	}
	if _, err := YoungInterval(60, 0); err == nil {
		t.Error("zero MTBF accepted")
	}
}

func TestDalyCloseToYoungForSmallDelta(t *testing.T) {
	young, _ := YoungInterval(10, 1e6)
	daly, err := DalyInterval(10, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(daly-young)/young > 0.01 {
		t.Errorf("Daly %v should approach Young %v for delta << M", daly, young)
	}
}

func TestDalyDegenerate(t *testing.T) {
	tau, err := DalyInterval(1000, 400) // delta >= 2M
	if err != nil {
		t.Fatal(err)
	}
	if tau != 400 {
		t.Errorf("degenerate Daly = %v, want MTBF", tau)
	}
}

func TestDalyValidation(t *testing.T) {
	if _, err := DalyInterval(0, 100); err == nil {
		t.Error("zero delta accepted")
	}
	if _, err := DalyInterval(60, -1); err == nil {
		t.Error("negative MTBF accepted")
	}
}

// Property: the Daly interval minimizes waste compared with nearby
// intervals.
func TestDalyMinimizesWaste(t *testing.T) {
	f := func(rawDelta, rawM float64) bool {
		delta := 1 + math.Abs(math.Mod(rawDelta, 600))
		m := 1e4 + math.Abs(math.Mod(rawM, 1e7))
		tau, err := DalyInterval(delta, m)
		if err != nil || tau <= 0 {
			return false
		}
		w := Waste(tau, delta, m)
		return w <= Waste(tau*1.5, delta, m)+1e-9 && w <= Waste(tau/1.5, delta, m)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWasteBounds(t *testing.T) {
	if got := Waste(0, 60, 1000); got != 1 {
		t.Errorf("degenerate waste = %v", got)
	}
	if got := Waste(100, 60, 10); got != 1 {
		t.Errorf("waste should clamp at 1, got %v", got)
	}
	w := Waste(3600, 60, 1e6)
	if w <= 0 || w >= 0.1 {
		t.Errorf("healthy machine waste = %v", w)
	}
}

func TestMTBFSeconds(t *testing.T) {
	// 1e6 FIT ⇒ MTBF 1000 h ⇒ 3.6e6 s.
	if got := MTBFSeconds(units.FIT(1e6)); math.Abs(got-3.6e6) > 1 {
		t.Errorf("MTBF = %v", got)
	}
}

func TestPlanScheduleValidation(t *testing.T) {
	days := []Day{{false}}
	if _, err := PlanSchedule(0, 1, 60, days); err == nil {
		t.Error("zero sunny rate accepted")
	}
	if _, err := PlanSchedule(2, 1, 60, days); err == nil {
		t.Error("rainy rate below sunny accepted")
	}
	if _, err := PlanSchedule(1, 2, 60, nil); err == nil {
		t.Error("empty schedule accepted")
	}
}

func TestPlanScheduleAdaptiveWins(t *testing.T) {
	// A supercomputer-scale aggregate DUE rate: 5e5 FIT sunny (MTBF 2000 h),
	// rain pushes it up 40%.
	days := []Day{
		{false}, {false}, {true}, {true}, {false}, {true}, {false},
	}
	plan, err := PlanSchedule(5e5, 7e5, 120, days)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Days) != 7 {
		t.Fatalf("%d day plans", len(plan.Days))
	}
	if plan.Savings() < 0 {
		t.Errorf("adaptive policy worse than static: %+v", plan)
	}
	for _, d := range plan.Days {
		if d.Raining && d.IntervalSeconds >= plan.SunnyIntervalSeconds {
			t.Error("rainy days should checkpoint more often")
		}
		if !d.Raining && math.Abs(d.IntervalSeconds-plan.SunnyIntervalSeconds) > 1e-9 {
			t.Error("sunny days should use the static interval")
		}
		if d.AdaptiveWaste > d.StaticWaste+1e-12 {
			t.Errorf("adaptive waste exceeds static on a day: %+v", d)
		}
	}
}

func TestPlanScheduleAllSunnyNoSavings(t *testing.T) {
	days := make([]Day, 5)
	plan, err := PlanSchedule(5e5, 1e6, 120, days)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Savings() != 0 {
		t.Errorf("all-sunny savings = %v, want 0", plan.Savings())
	}
}
