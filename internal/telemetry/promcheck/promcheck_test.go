package promcheck

import (
	"strings"
	"testing"
)

func validate(doc string) error {
	return Validate(strings.NewReader(doc))
}

func TestValidDocuments(t *testing.T) {
	docs := map[string]string{
		"empty": "",
		"counter": `# TYPE jobs_total counter
jobs_total 3
`,
		"gauge with labels": `# TYPE queue_depth gauge
queue_depth{pool="default"} 2
`,
		"histogram": `# TYPE latency histogram
latency_bucket{le="0.1"} 1
latency_bucket{le="1"} 4
latency_bucket{le="+Inf"} 5
latency_sum 2.5
latency_count 5
`,
		"summary": `# TYPE span_seconds summary
span_seconds_sum{path="a/b"} 1.5
span_seconds_count{path="a/b"} 3
`,
		"escapes and timestamp": `# TYPE g gauge
g{l="a\\b\"c\nd"} 1 1700000000000
`,
		"help and comments": `# HELP jobs_total submitted jobs
# arbitrary comment
# TYPE jobs_total counter
jobs_total 0
`,
	}
	for name, doc := range docs {
		if err := validate(doc); err != nil {
			t.Errorf("%s: unexpected error: %v", name, err)
		}
	}
}

func TestInvalidDocuments(t *testing.T) {
	docs := map[string]string{
		"sample without TYPE": "jobs_total 3\n",
		"duplicate TYPE": `# TYPE a counter
a 1
# TYPE a counter
a 2
`,
		"interleaved families": `# TYPE a counter
# TYPE b counter
a 1
b 1
a 2
`,
		"negative counter": `# TYPE a counter
a -1
`,
		"NaN counter": `# TYPE a counter
a NaN
`,
		"counter sample name mismatch": `# TYPE a counter
a_other 1
`,
		"family without samples": `# TYPE a counter
`,
		"histogram missing +Inf": `# TYPE h histogram
h_bucket{le="1"} 2
h_sum 1
h_count 2
`,
		"histogram +Inf != count": `# TYPE h histogram
h_bucket{le="+Inf"} 2
h_sum 1
h_count 3
`,
		"histogram buckets not cumulative": `# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 5
h_sum 1
h_count 5
`,
		"histogram bounds not increasing": `# TYPE h histogram
h_bucket{le="2"} 1
h_bucket{le="1"} 2
h_bucket{le="+Inf"} 2
h_sum 1
h_count 2
`,
		"bucket without le": `# TYPE h histogram
h_bucket{x="1"} 1
`,
		"unknown type": `# TYPE a widget
a 1
`,
		"bad metric name": `# TYPE 9a counter
9a 1
`,
		"bad label name": `# TYPE g gauge
g{9l="x"} 1
`,
		"duplicate label": `# TYPE g gauge
g{l="x",l="y"} 1
`,
		"unquoted label value": `# TYPE g gauge
g{l=x} 1
`,
		"illegal escape": `# TYPE g gauge
g{l="a\tb"} 1
`,
		"unterminated label block": `# TYPE g gauge
g{l="x" 1
`,
		"bad value": `# TYPE g gauge
g one
`,
		"bad timestamp": `# TYPE g gauge
g 1 soon
`,
		"summary stray series": `# TYPE s summary
s_bucket{le="1"} 1
`,
		"malformed TYPE": `# TYPE a
a 1
`,
	}
	for name, doc := range docs {
		if err := validate(doc); err == nil {
			t.Errorf("%s: expected a validation error", name)
		}
	}
}
