// Package promcheck is a strict, hand-written validator for the
// Prometheus text exposition format (0.0.4) — the test-side contract for
// the /metrics endpoints. It is deliberately pickier than a scraper:
// every sample must belong to a declared metric family, families must not
// repeat or interleave, histogram buckets must be cumulative and close
// with le="+Inf" equal to _count, and counters must be non-negative.
// CI runs it against a live neutrond after a campaign, so an exposition
// regression fails the build rather than a dashboard.
package promcheck

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

type family struct {
	name    string
	typ     string
	samples int
	closed  bool // a later TYPE line was seen; no more samples allowed

	// histogram accounting
	lastCum   float64
	lastLe    float64
	sawInf    bool
	infCount  float64
	count     float64
	hasCount  bool
	bucketSeq int
}

// Validate reads one exposition document and returns the first violation
// found, or nil if the document is valid. An empty document is valid.
func Validate(r io.Reader) error {
	families := map[string]*family{}
	var current *family
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fam, err := parseMeta(line, families, lineNo)
			if err != nil {
				return err
			}
			if fam != nil {
				if current != nil && current != fam {
					current.closed = true
					if err := finishFamily(current); err != nil {
						return fmt.Errorf("line %d: %w", lineNo, err)
					}
				}
				current = fam
			}
			continue
		}
		if err := parseSample(line, families, &current, lineNo); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("promcheck: read: %w", err)
	}
	if current != nil {
		if err := finishFamily(current); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	for _, fam := range families {
		if fam.samples == 0 {
			return fmt.Errorf("promcheck: family %q declared but has no samples", fam.name)
		}
	}
	return nil
}

// parseMeta handles comment lines; TYPE lines open a family.
func parseMeta(line string, families map[string]*family, lineNo int) (*family, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || fields[0] != "#" {
		return nil, fmt.Errorf("promcheck: line %d: malformed comment %q", lineNo, line)
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !nameRe.MatchString(fields[2]) {
			return nil, fmt.Errorf("promcheck: line %d: malformed HELP line", lineNo)
		}
		return nil, nil
	case "TYPE":
		if len(fields) != 4 {
			return nil, fmt.Errorf("promcheck: line %d: TYPE needs name and type", lineNo)
		}
		name, typ := fields[2], fields[3]
		if !nameRe.MatchString(name) {
			return nil, fmt.Errorf("promcheck: line %d: invalid metric name %q", lineNo, name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return nil, fmt.Errorf("promcheck: line %d: unknown metric type %q", lineNo, typ)
		}
		if _, dup := families[name]; dup {
			return nil, fmt.Errorf("promcheck: line %d: duplicate TYPE for %q", lineNo, name)
		}
		fam := &family{name: name, typ: typ, lastLe: math.Inf(-1)}
		families[name] = fam
		return fam, nil
	default:
		// Arbitrary comments are allowed.
		return nil, nil
	}
}

// sampleName splits a sample line into name, label block and value.
func parseSample(line string, families map[string]*family, current **family, lineNo int) error {
	rest := line
	nameEnd := strings.IndexAny(rest, "{ ")
	if nameEnd <= 0 {
		return fmt.Errorf("promcheck: line %d: malformed sample %q", lineNo, line)
	}
	name := rest[:nameEnd]
	if !nameRe.MatchString(name) {
		return fmt.Errorf("promcheck: line %d: invalid sample name %q", lineNo, name)
	}
	rest = rest[nameEnd:]
	labels := map[string]string{}
	if rest[0] == '{' {
		close := strings.LastIndexByte(rest, '}')
		if close < 0 {
			return fmt.Errorf("promcheck: line %d: unterminated label block", lineNo)
		}
		var err error
		labels, err = parseLabels(rest[1:close], lineNo)
		if err != nil {
			return err
		}
		rest = rest[close+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return fmt.Errorf("promcheck: line %d: want value [timestamp], got %q", lineNo, rest)
	}
	value, err := parseValue(fields[0])
	if err != nil {
		return fmt.Errorf("promcheck: line %d: %w", lineNo, err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("promcheck: line %d: bad timestamp %q", lineNo, fields[1])
		}
	}

	fam := familyFor(name, families)
	if fam == nil {
		return fmt.Errorf("promcheck: line %d: sample %q without a TYPE declaration", lineNo, name)
	}
	if fam.closed {
		return fmt.Errorf("promcheck: line %d: samples for %q interleave with another family", lineNo, fam.name)
	}
	if *current != nil && *current != fam {
		(*current).closed = true
		if err := finishFamily(*current); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	*current = fam
	fam.samples++
	return checkSample(fam, name, labels, value, lineNo)
}

// familyFor resolves a sample to its family, honoring the histogram and
// summary sub-series suffixes.
func familyFor(name string, families map[string]*family) *family {
	if fam, ok := families[name]; ok {
		return fam
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		if fam, exists := families[base]; exists &&
			(fam.typ == "histogram" || fam.typ == "summary") &&
			(suffix != "_bucket" || fam.typ == "histogram") {
			return fam
		}
	}
	return nil
}

// checkSample enforces per-type semantics.
func checkSample(fam *family, name string, labels map[string]string, value float64, lineNo int) error {
	switch fam.typ {
	case "counter":
		if name != fam.name {
			return fmt.Errorf("promcheck: line %d: counter sample %q must be named %q", lineNo, name, fam.name)
		}
		if value < 0 || math.IsNaN(value) {
			return fmt.Errorf("promcheck: line %d: counter %q has invalid value %v", lineNo, name, value)
		}
	case "gauge", "untyped":
		if name != fam.name {
			return fmt.Errorf("promcheck: line %d: %s sample %q must be named %q", lineNo, fam.typ, name, fam.name)
		}
	case "summary":
		switch name {
		case fam.name + "_sum", fam.name + "_count", fam.name:
		default:
			return fmt.Errorf("promcheck: line %d: unexpected summary series %q", lineNo, name)
		}
		if name == fam.name+"_count" && (value < 0 || math.IsNaN(value)) {
			return fmt.Errorf("promcheck: line %d: summary count %q negative", lineNo, name)
		}
	case "histogram":
		switch name {
		case fam.name + "_bucket":
			le, ok := labels["le"]
			if !ok {
				return fmt.Errorf("promcheck: line %d: histogram bucket without le label", lineNo)
			}
			bound, err := parseValue(le)
			if err != nil {
				return fmt.Errorf("promcheck: line %d: bad le %q: %w", lineNo, le, err)
			}
			if bound <= fam.lastLe {
				return fmt.Errorf("promcheck: line %d: bucket bounds not increasing (%v after %v)", lineNo, bound, fam.lastLe)
			}
			if value < fam.lastCum || math.IsNaN(value) || value < 0 {
				return fmt.Errorf("promcheck: line %d: histogram %q buckets not cumulative (%v after %v)",
					lineNo, fam.name, value, fam.lastCum)
			}
			fam.lastLe, fam.lastCum = bound, value
			fam.bucketSeq++
			if math.IsInf(bound, 1) {
				fam.sawInf = true
				fam.infCount = value
			}
		case fam.name + "_sum":
			// Sums of negative observations may be negative; only NaN is out.
			if math.IsNaN(value) {
				return fmt.Errorf("promcheck: line %d: histogram sum is NaN", lineNo)
			}
		case fam.name + "_count":
			if value < 0 || math.IsNaN(value) {
				return fmt.Errorf("promcheck: line %d: histogram count invalid", lineNo)
			}
			fam.count = value
			fam.hasCount = true
		default:
			return fmt.Errorf("promcheck: line %d: unexpected histogram series %q", lineNo, name)
		}
	}
	return nil
}

// finishFamily runs the whole-family invariants once its samples end.
func finishFamily(fam *family) error {
	if fam.typ != "histogram" || fam.bucketSeq == 0 {
		return nil
	}
	if !fam.sawInf {
		return fmt.Errorf("promcheck: histogram %q lacks an le=\"+Inf\" bucket", fam.name)
	}
	if fam.hasCount && fam.infCount != fam.count {
		return fmt.Errorf("promcheck: histogram %q +Inf bucket (%v) != _count (%v)",
			fam.name, fam.infCount, fam.count)
	}
	return nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad float %q", s)
	}
	return v, nil
}

// parseLabels parses the inside of a label block strictly: name="value"
// pairs, comma-separated, values with only the three legal escapes.
func parseLabels(s string, lineNo int) (map[string]string, error) {
	labels := map[string]string{}
	i := 0
	for i < len(s) {
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("promcheck: line %d: label without '='", lineNo)
		}
		name := s[i : i+eq]
		if !labelRe.MatchString(name) {
			return nil, fmt.Errorf("promcheck: line %d: invalid label name %q", lineNo, name)
		}
		if _, dup := labels[name]; dup {
			return nil, fmt.Errorf("promcheck: line %d: duplicate label %q", lineNo, name)
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return nil, fmt.Errorf("promcheck: line %d: label %q value not quoted", lineNo, name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return nil, fmt.Errorf("promcheck: line %d: unterminated label value", lineNo)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Errorf("promcheck: line %d: dangling escape", lineNo)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("promcheck: line %d: illegal escape \\%c", lineNo, s[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels[name] = val.String()
		if i < len(s) {
			if s[i] != ',' {
				return nil, fmt.Errorf("promcheck: line %d: expected ',' between labels", lineNo)
			}
			i++
		}
	}
	return labels, nil
}
