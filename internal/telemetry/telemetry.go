// Package telemetry is the observability substrate for the simulators: a
// zero-dependency, race-safe metrics registry (counters, gauges, histograms
// with atomic fast paths), a lightweight hierarchical span API for wall-time
// accounting, a structured JSON snapshot written at process exit, an
// expvar/pprof HTTP endpoint, and a throttled campaign progress reporter.
//
// The long beam campaigns of the paper (40+ simulated hours at ROTAX per
// device) are counting experiments: their credibility rests on knowing how
// many particles were delivered, how many interacted, and where the time
// went. Every hot path (beam, core, transport, fleet, jobsim) posts into
// the Default registry; the cmd/* binaries expose it via -obs-addr,
// -metrics-out and -progress.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds named counters, gauges, histograms and span statistics.
// All methods are safe for concurrent use; metric updates after the first
// lookup are lock-free.
type Registry struct {
	mu       sync.RWMutex
	program  string
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    map[string]*spanStats
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		spans:    map[string]*spanStats{},
	}
}

// Default is the process-wide registry used by the instrumented packages
// and the cmd/* observability flags.
var Default = NewRegistry()

// SetProgram records the producing binary's name for snapshots.
func (r *Registry) SetProgram(name string) {
	r.mu.Lock()
	r.program = name
	r.mu.Unlock()
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Count adds n to the named counter in the Default registry.
func Count(name string, n int64) { Default.Counter(name).Add(n) }

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can move in both directions (rates,
// occupancy levels).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds delta (possibly negative).
func (g *Gauge) Add(delta float64) { addFloat(&g.bits, delta) }

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram buckets — base-2 exponential. Bucket 0 holds values ≤ 2^-32
// (including zero and negatives); bucket i in [1, 62] holds
// [2^(i-33), 2^(i-32)); the last bucket holds everything ≥ 2^30.
const (
	histBuckets = 64
	histMinExp  = -32
)

// Histogram records a distribution of float64 observations with a
// lock-free fast path: exponential buckets plus exact count, sum, min and
// max maintained with atomic CAS loops.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64
	maxBits atomic.Uint64
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.count.Add(1)
	addFloat(&h.sumBits, v)
	casFloat(&h.minBits, v, func(cur, v float64) bool { return v < cur })
	casFloat(&h.maxBits, v, func(cur, v float64) bool { return v > cur })
	h.buckets[bucketIndex(v)].Add(1)
}

func bucketIndex(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	e := math.Ilogb(v)
	idx := e - histMinExp + 1
	if idx < 0 {
		return 0
	}
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketUpper is the exclusive upper bound of bucket i.
func bucketUpper(i int) float64 {
	return math.Ldexp(1, i+histMinExp)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile returns an approximate q-quantile (q in [0, 1]) from the
// exponential buckets, clamped to the exact observed min and max.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	min := math.Float64frombits(h.minBits.Load())
	max := math.Float64frombits(h.maxBits.Load())
	if q <= 0 {
		return min
	}
	if q >= 1 {
		return max
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			v := bucketUpper(i)
			if v > max {
				v = max
			}
			if v < min {
				v = min
			}
			return v
		}
	}
	return max
}

// addFloat atomically adds v to a float64 stored as bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// casFloat atomically replaces the stored float when better(current, v).
func casFloat(bits *atomic.Uint64, v float64, better func(cur, v float64) bool) {
	for {
		old := bits.Load()
		if !better(math.Float64frombits(old), v) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// sortedKeys returns the map's keys in lexical order, for deterministic
// snapshot output.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
