package trace

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestNewIDsAreNonZeroAndDistinct(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		tid := NewTraceID()
		sid := NewSpanID()
		if tid.IsZero() || sid.IsZero() {
			t.Fatal("zero ID generated")
		}
		if seen[tid.String()] || seen[sid.String()] {
			t.Fatal("duplicate ID generated")
		}
		seen[tid.String()] = true
		seen[sid.String()] = true
	}
	if len(NewTraceID().String()) != 32 {
		t.Error("trace ID must render as 32 hex chars")
	}
	if len(NewSpanID().String()) != 16 {
		t.Error("span ID must render as 16 hex chars")
	}
}

func TestNewTraceFreshAndInherited(t *testing.T) {
	tr, root := New("job", nil)
	if tr.ID().IsZero() {
		t.Fatal("fresh trace has zero ID")
	}
	if root.Name() != "job" {
		t.Fatalf("root name = %q", root.Name())
	}

	parent := &Traceparent{TraceID: tr.ID(), SpanID: root.ID(), Flags: 0x01}
	child, childRoot := New("worker", parent)
	if child.ID() != tr.ID() {
		t.Error("inherited trace must keep the caller's trace ID")
	}
	if childRoot.parent != root.ID() {
		t.Error("inherited root must be parented to the caller's span")
	}
}

func TestSpanEndIdempotentAndRecorded(t *testing.T) {
	rec := NewRecorder(4)
	tr, root := New("job", nil)
	tr.SetRecorder(rec)
	root.End()
	root.End()
	if rec.Total() != 1 {
		t.Fatalf("recorder total = %d, want 1 (End must be idempotent)", rec.Total())
	}
}

func TestChildSpanEndDoesNotRecord(t *testing.T) {
	rec := NewRecorder(4)
	tr, root := New("job", nil)
	tr.SetRecorder(rec)
	root.StartChild("phase").End()
	if rec.Total() != 0 {
		t.Fatal("ending a child span must not complete the trace")
	}
	root.End()
	if rec.Total() != 1 {
		t.Fatal("ending the root span must complete the trace")
	}
}

func TestNilSpanOperationsAreNoOps(t *testing.T) {
	var sp *Span
	sp.End()
	sp.SetStage("run")
	sp.SetAttr("k", "v")
	if sp.StartChild("x") != nil {
		t.Error("StartChild on nil span must return nil")
	}
	if sp.Traceparent() != "" {
		t.Error("Traceparent on nil span must be empty")
	}
	if !sp.ID().IsZero() || sp.Name() != "" || sp.Trace() != nil {
		t.Error("nil span accessors must return zero values")
	}
}

func TestContextPropagation(t *testing.T) {
	ctx := context.Background()
	if got, sp := StartChild(ctx, "x"); sp != nil || got != ctx {
		t.Fatal("StartChild without a trace must return (ctx, nil)")
	}
	_, root := New("job", nil)
	ctx = NewContext(ctx, root)
	if FromContext(ctx) != root {
		t.Fatal("FromContext must return the stored span")
	}
	ctx2, child := StartChild(ctx, "phase")
	if child == nil || FromContext(ctx2) != child {
		t.Fatal("StartChild must return a context carrying the child")
	}
	if child.parent != root.ID() {
		t.Fatal("context child must be parented to the context span")
	}
}

func TestSnapshotTreeAndStages(t *testing.T) {
	tr, root := New("job", nil)
	q := root.StartChild("queue.wait")
	q.SetStage("queue")
	time.Sleep(2 * time.Millisecond)
	q.End()

	run := root.StartChild("engine.beam")
	run.SetStage("run")
	// Shards nest under the staged run span: their time is part of "run",
	// not an addition to it.
	for i := 0; i < 3; i++ {
		sh := run.StartChild("engine.shard")
		time.Sleep(time.Millisecond)
		sh.End()
	}
	run.End()
	root.SetAttr("kind", "beam")
	root.End()

	snap := tr.Snapshot()
	if snap.TraceID != tr.ID().String() {
		t.Fatalf("snapshot trace ID = %q", snap.TraceID)
	}
	if snap.Root == nil || snap.Root.Name != "job" {
		t.Fatal("snapshot must root at the job span")
	}
	if len(snap.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(snap.Root.Children))
	}
	if snap.Root.Children[0].Name != "queue.wait" {
		t.Error("children must be ordered by start time")
	}
	var runNode *SpanSnapshot
	for _, c := range snap.Root.Children {
		if c.Name == "engine.beam" {
			runNode = c
		}
	}
	if runNode == nil || len(runNode.Children) != 3 {
		t.Fatal("run span must hold its three shard children")
	}

	stages := map[string]float64{}
	for _, st := range snap.Stages {
		stages[st.Stage] = st.Seconds
	}
	if len(stages) != 2 {
		t.Fatalf("stages = %v, want queue and run only", snap.Stages)
	}
	if stages["queue"] <= 0 || stages["run"] <= 0 {
		t.Fatalf("stage durations must be positive: %v", snap.Stages)
	}
	// The outermost-staged-span rule: run == the engine span's duration,
	// strictly at least the summed shard time but counted once.
	if stages["run"] < runNode.Children[0].DurationSeconds {
		t.Error("run stage must cover its shard children")
	}
	// Stage ordering is pipeline order.
	if snap.Stages[0].Stage != "queue" || snap.Stages[1].Stage != "run" {
		t.Errorf("stage order = %v, want queue before run", snap.Stages)
	}
}

func TestSnapshotInFlightSpans(t *testing.T) {
	tr, root := New("job", nil)
	root.StartChild("running")
	snap := tr.Snapshot()
	if len(snap.Root.Children) != 1 {
		t.Fatal("in-flight child must appear in the snapshot")
	}
	c := snap.Root.Children[0]
	if !c.InFlight || c.DurationSeconds < 0 {
		t.Errorf("in-flight span: InFlight=%v dur=%v", c.InFlight, c.DurationSeconds)
	}
	if (*Trace)(nil).Snapshot() != nil {
		t.Error("nil trace snapshot must be nil")
	}
}

func TestMaxSpansBound(t *testing.T) {
	tr, root := New("job", nil)
	for i := 0; i < maxSpans+10; i++ {
		root.StartChild("s").End()
	}
	snap := tr.Snapshot()
	if snap.Spans != maxSpans {
		t.Fatalf("spans = %d, want %d", snap.Spans, maxSpans)
	}
	if snap.Dropped != 11 {
		t.Fatalf("dropped = %d, want 11", snap.Dropped)
	}
}

func TestRecorderRingBound(t *testing.T) {
	rec := NewRecorder(3)
	var ids []string
	for i := 0; i < 5; i++ {
		tr, root := New("job", nil)
		tr.SetRecorder(rec)
		ids = append(ids, tr.ID().String())
		root.End()
	}
	if rec.Total() != 5 {
		t.Fatalf("total = %d, want 5", rec.Total())
	}
	recent := rec.Recent(0)
	if len(recent) != 3 {
		t.Fatalf("recent = %d, want capacity 3", len(recent))
	}
	// Most recent first, oldest evicted.
	if recent[0].TraceID != ids[4] || recent[2].TraceID != ids[2] {
		t.Error("recent must return newest-first within capacity")
	}
	if got := rec.Recent(1); len(got) != 1 || got[0].TraceID != ids[4] {
		t.Error("Recent(1) must return only the newest trace")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tp := Traceparent{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: 0x01}
	parsed, err := ParseTraceparent(tp.String())
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if parsed != tp {
		t.Fatalf("round trip mismatch: %+v != %+v", parsed, tp)
	}
	if !parsed.Sampled() {
		t.Error("flag 01 must report sampled")
	}

	_, root := New("job", nil)
	hdr := root.Traceparent()
	if !strings.HasPrefix(hdr, "00-") {
		t.Fatalf("span traceparent %q must be version 00", hdr)
	}
	parsed, err = ParseTraceparent(hdr)
	if err != nil {
		t.Fatalf("parse span traceparent: %v", err)
	}
	if parsed.TraceID != root.Trace().ID() || parsed.SpanID != root.ID() {
		t.Error("span traceparent must carry the span's trace and span IDs")
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-abc",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",       // 3 fields
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",    // forbidden version
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",    // uppercase
		"00-4bf92f3577b34da6a3ce929d0e0e473-00f067aa0ba902b7-01",     // short trace ID
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",    // zero trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",    // zero span ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-1",     // short flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-xx", // 5 fields
		"0x-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",    // bad version hex
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01",    // bad trace hex
	}
	for _, s := range bad {
		if _, err := ParseTraceparent(s); err == nil {
			t.Errorf("ParseTraceparent(%q) must fail", s)
		}
	}
	if _, err := ParseTraceparent(" 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01 "); err != nil {
		t.Errorf("surrounding whitespace must be tolerated: %v", err)
	}
}
