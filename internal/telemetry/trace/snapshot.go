package trace

import (
	"sort"
	"time"
)

// SpanSnapshot is the wire form of one span. Children are ordered by start
// time, so the tree reads chronologically.
type SpanSnapshot struct {
	ID       string    `json:"id"`
	ParentID string    `json:"parent_id,omitempty"`
	Name     string    `json:"name"`
	Stage    string    `json:"stage,omitempty"`
	Start    time.Time `json:"start"`
	// DurationSeconds is zero for a span still running at snapshot time;
	// InFlight distinguishes "instant" from "unfinished".
	DurationSeconds float64         `json:"duration_seconds"`
	InFlight        bool            `json:"in_flight,omitempty"`
	Attrs           []Attr          `json:"attrs,omitempty"`
	Children        []*SpanSnapshot `json:"children,omitempty"`
}

// StageTiming is the cumulative wall time of one pipeline stage.
type StageTiming struct {
	Stage   string  `json:"stage"`
	Seconds float64 `json:"seconds"`
}

// Snapshot is the wire form of a whole trace: the span tree plus the
// per-stage rollup derived from it.
type Snapshot struct {
	TraceID string        `json:"trace_id"`
	Spans   int           `json:"spans"`
	Dropped int           `json:"dropped_spans,omitempty"`
	Stages  []StageTiming `json:"stages,omitempty"`
	Root    *SpanSnapshot `json:"root"`
}

// Snapshot materializes the trace's current state. It is safe to call on a
// live trace: unfinished spans appear with InFlight set. Returns nil on a
// nil trace.
func (t *Trace) Snapshot() *Snapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]*Span, len(t.spans))
	copy(spans, t.spans)
	dropped := t.dropped
	t.mu.Unlock()

	now := time.Now()
	nodes := make(map[SpanID]*SpanSnapshot, len(spans))
	order := make([]*SpanSnapshot, 0, len(spans))
	parents := make(map[SpanID]SpanID, len(spans))
	for _, sp := range spans {
		sp.mu.Lock()
		node := &SpanSnapshot{
			ID:    sp.id.String(),
			Name:  sp.name,
			Stage: sp.stage,
			Start: sp.start,
		}
		if len(sp.attrs) > 0 {
			node.Attrs = append([]Attr(nil), sp.attrs...)
		}
		if sp.end.IsZero() {
			node.InFlight = true
			node.DurationSeconds = now.Sub(sp.start).Seconds()
		} else {
			node.DurationSeconds = sp.end.Sub(sp.start).Seconds()
		}
		parents[sp.id] = sp.parent
		sp.mu.Unlock()
		nodes[sp.id] = node
		order = append(order, node)
	}
	var root *SpanSnapshot
	for _, sp := range spans {
		node := nodes[sp.id]
		if parent, ok := nodes[parents[sp.id]]; ok && parent != node {
			node.ParentID = parent.ID
			parent.Children = append(parent.Children, node)
		} else if root == nil {
			root = node
		}
	}
	for _, n := range order {
		sort.Slice(n.Children, func(i, j int) bool {
			return n.Children[i].Start.Before(n.Children[j].Start)
		})
	}
	snap := &Snapshot{
		TraceID: t.id.String(),
		Spans:   len(spans),
		Dropped: dropped,
		Root:    root,
	}
	snap.Stages = stageTimings(root)
	return snap
}

// stageOrder fixes the reporting order of the well-known pipeline stages;
// unknown stages follow alphabetically.
var stageOrder = map[string]int{"queue": 0, "compile": 1, "run": 2, "merge": 3}

// stageTimings sums span durations per stage over the tree. Only the
// outermost span of each staged subtree is counted: once a span carries a
// stage, its descendants (the shards under an engine run, the compile
// under a cache lookup) are details of that same stage, not additions to
// the total.
func stageTimings(root *SpanSnapshot) []StageTiming {
	if root == nil {
		return nil
	}
	totals := map[string]float64{}
	var walk func(n *SpanSnapshot)
	walk = func(n *SpanSnapshot) {
		if n.Stage != "" {
			totals[n.Stage] += n.DurationSeconds
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	if len(totals) == 0 {
		return nil
	}
	out := make([]StageTiming, 0, len(totals))
	for stage, secs := range totals {
		out = append(out, StageTiming{Stage: stage, Seconds: secs})
	}
	sort.Slice(out, func(i, j int) bool {
		oi, iok := stageOrder[out[i].Stage]
		oj, jok := stageOrder[out[j].Stage]
		switch {
		case iok && jok:
			return oi < oj
		case iok != jok:
			return iok
		default:
			return out[i].Stage < out[j].Stage
		}
	})
	return out
}
