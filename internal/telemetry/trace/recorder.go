package trace

import "sync"

// DefaultCapacity bounds the Default recorder's ring of completed traces.
const DefaultCapacity = 256

// Recorder keeps the most recent completed traces in a fixed ring buffer,
// so a long-running daemon retains recent campaign history at bounded
// memory. Traces land here when their root span ends (SetRecorder).
type Recorder struct {
	mu    sync.Mutex
	ring  []*Trace
	next  int
	total int64
}

// NewRecorder builds a recorder holding at most capacity completed traces
// (non-positive falls back to DefaultCapacity).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{ring: make([]*Trace, capacity)}
}

// Default is the process-wide recorder: neutrond's job traces and any
// CLI-originated traces complete into it, and the -obs-addr debug server
// serves it at /debug/traces.
var Default = NewRecorder(DefaultCapacity)

// Record adds a completed trace, evicting the oldest when full.
func (r *Recorder) Record(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	r.ring[r.next] = t
	r.next = (r.next + 1) % len(r.ring)
	r.total++
	r.mu.Unlock()
}

// Total returns the number of traces ever recorded (including evicted).
func (r *Recorder) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Recent snapshots up to n completed traces, most recent first. n <= 0
// means all retained.
func (r *Recorder) Recent(n int) []*Snapshot {
	r.mu.Lock()
	size := len(r.ring)
	traces := make([]*Trace, 0, size)
	for i := 1; i <= size; i++ {
		if t := r.ring[(r.next-i+size)%size]; t != nil {
			traces = append(traces, t)
		}
	}
	r.mu.Unlock()
	if n > 0 && len(traces) > n {
		traces = traces[:n]
	}
	out := make([]*Snapshot, 0, len(traces))
	for _, t := range traces {
		out = append(out, t.Snapshot())
	}
	return out
}
