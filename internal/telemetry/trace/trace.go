// Package trace provides request-scoped tracing for campaign pipelines:
// per-job trace trees of parented spans with wall-clock timing and string
// attributes, propagated through context.Context and correlated across
// processes via the W3C traceparent header (traceparent.go).
//
// It complements the aggregate rollups of internal/telemetry: the registry
// answers "how much time does beam.runs take across all campaigns", a trace
// answers "where did THIS job's 4.2 seconds go" — queue wait, plan compile,
// each engine shard, merge. Completed traces land in a bounded ring buffer
// (Recorder) so a process keeps recent history without unbounded growth.
//
// The package is dependency-free and nil-tolerant by design: every
// operation on a nil *Span is a no-op, and StartChild on a context without
// an active trace returns (ctx, nil), so instrumented code pays one context
// lookup — no allocation — when tracing is off.
package trace

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"math/rand"
	"sync"
	"time"
)

// TraceID is the 16-byte W3C trace identifier.
type TraceID [16]byte

// SpanID is the 8-byte W3C span identifier.
type SpanID [8]byte

// IsZero reports whether the ID is all-zero (invalid per W3C).
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is all-zero (invalid per W3C).
func (s SpanID) IsZero() bool { return s == SpanID{} }

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

// idSource generates random IDs. It is seeded once from crypto/rand (the
// IDs need uniqueness, not secrecy) and guarded by a mutex; ID generation
// happens per span, never per Monte Carlo draw, so contention is nil.
var idSource = struct {
	sync.Mutex
	r *rand.Rand
}{r: rand.New(rand.NewSource(cryptoSeed()))}

func cryptoSeed() int64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return time.Now().UnixNano()
	}
	return int64(binary.LittleEndian.Uint64(b[:]))
}

// NewTraceID returns a random non-zero trace ID.
func NewTraceID() TraceID {
	var id TraceID
	idSource.Lock()
	for id.IsZero() {
		binary.LittleEndian.PutUint64(id[:8], idSource.r.Uint64())
		binary.LittleEndian.PutUint64(id[8:], idSource.r.Uint64())
	}
	idSource.Unlock()
	return id
}

// NewSpanID returns a random non-zero span ID.
func NewSpanID() SpanID {
	var id SpanID
	idSource.Lock()
	for id.IsZero() {
		binary.LittleEndian.PutUint64(id[:], idSource.r.Uint64())
	}
	idSource.Unlock()
	return id
}

// maxSpans bounds one trace's span count. A beam campaign decomposes into
// hundreds of shards; a runaway instrumentation loop must not turn a job
// record into a memory leak. Spans beyond the bound are dropped and
// counted.
const maxSpans = 2048

// Attr is one key=value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed phase of a trace. All methods are safe for concurrent
// use and are no-ops on a nil receiver.
type Span struct {
	tr     *Trace
	id     SpanID
	parent SpanID
	name   string
	start  time.Time

	mu    sync.Mutex
	end   time.Time // zero until End
	stage string
	attrs []Attr
}

// Trace is one request's span tree. Spans are appended as they start; the
// tree shape lives in the parent links and is materialized by Snapshot.
type Trace struct {
	id   TraceID
	root *Span
	rec  *Recorder

	mu      sync.Mutex
	spans   []*Span
	dropped int
}

// ID returns the trace's identifier.
func (t *Trace) ID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.id
}

// New starts a trace with a root span named name. A non-nil parent links
// the new trace into an incoming W3C trace: the trace ID is inherited and
// the root span is parented to the caller's span ID, so a coordinator
// fanning jobs out to workers sees one tree.
func New(name string, parent *Traceparent) (*Trace, *Span) {
	t := &Trace{}
	var parentSpan SpanID
	if parent != nil && !parent.TraceID.IsZero() {
		t.id = parent.TraceID
		parentSpan = parent.SpanID
	} else {
		t.id = NewTraceID()
	}
	root := t.newSpan(name, parentSpan)
	t.root = root
	return t, root
}

func (t *Trace) newSpan(name string, parent SpanID) *Span {
	sp := &Span{tr: t, id: NewSpanID(), parent: parent, name: name, start: time.Now()}
	t.mu.Lock()
	if len(t.spans) >= maxSpans {
		t.dropped++
		t.mu.Unlock()
		// The span still times itself for its creator; it just won't
		// appear in the snapshot.
		sp.tr = nil
		return sp
	}
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// SetRecorder routes the trace to rec when its root span ends.
func (t *Trace) SetRecorder(rec *Recorder) {
	if t != nil {
		t.rec = rec
	}
}

// ID returns the span's identifier.
func (s *Span) ID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// Trace returns the trace the span belongs to.
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.tr
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// End marks the span finished. Only the first call records; later calls
// are no-ops. Ending a root span completes the trace into its recorder.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.end.IsZero() {
		s.mu.Unlock()
		return
	}
	s.end = time.Now()
	s.mu.Unlock()
	if tr := s.tr; tr != nil && tr.root == s && tr.rec != nil {
		tr.rec.Record(tr)
	}
}

// SetStage tags the span as one well-known pipeline stage ("queue",
// "compile", "run", "merge"). Stage totals are what job status reports
// as its timing breakdown; see Snapshot.Stages.
func (s *Span) SetStage(stage string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.stage = stage
	s.mu.Unlock()
}

// SetAttr attaches (or overwrites) a key=value annotation.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// StartChild opens a child span under s. It is the non-context span API
// used where the parent is held directly (the job queue holds its root
// span across goroutines).
func (s *Span) StartChild(name string) *Span {
	if s == nil || s.tr == nil {
		return nil
	}
	return s.tr.newSpan(name, s.id)
}

type ctxKey struct{}

// NewContext returns a context carrying sp as the current span.
func NewContext(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the current span, or nil when ctx carries none.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// StartChild opens a child of the context's current span and returns a
// context carrying the child. Without an active trace it returns
// (ctx, nil) at the cost of one context lookup — instrumentation points
// call it unconditionally.
func StartChild(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.StartChild(name)
	if child == nil {
		return ctx, nil
	}
	return NewContext(ctx, child), child
}
