package trace

import (
	"encoding/hex"
	"fmt"
	"strings"
)

// Header is the canonical HTTP header name for W3C trace context.
const Header = "traceparent"

// Traceparent is a parsed W3C traceparent header (version 00):
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//	^^ ^^^^^^^^^^^^^^^ trace-id ^^^^^^^ ^^ parent-id ^^^^ ^^ flags
type Traceparent struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
}

// Sampled reports whether the sampled flag (bit 0) is set.
func (tp Traceparent) Sampled() bool { return tp.Flags&0x01 != 0 }

// String renders the header value in version-00 format.
func (tp Traceparent) String() string {
	return fmt.Sprintf("00-%s-%s-%02x", tp.TraceID, tp.SpanID, tp.Flags)
}

// ParseTraceparent parses a version-00 traceparent header value. It is
// strict about structure (field count, lengths, lowercase hex, non-zero
// IDs, known version) per the W3C Trace Context recommendation: a
// malformed header is an error, and callers start a fresh trace instead.
func ParseTraceparent(s string) (Traceparent, error) {
	var tp Traceparent
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) != 4 {
		return tp, fmt.Errorf("trace: traceparent needs 4 fields, got %d", len(parts))
	}
	version, traceID, spanID, flags := parts[0], parts[1], parts[2], parts[3]
	if len(version) != 2 || !isLowerHex(version) {
		return tp, fmt.Errorf("trace: bad traceparent version %q", version)
	}
	if version == "ff" {
		return tp, fmt.Errorf("trace: forbidden traceparent version ff")
	}
	if len(traceID) != 32 || !isLowerHex(traceID) {
		return tp, fmt.Errorf("trace: bad trace-id %q", traceID)
	}
	if len(spanID) != 16 || !isLowerHex(spanID) {
		return tp, fmt.Errorf("trace: bad parent-id %q", spanID)
	}
	if len(flags) != 2 || !isLowerHex(flags) {
		return tp, fmt.Errorf("trace: bad trace-flags %q", flags)
	}
	if _, err := hex.Decode(tp.TraceID[:], []byte(traceID)); err != nil {
		return tp, fmt.Errorf("trace: decode trace-id: %w", err)
	}
	if _, err := hex.Decode(tp.SpanID[:], []byte(spanID)); err != nil {
		return tp, fmt.Errorf("trace: decode parent-id: %w", err)
	}
	var fb [1]byte
	if _, err := hex.Decode(fb[:], []byte(flags)); err != nil {
		return tp, fmt.Errorf("trace: decode trace-flags: %w", err)
	}
	tp.Flags = fb[0]
	if tp.TraceID.IsZero() {
		return tp, fmt.Errorf("trace: all-zero trace-id is invalid")
	}
	if tp.SpanID.IsZero() {
		return tp, fmt.Errorf("trace: all-zero parent-id is invalid")
	}
	return tp, nil
}

// Traceparent returns the header value identifying sp as the parent of
// downstream work — what an HTTP client forwards so a remote worker's
// spans join this trace. Returns "" on a nil span.
func (s *Span) Traceparent() string {
	if s == nil || s.tr == nil {
		return ""
	}
	return Traceparent{TraceID: s.tr.id, SpanID: s.id, Flags: 0x01}.String()
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
