package telemetry

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIProfileFlags drives the shared -cpuprofile/-memprofile flags the
// way cmd/beamsim and cmd/sweep do — BindFlags, Parse, Start, work, Close —
// and checks both profiles land under their final names with no temp files
// left behind.
func TestCLIProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pb.gz")
	mem := filepath.Join(dir, "mem.pb.gz")

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := BindFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start("cli-test"); err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0.0
	for i := 0; i < 1e6; i++ {
		x += float64(i % 7)
	}
	_ = x
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", filepath.Base(path))
		}
		// pprof profiles are gzip-framed; check the magic so a truncated
		// or plain-text file fails loudly.
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
			t.Errorf("%s does not start with a gzip header", filepath.Base(path))
		}
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}

	// Close is idempotent: a second call must not rewrite or error.
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
