package telemetry

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// ProgressUpdate is one campaign status report posted by an instrumented
// hot loop. Reporting is free (one atomic load) when no reporter is
// enabled, so hot paths may post every iteration.
type ProgressUpdate struct {
	// Component identifies the emitting simulator ("beam", "fleet", ...).
	Component string
	// Device and Beam name the campaign when applicable.
	Device string
	Beam   string
	// Phase optionally names a sub-stage (experiment id, grid point, ...).
	Phase string
	// Done and Total measure completion in the component's own units
	// (runs, days, grid points). Total 0 means unknown.
	Done, Total float64
	// Fluence is the particle fluence delivered so far (n/cm²), 0 if not
	// applicable.
	Fluence float64
	// Events counts observed error events (SDC+DUE) so far.
	Events int64
	// Elapsed is the wall time the component has spent so far; used for
	// the ETA estimate.
	Elapsed time.Duration
}

// progressPrinter serializes throttled status lines to one writer.
type progressPrinter struct {
	mu       sync.Mutex
	w        io.Writer
	interval time.Duration
	last     time.Time
}

var progressSink atomic.Pointer[progressPrinter]

// EnableProgress routes ReportProgress updates to w, printing at most one
// line per interval per component burst (final updates always print).
func EnableProgress(w io.Writer, interval time.Duration) {
	progressSink.Store(&progressPrinter{w: w, interval: interval})
}

// DisableProgress stops progress reporting.
func DisableProgress() { progressSink.Store(nil) }

// ProgressEnabled reports whether a progress reporter is active.
func ProgressEnabled() bool { return progressSink.Load() != nil }

// ReportProgress posts a status update to the active reporter, if any.
func ReportProgress(u ProgressUpdate) {
	p := progressSink.Load()
	if p == nil {
		return
	}
	p.report(u)
}

// progressObserverKey carries a per-campaign progress observer in a context.
type progressObserverKey struct{}

// ContextWithProgress returns a context that routes ReportProgressContext
// posts to fn in addition to the global reporter. It is how a service can
// watch one campaign's progress without intercepting every other campaign
// running in the process: the observer travels with the campaign's context
// into the engine's completion hooks. fn is invoked from worker goroutines
// and must be safe for concurrent use.
func ContextWithProgress(ctx context.Context, fn func(ProgressUpdate)) context.Context {
	return context.WithValue(ctx, progressObserverKey{}, fn)
}

// ReportProgressContext posts a status update to the context's observer (if
// one was attached with ContextWithProgress) and to the global reporter.
// Instrumented hot loops that have a context should prefer this over
// ReportProgress so callers can subscribe per campaign.
func ReportProgressContext(ctx context.Context, u ProgressUpdate) {
	if fn, ok := ctx.Value(progressObserverKey{}).(func(ProgressUpdate)); ok && fn != nil {
		fn(u)
	}
	ReportProgress(u)
}

func (p *progressPrinter) report(u ProgressUpdate) {
	final := u.Total > 0 && u.Done >= u.Total
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	if !final && now.Sub(p.last) < p.interval {
		return
	}
	p.last = now
	line := "progress: " + u.Component
	if u.Device != "" {
		line += " " + u.Device
	}
	if u.Beam != "" {
		line += " @ " + u.Beam
	}
	if u.Phase != "" {
		line += " [" + u.Phase + "]"
	}
	if u.Total > 0 {
		line += fmt.Sprintf(" %5.1f%%", 100*u.Done/u.Total)
	}
	if u.Fluence > 0 {
		line += fmt.Sprintf(" fluence=%.3g n/cm²", u.Fluence)
	}
	line += fmt.Sprintf(" events=%d", u.Events)
	if eta, ok := etaFor(u); ok {
		line += " eta=" + eta.Round(time.Second).String()
	}
	if final {
		line += " done"
	}
	fmt.Fprintln(p.w, line)
}

// etaFor estimates remaining wall time from the completed fraction.
func etaFor(u ProgressUpdate) (time.Duration, bool) {
	if u.Total <= 0 || u.Done <= 0 || u.Done >= u.Total || u.Elapsed <= 0 {
		return 0, false
	}
	frac := u.Done / u.Total
	return time.Duration(float64(u.Elapsed) * (1 - frac) / frac), true
}
