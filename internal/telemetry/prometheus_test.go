package telemetry

import (
	"context"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"

	"neutronsim/internal/telemetry/promcheck"
)

// populate fills a registry with one metric of each kind plus a span
// rollup, so exposition tests exercise every family type.
func populatedRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	r.Counter("beam.sdc_events").Add(7)
	r.Gauge("engine.shard_busy").Set(3.5)
	h := r.Histogram("plan.compile_seconds")
	for _, v := range []float64{0.001, 0.25, 0.25, 4} {
		h.Observe(v)
	}
	ctx, outer := r.StartSpan(context.Background(), "core.assess")
	_, inner := r.StartSpan(ctx, "beam.campaign")
	inner.End()
	outer.End()
	return r
}

func TestWritePrometheusPassesStrictValidator(t *testing.T) {
	r := populatedRegistry(t)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := promcheck.Validate(strings.NewReader(b.String())); err != nil {
		t.Fatalf("exposition failed validation: %v\n%s", err, b.String())
	}
}

func TestWritePrometheusShape(t *testing.T) {
	r := populatedRegistry(t)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE beam_sdc_events_total counter\n",
		"beam_sdc_events_total 7\n",
		"# TYPE engine_shard_busy gauge\n",
		"engine_shard_busy 3.5\n",
		"# TYPE plan_compile_seconds histogram\n",
		`plan_compile_seconds_bucket{le="+Inf"} 4` + "\n",
		"plan_compile_seconds_count 4\n",
		"# TYPE neutronsim_span_seconds summary\n",
		`neutronsim_span_seconds_count{path="core.assess"} 1` + "\n",
		`neutronsim_span_seconds_count{path="core.assess/beam.campaign"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Histogram sum = 4.501 (the four observations above).
	if !strings.Contains(out, "plan_compile_seconds_sum 4.501") {
		t.Errorf("exposition missing histogram sum\n%s", out)
	}
}

func TestWritePrometheusBucketsAreCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x")
	h.Observe(0.5)
	h.Observe(2)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	last := -1.0
	buckets := 0
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.HasPrefix(line, "x_bucket{") {
			continue
		}
		buckets++
		fields := strings.Fields(line)
		cum, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("bad bucket line %q", line)
		}
		if cum < last {
			t.Fatalf("bucket values not cumulative at %q", line)
		}
		last = cum
	}
	if buckets < 2 {
		t.Fatalf("expected multiple bucket lines, got %d", buckets)
	}
	if last != 2 {
		t.Fatalf("final cumulative bucket = %v, want 2", last)
	}
}

func TestCounterNamedTotalDoesNotDoubleSuffix(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total").Add(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "requests_total_total") {
		t.Errorf("counter already ending in _total must not gain another suffix\n%s", b.String())
	}
}

func TestPromHelpers(t *testing.T) {
	if got := promName("beam.sdc-events"); got != "beam_sdc_events" {
		t.Errorf("promName = %q", got)
	}
	if got := promName("0weird"); got != "_0weird" {
		t.Errorf("promName leading digit = %q", got)
	}
	if got := promFloat(math.Inf(1)); got != "+Inf" {
		t.Errorf("promFloat(+Inf) = %q", got)
	}
	if got := promFloat(math.Inf(-1)); got != "-Inf" {
		t.Errorf("promFloat(-Inf) = %q", got)
	}
	if got := promFloat(math.NaN()); got != "NaN" {
		t.Errorf("promFloat(NaN) = %q", got)
	}
	in := "a\\b\"c\nd"
	if got := promLabelValue(in); got != `a\\b\"c\nd` {
		t.Errorf("promLabelValue = %q", got)
	}
}

func TestTimerObservesElapsed(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("op_seconds")
	tm := StartTimer(h)
	time.Sleep(5 * time.Millisecond)
	d := tm.ObserveDuration()
	if d < 5*time.Millisecond {
		t.Fatalf("timer measured %v, want >= 5ms", d)
	}
	if h.Count() != 1 {
		t.Fatalf("histogram count = %d, want 1", h.Count())
	}
	if h.Sum() < 0.005 {
		t.Fatalf("histogram sum = %v, want >= 0.005", h.Sum())
	}
	h.ObserveSince(time.Now().Add(-10 * time.Millisecond))
	if h.Count() != 2 || h.Sum() < 0.015 {
		t.Fatalf("ObserveSince: count=%d sum=%v", h.Count(), h.Sum())
	}
}
