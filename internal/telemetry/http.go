package telemetry

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"neutronsim/internal/telemetry/trace"
)

// servedRegistry backs the process-wide "telemetry" expvar; expvar.Publish
// panics on re-registration, so the var is published once and indirects
// through this pointer (Serve may be called again after a server closes).
var (
	servedRegistry atomic.Pointer[Registry]
	publishOnce    sync.Once
)

// Serve starts an observability HTTP server on addr exposing
//
//   - /metrics — Prometheus text exposition of this registry,
//   - /debug/vars — expvar-compatible JSON including a "telemetry" var
//     with this registry's full snapshot,
//   - /debug/telemetry — the bare snapshot JSON,
//   - /debug/traces — recent completed traces from trace.Default
//     (?n=N bounds the count), and
//   - /debug/pprof/ — the standard net/http/pprof profiles.
//
// It returns the running server and the bound address (useful with ":0").
// The caller owns shutdown via (*http.Server).Close.
func Serve(addr string, r *Registry) (*http.Server, string, error) {
	servedRegistry.Store(r)
	publishOnce.Do(func() {
		expvar.Publish("telemetry", expvar.Func(func() any {
			if reg := servedRegistry.Load(); reg != nil {
				return reg.Snapshot()
			}
			return nil
		}))
	})
	mux := http.NewServeMux()
	mux.Handle("/metrics", PrometheusHandler(r))
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, req *http.Request) {
		n := 0
		if s := req.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				n = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc, err := json.MarshalIndent(map[string]any{
			"total":  trace.Default.Total(),
			"traces": trace.Default.Recent(n),
		}, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(enc)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/telemetry", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc, err := json.MarshalIndent(r.Snapshot(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(enc)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
