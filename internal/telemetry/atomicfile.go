package telemetry

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path via a temp file in the same
// directory renamed over the target, so a reader polling the file — or a
// run interrupted mid-write — never observes a torn or truncated
// document. Every artifact writer in the repo (telemetry snapshots,
// sweep grids, surrogate models, bench reports) goes through here.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	return nil
}
