package telemetry

import (
	"context"
	"io"
	"log/slog"
	"os"
	"sync/atomic"

	"neutronsim/internal/telemetry/trace"
)

// Structured logging for the CLIs and neutrond, built on log/slog. One
// process-wide logger replaces the ad-hoc fmt.Fprintf(os.Stderr, ...)
// diagnostics: every line carries the program name, and lines emitted
// under an active trace carry the trace and span IDs, so a campaign's
// log lines, its /v1/jobs/{id}/trace tree, and any peer worker's logs
// join on one identifier.

// logger is the process logger; it defaults to human-readable key=value
// text on stderr until ConfigureLogger replaces it.
var logger atomic.Pointer[slog.Logger]

func init() {
	logger.Store(slog.New(slog.NewTextHandler(os.Stderr, nil)))
}

// Log returns the process logger.
func Log() *slog.Logger { return logger.Load() }

// ConfigureLogger rebuilds the process logger writing to w (nil means
// stderr): JSON when json is set, key=value text otherwise, with program
// attached to every record. It also installs the logger as slog's default
// so third-party slog users agree on the format.
func ConfigureLogger(program string, json bool, w io.Writer) *slog.Logger {
	if w == nil {
		w = os.Stderr
	}
	var h slog.Handler
	if json {
		h = slog.NewJSONHandler(w, nil)
	} else {
		h = slog.NewTextHandler(w, nil)
	}
	l := slog.New(h)
	if program != "" {
		l = l.With(slog.String("program", program))
	}
	logger.Store(l)
	slog.SetDefault(l)
	return l
}

// LogWith returns the process logger with the context's trace and span
// IDs attached (when a trace is active), so handlers and job workers log
// lines correlated with their trace tree.
func LogWith(ctx context.Context) *slog.Logger {
	l := Log()
	if sp := trace.FromContext(ctx); sp != nil {
		l = l.With(
			slog.String("trace_id", sp.Trace().ID().String()),
			slog.String("span_id", sp.ID().String()),
		)
	}
	return l
}
