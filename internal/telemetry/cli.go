package telemetry

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"
)

// CLI wires the shared observability flags into a command. Every cmd/*
// binary binds the same flags so campaigns are observable the same way
// everywhere:
//
//	-obs-addr host:port   serve /metrics, expvar JSON and pprof while running
//	-metrics-out FILE     write a telemetry snapshot JSON at exit
//	-progress             print periodic campaign status to stderr
//	-log-json             emit structured JSON logs instead of key=value text
type CLI struct {
	ObsAddr    string
	MetricsOut string
	Progress   bool
	LogJSON    bool

	program string
	server  *http.Server
	closed  bool
}

// BindFlags registers the observability flags on fs and returns the
// handle the command uses to start and stop the facilities.
func BindFlags(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	fs.StringVar(&c.ObsAddr, "obs-addr", "", "serve /metrics, expvar JSON and pprof on this address (e.g. localhost:6060)")
	fs.StringVar(&c.MetricsOut, "metrics-out", "", "write a telemetry snapshot JSON file at exit (atomic rename)")
	fs.BoolVar(&c.Progress, "progress", false, "print periodic campaign progress lines to stderr")
	fs.BoolVar(&c.LogJSON, "log-json", false, "structured JSON logs on stderr instead of key=value text")
	return c
}

// Start activates the facilities selected by the parsed flags. Call it
// once after flag parsing; pair it with a deferred Close.
func (c *CLI) Start(program string) error {
	c.program = program
	Default.SetProgram(program)
	log := ConfigureLogger(program, c.LogJSON, nil)
	if c.Progress {
		EnableProgress(os.Stderr, 2*time.Second)
	}
	if c.ObsAddr != "" {
		srv, addr, err := Serve(c.ObsAddr, Default)
		if err != nil {
			return fmt.Errorf("observability server: %w", err)
		}
		c.server = srv
		log.Info("observability server listening",
			"metrics", "http://"+addr+"/metrics",
			"expvar", "http://"+addr+"/debug/vars",
			"pprof", "http://"+addr+"/debug/pprof/",
			"traces", "http://"+addr+"/debug/traces")
	}
	return nil
}

// Close writes the snapshot (if requested), stops the progress reporter
// and shuts down the observability server. It is idempotent so commands
// can both defer it and return its error on the success path.
func (c *CLI) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	DisableProgress()
	var err error
	if c.MetricsOut != "" {
		err = Default.WriteSnapshot(c.MetricsOut)
	}
	if c.server != nil {
		if cerr := c.server.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
