package telemetry

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"
)

// CLI wires the shared observability flags into a command. Every cmd/*
// binary binds the same flags so campaigns are observable the same way
// everywhere:
//
//	-obs-addr host:port   serve /metrics, expvar JSON and pprof while running
//	-metrics-out FILE     write a telemetry snapshot JSON at exit
//	-progress             print periodic campaign status to stderr
//	-log-json             emit structured JSON logs instead of key=value text
//	-cpuprofile FILE      write a CPU profile covering Start..Close
//	-memprofile FILE      write a heap profile at exit
//
// The profile files are written like -metrics-out: to a temp file in the
// target directory, renamed into place at Close, so a crash mid-run never
// leaves a truncated profile under the requested name.
type CLI struct {
	ObsAddr    string
	MetricsOut string
	Progress   bool
	LogJSON    bool
	CPUProfile string
	MemProfile string

	program string
	server  *http.Server
	cpuTmp  *os.File
	closed  bool
}

// BindFlags registers the observability flags on fs and returns the
// handle the command uses to start and stop the facilities.
func BindFlags(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	fs.StringVar(&c.ObsAddr, "obs-addr", "", "serve /metrics, expvar JSON and pprof on this address (e.g. localhost:6060)")
	fs.StringVar(&c.MetricsOut, "metrics-out", "", "write a telemetry snapshot JSON file at exit (atomic rename)")
	fs.BoolVar(&c.Progress, "progress", false, "print periodic campaign progress lines to stderr")
	fs.BoolVar(&c.LogJSON, "log-json", false, "structured JSON logs on stderr instead of key=value text")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to this file (atomic rename at exit)")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a heap profile to this file at exit (atomic rename)")
	return c
}

// Start activates the facilities selected by the parsed flags. Call it
// once after flag parsing; pair it with a deferred Close.
func (c *CLI) Start(program string) error {
	c.program = program
	Default.SetProgram(program)
	log := ConfigureLogger(program, c.LogJSON, nil)
	if c.Progress {
		EnableProgress(os.Stderr, 2*time.Second)
	}
	if c.ObsAddr != "" {
		srv, addr, err := Serve(c.ObsAddr, Default)
		if err != nil {
			return fmt.Errorf("observability server: %w", err)
		}
		c.server = srv
		log.Info("observability server listening",
			"metrics", "http://"+addr+"/metrics",
			"expvar", "http://"+addr+"/debug/vars",
			"pprof", "http://"+addr+"/debug/pprof/",
			"traces", "http://"+addr+"/debug/traces")
	}
	if c.CPUProfile != "" {
		dir, base := filepath.Split(c.CPUProfile)
		tmp, err := os.CreateTemp(dir, base+".tmp-*")
		if err != nil {
			c.Close()
			return fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(tmp); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			c.Close()
			return fmt.Errorf("cpu profile: %w", err)
		}
		c.cpuTmp = tmp
	}
	return nil
}

// finishCPUProfile stops profiling and renames the temp file into place.
func (c *CLI) finishCPUProfile() error {
	tmp := c.cpuTmp
	c.cpuTmp = nil
	pprof.StopCPUProfile()
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return fmt.Errorf("cpu profile: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cpu profile: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.CPUProfile); err != nil {
		return fmt.Errorf("cpu profile: %w", err)
	}
	return nil
}

// writeMemProfile captures the live heap (after a GC, so the profile shows
// retained memory rather than garbage) and renames it into place.
func (c *CLI) writeMemProfile() error {
	runtime.GC()
	dir, base := filepath.Split(c.MemProfile)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("mem profile: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := pprof.WriteHeapProfile(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("mem profile: %w", err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return fmt.Errorf("mem profile: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("mem profile: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.MemProfile); err != nil {
		return fmt.Errorf("mem profile: %w", err)
	}
	return nil
}

// Close writes the snapshot (if requested), stops the progress reporter
// and shuts down the observability server. It is idempotent so commands
// can both defer it and return its error on the success path.
func (c *CLI) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	DisableProgress()
	var err error
	if c.cpuTmp != nil {
		err = c.finishCPUProfile()
	}
	if c.MemProfile != "" {
		if merr := c.writeMemProfile(); err == nil {
			err = merr
		}
	}
	if c.MetricsOut != "" {
		if serr := Default.WriteSnapshot(c.MetricsOut); err == nil {
			err = serr
		}
	}
	if c.server != nil {
		if cerr := c.server.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
