package telemetry

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4), implemented without
// the client library: the registry's metric model is already atomic and
// race-safe, so exposition is a read-only walk. Metric names are
// sanitized to the Prometheus grammar ([a-zA-Z_:][a-zA-Z0-9_:]*): the
// registry's dotted names ("beam.sdc_events") become underscore names
// ("beam_sdc_events"), counters gain the conventional _total suffix, and
// span rollups are exported as summary pairs labeled by span path.
//
// The format rules this writer (and the strict validator in
// internal/telemetry/promcheck) pins down:
//
//   - one "# TYPE <name> <type>" line per metric family, before samples;
//   - histogram buckets are CUMULATIVE and end with le="+Inf" equal to
//     _count;
//   - label values escape backslash, double-quote and newline;
//   - floats use Go 'g' formatting; +Inf/-Inf/NaN spelled exactly so.

// ContentType is the exposition content type served at /metrics.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes the registry's current state in Prometheus text
// exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	spans := make(map[string]*spanStats, len(r.spans))
	for path, st := range r.spans {
		spans[path] = st
	}
	r.mu.RUnlock()

	for _, name := range sortedKeys(counters) {
		prom := promName(name)
		if !strings.HasSuffix(prom, "_total") {
			prom += "_total"
		}
		bw.WriteString("# TYPE " + prom + " counter\n")
		bw.WriteString(prom + " " + strconv.FormatInt(counters[name].Value(), 10) + "\n")
	}
	for _, name := range sortedKeys(gauges) {
		prom := promName(name)
		bw.WriteString("# TYPE " + prom + " gauge\n")
		bw.WriteString(prom + " " + promFloat(gauges[name].Value()) + "\n")
	}
	for _, name := range sortedKeys(hists) {
		h := hists[name]
		prom := promName(name)
		bw.WriteString("# TYPE " + prom + " histogram\n")
		var cum int64
		for i := 0; i < histBuckets-1; i++ {
			cum += h.buckets[i].Load()
			bw.WriteString(prom + `_bucket{le="` + promFloat(bucketUpper(i)) + `"} ` +
				strconv.FormatInt(cum, 10) + "\n")
		}
		count := h.Count()
		bw.WriteString(prom + `_bucket{le="+Inf"} ` + strconv.FormatInt(count, 10) + "\n")
		bw.WriteString(prom + "_sum " + promFloat(h.Sum()) + "\n")
		bw.WriteString(prom + "_count " + strconv.FormatInt(count, 10) + "\n")
	}
	if len(spans) > 0 {
		const prom = "neutronsim_span_seconds"
		bw.WriteString("# TYPE " + prom + " summary\n")
		for _, path := range sortedKeys(spans) {
			st := spans[path]
			label := `{path="` + promLabelValue(path) + `"}`
			bw.WriteString(prom + "_sum" + label + " " +
				promFloat(float64(st.totalNs.Load())/1e9) + "\n")
			bw.WriteString(prom + "_count" + label + " " +
				strconv.FormatInt(st.count.Load(), 10) + "\n")
		}
	}
	return bw.Flush()
}

// PrometheusHandler serves the registry at /metrics.
func PrometheusHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w)
	})
}

// promName sanitizes a registry metric name to the Prometheus grammar.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promFloat renders a float64 the way the exposition format spells it.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLabelValue escapes a label value per the exposition format.
func promLabelValue(v string) string {
	var b strings.Builder
	b.Grow(len(v))
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}
