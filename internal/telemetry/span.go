package telemetry

import (
	"context"
	"math"
	"sync/atomic"
	"time"
)

// spanStats aggregates the completed executions of one span path.
type spanStats struct {
	count   atomic.Int64
	totalNs atomic.Int64
	minNs   atomic.Int64
	maxNs   atomic.Int64
}

// Span measures the wall time of one phase. Spans started from a context
// that already carries a span nest under it, so the registry accumulates
// hierarchical rollups keyed by slash-joined paths such as
// "core.assess/beam.campaign/beam.runs".
type Span struct {
	reg   *Registry
	path  string
	start time.Time
	ended atomic.Bool
}

type spanCtxKey struct{}

// StartSpan opens a span named name in registry r, nesting under any span
// already in ctx. The returned context carries the new span for children.
func (r *Registry) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	path := name
	if parent, ok := ctx.Value(spanCtxKey{}).(*Span); ok && parent.reg == r {
		path = parent.path + "/" + name
	}
	sp := &Span{reg: r, path: path, start: time.Now()}
	return context.WithValue(ctx, spanCtxKey{}, sp), sp
}

// StartSpan opens a span in the Default registry.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return Default.StartSpan(ctx, name)
}

// End records the span's duration into its path's rollup. Safe to call
// more than once; only the first call records.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.reg.recordSpan(s.path, time.Since(s.start))
}

// Path returns the span's hierarchical identifier.
func (s *Span) Path() string { return s.path }

func (r *Registry) recordSpan(path string, d time.Duration) {
	r.mu.RLock()
	st := r.spans[path]
	r.mu.RUnlock()
	if st == nil {
		r.mu.Lock()
		if st = r.spans[path]; st == nil {
			st = &spanStats{}
			st.minNs.Store(math.MaxInt64)
			st.maxNs.Store(math.MinInt64)
			r.spans[path] = st
		}
		r.mu.Unlock()
	}
	ns := d.Nanoseconds()
	st.count.Add(1)
	st.totalNs.Add(ns)
	for {
		old := st.minNs.Load()
		if ns >= old || st.minNs.CompareAndSwap(old, ns) {
			break
		}
	}
	for {
		old := st.maxNs.Load()
		if ns <= old || st.maxNs.CompareAndSwap(old, ns) {
			break
		}
	}
}
