package telemetry

import (
	"context"
	"math"
	"strconv"
	"sync/atomic"
	"time"

	"neutronsim/internal/telemetry/trace"
)

// spanStats aggregates the completed executions of one span path.
type spanStats struct {
	count   atomic.Int64
	totalNs atomic.Int64
	minNs   atomic.Int64
	maxNs   atomic.Int64
}

// Span measures the wall time of one phase. Spans started from a context
// that already carries a span nest under it, so the registry accumulates
// hierarchical rollups keyed by slash-joined paths such as
// "core.assess/beam.campaign/beam.runs".
//
// When the context also carries an active trace (internal/telemetry/trace),
// the span opens a matching trace span: the registry keeps the aggregate
// rollup across all requests while the trace records this request's copy.
// Both close together in End.
type Span struct {
	reg   *Registry
	path  string
	start time.Time
	ended atomic.Bool
	tspan *trace.Span // nil unless the context carried a trace
}

type spanCtxKey struct{}

// StartSpan opens a span named name in registry r, nesting under any span
// already in ctx. The returned context carries the new span for children.
func (r *Registry) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	path := name
	if parent, ok := ctx.Value(spanCtxKey{}).(*Span); ok && parent.reg == r {
		path = parent.path + "/" + name
	}
	sp := &Span{reg: r, path: path, start: time.Now()}
	ctx, sp.tspan = trace.StartChild(ctx, name)
	return context.WithValue(ctx, spanCtxKey{}, sp), sp
}

// StartSpan opens a span in the Default registry.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return Default.StartSpan(ctx, name)
}

// End records the span's duration into its path's rollup (and closes the
// matching trace span, if any). Safe to call more than once; only the
// first call records.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.tspan.End()
	s.reg.recordSpan(s.path, time.Since(s.start))
}

// Path returns the span's hierarchical identifier.
func (s *Span) Path() string { return s.path }

// SetStage tags the span's trace copy as a well-known pipeline stage
// ("queue", "compile", "run", "merge") for per-job timing breakdowns.
// No-op when no trace is active.
func (s *Span) SetStage(stage string) {
	if s != nil {
		s.tspan.SetStage(stage)
	}
}

// Annotate attaches a key=value attribute to the span's trace copy.
// No-op when no trace is active.
func (s *Span) Annotate(key, value string) {
	if s != nil {
		s.tspan.SetAttr(key, value)
	}
}

// AnnotateInt attaches an integer attribute to the span's trace copy. The
// value is only formatted when a trace is active, so untraced hot paths
// pay nothing.
func (s *Span) AnnotateInt(key string, value int) {
	if s != nil && s.tspan != nil {
		s.tspan.SetAttr(key, strconv.Itoa(value))
	}
}

func (r *Registry) recordSpan(path string, d time.Duration) {
	r.mu.RLock()
	st := r.spans[path]
	r.mu.RUnlock()
	if st == nil {
		r.mu.Lock()
		if st = r.spans[path]; st == nil {
			st = &spanStats{}
			st.minNs.Store(math.MaxInt64)
			st.maxNs.Store(math.MinInt64)
			r.spans[path] = st
		}
		r.mu.Unlock()
	}
	ns := d.Nanoseconds()
	st.count.Add(1)
	st.totalNs.Add(ns)
	for {
		old := st.minNs.Load()
		if ns >= old || st.minNs.CompareAndSwap(old, ns) {
			break
		}
	}
	for {
		old := st.maxNs.Load()
		if ns <= old || st.maxNs.CompareAndSwap(old, ns) {
			break
		}
	}
}
