package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteSnapshotAtomicOverwrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.json")
	// A stale document from a previous run must be replaced wholesale,
	// never partially overwritten.
	if err := os.WriteFile(path, []byte("stale garbage that is much longer than the real document could tear into"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	r.Counter("c").Add(1)
	if err := r.WriteSnapshot(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatalf("snapshot unreadable after overwrite: %v", err)
	}
	if got.Counters["c"] != 1 {
		t.Errorf("counter = %d, want 1", got.Counters["c"])
	}
	// The temp file must not survive a successful rename.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("leftover temp file %q", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Errorf("dir entries = %d, want just the snapshot", len(entries))
	}
}

func TestWriteSnapshotUnwritableDir(t *testing.T) {
	if err := NewRegistry().WriteSnapshot(filepath.Join(t.TempDir(), "missing", "m.json")); err == nil {
		t.Fatal("writing into a missing directory must fail")
	}
}
