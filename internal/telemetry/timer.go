package telemetry

import "time"

// ObserveSince records the elapsed seconds since start — the one idiom
// every duration histogram in the codebase uses, so call sites don't
// hand-roll time.Since(start).Seconds().
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Timer times one phase into a histogram. Zero-value Timers are invalid;
// use StartTimer.
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer starts timing into h.
func StartTimer(h *Histogram) Timer {
	return Timer{h: h, start: time.Now()}
}

// ObserveDuration records the elapsed time into the histogram (in
// seconds) and returns it. It may be called multiple times; each call
// records the total elapsed time since the timer started.
func (t Timer) ObserveDuration() time.Duration {
	d := time.Since(t.start)
	t.h.Observe(d.Seconds())
	return d
}
