package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// SchemaVersion identifies the snapshot JSON layout.
const SchemaVersion = "neutronsim.telemetry/v1"

// Snapshot is the machine-readable state of a registry at one instant —
// the artifact written by the -metrics-out flag so sweeps and benches
// produce comparable perf trajectories across commits.
type Snapshot struct {
	Schema   string                       `json:"schema"`
	Program  string                       `json:"program,omitempty"`
	TakenAt  time.Time                    `json:"taken_at"`
	Counters map[string]int64             `json:"counters,omitempty"`
	Gauges   map[string]float64           `json:"gauges,omitempty"`
	Hists    map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans    map[string]SpanSnapshot      `json:"spans,omitempty"`
}

// HistogramSnapshot summarizes one histogram's distribution.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// SpanSnapshot is the wall-time rollup of one span path. Paths are
// slash-joined hierarchies ("core.assess/beam.campaign/beam.runs").
type SpanSnapshot struct {
	Count    int64   `json:"count"`
	TotalSec float64 `json:"total_seconds"`
	MeanSec  float64 `json:"mean_seconds"`
	MinSec   float64 `json:"min_seconds"`
	MaxSec   float64 `json:"max_seconds"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := &Snapshot{
		Schema:   SchemaVersion,
		Program:  r.program,
		TakenAt:  time.Now().UTC(),
		Counters: map[string]int64{},
		Gauges:   map[string]float64{},
		Hists:    map[string]HistogramSnapshot{},
		Spans:    map[string]SpanSnapshot{},
	}
	for _, name := range sortedKeys(r.counters) {
		s.Counters[name] = r.counters[name].Value()
	}
	for _, name := range sortedKeys(r.gauges) {
		s.Gauges[name] = r.gauges[name].Value()
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
		if hs.Count > 0 {
			hs.Mean = hs.Sum / float64(hs.Count)
			hs.Min = h.Quantile(0)
			hs.Max = h.Quantile(1)
			hs.P50 = h.Quantile(0.50)
			hs.P90 = h.Quantile(0.90)
			hs.P99 = h.Quantile(0.99)
		}
		s.Hists[name] = hs
	}
	for _, path := range sortedKeys(r.spans) {
		st := r.spans[path]
		n := st.count.Load()
		if n == 0 {
			continue
		}
		total := float64(st.totalNs.Load()) / 1e9
		s.Spans[path] = SpanSnapshot{
			Count:    n,
			TotalSec: total,
			MeanSec:  total / float64(n),
			MinSec:   float64(st.minNs.Load()) / 1e9,
			MaxSec:   float64(st.maxNs.Load()) / 1e9,
		}
	}
	return s
}

// WriteSnapshot writes the registry's snapshot as indented JSON to path.
// The write is atomic — a temp file in the same directory renamed over
// the target — so a scraper polling the file mid-write never reads a torn
// document.
func (r *Registry) WriteSnapshot(path string) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: marshal snapshot: %w", err)
	}
	if err := WriteFileAtomic(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("telemetry: write snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot loads a snapshot written by WriteSnapshot and verifies its
// schema tag.
func ReadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: read snapshot: %w", err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("telemetry: parse snapshot: %w", err)
	}
	if s.Schema != SchemaVersion {
		return nil, fmt.Errorf("telemetry: unknown snapshot schema %q", s.Schema)
	}
	return &s, nil
}
