package telemetry

import (
	"bytes"
	"context"
	"flag"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits")
			g := r.Gauge("level")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("level").Value(); got != 0 {
		t.Errorf("gauge = %g, want 0 after balanced adds", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := r.Histogram("lat")
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(w + 1))
			}
		}(w)
	}
	wg.Wait()
	h := r.Histogram("lat")
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
	wantSum := float64(perWorker) * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8)
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Errorf("sum = %g, want %g", h.Sum(), wantSum)
	}
	if min, max := h.Quantile(0), h.Quantile(1); min != 1 || max != 8 {
		t.Errorf("min/max = %g/%g, want 1/8", min, max)
	}
	if p50 := h.Quantile(0.5); p50 < 1 || p50 > 8 {
		t.Errorf("p50 = %g out of observed range", p50)
	}
}

func TestHistogramBuckets(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want int
	}{
		{-1, 0}, {0, 0}, {math.NaN(), 0}, {1, 33}, {1.5, 33}, {2, 34}, {0.5, 32},
		{math.MaxFloat64, histBuckets - 1},
	} {
		if got := bucketIndex(tc.v); got != tc.want {
			t.Errorf("bucketIndex(%g) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestSpanNesting(t *testing.T) {
	r := NewRegistry()
	ctx, outer := r.StartSpan(context.Background(), "outer")
	for i := 0; i < 3; i++ {
		_, inner := r.StartSpan(ctx, "inner")
		time.Sleep(time.Millisecond)
		inner.End()
	}
	outer.End()
	outer.End() // idempotent
	s := r.Snapshot()
	in, ok := s.Spans["outer/inner"]
	if !ok {
		t.Fatalf("missing hierarchical span path, have %v", sortedKeys(s.Spans))
	}
	if in.Count != 3 {
		t.Errorf("inner count = %d, want 3", in.Count)
	}
	out, ok := s.Spans["outer"]
	if !ok || out.Count != 1 {
		t.Fatalf("outer span = %+v, want count 1", out)
	}
	if out.TotalSec < in.TotalSec {
		t.Errorf("outer total %g < sum of inner %g", out.TotalSec, in.TotalSec)
	}
	if in.MinSec <= 0 || in.MaxSec < in.MinSec || in.MeanSec*float64(in.Count) > in.TotalSec*1.0001 {
		t.Errorf("inconsistent rollup %+v", in)
	}
}

func TestSpanConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, sp := r.StartSpan(context.Background(), "work")
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot().Spans["work"].Count; got != 8*200 {
		t.Errorf("span count = %d, want %d", got, 8*200)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.SetProgram("test")
	r.Counter("beam.interactions").Add(42)
	r.Gauge("beam.samples_per_sec").Set(1234.5)
	r.Histogram("core.assess_seconds").Observe(0.25)
	_, sp := r.StartSpan(context.Background(), "beam.campaign")
	sp.End()

	path := filepath.Join(t.TempDir(), "snap.json")
	if err := r.WriteSnapshot(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion || got.Program != "test" {
		t.Errorf("schema/program = %q/%q", got.Schema, got.Program)
	}
	if got.Counters["beam.interactions"] != 42 {
		t.Errorf("counter = %d, want 42", got.Counters["beam.interactions"])
	}
	if got.Gauges["beam.samples_per_sec"] != 1234.5 {
		t.Errorf("gauge = %g", got.Gauges["beam.samples_per_sec"])
	}
	h := got.Hists["core.assess_seconds"]
	if h.Count != 1 || h.Sum != 0.25 || h.Min != 0.25 || h.Max != 0.25 {
		t.Errorf("histogram snapshot = %+v", h)
	}
	if got.Spans["beam.campaign"].Count != 1 {
		t.Errorf("span snapshot = %+v", got.Spans["beam.campaign"])
	}
}

func TestReadSnapshotRejectsUnknownSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(path); err == nil {
		t.Error("unknown schema accepted")
	}
}

func TestProgressReporter(t *testing.T) {
	var buf bytes.Buffer
	EnableProgress(&buf, 0)
	defer DisableProgress()
	ReportProgress(ProgressUpdate{
		Component: "beam", Device: "K20", Beam: "ROTAX",
		Done: 50, Total: 100, Fluence: 1.5e9, Events: 7,
		Elapsed: 10 * time.Second,
	})
	ReportProgress(ProgressUpdate{Component: "beam", Device: "K20", Beam: "ROTAX", Done: 100, Total: 100, Events: 11})
	DisableProgress()
	ReportProgress(ProgressUpdate{Component: "beam", Events: 99}) // dropped
	out := buf.String()
	for _, want := range []string{"beam K20 @ ROTAX", "50.0%", "fluence=1.5e+09", "events=7", "eta=10s", "done"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "events=99") {
		t.Error("disabled reporter still printed")
	}
}

func TestProgressThrottle(t *testing.T) {
	var buf bytes.Buffer
	EnableProgress(&buf, time.Hour)
	defer DisableProgress()
	for i := 1; i <= 10; i++ {
		ReportProgress(ProgressUpdate{Component: "sweep", Done: float64(i), Total: 20})
	}
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Errorf("throttled reporter printed %d lines, want 1:\n%s", got, buf.String())
	}
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(3)
	srv, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	defer srv.Close()
	for _, tc := range []struct {
		path, want string
	}{
		{"/debug/vars", `"telemetry"`},
		{"/debug/telemetry", `"hits": 3`},
		{"/debug/pprof/cmdline", "telemetry.test"},
	} {
		resp, err := http.Get("http://" + addr + tc.path)
		if err != nil {
			t.Fatalf("GET %s: %v", tc.path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", tc.path, resp.StatusCode)
		}
		if !strings.Contains(string(body), tc.want) {
			t.Errorf("GET %s: body missing %q", tc.path, tc.want)
		}
	}
}

func TestCLILifecycle(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	cli := BindFlags(fs)
	out := filepath.Join(t.TempDir(), "m.json")
	if err := fs.Parse([]string{"-metrics-out", out, "-progress"}); err != nil {
		t.Fatal(err)
	}
	if err := cli.Start("telemetry-test"); err != nil {
		t.Fatal(err)
	}
	if !ProgressEnabled() {
		t.Error("-progress did not enable the reporter")
	}
	Count("cli.test_counter", 5)
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if ProgressEnabled() {
		t.Error("Close left the progress reporter enabled")
	}
	s, err := ReadSnapshot(out)
	if err != nil {
		t.Fatal(err)
	}
	if s.Counters["cli.test_counter"] < 5 {
		t.Errorf("snapshot counter = %d, want >= 5", s.Counters["cli.test_counter"])
	}
	if s.Program != "telemetry-test" {
		t.Errorf("snapshot program = %q", s.Program)
	}
}
