// Package faultinject turns device-level radiation faults into workload
// outcomes, applying the beam-experiment classification of the paper
// (§III-C): an output mismatch against a fault-free golden copy is an SDC;
// an application that dies or gets stuck is a DUE; anything else is masked.
package faultinject

import (
	"errors"
	"fmt"

	"neutronsim/internal/device"
	"neutronsim/internal/rng"
	"neutronsim/internal/workload"
)

// Outcome classifies the effect of injected faults on one run.
type Outcome int

// Outcomes.
const (
	OutcomeMasked Outcome = iota + 1
	OutcomeSDC
	OutcomeDUE
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeMasked:
		return "masked"
	case OutcomeSDC:
		return "SDC"
	case OutcomeDUE:
		return "DUE"
	default:
		return "unknown"
	}
}

// Timed is a device fault scheduled before a workload step.
type Timed struct {
	Step  int
	Fault device.Fault
}

// Config tunes the injector.
type Config struct {
	// ControlDUEProb is the probability that a control-logic fault
	// actually brings the run down (the rest are architecturally masked).
	// It applies identically to both neutron bands, preserving the
	// calibrated band ratios. Default 0.6.
	ControlDUEProb float64
}

func (c Config) withDefaults() Config {
	if c.ControlDUEProb <= 0 {
		c.ControlDUEProb = 0.6
	}
	return c
}

// Result is the classified outcome of one injected run.
type Result struct {
	Outcome Outcome
	// Err is the step error for DUEs caused by the workload itself
	// (hang / corrupt state); nil for control-logic DUEs.
	Err error
	// FlippedBits is the number of state bits actually flipped.
	FlippedBits int
}

// Injector caches a workload's golden output and repeatedly replays the
// workload under injected faults. It is not safe for concurrent use; use
// one Injector per goroutine.
type Injector struct {
	w      workload.Workload
	seed   uint64
	cfg    Config
	golden []float64
	// scratch is the reusable data-fault buffer for Run; keeping it on the
	// injector makes repeated injections allocation-free once its capacity
	// has grown to the campaign's fault-count high-water mark.
	scratch []Timed
}

// NewInjector runs the workload once cleanly to capture the golden output.
func NewInjector(w workload.Workload, seed uint64, cfg Config) (*Injector, error) {
	if w == nil {
		return nil, errors.New("faultinject: nil workload")
	}
	inj := &Injector{w: w, seed: seed, cfg: cfg.withDefaults()}
	w.Reset(seed)
	for i := 0; i < w.Steps(); i++ {
		if err := w.Step(i); err != nil {
			return nil, fmt.Errorf("faultinject: golden run failed at step %d: %w", i, err)
		}
	}
	inj.golden = w.Output()
	return inj, nil
}

// Golden returns a copy of the fault-free output.
func (inj *Injector) Golden() []float64 {
	return append([]float64(nil), inj.golden...)
}

// Workload returns the underlying workload.
func (inj *Injector) Workload() workload.Workload { return inj.w }

// Run replays the workload, injecting each fault before its step, and
// classifies the outcome.
func (inj *Injector) Run(faults []Timed, s *rng.Stream) Result {
	// Control-logic faults act at the architecture level, independent of
	// the program state: each takes the run down with ControlDUEProb.
	dataFaults := inj.scratch[:0]
	for _, f := range faults {
		if f.Fault.Target == device.TargetControl {
			if s.Bernoulli(inj.cfg.ControlDUEProb) {
				return Result{Outcome: OutcomeDUE}
			}
			continue // masked control fault
		}
		dataFaults = append(dataFaults, f)
	}
	inj.scratch = dataFaults
	if len(dataFaults) == 0 {
		return Result{Outcome: OutcomeMasked}
	}
	// Fault lists are tiny (λ is tuned toward ~1 fault per run), so a
	// stable insertion sort beats sort.SliceStable and allocates nothing.
	for i := 1; i < len(dataFaults); i++ {
		for j := i; j > 0 && dataFaults[j].Step < dataFaults[j-1].Step; j-- {
			dataFaults[j], dataFaults[j-1] = dataFaults[j-1], dataFaults[j]
		}
	}
	inj.w.Reset(inj.seed)
	steps := inj.w.Steps()
	flipped := 0
	next := 0
	for i := 0; i < steps; i++ {
		for next < len(dataFaults) && clampStep(dataFaults[next].Step, steps) == i {
			flipped += inj.apply(dataFaults[next].Fault, s)
			next++
		}
		if err := inj.w.Step(i); err != nil {
			return Result{Outcome: OutcomeDUE, Err: err, FlippedBits: flipped}
		}
	}
	// Late faults (scheduled at or beyond the last step boundary).
	for ; next < len(dataFaults); next++ {
		flipped += inj.apply(dataFaults[next].Fault, s)
	}
	out := inj.w.Output()
	if len(out) != len(inj.golden) {
		return Result{Outcome: OutcomeSDC, FlippedBits: flipped}
	}
	for i := range out {
		if out[i] != inj.golden[i] {
			return Result{Outcome: OutcomeSDC, FlippedBits: flipped}
		}
	}
	return Result{Outcome: OutcomeMasked, FlippedBits: flipped}
}

func clampStep(step, steps int) int {
	if step < 0 {
		return 0
	}
	if step >= steps {
		return steps - 1
	}
	return step
}

// apply flips the fault's bit count into the live workload state and
// returns the number of bits flipped. Memory faults prefer large storage
// regions; datapath faults are uniform over all words.
func (inj *Injector) apply(f device.Fault, s *rng.Stream) int {
	regions := inj.w.Regions()
	if len(regions) == 0 {
		return 0
	}
	total := workload.TotalWords(regions)
	if total == 0 {
		return 0
	}
	bits := f.Bits
	if bits < 1 {
		bits = 1
	}
	flipped := 0
	// Pick the word for the first bit; MBU bits land in adjacent words.
	word := s.Intn(total)
	for b := 0; b < bits; b++ {
		idx := word + b
		if idx >= total {
			idx = total - 1 - (idx - total)
			if idx < 0 {
				idx = 0
			}
		}
		r, off := locate(regions, idx)
		if r == nil {
			continue
		}
		if err := r.FlipBit(off, s.Intn(r.BitsPerWord())); err == nil {
			flipped++
		}
	}
	return flipped
}

// locate maps a global word index onto its region and local offset.
func locate(regions []workload.Region, idx int) (*workload.Region, int) {
	for i := range regions {
		w := regions[i].Words()
		if idx < w {
			return &regions[i], idx
		}
		idx -= w
	}
	return nil, 0
}

// AVF is the architecture vulnerability profile measured by single-fault
// injection: the fraction of injected faults producing each outcome.
type AVF struct {
	Runs   int
	Masked int
	SDC    int
	DUE    int
}

// SDCFraction returns SDC/Runs.
func (a AVF) SDCFraction() float64 {
	if a.Runs == 0 {
		return 0
	}
	return float64(a.SDC) / float64(a.Runs)
}

// DUEFraction returns DUE/Runs.
func (a AVF) DUEFraction() float64 {
	if a.Runs == 0 {
		return 0
	}
	return float64(a.DUE) / float64(a.Runs)
}

// MaskedFraction returns Masked/Runs.
func (a AVF) MaskedFraction() float64 {
	if a.Runs == 0 {
		return 0
	}
	return float64(a.Masked) / float64(a.Runs)
}

// MeasureAVF injects n independent single faults (uniformly timed data
// faults of the given template) and tallies outcomes. It is the
// software-fault-injection companion the paper's related work references
// (AVF/PVF studies).
func MeasureAVF(inj *Injector, template device.Fault, n int, s *rng.Stream) (AVF, error) {
	if n <= 0 {
		return AVF{}, errors.New("faultinject: run count must be positive")
	}
	steps := inj.w.Steps()
	avf := AVF{Runs: n}
	for i := 0; i < n; i++ {
		f := Timed{Step: s.Intn(steps), Fault: template}
		switch inj.Run([]Timed{f}, s).Outcome {
		case OutcomeSDC:
			avf.SDC++
		case OutcomeDUE:
			avf.DUE++
		default:
			avf.Masked++
		}
	}
	return avf, nil
}
