package faultinject

import (
	"testing"

	"neutronsim/internal/device"
	"neutronsim/internal/rng"
	"neutronsim/internal/workload"
)

func newInjector(t *testing.T, name string) *Injector {
	t.Helper()
	w, err := workload.New(name)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := NewInjector(w, 42, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func dataFault(bits int) device.Fault {
	return device.Fault{Target: device.TargetMemory, Bits: bits}
}

func TestNewInjectorNilWorkload(t *testing.T) {
	if _, err := NewInjector(nil, 1, Config{}); err == nil {
		t.Error("nil workload accepted")
	}
}

func TestGoldenIsCopied(t *testing.T) {
	inj := newInjector(t, "MxM")
	g := inj.Golden()
	g[0] = 1e99
	if inj.Golden()[0] == 1e99 {
		t.Error("Golden() exposed internal slice")
	}
}

func TestNoFaultsIsMasked(t *testing.T) {
	inj := newInjector(t, "MxM")
	s := rng.New(1)
	if res := inj.Run(nil, s); res.Outcome != OutcomeMasked {
		t.Errorf("clean run classified %v", res.Outcome)
	}
}

func TestControlFaultsBecomeDUEs(t *testing.T) {
	inj := newInjector(t, "MxM")
	s := rng.New(2)
	due, masked := 0, 0
	for i := 0; i < 2000; i++ {
		res := inj.Run([]Timed{{Step: 0, Fault: device.Fault{Target: device.TargetControl, Bits: 1}}}, s)
		switch res.Outcome {
		case OutcomeDUE:
			due++
		case OutcomeMasked:
			masked++
		default:
			t.Fatalf("control fault produced %v", res.Outcome)
		}
	}
	frac := float64(due) / 2000
	if frac < 0.55 || frac > 0.65 {
		t.Errorf("control DUE fraction = %v, want ~0.6", frac)
	}
	if masked == 0 {
		t.Error("some control faults should be masked")
	}
}

func TestControlDUEProbConfigurable(t *testing.T) {
	w, _ := workload.New("MxM")
	inj, err := NewInjector(w, 42, Config{ControlDUEProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(3)
	for i := 0; i < 100; i++ {
		res := inj.Run([]Timed{{Fault: device.Fault{Target: device.TargetControl, Bits: 1}}}, s)
		if res.Outcome != OutcomeDUE {
			t.Fatalf("with prob 1, control fault produced %v", res.Outcome)
		}
	}
}

func TestDataFaultsProduceSDCs(t *testing.T) {
	inj := newInjector(t, "MxM")
	s := rng.New(4)
	outcomes := map[Outcome]int{}
	for i := 0; i < 500; i++ {
		res := inj.Run([]Timed{{Step: s.Intn(24), Fault: dataFault(1)}}, s)
		outcomes[res.Outcome]++
		if res.Outcome != OutcomeMasked && res.FlippedBits == 0 && res.Err == nil {
			t.Fatal("non-masked outcome without flipped bits")
		}
	}
	if outcomes[OutcomeSDC] == 0 {
		t.Errorf("MxM single-bit faults produced no SDCs: %v", outcomes)
	}
	if outcomes[OutcomeMasked] == 0 {
		t.Errorf("MxM single-bit faults never masked: %v", outcomes)
	}
}

func TestBFSFaultsCanHangOrCrash(t *testing.T) {
	inj := newInjector(t, "BFS")
	s := rng.New(5)
	dues := 0
	for i := 0; i < 1500; i++ {
		res := inj.Run([]Timed{{Step: s.Intn(4), Fault: dataFault(3)}}, s)
		if res.Outcome == OutcomeDUE {
			dues++
			if res.Err == nil {
				t.Fatal("workload DUE without cause")
			}
		}
	}
	if dues == 0 {
		t.Error("BFS control-state corruption never produced a workload DUE")
	}
}

func TestCNNMasksMoreThanMxM(t *testing.T) {
	// The paper's CNN observation: detection outputs mask most data
	// faults, unlike bit-exact HPC kernels.
	s := rng.New(6)
	mxm := newInjector(t, "MxM")
	yolo := newInjector(t, "YOLO")
	avfM, err := MeasureAVF(mxm, dataFault(1), 400, s)
	if err != nil {
		t.Fatal(err)
	}
	avfY, err := MeasureAVF(yolo, dataFault(1), 400, s)
	if err != nil {
		t.Fatal(err)
	}
	if avfY.SDCFraction() >= avfM.SDCFraction() {
		t.Errorf("YOLO SDC fraction %v should be below MxM's %v",
			avfY.SDCFraction(), avfM.SDCFraction())
	}
}

func TestMeasureAVFFractionsSum(t *testing.T) {
	inj := newInjector(t, "HotSpot")
	s := rng.New(7)
	avf, err := MeasureAVF(inj, dataFault(1), 300, s)
	if err != nil {
		t.Fatal(err)
	}
	if avf.Masked+avf.SDC+avf.DUE != avf.Runs {
		t.Errorf("outcome counts do not sum: %+v", avf)
	}
	sum := avf.SDCFraction() + avf.DUEFraction() + avf.MaskedFraction()
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum to %v", sum)
	}
}

func TestMeasureAVFValidation(t *testing.T) {
	inj := newInjector(t, "MxM")
	if _, err := MeasureAVF(inj, dataFault(1), 0, rng.New(1)); err == nil {
		t.Error("zero runs accepted")
	}
}

func TestAVFZeroRuns(t *testing.T) {
	var avf AVF
	if avf.SDCFraction() != 0 || avf.DUEFraction() != 0 || avf.MaskedFraction() != 0 {
		t.Error("zero-run AVF fractions should be 0")
	}
}

func TestMultipleFaultsAccumulate(t *testing.T) {
	inj := newInjector(t, "MxM")
	s := rng.New(8)
	// Many simultaneous faults virtually guarantee an SDC.
	faults := make([]Timed, 50)
	for i := range faults {
		faults[i] = Timed{Step: i % 24, Fault: dataFault(2)}
	}
	sdcOrDue := 0
	for i := 0; i < 50; i++ {
		res := inj.Run(faults, s)
		if res.Outcome != OutcomeMasked {
			sdcOrDue++
		}
	}
	if sdcOrDue < 45 {
		t.Errorf("50×2-bit faults masked too often: %d/50 visible", sdcOrDue)
	}
}

func TestLateFaultStepsClamped(t *testing.T) {
	inj := newInjector(t, "MxM")
	s := rng.New(9)
	// Steps far beyond the workload length must still be applied safely.
	res := inj.Run([]Timed{{Step: 10000, Fault: dataFault(1)}}, s)
	if res.Outcome == OutcomeDUE {
		t.Errorf("late fault produced %v (err %v)", res.Outcome, res.Err)
	}
}

func TestNegativeStepClamped(t *testing.T) {
	inj := newInjector(t, "MxM")
	s := rng.New(10)
	res := inj.Run([]Timed{{Step: -5, Fault: dataFault(1)}}, s)
	_ = res // must simply not panic
}

func TestRunRepeatable(t *testing.T) {
	// Two injectors with identical seeds and fault schedules must agree.
	mk := func() Result {
		w, _ := workload.New("LUD")
		inj, err := NewInjector(w, 77, Config{})
		if err != nil {
			t.Fatal(err)
		}
		s := rng.New(11)
		return inj.Run([]Timed{{Step: 3, Fault: dataFault(1)}}, s)
	}
	r1, r2 := mk(), mk()
	if r1.Outcome != r2.Outcome || r1.FlippedBits != r2.FlippedBits {
		t.Errorf("non-deterministic injection: %+v vs %+v", r1, r2)
	}
}

func TestOutcomeString(t *testing.T) {
	if OutcomeMasked.String() != "masked" || OutcomeSDC.String() != "SDC" ||
		OutcomeDUE.String() != "DUE" || Outcome(0).String() != "unknown" {
		t.Error("outcome names wrong")
	}
}

func TestAllWorkloadsInjectable(t *testing.T) {
	s := rng.New(12)
	for _, name := range workload.Names() {
		t.Run(name, func(t *testing.T) {
			inj := newInjector(t, name)
			for i := 0; i < 50; i++ {
				res := inj.Run([]Timed{{Step: i, Fault: dataFault(1)}}, s)
				if res.Outcome == 0 {
					t.Fatal("unclassified outcome")
				}
			}
		})
	}
}
