// Package report renders a device reliability dossier in Markdown: the
// artifact a reliability engineer would hand to a program office after a
// beam campaign — measured cross sections, fast:thermal ratios, FIT rates
// per candidate site, the thermal-neutron contribution, and operational
// advice (checkpointing, shielding caveats).
package report

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"neutronsim/internal/checkpoint"
	"neutronsim/internal/core"
	"neutronsim/internal/fit"
	"neutronsim/internal/units"
)

// Input assembles everything the dossier needs.
type Input struct {
	Assessment   *core.Assessment
	Environments []fit.Environment
	// SystemNodes scales the per-device DUE rate to a whole machine for
	// the checkpoint section; zero skips that section.
	SystemNodes int
	// CheckpointSeconds is the checkpoint cost used for interval advice
	// (default 1800).
	CheckpointSeconds float64
}

// Markdown renders the dossier.
func Markdown(in Input) (string, error) {
	if in.Assessment == nil {
		return "", errors.New("report: nil assessment")
	}
	if len(in.Environments) == 0 {
		return "", errors.New("report: no environments")
	}
	if in.CheckpointSeconds <= 0 {
		in.CheckpointSeconds = 1800
	}
	a := in.Assessment
	d := a.Device
	var b strings.Builder
	w := func(format string, args ...any) {
		fmt.Fprintf(&b, format, args...)
	}

	w("# Reliability dossier: %s\n\n", d.Name)
	w("- vendor: %s\n- process: %s (%s)\n- class: %s\n- die area: %.2f cm²\n",
		d.Vendor, d.Process, d.Tech, d.Kind, d.DieAreaCm2)
	w("- benchmarks: %s\n\n", strings.Join(a.Workloads, ", "))

	w("## Beam measurements\n\n")
	w("Matched campaigns at ChipIR (high-energy) and ROTAX (thermal).\n\n")
	w("| benchmark | beam | runs | SDC | DUE |\n|---|---|---:|---:|---:|\n")
	for _, wl := range a.Workloads {
		pair := a.PerWorkload[wl]
		w("| %s | ChipIR | %d | %d | %d |\n", wl, pair.Fast.Runs, pair.Fast.SDC, pair.Fast.DUE)
		w("| %s | ROTAX | %d | %d | %d |\n", wl, pair.Thermal.Runs, pair.Thermal.SDC, pair.Thermal.DUE)
	}
	w("\n")

	sdcRatio, sdcLo, sdcHi := a.SDCRatio()
	dueRatio, dueLo, dueHi := a.DUERatio()
	w("## Fast:thermal sensitivity\n\n")
	if !math.IsNaN(sdcRatio) {
		w("- SDC cross-section ratio: **%.2f** (95%% CI %.2f–%.2f)\n", sdcRatio, sdcLo, sdcHi)
	}
	if !math.IsNaN(dueRatio) {
		w("- DUE cross-section ratio: **%.2f** (95%% CI %.2f–%.2f)\n", dueRatio, dueLo, dueHi)
	}
	if d.Boron10PerCm2 > 0 {
		w("- inferred ¹⁰B areal density: %.2g at/cm²\n", d.Boron10PerCm2)
	} else {
		w("- no ¹⁰B detected: the part is immune to thermal neutrons\n")
	}
	w("\n")

	w("## Failure rates by environment\n\n")
	w("| environment | SDC FIT | DUE FIT | total | thermal share | MTBF |\n")
	w("|---|---:|---:|---:|---:|---:|\n")
	var worstDUE units.FIT
	var worstEnv fit.Environment
	for _, env := range in.Environments {
		rep, err := a.FIT(env)
		if err != nil {
			return "", fmt.Errorf("report: %s: %w", env, err)
		}
		total := rep.Total()
		share := 0.0
		if total > 0 {
			share = float64(rep.SDC.Thermal+rep.DUE.Thermal) / float64(total)
		}
		w("| %s | %.4g | %.4g | %.4g | %.1f%% | %.3g h |\n",
			env, float64(rep.SDC.Total()), float64(rep.DUE.Total()),
			float64(total), share*100, total.MTBF())
		if rep.DUE.Total() > worstDUE {
			worstDUE = rep.DUE.Total()
			worstEnv = env
		}
	}
	w("\n")

	if in.SystemNodes > 0 && worstDUE > 0 {
		w("## Checkpoint advice (%d-node system, worst environment: %s)\n\n",
			in.SystemNodes, worstEnv)
		sunny := units.FIT(float64(worstDUE) * float64(in.SystemNodes))
		rainyEnv := worstEnv
		rainyEnv.Raining = true
		rainyRep, err := a.FIT(rainyEnv)
		if err != nil {
			return "", err
		}
		rainy := units.FIT(float64(rainyRep.DUE.Total()) * float64(in.SystemNodes))
		if rainy < sunny {
			rainy = sunny
		}
		plan, err := checkpoint.PlanSchedule(sunny, rainy, in.CheckpointSeconds,
			[]checkpoint.Day{{Raining: false}, {Raining: true}})
		if err != nil {
			return "", err
		}
		w("- system MTBF: %.3g h dry, %.3g h in rain\n",
			plan.Days[0].MTBFSeconds/3600, plan.Days[1].MTBFSeconds/3600)
		w("- Daly checkpoint interval: %.0f min dry, %.0f min in rain\n",
			plan.Days[0].IntervalSeconds/60, plan.Days[1].IntervalSeconds/60)
		w("- expected waste at optimum: %.2f%%\n\n", plan.Days[0].AdaptiveWaste*100)
	}

	w("## Mitigation notes\n\n")
	if d.Boron10PerCm2 > 0 {
		w("- The thermal component can be removed at the source (depleted-boron\n")
		w("  processing) or shielded: ~1 mm cadmium stops thermals but is toxic when\n")
		w("  heated; ~2 in borated polyethylene works but thermally insulates the part.\n")
		w("- Expect the thermal share to rise with altitude, near cooling water, over\n")
		w("  concrete, and during rain (up to 2× thermal flux in storms).\n")
	} else {
		w("- No thermal-specific mitigation needed; the high-energy component remains.\n")
	}
	return b.String(), nil
}
