package report

import (
	"strings"
	"testing"

	"neutronsim/internal/core"
	"neutronsim/internal/device"
	"neutronsim/internal/fit"
)

func testAssessment(t *testing.T, d *device.Device) *core.Assessment {
	t.Helper()
	a, err := core.Assess(d, []string{"MxM"}, core.QuickBudget(), 3)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestMarkdownValidation(t *testing.T) {
	if _, err := Markdown(Input{}); err == nil {
		t.Error("nil assessment accepted")
	}
	a := testAssessment(t, device.K20())
	if _, err := Markdown(Input{Assessment: a}); err == nil {
		t.Error("empty environments accepted")
	}
}

func TestMarkdownSections(t *testing.T) {
	a := testAssessment(t, device.K20())
	md, err := Markdown(Input{
		Assessment: a,
		Environments: []fit.Environment{
			fit.DataCenter(fit.NYC()),
			fit.DataCenter(fit.Leadville()),
		},
		SystemNodes: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# Reliability dossier: K20",
		"## Beam measurements",
		"| MxM | ChipIR |",
		"| MxM | ROTAX |",
		"## Fast:thermal sensitivity",
		"SDC cross-section ratio",
		"inferred ¹⁰B areal density",
		"## Failure rates by environment",
		"Leadville",
		"## Checkpoint advice",
		"Daly checkpoint interval",
		"## Mitigation notes",
		"cadmium",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("dossier missing %q", want)
		}
	}
}

func TestMarkdownBoronFree(t *testing.T) {
	free := device.BoronFree(device.K20())
	// A boron-free device still works end to end (thermal campaigns find
	// nothing).
	a, err := core.Assess(free, []string{"MxM"}, core.QuickBudget(), 4)
	if err != nil {
		t.Fatal(err)
	}
	md, err := Markdown(Input{
		Assessment:   a,
		Environments: []fit.Environment{fit.DataCenter(fit.NYC())},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md, "immune to thermal neutrons") {
		t.Error("boron-free dossier missing immunity note")
	}
	if !strings.Contains(md, "No thermal-specific mitigation") {
		t.Error("boron-free dossier missing mitigation note")
	}
}

func TestMarkdownSkipsCheckpointWithoutNodes(t *testing.T) {
	a := testAssessment(t, device.TitanX())
	md, err := Markdown(Input{
		Assessment:   a,
		Environments: []fit.Environment{fit.DataCenter(fit.NYC())},
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(md, "## Checkpoint advice") {
		t.Error("checkpoint section present without SystemNodes")
	}
}
