// Package detector simulates Tin-II, the thermal-neutron detector the
// paper built and deployed (§III-D, §VI): two identical ³He proportional
// tubes, one wrapped in cadmium. Cadmium blocks thermal neutrons but
// passes everything else, so the count-rate difference between the bare
// and shielded tubes, scaled by the detection efficiency, measures the
// ambient thermal-neutron flux. The headline experiment places two inches
// of water over the detector and watches the hourly counts jump ~24%
// (Fig. "turkeypan").
package detector

import (
	"context"
	"errors"
	"fmt"
	"math"

	"neutronsim/internal/materials"
	"neutronsim/internal/rng"
	"neutronsim/internal/stats"
	"neutronsim/internal/transport"
	"neutronsim/internal/units"
)

// Config describes the detector hardware.
type Config struct {
	// TubePressureAtm is the ³He fill pressure (default 4 atm).
	TubePressureAtm float64
	// TubeDiameterCm and TubeLengthCm set the sensitive cylinder
	// (defaults 2.54 cm × 30 cm).
	TubeDiameterCm float64
	TubeLengthCm   float64
	// CadmiumThicknessCm is the shield thickness on the second tube
	// (default 0.1 cm — 1 mm).
	CadmiumThicknessCm float64
	// NonThermalRatePerHour is the per-tube rate from everything cadmium
	// does not stop: gammas, betas, fast neutrons (default 120/h).
	NonThermalRatePerHour float64
	// DeadTimeMicros is the non-paralyzable dead time per pulse of the
	// counting chain in microseconds (0 = ideal counter). At Tin-II's
	// natural-background rates the correction is negligible, but it
	// matters when the same instrument is parked in a beam.
	DeadTimeMicros float64
	// EfficiencySamples sets the Monte Carlo budget for the capture
	// efficiency estimate (default 20000).
	EfficiencySamples int
}

func (c Config) withDefaults() Config {
	if c.TubePressureAtm <= 0 {
		c.TubePressureAtm = 4
	}
	if c.TubeDiameterCm <= 0 {
		c.TubeDiameterCm = 2.54
	}
	if c.TubeLengthCm <= 0 {
		c.TubeLengthCm = 30
	}
	if c.CadmiumThicknessCm <= 0 {
		c.CadmiumThicknessCm = 0.1
	}
	if c.NonThermalRatePerHour <= 0 {
		c.NonThermalRatePerHour = 120
	}
	if c.EfficiencySamples <= 0 {
		c.EfficiencySamples = 20000
	}
	return c
}

// FaceAreaCm2 returns the tube's projected sensitive area.
func (c Config) FaceAreaCm2() float64 {
	return c.TubeDiameterCm * c.TubeLengthCm
}

// Detector is a ready-to-count Tin-II instance with a calibrated thermal
// capture efficiency.
type Detector struct {
	cfg Config
	// Efficiency is the probability that a thermal neutron crossing the
	// bare tube is captured on ³He (Monte Carlo, from the transport
	// engine).
	Efficiency float64
	// ShieldLeak is the fraction of thermal neutrons that survive the
	// cadmium shield and get counted by the shielded tube.
	ShieldLeak float64
}

// New builds the detector, running the transport engine to establish the
// tube capture efficiency and the Cd shield leakage.
func New(cfg Config, s *rng.Stream) (*Detector, error) {
	cfg = cfg.withDefaults()
	if s == nil {
		return nil, errors.New("detector: nil rng stream")
	}
	thermal := func(st *rng.Stream) units.Energy { return units.Energy(st.MaxwellEnergy(0.0253)) }
	gas := materials.Helium3Gas(cfg.TubePressureAtm)
	tally, err := transport.Simulate([]transport.Slab{
		{Material: gas, Thickness: cfg.TubeDiameterCm},
	}, cfg.EfficiencySamples, thermal, s)
	if err != nil {
		return nil, fmt.Errorf("detector: efficiency estimate: %w", err)
	}
	eff := float64(tally.AbsorbedByElement["He3"]) / float64(tally.Incident)
	shielded, err := transport.Simulate([]transport.Slab{
		{Material: materials.CadmiumSheet(), Thickness: cfg.CadmiumThicknessCm},
		{Material: gas, Thickness: cfg.TubeDiameterCm},
	}, cfg.EfficiencySamples, thermal, s)
	if err != nil {
		return nil, fmt.Errorf("detector: shield estimate: %w", err)
	}
	leak := float64(shielded.AbsorbedByElement["He3"]) / float64(shielded.Incident)
	return &Detector{cfg: cfg, Efficiency: eff, ShieldLeak: leak}, nil
}

// Config returns the (defaulted) configuration.
func (d *Detector) Config() Config { return d.cfg }

// Gap is the flux-schedule sentinel for an hour with no data (detector
// offline, DAQ restart). Gapped hours record NaN in the series.
const Gap = -1

// Series is an hourly counting record.
type Series struct {
	// Bare and Shielded are per-hour counts for the two tubes.
	Bare     []float64
	Shielded []float64
	// ThermalEstimate is Bare-Shielded, the thermal-neutron signal.
	// Gapped hours are NaN.
	ThermalEstimate []float64
}

// Hours returns the series length.
func (s Series) Hours() int { return len(s.Bare) }

// GapCount returns the number of missing hours.
func (s Series) GapCount() int {
	n := 0
	for _, v := range s.ThermalEstimate {
		if math.IsNaN(v) {
			n++
		}
	}
	return n
}

// Interpolated returns a copy of the thermal-estimate series with gaps
// filled by linear interpolation between the nearest valid neighbors
// (edges are held), making the series safe for change-point analysis.
func (s Series) Interpolated() []float64 {
	out := append([]float64(nil), s.ThermalEstimate...)
	n := len(out)
	for i := 0; i < n; i++ {
		if !math.IsNaN(out[i]) {
			continue
		}
		// Find the surrounding valid samples.
		lo := i - 1
		for lo >= 0 && math.IsNaN(out[lo]) {
			lo--
		}
		hi := i
		for hi < n && math.IsNaN(out[hi]) {
			hi++
		}
		switch {
		case lo < 0 && hi >= n:
			out[i] = 0 // fully gapped series
		case lo < 0:
			out[i] = out[hi]
		case hi >= n:
			out[i] = out[lo]
		default:
			f := float64(i-lo) / float64(hi-lo)
			out[i] = out[lo]*(1-f) + out[hi]*f
		}
	}
	return out
}

// Count simulates hourly counting for the given thermal-flux schedule
// (n/cm²/h as a function of hour index).
func (d *Detector) Count(hours int, thermalFluxPerHour func(hour int) float64, s *rng.Stream) (Series, error) {
	if hours <= 0 {
		return Series{}, errors.New("detector: non-positive duration")
	}
	if thermalFluxPerHour == nil {
		return Series{}, errors.New("detector: nil flux schedule")
	}
	out := Series{
		Bare:            make([]float64, hours),
		Shielded:        make([]float64, hours),
		ThermalEstimate: make([]float64, hours),
	}
	area := d.cfg.FaceAreaCm2()
	for h := 0; h < hours; h++ {
		flux := thermalFluxPerHour(h)
		if flux == Gap {
			out.Bare[h] = math.NaN()
			out.Shielded[h] = math.NaN()
			out.ThermalEstimate[h] = math.NaN()
			continue
		}
		if flux < 0 {
			return Series{}, fmt.Errorf("detector: negative flux at hour %d", h)
		}
		thermalMean := flux * area * d.Efficiency
		bareMean := d.observedMeanPerHour(thermalMean + d.cfg.NonThermalRatePerHour)
		bare := float64(s.Poisson(bareMean))
		shieldedMean := d.observedMeanPerHour(flux*area*d.ShieldLeak + d.cfg.NonThermalRatePerHour)
		shielded := float64(s.Poisson(shieldedMean))
		out.Bare[h] = bare
		out.Shielded[h] = shielded
		out.ThermalEstimate[h] = bare - shielded
	}
	return out, nil
}

// observedMeanPerHour applies the non-paralyzable dead-time distortion to
// an hourly true count rate: r_obs = r_true / (1 + r_true·τ).
func (d *Detector) observedMeanPerHour(truePerHour float64) float64 {
	tau := d.cfg.DeadTimeMicros * 1e-6
	if tau <= 0 {
		return truePerHour
	}
	perSecond := truePerHour / 3600
	return 3600 * perSecond / (1 + perSecond*tau)
}

// CorrectDeadTime inverts the dead-time distortion for an observed hourly
// count: r_true = r_obs / (1 - r_obs·τ). It returns an error when the
// observed rate is at or beyond saturation.
func (d *Detector) CorrectDeadTime(observedPerHour float64) (float64, error) {
	tau := d.cfg.DeadTimeMicros * 1e-6
	if tau <= 0 {
		return observedPerHour, nil
	}
	perSecond := observedPerHour / 3600
	if perSecond*tau >= 1 {
		return 0, errors.New("detector: observed rate beyond dead-time saturation")
	}
	return 3600 * perSecond / (1 - perSecond*tau), nil
}

// StepSchedule returns a flux schedule that jumps from base to
// base*(1+enhancement) at changeHour — the water-placement experiment.
func StepSchedule(base, enhancement float64, changeHour int) func(int) float64 {
	return func(h int) float64 {
		if h >= changeHour {
			return base * (1 + enhancement)
		}
		return base
	}
}

// WaterExperiment reproduces the paper's Fig. "turkeypan": several days of
// background counting, then two inches of water placed over the detector.
// The thermal-flux enhancement is computed by the transport engine from
// the water slab's albedo (calibrated coupling; see fit package), and the
// resulting count series is scanned for the step.
type WaterExperimentResult struct {
	Series      Series
	Enhancement float64 // transport-computed flux enhancement (~0.24)
	Change      stats.ChangePoint
	// WaterHour is the hour index at which water was placed.
	WaterHour int
}

// WaterExperimentConfig parameterizes the experiment.
type WaterExperimentConfig struct {
	Detector *Detector
	// BaseThermalFluxPerHour is the building's ambient thermal flux
	// (default 5 n/cm²/h, a LANL-building-like value).
	BaseThermalFluxPerHour float64
	// FastToThermalRatio and Coupling feed the transport enhancement
	// estimate (defaults 3.2 and 0.5 — see fit package calibration).
	FastToThermalRatio float64
	Coupling           float64
	// DaysBefore and DaysAfter set the observation window (defaults 9, 5:
	// water went on 2019-04-20 after several days of background).
	DaysBefore, DaysAfter int
	// WaterThicknessCm is the slab thickness (default 5.08 — two inches).
	WaterThicknessCm float64
	TransportSamples int
}

func (c WaterExperimentConfig) withDefaults() WaterExperimentConfig {
	if c.BaseThermalFluxPerHour <= 0 {
		c.BaseThermalFluxPerHour = 5
	}
	if c.FastToThermalRatio <= 0 {
		c.FastToThermalRatio = 3.2
	}
	if c.Coupling <= 0 {
		c.Coupling = 0.5
	}
	if c.DaysBefore <= 0 {
		c.DaysBefore = 9
	}
	if c.DaysAfter <= 0 {
		c.DaysAfter = 5
	}
	if c.WaterThicknessCm <= 0 {
		c.WaterThicknessCm = 5.08
	}
	if c.TransportSamples <= 0 {
		c.TransportSamples = 20000
	}
	return c
}

// RunWaterExperiment executes the full pipeline: transport → schedule →
// counting → change detection.
func RunWaterExperiment(cfg WaterExperimentConfig, s *rng.Stream) (*WaterExperimentResult, error) {
	return RunWaterExperimentContext(context.Background(), cfg, s)
}

// RunWaterExperimentContext is RunWaterExperiment with a caller context;
// cancellation aborts the transport stage at the next shard boundary and
// skips the pipeline stages that have not started yet.
func RunWaterExperimentContext(ctx context.Context, cfg WaterExperimentConfig, s *rng.Stream) (*WaterExperimentResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Detector == nil {
		return nil, errors.New("detector: nil detector")
	}
	if s == nil {
		return nil, errors.New("detector: nil rng stream")
	}
	fastSource := func(st *rng.Stream) units.Energy {
		return units.Energy(st.WattEnergy(0.988, 2.249) * 1e6)
	}
	enh, err := transport.ThermalEnhancementContext(ctx, transport.EnhancementConfig{
		Moderator:              materials.Water(),
		Thickness:              cfg.WaterThicknessCm,
		FastToThermalFluxRatio: cfg.FastToThermalRatio,
		Coupling:               cfg.Coupling,
		Neutrons:               cfg.TransportSamples,
	}, fastSource, s)
	if err != nil {
		return nil, fmt.Errorf("detector: enhancement: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	waterHour := cfg.DaysBefore * 24
	hours := (cfg.DaysBefore + cfg.DaysAfter) * 24
	series, err := cfg.Detector.Count(hours,
		StepSchedule(cfg.BaseThermalFluxPerHour, enh, waterHour), s)
	if err != nil {
		return nil, err
	}
	change, err := stats.DetectStep(series.Interpolated(), 24, 5)
	if err != nil {
		return nil, err
	}
	return &WaterExperimentResult{
		Series:      series,
		Enhancement: enh,
		Change:      change,
		WaterHour:   waterHour,
	}, nil
}

// CrossCalibrate runs both tubes bare for the given hours (the paper's
// 18-hour calibration) and returns the relative rate difference, which
// should be consistent with zero for identical tubes.
func (d *Detector) CrossCalibrate(hours int, thermalFluxPerHour float64, s *rng.Stream) (relDiff float64, err error) {
	if hours <= 0 {
		return 0, errors.New("detector: non-positive calibration window")
	}
	area := d.cfg.FaceAreaCm2()
	mean := thermalFluxPerHour*area*d.Efficiency + d.cfg.NonThermalRatePerHour
	var a, b float64
	for h := 0; h < hours; h++ {
		a += float64(s.Poisson(mean))
		b += float64(s.Poisson(mean))
	}
	if a == 0 {
		return 0, errors.New("detector: calibration collected no counts")
	}
	return (b - a) / a, nil
}
