package detector

import (
	"math"
	"testing"

	"neutronsim/internal/rng"
	"neutronsim/internal/stats"
)

func newDetector(t *testing.T, seed uint64) *Detector {
	t.Helper()
	d, err := New(Config{}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, nil); err == nil {
		t.Error("nil stream accepted")
	}
}

func TestEfficiencyPlausible(t *testing.T) {
	d := newDetector(t, 1)
	if d.Efficiency < 0.3 || d.Efficiency > 0.99 {
		t.Errorf("4 atm ³He tube efficiency = %v, want high", d.Efficiency)
	}
	if d.ShieldLeak > 0.01 {
		t.Errorf("Cd shield leaks %v of thermals, want ~0", d.ShieldLeak)
	}
}

func TestDefaults(t *testing.T) {
	d := newDetector(t, 2)
	cfg := d.Config()
	if cfg.TubePressureAtm != 4 || cfg.TubeDiameterCm != 2.54 ||
		cfg.TubeLengthCm != 30 || cfg.NonThermalRatePerHour != 120 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if got := cfg.FaceAreaCm2(); math.Abs(got-76.2) > 0.01 {
		t.Errorf("face area = %v", got)
	}
}

func TestCountValidation(t *testing.T) {
	d := newDetector(t, 3)
	s := rng.New(4)
	if _, err := d.Count(0, func(int) float64 { return 1 }, s); err == nil {
		t.Error("zero hours accepted")
	}
	if _, err := d.Count(10, nil, s); err == nil {
		t.Error("nil schedule accepted")
	}
	if _, err := d.Count(10, func(int) float64 { return -2 }, s); err == nil {
		t.Error("negative (non-Gap) flux accepted")
	}
}

func TestShieldedTubeSeesOnlyBackground(t *testing.T) {
	d := newDetector(t, 5)
	s := rng.New(6)
	series, err := d.Count(200, func(int) float64 { return 5 }, s)
	if err != nil {
		t.Fatal(err)
	}
	var bare, shielded float64
	for h := 0; h < series.Hours(); h++ {
		bare += series.Bare[h]
		shielded += series.Shielded[h]
	}
	bare /= 200
	shielded /= 200
	if math.Abs(shielded-120) > 5 {
		t.Errorf("shielded mean = %v, want ~120 (background only)", shielded)
	}
	if bare <= shielded+100 {
		t.Errorf("bare tube (%v) should far exceed shielded (%v)", bare, shielded)
	}
}

func TestThermalEstimateTracksFlux(t *testing.T) {
	d := newDetector(t, 7)
	s := rng.New(8)
	series, err := d.Count(500, func(int) float64 { return 5 }, s)
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for _, v := range series.ThermalEstimate {
		mean += v
	}
	mean /= float64(len(series.ThermalEstimate))
	want := 5 * d.Config().FaceAreaCm2() * d.Efficiency
	if math.Abs(mean-want)/want > 0.1 {
		t.Errorf("thermal estimate mean = %v, want ~%v", mean, want)
	}
}

func TestStepSchedule(t *testing.T) {
	sched := StepSchedule(10, 0.24, 100)
	if sched(99) != 10 {
		t.Error("pre-change flux wrong")
	}
	if math.Abs(sched(100)-12.4) > 1e-12 {
		t.Error("post-change flux wrong")
	}
}

func TestWaterExperimentReproducesPaper(t *testing.T) {
	d := newDetector(t, 9)
	res, err := RunWaterExperiment(WaterExperimentConfig{Detector: d}, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	// The transport-computed enhancement should be near the paper's 24%.
	if res.Enhancement < 0.15 || res.Enhancement > 0.35 {
		t.Errorf("water enhancement = %v, paper reports ~0.24", res.Enhancement)
	}
	if !res.Change.Significant {
		t.Fatalf("step not detected: z=%v", res.Change.ZScore)
	}
	// Detected step location within a day of the true water placement.
	if diff := res.Change.Index - res.WaterHour; diff < -24 || diff > 24 {
		t.Errorf("step detected at hour %d, water placed at %d", res.Change.Index, res.WaterHour)
	}
	// Detected magnitude should match the injected enhancement.
	if math.Abs(res.Change.RelChange-res.Enhancement) > 0.08 {
		t.Errorf("detected change %v vs enhancement %v", res.Change.RelChange, res.Enhancement)
	}
}

func TestWaterExperimentValidation(t *testing.T) {
	if _, err := RunWaterExperiment(WaterExperimentConfig{}, rng.New(1)); err == nil {
		t.Error("nil detector accepted")
	}
	d := newDetector(t, 11)
	if _, err := RunWaterExperiment(WaterExperimentConfig{Detector: d}, nil); err == nil {
		t.Error("nil stream accepted")
	}
}

func TestCrossCalibrate(t *testing.T) {
	d := newDetector(t, 12)
	rel, err := d.CrossCalibrate(18, 5, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rel) > 0.05 {
		t.Errorf("identical tubes differ by %v over 18 h", rel)
	}
	if _, err := d.CrossCalibrate(0, 5, rng.New(14)); err == nil {
		t.Error("zero-hour calibration accepted")
	}
}

func TestCountDeterministic(t *testing.T) {
	d := newDetector(t, 15)
	mk := func() Series {
		s, err := d.Count(50, func(int) float64 { return 5 }, rng.New(16))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	for h := range a.Bare {
		if a.Bare[h] != b.Bare[h] || a.Shielded[h] != b.Shielded[h] {
			t.Fatal("non-deterministic counting")
		}
	}
}

func TestDeadTimeNegligibleAtBackgroundRates(t *testing.T) {
	ideal, err := New(Config{}, rng.New(20))
	if err != nil {
		t.Fatal(err)
	}
	realistic, err := New(Config{DeadTimeMicros: 5}, rng.New(20))
	if err != nil {
		t.Fatal(err)
	}
	// ~370 counts/h: the correction should be invisible.
	mIdeal := ideal.observedMeanPerHour(370)
	mReal := realistic.observedMeanPerHour(370)
	if math.Abs(mIdeal-mReal)/mIdeal > 1e-6 {
		t.Errorf("dead time visible at background rates: %v vs %v", mIdeal, mReal)
	}
}

func TestDeadTimeSaturatesInBeam(t *testing.T) {
	d, err := New(Config{DeadTimeMicros: 5}, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	// A beam-like true rate of 1e6 counts/s = 3.6e9 per hour.
	obs := d.observedMeanPerHour(3.6e9)
	maxPossible := 3600.0 / 5e-6
	if obs > maxPossible {
		t.Errorf("observed %v exceeds saturation %v", obs, maxPossible)
	}
	if obs < 0.1*maxPossible {
		t.Errorf("observed %v implausibly low", obs)
	}
}

func TestCorrectDeadTimeRoundTrip(t *testing.T) {
	d, err := New(Config{DeadTimeMicros: 10}, rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	for _, trueRate := range []float64{100, 1e5, 1e7} {
		obs := d.observedMeanPerHour(trueRate)
		back, err := d.CorrectDeadTime(obs)
		if err != nil {
			t.Fatalf("rate %v: %v", trueRate, err)
		}
		if math.Abs(back-trueRate)/trueRate > 1e-9 {
			t.Errorf("round trip %v -> %v -> %v", trueRate, obs, back)
		}
	}
}

func TestCorrectDeadTimeSaturationError(t *testing.T) {
	d, err := New(Config{DeadTimeMicros: 10}, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	saturation := 3600.0 / 10e-6
	if _, err := d.CorrectDeadTime(saturation * 1.001); err == nil {
		t.Error("saturated observation accepted")
	}
}

func TestCorrectDeadTimeIdealPassThrough(t *testing.T) {
	d, err := New(Config{}, rng.New(24))
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.CorrectDeadTime(12345)
	if err != nil || got != 12345 {
		t.Errorf("ideal counter changed the value: %v %v", got, err)
	}
}

func TestGapsRecordedAndInterpolated(t *testing.T) {
	d := newDetector(t, 40)
	s := rng.New(41)
	// Hours 10-19 are a DAQ outage.
	series, err := d.Count(100, func(h int) float64 {
		if h >= 10 && h < 20 {
			return Gap
		}
		return 5
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	if got := series.GapCount(); got != 10 {
		t.Errorf("gap count = %d, want 10", got)
	}
	if !math.IsNaN(series.Bare[15]) || !math.IsNaN(series.ThermalEstimate[15]) {
		t.Error("gapped hour not NaN")
	}
	interp := series.Interpolated()
	for h, v := range interp {
		if math.IsNaN(v) {
			t.Fatalf("interpolated series still has NaN at %d", h)
		}
	}
	// Interpolated values sit between the neighbors' scale.
	if interp[15] < 100 || interp[15] > 400 {
		t.Errorf("interpolated value %v implausible", interp[15])
	}
}

func TestInterpolatedEdgeGaps(t *testing.T) {
	s := Series{ThermalEstimate: []float64{math.NaN(), 5, math.NaN()}}
	got := s.Interpolated()
	if got[0] != 5 || got[2] != 5 {
		t.Errorf("edge gaps should hold nearest value: %v", got)
	}
	all := Series{ThermalEstimate: []float64{math.NaN(), math.NaN()}}
	for _, v := range all.Interpolated() {
		if v != 0 {
			t.Error("fully gapped series should fill with zeros")
		}
	}
}

func TestWaterExperimentSurvivesGaps(t *testing.T) {
	d := newDetector(t, 42)
	s := rng.New(43)
	// Run the experiment manually with a gap in the middle of the
	// background period.
	enh := 0.24
	waterHour := 9 * 24
	series, err := d.Count(14*24, func(h int) float64 {
		if h >= 100 && h < 124 {
			return Gap
		}
		if h >= waterHour {
			return 5 * (1 + enh)
		}
		return 5
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := stats.DetectStep(series.Interpolated(), 24, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Significant {
		t.Fatalf("step not detected through the gap: %+v", cp)
	}
	if diff := cp.Index - waterHour; diff < -24 || diff > 24 {
		t.Errorf("step at %d, want ~%d", cp.Index, waterHour)
	}
}
