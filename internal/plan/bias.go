package plan

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"

	"neutronsim/internal/device"
	"neutronsim/internal/physics"
	"neutronsim/internal/rng"
	"neutronsim/internal/spectrum"
	"neutronsim/internal/stats"
	"neutronsim/internal/units"
)

// Bias is the importance-sampling knob for a campaign: per-band factors
// multiplying the calibration probability mass of each energy band when
// the biased alias table is built. A factor above 1 oversamples the band
// (each of its draws then carries a likelihood weight below 1), a factor
// below 1 undersamples it. A zero field means "unset" and is treated as
// 1.0, so the zero value Bias{} is the identity: it routes the campaign
// through the weighted code path but reproduces the exact results
// bit-for-bit, with every weight exactly 1 (the zero-bias identity the
// equivalence suite pins).
//
// Biasing changes only the conditional energy distribution of interaction
// draws — the interaction rate λ, the run count, and the fluence are
// untouched — so a weighted campaign is a drop-in, unbiased estimator of
// the exact campaign with (ideally much) smaller variance on the
// oversampled band's tallies.
type Bias struct {
	Thermal    float64 `json:"thermal,omitempty"`
	Epithermal float64 `json:"epithermal,omitempty"`
	Fast       float64 `json:"fast,omitempty"`
}

// Validate rejects factors that cannot define a sampling distribution:
// negative, NaN or infinite. Zero is valid (unset ⇒ 1.0).
func (b Bias) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{{"thermal", b.Thermal}, {"epithermal", b.Epithermal}, {"fast", b.Fast}} {
		if f.v < 0 || math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("plan: bias %s factor %v must be a finite non-negative number (0 means unset)", f.name, f.v)
		}
	}
	return nil
}

// factors resolves the per-band multipliers, mapping unset (zero) fields
// to 1. Index 0 is the out-of-band slot and is always 1.
func (b Bias) factors() [physics.NumBands + 1]float64 {
	eff := func(v float64) float64 {
		if v == 0 {
			return 1
		}
		return v
	}
	var f [physics.NumBands + 1]float64
	f[0] = 1
	f[physics.BandThermal] = eff(b.Thermal)
	f[physics.BandEpithermal] = eff(b.Epithermal)
	f[physics.BandFast] = eff(b.Fast)
	return f
}

// IsIdentity reports whether every effective factor is exactly 1.
func (b Bias) IsIdentity() bool {
	for _, f := range b.factors() {
		if f != 1 {
			return false
		}
	}
	return true
}

// KeyForBiased is KeyFor for importance-sampled plans: the shared key
// material plus a bias tag and the three effective factors. An exact plan
// and a biased plan — or two plans with different factors — always hash
// to distinct keys, so they can never collide in the cache; a factor
// spelled 0 and the same factor spelled 1.0 hash identically because both
// resolve to the same sampler.
func KeyForBiased(d *device.Device, sp spectrum.Spectrum, calSamples int, seed uint64, bias Bias) (string, bool) {
	h, ok := keyHash(d, sp, calSamples, seed)
	if !ok {
		return "", false
	}
	h.Write([]byte("bias/v1\x00"))
	var buf [8]byte
	for _, f := range bias.factors() {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil)), true
}

// CompileBiased compiles a plan carrying both the exact alias table and a
// band-biased one. The calibration pass is shared with Compile — same
// stream consumption, same Kahan accumulation — so the exact table of a
// biased plan is bit-identical to the plan Compile builds, and with
// identity factors the biased table is bit-identical too (every per-band
// weight then computes to exactly 1.0).
//
// The biased table reweights each calibration energy by its band's
// factor; a draw from it carries the likelihood weight
//
//	w(band) = (S'/S) / factor(band)
//
// where S and S' are the exact and biased calibration mass. E[w] = 1
// under the biased distribution, which is exactly the unbiasedness of the
// importance-sampling estimator.
func CompileBiased(d *device.Device, sp spectrum.Spectrum, n int, cal *rng.Stream, bias Bias) (*CampaignPlan, error) {
	if err := bias.Validate(); err != nil {
		return nil, err
	}
	energies, weights, sum := calibrate(d, sp, n, cal)
	p := &CampaignPlan{
		slots: buildSlots(energies, weights, sum),
		meanP: sum / float64(n),
		bias:  bias,
	}
	factors := bias.factors()
	biasedWeights := make([]float64, n)
	var bsum, comp float64
	for i, w := range weights {
		bw := w * factors[physics.Classify(energies[i])]
		biasedWeights[i] = bw
		y := bw - comp
		t := bsum + y
		comp = (t - bsum) - y
		bsum = t
	}
	p.biased = buildSlots(energies, biasedWeights, bsum)
	if sum <= 0 || bsum <= 0 {
		// Degenerate calibration (nothing interacts, before or after
		// biasing — the weights are non-negative, so the two degenerate
		// together). Both tables fell back to uniform selection; unit
		// weights keep the weighted path exactly the exact path.
		for b := range p.bandW {
			p.bandW[b] = 1
		}
		return p, nil
	}
	ratio := bsum / sum // exactly 1.0 for identity factors
	for b := range p.bandW {
		p.bandW[b] = ratio / factors[b]
	}
	return p, nil
}

// IsBiased reports whether the plan carries a biased table (it was built
// by CompileBiased — including with identity factors).
func (p *CampaignPlan) IsBiased() bool { return p.biased != nil }

// Bias returns the bias knob the plan was compiled with, and whether the
// plan is biased at all.
func (p *CampaignPlan) Bias() (Bias, bool) { return p.bias, p.biased != nil }

// BandWeight returns the likelihood weight a draw in the given band
// carries (1 for exact plans and out-of-range bands).
func (p *CampaignPlan) BandWeight(b physics.EnergyBand) float64 {
	if p.biased == nil || int(b) < 0 || int(b) >= len(p.bandW) {
		return 1
	}
	return p.bandW[b]
}

// SampleInteractionWeighted draws an interacting energy from the biased
// table and returns it with its likelihood weight. It mirrors
// SampleInteraction exactly — one uniform, one 32-byte slot read, zero
// allocations — plus a band classification (two comparisons) to look the
// weight up. On an exact plan it degrades to SampleInteraction with
// weight 1, consuming the same stream state.
func (p *CampaignPlan) SampleInteractionWeighted(s *rng.Stream) (units.Energy, float64) {
	if p.biased == nil {
		return p.SampleInteraction(s), 1
	}
	n := len(p.biased)
	u := s.Float64() * float64(n)
	i := int(u)
	if i >= n {
		i = n - 1
	}
	sl := &p.biased[i]
	e := sl.alias
	if u-float64(i) < sl.prob {
		e = sl.self
	}
	return e, p.bandW[physics.Classify(e)]
}

// UpsetCrossSectionWeighted estimates the device's upset cross section
// from n (biased) interaction draws: σ = MeanP · (Σ wᵢ·1{upsetᵢ})/n ·
// DieArea. On an exact plan it is the interaction-conditioned form of
// device.UpsetCrossSection over the plan's calibration set; on a biased
// plan the likelihood weights keep the estimate unbiased while the
// oversampled band collects far more upset draws. The returned tally
// carries the weighted upset sum and ΣW², so callers can gate the
// estimate on its effective sample size.
func (p *CampaignPlan) UpsetCrossSectionWeighted(d *device.Device, n int, s *rng.Stream) (units.CrossSection, stats.Weighted, error) {
	if d == nil {
		return 0, stats.Weighted{}, errors.New("plan: nil device")
	}
	if n <= 0 {
		return 0, stats.Weighted{}, errors.New("plan: sample count must be positive")
	}
	var upsets stats.Weighted
	for i := 0; i < n; i++ {
		e, w := p.SampleInteractionWeighted(s)
		if _, ok := d.InteractionUpset(e, s); ok {
			upsets.Add(w)
		}
	}
	upsets.Finalize()
	return units.CrossSection(p.meanP * upsets.Sum() / float64(n) * d.DieAreaCm2), upsets, nil
}
