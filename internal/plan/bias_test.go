package plan

import (
	"math"
	"testing"

	"neutronsim/internal/device"
	"neutronsim/internal/physics"
	"neutronsim/internal/rng"
	"neutronsim/internal/spectrum"
	"neutronsim/internal/telemetry"
)

// TestBiasedKeySensitivity extends the key-safety property to biased
// plans: a biased key never collides with the exact key for the same
// campaign, different factors never share a key, and the two spellings of
// the identity factor — 0 (unset) and 1.0 — hash identically because they
// compile the same sampler.
func TestBiasedKeySensitivity(t *testing.T) {
	d := device.K20()
	key := func(bias Bias) string {
		k, ok := KeyForBiased(d, spectrum.ChipIR(), 20000, 1, bias)
		if !ok {
			t.Fatal("KeyForBiased not keyable on a fingerprinted spectrum")
		}
		return k
	}
	exact, _ := KeyFor(d, spectrum.ChipIR(), 20000, 1)
	identity := key(Bias{})
	if identity == exact {
		t.Error("identity-bias key collides with the exact key; biased and exact plans would share a cache entry")
	}
	if spelled := key(Bias{Thermal: 1, Epithermal: 1, Fast: 1}); spelled != identity {
		t.Error("bias factor spelled 1.0 keys differently from unset; both compile the same sampler")
	}
	seen := map[string]string{exact: "exact", identity: "identity"}
	for name, b := range map[string]Bias{
		"thermal":    {Thermal: 8},
		"epithermal": {Epithermal: 8},
		"fast":       {Fast: 8},
		"thermal16":  {Thermal: 16},
		"combined":   {Thermal: 8, Epithermal: 2},
	} {
		k := key(b)
		if prev, dup := seen[k]; dup {
			t.Errorf("bias %s collided with %s", name, prev)
		}
		seen[k] = name
	}

	// Run-only device fields must stay irrelevant for biased keys too.
	renamed := device.K20()
	renamed.Name = "renamed"
	renamed.DieAreaCm2 *= 3
	renamed.QcritFC *= 2
	ka, _ := KeyForBiased(d, spectrum.ChipIR(), 20000, 1, Bias{Thermal: 8})
	kb, _ := KeyForBiased(renamed, spectrum.ChipIR(), 20000, 1, Bias{Thermal: 8})
	if ka != kb {
		t.Error("run-only device fields changed the biased plan key")
	}
}

// TestCompileBiasedIdentity pins the zero-bias identity at the plan
// level: identity factors must reproduce the exact table bit-for-bit
// (same checksum inputs, same draws, same stream consumption) with every
// band weight exactly 1, so the weighted run loop's arithmetic degrades
// to the exact run loop's.
func TestCompileBiasedIdentity(t *testing.T) {
	d := device.K20()
	const n, seed = 4000, 3
	exact := Compile(d, spectrum.ChipIR(), n, CalibrationStream(seed))
	unit, err := CompileBiased(d, spectrum.ChipIR(), n, CalibrationStream(seed), Bias{})
	if err != nil {
		t.Fatal(err)
	}
	if !unit.IsBiased() {
		t.Fatal("identity-bias plan must still carry the biased table (it routes the weighted code path)")
	}
	if unit.MeanP() != exact.MeanP() {
		t.Errorf("meanP %v != exact %v", unit.MeanP(), exact.MeanP())
	}
	for b := physics.EnergyBand(0); b <= physics.BandFast; b++ {
		if w := unit.BandWeight(b); w != 1 {
			t.Errorf("band %d weight %v, want exactly 1", b, w)
		}
	}
	// Draw-for-draw: the biased table of an identity plan is bit-identical
	// to the exact table, so the weighted draw must return the same energy
	// from the same stream state, with weight exactly 1.
	se, sw := rng.New(77), rng.New(77)
	for i := 0; i < 5000; i++ {
		we, w := unit.SampleInteractionWeighted(sw)
		if e := exact.SampleInteraction(se); we != e || w != 1 {
			t.Fatalf("draw %d: weighted (%v, %v) != exact (%v, 1)", i, we, w, e)
		}
	}
}

// TestCompileBiasedWeights pins the likelihood-weight arithmetic: for a
// genuinely biased plan, w(band) = (S'/S)/factor(band), every draw's
// weight matches its band, and the weighted draws remain an unbiased
// estimator (mean weight ≈ 1 under the biased distribution).
func TestCompileBiasedWeights(t *testing.T) {
	d := device.FPGA()
	const n, seed = 20000, 5
	bias := Bias{Thermal: 25}
	p, err := CompileBiased(d, spectrum.ChipIR(), n, CalibrationStream(seed), bias)
	if err != nil {
		t.Fatal(err)
	}
	wThermal, wFast := p.BandWeight(physics.BandThermal), p.BandWeight(physics.BandFast)
	if !(wThermal < wFast) {
		t.Fatalf("oversampled thermal weight %v must be below fast weight %v", wThermal, wFast)
	}
	if math.Abs(wThermal*25-wFast) > 1e-12*wFast {
		t.Errorf("weights break w = ratio/factor: thermal %v × 25 != fast %v", wThermal, wFast)
	}
	s := rng.New(21)
	var meanW float64
	const draws = 200000
	thermal := 0
	for i := 0; i < draws; i++ {
		e, w := p.SampleInteractionWeighted(s)
		if want := p.BandWeight(physics.Classify(e)); w != want {
			t.Fatalf("draw %d: weight %v != band weight %v", i, w, want)
		}
		if physics.Classify(e) == physics.BandThermal {
			thermal++
		}
		meanW += w
	}
	meanW /= draws
	if math.Abs(meanW-1) > 0.01 {
		t.Errorf("mean draw weight %v, want ≈ 1 (unbiasedness)", meanW)
	}
	if thermal == 0 {
		t.Error("thermal oversampling drew no thermal energies")
	}
}

// TestCompileBiasedDegenerate pins the degenerate fallback: a campaign
// where nothing interacts compiles to the uniform table with unit weights
// on both the exact and the biased side.
func TestCompileBiasedDegenerate(t *testing.T) {
	d := device.K20()
	d.Boron10PerCm2 = 0 // thermal beam + no boron: p(E) = 0 everywhere
	p, err := CompileBiased(d, spectrum.ROTAX(), 64, CalibrationStream(7), Bias{Thermal: 100})
	if err != nil {
		t.Fatal(err)
	}
	if p.MeanP() != 0 {
		t.Fatalf("meanP = %v, want 0", p.MeanP())
	}
	for b := physics.EnergyBand(0); b <= physics.BandFast; b++ {
		if w := p.BandWeight(b); w != 1 {
			t.Errorf("degenerate plan band %d weight %v, want 1", b, w)
		}
	}
	s := rng.New(9)
	for i := 0; i < 1000; i++ {
		if _, w := p.SampleInteractionWeighted(s); w != 1 {
			t.Fatalf("degenerate draw carries weight %v, want 1", w)
		}
	}
}

// TestBiasValidate enumerates the rejection surface: negative, NaN and
// infinite factors are invalid; zero (unset) and any positive finite
// factor are valid.
func TestBiasValidate(t *testing.T) {
	for _, b := range []Bias{
		{Thermal: -1}, {Epithermal: -0.001}, {Fast: math.Inf(1)},
		{Thermal: math.Inf(-1)}, {Epithermal: math.NaN()},
	} {
		if b.Validate() == nil {
			t.Errorf("Validate accepted invalid bias %+v", b)
		}
	}
	for _, b := range []Bias{{}, {Thermal: 1e-9}, {Thermal: 100, Epithermal: 0.5, Fast: 2}} {
		if err := b.Validate(); err != nil {
			t.Errorf("Validate rejected valid bias %+v: %v", b, err)
		}
	}
}

// FuzzBiasedAlias drives CompileBiased with fuzzed factors. Invalid
// factors (negative, NaN, ±Inf) must be rejected with an error — never a
// panic — and valid factors must produce a plan whose draws all carry the
// positive finite weight of their band.
func FuzzBiasedAlias(f *testing.F) {
	f.Add(uint64(1), 100.0, 1.0, 1.0)
	f.Add(uint64(2), 0.0, 0.0, 0.0)
	f.Add(uint64(3), -1.0, math.NaN(), math.Inf(1))
	f.Add(uint64(4), 1e-300, 1e300, 0.5)
	f.Fuzz(func(t *testing.T, seed uint64, thermal, epithermal, fast float64) {
		bias := Bias{Thermal: thermal, Epithermal: epithermal, Fast: fast}
		p, err := CompileBiased(device.K20(), spectrum.ChipIR(), 200, CalibrationStream(seed), bias)
		if bias.Validate() != nil {
			if err == nil {
				t.Fatalf("invalid bias %+v compiled without error", bias)
			}
			return
		}
		if err != nil {
			t.Fatalf("valid bias %+v rejected: %v", bias, err)
		}
		s := rng.New(seed)
		for i := 0; i < 256; i++ {
			_, w := p.SampleInteractionWeighted(s)
			if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
				t.Fatalf("bias %+v draw %d carries non-finite or non-positive weight %v", bias, i, w)
			}
		}
	})
}

// TestCacheForBiased pins the cache behavior of biased plans: nil bias is
// the exact path (same entry as For), a non-nil bias compiles its own
// entry, distinct factors get distinct entries, and repeated lookups hit.
func TestCacheForBiased(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewCache(8, reg)
	d := device.K20()
	const n = 256

	exact := c.For(d, spectrum.ChipIR(), n, 1)
	if viaNil := c.ForBiased(d, spectrum.ChipIR(), n, 1, nil); viaNil != exact {
		t.Error("nil bias must share the exact plan's cache entry")
	}
	identity := c.ForBiased(d, spectrum.ChipIR(), n, 1, &Bias{})
	if identity == exact {
		t.Error("identity bias shared the exact entry; it must compile its own biased plan")
	}
	if !identity.IsBiased() {
		t.Error("cached identity plan lost its biased table")
	}
	thermal := c.ForBiased(d, spectrum.ChipIR(), n, 1, &Bias{Thermal: 8})
	if thermal == identity || thermal == exact {
		t.Error("distinct bias factors shared a cache entry")
	}
	if again := c.ForBiased(d, spectrum.ChipIR(), n, 1, &Bias{Thermal: 8}); again != thermal {
		t.Error("repeated biased lookup recompiled instead of hitting")
	}
	st := c.Stats()
	if st.Misses != 3 || st.Hits != 2 {
		t.Errorf("cache counters %+v, want 3 misses (exact, identity, thermal) and 2 hits", st)
	}
}

// TestBiasedChecksumDistinct pins the checksum side of the identity: a
// biased plan's checksum covers the biased table and weights, so exact
// and biased plans — and differently biased plans — are distinguishable
// artifacts, while two compilations of the same biased campaign agree.
func TestBiasedChecksumDistinct(t *testing.T) {
	d := device.K20()
	const n, seed = 512, 2
	exact := Compile(d, spectrum.ChipIR(), n, CalibrationStream(seed))
	a, err := CompileBiased(d, spectrum.ChipIR(), n, CalibrationStream(seed), Bias{Thermal: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompileBiased(d, spectrum.ChipIR(), n, CalibrationStream(seed), Bias{Thermal: 16})
	if err != nil {
		t.Fatal(err)
	}
	again, err := CompileBiased(d, spectrum.ChipIR(), n, CalibrationStream(seed), Bias{Thermal: 8})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Checksum() == a.Checksum() || a.Checksum() == b.Checksum() {
		t.Error("bias does not move the plan checksum")
	}
	if a.Checksum() != again.Checksum() {
		t.Error("recompiling the same biased campaign moved the checksum")
	}
}
