package plan

import (
	"sync"
	"testing"

	"neutronsim/internal/device"
	"neutronsim/internal/spectrum"
	"neutronsim/internal/telemetry"
)

// TestKeySensitivity proves the cache key covers every input Compile reads:
// changing any one of them moves the key, and identical inputs reproduce
// it. A collision between two different compilations would silently serve
// the wrong physics, so this is the cache's core safety property.
func TestKeySensitivity(t *testing.T) {
	base := device.K20()
	key := func(d *device.Device, sp spectrum.Spectrum, n int, seed uint64) string {
		k, ok := KeyFor(d, sp, n, seed)
		if !ok {
			t.Fatalf("KeyFor(%s, %s) not keyable", d.Name, sp.Name())
		}
		return k
	}
	ref := key(base, spectrum.ChipIR(), 20000, 1)
	if again := key(device.K20(), spectrum.ChipIR(), 20000, 1); again != ref {
		t.Errorf("identical inputs produced different keys:\n%s\n%s", ref, again)
	}

	perturbed := map[string]string{
		"spectrum":   key(base, spectrum.ROTAX(), 20000, 1),
		"calSamples": key(base, spectrum.ChipIR(), 20001, 1),
		"seed":       key(base, spectrum.ChipIR(), 20000, 2),
	}
	boron := device.K20()
	boron.Boron10PerCm2 *= 2
	perturbed["boron"] = key(boron, spectrum.ChipIR(), 20000, 1)
	depth := device.K20()
	depth.SensitiveDepthUm *= 2
	perturbed["depth"] = key(depth, spectrum.ChipIR(), 20000, 1)
	frac := device.K20()
	frac.SensitiveFraction /= 2
	perturbed["fraction"] = key(frac, spectrum.ChipIR(), 20000, 1)

	seen := map[string]string{ref: "reference"}
	for name, k := range perturbed {
		if prev, dup := seen[k]; dup {
			t.Errorf("perturbing %s collided with %s", name, prev)
		}
		seen[k] = name
	}
}

// TestKeyIgnoresRunOnlyFields pins the flip side: device fields that do not
// feed Compile (die area, Qcrit, name) must not fragment the cache.
func TestKeyIgnoresRunOnlyFields(t *testing.T) {
	a := device.K20()
	b := device.K20()
	b.Name = "renamed"
	b.DieAreaCm2 *= 3
	b.QcritFC *= 2
	b.QcritSigmaFC *= 2
	ka, _ := KeyFor(a, spectrum.ChipIR(), 20000, 1)
	kb, _ := KeyFor(b, spectrum.ChipIR(), 20000, 1)
	if ka != kb {
		t.Errorf("run-only device fields changed the plan key:\n%s\n%s", ka, kb)
	}
}

// TestCacheHitMissEvict walks a small cache through its whole lifecycle
// and checks the counters and the LRU order at each step.
func TestCacheHitMissEvict(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewCache(2, reg)
	d := device.K20()
	const n = 256

	p1 := c.For(d, spectrum.ChipIR(), n, 1)
	if got := c.Stats(); got.Misses != 1 || got.Hits != 0 || got.Entries != 1 {
		t.Fatalf("after first compile: %+v", got)
	}
	if p1.Key() == "" {
		t.Error("cached plan lost its key")
	}
	p1again := c.For(d, spectrum.ChipIR(), n, 1)
	if p1again != p1 {
		t.Error("hit returned a different plan instance")
	}
	if got := c.Stats(); got.Hits != 1 {
		t.Fatalf("after hit: %+v", got)
	}

	c.For(d, spectrum.ROTAX(), n, 1) // fills capacity
	c.For(d, spectrum.ChipIR(), n, 2)
	// Capacity 2 with three distinct keys: the LRU victim is ChipIR/seed 1
	// (ROTAX/seed 1 and ChipIR/seed 2 were touched after its last hit).
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("after overflow: %+v", st)
	}
	p1yetAgain := c.For(d, spectrum.ChipIR(), n, 1)
	if p1yetAgain == p1 {
		t.Error("evicted plan instance came back; expected a recompile")
	}
	if p1yetAgain.Checksum() != p1.Checksum() {
		t.Error("recompiled plan differs from the original for identical inputs")
	}
	if ratio := c.Stats().HitRatio(); ratio <= 0 || ratio >= 1 {
		t.Errorf("hit ratio = %v, want in (0,1)", ratio)
	}
}

// TestCacheBypass pins the unkeyable-spectrum path: a spectrum without a
// Fingerprint compiles on every call, never lands in the cache, and is
// counted as a bypass.
func TestCacheBypass(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewCache(4, reg)
	d := device.K20()
	sp := &prefixSpectrum{prefix: 0}
	a := c.For(d, sp, 64, 1)
	b := c.For(d, sp, 64, 1)
	if a == b {
		t.Error("bypass returned a shared instance; unkeyable spectra must compile per call")
	}
	if a.Key() != "" {
		t.Errorf("bypass plan has key %q, want none", a.Key())
	}
	st := c.Stats()
	if st.Bypass != 2 || st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("after two bypasses: %+v", st)
	}
}

// TestSetCapacityEvicts shrinks a populated cache and checks the overflow
// is evicted in LRU order.
func TestSetCapacityEvicts(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewCache(8, reg)
	d := device.K20()
	for seed := uint64(1); seed <= 4; seed++ {
		c.For(d, spectrum.ChipIR(), 64, seed)
	}
	if c.Len() != 4 {
		t.Fatalf("cache holds %d plans, want 4", c.Len())
	}
	c.SetCapacity(2)
	st := c.Stats()
	if st.Entries != 2 || st.Capacity != 2 || st.Evictions != 2 {
		t.Fatalf("after shrink: %+v", st)
	}
	// The most recent seeds survive.
	before := st.Misses
	c.For(d, spectrum.ChipIR(), 64, 3)
	c.For(d, spectrum.ChipIR(), 64, 4)
	if got := c.Stats(); got.Misses != before {
		t.Errorf("recently used plans were evicted: %+v", got)
	}
}

// TestCoalescing proves concurrent requests for one key compile once: a
// slow spectrum makes the first compile long enough that the rest of the
// pack reliably arrives while it is in flight, and every caller must get
// the same plan instance.
func TestCoalescing(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewCache(4, reg)
	d := device.K20()
	const callers = 8
	var wg sync.WaitGroup
	plans := make([]*CampaignPlan, callers)
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			plans[i] = c.For(d, spectrum.ChipIR(), 50000, 1)
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 1; i < callers; i++ {
		if plans[i] != plans[0] {
			t.Fatalf("caller %d got a different plan instance", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("%d compiles for one key, want 1 (%+v)", st.Misses, st)
	}
	if st.Hits+st.Coalesced != callers-1 {
		t.Errorf("hits %d + coalesced %d, want %d", st.Hits, st.Coalesced, callers-1)
	}
}

// TestSharedCompileMatchesDirect is the memoization identity at the plan
// level: the shared-path plan must checksum-match a direct Compile fed the
// canonical calibration stream.
func TestSharedCompileMatchesDirect(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewCache(4, reg)
	d := device.TitanV()
	const n, seed = 2000, 42
	cached := c.For(d, spectrum.ROTAX(), n, seed)
	direct := Compile(d, spectrum.ROTAX(), n, CalibrationStream(seed))
	if cached.Checksum() != direct.Checksum() {
		t.Fatal("cached plan differs from a direct Compile with the canonical calibration stream")
	}
	if cached.MeanP() != direct.MeanP() {
		t.Fatalf("meanP mismatch: %v vs %v", cached.MeanP(), direct.MeanP())
	}
}
