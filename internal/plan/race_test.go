package plan

import (
	"sync"
	"testing"

	"neutronsim/internal/device"
	"neutronsim/internal/spectrum"
	"neutronsim/internal/telemetry"
)

// TestCacheStress hammers a deliberately tiny cache from many goroutines
// over a handful of keys, so every code path — miss, hit, coalesced wait,
// eviction, capacity change — runs concurrently. Run under -race this is
// the cache's synchronization proof; in any mode every returned plan must
// checksum-match the reference compilation for its key, so an eviction
// racing a lookup can cost a recompile but never wrong physics.
func TestCacheStress(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewCache(2, reg) // smaller than the working set: constant eviction
	d := device.K20()
	spectra := []spectrum.Spectrum{spectrum.ChipIR(), spectrum.ROTAX()}
	const (
		seeds      = 3
		calSamples = 400
		goroutines = 16
		iterations = 200
	)
	// Reference checksums, compiled outside the cache.
	want := map[string]string{}
	for _, sp := range spectra {
		for seed := uint64(0); seed < seeds; seed++ {
			key, ok := KeyFor(d, sp, calSamples, seed)
			if !ok {
				t.Fatal("catalog spectrum not keyable")
			}
			want[key] = Compile(d, sp, calSamples, CalibrationStream(seed)).Checksum()
		}
	}

	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				sp := spectra[(g+i)%len(spectra)]
				seed := uint64((g * 7) % seeds)
				if i%50 == 49 {
					// Shrink and regrow the cache mid-flight.
					c.SetCapacity(1 + (g+i)%3)
				}
				pl := c.For(d, sp, calSamples, seed)
				key, _ := KeyFor(d, sp, calSamples, seed)
				if pl.Checksum() != want[key] {
					select {
					case errs <- sp.Name():
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if sp, bad := <-errs; bad {
		t.Fatalf("concurrent lookup on %s returned a plan that differs from its reference compilation", sp)
	}
	st := c.Stats()
	if st.Misses == 0 || st.Hits == 0 {
		t.Errorf("stress run exercised no cache traffic: %+v", st)
	}
	if st.Entries > st.Capacity {
		t.Errorf("cache overflowed its capacity: %+v", st)
	}
}
