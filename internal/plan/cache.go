package plan

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"neutronsim/internal/device"
	"neutronsim/internal/spectrum"
	"neutronsim/internal/telemetry"
)

// DefaultCapacity bounds the Shared cache. A plan for the default 20k
// calibration budget is ~640 KiB of slots, so the default keeps the cache
// within a few tens of MiB; neutrond exposes -plan-cache-entries to tune
// it (SetCapacity).
const DefaultCapacity = 64

// Cache memoizes compiled campaign plans under their canonical keys with
// LRU eviction and singleflight coalescing: concurrent requests for the
// same key compile once and share the result. Entries never expire —
// a plan is a pure function of its key, so it can only become wrong if
// the physics changes, which is a new binary, not a new request.
type Cache struct {
	reg       *telemetry.Registry
	hits      *telemetry.Counter
	misses    *telemetry.Counter
	evicts    *telemetry.Counter
	coalesced *telemetry.Counter
	bypass    *telemetry.Counter
	compile   *telemetry.Histogram
	entries   *telemetry.Gauge

	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used; values are *cacheEntry
	index    map[string]*list.Element
	inflight map[string]*flight
}

// cacheEntry is one memoized plan.
type cacheEntry struct {
	key  string
	plan *CampaignPlan
}

// flight is one in-progress compilation; waiters block on done and then
// read plan (or re-panic with panicked).
type flight struct {
	done     chan struct{}
	plan     *CampaignPlan
	panicked any
}

// Shared is the process-wide plan cache. beam.RunContext compiles through
// it, so every consumer of the beam package — cmd binaries, core.Assess,
// the neutrond worker pool — shares one set of compiled plans and its
// telemetry lands in the Default registry.
var Shared = NewCache(DefaultCapacity, telemetry.Default)

// NewCache builds a plan cache bounded to capacity entries (non-positive
// falls back to DefaultCapacity), posting its counters into reg.
func NewCache(capacity int, reg *telemetry.Registry) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if reg == nil {
		reg = telemetry.Default
	}
	return &Cache{
		reg:       reg,
		hits:      reg.Counter("plan.cache_hit"),
		misses:    reg.Counter("plan.cache_miss"),
		evicts:    reg.Counter("plan.cache_evict"),
		coalesced: reg.Counter("plan.cache_coalesced"),
		bypass:    reg.Counter("plan.cache_bypass"),
		compile:   reg.Histogram("plan.compile_seconds"),
		entries:   reg.Gauge("plan.cache_entries"),
		capacity:  capacity,
		ll:        list.New(),
		index:     map[string]*list.Element{},
		inflight:  map[string]*flight{},
	}
}

// For returns the compiled plan for a campaign, reusing a cached one when
// the key matches. The first request for a key compiles (counted as a
// miss); concurrent requests for the same key wait for that compilation
// instead of repeating it (counted as coalesced); later requests are hits.
// Spectra without a Fingerprint cannot be keyed and are compiled directly
// on every call (counted as bypass). The returned plan is immutable and
// shared — callers must treat it as read-only, which the CampaignPlan API
// enforces by construction.
func (c *Cache) For(d *device.Device, sp spectrum.Spectrum, calSamples int, seed uint64) *CampaignPlan {
	return c.ForContext(context.Background(), d, sp, calSamples, seed)
}

// ForContext is For with a caller context: the lookup opens a
// "plan.lookup" telemetry span (annotated with the outcome — hit, miss,
// coalesced or bypass) and a cache miss nests the "plan.compile" span
// under it, so traced jobs see exactly where campaign setup time went.
func (c *Cache) ForContext(ctx context.Context, d *device.Device, sp spectrum.Spectrum, calSamples int, seed uint64) *CampaignPlan {
	key, ok := KeyFor(d, sp, calSamples, seed)
	return c.lookup(ctx, key, ok, func(ctx context.Context, key string) *CampaignPlan {
		return c.timedCompile(ctx, d, sp, calSamples, seed, key)
	})
}

// ForBiased returns the compiled plan for an importance-sampled campaign.
// A nil bias is the exact path (For); a non-nil bias — including the
// identity Bias{} — compiles through CompileBiased under a bias-extended
// key (KeyForBiased), so biased and exact plans never collide and two
// different bias knobs never share an entry. The bias must be valid
// (Bias.Validate); callers validate at the API boundary, so an invalid
// bias reaching the cache panics like any other impossible compile input.
func (c *Cache) ForBiased(d *device.Device, sp spectrum.Spectrum, calSamples int, seed uint64, bias *Bias) *CampaignPlan {
	return c.ForBiasedContext(context.Background(), d, sp, calSamples, seed, bias)
}

// ForBiasedContext is ForBiased with a caller context (see ForContext).
func (c *Cache) ForBiasedContext(ctx context.Context, d *device.Device, sp spectrum.Spectrum, calSamples int, seed uint64, bias *Bias) *CampaignPlan {
	if bias == nil {
		return c.ForContext(ctx, d, sp, calSamples, seed)
	}
	b := *bias
	key, ok := KeyForBiased(d, sp, calSamples, seed, b)
	return c.lookup(ctx, key, ok, func(ctx context.Context, key string) *CampaignPlan {
		return c.timedCompileBiased(ctx, d, sp, calSamples, seed, b, key)
	})
}

// lookup runs the hit/coalesce/miss/bypass protocol for one key, calling
// compile on a miss (and on bypass, with an empty key).
func (c *Cache) lookup(ctx context.Context, key string, ok bool, compile func(context.Context, string) *CampaignPlan) *CampaignPlan {
	ctx, span := c.reg.StartSpan(ctx, "plan.lookup")
	span.SetStage("compile")
	defer span.End()
	if !ok {
		c.bypass.Add(1)
		span.Annotate("outcome", "bypass")
		return compile(ctx, "")
	}
	c.mu.Lock()
	if el, hit := c.index[key]; hit {
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		c.hits.Add(1)
		span.Annotate("outcome", "hit")
		return el.Value.(*cacheEntry).plan
	}
	if fl, flying := c.inflight[key]; flying {
		c.mu.Unlock()
		c.coalesced.Add(1)
		span.Annotate("outcome", "coalesced")
		<-fl.done
		if fl.panicked != nil {
			panic(fl.panicked)
		}
		return fl.plan
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.mu.Unlock()
	c.misses.Add(1)
	span.Annotate("outcome", "miss")
	return c.compileFlight(ctx, fl, key, compile)
}

// compileFlight compiles for the flight's waiters and settles the cache
// entry. The deferred settlement runs even if Compile panics, so waiters
// never block forever and the panic propagates to every caller.
func (c *Cache) compileFlight(ctx context.Context, fl *flight, key string, compile func(context.Context, string) *CampaignPlan) *CampaignPlan {
	defer func() {
		if r := recover(); r != nil {
			fl.panicked = r
			c.mu.Lock()
			delete(c.inflight, key)
			c.mu.Unlock()
			close(fl.done)
			panic(r)
		}
	}()
	pl := compile(ctx, key)
	fl.plan = pl
	c.mu.Lock()
	delete(c.inflight, key)
	c.index[key] = c.ll.PushFront(&cacheEntry{key: key, plan: pl})
	c.evictLocked()
	c.entries.Set(float64(c.ll.Len()))
	c.mu.Unlock()
	close(fl.done)
	return pl
}

// timedCompile runs Compile with the canonical calibration substream for
// the seed, recording the duration into plan.compile_seconds and a
// "plan.compile" span.
func (c *Cache) timedCompile(ctx context.Context, d *device.Device, sp spectrum.Spectrum, calSamples int, seed uint64, key string) *CampaignPlan {
	_, span := c.reg.StartSpan(ctx, "plan.compile")
	t := telemetry.StartTimer(c.compile)
	pl := Compile(d, sp, calSamples, CalibrationStream(seed))
	pl.key = key
	t.ObserveDuration()
	span.End()
	return pl
}

// timedCompileBiased is timedCompile for importance-sampled plans. The
// bias was validated at the API boundary (beam.Config.validate, the
// neutrond request normalizer), so a compile error here is a programming
// error and panics — same contract as the alias-table build in Compile.
func (c *Cache) timedCompileBiased(ctx context.Context, d *device.Device, sp spectrum.Spectrum, calSamples int, seed uint64, bias Bias, key string) *CampaignPlan {
	_, span := c.reg.StartSpan(ctx, "plan.compile")
	t := telemetry.StartTimer(c.compile)
	pl, err := CompileBiased(d, sp, calSamples, CalibrationStream(seed), bias)
	if err != nil {
		panic(fmt.Sprintf("plan: compile biased plan: %v", err))
	}
	pl.key = key
	t.ObserveDuration()
	span.End()
	return pl
}

// evictLocked drops least-recently-used entries beyond capacity.
func (c *Cache) evictLocked() {
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		if oldest == nil {
			return
		}
		c.ll.Remove(oldest)
		delete(c.index, oldest.Value.(*cacheEntry).key)
		c.evicts.Add(1)
	}
}

// SetCapacity rebounds the cache, evicting LRU entries if it shrank.
// Non-positive capacities fall back to DefaultCapacity.
func (c *Cache) SetCapacity(n int) {
	if n <= 0 {
		n = DefaultCapacity
	}
	c.mu.Lock()
	c.capacity = n
	c.evictLocked()
	c.entries.Set(float64(c.ll.Len()))
	c.mu.Unlock()
}

// Stats is a point-in-time snapshot of the cache counters, served by
// neutrond's GET /v1/stats.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Coalesced int64 `json:"coalesced"`
	Bypass    int64 `json:"bypass"`
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
}

// HitRatio returns hits / (hits + misses), or 0 before any keyed lookup.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats reads the current counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	entries, capacity := c.ll.Len(), c.capacity
	c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Evictions: c.evicts.Value(),
		Coalesced: c.coalesced.Value(),
		Bypass:    c.bypass.Value(),
		Entries:   entries,
		Capacity:  capacity,
	}
}

// Len reports the number of cached plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
