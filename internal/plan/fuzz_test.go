package plan

import (
	"math"
	"testing"

	"neutronsim/internal/device"
	"neutronsim/internal/physics"
	"neutronsim/internal/rng"
	"neutronsim/internal/spectrum"
	"neutronsim/internal/units"
)

// checkPlan validates the invariants of a compiled plan: every alias slot
// carries a finite acceptance probability in [0, 1], the mean probability
// is a finite non-negative number, and every drawn energy is a member of
// the calibration table.
func checkPlan(t *testing.T, p *CampaignPlan, n int, s *rng.Stream) {
	t.Helper()
	if p.Len() != n {
		t.Fatalf("table size %d, want %d", p.Len(), n)
	}
	members := make(map[units.Energy]bool, n)
	for _, sl := range p.slots {
		members[sl.self] = true
	}
	for i, sl := range p.slots {
		if math.IsNaN(sl.prob) || sl.prob < 0 || sl.prob > 1 {
			t.Fatalf("slots[%d].prob = %v", i, sl.prob)
		}
		if !members[sl.alias] {
			t.Fatalf("slots[%d].alias energy %v not in the calibration table", i, sl.alias)
		}
	}
	if math.IsNaN(p.meanP) || math.IsInf(p.meanP, 0) || p.meanP < 0 {
		t.Fatalf("meanP = %v", p.meanP)
	}
	for i := 0; i < 64; i++ {
		if e := p.SampleInteraction(s); !members[e] {
			t.Fatalf("sample returned %v, not in the calibration table", e)
		}
	}
}

// FuzzCompile drives Compile and its alias draw with fuzzed device
// parameters and table sizes, on both beam spectra.
func FuzzCompile(f *testing.F) {
	f.Add(uint64(1), 4.6e13, 0.02, 1.0, uint16(200))
	f.Add(uint64(2), 0.0, 1e-9, 0.5, uint16(1))
	f.Add(uint64(3), 1e16, 1.0, 16.0, uint16(37))
	f.Fuzz(func(t *testing.T, seed uint64, boron, sensFrac, qcrit float64, nRaw uint16) {
		n := int(nRaw)%300 + 1
		// Clamp the fuzzed parameters to their physical domains; the goal
		// is to stress the table construction and draw, not Validate.
		if math.IsNaN(boron) || boron < 0 {
			boron = 0
		}
		boron = math.Min(boron, 1e18)
		if math.IsNaN(sensFrac) || sensFrac <= 0 {
			sensFrac = 1e-12
		}
		sensFrac = math.Min(sensFrac, 1)
		if math.IsNaN(qcrit) || qcrit <= 0 {
			qcrit = 0.1
		}
		qcrit = math.Min(qcrit, 1e3)

		d := device.K20()
		d.Boron10PerCm2 = boron
		d.SensitiveFraction = sensFrac
		d.QcritFC = qcrit
		d.QcritSigmaFC = qcrit / 4
		for _, sp := range []spectrum.Spectrum{spectrum.ChipIR(), spectrum.ROTAX()} {
			s := rng.New(seed)
			p := Compile(d, sp, n, s.Split())
			checkPlan(t, p, n, s)
		}
	})
}

// TestZeroProbabilityFallback pins the degenerate-table branch: when every
// interaction probability is zero the plan falls back to uniform selection
// over the calibration energies instead of dividing by zero. A boron-free
// device on the thermal beamline has p(E) = 0 for every thermal and
// epithermal calibration energy.
func TestZeroProbabilityFallback(t *testing.T) {
	d := device.K20()
	d.Boron10PerCm2 = 0
	const n = 64
	p := Compile(d, spectrum.ROTAX(), n, rng.New(5))
	if p.MeanP() != 0 {
		t.Fatalf("meanP = %v, want 0 for a boron-free thermal campaign", p.MeanP())
	}
	s := rng.New(9)
	seen := map[units.Energy]int{}
	for i := 0; i < 50*n; i++ {
		seen[p.SampleInteraction(s)]++
	}
	if len(seen) < n/2 {
		t.Errorf("uniform fallback drew only %d of %d calibration energies", len(seen), n)
	}
	for _, sl := range p.slots {
		if sl.prob != 1 || sl.self != sl.alias {
			t.Fatalf("degenerate slot %+v should always keep its own energy", sl)
		}
	}
}

// TestSampleBoundary pins the u → n edge of the alias draw: the slot index
// is derived from Float64()*n, which can round up to exactly n for large
// tables and must clamp to the last slot rather than index out of range.
func TestSampleBoundary(t *testing.T) {
	p := &CampaignPlan{
		slots: []slot{
			{prob: 0.25, self: 1, alias: 2},
			{prob: 1, self: 2, alias: 2},
			{prob: 0, self: 3, alias: 1}, // zero-weight trailing slot
		},
		meanP: 0.5 / 3,
	}
	s := rng.New(11)
	for i := 0; i < 1000; i++ {
		e := p.SampleInteraction(s)
		if e != 1 && e != 2 {
			t.Fatalf("sample returned %v", e)
		}
	}
}

// TestZeroPrefixPrecision is the regression for the prefix-precision
// failure mode: one million calibration entries whose first 90% carry zero
// weight. With naive accumulation the tiny tail weights drown in rounding;
// the Kahan-summed alias table must draw only tail energies and report an
// exact meanP.
func TestZeroPrefixPrecision(t *testing.T) {
	if testing.Short() {
		t.Skip("1e6-entry table build")
	}
	const (
		n      = 1000000
		prefix = n * 9 / 10
		tailP  = 1e-9 // per-entry interaction probability in the tail
	)
	// A thermal calibration energy on a boron-free device has p = 0; a
	// fast energy interacts through the silicon channel. Tune the device
	// so the fast-channel probability is a known tiny constant.
	d := device.K20()
	d.Boron10PerCm2 = 0
	d.SensitiveFraction = 1
	d.SensitiveDepthUm = tailP / (4.996e22 * 1e-4 * 1.5 * 1e-24)
	sp := &prefixSpectrum{prefix: prefix}
	p := Compile(d, sp, n, rng.New(13))

	wantMean := tailP * float64(n-prefix) / float64(n)
	if rel := math.Abs(p.MeanP()-wantMean) / wantMean; rel > 1e-9 {
		t.Errorf("meanP = %v, want %v (rel err %v)", p.MeanP(), wantMean, rel)
	}
	s := rng.New(17)
	for i := 0; i < 100000; i++ {
		if e := p.SampleInteraction(s); !e.IsFast() {
			t.Fatalf("draw %d returned zero-probability prefix energy %v", i, e)
		}
	}
}

// prefixSpectrum emits `prefix` thermal energies followed by fast energies,
// giving the calibration table a long zero-probability prefix on a
// boron-free device. It deliberately has no Fingerprint, which also makes
// it the cache-bypass test subject.
type prefixSpectrum struct {
	calls  int
	prefix int
}

func (p *prefixSpectrum) Name() string { return "zero-prefix" }
func (p *prefixSpectrum) Sample(*rng.Stream) units.Energy {
	p.calls++
	if p.calls <= p.prefix {
		return 0.0253 // thermal: p = 0 without boron
	}
	return 2 * units.MeV
}
func (p *prefixSpectrum) TotalFlux() units.Flux { return 1 }
func (p *prefixSpectrum) FluxInBand(physics.EnergyBand) units.Flux {
	return 0
}
