package plan

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"neutronsim/internal/device"
	"neutronsim/internal/spectrum"
	"neutronsim/internal/telemetry"
)

// benchPlanSamples is the production default calibration budget
// (beam.Config.CalSamples), so cold-vs-warm measures exactly the setup
// cost a real campaign pays.
const benchPlanSamples = 20000

// BenchmarkPlanCompileCold is the uncached campaign setup: derive the
// calibration substream and compile the full plan, every iteration.
func BenchmarkPlanCompileCold(b *testing.B) {
	d := device.K20()
	sp := spectrum.ChipIR()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Compile(d, sp, benchPlanSamples, CalibrationStream(1))
	}
}

// warmBench carries the cache observations of the latest warm-hit
// benchmark run out to the snapshot writer.
var warmBench struct {
	stats         Stats
	timedCompiles int64
}

// BenchmarkPlanCacheWarmHit is the memoized setup: every iteration is a
// cache hit (key hash + lookup). The benchmark fails outright if the timed
// loop compiled anything — the warm path doing zero compiles is the
// property the CI gate enforces.
func BenchmarkPlanCacheWarmHit(b *testing.B) {
	c := NewCache(4, telemetry.NewRegistry())
	d := device.K20()
	sp := spectrum.ChipIR()
	c.For(d, sp, benchPlanSamples, 1) // prime: the one allowed compile
	before := c.Stats().Misses
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.For(d, sp, benchPlanSamples, 1)
	}
	b.StopTimer()
	warmBench.stats = c.Stats()
	warmBench.timedCompiles = warmBench.stats.Misses - before
	if warmBench.timedCompiles != 0 {
		b.Fatalf("warm path compiled %d times during the timed loop, want 0", warmBench.timedCompiles)
	}
}

// TestMain writes BENCH_plan.json at the repo root when benchmarks run,
// following the BENCH_sampling.json idiom. It exits non-zero if the warm
// path compiled during its timed loop or if the memoized setup is less
// than 10× faster than a cold compile — the plan-cache CI gates.
func TestMain(m *testing.M) {
	code := m.Run()
	bench := flag.Lookup("test.bench")
	if code == 0 && bench != nil && bench.Value.String() != "" {
		if err := writePlanSnapshot("../../BENCH_plan.json"); err != nil {
			fmt.Fprintln(os.Stderr, "plan bench snapshot:", err)
			code = 1
		}
	}
	os.Exit(code)
}

func writePlanSnapshot(path string) error {
	cold := testing.Benchmark(BenchmarkPlanCompileCold)
	warm := testing.Benchmark(BenchmarkPlanCacheWarmHit)
	if warm.N == 0 {
		return fmt.Errorf("warm-hit benchmark did not run")
	}
	speedup := float64(cold.NsPerOp()) / float64(warm.NsPerOp())
	snap := struct {
		Note              string  `json:"note"`
		GOMAXPROCS        int     `json:"gomaxprocs"`
		CalSamples        int     `json:"cal_samples"`
		ColdNsPerOp       float64 `json:"cold_setup_ns_per_op"`
		WarmNsPerOp       float64 `json:"warm_setup_ns_per_op"`
		Speedup           float64 `json:"warm_speedup_vs_cold"`
		WarmAllocsPerOp   int64   `json:"warm_allocs_per_op"`
		WarmBytesPerOp    int64   `json:"warm_bytes_per_op"`
		WarmTimedCompiles int64   `json:"warm_compiles_during_timed_loop"`
		WarmHitRatio      float64 `json:"warm_hit_ratio"`
	}{
		Note: "campaign-plan cache (DESIGN.md §12); warm path must not compile " +
			"and must be >= 10x faster than cold setup",
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		CalSamples:        benchPlanSamples,
		ColdNsPerOp:       float64(cold.NsPerOp()),
		WarmNsPerOp:       float64(warm.NsPerOp()),
		Speedup:           speedup,
		WarmAllocsPerOp:   warm.AllocsPerOp(),
		WarmBytesPerOp:    warm.AllocedBytesPerOp(),
		WarmTimedCompiles: warmBench.timedCompiles,
		WarmHitRatio:      warmBench.stats.HitRatio(),
	}
	if snap.WarmTimedCompiles != 0 {
		return fmt.Errorf("warm path compiled %d times during the timed loop, want 0", snap.WarmTimedCompiles)
	}
	if speedup < 10 {
		return fmt.Errorf("warm setup speedup %.1fx, want >= 10x", speedup)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
