// Package plan compiles beam-campaign setup — the Monte Carlo calibration
// that turns (device, spectrum, calibration budget, calibration stream)
// into an interaction-alias sampler — into an immutable CampaignPlan, and
// memoizes compiled plans in a process-wide deterministic cache.
//
// PR 4 made the per-neutron draw O(1); after that, the dominant fixed cost
// of a campaign is setup: every beam.Run used to re-run a 20k-sample
// calibration even when sweeping the same device×spectrum pair hundreds of
// times. Because the calibration is a pure function of its inputs, a plan
// compiled once can serve every campaign with the same inputs, and a cache
// hit is provably bit-identical to an uncached run (DESIGN.md §12).
package plan

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"

	"neutronsim/internal/device"
	"neutronsim/internal/physics"
	"neutronsim/internal/rng"
	"neutronsim/internal/spectrum"
	"neutronsim/internal/units"
)

// CampaignPlan is one compiled campaign setup: the fused interaction-alias
// slots and the calibration's mean interaction probability. Plans are
// immutable after Compile and safe to share across any number of
// concurrent campaigns — every sampling call takes the caller's stream.
type CampaignPlan struct {
	key   string
	meanP float64
	slots []slot

	// Importance-sampling extension (CompileBiased). biased is the alias
	// table over the band-biased calibration weights — nil for exact
	// plans — and bandW[b] is the likelihood weight every draw landing in
	// band b carries: S'/(S·factor(b)), where S and S' are the exact and
	// biased calibration mass. The weight depends only on the band, so
	// the weighted draw needs no per-slot storage beyond the exact
	// 32-byte layout.
	biased []slot
	bandW  [physics.NumBands + 1]float64
	bias   Bias
}

// slot is one fused alias slot: accept keeps self, reject takes the
// pre-resolved alias energy. Padded to 32 bytes so a draw touches exactly
// one cache line (the layout the beam run loop's zero-alloc benchmarks
// were measured with).
type slot struct {
	prob  float64
	self  units.Energy
	alias units.Energy
	_     float64
}

// Fingerprinted is implemented by spectra whose sampling behavior can be
// content-hashed (the catalog Mixture and Mono types). Spectra without a
// fingerprint cannot be cache-keyed and bypass the plan cache.
type Fingerprinted interface {
	Fingerprint() string
}

// CalibrationStream derives the calibration substream for a campaign seed.
// It reproduces exactly the stream beam.RunContext historically fed the
// inline calibration — rng.New(seed).Split() — which is why a plan cached
// under (…, seed) is bit-identical to the sampler an uncached run builds.
func CalibrationStream(seed uint64) *rng.Stream {
	return rng.New(seed).Split()
}

// keyVersion invalidates every cache key when the compile algorithm or the
// set of inputs it reads changes.
const keyVersion = "plan/v1\x00"

// KeyFor returns the canonical cache key for a campaign compilation, or
// ok=false when the spectrum carries no fingerprint. The key hashes every
// input Compile reads and nothing else: the spectrum's sampling identity,
// the exact device fields device.InteractionProbability consults
// (Boron10PerCm2, SensitiveDepthUm, SensitiveFraction), the calibration
// budget, and the campaign seed (the calibration stream is derived from
// it; see CalibrationStream). Fields that only shape the run — die area,
// Qcrit, workload, duration, derating — are deliberately absent, so
// near-duplicate campaigns share one plan.
func KeyFor(d *device.Device, sp spectrum.Spectrum, calSamples int, seed uint64) (string, bool) {
	h, ok := keyHash(d, sp, calSamples, seed)
	if !ok {
		return "", false
	}
	return hex.EncodeToString(h.Sum(nil)), true
}

// keyHash hashes the shared (device physics, spectrum, cal budget, seed)
// key material. KeyFor finalizes it directly; KeyForBiased appends the
// bias factors first, so an exact plan and any biased plan can never
// collide and pre-bias cache keys are unchanged.
func keyHash(d *device.Device, sp spectrum.Spectrum, calSamples int, seed uint64) (hash.Hash, bool) {
	fp, ok := sp.(Fingerprinted)
	if !ok {
		return nil, false
	}
	h := sha256.New()
	h.Write([]byte(keyVersion))
	h.Write([]byte(fp.Fingerprint()))
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeU64(math.Float64bits(d.Boron10PerCm2))
	writeU64(math.Float64bits(d.SensitiveDepthUm))
	writeU64(math.Float64bits(d.SensitiveFraction))
	writeU64(uint64(calSamples))
	writeU64(seed)
	return h, true
}

// Compile runs the Monte Carlo calibration and builds the plan: n energies
// drawn from the spectrum, weighted by the device's interaction
// probability, fused with a Walker alias table so a conditioned draw costs
// one uniform variate and one 32-byte slot read. The accumulation is
// Kahan-compensated — with large budgets and long runs of zero (or tiny)
// interaction probabilities a naive sum loses the small weights and skews
// both meanP and the table. The caller owns cal only during the call; the
// returned plan holds no reference to it.
func Compile(d *device.Device, sp spectrum.Spectrum, n int, cal *rng.Stream) *CampaignPlan {
	energies, weights, sum := calibrate(d, sp, n, cal)
	return &CampaignPlan{
		slots: buildSlots(energies, weights, sum),
		meanP: sum / float64(n),
	}
}

// calibrate draws the n calibration energies and their interaction
// probabilities, Kahan-summing the probability mass. It is the shared
// front half of Compile and CompileBiased — both consume the stream
// identically, which is what makes a zero-bias plan's exact table
// bit-identical to an unbiased plan's.
func calibrate(d *device.Device, sp spectrum.Spectrum, n int, cal *rng.Stream) ([]units.Energy, []float64, float64) {
	energies := make([]units.Energy, n)
	weights := make([]float64, n)
	var sum, comp float64
	for i := 0; i < n; i++ {
		e := sp.Sample(cal)
		p := d.InteractionProbability(e)
		energies[i] = e
		weights[i] = p
		y := p - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return energies, weights, sum
}

// buildSlots fuses an alias table over weights into 32-byte slots. A
// non-positive total falls back to uniform selection over the calibration
// energies (prob 1 ⇒ always self), the degenerate nothing-interacts case.
func buildSlots(energies []units.Energy, weights []float64, sum float64) []slot {
	slots := make([]slot, len(energies))
	if sum <= 0 {
		for i := range slots {
			slots[i] = slot{prob: 1, self: energies[i], alias: energies[i]}
		}
		return slots
	}
	at, err := rng.NewAliasTable(weights)
	if err != nil {
		// Unreachable: interaction probabilities are finite, non-negative,
		// and sum > 0 was checked above.
		panic(fmt.Sprintf("plan: alias table over interaction probabilities: %v", err))
	}
	for i := range slots {
		pr, a := at.Slot(i)
		slots[i] = slot{prob: pr, self: energies[i], alias: energies[a]}
	}
	return slots
}

// Key returns the plan's cache key, or "" for plans compiled outside the
// cache (direct Compile calls and fingerprint-less spectra).
func (p *CampaignPlan) Key() string { return p.key }

// MeanP returns the calibration's mean interaction probability — the
// quantity that converts beam flux × die area into an interaction rate.
func (p *CampaignPlan) MeanP() float64 { return p.meanP }

// Len returns the calibration-table size.
func (p *CampaignPlan) Len() int { return len(p.slots) }

// SampleInteraction draws an interacting energy (weighted by interaction
// probability) in constant time: the integer part of one uniform picks a
// slot, the fractional part decides between the slot's energy and its
// alias. It performs no allocations — it is the innermost call of the beam
// run loop, which TestRunLoopZeroAllocs holds to zero allocs/op.
func (p *CampaignPlan) SampleInteraction(s *rng.Stream) units.Energy {
	n := len(p.slots)
	u := s.Float64() * float64(n)
	i := int(u)
	if i >= n {
		i = n - 1
	}
	sl := &p.slots[i]
	if u-float64(i) < sl.prob {
		return sl.self
	}
	return sl.alias
}

// Sampler is the batch-friendly view of the plan's exact alias table: the
// fused 32-byte slot slice hoisted into a value the run loop keeps on its
// own stack, so a batched classify pass does not reload the plan pointer
// and re-derive the slice header on every draw. Draw-for-draw it is
// SampleInteraction exactly — same uniform consumption, same energy — the
// view changes only where the table header lives.
type Sampler struct {
	slots []slot
}

// Sampler returns the plan's exact-table sampling view.
func (p *CampaignPlan) Sampler() Sampler { return Sampler{slots: p.slots} }

// Sample draws one interacting energy; it is SampleInteraction through
// the hoisted view.
func (v Sampler) Sample(s *rng.Stream) units.Energy {
	n := len(v.slots)
	u := s.Float64() * float64(n)
	i := int(u)
	if i >= n {
		i = n - 1
	}
	sl := &v.slots[i]
	if u-float64(i) < sl.prob {
		return sl.self
	}
	return sl.alias
}

// Fill draws len(out) interacting energies in one pass — the batch
// equivalent of len(out) successive Sample calls, bit for bit, for
// consumers whose per-energy processing does not interleave further
// stream draws between energies. The beam run loop is NOT such a
// consumer (device physics draws between energies), which is why it
// batches at the uniform level with rng.Stream.ReadAhead instead
// (DESIGN.md §16); Fill serves non-interleaved table scans.
func (v Sampler) Fill(s *rng.Stream, out []units.Energy) {
	for i := range out {
		out[i] = v.Sample(s)
	}
}

// WeightedSampler is Sampler for the weighted (importance-sampled) draw:
// the active alias table — biased when the plan carries one, exact
// otherwise — and the per-band likelihood weights, hoisted by value. On
// an exact plan every weight is 1 and the draw consumes the stream
// exactly like the exact sampler, mirroring SampleInteractionWeighted.
type WeightedSampler struct {
	slots []slot
	bandW [physics.NumBands + 1]float64
}

// WeightedSampler returns the plan's weighted sampling view.
func (p *CampaignPlan) WeightedSampler() WeightedSampler {
	v := WeightedSampler{slots: p.biased, bandW: p.bandW}
	if p.biased == nil {
		v.slots = p.slots
		for b := range v.bandW {
			v.bandW[b] = 1
		}
	}
	return v
}

// Sample draws one interacting energy with its likelihood weight; it is
// SampleInteractionWeighted through the hoisted view.
func (v WeightedSampler) Sample(s *rng.Stream) (units.Energy, float64) {
	n := len(v.slots)
	u := s.Float64() * float64(n)
	i := int(u)
	if i >= n {
		i = n - 1
	}
	sl := &v.slots[i]
	e := sl.alias
	if u-float64(i) < sl.prob {
		e = sl.self
	}
	return e, v.bandW[physics.Classify(e)]
}

// Checksum content-hashes the compiled plan (meanP and every slot). Two
// plans with equal checksums are bit-identical samplers; the conformance
// suite uses this to prove a cache hit returns exactly the plan a fresh
// Compile would build.
func (p *CampaignPlan) Checksum() string {
	h := sha256.New()
	h.Write([]byte("plan.checksum/v1\x00"))
	var buf [8]byte
	writeF64 := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	writeF64(p.meanP)
	for i := range p.slots {
		writeF64(p.slots[i].prob)
		writeF64(float64(p.slots[i].self))
		writeF64(float64(p.slots[i].alias))
	}
	if p.biased != nil {
		// Biased extension appended after the exact stream, so exact
		// plans checksum exactly as before and a biased plan can never
		// checksum-collide with its exact counterpart.
		h.Write([]byte("bias\x00"))
		for _, w := range p.bandW {
			writeF64(w)
		}
		for i := range p.biased {
			writeF64(p.biased[i].prob)
			writeF64(float64(p.biased[i].self))
			writeF64(float64(p.biased[i].alias))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
