// Conformance: a campaign that compiles its plan through the shared cache
// must be bit-identical to one that compiled from scratch, for every
// catalog device on both beamlines, at every shard count, and the spectrum
// singletons must not perturb the transport simulator's determinism. The
// tests live in an external package because they drive internal/beam,
// which itself imports internal/plan.
package plan_test

import (
	"reflect"
	"runtime"
	"testing"

	"neutronsim/internal/beam"
	"neutronsim/internal/device"
	"neutronsim/internal/materials"
	"neutronsim/internal/plan"
	"neutronsim/internal/rng"
	"neutronsim/internal/spectrum"
	"neutronsim/internal/transport"
	"neutronsim/internal/units"
	"neutronsim/internal/workload"
)

// conformanceConfig builds a quick campaign for one device×spectrum cell.
// CalSamples is deliberately non-default so these compilations get their
// own cache keys, and each cell gets a distinct seed so the first run of a
// cell is a genuine cold compile within the test process.
func conformanceConfig(d *device.Device, sp spectrum.Spectrum, seed uint64) beam.Config {
	return beam.Config{
		Device:          d,
		WorkloadName:    workload.ForDeviceKind(d.Kind.String())[0],
		Beam:            sp,
		DurationSeconds: 1,
		Seed:            seed,
		CalSamples:      4000,
	}
}

// TestConformanceCachedRunsBitIdentical runs every catalog device on both
// beamlines twice — the repeat is served by the plan cache — and requires
// the full campaign results to be deeply equal. It also pins the plan
// itself: the shared-cache plan must checksum-match a from-scratch Compile
// fed the canonical calibration stream, which is the memoization identity
// the cache's correctness rests on.
func TestConformanceCachedRunsBitIdentical(t *testing.T) {
	spectra := []spectrum.Spectrum{spectrum.ChipIR(), spectrum.ROTAX()}
	for di, d := range device.All() {
		for si, sp := range spectra {
			d, sp := d, sp
			seed := 0xC0FFEE00 + uint64(di)*2 + uint64(si)
			t.Run(d.Name+"/"+sp.Name(), func(t *testing.T) {
				t.Parallel()
				cfg := conformanceConfig(d, sp, seed)
				first, err := beam.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				second, err := beam.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(first, second) {
					t.Errorf("cached repeat diverged from the first run:\nfirst:  %+v\nsecond: %+v", first, second)
				}
				cached := plan.Shared.For(cfg.Device, cfg.Beam, cfg.CalSamples, cfg.Seed)
				direct := plan.Compile(cfg.Device, cfg.Beam, cfg.CalSamples, plan.CalibrationStream(cfg.Seed))
				if cached.Checksum() != direct.Checksum() {
					t.Error("shared-cache plan differs from a from-scratch Compile")
				}
			})
		}
	}
}

// TestConformanceShardCountsShareOnePlan reruns one campaign at several
// worker counts. All of them hit the same cached plan, and per the
// engine's contract the shard count must never affect results.
func TestConformanceShardCountsShareOnePlan(t *testing.T) {
	cfg := conformanceConfig(device.TitanX(), spectrum.ChipIR(), 0xC0FFEE77)
	ref, err := beam.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 7, runtime.GOMAXPROCS(0)} {
		c := cfg
		c.Shards = shards
		got, err := beam.Run(c)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("shards=%d diverged from the reference run", shards)
		}
	}
}

// TestConformanceTransportRepeatable guards the spectrum singletons: the
// transport simulator samples its source from the now-shared ChipIR/ROTAX
// instances, and repeated simulations with the same seed must stay deeply
// equal.
func TestConformanceTransportRepeatable(t *testing.T) {
	slabs := []transport.Slab{
		{Material: materials.Concrete(), Thickness: 10},
		{Material: materials.Water(), Thickness: 2},
	}
	for _, sp := range []spectrum.Spectrum{spectrum.ChipIR(), spectrum.ROTAX()} {
		source := func(s *rng.Stream) units.Energy { return sp.Sample(s) }
		first, err := transport.Simulate(slabs, 2000, source, rng.New(29))
		if err != nil {
			t.Fatal(err)
		}
		second, err := transport.Simulate(slabs, 2000, source, rng.New(29))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, second) {
			t.Errorf("%s: transport repeat diverged", sp.Name())
		}
	}
}
