package transport

import (
	"math"
	"reflect"
	"testing"

	"neutronsim/internal/materials"
	"neutronsim/internal/physics"
	"neutronsim/internal/rng"
	"neutronsim/internal/units"
)

// implicitSlabs is an absorbing geometry where implicit capture actually
// matters: a water moderator in air, the stack the paper's environment
// discussion is built on.
func implicitSlabs() []Slab {
	return []Slab{
		{Material: materials.Air(), Thickness: 30},
		{Material: materials.Water(), Thickness: 5.08},
		{Material: materials.Air(), Thickness: 30},
	}
}

func fastWattSource(s *rng.Stream) units.Energy {
	return units.Energy(s.WattEnergy(0.988, 2.249) * 1e6)
}

// TestImplicitCaptureEquivalence pins the estimator contract: the
// weighted transmission, reflection and absorption of an implicit-capture
// run must agree with an analog run of the same geometry within combined
// sampling error (binomial on the analog side, ΣW² on the weighted side).
func TestImplicitCaptureEquivalence(t *testing.T) {
	const n = 40000
	analog, err := SimulateWithOptions(implicitSlabs(), n, fastWattSource, rng.New(23), Options{})
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := SimulateWithOptions(implicitSlabs(), n, fastWattSource, rng.New(29), Options{ImplicitCapture: true})
	if err != nil {
		t.Fatal(err)
	}
	w := weighted.Weighted
	if w == nil {
		t.Fatal("implicit-capture run carries no Weighted section")
	}
	check := func(name string, analogCount int, weightedSum, weightedSum2 float64) {
		t.Helper()
		sigma := math.Sqrt(float64(analogCount) + weightedSum2 + 1)
		if diff := math.Abs(weightedSum - float64(analogCount)); diff > 5*sigma {
			t.Errorf("%s: weighted %.1f vs analog %d differs by %.1f sigma", name, weightedSum, analogCount, diff/sigma)
		}
	}
	tSum2, rSum2 := 0.0, 0.0
	for _, wt := range w.Transmitted {
		tSum2 += wt.SumSquares()
	}
	for _, wt := range w.Reflected {
		rSum2 += wt.SumSquares()
	}
	check("transmission", analog.TransmittedTotal(), w.TransmittedWeight(), tSum2)
	check("reflection", analog.ReflectedTotal(), w.ReflectedWeight(), rSum2)
	check("absorption", analog.Absorbed, w.Absorbed.Sum(), w.Absorbed.SumSquares())
	// Thermal albedo specifically — the paper's flux-enhancement channel.
	check("thermal albedo", analog.Reflected[physics.BandThermal],
		w.Reflected[physics.BandThermal].SumW, w.Reflected[physics.BandThermal].SumSquares())
	// Element attribution must cover the same elements the analog capture
	// draw finds (hydrogen dominates water capture).
	if w.AbsorbedByElement["H"].SumW <= 0 {
		t.Errorf("implicit capture attributes no absorption to hydrogen: %+v", w.AbsorbedByElement)
	}
}

// TestImplicitCaptureConservation pins weight conservation: every unit of
// incident weight ends somewhere — transmitted, reflected, absorbed, or
// discarded by the roulette/collision bound, whose loss is a zero-mean
// martingale increment. The books must balance to well within a percent.
func TestImplicitCaptureConservation(t *testing.T) {
	const n = 30000
	tally, err := SimulateWithOptions(implicitSlabs(), n, fastWattSource, rng.New(31), Options{ImplicitCapture: true})
	if err != nil {
		t.Fatal(err)
	}
	w := tally.Weighted
	total := w.TransmittedWeight() + w.ReflectedWeight() + w.Absorbed.Sum()
	if rel := math.Abs(total-float64(n)) / float64(n); rel > 0.01 {
		t.Errorf("weight books do not balance: %.2f of %d incident (rel err %v)", total, n, rel)
	}
	// The exit-channel history counts must agree between the analog maps
	// (which count histories in weighted mode) and the weighted tallies.
	for b, cnt := range tally.Transmitted {
		if int64(cnt) != w.Transmitted[b].N {
			t.Errorf("band %v: %d transmitted histories vs weighted N %d", b, cnt, w.Transmitted[b].N)
		}
	}
	if tally.Absorbed != int(w.RouletteKills)+tally.Lost {
		t.Errorf("weighted-mode Absorbed %d must count roulette kills %d + lost %d",
			tally.Absorbed, w.RouletteKills, tally.Lost)
	}
}

// TestImplicitCaptureShardCountInvariance extends the engine determinism
// contract to the weighted walk: the weighted merge runs in shard order,
// so any worker count must reproduce the serial tally bit-for-bit.
func TestImplicitCaptureShardCountInvariance(t *testing.T) {
	const n = 20000
	run := func(workers int) *Tally {
		tally, err := SimulateWithOptions(implicitSlabs(), n, fastWattSource, rng.New(17),
			Options{ImplicitCapture: true, Shards: workers, ShardGrain: 2048})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return tally
	}
	ref := run(1)
	if ref.Weighted == nil || ref.Weighted.TransmittedWeight() == 0 || ref.Weighted.Absorbed.Sum() == 0 {
		t.Fatal("implicit-capture conformance tally is degenerate")
	}
	for _, workers := range []int{2, 7, 16} {
		if got := run(workers); !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d diverged from serial:\n got %+v\nwant %+v", workers, got, ref)
		}
	}
}

// TestImplicitCaptureVarianceReduction pins the point of the mode: in an
// absorbing geometry the weighted transmission estimate must have a
// higher effective sample size per incident neutron than... analog
// transmission is a Bernoulli count, so the comparison that matters is
// the absorption channel: continuous deposition spreads each history's
// capture over many collisions, so the weighted absorbed tally must
// carry far more entries than the analog one-death-per-history count —
// and its per-element attribution must be nonzero for every element the
// analog sampler ever picks.
func TestImplicitCaptureVarianceReduction(t *testing.T) {
	const n = 20000
	analog, err := SimulateWithOptions(implicitSlabs(), n, fastWattSource, rng.New(41), Options{})
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := SimulateWithOptions(implicitSlabs(), n, fastWattSource, rng.New(43), Options{ImplicitCapture: true})
	if err != nil {
		t.Fatal(err)
	}
	w := weighted.Weighted
	if w.Absorbed.N <= int64(analog.Absorbed) {
		t.Errorf("continuous absorption recorded %d deposits, analog recorded %d deaths; expected many more deposits",
			w.Absorbed.N, analog.Absorbed)
	}
	for elem, cnt := range analog.AbsorbedByElement {
		if cnt > 0 && w.AbsorbedByElement[elem].SumW <= 0 {
			t.Errorf("element %s captures in analog mode (%d) but carries no weighted absorption", elem, cnt)
		}
	}
}
