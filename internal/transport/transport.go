// Package transport implements a one-dimensional multi-slab Monte Carlo
// neutron transport engine. It is the computational substitute for the
// paper's physical environment effects: moderation of fast neutrons into
// thermals by water and concrete (which raises device error rates) and
// attenuation of thermal neutrons by cadmium or borated plastic shields.
//
// The model is the textbook slowing-down picture: exponential free flights
// with the material's macroscopic total cross section, isotropic elastic
// scattering in the center-of-mass frame, 1/v absorption, and re-equilibration
// to a room-temperature Maxwellian once a neutron reaches thermal energies.
package transport

import (
	"context"
	"errors"
	"math"
	"time"

	"neutronsim/internal/engine"
	"neutronsim/internal/materials"
	"neutronsim/internal/physics"
	"neutronsim/internal/rng"
	"neutronsim/internal/stats"
	"neutronsim/internal/telemetry"
	"neutronsim/internal/units"
)

// Slab is one homogeneous layer of the 1-D geometry.
type Slab struct {
	Material  *materials.Material
	Thickness float64 // cm
}

// maxCollisions bounds the random walk; a neutron exceeding it is tallied
// as lost (counted with the absorbed).
const maxCollisions = 100000

// Fate classifies how a tracked neutron ended.
type Fate int

// Neutron fates.
const (
	FateTransmitted Fate = iota + 1 // escaped through the back face
	FateReflected                   // escaped back through the front face
	FateAbsorbed                    // captured in the geometry
)

// String names the fate.
func (f Fate) String() string {
	switch f {
	case FateTransmitted:
		return "transmitted"
	case FateReflected:
		return "reflected"
	case FateAbsorbed:
		return "absorbed"
	default:
		return "unknown"
	}
}

// Tally accumulates the outcome statistics of a transport run.
//
// In the default analog mode every field is a raw history count. Under
// Options.ImplicitCapture the integer fields still count histories by
// their terminal fate — a history ends by escaping, losing the Russian
// roulette, or exceeding the collision bound — while the physical
// estimates (what fraction of the incident flux transmits, reflects, or
// is captured, and where) move to the Weighted section, because each
// history then carries a survival weight rather than a life-or-death
// absorption draw.
type Tally struct {
	Incident    int
	Transmitted map[physics.EnergyBand]int
	Reflected   map[physics.EnergyBand]int
	Absorbed    int
	// AbsorbedByElement counts captures per element name, which is how the
	// detector model counts ³He(n,p) signal events.
	AbsorbedByElement map[string]int
	Collisions        int64
	Lost              int
	// Weighted carries the likelihood-weighted estimates of an
	// implicit-capture run and is nil in analog mode.
	Weighted *TransportWeights `json:",omitempty"`
}

// TransportWeights is the weighted side of an implicit-capture tally:
// exit channels weighted by the history's survival weight at escape, and
// absorption tallied continuously — every collision deposits
// weight × P(absorb), apportioned across the material's elements by their
// macroscopic absorption share — instead of by terminal capture draws.
// The weighted sums estimate exactly the counts an analog run tallies, so
// TransmittedWeight/Incident is the analog transmission fraction with
// (usually much) lower variance in absorbing geometries.
type TransportWeights struct {
	Transmitted       map[physics.EnergyBand]stats.Weighted `json:"transmitted"`
	Reflected         map[physics.EnergyBand]stats.Weighted `json:"reflected"`
	Absorbed          stats.Weighted                        `json:"absorbed"`
	AbsorbedByElement map[string]stats.Weighted             `json:"absorbed_by_element"`
	// RouletteKills counts histories terminated by the Russian roulette
	// that bounds how far a survival weight can decay.
	RouletteKills int64 `json:"roulette_kills"`
}

// TransmittedWeight sums the weighted transmissions over all bands.
func (w *TransportWeights) TransmittedWeight() float64 {
	total := 0.0
	for _, t := range w.Transmitted {
		total += t.SumW
	}
	return total
}

// ReflectedWeight sums the weighted reflections over all bands.
func (w *TransportWeights) ReflectedWeight() float64 {
	total := 0.0
	for _, t := range w.Reflected {
		total += t.SumW
	}
	return total
}

func newTally() *Tally {
	return &Tally{
		Transmitted:       map[physics.EnergyBand]int{},
		Reflected:         map[physics.EnergyBand]int{},
		AbsorbedByElement: map[string]int{},
	}
}

// TransmittedTotal sums transmissions over all bands.
func (t *Tally) TransmittedTotal() int {
	n := 0
	for _, v := range t.Transmitted {
		n += v
	}
	return n
}

// ReflectedTotal sums reflections over all bands.
func (t *Tally) ReflectedTotal() int {
	n := 0
	for _, v := range t.Reflected {
		n += v
	}
	return n
}

// TransmissionFraction is transmitted/incident.
func (t *Tally) TransmissionFraction() float64 {
	if t.Incident == 0 {
		return 0
	}
	return float64(t.TransmittedTotal()) / float64(t.Incident)
}

// ReflectedThermalFraction is the thermal albedo: thermal reflections per
// incident neutron, the quantity behind the paper's flux-enhancement
// observations.
func (t *Tally) ReflectedThermalFraction() float64 {
	if t.Incident == 0 {
		return 0
	}
	return float64(t.Reflected[physics.BandThermal]) / float64(t.Incident)
}

// Options selects transport-model variants for ablation studies
// (DESIGN.md §5). The zero value is the default model.
type Options struct {
	// ForwardBias in [0, 1) shifts scattering re-emission toward the
	// incident (+x) hemisphere: the forward hemisphere is chosen with
	// probability 0.5+ForwardBias/2 instead of 0.5. Real elastic
	// scattering is forward-peaked in the lab frame (mean cosine 2/3A);
	// the default isotropic model is the textbook approximation.
	ForwardBias float64
	// Shards caps how many transport shards execute concurrently (default
	// GOMAXPROCS). It never affects the tally; see internal/engine.
	Shards int
	// ShardGrain is the number of source neutrons per shard (default
	// 16384). Like the caller's stream, it is part of the deterministic
	// schedule: changing it re-partitions the campaign.
	ShardGrain int
	// ImplicitCapture switches the walk to weighted (non-analog)
	// transport: instead of killing a history on an absorption draw, every
	// collision multiplies the history's weight by its survival
	// probability and deposits the absorbed weight into the weighted
	// tally. A Russian roulette below rouletteThreshold keeps the walk
	// finite — survivors double their weight, so the estimator stays
	// unbiased. The analog integer tallies then count histories, and the
	// physical fractions come from Tally.Weighted.
	ImplicitCapture bool
}

// rouletteThreshold is the survival weight below which an
// implicit-capture history plays Russian roulette (survive with
// probability ½, doubling the weight).
const rouletteThreshold = 1e-3

// defaultShardGrain is the number of source neutrons per engine shard.
const defaultShardGrain = 16384

// Simulate fires n source neutrons at normal incidence into the slab stack
// and returns the tally. source supplies the incident energy distribution.
func Simulate(slabs []Slab, n int, source func(*rng.Stream) units.Energy, s *rng.Stream) (*Tally, error) {
	return SimulateWithOptions(slabs, n, source, s, Options{})
}

// SimulateWithOptions is Simulate with explicit model options.
func SimulateWithOptions(slabs []Slab, n int, source func(*rng.Stream) units.Energy, s *rng.Stream, opts Options) (*Tally, error) {
	return SimulateContext(context.Background(), slabs, n, source, s, opts)
}

// SimulateContext is SimulateWithOptions with a caller context: spans nest
// under the caller's, progress posts reach any observer attached with
// telemetry.ContextWithProgress, and cancellation stops the walk at the
// next shard boundary.
func SimulateContext(ctx context.Context, slabs []Slab, n int, source func(*rng.Stream) units.Energy, s *rng.Stream, opts Options) (*Tally, error) {
	if len(slabs) == 0 {
		return nil, errors.New("transport: empty geometry")
	}
	if n <= 0 {
		return nil, errors.New("transport: non-positive neutron count")
	}
	if source == nil {
		return nil, errors.New("transport: nil source")
	}
	if opts.ForwardBias < 0 || opts.ForwardBias >= 1 {
		return nil, errors.New("transport: forward bias out of [0,1)")
	}
	for _, sl := range slabs {
		if sl.Material == nil || sl.Thickness <= 0 {
			return nil, errors.New("transport: slab needs material and positive thickness")
		}
	}
	// Precompute cumulative boundaries.
	bounds := make([]float64, len(slabs)+1)
	for i, sl := range slabs {
		bounds[i+1] = bounds[i] + sl.Thickness
	}
	ctx, span := telemetry.StartSpan(ctx, "transport.simulate")
	defer span.End()
	kT := float64(units.RoomTemperature.KT())
	// Pre-split one stream per shard off the caller's stream, in shard
	// order, so the tally depends only on the stream's state at the call —
	// never on worker scheduling. source is called with the shard's
	// stream and must be safe for concurrent use (the built-in spectra and
	// monoenergetic closures are pure).
	grain := opts.ShardGrain
	if grain <= 0 {
		grain = defaultShardGrain
	}
	streams := make([]*rng.Stream, len(engine.Plan(n, grain)))
	for i := range streams {
		streams[i] = s.Split()
	}
	start := time.Now()
	tallies, err := engine.Map(ctx, engine.Config{
		Workers:   opts.Shards,
		Grain:     grain,
		Name:      "transport",
		StreamFor: func(i int) *rng.Stream { return streams[i] },
		OnShardDone: func(_ engine.Shard, doneItems, totalItems int) {
			telemetry.ReportProgressContext(ctx, telemetry.ProgressUpdate{
				Component: "transport",
				Done:      float64(doneItems),
				Total:     float64(totalItems),
				Elapsed:   time.Since(start),
			})
		},
	}, n, defaultShardGrain, func(_ context.Context, sh engine.Shard) (*Tally, error) {
		t := newTally()
		t.Incident = sh.Count
		tt := &trackTally{absorbedBy: map[string]int{}}
		if opts.ImplicitCapture {
			tt.w = &weightedTrack{absorbedBy: map[string]*stats.Weighted{}}
			for i := 0; i < sh.Count; i++ {
				trackOneWeighted(slabs, bounds, source(sh.Stream), sh.Stream, kT, tt, opts)
			}
		} else {
			for i := 0; i < sh.Count; i++ {
				trackOne(slabs, bounds, source(sh.Stream), sh.Stream, kT, tt, opts)
			}
		}
		tt.fold(t)
		return t, nil
	})
	if err != nil {
		return nil, err
	}
	tally := newTally()
	// Shard order: weighted merges are Kahan sums, which are only
	// deterministic for a fixed fold order (engine.Map returns tallies in
	// shard order regardless of worker scheduling).
	for _, t := range tallies {
		tally.merge(t)
	}
	tally.finalizeWeighted()
	reg := telemetry.Default
	reg.Counter("transport.neutrons").Add(int64(n))
	reg.Counter("transport.collisions").Add(tally.Collisions)
	reg.Counter("transport.absorbed").Add(int64(tally.Absorbed))
	reg.Counter("transport.transmitted").Add(int64(tally.TransmittedTotal()))
	reg.Counter("transport.reflected").Add(int64(tally.ReflectedTotal()))
	if tally.Weighted != nil {
		reg.Counter("transport.roulette_kills").Add(tally.Weighted.RouletteKills)
	}
	return tally, nil
}

// merge folds another shard's tally into t. All fields are counts, so the
// merge is order-independent.
func (t *Tally) merge(o *Tally) {
	t.Incident += o.Incident
	t.Absorbed += o.Absorbed
	t.Collisions += o.Collisions
	t.Lost += o.Lost
	for b, n := range o.Transmitted {
		t.Transmitted[b] += n
	}
	for b, n := range o.Reflected {
		t.Reflected[b] += n
	}
	for e, n := range o.AbsorbedByElement {
		t.AbsorbedByElement[e] += n
	}
	if o.Weighted != nil {
		if t.Weighted == nil {
			t.Weighted = &TransportWeights{
				Transmitted:       map[physics.EnergyBand]stats.Weighted{},
				Reflected:         map[physics.EnergyBand]stats.Weighted{},
				AbsorbedByElement: map[string]stats.Weighted{},
			}
		}
		w := t.Weighted
		w.Absorbed.Merge(o.Weighted.Absorbed)
		w.RouletteKills += o.Weighted.RouletteKills
		for b, ot := range o.Weighted.Transmitted {
			cur := w.Transmitted[b]
			cur.Merge(ot)
			w.Transmitted[b] = cur
		}
		for b, ot := range o.Weighted.Reflected {
			cur := w.Reflected[b]
			cur.Merge(ot)
			w.Reflected[b] = cur
		}
		for e, ot := range o.Weighted.AbsorbedByElement {
			cur := w.AbsorbedByElement[e]
			cur.Merge(ot)
			w.AbsorbedByElement[e] = cur
		}
	}
}

// finalizeWeighted folds the Kahan compensation terms of every weighted
// tally into the exported sums before the result is published (the JSON
// round-trip guarantee of stats.Weighted).
func (t *Tally) finalizeWeighted() {
	if t.Weighted == nil {
		return
	}
	w := t.Weighted
	w.Absorbed.Finalize()
	for b, wt := range w.Transmitted {
		wt.Finalize()
		w.Transmitted[b] = wt
	}
	for b, wt := range w.Reflected {
		wt.Finalize()
		w.Reflected[b] = wt
	}
	for e, wt := range w.AbsorbedByElement {
		wt.Finalize()
		w.AbsorbedByElement[e] = wt
	}
}

// trackTally is the shard-local tally trackOne updates. Per-band exit
// counters are fixed arrays indexed by band value (1..physics.NumBands) so
// per-neutron bookkeeping never touches a map; fold converts to the
// exported map-based Tally once per shard.
type trackTally struct {
	collisions  int64
	absorbed    int
	lost        int
	transmitted [physics.NumBands + 1]int
	reflected   [physics.NumBands + 1]int
	absorbedBy  map[string]int
	// w is the weighted side of an implicit-capture shard, nil in analog
	// mode.
	w *weightedTrack
}

// weightedTrack is the shard-local weighted tally of an implicit-capture
// walk. Per-band exit tallies are fixed arrays for the same reason as
// trackTally's; the per-element absorption map holds pointers so the hot
// loop updates in place.
type weightedTrack struct {
	transmitted   [physics.NumBands + 1]stats.Weighted
	reflected     [physics.NumBands + 1]stats.Weighted
	absorbed      stats.Weighted
	absorbedBy    map[string]*stats.Weighted
	rouletteKills int64
}

func (tt *trackTally) fold(t *Tally) {
	t.Collisions += tt.collisions
	t.Absorbed += tt.absorbed
	t.Lost += tt.lost
	for b := 1; b < len(tt.transmitted); b++ {
		if n := tt.transmitted[b]; n != 0 {
			t.Transmitted[physics.EnergyBand(b)] += n
		}
		if n := tt.reflected[b]; n != 0 {
			t.Reflected[physics.EnergyBand(b)] += n
		}
	}
	for e, n := range tt.absorbedBy {
		t.AbsorbedByElement[e] += n
	}
	if tt.w == nil {
		return
	}
	w := &TransportWeights{
		Transmitted:       map[physics.EnergyBand]stats.Weighted{},
		Reflected:         map[physics.EnergyBand]stats.Weighted{},
		Absorbed:          tt.w.absorbed,
		AbsorbedByElement: map[string]stats.Weighted{},
		RouletteKills:     tt.w.rouletteKills,
	}
	for b := 1; b < len(tt.w.transmitted); b++ {
		if wt := tt.w.transmitted[b]; wt.N != 0 {
			w.Transmitted[physics.EnergyBand(b)] = wt
		}
		if wt := tt.w.reflected[b]; wt.N != 0 {
			w.Reflected[physics.EnergyBand(b)] = wt
		}
	}
	for e, wt := range tt.w.absorbedBy {
		w.AbsorbedByElement[e] = *wt
	}
	t.Weighted = w
}

func trackOne(slabs []Slab, bounds []float64, e units.Energy, s *rng.Stream, kT float64, tally *trackTally, opts Options) {
	x := 0.0
	mu := 1.0 // entering along +x
	slab := 0
	back := bounds[len(bounds)-1]
	for c := 0; c < maxCollisions; c++ {
		// Thermal equilibrium: below ~the thermal cutoff the neutron
		// exchanges energy with the lattice instead of monotonically
		// slowing down; re-draw from the ambient Maxwellian.
		if float64(e) < kT {
			e = units.Energy(s.MaxwellEnergy(kT))
		}
		m := slabs[slab].Material
		sigmaT := m.MacroTotal(e)
		var flight float64
		if sigmaT <= 0 {
			flight = math.Inf(1)
		} else {
			flight = s.Exponential(sigmaT)
		}
		// Distance along x to the boundary ahead.
		var boundaryX float64
		if mu > 0 {
			boundaryX = bounds[slab+1]
		} else {
			boundaryX = bounds[slab]
		}
		pathToBoundary := (boundaryX - x) / mu // positive by construction
		if flight >= pathToBoundary {
			// Crosses into the neighboring region (or escapes).
			x = boundaryX
			if mu > 0 {
				slab++
				if x >= back || slab >= len(slabs) {
					tally.transmitted[physics.Classify(e)]++
					return
				}
			} else {
				slab--
				if x <= 0 || slab < 0 {
					tally.reflected[physics.Classify(e)]++
					return
				}
			}
			continue
		}
		// Collision inside the current slab.
		x += flight * mu
		tally.collisions++
		if s.Bernoulli(m.AbsorptionProbability(e)) {
			tally.absorbed++
			tally.absorbedBy[sampleAbsorber(m, e, s)]++
			return
		}
		nucleus := m.SampleScatterer(s)
		e = physics.ScatterEnergy(e, nucleus.A, s)
		// Re-emission direction: isotropic in the lab frame by default;
		// optionally forward-biased (DESIGN.md §5 ablation).
		for {
			mu = s.Float64() // magnitude
			if mu == 0 {
				continue
			}
			if !s.Bernoulli(0.5 + opts.ForwardBias/2) {
				mu = -mu
			}
			break
		}
	}
	tally.lost++
	tally.absorbed++ // a lost neutron has certainly thermalized and died
}

// trackOneWeighted is the implicit-capture walk: the same free flights,
// boundary crossings and scattering as trackOne, but absorption is
// continuous — every collision deposits weight × P(absorb) into the
// weighted absorption tallies (apportioned over the material's elements
// by their macroscopic absorption share, no extra random draws) and the
// history survives with its weight reduced by the survival probability.
// A Russian roulette terminates histories whose weight decays below
// rouletteThreshold, doubling the survivors' weight so every tally stays
// an unbiased estimate of its analog counterpart.
func trackOneWeighted(slabs []Slab, bounds []float64, e units.Energy, s *rng.Stream, kT float64, tally *trackTally, opts Options) {
	x := 0.0
	mu := 1.0
	wt := 1.0
	slab := 0
	back := bounds[len(bounds)-1]
	w := tally.w
	for c := 0; c < maxCollisions; c++ {
		if float64(e) < kT {
			e = units.Energy(s.MaxwellEnergy(kT))
		}
		m := slabs[slab].Material
		sigmaT := m.MacroTotal(e)
		var flight float64
		if sigmaT <= 0 {
			flight = math.Inf(1)
		} else {
			flight = s.Exponential(sigmaT)
		}
		var boundaryX float64
		if mu > 0 {
			boundaryX = bounds[slab+1]
		} else {
			boundaryX = bounds[slab]
		}
		pathToBoundary := (boundaryX - x) / mu
		if flight >= pathToBoundary {
			x = boundaryX
			if mu > 0 {
				slab++
				if x >= back || slab >= len(slabs) {
					b := physics.Classify(e)
					tally.transmitted[b]++
					w.transmitted[b].Add(wt)
					return
				}
			} else {
				slab--
				if x <= 0 || slab < 0 {
					b := physics.Classify(e)
					tally.reflected[b]++
					w.reflected[b].Add(wt)
					return
				}
			}
			continue
		}
		x += flight * mu
		tally.collisions++
		if pAbs := m.AbsorptionProbability(e); pAbs > 0 {
			wAbs := wt * pAbs
			w.absorbed.Add(wAbs)
			depositAbsorbed(w.absorbedBy, m, e, wAbs)
			wt *= 1 - pAbs
		}
		if wt < rouletteThreshold {
			if s.Bernoulli(0.5) {
				wt *= 2
			} else {
				w.rouletteKills++
				tally.absorbed++ // history terminated inside the geometry
				return
			}
		}
		nucleus := m.SampleScatterer(s)
		e = physics.ScatterEnergy(e, nucleus.A, s)
		for {
			mu = s.Float64()
			if mu == 0 {
				continue
			}
			if !s.Bernoulli(0.5 + opts.ForwardBias/2) {
				mu = -mu
			}
			break
		}
	}
	tally.lost++
	tally.absorbed++
	// The bound cut discards the history's remaining weight; maxCollisions
	// is far beyond any physical walk, so the truncation bias is nil in
	// practice and Lost records that it happened at all.
}

// depositAbsorbed apportions one collision's absorbed weight over the
// material's elements by their share of the macroscopic absorption — the
// same arithmetic sampleAbsorber randomizes, made deterministic.
func depositAbsorbed(by map[string]*stats.Weighted, m *materials.Material, e units.Energy, wAbs float64) {
	comps := m.Components()
	total := m.MacroAbsorb(e)
	if total <= 0 || len(comps) == 0 {
		return
	}
	for _, c := range comps {
		share := c.NumberDensity * float64(c.Element.SigmaAbsorb(e)) / total
		if share <= 0 {
			continue
		}
		t, ok := by[c.Element.Name]
		if !ok {
			t = &stats.Weighted{}
			by[c.Element.Name] = t
		}
		t.Add(wAbs * share)
	}
}

// sampleAbsorber picks which element captured the neutron, weighted by the
// per-element macroscopic absorption at energy e.
func sampleAbsorber(m *materials.Material, e units.Energy, s *rng.Stream) string {
	comps := m.Components()
	total := m.MacroAbsorb(e)
	if total <= 0 || len(comps) == 0 {
		return "?"
	}
	u := s.Float64() * total
	acc := 0.0
	for _, c := range comps {
		acc += c.NumberDensity * float64(c.Element.SigmaAbsorb(e))
		if u < acc {
			return c.Element.Name
		}
	}
	return comps[len(comps)-1].Element.Name
}

// ShieldTransmission fires n monoenergetic neutrons at a single-material
// shield and returns the transmitted fraction, split into the fraction
// still in the original band and the total. It is the engine behind the
// paper's Cd / borated-plastic shielding discussion (§VI).
func ShieldTransmission(m *materials.Material, thicknessCm float64, e units.Energy, n int, s *rng.Stream) (sameBand, total float64, err error) {
	tally, err := Simulate([]Slab{{Material: m, Thickness: thicknessCm}}, n,
		func(*rng.Stream) units.Energy { return e }, s)
	if err != nil {
		return 0, 0, err
	}
	band := physics.Classify(e)
	return float64(tally.Transmitted[band]) / float64(n), tally.TransmissionFraction(), nil
}

// ThermalAlbedo fires n fast neutrons (from source) into a moderator slab
// and returns the fraction that comes back out of the front face as
// thermal neutrons. This is the mechanism by which a concrete floor or a
// water tank raises the thermal flux seen by nearby devices.
func ThermalAlbedo(m *materials.Material, thicknessCm float64, n int, source func(*rng.Stream) units.Energy, s *rng.Stream) (float64, error) {
	return ThermalAlbedoContext(context.Background(), m, thicknessCm, n, source, s)
}

// ThermalAlbedoContext is ThermalAlbedo with a caller context.
func ThermalAlbedoContext(ctx context.Context, m *materials.Material, thicknessCm float64, n int, source func(*rng.Stream) units.Energy, s *rng.Stream) (float64, error) {
	tally, err := SimulateContext(ctx, []Slab{{Material: m, Thickness: thicknessCm}}, n, source, s, Options{})
	if err != nil {
		return 0, err
	}
	return tally.ReflectedThermalFraction(), nil
}

// EnhancementConfig describes a moderation-enhancement estimate: a
// moderator slab irradiated by the ambient fast flux returning thermalized
// neutrons toward the device.
type EnhancementConfig struct {
	Moderator *materials.Material
	Thickness float64 // cm
	// FastToThermalFluxRatio is the ambient Φfast/Φthermal at the site.
	FastToThermalFluxRatio float64
	// Coupling folds the geometry (solid angle between moderator and
	// device) into a single factor; calibrated once against the paper's
	// measured +24% for 2 in of water (see fit package).
	Coupling float64
	Neutrons int
}

// ThermalEnhancement estimates the relative increase of the local thermal
// flux caused by the moderator: albedo × coupling × (Φfast/Φthermal).
func ThermalEnhancement(cfg EnhancementConfig, source func(*rng.Stream) units.Energy, s *rng.Stream) (float64, error) {
	return ThermalEnhancementContext(context.Background(), cfg, source, s)
}

// ThermalEnhancementContext is ThermalEnhancement with a caller context.
func ThermalEnhancementContext(ctx context.Context, cfg EnhancementConfig, source func(*rng.Stream) units.Energy, s *rng.Stream) (float64, error) {
	if cfg.FastToThermalFluxRatio <= 0 {
		return 0, errors.New("transport: flux ratio must be positive")
	}
	if cfg.Coupling <= 0 {
		return 0, errors.New("transport: coupling must be positive")
	}
	n := cfg.Neutrons
	if n <= 0 {
		n = 20000
	}
	albedo, err := ThermalAlbedoContext(ctx, cfg.Moderator, cfg.Thickness, n, source, s)
	if err != nil {
		return 0, err
	}
	return albedo * cfg.Coupling * cfg.FastToThermalFluxRatio, nil
}
