package transport

import (
	"math"
	"testing"
	"testing/quick"

	"neutronsim/internal/materials"
	"neutronsim/internal/physics"
	"neutronsim/internal/rng"
	"neutronsim/internal/units"
)

func fastSource(s *rng.Stream) units.Energy {
	return units.Energy(s.WattEnergy(0.988, 2.249) * 1e6)
}

func thermalSource(*rng.Stream) units.Energy { return 0.0253 }

func TestSimulateValidation(t *testing.T) {
	s := rng.New(1)
	if _, err := Simulate(nil, 10, thermalSource, s); err == nil {
		t.Error("empty geometry accepted")
	}
	slabs := []Slab{{Material: materials.Water(), Thickness: 1}}
	if _, err := Simulate(slabs, 0, thermalSource, s); err == nil {
		t.Error("zero neutrons accepted")
	}
	if _, err := Simulate(slabs, 10, nil, s); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := Simulate([]Slab{{Material: materials.Water(), Thickness: 0}}, 10, thermalSource, s); err == nil {
		t.Error("zero thickness accepted")
	}
	if _, err := Simulate([]Slab{{Thickness: 1}}, 10, thermalSource, s); err == nil {
		t.Error("nil material accepted")
	}
}

func TestConservation(t *testing.T) {
	s := rng.New(2)
	tally, err := Simulate([]Slab{{Material: materials.Water(), Thickness: 5}}, 5000, fastSource, s)
	if err != nil {
		t.Fatal(err)
	}
	total := tally.TransmittedTotal() + tally.ReflectedTotal() + tally.Absorbed
	if total != tally.Incident {
		t.Errorf("neutrons not conserved: %d tracked vs %d incident", total, tally.Incident)
	}
}

func TestThinAirTransparent(t *testing.T) {
	s := rng.New(3)
	tally, err := Simulate([]Slab{{Material: materials.Air(), Thickness: 100}}, 2000, fastSource, s)
	if err != nil {
		t.Fatal(err)
	}
	if f := tally.TransmissionFraction(); f < 0.95 {
		t.Errorf("1 m of air transmitted only %v", f)
	}
}

func TestWaterModeratesFastToThermal(t *testing.T) {
	s := rng.New(4)
	tally, err := Simulate([]Slab{{Material: materials.Water(), Thickness: 5.08}}, 20000, fastSource, s)
	if err != nil {
		t.Fatal(err)
	}
	albedo := tally.ReflectedThermalFraction()
	if albedo < 0.10 || albedo > 0.25 {
		t.Errorf("2in water thermal albedo = %v, want ~0.15", albedo)
	}
	// Some fast neutrons must still punch through 2 inches.
	if tally.Transmitted[physics.BandFast] == 0 {
		t.Error("no fast transmission through 2in water")
	}
}

func TestAlbedoSaturatesWithThickness(t *testing.T) {
	s := rng.New(5)
	thin, err := ThermalAlbedo(materials.Water(), 1, 15000, fastSource, s)
	if err != nil {
		t.Fatal(err)
	}
	thick, err := ThermalAlbedo(materials.Water(), 10, 15000, fastSource, s)
	if err != nil {
		t.Fatal(err)
	}
	veryThick, err := ThermalAlbedo(materials.Water(), 40, 15000, fastSource, s)
	if err != nil {
		t.Fatal(err)
	}
	if thin >= thick {
		t.Errorf("albedo should grow from thin (%v) to thick (%v)", thin, thick)
	}
	if math.Abs(veryThick-thick)/thick > 0.2 {
		t.Errorf("albedo should saturate: 10cm %v vs 40cm %v", thick, veryThick)
	}
}

func TestConcreteModeratesLessThanWater(t *testing.T) {
	s := rng.New(6)
	water, _ := ThermalAlbedo(materials.Water(), 30, 15000, fastSource, s)
	concrete, _ := ThermalAlbedo(materials.Concrete(), 30, 15000, fastSource, s)
	if concrete >= water {
		t.Errorf("concrete albedo %v should be below water %v", concrete, water)
	}
	if concrete < 0.05 {
		t.Errorf("concrete albedo %v too small; the paper reports ~20%% enhancement", concrete)
	}
}

func TestCadmiumBlocksThermalPassesFast(t *testing.T) {
	s := rng.New(7)
	thermalTrans, _, err := ShieldTransmission(materials.CadmiumSheet(), 0.1, 0.0253, 10000, s)
	if err != nil {
		t.Fatal(err)
	}
	if thermalTrans > 0.001 {
		t.Errorf("1mm Cd transmitted %v of thermals, want ~0", thermalTrans)
	}
	fastTrans, _, err := ShieldTransmission(materials.CadmiumSheet(), 0.1, 14*units.MeV, 10000, s)
	if err != nil {
		t.Fatal(err)
	}
	if fastTrans < 0.95 {
		t.Errorf("1mm Cd transmitted only %v of fast neutrons, want ~0.98", fastTrans)
	}
}

func TestBoratedPlasticShielding(t *testing.T) {
	s := rng.New(8)
	// 2 inches of 5% borated PE should remove essentially all thermals.
	trans, _, err := ShieldTransmission(materials.BoratedPolyethylene(0.05), 5.08, 0.0253, 10000, s)
	if err != nil {
		t.Fatal(err)
	}
	if trans > 0.001 {
		t.Errorf("2in borated PE transmitted %v of thermals", trans)
	}
	// Plain PE mostly scatters them around instead of absorbing.
	absorbing, err := Simulate([]Slab{{Material: materials.BoratedPolyethylene(0.05), Thickness: 5.08}},
		10000, thermalSource, s)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Simulate([]Slab{{Material: materials.Polyethylene(), Thickness: 5.08}},
		10000, thermalSource, s)
	if err != nil {
		t.Fatal(err)
	}
	if absorbing.Absorbed <= plain.Absorbed {
		t.Error("borated PE should absorb more than plain PE")
	}
}

func TestMultiSlabGeometry(t *testing.T) {
	s := rng.New(9)
	// Cd in front of water: thermal source dies in the Cd, never reaches water.
	tally, err := Simulate([]Slab{
		{Material: materials.CadmiumSheet(), Thickness: 0.1},
		{Material: materials.Water(), Thickness: 5},
	}, 5000, thermalSource, s)
	if err != nil {
		t.Fatal(err)
	}
	if tally.TransmittedTotal() > 5 {
		t.Errorf("thermal neutrons crossed Cd+water: %d", tally.TransmittedTotal())
	}
	if got := tally.AbsorbedByElement["Cd"]; got < 4500 {
		t.Errorf("expected Cd to take nearly all captures, got %d", got)
	}
}

func TestAbsorbedByElementHelium3(t *testing.T) {
	s := rng.New(10)
	tally, err := Simulate([]Slab{{Material: materials.Helium3Gas(4), Thickness: 2.5}},
		5000, thermalSource, s)
	if err != nil {
		t.Fatal(err)
	}
	if tally.Absorbed == 0 {
		t.Fatal("no captures in 3He tube model")
	}
	if tally.AbsorbedByElement["He3"] != tally.Absorbed {
		t.Errorf("all captures should be on He3: %v of %v", tally.AbsorbedByElement["He3"], tally.Absorbed)
	}
}

func TestThermalEnhancementCalibration(t *testing.T) {
	s := rng.New(11)
	// With coupling 0.5 and fast:thermal ratio 3.2 (NYC-like), 2 inches of
	// water should produce roughly the paper's +24%.
	enh, err := ThermalEnhancement(EnhancementConfig{
		Moderator:              materials.Water(),
		Thickness:              5.08,
		FastToThermalFluxRatio: 3.2,
		Coupling:               0.5,
		Neutrons:               20000,
	}, fastSource, s)
	if err != nil {
		t.Fatal(err)
	}
	if enh < 0.18 || enh > 0.30 {
		t.Errorf("water enhancement = %v, want ~0.24", enh)
	}
	// Concrete slab floor: the paper reports ~+20%.
	enhC, err := ThermalEnhancement(EnhancementConfig{
		Moderator:              materials.Concrete(),
		Thickness:              30,
		FastToThermalFluxRatio: 3.2,
		Coupling:               0.5,
		Neutrons:               20000,
	}, fastSource, s)
	if err != nil {
		t.Fatal(err)
	}
	if enhC < 0.12 || enhC > 0.28 {
		t.Errorf("concrete enhancement = %v, want ~0.2", enhC)
	}
}

func TestThermalEnhancementValidation(t *testing.T) {
	s := rng.New(12)
	cfg := EnhancementConfig{Moderator: materials.Water(), Thickness: 5}
	if _, err := ThermalEnhancement(cfg, fastSource, s); err == nil {
		t.Error("zero flux ratio accepted")
	}
	cfg.FastToThermalFluxRatio = 3
	if _, err := ThermalEnhancement(cfg, fastSource, s); err == nil {
		t.Error("zero coupling accepted")
	}
}

func TestThermalEnhancementDefaultNeutrons(t *testing.T) {
	s := rng.New(13)
	enh, err := ThermalEnhancement(EnhancementConfig{
		Moderator:              materials.Water(),
		Thickness:              5.08,
		FastToThermalFluxRatio: 3.2,
		Coupling:               0.5,
	}, fastSource, s)
	if err != nil {
		t.Fatal(err)
	}
	if enh <= 0 {
		t.Error("default neutron budget produced no enhancement")
	}
}

func TestFateString(t *testing.T) {
	for f, want := range map[Fate]string{
		FateTransmitted: "transmitted",
		FateReflected:   "reflected",
		FateAbsorbed:    "absorbed",
		Fate(0):         "unknown",
	} {
		if got := f.String(); got != want {
			t.Errorf("Fate(%d).String() = %q, want %q", f, got, want)
		}
	}
}

func TestEnergyNeverLost(t *testing.T) {
	// Reflected/transmitted neutrons must carry classifiable energies.
	s := rng.New(14)
	tally, err := Simulate([]Slab{{Material: materials.Polyethylene(), Thickness: 3}}, 5000, fastSource, s)
	if err != nil {
		t.Fatal(err)
	}
	for band := range tally.Transmitted {
		if band != physics.BandThermal && band != physics.BandEpithermal && band != physics.BandFast {
			t.Errorf("unknown band %v in tally", band)
		}
	}
}

func BenchmarkWaterTransport(b *testing.B) {
	s := rng.New(1)
	slabs := []Slab{{Material: materials.Water(), Thickness: 5.08}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(slabs, 100, fastSource, s); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: neutrons are conserved for arbitrary geometries.
func TestConservationProperty(t *testing.T) {
	s := rng.New(99)
	mats := []*materials.Material{
		materials.Water(), materials.Concrete(), materials.Polyethylene(),
		materials.Air(), materials.CadmiumSheet(), materials.BoratedPolyethylene(0.05),
	}
	f := func(matIdx uint8, rawThick, rawE float64) bool {
		m := mats[int(matIdx)%len(mats)]
		thickness := 0.1 + math.Abs(math.Mod(rawThick, 20))
		e := units.Energy(0.001 + math.Abs(math.Mod(rawE, 1e8)))
		tally, err := Simulate([]Slab{{Material: m, Thickness: thickness}}, 200,
			func(*rng.Stream) units.Energy { return e }, s)
		if err != nil {
			return false
		}
		return tally.TransmittedTotal()+tally.ReflectedTotal()+tally.Absorbed == tally.Incident
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestForwardBiasValidation(t *testing.T) {
	s := rng.New(100)
	slabs := []Slab{{Material: materials.Water(), Thickness: 1}}
	if _, err := SimulateWithOptions(slabs, 10, thermalSource, s, Options{ForwardBias: -0.1}); err == nil {
		t.Error("negative bias accepted")
	}
	if _, err := SimulateWithOptions(slabs, 10, thermalSource, s, Options{ForwardBias: 1}); err == nil {
		t.Error("bias of 1 accepted")
	}
}

func TestForwardBiasRaisesTransmission(t *testing.T) {
	s := rng.New(101)
	slabs := []Slab{{Material: materials.Polyethylene(), Thickness: 5}}
	iso, err := SimulateWithOptions(slabs, 8000, fastSource, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := SimulateWithOptions(slabs, 8000, fastSource, s, Options{ForwardBias: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if fwd.TransmissionFraction() <= iso.TransmissionFraction() {
		t.Errorf("forward bias should raise transmission: %v vs %v",
			fwd.TransmissionFraction(), iso.TransmissionFraction())
	}
}
