// Package core implements the paper's primary contribution as a reusable
// engine: (1) measure a device's high-energy and thermal neutron
// sensitivity with matched beam campaigns, (2) fold in the environment's
// (material-adjusted) neutron fluxes, and (3) report the device's FIT
// rates and the thermal-neutron contribution to them.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"neutronsim/internal/beam"
	"neutronsim/internal/device"
	"neutronsim/internal/fit"
	"neutronsim/internal/plan"
	"neutronsim/internal/spectrum"
	"neutronsim/internal/telemetry"
	"neutronsim/internal/units"
	"neutronsim/internal/workload"
)

// Budget sets the simulated beam time for an assessment. Thermal campaigns
// need far more time than fast ones because ROTAX's flux produces fewer
// device interactions per second (the paper tested one board at a time at
// ROTAX for the same reason).
type Budget struct {
	FastSeconds    float64
	ThermalSeconds float64
	// Boost multiplies the device's sensitive fraction to accelerate
	// statistics gathering. Both bands scale identically, so all ratios
	// and (boost-corrected) cross sections are preserved. 0 means 1.
	Boost float64
	// Shards caps how many shards each beam campaign executes
	// concurrently (default GOMAXPROCS). It never affects results; see
	// internal/engine.
	Shards int
	// Bias opts both campaigns into importance-sampled transport with the
	// given per-band oversampling factors (nil = exact). Results then
	// carry weighted tallies and ESS-gated confidence intervals; see
	// beam.Config.Bias.
	Bias *plan.Bias
}

// DefaultBudget gives production-quality statistics (hundreds of errors
// per campaign).
func DefaultBudget() Budget {
	return Budget{FastSeconds: 2 * 3600, ThermalSeconds: 40 * 3600, Boost: 1}
}

// QuickBudget trades precision for speed (useful in examples and tests);
// the boost preserves ratios exactly and cross sections are corrected
// back.
func QuickBudget() Budget {
	return Budget{FastSeconds: 600, ThermalSeconds: 3600, Boost: 50}
}

func (b Budget) withDefaults() Budget {
	if b.FastSeconds <= 0 {
		b.FastSeconds = 2 * 3600
	}
	if b.ThermalSeconds <= 0 {
		b.ThermalSeconds = 40 * 3600
	}
	if b.Boost <= 0 {
		b.Boost = 1
	}
	return b
}

// Assessment is the measured sensitivity of one device across its
// benchmark set.
type Assessment struct {
	Device      *device.Device
	Workloads   []string
	PerWorkload map[string]beam.Pair
	// FastAvg and ThermalAvg merge all workloads (the device averages of
	// Fig. cs_ratio).
	FastAvg    *beam.Result
	ThermalAvg *beam.Result
	// Sigmas are the boost-corrected device cross sections feeding FIT
	// computation.
	Sigmas fit.Sigmas
}

// Assess runs the full matched-campaign protocol on a device. When
// workloads is nil, the paper's assignment for the device class is used.
func Assess(d *device.Device, workloads []string, b Budget, seed uint64) (*Assessment, error) {
	return assess(context.Background(), d, workloads, b, seed)
}

// AssessContext is Assess with a caller context: the assessment's telemetry
// spans nest under the caller's, per-campaign progress posts reach any
// observer attached with telemetry.ContextWithProgress, and cancellation
// aborts the protocol at the next shard boundary.
func AssessContext(ctx context.Context, d *device.Device, workloads []string, b Budget, seed uint64) (*Assessment, error) {
	return assess(ctx, d, workloads, b, seed)
}

func assess(ctx context.Context, d *device.Device, workloads []string, b Budget, seed uint64) (*Assessment, error) {
	if d == nil {
		return nil, errors.New("core: nil device")
	}
	ctx, span := telemetry.StartSpan(ctx, "core.assess")
	defer span.End()
	defer telemetry.StartTimer(telemetry.Default.Histogram("core.assess_seconds")).ObserveDuration()
	b = b.withDefaults()
	if workloads == nil {
		workloads = workload.ForDeviceKind(d.Kind.String())
	}
	if len(workloads) == 0 {
		return nil, fmt.Errorf("core: no workloads for device %s", d.Name)
	}
	dut := *d
	if b.Boost != 1 {
		dut.SensitiveFraction *= b.Boost
		if dut.SensitiveFraction > 1 {
			return nil, fmt.Errorf("core: boost %v overflows sensitive fraction", b.Boost)
		}
	}
	a := &Assessment{
		Device:      d,
		Workloads:   append([]string(nil), workloads...),
		PerWorkload: map[string]beam.Pair{},
	}
	// One compiled spectrum per beamline for the whole assessment; the
	// per-workload campaigns share them instead of rebuilding the energy
	// tables inside the loop.
	chip := spectrum.ChipIR()
	rotax := spectrum.ROTAX()
	var fastResults, thermalResults []*beam.Result
	for i, wl := range workloads {
		fast, err := beam.RunContext(ctx, beam.Config{
			Device:          &dut,
			WorkloadName:    wl,
			Beam:            chip,
			DurationSeconds: b.FastSeconds,
			Seed:            seed + uint64(i)*2,
			Shards:          b.Shards,
			Bias:            b.Bias,
		})
		if err != nil {
			return nil, fmt.Errorf("core: %s/%s ChipIR: %w", d.Name, wl, err)
		}
		thermal, err := beam.RunContext(ctx, beam.Config{
			Device:          &dut,
			WorkloadName:    wl,
			Beam:            rotax,
			DurationSeconds: b.ThermalSeconds,
			Seed:            seed + uint64(i)*2 + 1,
			Shards:          b.Shards,
			Bias:            b.Bias,
		})
		if err != nil {
			return nil, fmt.Errorf("core: %s/%s ROTAX: %w", d.Name, wl, err)
		}
		a.PerWorkload[wl] = beam.Pair{Fast: fast, Thermal: thermal}
		fastResults = append(fastResults, fast)
		thermalResults = append(thermalResults, thermal)
	}
	var err error
	if a.FastAvg, err = beam.Merge(fastResults); err != nil {
		return nil, err
	}
	if a.ThermalAvg, err = beam.Merge(thermalResults); err != nil {
		return nil, err
	}
	a.Sigmas = fit.Sigmas{
		SDCFast:    units.CrossSection(a.FastAvg.SDCCrossSection.Rate / b.Boost),
		SDCThermal: units.CrossSection(a.ThermalAvg.SDCCrossSection.Rate / b.Boost),
		DUEFast:    units.CrossSection(a.FastAvg.DUECrossSection.Rate / b.Boost),
		DUEThermal: units.CrossSection(a.ThermalAvg.DUECrossSection.Rate / b.Boost),
	}
	return a, nil
}

// SDCRatio returns the device-average fast:thermal SDC ratio with CI.
func (a *Assessment) SDCRatio() (ratio, lo, hi float64) {
	return beam.Pair{Fast: a.FastAvg, Thermal: a.ThermalAvg}.SDCRatio()
}

// DUERatio returns the device-average fast:thermal DUE ratio with CI.
func (a *Assessment) DUERatio() (ratio, lo, hi float64) {
	return beam.Pair{Fast: a.FastAvg, Thermal: a.ThermalAvg}.DUERatio()
}

// FIT computes the device's failure rates in an environment.
func (a *Assessment) FIT(env fit.Environment) (fit.Report, error) {
	return fit.Compute(a.Sigmas, env)
}

// RatioRow is one line of the cross-section-ratio table (Fig. cs_ratio).
type RatioRow struct {
	Device                 string
	SDCRatio, SDCLo, SDCHi float64
	DUERatio, DUELo, DUEHi float64
}

// RatioTable builds the Fig. cs_ratio table from assessments, sorted by
// descending SDC ratio (least thermally sensitive first).
func RatioTable(as []*Assessment) []RatioRow {
	rows := make([]RatioRow, 0, len(as))
	for _, a := range as {
		var r RatioRow
		r.Device = a.Device.Name
		r.SDCRatio, r.SDCLo, r.SDCHi = a.SDCRatio()
		r.DUERatio, r.DUELo, r.DUEHi = a.DUERatio()
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].SDCRatio > rows[j].SDCRatio })
	return rows
}

// ShareRow is one line of the thermal-FIT-share table (the commented
// FIT-rates-all-devices figure).
type ShareRow struct {
	Device          string
	Environment     string
	SDCThermalShare float64
	DUEThermalShare float64
	TotalFIT        units.FIT
}

// ShareTable evaluates every assessment in every environment.
func ShareTable(as []*Assessment, envs []fit.Environment) ([]ShareRow, error) {
	var rows []ShareRow
	for _, a := range as {
		for _, env := range envs {
			rep, err := a.FIT(env)
			if err != nil {
				return nil, fmt.Errorf("core: %s in %s: %w", a.Device.Name, env, err)
			}
			rows = append(rows, ShareRow{
				Device:          a.Device.Name,
				Environment:     env.String(),
				SDCThermalShare: rep.SDC.ThermalShare(),
				DUEThermalShare: rep.DUE.ThermalShare(),
				TotalFIT:        rep.Total(),
			})
		}
	}
	return rows, nil
}
