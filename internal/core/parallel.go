package core

import (
	"fmt"
	"runtime"
	"sync"

	"neutronsim/internal/device"
)

// AssessMany runs Assess for several devices concurrently with a bounded
// worker pool. Each device gets its own deterministic seed derived from
// the base seed and its index, so the results are identical to running the
// assessments sequentially — parallelism only changes wall-clock time.
func AssessMany(devices []*device.Device, b Budget, seed uint64, parallelism int) ([]*Assessment, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("core: no devices")
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(devices) {
		parallelism = len(devices)
	}
	results := make([]*Assessment, len(devices))
	indices := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				a, err := Assess(devices[i], nil, b, DeviceSeed(seed, i))
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("core: %s: %w", devices[i].Name, err)
					}
					mu.Unlock()
					continue
				}
				results[i] = a
			}
		}()
	}
	for i := range devices {
		indices <- i
	}
	close(indices)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// DeviceSeed derives the per-device campaign seed used by AssessMany, so
// sequential callers can reproduce individual entries.
func DeviceSeed(base uint64, index int) uint64 {
	return base + uint64(index)*1000
}
