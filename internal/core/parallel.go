package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"neutronsim/internal/device"
	"neutronsim/internal/telemetry"
)

// AssessMany runs Assess for several devices concurrently with a bounded
// worker pool. Each device gets its own deterministic seed derived from
// the base seed and its index, so the results are identical to running the
// assessments sequentially — parallelism only changes wall-clock time.
//
// On failure the returned error joins every per-device error (in device
// order), and the result slice is still returned with the successful
// assessments filled in and nil entries for the failed devices, so callers
// can keep partial campaigns.
func AssessMany(devices []*device.Device, b Budget, seed uint64, parallelism int) ([]*Assessment, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("core: no devices")
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(devices) {
		parallelism = len(devices)
	}
	ctx, span := telemetry.StartSpan(context.Background(), "core.assess_many")
	defer span.End()
	busy := telemetry.Default.Gauge("core.workers_busy")
	assessed := telemetry.Default.Counter("core.devices_assessed")
	results := make([]*Assessment, len(devices))
	errs := make([]error, len(devices))
	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				busy.Add(1)
				a, err := assess(ctx, devices[i], nil, b, DeviceSeed(seed, i))
				busy.Add(-1)
				if err != nil {
					errs[i] = fmt.Errorf("core: %s: %w", devices[i].Name, err)
					continue
				}
				results[i] = a
				assessed.Inc()
			}
		}()
	}
	for i := range devices {
		indices <- i
	}
	close(indices)
	wg.Wait()
	return results, errors.Join(errs...)
}

// DeviceSeed derives the per-device campaign seed used by AssessMany, so
// sequential callers can reproduce individual entries.
func DeviceSeed(base uint64, index int) uint64 {
	return base + uint64(index)*1000
}
