package core

import (
	"testing"

	"neutronsim/internal/device"
)

func TestAssessManyMatchesSequential(t *testing.T) {
	devices := []*device.Device{device.K20(), device.TitanX()}
	b := Budget{FastSeconds: 120, ThermalSeconds: 480, Boost: 50}
	parallel, err := AssessMany(devices, b, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range devices {
		seq, err := Assess(d, nil, b, DeviceSeed(7, i))
		if err != nil {
			t.Fatal(err)
		}
		p := parallel[i]
		if p.FastAvg.SDC != seq.FastAvg.SDC || p.ThermalAvg.DUE != seq.ThermalAvg.DUE {
			t.Errorf("%s: parallel result differs from sequential", d.Name)
		}
	}
}

func TestAssessManyValidation(t *testing.T) {
	if _, err := AssessMany(nil, Budget{}, 1, 2); err == nil {
		t.Error("empty device list accepted")
	}
}

func TestAssessManyPropagatesErrors(t *testing.T) {
	bad := device.K20()
	bad.Name = "" // fails validation inside the campaign
	_, err := AssessMany([]*device.Device{device.K20(), bad},
		Budget{FastSeconds: 60, ThermalSeconds: 60, Boost: 50}, 1, 2)
	if err == nil {
		t.Error("invalid device did not surface an error")
	}
}

func TestAssessManyDefaultParallelism(t *testing.T) {
	devices := []*device.Device{device.TitanX()}
	res, err := AssessMany(devices, Budget{FastSeconds: 120, ThermalSeconds: 300, Boost: 50}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0] == nil {
		t.Error("missing result")
	}
}
