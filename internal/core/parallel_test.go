package core

import (
	"testing"

	"neutronsim/internal/device"
)

func TestAssessManyMatchesSequential(t *testing.T) {
	devices := []*device.Device{device.K20(), device.TitanX()}
	b := Budget{FastSeconds: 120, ThermalSeconds: 480, Boost: 50}
	parallel, err := AssessMany(devices, b, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range devices {
		seq, err := Assess(d, nil, b, DeviceSeed(7, i))
		if err != nil {
			t.Fatal(err)
		}
		p := parallel[i]
		if p.FastAvg.SDC != seq.FastAvg.SDC || p.ThermalAvg.DUE != seq.ThermalAvg.DUE {
			t.Errorf("%s: parallel result differs from sequential", d.Name)
		}
	}
}

func TestAssessManyValidation(t *testing.T) {
	if _, err := AssessMany(nil, Budget{}, 1, 2); err == nil {
		t.Error("empty device list accepted")
	}
}

func TestAssessManyPropagatesErrors(t *testing.T) {
	bad := device.K20()
	bad.Name = "" // fails validation inside the campaign
	res, err := AssessMany([]*device.Device{device.K20(), bad},
		Budget{FastSeconds: 60, ThermalSeconds: 60, Boost: 50}, 1, 2)
	if err == nil {
		t.Fatal("invalid device did not surface an error")
	}
	if len(res) != 2 || res[0] == nil {
		t.Error("partial results dropped: healthy device's assessment missing")
	}
	if res != nil && res[1] != nil {
		t.Error("failed device produced a non-nil assessment")
	}
}

func TestAssessManyJoinsAllErrors(t *testing.T) {
	badA := device.K20()
	badA.Name = ""
	badB := device.TitanX()
	badB.Name = ""
	badB.DieAreaCm2 = -1
	_, err := AssessMany([]*device.Device{badA, device.K20(), badB},
		Budget{FastSeconds: 60, ThermalSeconds: 60, Boost: 50}, 1, 3)
	if err == nil {
		t.Fatal("invalid devices did not surface an error")
	}
	joined, ok := err.(interface{ Unwrap() []error })
	if !ok {
		t.Fatalf("error %T does not unwrap to a list", err)
	}
	if n := len(joined.Unwrap()); n != 2 {
		t.Errorf("joined %d errors, want 2: %v", n, err)
	}
}

func TestAssessManyDefaultParallelism(t *testing.T) {
	devices := []*device.Device{device.TitanX()}
	res, err := AssessMany(devices, Budget{FastSeconds: 120, ThermalSeconds: 300, Boost: 50}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0] == nil {
		t.Error("missing result")
	}
}
