package core

import (
	"math"
	"testing"

	"neutronsim/internal/device"
	"neutronsim/internal/fit"
)

func quickAssess(t *testing.T, d *device.Device, seed uint64) *Assessment {
	t.Helper()
	a, err := Assess(d, []string{"MxM"}, QuickBudget(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAssessValidation(t *testing.T) {
	if _, err := Assess(nil, nil, Budget{}, 1); err == nil {
		t.Error("nil device accepted")
	}
	d := device.K20()
	if _, err := Assess(d, []string{}, Budget{}, 1); err == nil {
		t.Error("empty workload list accepted")
	}
	if _, err := Assess(d, []string{"nope"}, QuickBudget(), 1); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := Assess(d, nil, Budget{Boost: 1e9}, 1); err == nil {
		t.Error("overflowing boost accepted")
	}
}

func TestAssessDefaultsWorkloadsFromKind(t *testing.T) {
	a, err := Assess(device.APU(APUConfigDefault()), nil, QuickBudget(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Workloads) != 3 { // SC, CED, BFS
		t.Errorf("APU workloads = %v", a.Workloads)
	}
}

// APUConfigDefault keeps the test readable.
func APUConfigDefault() device.APUConfig { return device.APUCPUGPU }

func TestAssessmentStatistics(t *testing.T) {
	a := quickAssess(t, device.K20(), 3)
	if a.FastAvg.SDC == 0 || a.ThermalAvg.SDC == 0 {
		t.Fatalf("campaigns too small: fast SDC %d thermal SDC %d", a.FastAvg.SDC, a.ThermalAvg.SDC)
	}
	if a.Sigmas.Validate() != nil {
		t.Error("invalid sigmas")
	}
	// Boost-corrected sigmas must be far below the boosted raw rates.
	if a.Sigmas.SDCFast <= 0 {
		t.Error("zero corrected SDC sigma")
	}
}

func TestBoostCorrection(t *testing.T) {
	// Different boosts should yield compatible corrected cross sections.
	a1, err := Assess(device.K20(), []string{"MxM"}, Budget{FastSeconds: 600, ThermalSeconds: 3600, Boost: 30}, 5)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Assess(device.K20(), []string{"MxM"}, Budget{FastSeconds: 600, ThermalSeconds: 3600, Boost: 90}, 6)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(a1.Sigmas.SDCFast) / float64(a2.Sigmas.SDCFast)
	if ratio < 0.6 || ratio > 1.7 {
		t.Errorf("boost-corrected sigmas disagree: ratio %v", ratio)
	}
}

func TestK20RatioNearPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	a, err := Assess(device.K20(), []string{"MxM"},
		Budget{FastSeconds: 1200, ThermalSeconds: 7200, Boost: 100}, 7)
	if err != nil {
		t.Fatal(err)
	}
	sdc, _, _ := a.SDCRatio()
	if sdc < 1 || sdc > 4.5 {
		t.Errorf("K20 SDC ratio = %v, paper: ~2", sdc)
	}
	due, _, _ := a.DUERatio()
	if due < 1.2 || due > 7 {
		t.Errorf("K20 DUE ratio = %v, paper: ~3", due)
	}
}

func TestFITReport(t *testing.T) {
	a := quickAssess(t, device.K20(), 8)
	rep, err := a.FIT(fit.DataCenter(fit.NYC()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() <= 0 {
		t.Error("zero total FIT")
	}
	if s := rep.SDC.ThermalShare(); s <= 0 || s >= 1 {
		t.Errorf("SDC thermal share = %v", s)
	}
	// Altitude raises every rate.
	lv, err := a.FIT(fit.DataCenter(fit.Leadville()))
	if err != nil {
		t.Fatal(err)
	}
	if lv.Total() <= rep.Total() {
		t.Error("Leadville FIT should exceed NYC FIT")
	}
	if lv.SDC.ThermalShare() <= rep.SDC.ThermalShare() {
		t.Error("Leadville thermal share should exceed NYC's")
	}
}

func TestRatioTableSorted(t *testing.T) {
	a1 := quickAssess(t, device.K20(), 9)
	a2 := quickAssess(t, device.XeonPhi(), 10)
	rows := RatioTable([]*Assessment{a1, a2})
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].SDCRatio < rows[1].SDCRatio {
		t.Error("table not sorted descending")
	}
	// Xeon Phi must rank least thermally sensitive.
	if rows[0].Device != "XeonPhi" {
		t.Errorf("top row = %s, want XeonPhi", rows[0].Device)
	}
}

func TestShareTable(t *testing.T) {
	a := quickAssess(t, device.K20(), 11)
	envs := []fit.Environment{
		fit.DataCenter(fit.NYC()),
		fit.DataCenter(fit.Leadville()),
	}
	rows, err := ShareTable([]*Assessment{a}, envs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.SDCThermalShare < 0 || r.SDCThermalShare > 1 {
			t.Errorf("share out of range: %+v", r)
		}
		if r.TotalFIT <= 0 {
			t.Errorf("no FIT: %+v", r)
		}
	}
	if rows[1].SDCThermalShare <= rows[0].SDCThermalShare {
		t.Error("Leadville share should exceed NYC share")
	}
}

func TestAssessDeterministic(t *testing.T) {
	a1 := quickAssess(t, device.TitanX(), 12)
	a2 := quickAssess(t, device.TitanX(), 12)
	if a1.FastAvg.SDC != a2.FastAvg.SDC || a1.ThermalAvg.DUE != a2.ThermalAvg.DUE {
		t.Error("assessment not reproducible")
	}
	if math.Abs(float64(a1.Sigmas.SDCFast)-float64(a2.Sigmas.SDCFast)) > 0 {
		t.Error("sigmas not reproducible")
	}
}

func TestBudgetDefaults(t *testing.T) {
	b := Budget{}.withDefaults()
	if b.FastSeconds != 7200 || b.ThermalSeconds != 144000 || b.Boost != 1 {
		t.Errorf("defaults: %+v", b)
	}
}
