package experiments

import (
	"fmt"

	"neutronsim/internal/device"
	"neutronsim/internal/rng"
	"neutronsim/internal/spectrum"
	"neutronsim/internal/units"
)

// E9SensitivitySpan reproduces the Weulersse-et-al. observation the paper
// cites (§II): across memory devices, the thermal sensitivity spans from
// ≈1.4× down to ≈0.03× the high-energy sensitivity — entirely a function
// of how much ¹⁰B each part contains. We sweep the boron areal density of
// an SRAM-like part and report the thermal:fast cross-section ratio.
func E9SensitivitySpan(scale Scale, seed uint64) (Table, error) {
	n := 60000
	if scale == Full {
		n = 400000
	}
	s := rng.New(seed)
	chip := spectrum.ChipIR()
	rotax := spectrum.ROTAX()
	fast := func(st *rng.Stream) units.Energy { return chip.Sample(st) }
	thermal := func(st *rng.Stream) units.Energy { return rotax.Sample(st) }
	t := Table{
		ID:     "E9",
		Title:  "Thermal:fast sensitivity vs boron content (Weulersse span, §II)",
		Header: []string{"¹⁰B areal density [at/cm²]", "σ_thermal/σ_fast"},
	}
	var minRatio, maxRatio float64
	for _, boron := range []float64{3e12, 1e13, 3e13, 1e14, 3e14, 1e15} {
		d := device.K20() // SRAM-like planar part as the template
		d.Name = "SRAM-sweep"
		d.Boron10PerCm2 = boron
		r, err := device.MeasuredRatio(d, fast, thermal, n, s)
		if err != nil {
			return Table{}, err
		}
		inv := 1 / r // the paper's related work quotes thermal:fast
		t.Rows = append(t.Rows, []string{f3(boron), f3(inv)})
		if minRatio == 0 || inv < minRatio {
			minRatio = inv
		}
		if inv > maxRatio {
			maxRatio = inv
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("span covers %.3g – %.3g (paper quotes 0.03 – 1.4)", minRatio, maxRatio),
		"boron-free parts are immune to thermals (ratio → 0)",
	)
	return t, nil
}

// E11BPSG reproduces the historical borophosphosilicate-glass problem
// (§II, baumann1995boron): re-adding a BPSG layer multiplies the thermal
// error rate ≈8×, which is why manufacturers removed it.
func E11BPSG(scale Scale, seed uint64) (Table, error) {
	n := 100000
	if scale == Full {
		n = 600000
	}
	s := rng.New(seed)
	rotax := spectrum.ROTAX()
	thermal := func(st *rng.Stream) units.Energy { return rotax.Sample(st) }
	base := device.K20()
	bpsg := device.WithBPSG(base)
	depleted := device.BoronFree(base)
	t := Table{
		ID:     "E11",
		Title:  "BPSG ablation: thermal upset cross section (§II)",
		Header: []string{"variant", "σ_thermal [cm²]", "vs baseline"},
	}
	sigmaBase, err := base.UpsetCrossSection(thermal, n, s)
	if err != nil {
		return Table{}, err
	}
	for _, d := range []*device.Device{base, bpsg, depleted} {
		sigma, err := d.UpsetCrossSection(thermal, n, s)
		if err != nil {
			return Table{}, err
		}
		rel := "n/a"
		if sigmaBase > 0 {
			rel = fmt.Sprintf("%.2fx", float64(sigma)/float64(sigmaBase))
		}
		t.Rows = append(t.Rows, []string{d.Name, f3(float64(sigma)), rel})
	}
	t.Notes = append(t.Notes,
		"paper: BPSG increased upsets ~8×; removing boron entirely makes the device immune",
	)
	return t, nil
}
