package experiments

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"neutronsim/internal/core"
	"neutronsim/internal/device"
	"neutronsim/internal/physics"
	"neutronsim/internal/plot"
	"neutronsim/internal/rng"
	"neutronsim/internal/spectrum"
)

// E1Spectra regenerates Fig. 2: the ChipIR and ROTAX spectra on a lethargy
// scale, with the integral fluxes the paper quotes.
func E1Spectra(scale Scale, seed uint64) (Table, error) {
	n := 200000
	if scale == Full {
		n = 2000000
	}
	s := rng.New(seed)
	chip := spectrum.ChipIR()
	rotax := spectrum.ROTAX()
	hChip, err := spectrum.LethargyHistogram(chip, n, 60, s)
	if err != nil {
		return Table{}, err
	}
	hRotax, err := spectrum.LethargyHistogram(rotax, n, 60, s)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "E1",
		Title:  "Beamline flux per lethargy (Fig. 2)",
		Header: []string{"E [eV]", "ChipIR [n/cm²/s/lethargy]", "ROTAX [n/cm²/s/lethargy]"},
	}
	plChip := hChip.PerLethargy()
	plRotax := hRotax.PerLethargy()
	centers := make([]float64, hChip.Bins())
	for i := 0; i < hChip.Bins(); i++ {
		centers[i] = hChip.BinCenter(i)
		t.Rows = append(t.Rows, []string{
			f3(centers[i]), f3(plChip[i]), f3(plRotax[i]),
		})
	}
	t.Figures = append(t.Figures, NamedFigure{
		Name: "spectra",
		Figure: plot.Chart{
			Title:  "ChipIR vs ROTAX flux per lethargy (Fig. 2)",
			XLabel: "neutron energy [eV]",
			YLabel: "flux per lethargy [n/cm²/s]",
			LogX:   true,
			LogY:   true,
			Series: []plot.Series{
				{Name: "ChipIR", X: centers, Y: plChip},
				{Name: "ROTAX", X: centers, Y: plRotax},
			},
		},
	})
	t.Notes = append(t.Notes,
		fmt.Sprintf("ChipIR flux >10MeV = %.3g n/cm²/s (paper: 5.4e6)",
			float64(chip.FluxInBand(physics.BandFast))*fracAbove(hChip, 10e6, physics.BandFast)),
		fmt.Sprintf("ChipIR thermal flux = %.3g n/cm²/s (paper: 4e5)",
			float64(chip.FluxInBand(physics.BandThermal))),
		fmt.Sprintf("ROTAX total flux = %.3g n/cm²/s (paper: 2.72e6)",
			float64(rotax.TotalFlux())),
		fmt.Sprintf("ChipIR lethargy peak at %.3g eV (fast); ROTAX peak at %.3g eV (thermal)",
			peakCenter(hChip), peakCenter(hRotax)),
	)
	return t, nil
}

type lethargyHist interface {
	PerLethargy() []float64
	BinCenter(int) float64
	Bins() int
	IntegralBetween(lo, hi float64) float64
}

func peakCenter(h lethargyHist) float64 {
	pl := h.PerLethargy()
	best, bestV := 0, 0.0
	for i, v := range pl {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return h.BinCenter(best)
}

// fracAbove estimates which fraction of the fast-band weight lies above
// the threshold.
func fracAbove(h lethargyHist, threshold float64, band physics.EnergyBand) float64 {
	_ = band
	above := h.IntegralBetween(threshold, 1e12)
	fastTotal := h.IntegralBetween(1e6, 1e12)
	if fastTotal == 0 {
		return 0
	}
	return above / fastTotal
}

// assessCache memoizes full-catalog assessments: E2, E3 and E7 all consume
// the same matched campaigns, so one run per (scale, seed) serves all.
var (
	assessMu    sync.Mutex
	assessCache = map[assessKey][]*core.Assessment{}
)

type assessKey struct {
	scale Scale
	seed  uint64
}

// assessAll runs the matched-campaign assessment for every catalog device.
func assessAll(scale Scale, seed uint64) ([]*core.Assessment, error) {
	assessMu.Lock()
	defer assessMu.Unlock()
	key := assessKey{scale, seed}
	if cached, ok := assessCache[key]; ok {
		return cached, nil
	}
	budget := core.QuickBudget()
	if scale == Full {
		budget = core.Budget{FastSeconds: 2 * 3600, ThermalSeconds: 20 * 3600, Boost: 10}
	}
	out, err := core.AssessMany(device.All(), budget, seed, 0)
	if err != nil {
		return nil, err
	}
	assessCache[key] = out
	return out, nil
}

// E2CrossSections regenerates the normalized per-device, per-code cross
// sections (Fig. 1 and the companion figures). Values are normalized to
// the lowest cross section of each vendor, exactly as the paper does to
// avoid leaking absolute business-sensitive numbers.
func E2CrossSections(scale Scale, seed uint64) (Table, error) {
	as, err := assessAll(scale, seed)
	if err != nil {
		return Table{}, err
	}
	// Vendor minima over all (device, workload, beam, type) entries.
	type entry struct {
		vendor, device, wl, beam, kind string
		sigma                          float64
	}
	var entries []entry
	for _, a := range as {
		for _, wl := range a.Workloads {
			pair := a.PerWorkload[wl]
			push := func(beamName, kind string, sigma float64) {
				entries = append(entries, entry{
					vendor: a.Device.Vendor, device: a.Device.Name,
					wl: wl, beam: beamName, kind: kind, sigma: sigma,
				})
			}
			push("ChipIR", "SDC", pair.Fast.SDCCrossSection.Rate)
			push("ChipIR", "DUE", pair.Fast.DUECrossSection.Rate)
			push("ROTAX", "SDC", pair.Thermal.SDCCrossSection.Rate)
			push("ROTAX", "DUE", pair.Thermal.DUECrossSection.Rate)
		}
	}
	vendorMin := map[string]float64{}
	for _, e := range entries {
		if e.sigma <= 0 {
			continue
		}
		if m, ok := vendorMin[e.vendor]; !ok || e.sigma < m {
			vendorMin[e.vendor] = e.sigma
		}
	}
	t := Table{
		ID:     "E2",
		Title:  "Normalized cross sections per device and code",
		Header: []string{"device", "code", "beam", "type", "normalized σ"},
		Notes: []string{
			"normalized to each vendor's lowest cross section (paper's convention)",
		},
	}
	sort.SliceStable(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.device != b.device {
			return a.device < b.device
		}
		if a.wl != b.wl {
			return a.wl < b.wl
		}
		if a.beam != b.beam {
			return a.beam < b.beam
		}
		return a.kind < b.kind
	})
	for _, e := range entries {
		min := vendorMin[e.vendor]
		norm := 0.0
		if min > 0 {
			norm = e.sigma / min
		}
		t.Rows = append(t.Rows, []string{e.device, e.wl, e.beam, e.kind, f3(norm)})
	}
	return t, nil
}

// E3RatioTable regenerates Fig. cs_ratio: the device-average fast:thermal
// cross-section ratios for SDCs and DUEs.
func E3RatioTable(scale Scale, seed uint64) (Table, error) {
	as, err := assessAll(scale, seed)
	if err != nil {
		return Table{}, err
	}
	rows := core.RatioTable(as)
	paper := map[string][2]string{
		"XeonPhi":     {"10.14", "6.37"},
		"K20":         {"~2", "~3"},
		"TitanX":      {"~3", "~7"},
		"TitanV":      {"~2", "~6"},
		"APU-CPU":     {"~2.5", "~1.5"},
		"APU-GPU":     {"~2.5", "~1.25"},
		"APU-CPU+GPU": {"~2.5", "1.18"},
		"Zynq7000":    {"2.33", "rare"},
	}
	t := Table{
		ID:     "E3",
		Title:  "Average cross-section ratio fast:thermal (Fig. cs_ratio)",
		Header: []string{"device", "SDC ratio", "SDC 95% CI", "DUE ratio", "DUE 95% CI", "paper SDC", "paper DUE"},
	}
	for _, r := range rows {
		p := paper[r.Device]
		sdc, due := "n/a", "n/a"
		sdcCI, dueCI := "", ""
		if !math.IsNaN(r.SDCRatio) {
			sdc = f3(r.SDCRatio)
			sdcCI = fmt.Sprintf("[%s, %s]", f3(r.SDCLo), f3(r.SDCHi))
		}
		if !math.IsNaN(r.DUERatio) {
			due = f3(r.DUERatio)
			dueCI = fmt.Sprintf("[%s, %s]", f3(r.DUELo), f3(r.DUEHi))
		}
		t.Rows = append(t.Rows, []string{r.Device, sdc, sdcCI, due, dueCI, p[0], p[1]})
	}
	t.Notes = append(t.Notes,
		"the higher the ratio, the lower the thermal sensitivity relative to fast neutrons",
	)
	var labels []string
	var sdcVals, dueVals []float64
	for _, r := range rows {
		if math.IsNaN(r.SDCRatio) || math.IsNaN(r.DUERatio) {
			continue
		}
		labels = append(labels, r.Device)
		sdcVals = append(sdcVals, r.SDCRatio)
		dueVals = append(dueVals, r.DUERatio)
	}
	if len(labels) > 0 {
		t.Figures = append(t.Figures, NamedFigure{
			Name: "ratios",
			Figure: plot.BarChart{
				Title:  "Fast:thermal cross-section ratio (Fig. cs_ratio)",
				YLabel: "ratio",
				Labels: labels,
				Groups: []plot.BarGroup{
					{Name: "SDC", Values: sdcVals},
					{Name: "DUE", Values: dueVals},
				},
			},
		})
	}
	return t, nil
}
