package experiments

import (
	"fmt"

	"neutronsim/internal/beam"
	"neutronsim/internal/checkpoint"
	"neutronsim/internal/core"
	"neutronsim/internal/device"
	"neutronsim/internal/fit"
	"neutronsim/internal/fleet"
	"neutronsim/internal/spectrum"
	"neutronsim/internal/units"
)

// E13FPGAPrecision reproduces the companion study's FPGA observation
// preserved in the paper's source: implementing MNIST in double precision
// takes about twice the fabric resources, roughly doubling the high-energy
// cross section but almost quadrupling the thermal one.
func E13FPGAPrecision(scale Scale, seed uint64) (Table, error) {
	fast := 600.0
	thermal := 3600.0
	if scale == Full {
		fast, thermal = 3600, 6*3600
	}
	t := Table{
		ID:     "E13",
		Title:  "FPGA MNIST precision: single vs double (companion study)",
		Header: []string{"variant", "σ_SDC ChipIR [cm²]", "σ_SDC ROTAX [cm²]"},
	}
	var sigmaF, sigmaT [2]float64
	for i, double := range []bool{false, true} {
		d := device.FPGAPrecision(double)
		d.SensitiveFraction *= 50 // statistics accelerator; cancels in ratios
		fres, err := beam.Run(beam.Config{
			Device: d, WorkloadName: "MNIST", Beam: spectrum.ChipIR(),
			DurationSeconds: fast, Seed: seed + uint64(i),
		})
		if err != nil {
			return Table{}, err
		}
		tres, err := beam.Run(beam.Config{
			Device: d, WorkloadName: "MNIST", Beam: spectrum.ROTAX(),
			DurationSeconds: thermal, Seed: seed + 10 + uint64(i),
		})
		if err != nil {
			return Table{}, err
		}
		sigmaF[i] = fres.SDCCrossSection.Rate
		sigmaT[i] = tres.SDCCrossSection.Rate
		t.Rows = append(t.Rows, []string{d.Name, f3(sigmaF[i]), f3(sigmaT[i])})
	}
	if sigmaF[0] > 0 && sigmaT[0] > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("double/single fast ratio = %.2f (companion study: ~2, tracks area)",
				sigmaF[1]/sigmaF[0]),
			fmt.Sprintf("double/single thermal ratio = %.2f (companion study: almost 4)",
				sigmaT[1]/sigmaT[0]),
		)
	}
	return t, nil
}

// E14FieldStudy runs the fleet error-log pipeline: a year of a two-class
// machine room (dry aisle vs near the cooling loops), then recovers the
// rates from the log and tests the paper's prediction that the
// water-adjacent nodes fail more.
func E14FieldStudy(scale Scale, seed uint64) (Table, error) {
	nodes, days := 2000, 120
	if scale == Full {
		nodes, days = 8000, 365
	}
	site := fit.AtAltitude("Los Alamos", 2231)
	sigmas := fit.Sigmas{ // node-level: accelerator + unprotected DRAM
		SDCFast: 8e-7, SDCThermal: 8e-7,
		DUEFast: 3e-7, DUEThermal: 3e-7,
	}
	log, err := fleet.Simulate(fleet.Config{
		Classes: []fleet.NodeClass{
			{Name: "dry-aisle", Count: nodes,
				Env: fit.Environment{Location: site, ConcreteFloor: true}, Sigmas: sigmas},
			{Name: "near-cooling", Count: nodes,
				Env: fit.DataCenter(site), Sigmas: sigmas},
		},
		Days:            days,
		RainProbability: 0.25,
		Seed:            seed,
	})
	if err != nil {
		return Table{}, err
	}
	rep, err := fleet.Analyze(log)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "E14",
		Title:  "Fleet field study: node placement vs error rate (§II/§VI)",
		Header: []string{"class", "node-hours", "SDC", "DUE", "measured SDC FIT", "measured DUE FIT"},
	}
	for _, cr := range rep.PerClass {
		t.Rows = append(t.Rows, []string{
			cr.Class, f3(cr.NodeHours),
			fmt.Sprintf("%d", cr.SDC), fmt.Sprintf("%d", cr.DUE),
			f3(float64(cr.MeasuredSDCFIT)), f3(float64(cr.MeasuredDUEFIT)),
		})
	}
	for _, c := range rep.Comparisons {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%s vs %s: rate ratio %.3f, p=%.3g (significant: %v)",
			c.ClassB, c.ClassA, c.Total.Ratio, c.Total.PValue, c.Total.Significant))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"rainy vs dry hours fleet-wide: ratio %.3f, p=%.3g",
		rep.RainEffect.Ratio, rep.RainEffect.PValue))
	return t, nil
}

// E15Checkpointing implements the paper's closing suggestion (§VI): tune
// the checkpoint frequency to the weather. A Trinity-like aggregate DUE
// rate moves with the thermal flux, so rainy days warrant a shorter
// checkpoint interval.
func E15Checkpointing(scale Scale, seed uint64) (Table, error) {
	budget := core.QuickBudget()
	if scale == Full {
		budget = core.Budget{FastSeconds: 2 * 3600, ThermalSeconds: 20 * 3600, Boost: 10}
	}
	// Per-node DUE rate from the most thermally DUE-sensitive part of the
	// catalog (the APU, whose CPU-GPU sync logic the paper flags).
	a, err := core.Assess(device.APU(device.APUCPUGPU), []string{"BFS"}, budget, seed)
	if err != nil {
		return Table{}, err
	}
	site := fit.AtAltitude("Los Alamos", 2231)
	sunnyRep, err := a.FIT(fit.DataCenter(site))
	if err != nil {
		return Table{}, err
	}
	rainyEnv := fit.DataCenter(site)
	rainyEnv.Raining = true
	rainyRep, err := a.FIT(rainyEnv)
	if err != nil {
		return Table{}, err
	}
	// A 9000-node machine: system MTBF is node MTBF / nodes.
	const nodes = 9000
	sunnyDUE := units.FIT(float64(sunnyRep.DUE.Total()) * nodes)
	rainyDUE := units.FIT(float64(rainyRep.DUE.Total()) * nodes)
	// A week with a wet spell.
	week := []checkpoint.Day{
		{Raining: false}, {Raining: false}, {Raining: true}, {Raining: true},
		{Raining: true}, {Raining: false}, {Raining: false},
	}
	const deltaSeconds = 1800 // 30-minute full-system checkpoint
	plan, err := checkpoint.PlanSchedule(sunnyDUE, rainyDUE, deltaSeconds, week)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "E15",
		Title:  "Weather-aware checkpoint schedule (§VI suggestion)",
		Header: []string{"day", "weather", "MTBF [h]", "interval [min]", "adaptive waste", "static waste"},
	}
	for i, d := range plan.Days {
		weather := "sunny"
		if d.Raining {
			weather = "rainy"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i+1), weather,
			f3(d.MTBFSeconds / 3600),
			f3(d.IntervalSeconds / 60),
			pct(d.AdaptiveWaste), pct(d.StaticWaste),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("system DUE rate: %.3g FIT sunny, %.3g FIT rainy (%d nodes)",
			float64(sunnyDUE), float64(rainyDUE), nodes),
		fmt.Sprintf("adaptive policy saves %s of machine time over the week vs a sunny-calibrated static interval",
			pct(plan.Savings())),
		"the saving is modest because Daly's optimum is flat — the actionable part is the shorter rainy-day interval itself",
	)
	return t, nil
}
