package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func noteFloat(t *testing.T, note, prefix string) float64 {
	t.Helper()
	idx := strings.Index(note, prefix)
	if idx < 0 {
		t.Fatalf("note %q missing %q", note, prefix)
	}
	rest := strings.TrimSpace(note[idx+len(prefix):])
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		t.Fatalf("no value after %q in %q", prefix, note)
	}
	raw := strings.Trim(fields[0], ",%()")
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", raw, err)
	}
	return v
}

func TestE13PrecisionRatios(t *testing.T) {
	tbl, err := E13FPGAPrecision(Quick, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	fastRatio := noteFloat(t, findNote(t, tbl, "fast ratio"), "fast ratio =")
	thermalRatio := noteFloat(t, findNote(t, tbl, "thermal ratio"), "thermal ratio =")
	if fastRatio < 1.5 || fastRatio > 3 {
		t.Errorf("fast double/single ratio = %v, want ~2", fastRatio)
	}
	if thermalRatio < 3 || thermalRatio > 5.5 {
		t.Errorf("thermal double/single ratio = %v, want ~4", thermalRatio)
	}
	if thermalRatio <= fastRatio {
		t.Error("thermal ratio must exceed fast ratio (the companion-study observation)")
	}
}

func TestE14FieldStudyShape(t *testing.T) {
	tbl, err := E14FieldStudy(Quick, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("%d classes", len(tbl.Rows))
	}
	// The rain effect must be visible even at quick scale (38% shift).
	rain := findNote(t, tbl, "rainy vs dry")
	ratio := noteFloat(t, rain, "ratio")
	if ratio < 1.1 {
		t.Errorf("rain ratio = %v, want clearly above 1", ratio)
	}
}

func TestE15CheckpointingShape(t *testing.T) {
	tbl, err := E15Checkpointing(Quick, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("%d days", len(tbl.Rows))
	}
	// Rainy-day intervals must be shorter than sunny ones.
	var sunny, rainy float64
	for _, row := range tbl.Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("parse interval %q: %v", row[3], err)
		}
		switch row[1] {
		case "sunny":
			sunny = v
		case "rainy":
			rainy = v
		}
	}
	if rainy >= sunny {
		t.Errorf("rainy interval %v should be below sunny %v", rainy, sunny)
	}
}

func TestRegistryIncludesExtensions(t *testing.T) {
	if len(All()) != 16 {
		t.Fatalf("%d experiments, want 16", len(All()))
	}
	for _, id := range []string{"E13", "E14", "E15", "E16"} {
		if _, err := ByID(id); err != nil {
			t.Errorf("%s not registered", id)
		}
	}
}

func TestE16ProductivityShape(t *testing.T) {
	tbl, err := E16Productivity(Quick, 14)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("%d scenarios", len(tbl.Rows))
	}
	// Goodput must decline from NYC to Los Alamos to rainy Los Alamos.
	parsePct := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
		if err != nil {
			t.Fatalf("parse %q: %v", cell, err)
		}
		return v
	}
	nyc := parsePct(tbl.Rows[0][3])
	la := parsePct(tbl.Rows[1][3])
	rainy := parsePct(tbl.Rows[2][3])
	if !(nyc > la && la > rainy) {
		t.Errorf("goodput ordering wrong: NYC %v, LA %v, rainy %v", nyc, la, rainy)
	}
	// Simulation must agree with the analytic prediction within 2 points.
	for i, row := range tbl.Rows {
		sim, analytic := parsePct(row[3]), parsePct(row[4])
		if d := sim - analytic; d < -2 || d > 2 {
			t.Errorf("row %d: simulated %v vs analytic %v", i, sim, analytic)
		}
	}
}
