package experiments

import (
	"fmt"
	"strings"

	"neutronsim/internal/beam"
	"neutronsim/internal/device"
	"neutronsim/internal/faultinject"
	"neutronsim/internal/materials"
	"neutronsim/internal/memsim"
	"neutronsim/internal/rng"
	"neutronsim/internal/spectrum"
	"neutronsim/internal/stats"
	"neutronsim/internal/transport"
	"neutronsim/internal/units"
	"neutronsim/internal/workload"
)

// AllAblations lists the design-choice ablations called out in DESIGN.md §5.
func AllAblations() []Descriptor {
	return []Descriptor{
		{"A1", "transport scattering anisotropy vs moderation factors", A1TransportAnisotropy},
		{"A2", "fault-injection timing granularity vs measured AVF", A2InjectionTiming},
		{"A3", "ECC on/off vs DDR thermal FIT", A3ECCFIT},
		{"A4", "multi-board derating vs single-board cross sections", A4Derating},
		{"A5", "thermal-band boundary 0.5 eV vs 0.4 eV (Cd cutoff)", A5ThermalBoundary},
		{"A6", "fault-injection AVF vs problem size", A6ProblemSize},
		{"A7", "device-sample cross-section variation (~10%)", A7SampleVariation},
	}
}

// A1TransportAnisotropy checks how sensitive the water/concrete moderation
// factors are to the isotropic-scattering approximation by re-running the
// albedo study with forward-biased re-emission.
func A1TransportAnisotropy(scale Scale, seed uint64) (Table, error) {
	n := transportBudget(scale)
	s := rng.New(seed)
	t := Table{
		ID:     "A1",
		Title:  "Thermal albedo vs scattering anisotropy",
		Header: []string{"moderator", "forward bias", "thermal albedo"},
	}
	for _, mat := range []*materials.Material{materials.Water(), materials.Concrete()} {
		thickness := 5.08
		if mat.Name() == "concrete" {
			thickness = 30
		}
		for _, bias := range []float64{0, 0.2, 0.4} {
			tally, err := transport.SimulateWithOptions(
				[]transport.Slab{{Material: mat, Thickness: thickness}},
				n, atmosphericFast, s, transport.Options{ForwardBias: bias})
			if err != nil {
				return Table{}, err
			}
			t.Rows = append(t.Rows, []string{
				mat.Name(), f3(bias), f3(tally.ReflectedThermalFraction()),
			})
		}
	}
	t.Notes = append(t.Notes,
		"forward-peaked scattering reduces back-scatter; the calibrated coupling factor absorbs the difference",
	)
	return t, nil
}

// A2InjectionTiming compares measuring AVF with faults injected at a fixed
// early step against faults spread uniformly over the execution — the
// step-granularity choice of the injector.
func A2InjectionTiming(scale Scale, seed uint64) (Table, error) {
	runs := 300
	if scale == Full {
		runs = 2000
	}
	s := rng.New(seed)
	t := Table{
		ID:     "A2",
		Title:  "AVF vs fault-injection timing",
		Header: []string{"benchmark", "timing", "SDC frac", "DUE frac", "masked frac"},
	}
	for _, name := range []string{"MxM", "BFS", "YOLO"} {
		w, err := workload.New(name)
		if err != nil {
			return Table{}, err
		}
		inj, err := faultinject.NewInjector(w, 42, faultinject.Config{})
		if err != nil {
			return Table{}, err
		}
		template := device.Fault{Target: device.TargetMemory, Bits: 1}
		measure := func(fixedStep bool) (faultinject.AVF, error) {
			avf := faultinject.AVF{Runs: runs}
			for i := 0; i < runs; i++ {
				step := 0
				if !fixedStep {
					step = s.Intn(w.Steps())
				}
				res := inj.Run([]faultinject.Timed{{Step: step, Fault: template}}, s)
				switch res.Outcome {
				case faultinject.OutcomeSDC:
					avf.SDC++
				case faultinject.OutcomeDUE:
					avf.DUE++
				default:
					avf.Masked++
				}
			}
			return avf, nil
		}
		for _, mode := range []struct {
			label string
			fixed bool
		}{{"step 0 only", true}, {"uniform steps", false}} {
			avf, err := measure(mode.fixed)
			if err != nil {
				return Table{}, err
			}
			t.Rows = append(t.Rows, []string{
				name, mode.label,
				pct(avf.SDCFraction()), pct(avf.DUEFraction()), pct(avf.MaskedFraction()),
			})
		}
	}
	t.Notes = append(t.Notes,
		"early faults have the whole execution to propagate; uniform timing (the default) is the beam-faithful choice",
	)
	return t, nil
}

// A3ECCFIT quantifies what SECDED buys for the DDR thermal FIT: with ECC,
// only multi-bit (SEFI) words survive.
func A3ECCFIT(scale Scale, seed uint64) (Table, error) {
	hours := memoryHours(scale)
	t := Table{
		ID:     "A3",
		Title:  "DDR thermal FIT with and without SECDED",
		Header: []string{"module", "events", "ECC-corrected words", "uncorrectable words", "residual event share"},
	}
	for i, spec := range []memsim.ModuleSpec{memsim.DDR3Module(), memsim.DDR4Module()} {
		hrs := hours
		if spec.Generation == memsim.DDR4 {
			hrs *= 4
		}
		res, err := memsim.Run(memsim.Config{
			Spec:            spec,
			Band:            memsim.ThermalBeam,
			Flux:            spectrum.ROTAXTotalFlux,
			DurationSeconds: hrs * 3600,
			ECC:             true,
			Seed:            seed + uint64(i),
		})
		if err != nil {
			return Table{}, err
		}
		residual := 0.0
		if res.Events > 0 {
			residual = float64(res.ByCategory[memsim.SEFI]) / float64(res.Events)
		}
		t.Rows = append(t.Rows, []string{
			spec.Generation.String(),
			fmt.Sprintf("%d", res.Events),
			fmt.Sprintf("%d", res.ECCCorrected),
			fmt.Sprintf("%d", res.ECCUncorrectable),
			pct(residual),
		})
	}
	t.Notes = append(t.Notes,
		"paper: transients/intermittents are single-bit (SECDED corrects them); SEFIs are not",
	)
	return t, nil
}

// A4Derating verifies the multi-board ChipIR setup: a board at half flux
// (derating 0.5) must measure the same cross section as a board on the
// axis, which is what justifies testing several boards in parallel.
func A4Derating(scale Scale, seed uint64) (Table, error) {
	duration := 1.0
	if scale == Full {
		duration = 20
	}
	d := device.K20()
	d.SensitiveFraction *= 200 // statistics accelerator; cancels in σ
	t := Table{
		ID:     "A4",
		Title:  "Cross section vs beam derating (multi-board ChipIR setup)",
		Header: []string{"derating", "fluence [n/cm²]", "SDC", "σ_SDC [cm²]"},
	}
	for _, derating := range []float64{1.0, 0.5, 0.25} {
		res, err := beam.Run(beam.Config{
			Device:          d,
			WorkloadName:    "MxM",
			Beam:            spectrum.ChipIR(),
			DurationSeconds: duration * 3600 * derating, // equal statistics budget
			Derating:        derating,
			Seed:            seed,
		})
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			f3(derating), f3(float64(res.Fluence)),
			fmt.Sprintf("%d", res.SDC), f3(res.SDCCrossSection.Rate),
		})
	}
	t.Notes = append(t.Notes,
		"cross sections agree across deratings: off-axis boards measure the same physics",
	)
	return t, nil
}

// A5ThermalBoundary measures how the thermal-band bookkeeping shifts if the
// band boundary moves from the paper's 0.5 eV to the 0.4 eV cadmium cutoff.
func A5ThermalBoundary(scale Scale, seed uint64) (Table, error) {
	n := 100000
	if scale == Full {
		n = 1000000
	}
	s := rng.New(seed)
	t := Table{
		ID:     "A5",
		Title:  "Thermal-band flux share vs boundary definition",
		Header: []string{"beam", "share < 0.4 eV", "share < 0.5 eV", "difference"},
	}
	for _, sp := range []spectrum.Spectrum{spectrum.ChipIR(), spectrum.ROTAX()} {
		var below04, below05 int
		for i := 0; i < n; i++ {
			e := sp.Sample(s)
			if e < units.Energy(0.4) {
				below04++
			}
			if e < units.Energy(0.5) {
				below05++
			}
		}
		f04 := float64(below04) / float64(n)
		f05 := float64(below05) / float64(n)
		t.Rows = append(t.Rows, []string{sp.Name(), pct(f04), pct(f05), pct(f05 - f04)})
	}
	t.Notes = append(t.Notes,
		"the Maxwellian sits far below either boundary, so the 0.4 vs 0.5 eV choice is immaterial",
	)
	return t, nil
}

// A6ProblemSize measures how the fault-injection AVF depends on the
// problem size — a check that the workload-level masking behind the
// code-to-code cross-section differences is not an artifact of the chosen
// input dimensions.
func A6ProblemSize(scale Scale, seed uint64) (Table, error) {
	runs := 250
	if scale == Full {
		runs = 1500
	}
	s := rng.New(seed)
	t := Table{
		ID:     "A6",
		Title:  "AVF vs problem size",
		Header: []string{"benchmark", "size", "SDC frac", "DUE frac", "masked frac"},
	}
	cases := []struct {
		label string
		build func() workload.Workload
	}{
		{"MxM 12", func() workload.Workload { return workload.NewMxM(12) }},
		{"MxM 24", func() workload.Workload { return workload.NewMxM(24) }},
		{"MxM 48", func() workload.Workload { return workload.NewMxM(48) }},
		{"BFS 256", func() workload.Workload { return workload.NewBFS(256, 4) }},
		{"BFS 1024", func() workload.Workload { return workload.NewBFS(1024, 4) }},
		{"BFS 4096", func() workload.Workload { return workload.NewBFS(4096, 4) }},
	}
	for _, c := range cases {
		inj, err := faultinject.NewInjector(c.build(), 42, faultinject.Config{})
		if err != nil {
			return Table{}, err
		}
		avf, err := faultinject.MeasureAVF(inj,
			device.Fault{Target: device.TargetMemory, Bits: 1}, runs, s)
		if err != nil {
			return Table{}, err
		}
		parts := strings.SplitN(c.label, " ", 2)
		t.Rows = append(t.Rows, []string{
			parts[0], parts[1],
			pct(avf.SDCFraction()), pct(avf.DUEFraction()), pct(avf.MaskedFraction()),
		})
	}
	t.Notes = append(t.Notes,
		"single-fault AVF is size-stable for dense kernels; sparse/control-heavy codes shift with structure size",
	)
	return t, nil
}

// A7SampleVariation reproduces the companion-study remark that the
// high-energy error-rate variation among samples of the same device is
// about 10%: several manufacturing samples of the K20 are put through the
// same ChipIR campaign and the spread of their cross sections is reported.
func A7SampleVariation(scale Scale, seed uint64) (Table, error) {
	samples := 6
	duration := 1200.0
	if scale == Full {
		samples = 12
		duration = 7200
	}
	s := rng.New(seed)
	t := Table{
		ID:     "A7",
		Title:  "Cross-section variation across device samples",
		Header: []string{"sample", "σ_SDC ChipIR [cm²]", "vs sample mean"},
	}
	base := device.K20()
	base.SensitiveFraction *= 200 // statistics accelerator, identical for all samples
	var sigmas []float64
	for i := 0; i < samples; i++ {
		dut := device.Sample(base, s)
		res, err := beam.Run(beam.Config{
			Device:          dut,
			WorkloadName:    "MxM",
			Beam:            spectrum.ChipIR(),
			DurationSeconds: duration,
			Seed:            seed + uint64(i),
		})
		if err != nil {
			return Table{}, err
		}
		sigmas = append(sigmas, res.SDCCrossSection.Rate)
	}
	summary, err := stats.Summarize(sigmas)
	if err != nil {
		return Table{}, err
	}
	for i, sigma := range sigmas {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("#%d", i+1), f3(sigma),
			fmt.Sprintf("%+.1f%%", (sigma/summary.Mean-1)*100),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("relative spread (std/mean) = %s (companion studies: ~10%%)",
			pct(summary.Std/summary.Mean)),
	)
	return t, nil
}
