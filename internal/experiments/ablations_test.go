package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestAllAblationsRegistered(t *testing.T) {
	as := AllAblations()
	if len(as) != 7 {
		t.Fatalf("%d ablations, want 7", len(as))
	}
	for _, a := range as {
		if a.Run == nil || !strings.HasPrefix(a.ID, "A") {
			t.Errorf("bad ablation %+v", a)
		}
	}
}

func TestA1AnisotropyReducesAlbedo(t *testing.T) {
	tbl, err := A1TransportAnisotropy(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	// Within each moderator, albedo should fall as forward bias rises.
	parse := func(row []string) float64 {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", row[2], err)
		}
		return v
	}
	waterIso, waterBiased := parse(tbl.Rows[0]), parse(tbl.Rows[2])
	if waterBiased >= waterIso {
		t.Errorf("forward bias should reduce water albedo: %v vs %v", waterBiased, waterIso)
	}
}

func TestA2TimingMatters(t *testing.T) {
	tbl, err := A2InjectionTiming(Quick, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 { // 3 benchmarks × 2 timings
		t.Fatalf("%d rows", len(tbl.Rows))
	}
}

func TestA3ECCResidual(t *testing.T) {
	tbl, err := A3ECCFIT(Quick, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		corrected, _ := strconv.Atoi(row[2])
		if corrected == 0 {
			t.Errorf("%s: ECC corrected nothing", row[0])
		}
	}
}

func TestA4DeratingConsistency(t *testing.T) {
	tbl, err := A4Derating(Quick, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	// Cross sections across deratings must agree within a factor ~2.
	var sigmas []float64
	for _, row := range tbl.Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", row[3], err)
		}
		if v <= 0 {
			t.Fatalf("zero sigma at derating %s", row[0])
		}
		sigmas = append(sigmas, v)
	}
	for _, v := range sigmas[1:] {
		if r := v / sigmas[0]; r < 0.5 || r > 2 {
			t.Errorf("derated cross section off by %vx", r)
		}
	}
}

func TestA5BoundaryImmaterial(t *testing.T) {
	tbl, err := A5ThermalBoundary(Quick, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		diff, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "%"), 64)
		if err != nil {
			t.Fatalf("parse %q: %v", row[3], err)
		}
		if diff > 1.0 {
			t.Errorf("%s: boundary choice moved the thermal share by %v%%", row[0], diff)
		}
	}
}

func TestA6ProblemSize(t *testing.T) {
	tbl, err := A6ProblemSize(Quick, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
}

func TestA7SampleVariationNearTenPercent(t *testing.T) {
	tbl, err := A7SampleVariation(Quick, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("%d samples", len(tbl.Rows))
	}
	note := findNote(t, tbl, "relative spread")
	spread := noteFloat(t, note, "=")
	// Process sigma 0.10 plus Poisson noise: accept a broad band.
	if spread < 2 || spread > 30 {
		t.Errorf("sample spread = %v%%, want near 10%%", spread)
	}
}
