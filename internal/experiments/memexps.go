package experiments

import (
	"fmt"

	"neutronsim/internal/fit"
	"neutronsim/internal/memsim"
	"neutronsim/internal/spectrum"
	"neutronsim/internal/units"
)

// memoryHours returns the thermal campaign length per scale.
func memoryHours(scale Scale) float64 {
	if scale == Full {
		return 60
	}
	return 8
}

// E4DDR regenerates Fig. DDRCS and the commented DDR_errors figure: DDR3
// vs DDR4 thermal cross sections per Gbit, flip-direction bias, category
// shares, and the single/multi-bit split.
func E4DDR(scale Scale, seed uint64) (Table, error) {
	hours := memoryHours(scale)
	t := Table{
		ID:    "E4",
		Title: "DDR thermal-neutron cross sections and taxonomy (Fig. DDRCS)",
		Header: []string{"module", "σ/Gbit [cm²]", "95% CI", "bias", "bias frac",
			"transient", "intermittent", "permanent", "SEFI", "single-bit", "multi-bit"},
	}
	var sig3, sig4 float64
	for i, spec := range []memsim.ModuleSpec{memsim.DDR3Module(), memsim.DDR4Module()} {
		hrs := hours
		if spec.Generation == memsim.DDR4 {
			hrs *= 4 // DDR4 errors are ~10× rarer; match statistics
		}
		res, err := memsim.Run(memsim.Config{
			Spec:            spec,
			Band:            memsim.ThermalBeam,
			Flux:            spectrum.ROTAXTotalFlux,
			DurationSeconds: hrs * 3600,
			Seed:            seed + uint64(i),
		})
		if err != nil {
			return Table{}, err
		}
		dir, bias := res.DirectionBias()
		total := float64(res.Events)
		share := func(c memsim.Category) string {
			if total == 0 {
				return "n/a"
			}
			return pct(float64(res.ByCategory[c]) / total)
		}
		t.Rows = append(t.Rows, []string{
			spec.String(),
			f3(res.SigmaPerGbit.Rate),
			fmt.Sprintf("[%s, %s]", f3(res.SigmaPerGbit.Lower), f3(res.SigmaPerGbit.Upper)),
			dir.String(), pct(bias),
			share(memsim.Transient), share(memsim.Intermittent),
			share(memsim.Permanent), share(memsim.SEFI),
			fmt.Sprintf("%d", res.SingleBitEvents),
			fmt.Sprintf("%d", res.MultiBitEvents),
		})
		if spec.Generation == memsim.DDR3 {
			sig3 = res.SigmaPerGbit.Rate
		} else {
			sig4 = res.SigmaPerGbit.Rate
		}
	}
	if sig4 > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("DDR3/DDR4 σ ratio = %.1f (paper: ~one order of magnitude)", sig3/sig4))
	}
	t.Notes = append(t.Notes,
		"paper: >95% of errors in one direction (DDR3 1→0, DDR4 0→1)",
		"paper: permanents >50% on DDR4, <30% on DDR3; SEFIs on both",
		"paper: all transient/intermittent errors single-bit (SECDED sufficient)",
		"ChipIR runs aborted after minutes due to permanent-fault pile-up (see TestChipIRAbortsOnPermanents)",
	)
	return t, nil
}

// E6SupercomputerFIT regenerates the commented HPC_FIT figure: projected
// whole-system DDR thermal FIT for the June-2019 Top-10, from measured
// per-Gbit cross sections and site-adjusted thermal fluxes.
func E6SupercomputerFIT(scale Scale, seed uint64) (Table, error) {
	hours := memoryHours(scale)
	sigmas := map[memsim.Generation]units.CrossSection{}
	var eccResidual float64
	for i, spec := range []memsim.ModuleSpec{memsim.DDR3Module(), memsim.DDR4Module()} {
		hrs := hours
		if spec.Generation == memsim.DDR4 {
			hrs *= 4
		}
		res, err := memsim.Run(memsim.Config{
			Spec:            spec,
			Band:            memsim.ThermalBeam,
			Flux:            spectrum.ROTAXTotalFlux,
			DurationSeconds: hrs * 3600,
			ECC:             true,
			Seed:            seed + 100 + uint64(i),
		})
		if err != nil {
			return Table{}, err
		}
		sigmas[spec.Generation] = units.CrossSection(res.SigmaPerGbit.Rate)
		if res.Events > 0 {
			// SEFI share defeats SECDED; use the DDR3 (worst) share.
			r := float64(res.ByCategory[memsim.SEFI]) / float64(res.Events)
			if r > eccResidual {
				eccResidual = r
			}
		}
	}
	rows, err := fit.ProjectTop10(fit.Top10(), sigmas, eccResidual)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    "E6",
		Title: "Projected DDR thermal FIT, Top-10 supercomputers (HPC_FIT)",
		Header: []string{"machine", "site", "alt [m]", "memory [TB]", "gen",
			"thermal FIT", "rainy-day FIT", "with SECDED"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Machine.Name, r.Machine.Site,
			fmt.Sprintf("%.0f", r.Machine.AltitudeM),
			fmt.Sprintf("%.0f", r.Machine.MemoryTB),
			r.Machine.Generation.String(),
			f3(float64(r.ThermalFIT)),
			f3(float64(r.RainyDayFIT)),
			f3(float64(r.WithECC)),
		})
	}
	t.Notes = append(t.Notes,
		"Trinity's altitude (Los Alamos, 2231 m) dominates its per-TB rate",
		"DDR3 machines (TaihuLight, Tianhe-2A) pay the ~10× cross-section penalty",
		fmt.Sprintf("SECDED residual (SEFI share) = %s", pct(eccResidual)),
	)
	return t, nil
}
