package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestAllRegistered(t *testing.T) {
	ds := All()
	if len(ds) != 16 {
		t.Fatalf("%d experiments, want 16", len(ds))
	}
	for _, d := range ds {
		if d.Run == nil {
			t.Errorf("%s has no runner", d.ID)
		}
		got, err := ByID(d.ID)
		if err != nil || got.ID != d.ID {
			t.Errorf("ByID(%s) failed: %v", d.ID, err)
		}
	}
	if _, err := ByID("E99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTableFormatAndCSV(t *testing.T) {
	tbl := Table{
		ID:     "T",
		Title:  "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "x,y"}, {"22", `q"u`}},
		Notes:  []string{"hello"},
	}
	text := tbl.Format()
	for _, want := range []string{"== T: demo ==", "a", "22", "note: hello"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format missing %q:\n%s", want, text)
		}
	}
	csv := tbl.CSV()
	if !strings.Contains(csv, `"x,y"`) || !strings.Contains(csv, `"q""u"`) {
		t.Errorf("CSV quoting wrong:\n%s", csv)
	}
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Errorf("CSV has %d lines", len(lines))
	}
}

func TestScaleString(t *testing.T) {
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Error("scale names")
	}
}

// noteValue extracts the first float following "= " in a note containing
// the given marker.
func findNote(t *testing.T, tbl Table, marker string) string {
	t.Helper()
	for _, n := range tbl.Notes {
		if strings.Contains(n, marker) {
			return n
		}
	}
	t.Fatalf("no note containing %q in %v", marker, tbl.Notes)
	return ""
}

func TestE1SpectraShape(t *testing.T) {
	tbl, err := E1Spectra(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 60 {
		t.Fatalf("%d bins", len(tbl.Rows))
	}
	findNote(t, tbl, "paper: 5.4e6")
	findNote(t, tbl, "paper: 2.72e6")
	// ChipIR peak fast, ROTAX peak thermal.
	peaks := findNote(t, tbl, "lethargy peak")
	if !strings.Contains(peaks, "fast") || !strings.Contains(peaks, "thermal") {
		t.Errorf("peak note: %s", peaks)
	}
}

func TestE4DDRShape(t *testing.T) {
	tbl, err := E4DDR(Quick, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	note := findNote(t, tbl, "σ ratio")
	// Extract the ratio value and require the order-of-magnitude claim.
	fields := strings.Fields(note)
	for i, f := range fields {
		if f == "=" && i+1 < len(fields) {
			v, err := strconv.ParseFloat(fields[i+1], 64)
			if err == nil {
				if v < 4 || v > 25 {
					t.Errorf("DDR3/DDR4 ratio %v outside order-of-magnitude band", v)
				}
				return
			}
		}
	}
	t.Fatalf("could not parse ratio from %q", note)
}

func TestE5DetectorShape(t *testing.T) {
	tbl, err := E5Detector(Quick, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 14 { // 9 days before + 5 after
		t.Fatalf("%d day rows", len(tbl.Rows))
	}
	findNote(t, tbl, "paper: ~24%")
	findNote(t, tbl, "detected step")
}

func TestE6Shape(t *testing.T) {
	tbl, err := E6SupercomputerFIT(Quick, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 10 {
		t.Fatalf("%d machines", len(tbl.Rows))
	}
}

func TestE9Span(t *testing.T) {
	tbl, err := E9SensitivitySpan(Quick, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("%d boron points", len(tbl.Rows))
	}
	findNote(t, tbl, "span covers")
}

func TestE10Shielding(t *testing.T) {
	tbl, err := E10Shielding(Quick, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("%d shields", len(tbl.Rows))
	}
	// 1mm Cd row: thermal ~0%, fast high.
	for _, row := range tbl.Rows {
		if row[0] == "cadmium" && row[1] == "1 mm" {
			if row[2] != "0.0%" {
				t.Errorf("Cd thermal transmission %s", row[2])
			}
			if !strings.HasPrefix(row[3], "9") {
				t.Errorf("Cd fast transmission %s, want >90%%", row[3])
			}
		}
	}
}

func TestE11BPSGFactor(t *testing.T) {
	tbl, err := E11BPSG(Quick, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("%d variants", len(tbl.Rows))
	}
	// The BPSG row's relative factor should be near 8.
	for _, row := range tbl.Rows {
		if strings.Contains(row[0], "BPSG") {
			v, err := strconv.ParseFloat(strings.TrimSuffix(row[2], "x"), 64)
			if err != nil {
				t.Fatalf("parse %q: %v", row[2], err)
			}
			if v < 6 || v > 10 {
				t.Errorf("BPSG factor = %v, want ~8", v)
			}
		}
		if strings.Contains(row[0], "depleted") && row[1] != "0" {
			t.Errorf("depleted variant sigma = %s, want 0", row[1])
		}
	}
}

func TestE12Moderation(t *testing.T) {
	tbl, err := E12Moderation(Quick, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("%d moderators", len(tbl.Rows))
	}
	findNote(t, tbl, "paper: +44%")
}

func TestCampaignExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog campaigns are slow")
	}
	t3, err := E3RatioTable(Quick, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 8 {
		t.Fatalf("E3 rows: %d", len(t3.Rows))
	}
	// XeonPhi must rank first (least thermally sensitive).
	if t3.Rows[0][0] != "XeonPhi" {
		t.Errorf("E3 top device = %s", t3.Rows[0][0])
	}
	// E2 and E7 reuse the cached assessments — must be fast now.
	t2, err := E2CrossSections(Quick, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) == 0 {
		t.Error("E2 empty")
	}
	t7, err := E7FITShares(Quick, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(t7.Rows) != 16 { // 8 devices × 2 environments
		t.Errorf("E7 rows: %d", len(t7.Rows))
	}
	t8, err := E8Rain(Quick, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(t8.Rows) != 2 {
		t.Errorf("E8 rows: %d", len(t8.Rows))
	}
}
