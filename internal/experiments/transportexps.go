package experiments

import (
	"fmt"

	"neutronsim/internal/materials"
	"neutronsim/internal/rng"
	"neutronsim/internal/transport"
	"neutronsim/internal/units"
)

func transportBudget(scale Scale) int {
	if scale == Full {
		return 100000
	}
	return 15000
}

func atmosphericFast(st *rng.Stream) units.Energy {
	return units.Energy(st.WattEnergy(0.988, 2.249) * 1e6)
}

// E10Shielding regenerates the §VI shielding discussion: thin cadmium or
// inches of borated plastic remove the thermal flux while leaving the fast
// flux almost untouched.
func E10Shielding(scale Scale, seed uint64) (Table, error) {
	n := transportBudget(scale)
	s := rng.New(seed)
	t := Table{
		ID:     "E10",
		Title:  "Shield transmission: thermal vs fast neutrons (§VI)",
		Header: []string{"shield", "thickness", "thermal transmission", "fast transmission"},
	}
	type shield struct {
		name      string
		mat       *materials.Material
		thickness float64
		label     string
	}
	shields := []shield{
		{"cadmium", materials.CadmiumSheet(), 0.05, "0.5 mm"},
		{"cadmium", materials.CadmiumSheet(), 0.1, "1 mm"},
		{"cadmium", materials.CadmiumSheet(), 0.2, "2 mm"},
		{"borated PE (5%)", materials.BoratedPolyethylene(0.05), 2.54, "1 in"},
		{"borated PE (5%)", materials.BoratedPolyethylene(0.05), 5.08, "2 in"},
		{"borated PE (5%)", materials.BoratedPolyethylene(0.05), 10.16, "4 in"},
	}
	for _, sh := range shields {
		thermalTrans, _, err := transport.ShieldTransmission(sh.mat, sh.thickness, 0.0253, n, s)
		if err != nil {
			return Table{}, err
		}
		fastTrans, _, err := transport.ShieldTransmission(sh.mat, sh.thickness, 14*units.MeV, n, s)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{sh.name, sh.label, pct(thermalTrans), pct(fastTrans)})
	}
	t.Notes = append(t.Notes,
		"paper: thermal flux can be shielded with thin Cd or inches of boron plastic,",
		"but Cd is toxic when heated and B-plastic thermally isolates the device (§VI)",
	)
	return t, nil
}

// E12Moderation regenerates the transport result behind the paper's flux
// adjustments: the thermal-flux enhancement caused by water (Tin-II
// measured +24%) and a concrete slab (≈+20%), and their combination
// (+44%).
func E12Moderation(scale Scale, seed uint64) (Table, error) {
	n := transportBudget(scale)
	s := rng.New(seed)
	const coupling = 0.5 // calibrated once against the water measurement
	ratio := 1 / 0.31    // NYC bare fast:thermal
	t := Table{
		ID:     "E12",
		Title:  "Moderator-induced thermal flux enhancement (§VI)",
		Header: []string{"moderator", "thickness", "thermal albedo", "enhancement", "paper"},
	}
	cases := []struct {
		name      string
		mat       *materials.Material
		thickness float64
		label     string
		paper     string
	}{
		{"water", materials.Water(), 5.08, "2 in", "+24% (Tin-II)"},
		{"concrete", materials.Concrete(), 30, "30 cm slab", "≈+20%"},
		{"polyethylene", materials.Polyethylene(), 5.08, "2 in", "-"},
	}
	sum := 0.0
	for _, c := range cases {
		albedo, err := transport.ThermalAlbedo(c.mat, c.thickness, n, atmosphericFast, s)
		if err != nil {
			return Table{}, err
		}
		enh := albedo * coupling * ratio
		if c.name != "polyethylene" {
			sum += enh
		}
		t.Rows = append(t.Rows, []string{c.name, c.label, f3(albedo), pct(enh), c.paper})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("water + concrete combined: %s (paper: +44%%)", pct(sum)),
		"coupling factor 0.5 calibrated once on the water measurement; concrete is then a prediction",
	)
	return t, nil
}
