package experiments

import (
	"neutronsim/internal/core"
	"neutronsim/internal/device"
	"neutronsim/internal/fit"
)

// E7FITShares regenerates the commented FIT-rates-all-devices figure: the
// percentage of each device's SDC and DUE FIT due to thermal neutrons at
// NYC and Leadville, with the +44% material adjustment applied to the
// thermal flux.
func E7FITShares(scale Scale, seed uint64) (Table, error) {
	as, err := assessAll(scale, seed)
	if err != nil {
		return Table{}, err
	}
	envs := []fit.Environment{
		fit.DataCenter(fit.NYC()),
		fit.DataCenter(fit.Leadville()),
	}
	rows, err := core.ShareTable(as, envs)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "E7",
		Title:  "Thermal share of total FIT (FIT-rates-all-devices)",
		Header: []string{"device", "environment", "SDC thermal share", "DUE thermal share", "total FIT"},
		Notes: []string{
			"paper quotes: XeonPhi 4.2% (NYC SDC) … 10.6% (Leadville DUE);",
			"K20 29% SDC at Leadville; APU CPU+GPU 39% DUE at Leadville",
			"thermal flux includes the +44% concrete+water adjustment",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Device, r.Environment,
			pct(r.SDCThermalShare), pct(r.DUEThermalShare),
			f3(float64(r.TotalFIT)),
		})
	}
	return t, nil
}

// E8Rain regenerates the rain scenario of §VI: an autonomous-vehicle GPU
// (TitanX running YOLO) on a sunny vs a rainy day — rain doubles the
// thermal flux and with it the thermal FIT contribution.
func E8Rain(scale Scale, seed uint64) (Table, error) {
	budget := core.QuickBudget()
	if scale == Full {
		budget = core.Budget{FastSeconds: 2 * 3600, ThermalSeconds: 20 * 3600, Boost: 10}
	}
	a, err := core.Assess(device.TitanX(), []string{"YOLO"}, budget, seed)
	if err != nil {
		return Table{}, err
	}
	street := fit.Environment{Location: fit.NYC(), ConcreteFloor: true} // asphalt/concrete road
	rainy := street
	rainy.Raining = true
	t := Table{
		ID:     "E8",
		Title:  "Autonomous-vehicle GPU error rate, sunny vs rainy (§VI)",
		Header: []string{"weather", "SDC FIT", "DUE FIT", "total FIT", "thermal share"},
	}
	for _, env := range []fit.Environment{street, rainy} {
		rep, err := a.FIT(env)
		if err != nil {
			return Table{}, err
		}
		weather := "sunny"
		if env.Raining {
			weather = "rainy"
		}
		total := rep.Total()
		share := float64(rep.SDC.Thermal+rep.DUE.Thermal) / float64(total)
		t.Rows = append(t.Rows, []string{
			weather,
			f3(float64(rep.SDC.Total())),
			f3(float64(rep.DUE.Total())),
			f3(float64(total)),
			pct(share),
		})
	}
	t.Notes = append(t.Notes,
		"paper (after ziegler2003): thermal flux can be 2× higher during a thunderstorm",
	)
	return t, nil
}
