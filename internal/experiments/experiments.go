// Package experiments regenerates every table and figure of the paper's
// evaluation (and the quantitative claims embedded in its text), one
// function per artifact. The cmd/paperfigs binary and the repository's
// top-level benchmarks are thin wrappers around this package; see
// EXPERIMENTS.md for the paper-vs-measured record.
package experiments

import (
	"fmt"
	"strings"

	"neutronsim/internal/plot"
)

// Scale selects the statistics budget.
type Scale int

// Budget scales.
const (
	// Quick finishes every experiment in seconds with wide error bars.
	Quick Scale = iota + 1
	// Full uses production statistics (minutes of CPU for the campaign
	// experiments).
	Full
)

// String names the scale.
func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Figures carries renderable SVG figures for experiments that have a
	// graphical artifact in the paper.
	Figures []NamedFigure
}

// NamedFigure pairs a figure with a file-friendly name.
type NamedFigure struct {
	Name   string
	Figure plot.Figure
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// or quotes are quoted).
func (t Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Descriptor registers one experiment.
type Descriptor struct {
	ID       string
	Artifact string // the paper figure/table it regenerates
	Run      func(scale Scale, seed uint64) (Table, error)
}

// All lists every experiment in paper order.
func All() []Descriptor {
	return []Descriptor{
		{"E1", "Fig. 2 (beamline spectra, lethargy scale)", E1Spectra},
		{"E2", "Fig. 1 / cs_xeon_gpus / cs_APU_FPGA (normalized cross sections)", E2CrossSections},
		{"E3", "Fig. cs_ratio (fast:thermal cross-section ratios)", E3RatioTable},
		{"E4", "Fig. DDRCS + DDR_errors (DDR taxonomy and cross sections)", E4DDR},
		{"E5", "Fig. turkeypan (Tin-II water experiment)", E5Detector},
		{"E6", "Fig. HPC_FIT (Top-10 supercomputer DDR thermal FIT)", E6SupercomputerFIT},
		{"E7", "Fig. FIT-rates-all-devices (thermal share of FIT)", E7FITShares},
		{"E8", "§VI rain scenario (thermal flux ×2)", E8Rain},
		{"E9", "§II Weulersse span (thermal:fast sensitivity range)", E9SensitivitySpan},
		{"E10", "§VI shielding (Cd and borated polyethylene)", E10Shielding},
		{"E11", "§II BPSG history (≈8× error rate)", E11BPSG},
		{"E12", "§VI moderation (water +24%, concrete ≈+20%)", E12Moderation},
		{"E13", "companion-study FPGA precision (double ≈2× fast, ≈4× thermal)", E13FPGAPrecision},
		{"E14", "field study: node placement & weather in error logs (§II/§VI)", E14FieldStudy},
		{"E15", "weather-aware checkpoint scheduling (§VI suggestion)", E15Checkpointing},
		{"E16", "goodput under neutron-induced DUEs (§I productivity claim)", E16Productivity},
	}
}

// ByID finds an experiment.
func ByID(id string) (Descriptor, error) {
	for _, d := range All() {
		if d.ID == id {
			return d, nil
		}
	}
	return Descriptor{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

func f3(v float64) string { return fmt.Sprintf("%.3g", v) }

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
