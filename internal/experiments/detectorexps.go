package experiments

import (
	"fmt"

	"neutronsim/internal/detector"
	"neutronsim/internal/plot"
	"neutronsim/internal/rng"
	"neutronsim/internal/stats"
)

// E5Detector regenerates Fig. "turkeypan": the Tin-II hourly thermal count
// series with two inches of water placed over the detector partway
// through, and the detected step.
func E5Detector(scale Scale, seed uint64) (Table, error) {
	s := rng.New(seed)
	cfg := detector.Config{}
	if scale == Quick {
		cfg.EfficiencySamples = 5000
	}
	det, err := detector.New(cfg, s)
	if err != nil {
		return Table{}, err
	}
	expCfg := detector.WaterExperimentConfig{Detector: det}
	if scale == Quick {
		expCfg.TransportSamples = 8000
	}
	res, err := detector.RunWaterExperiment(expCfg, s)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "E5",
		Title:  "Tin-II thermal counts, water placed over detector (Fig. turkeypan)",
		Header: []string{"day", "mean bare [counts/h]", "mean shielded [counts/h]", "mean thermal estimate [counts/h]"},
	}
	days := res.Series.Hours() / 24
	for d := 0; d < days; d++ {
		lo, hi := d*24, (d+1)*24
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", d+1),
			f3(stats.Mean(res.Series.Bare[lo:hi])),
			f3(stats.Mean(res.Series.Shielded[lo:hi])),
			f3(stats.Mean(res.Series.ThermalEstimate[lo:hi])),
		})
	}
	chart, chartErr := plot.TimeSeries(
		"Tin-II thermal counts, water placed over detector (Fig. turkeypan)",
		"hour", "counts/h",
		[]string{"thermal estimate (bare - shielded)", "24h moving average"},
		res.Series.ThermalEstimate,
		stats.MovingAverage(res.Series.ThermalEstimate, 24),
	)
	if chartErr == nil {
		t.Figures = append(t.Figures, NamedFigure{Name: "counts", Figure: chart})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("transport-computed water enhancement = %s (paper: ~24%%)", pct(res.Enhancement)),
		fmt.Sprintf("detected step at hour %d (water placed at hour %d), rel. change %s, z=%.1f",
			res.Change.Index, res.WaterHour, pct(res.Change.RelChange), res.Change.ZScore),
		fmt.Sprintf("detector efficiency %.2f, Cd shield leak %.2g", det.Efficiency, det.ShieldLeak),
	)
	return t, nil
}
