package experiments

import (
	"fmt"

	"neutronsim/internal/checkpoint"
	"neutronsim/internal/core"
	"neutronsim/internal/device"
	"neutronsim/internal/fit"
	"neutronsim/internal/jobsim"
	"neutronsim/internal/rng"
	"neutronsim/internal/units"
)

// E16Productivity closes the loop on the paper's introduction — COTS
// unreliability means "lower scientific productivity" — with a
// discrete-event job simulation: a machine built from an assessed device
// runs a continuous job with checkpointing under failure rates derived
// from the beam measurements, at sea level and at altitude, dry and rainy.
// The measured goodput also validates the analytic Young/Daly model used
// everywhere else.
func E16Productivity(scale Scale, seed uint64) (Table, error) {
	budget := core.QuickBudget()
	horizonDays := 365.0
	if scale == Full {
		budget = core.Budget{FastSeconds: 2 * 3600, ThermalSeconds: 20 * 3600, Boost: 10}
		horizonDays = 3650
	}
	a, err := core.Assess(device.APU(device.APUCPUGPU), []string{"BFS"}, budget, seed)
	if err != nil {
		return Table{}, err
	}
	const nodes = 9000
	const delta = 1800.0 // 30-minute system checkpoint
	s := rng.New(seed)
	t := Table{
		ID:    "E16",
		Title: "Scientific productivity vs environment (goodput simulation)",
		Header: []string{"environment", "system MTBF [h]", "Daly interval [min]",
			"simulated goodput", "analytic goodput", "failures"},
	}
	scenarios := []struct {
		name string
		env  fit.Environment
	}{
		{"NYC data center", fit.DataCenter(fit.NYC())},
		{"Los Alamos data center", fit.DataCenter(fit.AtAltitude("Los Alamos", 2231))},
		{"Los Alamos, rainy", func() fit.Environment {
			e := fit.DataCenter(fit.AtAltitude("Los Alamos", 2231))
			e.Raining = true
			return e
		}()},
	}
	for _, sc := range scenarios {
		rep, err := a.FIT(sc.env)
		if err != nil {
			return Table{}, err
		}
		systemDUE := units.FIT(float64(rep.DUE.Total()) * nodes)
		mtbf := checkpoint.MTBFSeconds(systemDUE)
		tau, err := checkpoint.DalyInterval(delta, mtbf)
		if err != nil {
			return Table{}, err
		}
		p := jobsim.Params{
			MTBFSeconds:       mtbf,
			IntervalSeconds:   tau,
			CheckpointSeconds: delta,
			RestartSeconds:    delta,
			HorizonSeconds:    horizonDays * 86400,
		}
		res, err := jobsim.Simulate(p, s)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			sc.name,
			f3(mtbf / 3600),
			f3(tau / 60),
			pct(res.Goodput),
			pct(jobsim.PredictedGoodput(p)),
			fmt.Sprintf("%d", res.Failures),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d-node machine of APU-CPU+GPU accelerators, %.0f-min checkpoints, %.0f simulated days per row",
			nodes, delta/60, horizonDays),
		"the paper's intro in numbers: the same machine loses goodput moving to altitude, and more in rain",
	)
	return t, nil
}
