package cluster

import (
	"fmt"
	"testing"
)

func TestOwnerDeterministicAndRankConsistent(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:2", "http://c:3"}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		owner := Owner(key, nodes)
		if owner == "" {
			t.Fatalf("empty owner for %q", key)
		}
		if owner != Owner(key, []string{nodes[2], nodes[0], nodes[1]}) {
			t.Errorf("owner of %q depends on node order", key)
		}
		rank := Rank(key, nodes)
		if len(rank) != len(nodes) || rank[0] != owner {
			t.Errorf("Rank(%q)[0] = %v, want owner %q", key, rank, owner)
		}
	}
	if Owner("k", nil) != "" {
		t.Error("Owner with no nodes should be empty")
	}
}

// TestOwnerSpreadsKeys guards against a degenerate hash: over many keys
// every node should own a non-trivial share.
func TestOwnerSpreadsKeys(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:2", "http://c:3"}
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[Owner(fmt.Sprintf("key-%d", i), nodes)]++
	}
	for _, n := range nodes {
		if counts[n] < keys/10 {
			t.Errorf("node %s owns only %d/%d keys", n, counts[n], keys)
		}
	}
}

// TestOwnerMinimalDisruption: removing one node must not move keys
// between the surviving nodes.
func TestOwnerMinimalDisruption(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:2", "http://c:3"}
	survivors := []string{"http://a:1", "http://c:3"}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := Owner(key, nodes)
		after := Owner(key, survivors)
		if before != "http://b:2" && after != before {
			t.Errorf("key %q moved %s -> %s though its owner survived", key, before, after)
		}
	}
}
