package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"neutronsim/internal/beam"
	"neutronsim/internal/server"
	"neutronsim/internal/telemetry/trace"
)

// Client speaks the neutrond peer protocol: shard-range execution over
// the internal POST /v1/shards surface and whole-campaign forwarding
// over the public submit-and-poll API. All calls retry transient
// failures with exponential backoff and full jitter, honor Retry-After,
// and propagate the caller's W3C traceparent so a fan-out is one trace.
type Client struct {
	http *http.Client
	// retries is the number of attempts per call (default 3).
	retries int
	// backoff is the base delay; attempt n sleeps rand[0, backoff*2^n)
	// (full jitter), clamped by maxBackoff.
	backoff    time.Duration
	maxBackoff time.Duration
	// pollEvery paces job polling on the forward path.
	pollEvery time.Duration
}

// NewClient builds a peer client. A nil httpClient gets a default with a
// generous timeout — shard ranges are synchronous and compute-bound, so
// the per-request timeout must cover real work, not just network time.
func NewClient(httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 2 * time.Minute}
	}
	return &Client{
		http:       httpClient,
		retries:    3,
		backoff:    50 * time.Millisecond,
		maxBackoff: 2 * time.Second,
		pollEvery:  10 * time.Millisecond,
	}
}

// transientError marks failures worth retrying against the same peer.
type transientError struct {
	err        error
	retryAfter time.Duration // from Retry-After, 0 when absent
}

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// sleepBeforeRetry waits the backoff for attempt (0-based), preferring
// the server's Retry-After hint when it is longer. Full jitter — a
// uniform draw over [0, cap) rather than cap itself — keeps N clients
// rejected together from retrying together.
func (c *Client) sleepBeforeRetry(ctx context.Context, attempt int, hint time.Duration) error {
	d := c.backoff << attempt
	if d > c.maxBackoff {
		d = c.maxBackoff
	}
	d = time.Duration(rand.Int63n(int64(d) + 1))
	if hint > d {
		d = hint
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// post sends one JSON POST with traceparent propagation. A 429/503
// answer or transport error returns *transientError; other non-2xx
// statuses are permanent (the request itself is bad — retrying cannot
// help, and the coordinator should fail fast, not mask a protocol bug).
func (c *Client) post(ctx context.Context, url string, body any) (int, http.Header, []byte, error) {
	blob, err := json.Marshal(body)
	if err != nil {
		return 0, nil, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(blob))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if sp := trace.FromContext(ctx); sp != nil {
		if tp := sp.Traceparent(); tp != "" {
			req.Header.Set(trace.Header, tp)
		}
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, nil, nil, &transientError{err: err}
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, &transientError{err: err}
	}
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		hint := time.Duration(0)
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, perr := strconv.Atoi(s); perr == nil && secs > 0 {
				hint = time.Duration(secs) * time.Second
			}
		}
		return resp.StatusCode, resp.Header, payload, &transientError{
			err:        fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(payload)),
			retryAfter: hint,
		}
	}
	return resp.StatusCode, resp.Header, payload, nil
}

// postRetry runs post with the retry policy.
func (c *Client) postRetry(ctx context.Context, url string, body any) (int, http.Header, []byte, error) {
	var lastErr error
	for attempt := 0; attempt < c.retries; attempt++ {
		status, hdr, payload, err := c.post(ctx, url, body)
		if err == nil {
			return status, hdr, payload, nil
		}
		te, transient := err.(*transientError)
		if !transient || ctx.Err() != nil {
			return status, hdr, payload, err
		}
		lastErr = err
		if attempt+1 < c.retries {
			hint := te.retryAfter
			if serr := c.sleepBeforeRetry(ctx, attempt, hint); serr != nil {
				return 0, nil, nil, serr
			}
		}
	}
	return 0, nil, nil, fmt.Errorf("cluster: %d attempts failed: %w", c.retries, lastErr)
}

// RunShardRange executes shards [lo, hi) of campaign on peer.
func (c *Client) RunShardRange(ctx context.Context, peer string, campaign *server.CampaignRequest, lo, hi int) (*beam.Partial, error) {
	status, _, payload, err := c.postRetry(ctx, peer+"/v1/shards", server.ShardRequest{
		Campaign: campaign, Lo: lo, Hi: hi,
	})
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("cluster: %s/v1/shards [%d,%d): status %d: %s", peer, lo, hi, status, bytes.TrimSpace(payload))
	}
	var out server.ShardResponse
	if err := json.Unmarshal(payload, &out); err != nil {
		return nil, fmt.Errorf("cluster: decode shard response: %w", err)
	}
	if out.Partial == nil {
		return nil, fmt.Errorf("cluster: %s returned empty shard response", peer)
	}
	return out.Partial, nil
}

// Serving tiers a forwarded campaign can be answered from, as reported
// in ForwardResult.Tier.
const (
	TierCache     = "cache"     // peer's exact result cache
	TierSurrogate = "surrogate" // peer's fitted approximate model
	TierExact     = "exact"     // fresh exact Monte Carlo job
)

// ForwardResult is a whole-campaign forward's outcome.
type ForwardResult struct {
	Envelope *server.ResultEnvelope
	// CacheHit reports the peer answered from its result cache — the
	// signal loadgen aggregates to show HRW routing concentrating keys.
	CacheHit bool
	// Tier is the serving tier that answered (TierCache, TierSurrogate
	// or TierExact), straight from the peer's X-Cache header; loadgen
	// breaks its latency quantiles down by it.
	Tier string
}

// Forward submits campaign to peer and waits for the result, polling the
// job until terminal. A cached or surrogate-served answer returns
// immediately with its tier marked.
func (c *Client) Forward(ctx context.Context, peer string, campaign *server.CampaignRequest) (*ForwardResult, error) {
	status, hdr, payload, err := c.postRetry(ctx, peer+"/v1/campaigns", campaign)
	if err != nil {
		return nil, err
	}
	switch status {
	case http.StatusOK: // served without a job: cache hit or surrogate answer
		var env server.ResultEnvelope
		if err := json.Unmarshal(payload, &env); err != nil {
			return nil, fmt.Errorf("cluster: decode cached result: %w", err)
		}
		res := &ForwardResult{Envelope: &env, Tier: TierExact}
		switch hdr.Get("X-Cache") {
		case "hit":
			res.CacheHit = true
			res.Tier = TierCache
		case "surrogate":
			res.Tier = TierSurrogate
		}
		return res, nil
	case http.StatusAccepted:
		var info server.JobInfo
		if err := json.Unmarshal(payload, &info); err != nil {
			return nil, fmt.Errorf("cluster: decode job info: %w", err)
		}
		return c.pollJob(ctx, peer, info.ID)
	default:
		return nil, fmt.Errorf("cluster: %s/v1/campaigns: status %d: %s", peer, status, bytes.TrimSpace(payload))
	}
}

func (c *Client) pollJob(ctx context.Context, peer, id string) (*ForwardResult, error) {
	url := peer + "/v1/jobs/" + id
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return nil, &transientError{err: err}
		}
		payload, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, &transientError{err: rerr}
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("cluster: poll %s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(payload))
		}
		var info server.JobInfo
		if err := json.Unmarshal(payload, &info); err != nil {
			return nil, fmt.Errorf("cluster: decode job info: %w", err)
		}
		switch info.State {
		case server.StateDone:
			var env server.ResultEnvelope
			if err := json.Unmarshal(info.Result, &env); err != nil {
				return nil, fmt.Errorf("cluster: decode job result: %w", err)
			}
			return &ForwardResult{Envelope: &env, Tier: TierExact}, nil
		case server.StateFailed, server.StateCanceled:
			return nil, fmt.Errorf("cluster: job %s on %s %s: %s", id, peer, info.State, info.Error)
		}
		t := time.NewTimer(c.pollEvery)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}
