package cluster

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"neutronsim/internal/beam"
	"neutronsim/internal/checkpoint"
	"neutronsim/internal/server"
)

// TestCheckpointResumeShardRanges ties the paper's checkpoint/restart
// policy (internal/checkpoint) to shard-range execution: a coordinator
// that checkpoints completed partials on a Daly-interval cadence and then
// crashes can resume by executing only the ranges missing from the last
// checkpoint — and the resumed campaign is bit-identical to an
// uninterrupted one. The second half pins the double-count guard: a
// resume that sloppily re-runs an already-checkpointed range is rejected
// at assembly, never silently merged.
func TestCheckpointResumeShardRanges(t *testing.T) {
	ctx := context.Background()
	req := clusterReq(t, "TitanX", "ROTAX", 640)
	cfg, err := server.BeamConfig(req, 2)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := beam.RunContext(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	info, err := beam.PlanInfo(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Shards < 8 {
		t.Fatalf("want a multi-shard plan, got %d", info.Shards)
	}

	// Checkpoint cadence from the Daly optimum: with a per-range cost
	// standing in for wall time, tau/rangeCost ranges complete between
	// checkpoints. The exact figures only shape the cut point; what's
	// under test is that any policy-derived prefix restores losslessly.
	const rangeCost, ckptCost, mtbf = 5.0, 2.0, 120.0
	tau, err := checkpoint.DalyInterval(ckptCost, mtbf)
	if err != nil {
		t.Fatal(err)
	}
	perCkpt := int(tau / rangeCost)
	if perCkpt < 1 || perCkpt >= info.Shards {
		t.Fatalf("degenerate cadence %d for %d shards", perCkpt, info.Shards)
	}

	// Run the campaign as single-shard ranges; "crash" after the last
	// full checkpoint, keeping only the checkpointed prefix.
	var checkpointed []*beam.Partial
	for lo := 0; lo < perCkpt; lo++ {
		p, err := beam.RunRange(ctx, cfg, lo, lo+1)
		if err != nil {
			t.Fatal(err)
		}
		checkpointed = append(checkpointed, p)
	}

	// Resume: only the missing suffix re-executes (in coarser ranges, as
	// a re-dispatching coordinator would).
	resumed := append([]*beam.Partial(nil), checkpointed...)
	mid := (perCkpt + info.Shards) / 2
	for _, r := range []beam.ShardRange{{Lo: perCkpt, Hi: mid}, {Lo: mid, Hi: info.Shards}} {
		p, err := beam.RunRange(ctx, cfg, r.Lo, r.Hi)
		if err != nil {
			t.Fatal(err)
		}
		resumed = append(resumed, p)
	}
	got, err := beam.AssemblePartials(ctx, cfg, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, direct) {
		t.Error("checkpoint-resumed campaign diverged from uninterrupted run")
	}

	// A resume that re-runs a checkpointed range must be rejected: the
	// overlap guard is what makes crash-redispatch double-count-safe.
	overlapping, err := beam.RunRange(ctx, cfg, perCkpt-1, info.Shards)
	if err != nil {
		t.Fatal(err)
	}
	bad := append(append([]*beam.Partial(nil), checkpointed...), overlapping)
	if _, err := beam.AssemblePartials(ctx, cfg, bad); err == nil || !strings.Contains(err.Error(), "double-count") {
		t.Errorf("overlapping resume should fail with double-count, got %v", err)
	}
}
