package cluster

import (
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"time"

	"neutronsim/internal/server"
	"neutronsim/internal/telemetry"
)

// BenchOptions shapes the single-node vs cluster comparison.
//
// The fleet's advantage on this machine is aggregate cache capacity, not
// CPU count: every node shares the same cores, so fanning compute out
// buys nothing, but HRW routing shards the key space across per-worker
// result caches. The bench therefore picks Keys larger than one node's
// cache (the single node thrashes and recomputes) but smaller than the
// fleet's combined capacity (each worker's key shard fits, so steady
// state answers from cache). The headline number is the saturation
// throughput ratio at equal offered load.
type BenchOptions struct {
	// Workers is the fleet size behind the coordinator (default 3).
	Workers int
	// Keys is the distinct-campaign key space (default 45).
	Keys int
	// CacheEntries bounds every node's result cache (default 16): one
	// node holds 16/45 of the keys, the 3-worker fleet all of them.
	CacheEntries int
	// Concurrency is the loadgen's closed-loop in-flight requests
	// (default 8).
	Concurrency int
	// Duration is each measured storm (default 3s).
	Duration time.Duration
	// CampaignSeconds sizes each key's compute so a recompute visibly
	// outweighs a forwarded cache hit (default 2000 beam-seconds, about
	// 200k runs — tens of milliseconds of CPU per miss).
	CampaignSeconds float64
	// Distribution is the loadgen key distribution (default uniform —
	// the worst case for a single small cache).
	Distribution string
}

func (o BenchOptions) withDefaults() BenchOptions {
	if o.Workers <= 0 {
		o.Workers = 3
	}
	if o.Keys <= 0 {
		o.Keys = 45
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 16
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.Duration <= 0 {
		o.Duration = 3 * time.Second
	}
	if o.CampaignSeconds <= 0 {
		o.CampaignSeconds = 2000
	}
	if o.Distribution == "" {
		o.Distribution = "uniform"
	}
	return o
}

// DefaultBenchOptions returns the CI configuration.
func DefaultBenchOptions() BenchOptions { return BenchOptions{}.withDefaults() }

// BenchReport is the published BENCH_cluster.json shape.
type BenchReport struct {
	Workers      int     `json:"workers"`
	Keys         int     `json:"keys"`
	CacheEntries int     `json:"cache_entries_per_node"`
	Concurrency  int     `json:"concurrency"`
	Distribution string  `json:"distribution"`
	CampaignSec  float64 `json:"campaign_seconds"`

	// IdentityBitExact is the conformance gate: a fanned-out and a
	// whole-routed campaign both DeepEqual the direct library result.
	IdentityBitExact bool `json:"identity_bit_exact"`

	SingleNode *Report `json:"single_node"`
	Cluster    *Report `json:"cluster"`

	// SaturationSpeedup is Cluster.Throughput / SingleNode.Throughput.
	SaturationSpeedup float64 `json:"saturation_speedup"`
}

// BenchCampaign maps key → request for the storm: campaigns whose cache
// keys differ by seed while their compute cost does not. The coarse
// ShardGrain keeps the plan under the coordinator's fan-out threshold,
// so storms exercise HRW whole-job routing — the cache-sharding path the
// bench is about.
func BenchCampaign(seconds float64) func(int) *server.CampaignRequest {
	return func(key int) *server.CampaignRequest {
		return &server.CampaignRequest{
			Kind: server.KindBeam,
			Seed: uint64(9000 + key),
			Beam: &server.BeamParams{
				Device:          "K20",
				Workload:        "MxM",
				Spectrum:        "ChipIR",
				DurationSeconds: seconds,
				RunSeconds:      0.01,
				CalSamples:      2000,
				ShardGrain:      65536,
			},
		}
	}
}

// benchServer builds one node with the bench's deliberately small result
// cache.
func benchServer(entries int) (*server.Server, *httptest.Server) {
	srv := server.New(server.Config{
		Workers:      8,
		CacheEntries: entries,
		Registry:     telemetry.NewRegistry(),
	})
	return srv, httptest.NewServer(srv.Handler())
}

// checkIdentity compares coordinator execution to the direct library
// call on both coordinator paths: shard-range fan-out and HRW whole-job
// routing.
func checkIdentity(ctx context.Context, coord *Coordinator) (bool, error) {
	fanReq, err := (&server.CampaignRequest{
		Kind: server.KindBeam,
		Seed: 8801,
		Beam: &server.BeamParams{
			Device: "K20", Workload: "MxM", Spectrum: "ROTAX",
			DurationSeconds: 20, RunSeconds: 0.01, CalSamples: 2000, ShardGrain: 32,
		},
	}).Normalize()
	if err != nil {
		return false, err
	}
	routeReq, err := BenchCampaign(20)(1).Normalize()
	if err != nil {
		return false, err
	}
	for _, req := range []*server.CampaignRequest{fanReq, routeReq} {
		want, err := server.Execute(ctx, req, 0)
		if err != nil {
			return false, err
		}
		got, err := coord.Execute(ctx, req, 0)
		if err != nil {
			return false, err
		}
		if !reflect.DeepEqual(got, want) {
			return false, nil
		}
	}
	return true, nil
}

// warm touches every key once so the measured storms compare steady
// states: compiled plans are shared process-wide either way, and each
// topology's result caches hold whatever their capacity can.
func warm(ctx context.Context, target string, keys int, campaign func(int) *server.CampaignRequest) error {
	client := NewClient(nil)
	client.pollEvery = 2 * time.Millisecond
	for k := 0; k < keys; k++ {
		if _, err := client.Forward(ctx, target, campaign(k)); err != nil {
			return fmt.Errorf("warm key %d: %w", k, err)
		}
	}
	return nil
}

// CompareBench runs the two topologies under the same storm and reports.
func CompareBench(ctx context.Context, o BenchOptions) (*BenchReport, error) {
	o = o.withDefaults()
	campaign := BenchCampaign(o.CampaignSeconds)

	// Single node: one server, one small cache.
	_, singleTS := benchServer(o.CacheEntries)
	defer singleTS.Close()

	// Cluster: coordinator in front of Workers nodes, same cache size
	// everywhere.
	var peerURLs []string
	for i := 0; i < o.Workers; i++ {
		_, ts := benchServer(o.CacheEntries)
		defer ts.Close()
		peerURLs = append(peerURLs, ts.URL)
	}
	coordCtx, stopCoord := context.WithCancel(ctx)
	defer stopCoord()
	coord := New(Config{
		Peers:          peerURLs,
		HealthInterval: 250 * time.Millisecond,
		Registry:       telemetry.NewRegistry(),
	})
	coord.Start(coordCtx)
	if len(coord.Peers().Healthy()) != o.Workers {
		return nil, fmt.Errorf("only %d/%d workers healthy", len(coord.Peers().Healthy()), o.Workers)
	}
	coordSrv := server.New(server.Config{
		Workers:      8,
		CacheEntries: o.CacheEntries,
		Execute:      coord.Execute,
		Registry:     telemetry.NewRegistry(),
	})
	coordTS := httptest.NewServer(coordSrv.Handler())
	defer coordTS.Close()

	identity, err := checkIdentity(ctx, coord)
	if err != nil {
		return nil, fmt.Errorf("identity check: %w", err)
	}

	if err := warm(ctx, singleTS.URL, o.Keys, campaign); err != nil {
		return nil, err
	}
	if err := warm(ctx, coordTS.URL, o.Keys, campaign); err != nil {
		return nil, err
	}

	load := func(target string) (*Report, error) {
		return RunLoad(ctx, LoadConfig{
			Target:       target,
			Concurrency:  o.Concurrency,
			Duration:     o.Duration,
			Keys:         o.Keys,
			Distribution: o.Distribution,
			Seed:         12345,
			Campaign:     campaign,
		})
	}
	single, err := load(singleTS.URL)
	if err != nil {
		return nil, fmt.Errorf("single-node storm: %w", err)
	}
	clustered, err := load(coordTS.URL)
	if err != nil {
		return nil, fmt.Errorf("cluster storm: %w", err)
	}

	rep := &BenchReport{
		Workers:          o.Workers,
		Keys:             o.Keys,
		CacheEntries:     o.CacheEntries,
		Concurrency:      o.Concurrency,
		Distribution:     o.Distribution,
		CampaignSec:      o.CampaignSeconds,
		IdentityBitExact: identity,
		SingleNode:       single,
		Cluster:          clustered,
	}
	if single.Throughput > 0 {
		rep.SaturationSpeedup = clustered.Throughput / single.Throughput
	}
	return rep, nil
}

// Gate enforces the bench's CI floors: distributed identity must hold
// and the fleet must saturate at ≥ minSpeedup× the single node.
func Gate(rep *BenchReport, minSpeedup float64) error {
	if !rep.IdentityBitExact {
		return fmt.Errorf("cluster bench: distributed results are not bit-identical to local execution")
	}
	if rep.SingleNode.Errors > 0 || rep.Cluster.Errors > 0 {
		return fmt.Errorf("cluster bench: storm errors (single %d, cluster %d)", rep.SingleNode.Errors, rep.Cluster.Errors)
	}
	if rep.SaturationSpeedup < minSpeedup {
		return fmt.Errorf("cluster bench: saturation speedup %.2fx below the %.1fx floor (single %.1f rps, cluster %.1f rps)",
			rep.SaturationSpeedup, minSpeedup, rep.SingleNode.Throughput, rep.Cluster.Throughput)
	}
	return nil
}
