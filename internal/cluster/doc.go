// Package cluster scales neutrond horizontally: a coordinator partitions
// a beam campaign's deterministic shard plan into half-open ranges, fans
// them out to peer neutrond workers over POST /v1/shards, and folds the
// returned per-shard tallies with beam.AssemblePartials — the same merge,
// in the same shard order, as a single-node run, so distributed results
// are bit-identical to local ones (DESIGN.md §15).
//
// The design leans on three properties the rest of the codebase already
// guarantees:
//
//   - Determinism: a campaign's shard plan and every shard's tally are
//     pure functions of the request, so any node can execute any range
//     and the coordinator can partition work it never runs.
//   - Idempotence: re-dispatching a range after a worker failure or
//     timeout can only reproduce identical tallies, and the assembler
//     rejects overlaps, so failure handling is double-count-safe.
//   - Order-determined merge: tallies fold in shard order regardless of
//     which peer produced them or when they arrived.
//
// Campaigns that do not decompose into shard ranges (non-beam kinds,
// or plans too small to be worth a network round trip) route whole to a
// peer chosen by rendezvous (HRW) hashing of the request's cache key.
// HRW gives every node the same key→peer map with no coordination, so
// the fleet's plan and result caches shard by key instead of every node
// re-deriving every plan — aggregate cache capacity, not CPU count, is
// what multiplies throughput on cache-heavy workloads.
//
// Health is polled from each peer's /readyz (whose JSON body carries
// queue depth and drain state); dispatch retries with exponential
// backoff and full jitter, honors Retry-After, and re-dispatches ranges
// from failed peers — to another peer when one is healthy, locally
// otherwise, so a coordinator with zero live peers degrades to exactly
// the single-node behavior.
package cluster
