package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"neutronsim/internal/server"
)

// peerState is one peer's last observed health.
type peerState struct {
	healthy bool
	// downUntil backs off re-probing a peer that just failed a dispatch:
	// MarkDown keeps it out of Healthy() until the deadline even if a
	// concurrent health poll says ready, so a flapping peer doesn't get
	// every re-dispatched range.
	downUntil time.Time
	ready     server.ReadyzInfo
}

// PeerSet tracks the health of a fixed list of peer base URLs by polling
// GET /readyz. A peer is healthy when its latest poll returned 200; the
// JSON ReadyzInfo body (queue depth, drain state) is retained for
// dispatch decisions and surfaced by Snapshot.
type PeerSet struct {
	peers  []string
	client *http.Client

	mu sync.Mutex
	st map[string]*peerState
}

// NewPeerSet builds a set over base URLs like "http://127.0.0.1:8441".
// Peers start unhealthy until the first Poll marks them up, so a
// coordinator never dispatches to an address nobody has answered from.
func NewPeerSet(peers []string, client *http.Client) *PeerSet {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	ps := &PeerSet{peers: append([]string(nil), peers...), client: client, st: map[string]*peerState{}}
	for _, p := range ps.peers {
		ps.st[p] = &peerState{}
	}
	return ps
}

// Peers returns the configured peer list (healthy or not), in order.
func (ps *PeerSet) Peers() []string { return append([]string(nil), ps.peers...) }

// Poll probes every peer's /readyz once, concurrently, and updates
// health. It returns the number of healthy peers.
func (ps *PeerSet) Poll(ctx context.Context) int {
	var wg sync.WaitGroup
	for _, p := range ps.peers {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			info, err := ps.probe(ctx, peer)
			ps.mu.Lock()
			st := ps.st[peer]
			st.healthy = err == nil
			if err == nil {
				st.ready = info
			}
			ps.mu.Unlock()
		}(p)
	}
	wg.Wait()
	ps.mu.Lock()
	defer ps.mu.Unlock()
	n := 0
	for _, st := range ps.st {
		if st.healthy {
			n++
		}
	}
	return n
}

func (ps *PeerSet) probe(ctx context.Context, peer string) (server.ReadyzInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/readyz", nil)
	if err != nil {
		return server.ReadyzInfo{}, err
	}
	resp, err := ps.client.Do(req)
	if err != nil {
		return server.ReadyzInfo{}, err
	}
	defer resp.Body.Close()
	var info server.ReadyzInfo
	if derr := json.NewDecoder(resp.Body).Decode(&info); derr != nil {
		return server.ReadyzInfo{}, fmt.Errorf("decode readyz: %w", derr)
	}
	if resp.StatusCode != http.StatusOK {
		return info, fmt.Errorf("readyz %s: status %d (%s)", peer, resp.StatusCode, info.Status)
	}
	return info, nil
}

// Run polls every interval until ctx is done — the coordinator's
// background health checker.
func (ps *PeerSet) Run(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			ps.Poll(ctx)
		}
	}
}

// Healthy returns the currently healthy peers, sorted, excluding any
// inside a MarkDown window. Sorting keeps the list deterministic for HRW
// ranking and tests.
func (ps *PeerSet) Healthy() []string {
	now := time.Now()
	ps.mu.Lock()
	defer ps.mu.Unlock()
	var out []string
	for p, st := range ps.st {
		if st.healthy && now.After(st.downUntil) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// MarkDown records a dispatch failure: the peer is held out of Healthy()
// for the cooldown, after which the poller's verdict rules again.
func (ps *PeerSet) MarkDown(peer string, cooldown time.Duration) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if st, ok := ps.st[peer]; ok {
		st.healthy = false
		st.downUntil = time.Now().Add(cooldown)
	}
}

// PeerHealth is one row of Snapshot.
type PeerHealth struct {
	Peer    string            `json:"peer"`
	Healthy bool              `json:"healthy"`
	Ready   server.ReadyzInfo `json:"ready"`
}

// Snapshot reports every peer's last observed state, in configured order.
func (ps *PeerSet) Snapshot() []PeerHealth {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	out := make([]PeerHealth, 0, len(ps.peers))
	for _, p := range ps.peers {
		st := ps.st[p]
		out = append(out, PeerHealth{Peer: p, Healthy: st.healthy, Ready: st.ready})
	}
	return out
}
