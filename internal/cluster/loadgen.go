package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"neutronsim/internal/server"
)

// LoadConfig shapes one loadgen storm: Concurrency workers submitting
// campaigns drawn from a Keys-sized key space against Target for
// Duration. The key distribution is the experiment's main knob — uniform
// exercises aggregate cache capacity, zipf concentrates load on hot keys
// the way real job mixes do.
type LoadConfig struct {
	// Target is the base URL jobs are submitted to (the coordinator).
	Target string
	// Concurrency is the number of in-flight submitters (default 4).
	Concurrency int
	// Duration bounds the storm (default 2s).
	Duration time.Duration
	// Keys is the number of distinct campaigns in the key space
	// (default 32). Distinct keys differ only by seed, so every key
	// costs the same compute when it misses.
	Keys int
	// Distribution is "uniform" or "zipf" (default uniform).
	Distribution string
	// ZipfS is the zipf skew parameter, > 1 (default 1.2).
	ZipfS float64
	// Seed drives key picking; the storm itself is reproducible.
	Seed uint64
	// Campaign maps a key index to its request. The default is a small
	// beam campaign with Seed varying by key.
	Campaign func(key int) *server.CampaignRequest
	// Client overrides the HTTP client (tests pass httptest clients).
	Client *http.Client
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Keys <= 0 {
		c.Keys = 32
	}
	if c.Distribution == "" {
		c.Distribution = "uniform"
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.Campaign == nil {
		c.Campaign = DefaultCampaign
	}
	return c
}

// DefaultCampaign is the loadgen's stock request for key: a small MxM
// beam campaign whose seed (and therefore cache key) varies by key while
// its compute cost does not.
func DefaultCampaign(key int) *server.CampaignRequest {
	return &server.CampaignRequest{
		Kind: server.KindBeam,
		Seed: uint64(1000 + key),
		Beam: &server.BeamParams{
			Device:          "K20",
			Workload:        "MxM",
			Spectrum:        "ChipIR",
			DurationSeconds: 2,
			CalSamples:      2000,
		},
	}
}

// Quantiles are latency percentiles in milliseconds.
type Quantiles struct {
	P50 float64 `json:"p50_ms"`
	P90 float64 `json:"p90_ms"`
	P99 float64 `json:"p99_ms"`
}

// TierLatency is the latency breakdown for one serving tier.
type TierLatency struct {
	Requests int64     `json:"requests"`
	Latency  Quantiles `json:"latency"`
}

// Report is one storm's outcome.
type Report struct {
	Target          string    `json:"target"`
	Concurrency     int       `json:"concurrency"`
	Distribution    string    `json:"distribution"`
	Keys            int       `json:"keys"`
	DurationSeconds float64   `json:"duration_seconds"`
	Requests        int64     `json:"requests"`
	Errors          int64     `json:"errors"`
	CacheHits       int64     `json:"cache_hits"`
	CacheHitRatio   float64   `json:"cache_hit_ratio"`
	Throughput      float64   `json:"throughput_rps"`
	Latency         Quantiles `json:"latency"`
	// Tiers breaks successful requests down by the serving tier that
	// answered (cache / surrogate / exact), each with its own quantiles —
	// the serving pyramid made visible in one report.
	Tiers map[string]TierLatency `json:"tiers,omitempty"`
}

// keyPicker returns a per-worker key source. Each worker gets its own
// rng (rand.Zipf is not safe for concurrent use) seeded distinctly but
// deterministically.
func (c LoadConfig) keyPicker(worker int) func() int {
	src := rand.New(rand.NewSource(int64(c.Seed) + int64(worker)*7919))
	if c.Distribution == "zipf" {
		z := rand.NewZipf(src, c.ZipfS, 1, uint64(c.Keys-1))
		return func() int { return int(z.Uint64()) }
	}
	return func() int { return src.Intn(c.Keys) }
}

// RunLoad replays a job storm and reports latency quantiles, saturation
// throughput and the submit-path cache hit ratio. Workers submit
// synchronously (submit, poll to terminal, repeat), so Concurrency is
// the closed-loop offered load and Throughput is the saturation rate at
// that concurrency.
func RunLoad(ctx context.Context, cfg LoadConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Target == "" {
		return nil, fmt.Errorf("loadgen: no target")
	}
	if cfg.Distribution != "uniform" && cfg.Distribution != "zipf" {
		return nil, fmt.Errorf("loadgen: unknown distribution %q", cfg.Distribution)
	}
	client := NewClient(cfg.Client)
	client.pollEvery = 2 * time.Millisecond

	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	var (
		mu        sync.Mutex
		latencies []float64
		byTier    = map[string][]float64{}
		requests  int64
		errors    int64
		hits      int64
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			pick := cfg.keyPicker(worker)
			for ctx.Err() == nil {
				req := cfg.Campaign(pick())
				t0 := time.Now()
				res, err := client.Forward(ctx, cfg.Target, req)
				lat := time.Since(t0)
				if ctx.Err() != nil && err != nil {
					return // deadline mid-request: don't count the truncation
				}
				mu.Lock()
				requests++
				if err != nil {
					errors++
				} else {
					ms := float64(lat.Microseconds()) / 1000
					latencies = append(latencies, ms)
					byTier[res.Tier] = append(byTier[res.Tier], ms)
					if res.CacheHit {
						hits++
					}
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rep := &Report{
		Target:          cfg.Target,
		Concurrency:     cfg.Concurrency,
		Distribution:    cfg.Distribution,
		Keys:            cfg.Keys,
		DurationSeconds: elapsed,
		Requests:        requests,
		Errors:          errors,
		CacheHits:       hits,
	}
	if n := requests - errors; n > 0 {
		rep.CacheHitRatio = float64(hits) / float64(n)
	}
	if elapsed > 0 {
		rep.Throughput = float64(requests-errors) / elapsed
	}
	rep.Latency = quantiles(latencies)
	if len(byTier) > 0 {
		rep.Tiers = map[string]TierLatency{}
		for tier, ms := range byTier {
			rep.Tiers[tier] = TierLatency{Requests: int64(len(ms)), Latency: quantiles(ms)}
		}
	}
	return rep, nil
}

// XsectionCampaign returns a Campaign generator for design-space
// cross-section storms: keys walk a small boron × Qcrit × spectrum
// lattice inside the given surrogate training grid bounds. Every third
// key carries tolerance zero (exact, cacheable); the rest opt into the
// surrogate tier with the given tolerance, so one storm exercises all
// three serving tiers.
func XsectionCampaign(tolerance float64) func(key int) *server.CampaignRequest {
	return func(key int) *server.CampaignRequest {
		boron := []float64{3e12, 1e13, 5e13, 1e14, 5e14}[key%5]
		qcrit := []float64{1.5, 2.5, 4, 6}[(key/5)%4]
		spec := []string{"ROTAX", "ChipIR"}[(key/20)%2]
		tol := tolerance
		if key%3 == 0 {
			tol = 0
		}
		return &server.CampaignRequest{
			Kind:      server.KindXsection,
			Seed:      uint64(2000 + key),
			Tolerance: tol,
			Xsection: &server.XsectionParams{
				BoronPerCm2: boron,
				QcritFC:     qcrit,
				Spectrum:    spec,
				Samples:     20000,
			},
		}
	}
}

// quantiles computes p50/p90/p99 by nearest-rank over the sample.
func quantiles(ms []float64) Quantiles {
	if len(ms) == 0 {
		return Quantiles{}
	}
	s := append([]float64(nil), ms...)
	sort.Float64s(s)
	at := func(q float64) float64 {
		i := int(q * float64(len(s)-1))
		return s[i]
	}
	return Quantiles{P50: at(0.50), P90: at(0.90), P99: at(0.99)}
}
