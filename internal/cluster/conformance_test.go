package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"neutronsim/internal/plan"
	"neutronsim/internal/server"
	"neutronsim/internal/telemetry"
)

// worker is one test-fleet member: a real neutrond server on a real
// listener, so dispatch exercises the actual HTTP path.
type worker struct {
	ts  *httptest.Server
	srv *server.Server
}

func startWorkers(t *testing.T, n int) []*worker {
	t.Helper()
	ws := make([]*worker, n)
	for i := range ws {
		srv := server.New(server.Config{
			Workers:  2,
			Registry: telemetry.NewRegistry(),
		})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		ws[i] = &worker{ts: ts, srv: srv}
	}
	return ws
}

func urlsOf(ws []*worker) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.ts.URL
	}
	return out
}

func testCoordinator(ctx context.Context, t *testing.T, peers []string, reg *telemetry.Registry) *Coordinator {
	t.Helper()
	c := New(Config{
		Peers:          peers,
		Shards:         2,
		RangesPerPeer:  2,
		RangeTimeout:   30 * time.Second,
		HealthInterval: 50 * time.Millisecond,
		DownCooldown:   100 * time.Millisecond,
		Registry:       reg,
	})
	c.Start(ctx)
	if len(peers) > 0 && len(c.Peers().Healthy()) == 0 {
		t.Fatal("no healthy peers after initial poll")
	}
	return c
}

// clusterReq builds a beam campaign that decomposes into a multi-shard
// plan (500 runs over grain 32 → 16 shards), so Execute takes the
// fan-out path rather than whole-job routing.
func clusterReq(t *testing.T, dev, spec string, seed uint64) *server.CampaignRequest {
	t.Helper()
	req, err := (&server.CampaignRequest{
		Kind: server.KindBeam,
		Seed: seed,
		Beam: &server.BeamParams{
			Device:          dev,
			Workload:        "MxM",
			Spectrum:        spec,
			DurationSeconds: 5,
			RunSeconds:      0.01,
			CalSamples:      2000,
			ShardGrain:      32,
		},
	}).Normalize()
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	return req
}

// TestDistributedConformance is the cluster's core guarantee: for fleets
// of 1, 2 and 3 workers, a coordinator-executed campaign is DeepEqual to
// the direct library result, across three device architectures and both
// paper spectra. The shard partials cross real HTTP and JSON on the way.
func TestDistributedConformance(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	devices := []string{"XeonPhi", "K20", "Zynq7000"}
	spectra := []string{"ChipIR", "ROTAX"}

	type key struct{ dev, spec string }
	direct := map[key]*server.ResultEnvelope{}
	for i, dev := range devices {
		for j, spec := range spectra {
			req := clusterReq(t, dev, spec, uint64(500+10*i+j))
			env, err := server.Execute(ctx, req, 2)
			if err != nil {
				t.Fatalf("direct %s/%s: %v", dev, spec, err)
			}
			direct[key{dev, spec}] = env
		}
	}

	for _, workers := range []int{1, 2, 3} {
		t.Run(map[int]string{1: "1worker", 2: "2workers", 3: "3workers"}[workers], func(t *testing.T) {
			ws := startWorkers(t, workers)
			reg := telemetry.NewRegistry()
			coord := testCoordinator(ctx, t, urlsOf(ws), reg)
			for i, dev := range devices {
				for j, spec := range spectra {
					req := clusterReq(t, dev, spec, uint64(500+10*i+j))
					env, err := coord.Execute(ctx, req, 2)
					if err != nil {
						t.Fatalf("%s/%s: %v", dev, spec, err)
					}
					want := direct[key{dev, spec}]
					if !reflect.DeepEqual(env, want) {
						t.Errorf("%s/%s with %d workers: distributed result diverged\n got: %+v\nwant: %+v",
							dev, spec, workers, env.Beam, want.Beam)
					}
				}
			}
			if reg.Counter("cluster.ranges_dispatched").Value() == 0 {
				t.Error("no shard ranges were dispatched to peers")
			}
		})
	}
}

// TestDistributedConformanceBiased covers the importance-sampled path:
// weighted Kahan tallies must survive dispatch, the wire, and re-assembly
// bit-for-bit.
func TestDistributedConformanceBiased(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := (&server.CampaignRequest{
		Kind: server.KindBeam,
		Seed: 77,
		Beam: &server.BeamParams{
			Device:          "Zynq7000",
			Workload:        "MxM",
			Spectrum:        "ChipIR",
			DurationSeconds: 5,
			RunSeconds:      0.01,
			CalSamples:      2000,
			ShardGrain:      32,
			Bias:            &plan.Bias{Thermal: 8},
		},
	}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	want, err := server.Execute(ctx, req, 2)
	if err != nil {
		t.Fatal(err)
	}
	ws := startWorkers(t, 2)
	coord := testCoordinator(ctx, t, urlsOf(ws), telemetry.NewRegistry())
	got, err := coord.Execute(ctx, req, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("biased distributed result diverged\n got: %+v\nwant: %+v", got.Beam, want.Beam)
	}
}

// TestWorkerKillMidCampaign: a worker dying mid-fan-out must cost
// nothing but time — its ranges re-dispatch (to the surviving peer or
// locally) and the final result is still bit-identical. Worker 0 is a
// deterministic casualty: it answers /readyz (so the coordinator
// dispatches to it) but resets the connection on every shard range, the
// worst case of "accepted work, died mid-execution".
func TestWorkerKillMidCampaign(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := clusterReq(t, "K20", "ROTAX", 901)
	req.Beam.DurationSeconds = 20
	var err error
	if req, err = req.Normalize(); err != nil {
		t.Fatal(err)
	}
	want, err := server.Execute(ctx, req, 2)
	if err != nil {
		t.Fatal(err)
	}

	healthy := startWorkers(t, 1)[0]
	var shardCalls atomic.Int64
	victim := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/shards" {
			shardCalls.Add(1)
			panic(http.ErrAbortHandler) // reset the connection mid-request
		}
		healthy.srv.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(victim.Close)

	reg := telemetry.NewRegistry()
	coord := New(Config{
		Peers:          []string{victim.URL, healthy.ts.URL},
		Shards:         2,
		RangesPerPeer:  4,
		RangeTimeout:   10 * time.Second,
		HealthInterval: 50 * time.Millisecond,
		DownCooldown:   time.Minute, // once lost, stay lost for this test
		Registry:       reg,
	})
	coord.Start(ctx)

	got, err := coord.Execute(ctx, req, 2)
	if err != nil {
		t.Fatalf("execute with dying worker: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("result after worker kill diverged\n got: %+v\nwant: %+v", got.Beam, want.Beam)
	}
	if shardCalls.Load() == 0 {
		t.Error("dying worker was never dispatched to; kill path untested")
	}
	if reg.Counter("cluster.ranges_redispatched").Value() == 0 {
		t.Error("no range was re-dispatched")
	}
}

// TestNoPeersFallsBackLocal: a coordinator with an empty (or all-dead)
// fleet degrades to exactly the single-node executor.
func TestNoPeersFallsBackLocal(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := clusterReq(t, "XeonPhi", "ChipIR", 321)
	want, err := server.Execute(ctx, req, 2)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	coord := New(Config{Peers: nil, Shards: 2, Registry: reg})
	got, err := coord.Execute(ctx, req, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("peerless coordinator result diverged from local execution")
	}
	if reg.Counter("cluster.local_fallback").Value() == 0 {
		t.Error("local fallback not recorded")
	}
}
