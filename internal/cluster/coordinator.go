package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"neutronsim/internal/beam"
	"neutronsim/internal/server"
	"neutronsim/internal/telemetry"
)

// LocalNode is the rendezvous name the coordinator enters itself under,
// so HRW routing can keep a share of whole-job keys on the coordinator
// instead of always paying a network hop.
const LocalNode = "local"

// Config shapes a Coordinator.
type Config struct {
	// Peers are worker base URLs ("http://127.0.0.1:8441").
	Peers []string
	// Shards caps local engine concurrency for ranges and campaigns the
	// coordinator runs itself (0 = GOMAXPROCS).
	Shards int
	// FanoutMinShards is the smallest beam plan worth fanning out
	// (default 8): below it, dispatch overhead beats the parallelism and
	// the campaign routes whole, by HRW, like non-beam kinds.
	FanoutMinShards int
	// RangesPerPeer controls work-pull granularity: the plan splits into
	// about RangesPerPeer ranges per executor (peers + local; default 2),
	// so a slow or dying peer strands at most one small range, not a
	// static 1/N slice of the campaign.
	RangesPerPeer int
	// RangeTimeout bounds one shard-range dispatch before it is declared
	// lost and re-dispatched (default 2m).
	RangeTimeout time.Duration
	// HealthInterval paces the background /readyz poller (default 1s).
	HealthInterval time.Duration
	// DownCooldown keeps a peer that failed a dispatch out of rotation
	// until the poller can vouch for it again (default 2s).
	DownCooldown time.Duration
	// HTTPClient overrides the transport (tests use httptest clients).
	HTTPClient *http.Client
	// Registry receives cluster telemetry (default telemetry.Default).
	Registry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.FanoutMinShards <= 0 {
		c.FanoutMinShards = 8
	}
	if c.RangesPerPeer <= 0 {
		c.RangesPerPeer = 2
	}
	if c.RangeTimeout <= 0 {
		c.RangeTimeout = 2 * time.Minute
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.DownCooldown <= 0 {
		c.DownCooldown = 2 * time.Second
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default
	}
	return c
}

// Coordinator executes campaigns across a fleet of neutrond workers. Its
// Execute method matches server.Config.Execute, so plugging a Coordinator
// into a server turns that node into the cluster's front door while its
// own /v1/shards surface keeps serving ranges for other coordinators.
type Coordinator struct {
	cfg    Config
	peers  *PeerSet
	client *Client
}

// New builds a Coordinator over cfg.Peers. Call Start to begin health
// polling; until the first poll completes no peer is considered healthy
// and everything runs locally.
func New(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	return &Coordinator{
		cfg:    cfg,
		peers:  NewPeerSet(cfg.Peers, cfg.HTTPClient),
		client: NewClient(cfg.HTTPClient),
	}
}

// Peers exposes the health tracker (status surfaces, tests).
func (c *Coordinator) Peers() *PeerSet { return c.peers }

// Start runs one synchronous health poll, then keeps polling in the
// background until ctx is canceled.
func (c *Coordinator) Start(ctx context.Context) {
	c.peers.Poll(ctx)
	go c.peers.Run(ctx, c.cfg.HealthInterval)
}

// Execute runs one campaign across the cluster; it is the value wired
// into server.Config.Execute on a coordinator node. Beam campaigns with
// enough shards fan out as ranges; everything else routes whole to its
// HRW owner. Every path falls back to local execution, so a coordinator
// with zero healthy peers behaves exactly like a single node.
func (c *Coordinator) Execute(ctx context.Context, req *server.CampaignRequest, shards int) (*server.ResultEnvelope, error) {
	if shards <= 0 {
		shards = c.cfg.Shards
	}
	healthy := c.peers.Healthy()
	if len(healthy) == 0 {
		c.cfg.Registry.Counter("cluster.local_fallback").Add(1)
		return server.Execute(ctx, req, shards)
	}
	if req.Kind == server.KindBeam {
		cfg, err := server.BeamConfig(req, shards)
		if err != nil {
			return nil, err
		}
		info, err := beam.PlanInfo(ctx, cfg)
		if err != nil {
			return nil, err
		}
		if info.Shards >= c.cfg.FanoutMinShards {
			res, err := c.fanout(ctx, req, cfg, info.Shards, healthy)
			if err != nil {
				return nil, err
			}
			return &server.ResultEnvelope{Kind: server.KindBeam, Beam: res}, nil
		}
	}
	return c.route(ctx, req, shards, healthy)
}

// rangeJob is one dispatchable shard range. Jobs live either in the todo
// channel or in exactly one worker's hands, so re-pushing a failed job
// never overflows the channel and no range can be delivered twice.
type rangeJob struct{ lo, hi int }

// fanout partitions [0, nShards) into contiguous ranges and lets
// executors pull them: one goroutine per healthy peer dispatching over
// /v1/shards, plus a local executor so the campaign finishes even if
// every peer dies mid-flight. A peer failure marks it down, returns its
// range to the pool, and retires that peer's goroutine; the deterministic
// shard plan makes the re-dispatch idempotent, and AssemblePartials would
// reject any double-delivery a bug let through.
func (c *Coordinator) fanout(ctx context.Context, req *server.CampaignRequest, cfg beam.Config, nShards int, healthy []string) (*beam.Result, error) {
	ctx, span := telemetry.StartSpan(ctx, "cluster.fanout")
	span.SetStage("run")
	span.AnnotateInt("shards", nShards)
	span.AnnotateInt("peers", len(healthy))
	defer span.End()

	targetRanges := c.cfg.RangesPerPeer * (len(healthy) + 1)
	if targetRanges > nShards {
		targetRanges = nShards
	}
	per := (nShards + targetRanges - 1) / targetRanges
	var jobs []rangeJob
	for lo := 0; lo < nShards; lo += per {
		hi := lo + per
		if hi > nShards {
			hi = nShards
		}
		jobs = append(jobs, rangeJob{lo, hi})
	}
	todo := make(chan rangeJob, len(jobs))
	for _, j := range jobs {
		todo <- j
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		partials []*beam.Partial
		firstErr error
	)
	remaining := len(jobs)
	deliver := func(p *beam.Partial, err error) (done bool) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			cancel()
			return true
		}
		partials = append(partials, p)
		remaining--
		if remaining == 0 {
			close(todo)
			return true
		}
		return false
	}

	// pull blocks for the next job; ok=false means the campaign is done
	// (todo closed) or canceled. Workers never block on a bare channel
	// receive, so an error path that cancels without closing todo cannot
	// strand them.
	pull := func() (rangeJob, bool) {
		select {
		case <-runCtx.Done():
			return rangeJob{}, false
		case job, ok := <-todo:
			return job, ok
		}
	}
	var wg sync.WaitGroup
	for _, peer := range healthy {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			for {
				job, ok := pull()
				if !ok {
					return
				}
				rctx, rcancel := context.WithTimeout(runCtx, c.cfg.RangeTimeout)
				p, err := c.client.RunShardRange(rctx, peer, req, job.lo, job.hi)
				rcancel()
				if err != nil {
					if runCtx.Err() != nil {
						return
					}
					// Peer lost: hold it out of rotation, give the range
					// back (capacity len(jobs) guarantees space — the job
					// was just removed), and retire this peer for the
					// campaign.
					c.cfg.Registry.Counter("cluster.ranges_redispatched").Add(1)
					telemetry.Log().Warn("shard range re-dispatched",
						"peer", peer, "range", fmt.Sprintf("[%d,%d)", job.lo, job.hi), "error", err)
					c.peers.MarkDown(peer, c.cfg.DownCooldown)
					todo <- job
					return
				}
				c.cfg.Registry.Counter("cluster.ranges_dispatched").Add(1)
				if deliver(p, nil) {
					return
				}
			}
		}(peer)
	}
	// Local executor: the liveness guarantee. It pulls like any peer, so
	// with fast peers it handles little, and with no peers it handles all.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			job, ok := pull()
			if !ok {
				return
			}
			p, err := beam.RunRange(runCtx, cfg, job.lo, job.hi)
			if err != nil {
				if runCtx.Err() == nil {
					deliver(nil, fmt.Errorf("cluster: local range [%d,%d): %w", job.lo, job.hi, err))
				}
				return
			}
			c.cfg.Registry.Counter("cluster.ranges_local").Add(1)
			if deliver(p, nil) {
				return
			}
		}
	}()
	wg.Wait()

	mu.Lock()
	err := firstErr
	got := partials
	mu.Unlock()
	if err != nil {
		return nil, err
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	return beam.AssemblePartials(ctx, cfg, got)
}

// route sends a whole campaign to its rendezvous owner. The node list is
// healthy peers plus this node, so every coordinator with the same view
// of the fleet routes a key identically — that agreement is what shards
// the fleet's plan and result caches by key. Owner down → next in rank;
// all down → local.
func (c *Coordinator) route(ctx context.Context, req *server.CampaignRequest, shards int, healthy []string) (*server.ResultEnvelope, error) {
	key := req.CacheKey()
	nodes := append(append([]string(nil), healthy...), LocalNode)
	for _, node := range Rank(key, nodes) {
		if node == LocalNode {
			break
		}
		res, err := c.client.Forward(ctx, node, req)
		if err == nil {
			c.cfg.Registry.Counter("cluster.jobs_forwarded").Add(1)
			if res.CacheHit {
				c.cfg.Registry.Counter("cluster.forward_cache_hits").Add(1)
			}
			return res.Envelope, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		telemetry.Log().Warn("forward failed; trying next in rank", "peer", node, "error", err)
		c.peers.MarkDown(node, c.cfg.DownCooldown)
	}
	c.cfg.Registry.Counter("cluster.local_fallback").Add(1)
	return server.Execute(ctx, req, shards)
}
