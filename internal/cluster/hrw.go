package cluster

import (
	"hash/fnv"
	"sort"
)

// hrwScore is the rendezvous weight of (key, node): FNV-1a over the key
// with the node name folded in. FNV is not cryptographic, which is fine —
// peers are trusted and we only need a stable, well-mixed 64-bit score.
func hrwScore(key, node string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	_, _ = h.Write([]byte{0}) // separator: ("ab","c") must differ from ("a","bc")
	_, _ = h.Write([]byte(node))
	return h.Sum64()
}

// Owner returns the highest-random-weight node for key among nodes, or ""
// when nodes is empty. Every caller with the same node list computes the
// same owner without coordination, and removing a node only reassigns the
// keys that node owned — the property that keeps cache shards stable as
// peers fail and return.
func Owner(key string, nodes []string) string {
	var best string
	var bestScore uint64
	for _, n := range nodes {
		if s := hrwScore(key, n); best == "" || s > bestScore || (s == bestScore && n < best) {
			best, bestScore = n, s
		}
	}
	return best
}

// Rank returns nodes ordered by descending rendezvous weight for key: the
// failover sequence. Rank(k, ns)[0] == Owner(k, ns); if the owner is
// down, the next entry is the fallback every node agrees on.
func Rank(key string, nodes []string) []string {
	type scored struct {
		node  string
		score uint64
	}
	ss := make([]scored, len(nodes))
	for i, n := range nodes {
		ss[i] = scored{n, hrwScore(key, n)}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].score != ss[j].score {
			return ss[i].score > ss[j].score
		}
		return ss[i].node < ss[j].node
	})
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.node
	}
	return out
}
