package cluster

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"neutronsim/internal/telemetry"
)

// minSpeedup is the CI floor: a 3-worker fleet must saturate at ≥ 2× the
// single node (ISSUE acceptance criterion). On a box where every process
// shares the cores, the factor comes from cache capacity — see
// BenchOptions.
const minSpeedup = 2

func TestMain(m *testing.M) {
	// The storms push hundreds of jobs through in-process servers; their
	// per-job log lines would drown the test output.
	telemetry.ConfigureLogger("cluster-test", false, io.Discard)
	code := m.Run()
	bench := flag.Lookup("test.bench")
	if code == 0 && bench != nil && bench.Value.String() != "" {
		if err := writeClusterSnapshot("../../BENCH_cluster.json"); err != nil {
			fmt.Fprintln(os.Stderr, "cluster bench snapshot:", err)
			code = 1
		}
	}
	os.Exit(code)
}

// writeClusterSnapshot runs the full comparison, enforces the gates, and
// publishes the report. Gate failures fail the bench run (exit 1), so CI
// cannot ship an identity break or a fleet slower than its floor.
func writeClusterSnapshot(path string) error {
	rep, err := CompareBench(context.Background(), DefaultBenchOptions())
	if err != nil {
		return err
	}
	if err := Gate(rep, minSpeedup); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// TestClusterBenchQuick is the tier-1 smoke: a shortened storm must
// complete error-free with bit-exact identity, and the fleet must not be
// slower than the single node. The full 2× floor is only enforced by the
// bench snapshot, where storms run long enough for a stable ratio.
func TestClusterBenchQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping cluster storm in -short mode")
	}
	o := DefaultBenchOptions()
	o.Duration = 800 * time.Millisecond
	rep, err := CompareBench(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.IdentityBitExact {
		t.Error("distributed results diverged from local execution")
	}
	if rep.SingleNode.Errors > 0 || rep.Cluster.Errors > 0 {
		t.Errorf("storm errors: single %d, cluster %d", rep.SingleNode.Errors, rep.Cluster.Errors)
	}
	if rep.SingleNode.Requests == 0 || rep.Cluster.Requests == 0 {
		t.Fatal("storm made no requests")
	}
	if rep.SaturationSpeedup < 1 {
		t.Errorf("fleet slower than single node: %.2fx (single %.1f rps, cluster %.1f rps)",
			rep.SaturationSpeedup, rep.SingleNode.Throughput, rep.Cluster.Throughput)
	}
}

// BenchmarkClusterStorm times one short cluster-side storm (servers and
// caches are rebuilt per iteration; the interesting number is the
// published snapshot, this keeps `go test -bench` meaningful).
func BenchmarkClusterStorm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := DefaultBenchOptions()
		o.Duration = 500 * time.Millisecond
		if _, err := CompareBench(context.Background(), o); err != nil {
			b.Fatal(err)
		}
	}
}
