// Package fit converts device cross sections into failure rates (FIT) for
// real environments, the final step of the paper's analysis (§VI): natural
// neutron fluxes at a site, modified by the surrounding materials (concrete
// floors, water cooling) and the weather, multiply the measured cross
// sections into SDC and DUE rates, and expose how much of the total is due
// to thermal neutrons.
package fit

import (
	"errors"
	"fmt"
	"math"
)

// Location carries the natural per-band neutron fluxes of a site, before
// any building-material adjustment.
type Location struct {
	Name       string
	AltitudeM  float64
	AltitudeFt float64
	// FastFluxPerHour is the >1 MeV flux in n/cm²/h.
	FastFluxPerHour float64
	// ThermalFluxPerHour is the outdoor (unadjusted) thermal flux.
	ThermalFluxPerHour float64
	// EpithermalFluxPerHour is the intermediate band.
	EpithermalFluxPerHour float64
}

// Reference flux calibration. The NYC fast flux is the JEDEC-style
// reference (~13 n/cm²/h above 10 MeV). The thermal:fast ratios are
// derived from the paper's quoted FIT shares (commented Fig.
// "FIT-rates-all-devices"):
//
//   - Xeon Phi NYC SDC thermal share 4.2% with a 10.14 cross-section
//     ratio implies an *adjusted* thermal:fast flux ratio of ≈0.445;
//     removing the paper's +44% material adjustment gives a bare ratio
//     of ≈0.31.
//   - K20 Leadville SDC share 29% with ratio ≈2 (and the APU CPU+GPU DUE
//     share of 39% with ratio 1.18, and the Xeon Phi DUE share of 10.6%
//     with ratio 6.37 — all three agree) implies an adjusted thermal:fast
//     ratio of ≈0.78 at altitude (bare ≈0.54).
//
// The thermal flux therefore scales more steeply with altitude than the
// fast flux; both scalings are exponential in altitude with the scale
// heights below.
const (
	nycFastFluxPerHour    = 13.0
	nycThermalFluxPerHour = 0.31 * nycFastFluxPerHour // ≈4.0 n/cm²/h
	nycEpithermalPerHour  = 5.0

	// The altitude dependence is exponential in *atmospheric depth* (the
	// JEDEC form), not in altitude itself: factor = exp(Δdepth/L) with
	// depth(a) = seaLevelDepth·exp(-a/scaleHeight). The attenuation
	// lengths are tuned so Leadville (3094 m) reproduces the classic
	// 12.9× fast acceleration and the paper-consistent thermal:fast
	// ratio of ≈0.54 (bare).
	seaLevelDepthGCm2      = 1033.7
	atmosphereScaleM       = 8434.0
	fastAttenuationGCm2    = 124.0
	thermalAttenuationGCm2 = 101.7

	// Above the troposphere the buildup reverses: the cosmic-ray shower
	// maximizes near 18.3 km (the Pfotzer maximum, the paper's "maximum
	// at about 60,000 ft") and declines above it.
	pfotzerAltitudeM    = 18300.0
	pfotzerDeclineScale = 7000.0

	leadvilleAltitudeM = 3094.0
)

// atmosphericDepth returns the overhead atmospheric depth in g/cm².
func atmosphericDepth(altitudeM float64) float64 {
	return seaLevelDepthGCm2 * math.Exp(-altitudeM/atmosphereScaleM)
}

// altitudeFactor returns the flux multiplier relative to sea level for the
// given attenuation length, with the Pfotzer rolloff above 18.3 km.
func altitudeFactor(altitudeM, attenuationGCm2 float64) float64 {
	capped := altitudeM
	if capped > pfotzerAltitudeM {
		capped = pfotzerAltitudeM
	}
	f := math.Exp((seaLevelDepthGCm2 - atmosphericDepth(capped)) / attenuationGCm2)
	if altitudeM > pfotzerAltitudeM {
		f *= math.Exp(-(altitudeM - pfotzerAltitudeM) / pfotzerDeclineScale)
	}
	return f
}

// NYC is the sea-level reference site used by the paper's FIT figure.
func NYC() Location {
	return Location{
		Name:                  "New York City",
		AltitudeM:             0,
		AltitudeFt:            0,
		FastFluxPerHour:       nycFastFluxPerHour,
		ThermalFluxPerHour:    nycThermalFluxPerHour,
		EpithermalFluxPerHour: nycEpithermalPerHour,
	}
}

// Leadville is the high-altitude site (10,151 ft) of the paper's FIT
// figure.
func Leadville() Location {
	return AtAltitude("Leadville, CO", leadvilleAltitudeM)
}

// AtAltitude scales the NYC reference fluxes to the given altitude, valid
// from sea level through aviation altitudes (Pfotzer maximum at 18.3 km).
func AtAltitude(name string, meters float64) Location {
	if meters < 0 {
		meters = 0
	}
	fastFactor := altitudeFactor(meters, fastAttenuationGCm2)
	thermalFactor := altitudeFactor(meters, thermalAttenuationGCm2)
	return Location{
		Name:                  name,
		AltitudeM:             meters,
		AltitudeFt:            meters * 3.28084,
		FastFluxPerHour:       nycFastFluxPerHour * fastFactor,
		ThermalFluxPerHour:    nycThermalFluxPerHour * thermalFactor,
		EpithermalFluxPerHour: nycEpithermalPerHour * fastFactor,
	}
}

// ThermalToFastRatio returns the site's bare thermal:fast flux ratio.
func (l Location) ThermalToFastRatio() float64 {
	if l.FastFluxPerHour == 0 {
		return 0
	}
	return l.ThermalFluxPerHour / l.FastFluxPerHour
}

// Environment-material adjustments (§VI). WaterCoolingEnhancement is the
// Tin-II measurement (+24% with two inches of water); ConcreteEnhancement
// is the slab-floor adjustment (≈+20%); together they are the paper's
// "overall increase of 44% in the thermal flux". RainFactor is Ziegler's
// thunderstorm ×2.
const (
	WaterCoolingEnhancement = 0.24
	ConcreteEnhancement     = 0.20
	RainFactor              = 2.0
)

// Environment is a located device's full surroundings.
type Environment struct {
	Location Location
	// ConcreteFloor adds the slab back-scatter enhancement.
	ConcreteFloor bool
	// WaterCooling adds the cooling-loop enhancement.
	WaterCooling bool
	// Raining doubles the thermal flux (storm moderation).
	Raining bool
	// ExtraThermalFactor multiplies the thermal flux for bespoke
	// scenarios (e.g. transport-engine results); 0 means 1.
	ExtraThermalFactor float64
}

// Validate checks the environment.
func (e Environment) Validate() error {
	if e.Location.FastFluxPerHour <= 0 && e.Location.ThermalFluxPerHour <= 0 {
		return errors.New("fit: environment has no flux")
	}
	if e.ExtraThermalFactor < 0 {
		return fmt.Errorf("fit: negative extra thermal factor %v", e.ExtraThermalFactor)
	}
	return nil
}

// ThermalFluxPerHour returns the adjusted thermal flux.
func (e Environment) ThermalFluxPerHour() float64 {
	f := e.Location.ThermalFluxPerHour
	enhancement := 1.0
	if e.ConcreteFloor {
		enhancement += ConcreteEnhancement
	}
	if e.WaterCooling {
		enhancement += WaterCoolingEnhancement
	}
	f *= enhancement
	if e.Raining {
		f *= RainFactor
	}
	if e.ExtraThermalFactor > 0 {
		f *= e.ExtraThermalFactor
	}
	return f
}

// FastFluxPerHour returns the fast flux (materials barely perturb it).
func (e Environment) FastFluxPerHour() float64 {
	return e.Location.FastFluxPerHour
}

// DataCenter is the paper's FIT-figure setting: concrete slab plus water
// cooling (+44% thermal) at the given location.
func DataCenter(l Location) Environment {
	return Environment{Location: l, ConcreteFloor: true, WaterCooling: true}
}

// String describes the environment.
func (e Environment) String() string {
	s := e.Location.Name
	if e.ConcreteFloor {
		s += "+concrete"
	}
	if e.WaterCooling {
		s += "+water"
	}
	if e.Raining {
		s += "+rain"
	}
	return s
}
