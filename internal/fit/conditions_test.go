package fit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConditionsValidate(t *testing.T) {
	bad := []SiteConditions{
		{SolarActivity: -0.1},
		{SolarActivity: 1.1},
		{CutoffRigidityGV: -1},
		{StationPressureHPa: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := (SiteConditions{SolarActivity: 0.5}).Validate(); err != nil {
		t.Errorf("valid conditions rejected: %v", err)
	}
}

func TestReferenceConditionsAreNeutral(t *testing.T) {
	// Mid-cycle solar activity at NYC rigidity and standard pressure
	// must leave the flux unchanged.
	f, err := SiteConditions{SolarActivity: 0.5}.FluxFactor(NYC())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-1) > 1e-9 {
		t.Errorf("reference factor = %v, want 1", f)
	}
}

func TestSolarModulation(t *testing.T) {
	min, _ := SiteConditions{SolarActivity: 0}.FluxFactor(NYC())
	max, _ := SiteConditions{SolarActivity: 1}.FluxFactor(NYC())
	if min <= max {
		t.Errorf("solar minimum flux (%v) must exceed solar maximum (%v)", min, max)
	}
	if swing := min - max; math.Abs(swing-0.22) > 1e-9 {
		t.Errorf("solar swing = %v, want 0.22", swing)
	}
}

func TestRigidityHalvesAtEquator(t *testing.T) {
	eq, err := SiteConditions{SolarActivity: 0.5, CutoffRigidityGV: 17}.FluxFactor(NYC())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eq-0.5) > 0.01 {
		t.Errorf("equator factor = %v, want 0.5", eq)
	}
}

func TestBarometricEffect(t *testing.T) {
	nyc := NYC()
	// A deep low-pressure system (storm): less shielding, more flux.
	storm, _ := SiteConditions{SolarActivity: 0.5, StationPressureHPa: 980}.FluxFactor(nyc)
	high, _ := SiteConditions{SolarActivity: 0.5, StationPressureHPa: 1040}.FluxFactor(nyc)
	if storm <= 1 || high >= 1 {
		t.Errorf("barometric factors wrong: storm %v, high %v", storm, high)
	}
	// ~33 hPa below standard ⇒ ~+29%.
	if storm < 1.2 || storm > 1.4 {
		t.Errorf("storm factor = %v, want ~1.29", storm)
	}
}

func TestBarometricUsesAltitudeStandard(t *testing.T) {
	lv := Leadville()
	// At altitude the standard pressure is lower; specifying exactly that
	// pressure must be neutral.
	std := standardPressureHPa(lv.AltitudeM)
	f, err := SiteConditions{SolarActivity: 0.5, StationPressureHPa: std}.FluxFactor(lv)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-1) > 1e-9 {
		t.Errorf("altitude-standard pressure factor = %v, want 1", f)
	}
	if std > 750 || std < 650 {
		t.Errorf("Leadville standard pressure = %v hPa, want ~700", std)
	}
}

func TestApplyScalesAllBands(t *testing.T) {
	nyc := NYC()
	scaled, err := SiteConditions{SolarActivity: 0}.Apply(nyc)
	if err != nil {
		t.Fatal(err)
	}
	factor := scaled.FastFluxPerHour / nyc.FastFluxPerHour
	if factor <= 1 {
		t.Errorf("solar-minimum factor = %v", factor)
	}
	for _, pair := range [][2]float64{
		{scaled.ThermalFluxPerHour, nyc.ThermalFluxPerHour},
		{scaled.EpithermalFluxPerHour, nyc.EpithermalFluxPerHour},
	} {
		if math.Abs(pair[0]/pair[1]-factor) > 1e-9 {
			t.Error("bands not scaled uniformly")
		}
	}
}

func TestApplyRejectsBadConditions(t *testing.T) {
	if _, err := (SiteConditions{SolarActivity: 2}).Apply(NYC()); err == nil {
		t.Error("bad conditions accepted")
	}
}

func TestFluxFactorAlwaysPositive(t *testing.T) {
	f := func(a, r, p float64) bool {
		c := SiteConditions{
			SolarActivity:      math.Abs(math.Mod(a, 1)),
			CutoffRigidityGV:   math.Abs(math.Mod(r, 20)),
			StationPressureHPa: 900 + math.Abs(math.Mod(p, 200)),
		}
		factor, err := c.FluxFactor(NYC())
		return err == nil && factor > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
