package fit

import (
	"math"
	"strings"
	"testing"

	"neutronsim/internal/memsim"
	"neutronsim/internal/physics"
	"neutronsim/internal/units"
)

func TestNYCReference(t *testing.T) {
	nyc := NYC()
	if nyc.FastFluxPerHour != 13 {
		t.Errorf("NYC fast flux = %v", nyc.FastFluxPerHour)
	}
	if r := nyc.ThermalToFastRatio(); math.Abs(r-0.31) > 1e-9 {
		t.Errorf("NYC thermal:fast = %v, want 0.31", r)
	}
}

func TestLeadvilleScaling(t *testing.T) {
	lv := Leadville()
	fastAccel := lv.FastFluxPerHour / NYC().FastFluxPerHour
	if math.Abs(fastAccel-12.9)/12.9 > 0.03 {
		t.Errorf("Leadville fast acceleration = %v, want ~12.9", fastAccel)
	}
	if r := lv.ThermalToFastRatio(); math.Abs(r-0.54) > 0.04 {
		t.Errorf("Leadville bare thermal:fast = %v, want ~0.54", r)
	}
	if math.Abs(lv.AltitudeFt-10151) > 110 {
		t.Errorf("Leadville altitude = %v ft, want ~10151", lv.AltitudeFt)
	}
}

func TestAtAltitudeNegativeClamps(t *testing.T) {
	l := AtAltitude("below sea", -100)
	if l.FastFluxPerHour != NYC().FastFluxPerHour {
		t.Error("negative altitude should clamp to sea level")
	}
}

func TestEnvironmentAdjustments(t *testing.T) {
	nyc := NYC()
	base := Environment{Location: nyc}.ThermalFluxPerHour()
	concrete := Environment{Location: nyc, ConcreteFloor: true}.ThermalFluxPerHour()
	water := Environment{Location: nyc, WaterCooling: true}.ThermalFluxPerHour()
	both := DataCenter(nyc).ThermalFluxPerHour()
	if math.Abs(concrete/base-1.20) > 1e-9 {
		t.Errorf("concrete factor = %v, want 1.20", concrete/base)
	}
	if math.Abs(water/base-1.24) > 1e-9 {
		t.Errorf("water factor = %v, want 1.24", water/base)
	}
	if math.Abs(both/base-1.44) > 1e-9 {
		t.Errorf("data-center factor = %v, want 1.44 (the paper's +44%%)", both/base)
	}
	rain := Environment{Location: nyc, Raining: true}.ThermalFluxPerHour()
	if math.Abs(rain/base-2) > 1e-9 {
		t.Errorf("rain factor = %v, want 2", rain/base)
	}
}

func TestExtraThermalFactor(t *testing.T) {
	nyc := NYC()
	env := Environment{Location: nyc, ExtraThermalFactor: 3}
	if got := env.ThermalFluxPerHour() / nyc.ThermalFluxPerHour; math.Abs(got-3) > 1e-9 {
		t.Errorf("extra factor = %v", got)
	}
	bad := Environment{Location: nyc, ExtraThermalFactor: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative extra factor accepted")
	}
}

func TestFastFluxUntouched(t *testing.T) {
	env := Environment{Location: NYC(), ConcreteFloor: true, WaterCooling: true, Raining: true}
	if env.FastFluxPerHour() != 13 {
		t.Error("materials should not change the fast flux")
	}
}

func TestEnvironmentString(t *testing.T) {
	env := Environment{Location: NYC(), ConcreteFloor: true, WaterCooling: true, Raining: true}
	s := env.String()
	for _, want := range []string{"New York City", "concrete", "water", "rain"} {
		if !strings.Contains(s, want) {
			t.Errorf("%q missing %q", s, want)
		}
	}
}

func TestSigmasValidate(t *testing.T) {
	if err := (Sigmas{}).Validate(); err == nil {
		t.Error("zero sigmas accepted")
	}
	if err := (Sigmas{SDCFast: -1}).Validate(); err == nil {
		t.Error("negative sigma accepted")
	}
	if err := (Sigmas{SDCFast: 1e-9}).Validate(); err != nil {
		t.Errorf("valid sigmas rejected: %v", err)
	}
}

// TestXeonPhiShareAtNYC encodes the paper's quoted number: with the
// measured cross-section ratio (SDC 10.14) and the +44%-adjusted NYC
// fluxes, the thermal share of the Xeon Phi SDC FIT is ≈4.2%.
func TestXeonPhiShareAtNYC(t *testing.T) {
	s := Sigmas{
		SDCFast:    10.14e-9,
		SDCThermal: 1e-9,
		DUEFast:    6.37e-9,
		DUEThermal: 1e-9,
	}
	rep, err := Compute(s, DataCenter(NYC()))
	if err != nil {
		t.Fatal(err)
	}
	if share := rep.SDC.ThermalShare(); math.Abs(share-0.042) > 0.005 {
		t.Errorf("Xeon Phi NYC SDC thermal share = %v, paper: 4.2%%", share)
	}
}

// TestLeadvilleShares checks the paper's Leadville quotes: Xeon Phi DUE
// ≈10.6%, K20 SDC ≈29%, APU CPU+GPU DUE ≈39%.
func TestLeadvilleShares(t *testing.T) {
	env := DataCenter(Leadville())
	tests := []struct {
		name  string
		ratio float64
		want  float64
		tol   float64
	}{
		{"XeonPhi DUE", 6.37, 0.106, 0.02},
		{"K20 SDC", 2.0, 0.29, 0.04},
		{"APU CPU+GPU DUE", 1.18, 0.39, 0.05},
	}
	for _, tt := range tests {
		s := Sigmas{SDCFast: units.CrossSection(tt.ratio) * 1e-9, SDCThermal: 1e-9,
			DUEFast: units.CrossSection(tt.ratio) * 1e-9, DUEThermal: 1e-9}
		rep, err := Compute(s, env)
		if err != nil {
			t.Fatal(err)
		}
		if share := rep.SDC.ThermalShare(); math.Abs(share-tt.want) > tt.tol {
			t.Errorf("%s thermal share = %v, paper: %v", tt.name, share, tt.want)
		}
	}
}

func TestComputeValidation(t *testing.T) {
	if _, err := Compute(Sigmas{}, DataCenter(NYC())); err == nil {
		t.Error("invalid sigmas accepted")
	}
	if _, err := Compute(Sigmas{SDCFast: 1e-9}, Environment{}); err == nil {
		t.Error("fluxless environment accepted")
	}
}

func TestFITNumbers(t *testing.T) {
	// sigma 1e-9 cm² at 13 n/cm²/h ⇒ 13 FIT.
	rep, err := Compute(Sigmas{SDCFast: 1e-9}, Environment{Location: NYC()})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(rep.SDC.Fast)-13) > 1e-6 {
		t.Errorf("SDC fast FIT = %v, want 13", rep.SDC.Fast)
	}
	if rep.Total() != rep.SDC.Total()+rep.DUE.Total() {
		t.Error("total mismatch")
	}
}

func TestUnderestimationFactor(t *testing.T) {
	rep, err := Compute(Sigmas{SDCFast: 2e-9, SDCThermal: 2e-9}, DataCenter(Leadville()))
	if err != nil {
		t.Fatal(err)
	}
	f := rep.UnderestimationFactor()
	if f <= 1.3 {
		t.Errorf("underestimation factor = %v; thermal contribution should be large at altitude", f)
	}
	var empty Report
	if empty.UnderestimationFactor() != 0 {
		t.Error("empty report factor should be 0")
	}
}

func TestRainRaisesThermalShare(t *testing.T) {
	s := Sigmas{SDCFast: 2e-9, SDCThermal: 1e-9}
	dry, _ := Compute(s, Environment{Location: NYC()})
	wet, _ := Compute(s, Environment{Location: NYC(), Raining: true})
	if wet.SDC.ThermalShare() <= dry.SDC.ThermalShare() {
		t.Error("rain should raise the thermal share")
	}
}

func TestProjectTop10(t *testing.T) {
	sigmas := map[memsim.Generation]units.CrossSection{
		memsim.DDR3: 1e-10,
		memsim.DDR4: 1e-11,
	}
	rows, err := ProjectTop10(Top10(), sigmas, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	// Sorted descending.
	for i := 1; i < len(rows); i++ {
		if rows[i].ThermalFIT > rows[i-1].ThermalFIT {
			t.Error("rows not sorted by FIT")
		}
	}
	byName := map[string]SupercomputerFIT{}
	for _, r := range rows {
		byName[r.Machine.Name] = r
		if r.RainyDayFIT <= r.ThermalFIT {
			t.Errorf("%s rainy FIT %v not above dry %v", r.Machine.Name, r.RainyDayFIT, r.ThermalFIT)
		}
		if r.WithECC >= r.ThermalFIT {
			t.Errorf("%s ECC FIT %v not below raw %v", r.Machine.Name, r.WithECC, r.ThermalFIT)
		}
	}
	// Trinity sits at 2231 m: its FIT per TB must dwarf a sea-level
	// DDR4 machine's.
	trinity := byName["Trinity"]
	abci := byName["ABCI"]
	trinityPerTB := float64(trinity.ThermalFIT) / trinity.Machine.MemoryTB
	abciPerTB := float64(abci.ThermalFIT) / abci.Machine.MemoryTB
	if trinityPerTB < 5*abciPerTB {
		t.Errorf("Trinity per-TB FIT %v should be >> ABCI's %v (altitude)", trinityPerTB, abciPerTB)
	}
	// DDR3 machines pay the 10× cross-section penalty.
	tianhe := byName["Tianhe-2A"]
	summit := byName["Summit"]
	tianhePerTB := float64(tianhe.ThermalFIT) / tianhe.Machine.MemoryTB
	summitPerTB := float64(summit.ThermalFIT) / summit.Machine.MemoryTB
	if tianhePerTB < 3*summitPerTB {
		t.Errorf("DDR3 Tianhe per-TB FIT %v should be >> DDR4 Summit's %v", tianhePerTB, summitPerTB)
	}
}

func TestProjectTop10Validation(t *testing.T) {
	sigmas := map[memsim.Generation]units.CrossSection{memsim.DDR4: 1e-11}
	if _, err := ProjectTop10(nil, sigmas, 0.1); err == nil {
		t.Error("empty machine list accepted")
	}
	if _, err := ProjectTop10(Top10(), sigmas, 0.1); err == nil {
		t.Error("missing DDR3 sigma accepted")
	}
	full := map[memsim.Generation]units.CrossSection{memsim.DDR3: 1e-10, memsim.DDR4: 1e-11}
	if _, err := ProjectTop10(Top10(), full, 2); err == nil {
		t.Error("ECC residual > 1 accepted")
	}
}

func TestTop10Composition(t *testing.T) {
	machines := Top10()
	if len(machines) != 10 {
		t.Fatalf("%d machines", len(machines))
	}
	ddr3 := 0
	for _, m := range machines {
		if m.MemoryTB <= 0 {
			t.Errorf("%s has no memory", m.Name)
		}
		if m.Generation == memsim.DDR3 {
			ddr3++
		}
	}
	if ddr3 != 2 {
		t.Errorf("expected 2 DDR3 machines (TaihuLight, Tianhe-2A), got %d", ddr3)
	}
}

func TestSpectrumForMatchesEnvironment(t *testing.T) {
	env := DataCenter(Leadville())
	sp, err := SpectrumFor(env)
	if err != nil {
		t.Fatal(err)
	}
	gotThermal := sp.FluxInBand(physics.BandThermal).PerHour()
	if math.Abs(gotThermal-env.ThermalFluxPerHour())/env.ThermalFluxPerHour() > 1e-9 {
		t.Errorf("spectrum thermal %v vs env %v", gotThermal, env.ThermalFluxPerHour())
	}
	gotFast := sp.FluxInBand(physics.BandFast).PerHour()
	if math.Abs(gotFast-env.FastFluxPerHour())/env.FastFluxPerHour() > 1e-9 {
		t.Errorf("spectrum fast %v vs env %v", gotFast, env.FastFluxPerHour())
	}
}

func TestSpectrumForInvalidEnvironment(t *testing.T) {
	if _, err := SpectrumFor(Environment{}); err == nil {
		t.Error("fluxless environment accepted")
	}
}

func TestPfotzerMaximum(t *testing.T) {
	// Flux grows up to ~18.3 km, then declines (§II-A: "reaching a
	// maximum at about 60,000 ft").
	ground := AtAltitude("ground", 0).FastFluxPerHour
	cruise := AtAltitude("cruise", 12000).FastFluxPerHour
	peak := AtAltitude("peak", 18300).FastFluxPerHour
	above := AtAltitude("above", 30000).FastFluxPerHour
	if !(ground < cruise && cruise < peak) {
		t.Errorf("flux should grow to the Pfotzer maximum: %v %v %v", ground, cruise, peak)
	}
	if above >= peak {
		t.Errorf("flux above the Pfotzer maximum should decline: %v vs %v", above, peak)
	}
	// Aviation altitudes see hundreds of times the ground flux, not tens
	// of thousands (the depth model, unlike a pure altitude exponential).
	accel := cruise / ground
	if accel < 100 || accel > 2000 {
		t.Errorf("12 km acceleration = %v, want O(several hundred)", accel)
	}
}

func TestAltitudeFactorContinuousAtPeak(t *testing.T) {
	below := altitudeFactor(pfotzerAltitudeM-1, fastAttenuationGCm2)
	at := altitudeFactor(pfotzerAltitudeM, fastAttenuationGCm2)
	above := altitudeFactor(pfotzerAltitudeM+1, fastAttenuationGCm2)
	if math.Abs(below-at)/at > 0.001 || math.Abs(above-at)/at > 0.001 {
		t.Errorf("discontinuity at the Pfotzer maximum: %v %v %v", below, at, above)
	}
}
