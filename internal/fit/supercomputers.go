package fit

import (
	"errors"
	"sort"

	"neutronsim/internal/memsim"
	"neutronsim/internal/units"
)

// Supercomputer describes one Top-10 (June 2019) machine for the DDR
// thermal-FIT projection of the paper's commented "HPC_FIT" figure: main
// memory size, DRAM generation, site altitude, and cooling style.
type Supercomputer struct {
	Name       string
	Site       string
	AltitudeM  float64
	MemoryTB   float64
	Generation memsim.Generation
	// LiquidCooled machines get the water-cooling thermal enhancement on
	// top of the concrete slab every machine room has.
	LiquidCooled bool
}

// Top10 returns the June-2019 Top500 leaders with approximate main-memory
// capacities and site altitudes.
func Top10() []Supercomputer {
	return []Supercomputer{
		{Name: "Summit", Site: "Oak Ridge, USA", AltitudeM: 260, MemoryTB: 2414, Generation: memsim.DDR4, LiquidCooled: true},
		{Name: "Sierra", Site: "Livermore, USA", AltitudeM: 180, MemoryTB: 1290, Generation: memsim.DDR4, LiquidCooled: true},
		{Name: "Sunway TaihuLight", Site: "Wuxi, China", AltitudeM: 5, MemoryTB: 1310, Generation: memsim.DDR3, LiquidCooled: true},
		{Name: "Tianhe-2A", Site: "Guangzhou, China", AltitudeM: 10, MemoryTB: 2280, Generation: memsim.DDR3, LiquidCooled: true},
		{Name: "Frontera", Site: "Austin, USA", AltitudeM: 150, MemoryTB: 892, Generation: memsim.DDR4, LiquidCooled: true},
		{Name: "Piz Daint", Site: "Lugano, Switzerland", AltitudeM: 273, MemoryTB: 340, Generation: memsim.DDR4, LiquidCooled: true},
		{Name: "Trinity", Site: "Los Alamos, USA", AltitudeM: 2231, MemoryTB: 2070, Generation: memsim.DDR4, LiquidCooled: true},
		{Name: "ABCI", Site: "Tokyo, Japan", AltitudeM: 10, MemoryTB: 476, Generation: memsim.DDR4, LiquidCooled: true},
		{Name: "SuperMUC-NG", Site: "Garching, Germany", AltitudeM: 480, MemoryTB: 719, Generation: memsim.DDR4, LiquidCooled: true},
		{Name: "Lassen", Site: "Livermore, USA", AltitudeM: 180, MemoryTB: 380, Generation: memsim.DDR4, LiquidCooled: false},
	}
}

// SupercomputerFIT is one row of the projected DDR thermal-FIT table.
type SupercomputerFIT struct {
	Machine    Supercomputer
	ThermalFIT units.FIT
	// RainyDayFIT doubles the thermal flux (storm scenario).
	RainyDayFIT units.FIT
	// WithECC keeps only the SEFI-like share that SECDED cannot fix.
	WithECC units.FIT
}

// ProjectTop10 computes each machine's whole-system DDR thermal FIT:
// memory Gbits × per-Gbit thermal cross section × site-adjusted thermal
// flux. sigmaPerGbit maps each generation to its measured cross section
// (e.g. from a ROTAX memsim campaign); eccResidual is the fraction of
// events SECDED cannot correct (multi-bit SEFI share).
func ProjectTop10(machines []Supercomputer, sigmaPerGbit map[memsim.Generation]units.CrossSection, eccResidual float64) ([]SupercomputerFIT, error) {
	if len(machines) == 0 {
		return nil, errors.New("fit: no machines")
	}
	if eccResidual < 0 || eccResidual > 1 {
		return nil, errors.New("fit: ECC residual out of [0,1]")
	}
	out := make([]SupercomputerFIT, 0, len(machines))
	for _, m := range machines {
		sigma, ok := sigmaPerGbit[m.Generation]
		if !ok || sigma <= 0 {
			return nil, errors.New("fit: missing sigma for " + m.Generation.String())
		}
		env := Environment{
			Location:      AtAltitude(m.Site, m.AltitudeM),
			ConcreteFloor: true,
			WaterCooling:  m.LiquidCooled,
		}
		gbits := m.MemoryTB * 8 * 1024 // TB → Gbit
		flux := units.FluxPerHour(env.ThermalFluxPerHour())
		fitRate := units.FITFromCrossSection(units.CrossSection(float64(sigma)*gbits), flux)
		env.Raining = true
		rainy := units.FITFromCrossSection(units.CrossSection(float64(sigma)*gbits),
			units.FluxPerHour(env.ThermalFluxPerHour()))
		out = append(out, SupercomputerFIT{
			Machine:     m,
			ThermalFIT:  fitRate,
			RainyDayFIT: rainy,
			WithECC:     units.FIT(float64(fitRate) * eccResidual),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ThermalFIT > out[j].ThermalFIT })
	return out, nil
}
