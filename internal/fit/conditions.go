package fit

import (
	"errors"
	"math"
)

// SiteConditions refines a Location with the remaining flux drivers the
// paper names (§II-A): "the flux is known to vary across the surface, as a
// consequence of the earth's magnetic field, and increases exponentially
// with altitude … under normal solar conditions, the fast neutron flux is
// almost constant for a given latitude, longitude, and altitude."
//
// The corrections follow the JESD89A-style analytic form: a geomagnetic
// cutoff-rigidity factor (latitude/longitude), a solar-modulation factor
// (the cosmic-ray flux is anticorrelated with solar activity), and a
// barometric factor (atmospheric depth shields the surface; a low-pressure
// weather system raises the flux).
type SiteConditions struct {
	// SolarActivity in [0, 1]: 0 = solar minimum (highest flux),
	// 1 = solar maximum (lowest flux).
	SolarActivity float64
	// CutoffRigidityGV is the geomagnetic vertical cutoff rigidity.
	// New York sits near 2.08 GV; the geomagnetic equator near 17 GV.
	// Zero means "use the NYC reference".
	CutoffRigidityGV float64
	// StationPressureHPa is the measured barometric pressure; zero means
	// the standard pressure for the location's altitude.
	StationPressureHPa float64
}

// Reference values for the correction factors.
const (
	nycCutoffRigidityGV = 2.08
	// equatorCutoffRigidityGV with the halving rule below tunes the
	// latitude dependence so the geomagnetic equator sees roughly half
	// the NYC flux.
	equatorCutoffRigidityGV = 17.0
	// solarSwing is the peak-to-trough relative flux modulation over the
	// solar cycle (~±11% around the mean, i.e. ~22% min-to-max).
	solarSwing = 0.22
	// barometricScaleHPa is the attenuation length of the neutron flux in
	// station pressure (the classic 131.3 g/cm² ≈ 128.8 hPa).
	barometricScaleHPa = 128.8
	seaLevelPressure   = 1013.25
)

// Validate checks the conditions.
func (c SiteConditions) Validate() error {
	if c.SolarActivity < 0 || c.SolarActivity > 1 {
		return errors.New("fit: solar activity out of [0,1]")
	}
	if c.CutoffRigidityGV < 0 {
		return errors.New("fit: negative cutoff rigidity")
	}
	if c.StationPressureHPa < 0 {
		return errors.New("fit: negative pressure")
	}
	return nil
}

// standardPressureHPa returns the barometric-formula pressure at altitude.
func standardPressureHPa(altitudeM float64) float64 {
	return seaLevelPressure * math.Exp(-altitudeM/8434)
}

// FluxFactor returns the multiplicative flux correction for the conditions
// at the given location (1.0 at NYC reference conditions).
func (c SiteConditions) FluxFactor(l Location) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	factor := 1.0
	// Solar modulation: highest flux at solar minimum. The reference
	// fluxes are mid-cycle, so activity 0.5 is neutral.
	factor *= 1 + solarSwing*(0.5-c.SolarActivity)
	// Geomagnetic rigidity relative to the NYC reference: flux halves
	// from NYC (2.08 GV) to the geomagnetic equator (~17 GV).
	rigidity := c.CutoffRigidityGV
	if rigidity == 0 {
		rigidity = nycCutoffRigidityGV
	}
	factor *= math.Exp2(-(rigidity - nycCutoffRigidityGV) /
		(equatorCutoffRigidityGV - nycCutoffRigidityGV))
	// Barometric correction relative to the site's standard pressure.
	pressure := c.StationPressureHPa
	if pressure == 0 {
		pressure = standardPressureHPa(l.AltitudeM)
	}
	factor *= math.Exp((standardPressureHPa(l.AltitudeM) - pressure) / barometricScaleHPa)
	return factor, nil
}

// Apply returns a copy of the location with all fluxes scaled by the
// conditions' factor.
func (c SiteConditions) Apply(l Location) (Location, error) {
	factor, err := c.FluxFactor(l)
	if err != nil {
		return Location{}, err
	}
	out := l
	out.FastFluxPerHour *= factor
	out.ThermalFluxPerHour *= factor
	out.EpithermalFluxPerHour *= factor
	return out, nil
}
