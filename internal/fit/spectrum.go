package fit

import (
	"neutronsim/internal/spectrum"
)

// SpectrumFor materializes an environment's (material- and
// weather-adjusted) neutron field as a sampleable spectrum, so the same
// environment description that drives FIT arithmetic can also drive Monte
// Carlo components like the Tin-II detector or a natural-background beam
// campaign.
func SpectrumFor(env Environment) (spectrum.Spectrum, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	return spectrum.NewEnvironment(spectrum.EnvironmentConfig{
		Name:                  env.String(),
		FastFluxPerHour:       env.FastFluxPerHour(),
		EpithermalFluxPerHour: env.Location.EpithermalFluxPerHour,
		ThermalFluxPerHour:    env.ThermalFluxPerHour(),
	})
}
