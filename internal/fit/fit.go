package fit

import (
	"errors"

	"neutronsim/internal/units"
)

// Sigmas carries the four measured device cross sections (cm² per device)
// from a matched ChipIR/ROTAX campaign pair.
type Sigmas struct {
	SDCFast    units.CrossSection
	SDCThermal units.CrossSection
	DUEFast    units.CrossSection
	DUEThermal units.CrossSection
}

// Validate checks the cross sections.
func (s Sigmas) Validate() error {
	if s.SDCFast < 0 || s.SDCThermal < 0 || s.DUEFast < 0 || s.DUEThermal < 0 {
		return errors.New("fit: negative cross section")
	}
	if s.SDCFast+s.SDCThermal+s.DUEFast+s.DUEThermal == 0 {
		return errors.New("fit: all cross sections zero")
	}
	return nil
}

// Breakdown is a per-band FIT decomposition for one error type.
type Breakdown struct {
	Fast    units.FIT
	Thermal units.FIT
}

// Total returns the summed rate.
func (b Breakdown) Total() units.FIT { return b.Fast + b.Thermal }

// ThermalShare returns the thermal fraction of the total — the quantity
// the paper's FIT figure reports ("percentage of total FIT rate due to
// high energy and thermal neutrons").
func (b Breakdown) ThermalShare() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.Thermal) / float64(t)
}

// Report is the device-in-environment FIT analysis.
type Report struct {
	Environment Environment
	SDC         Breakdown
	DUE         Breakdown
}

// Total returns the combined SDC+DUE rate.
func (r Report) Total() units.FIT { return r.SDC.Total() + r.DUE.Total() }

// Compute turns measured cross sections and an environment into FIT
// breakdowns: FIT = sigma × flux × 1e9, per band, per error type.
func Compute(s Sigmas, env Environment) (Report, error) {
	if err := s.Validate(); err != nil {
		return Report{}, err
	}
	if err := env.Validate(); err != nil {
		return Report{}, err
	}
	fastFlux := units.FluxPerHour(env.FastFluxPerHour())
	thermalFlux := units.FluxPerHour(env.ThermalFluxPerHour())
	return Report{
		Environment: env,
		SDC: Breakdown{
			Fast:    units.FITFromCrossSection(s.SDCFast, fastFlux),
			Thermal: units.FITFromCrossSection(s.SDCThermal, thermalFlux),
		},
		DUE: Breakdown{
			Fast:    units.FITFromCrossSection(s.DUEFast, fastFlux),
			Thermal: units.FITFromCrossSection(s.DUEThermal, thermalFlux),
		},
	}, nil
}

// UnderestimationFactor returns how much the total FIT rate is
// underestimated when thermal neutrons are ignored: total/(fast only).
func (r Report) UnderestimationFactor() float64 {
	fastOnly := r.SDC.Fast + r.DUE.Fast
	if fastOnly == 0 {
		return 0
	}
	return float64(r.Total()) / float64(fastOnly)
}
