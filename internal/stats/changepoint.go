package stats

import (
	"errors"
	"math"
)

// ChangePoint describes a detected step change in a count time series, as
// produced by the Tin-II detector when water is placed over it (Fig.
// "turkeypan" of the paper: counts abruptly increase by ~24%).
type ChangePoint struct {
	Index       int     // first sample of the new regime
	MeanBefore  float64 //
	MeanAfter   float64
	RelChange   float64 // (after-before)/before
	Significant bool    // |z| above the detection threshold
	ZScore      float64
}

// DetectStep scans a series for the single most likely mean-shift point by
// maximizing the two-sample z statistic over all split positions (a
// least-squares / CUSUM-equivalent formulation for a single step). minSeg
// is the minimum samples required on each side; threshold is the |z| above
// which the step is flagged significant (5.0 is a robust default for
// multi-day hourly series).
func DetectStep(series []float64, minSeg int, threshold float64) (ChangePoint, error) {
	n := len(series)
	if minSeg < 1 {
		minSeg = 1
	}
	if n < 2*minSeg {
		return ChangePoint{}, errors.New("stats: series too short for change detection")
	}
	// Prefix sums for O(n) sweep.
	prefix := make([]float64, n+1)
	prefix2 := make([]float64, n+1)
	for i, v := range series {
		prefix[i+1] = prefix[i] + v
		prefix2[i+1] = prefix2[i] + v*v
	}
	best := ChangePoint{ZScore: 0, Index: -1}
	for k := minSeg; k <= n-minSeg; k++ {
		n1, n2 := float64(k), float64(n-k)
		m1 := prefix[k] / n1
		m2 := (prefix[n] - prefix[k]) / n2
		v1 := prefix2[k]/n1 - m1*m1
		v2 := (prefix2[n]-prefix2[k])/n2 - m2*m2
		if v1 < 0 {
			v1 = 0
		}
		if v2 < 0 {
			v2 = 0
		}
		se := math.Sqrt(v1/n1 + v2/n2)
		if se == 0 {
			if m1 == m2 {
				continue
			}
			se = 1e-12
		}
		z := (m2 - m1) / se
		if math.Abs(z) > math.Abs(best.ZScore) {
			best = ChangePoint{
				Index:      k,
				MeanBefore: m1,
				MeanAfter:  m2,
				ZScore:     z,
			}
		}
	}
	if best.Index < 0 {
		return ChangePoint{}, errors.New("stats: no candidate change point")
	}
	if best.MeanBefore != 0 {
		best.RelChange = (best.MeanAfter - best.MeanBefore) / best.MeanBefore
	}
	best.Significant = math.Abs(best.ZScore) >= threshold
	return best, nil
}

// CUSUM computes the one-sided cumulative-sum statistic for an upward mean
// shift relative to a reference mean and slack. It returns the running
// statistic and the first index at which it exceeded h (or -1).
func CUSUM(series []float64, reference, slack, h float64) (stat []float64, alarm int) {
	stat = make([]float64, len(series))
	alarm = -1
	s := 0.0
	for i, v := range series {
		s += v - reference - slack
		if s < 0 {
			s = 0
		}
		stat[i] = s
		if alarm < 0 && s > h {
			alarm = i
		}
	}
	return stat, alarm
}

// MovingAverage returns the centered moving average of the series with the
// given window (clamped at the edges). Used for plotting detector series.
func MovingAverage(series []float64, window int) []float64 {
	if window < 1 {
		window = 1
	}
	out := make([]float64, len(series))
	half := window / 2
	for i := range series {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= len(series) {
			hi = len(series) - 1
		}
		sum := 0.0
		for j := lo; j <= hi; j++ {
			sum += series[j]
		}
		out[i] = sum / float64(hi-lo+1)
	}
	return out
}
