package stats

import (
	"math"
	"testing"

	"neutronsim/internal/rng"
)

func TestCompareRatesValidation(t *testing.T) {
	if _, err := CompareRates(1, 0, 1, 1); err == nil {
		t.Error("zero exposure accepted")
	}
	if _, err := CompareRates(-1, 1, 1, 1); err == nil {
		t.Error("negative count accepted")
	}
}

func TestCompareRatesEqual(t *testing.T) {
	rc, err := CompareRates(100, 1000, 100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Significant {
		t.Errorf("identical rates flagged significant: %+v", rc)
	}
	if math.Abs(rc.Ratio-1) > 1e-12 {
		t.Errorf("ratio = %v", rc.Ratio)
	}
}

func TestCompareRatesClearDifference(t *testing.T) {
	// 20% rate increase with large counts: must be detected.
	rc, err := CompareRates(1000, 1000, 1200, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !rc.Significant {
		t.Errorf("20%% shift on 1000+1200 events not significant: p=%v", rc.PValue)
	}
	if math.Abs(rc.Ratio-1.2) > 1e-9 {
		t.Errorf("ratio = %v", rc.Ratio)
	}
}

func TestCompareRatesSmallCountsNotSignificant(t *testing.T) {
	rc, err := CompareRates(2, 100, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Significant {
		t.Errorf("tiny counts flagged significant: p=%v", rc.PValue)
	}
}

func TestCompareRatesZeroEvents(t *testing.T) {
	rc, err := CompareRates(0, 100, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rc.PValue != 1 || !math.IsNaN(rc.Ratio) {
		t.Errorf("zero-event comparison: %+v", rc)
	}
	rc, err = CompareRates(0, 100, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(rc.Ratio, 1) {
		t.Errorf("ratio = %v, want +Inf", rc.Ratio)
	}
}

func TestCompareRatesExposureNormalization(t *testing.T) {
	// Same underlying rate with different exposures must not trigger.
	rc, err := CompareRates(100, 1000, 300, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Significant {
		t.Errorf("equal rates at different exposures flagged: %+v", rc)
	}
	if math.Abs(rc.Ratio-1) > 1e-9 {
		t.Errorf("ratio = %v", rc.Ratio)
	}
}

// TestCompareRatesFalsePositiveRate: under H0 the test should reject at
// roughly the nominal 5% level.
func TestCompareRatesFalsePositiveRate(t *testing.T) {
	s := rng.New(1)
	const trials = 2000
	rejections := 0
	for i := 0; i < trials; i++ {
		a := s.Poisson(50)
		b := s.Poisson(50)
		rc, err := CompareRates(a, 1, b, 1)
		if err != nil {
			t.Fatal(err)
		}
		if rc.Significant {
			rejections++
		}
	}
	rate := float64(rejections) / trials
	if rate > 0.08 {
		t.Errorf("false-positive rate = %v, want <= ~0.05", rate)
	}
}

// TestCompareRatesPower: a 24% shift (the water effect) on a week of
// detector-scale counts must be detectable.
func TestCompareRatesPower(t *testing.T) {
	s := rng.New(2)
	const trials = 200
	detected := 0
	for i := 0; i < trials; i++ {
		// A week of hourly ~250-count observations per group.
		var a, b int64
		for h := 0; h < 168; h++ {
			a += s.Poisson(250)
			b += s.Poisson(250 * 1.24)
		}
		rc, err := CompareRates(a, 168, b, 168)
		if err != nil {
			t.Fatal(err)
		}
		if rc.Significant && rc.Ratio > 1 {
			detected++
		}
	}
	if detected < trials*95/100 {
		t.Errorf("power too low: %d/%d", detected, trials)
	}
}

func TestNormalSF(t *testing.T) {
	if got := NormalSF(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("SF(0) = %v", got)
	}
	if got := NormalSF(1.96); math.Abs(got-0.025) > 1e-3 {
		t.Errorf("SF(1.96) = %v", got)
	}
}
