// Package stats provides the statistical estimators used by the
// experiment harnesses: Poisson confidence intervals for beam-test error
// counts, summary statistics, and rate estimation.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrNoData is returned by estimators that received an empty sample.
var ErrNoData = errors.New("stats: no data")

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1) sample variance
	Std      float64
	Min      float64
	Max      float64
}

// Summarize computes descriptive statistics. It returns ErrNoData for an
// empty sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrNoData
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Variance = ss / float64(s.N-1)
		s.Std = math.Sqrt(s.Variance)
	}
	return s, nil
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the sample median, or 0 for an empty slice.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return 0.5 * (cp[n/2-1] + cp[n/2])
}

// Quantile returns the q-th sample quantile (0 <= q <= 1) using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if q <= 0 {
		return cp[0]
	}
	if q >= 1 {
		return cp[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return cp[n-1]
	}
	return cp[lo]*(1-frac) + cp[lo+1]*frac
}

// PoissonCI holds a two-sided confidence interval for a Poisson mean given
// an observed count. Beam experiments report cross sections with such
// intervals ("error bars considering Poisson's 95% confidence interval",
// §V of the paper).
type PoissonCI struct {
	Count      int64
	Lower      float64
	Upper      float64
	Confidence float64
}

// PoissonConfidence computes the exact (Garwood) two-sided interval for a
// Poisson mean from an observed count, via the chi-squared quantile
// identity: lower = qchisq(alpha/2, 2k)/2, upper = qchisq(1-alpha/2, 2k+2)/2.
func PoissonConfidence(count int64, confidence float64) PoissonCI {
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	ci := PoissonCI{Count: count, Confidence: confidence}
	// Shared with the weighted estimators (PoissonBoundsFloat) so an
	// integer count and the same count arriving as a float ESS produce
	// bit-identical bounds.
	ci.Lower, ci.Upper = PoissonBoundsFloat(float64(count), confidence)
	return ci
}

// Poisson95 is shorthand for the paper's standard 95% interval.
func Poisson95(count int64) PoissonCI { return PoissonConfidence(count, 0.95) }

// RelativeWidth returns (upper-lower)/count, a convenient figure of merit
// for deciding whether a campaign has collected enough statistics. It
// returns +Inf for zero counts.
func (ci PoissonCI) RelativeWidth() float64 {
	if ci.Count == 0 {
		return math.Inf(1)
	}
	return (ci.Upper - ci.Lower) / float64(ci.Count)
}

// chiSquaredQuantile returns the p-quantile of a chi-squared distribution
// with k degrees of freedom, using the Wilson-Hilferty normal approximation
// refined by a few Newton steps on the regularized gamma CDF.
func chiSquaredQuantile(p, k float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Wilson-Hilferty starting point.
	z := normalQuantile(p)
	a := 2.0 / (9.0 * k)
	x := k * math.Pow(1-a+z*math.Sqrt(a), 3)
	if x <= 0 {
		x = 1e-8
	}
	// Newton refinement on F(x) = P(k/2, x/2) = p.
	halfK := k / 2
	for i := 0; i < 40; i++ {
		fx := regularizedGammaP(halfK, x/2) - p
		// pdf of chi-squared.
		pdf := math.Exp((halfK-1)*math.Log(x/2)-x/2-lgamma(halfK)) / 2
		if pdf <= 0 {
			break
		}
		step := fx / pdf
		nx := x - step
		if nx <= 0 {
			nx = x / 2
		}
		if math.Abs(nx-x) < 1e-12*math.Max(1, x) {
			x = nx
			break
		}
		x = nx
	}
	return x
}

// normalQuantile is the inverse standard-normal CDF (Acklam's rational
// approximation; relative error < 1.15e-9).
func normalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow = 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// NormalQuantile exposes the inverse standard-normal CDF for other packages.
func NormalQuantile(p float64) float64 { return normalQuantile(p) }

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// regularizedGammaP computes P(a, x), the lower regularized incomplete
// gamma function, by series (x < a+1) or continued fraction (otherwise).
func regularizedGammaP(a, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x < a+1 {
		// Series expansion.
		ap := a
		sum := 1.0 / a
		del := sum
		for i := 0; i < 500; i++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-15 {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-lgamma(a))
	}
	// Continued fraction for Q(a,x), then P = 1-Q (Lentz's algorithm).
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	q := math.Exp(-x+a*math.Log(x)-lgamma(a)) * h
	return 1 - q
}

// RegularizedGammaP exposes P(a,x) for tests and other packages.
func RegularizedGammaP(a, x float64) float64 { return regularizedGammaP(a, x) }

// RateEstimate is an estimated event rate (events per unit exposure) with a
// Poisson confidence interval, the core quantity behind every cross section
// in the paper (sigma = errors / fluence).
type RateEstimate struct {
	Events   int64
	Exposure float64 // fluence, time, etc.; must be > 0
	Rate     float64
	Lower    float64
	Upper    float64
}

// EstimateRate computes events/exposure with a 95% Poisson interval.
// It returns an error for non-positive exposure.
func EstimateRate(events int64, exposure float64) (RateEstimate, error) {
	if exposure <= 0 {
		return RateEstimate{}, errors.New("stats: non-positive exposure")
	}
	ci := Poisson95(events)
	return RateEstimate{
		Events:   events,
		Exposure: exposure,
		Rate:     float64(events) / exposure,
		Lower:    ci.Lower / exposure,
		Upper:    ci.Upper / exposure,
	}, nil
}

// RatioCI propagates two independent rate estimates into a ratio with an
// approximate 95% interval (log-normal error propagation), used for the
// paper's fast:thermal cross-section ratios (Fig. cs_ratio).
func RatioCI(num, den RateEstimate) (ratio, lower, upper float64) {
	if den.Rate == 0 || num.Rate == 0 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	ratio = num.Rate / den.Rate
	// Approximate relative sigma of a Poisson count k is 1/sqrt(k).
	relVar := 0.0
	if num.Events > 0 {
		relVar += 1 / float64(num.Events)
	}
	if den.Events > 0 {
		relVar += 1 / float64(den.Events)
	}
	sigma := math.Sqrt(relVar)
	lower = ratio * math.Exp(-1.96*sigma)
	upper = ratio * math.Exp(1.96*sigma)
	return ratio, lower, upper
}
