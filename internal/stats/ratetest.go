package stats

import (
	"errors"
	"math"
)

// RateComparison is the result of comparing two Poisson rates, used by the
// fleet log analysis to decide whether nodes near water-cooling loops
// really fail more often than dry-aisle nodes.
type RateComparison struct {
	// RateA and RateB are events per unit exposure.
	RateA, RateB float64
	// Ratio is RateB / RateA.
	Ratio float64
	// ZScore is the normal test statistic for H0: equal rates
	// (conditional binomial formulation).
	ZScore float64
	// PValue is the two-sided p-value.
	PValue float64
	// Significant is PValue < 0.05.
	Significant bool
}

// CompareRates tests whether two Poisson processes have different rates,
// given event counts and exposures. It uses the conditional test: given
// kA+kB total events, kB ~ Binomial(kA+kB, expB/(expA+expB)) under H0.
func CompareRates(eventsA int64, exposureA float64, eventsB int64, exposureB float64) (RateComparison, error) {
	if exposureA <= 0 || exposureB <= 0 {
		return RateComparison{}, errors.New("stats: non-positive exposure")
	}
	if eventsA < 0 || eventsB < 0 {
		return RateComparison{}, errors.New("stats: negative event count")
	}
	rc := RateComparison{
		RateA: float64(eventsA) / exposureA,
		RateB: float64(eventsB) / exposureB,
	}
	if rc.RateA > 0 {
		rc.Ratio = rc.RateB / rc.RateA
	} else if rc.RateB > 0 {
		rc.Ratio = math.Inf(1)
	} else {
		rc.Ratio = math.NaN()
	}
	total := eventsA + eventsB
	if total == 0 {
		rc.PValue = 1
		return rc, nil
	}
	p0 := exposureB / (exposureA + exposureB)
	mean := float64(total) * p0
	sd := math.Sqrt(float64(total) * p0 * (1 - p0))
	if sd == 0 {
		rc.PValue = 1
		return rc, nil
	}
	// Continuity-corrected normal approximation to the binomial.
	diff := float64(eventsB) - mean
	correction := 0.5
	if math.Abs(diff) < correction {
		correction = math.Abs(diff)
	}
	z := (diff - math.Copysign(correction, diff)) / sd
	rc.ZScore = z
	rc.PValue = 2 * normalSF(math.Abs(z))
	if rc.PValue > 1 {
		rc.PValue = 1
	}
	rc.Significant = rc.PValue < 0.05
	return rc, nil
}

// normalSF is the standard normal survival function.
func normalSF(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// NormalSF exposes the survival function for other packages.
func NormalSF(z float64) float64 { return normalSF(z) }
