package stats

import (
	"errors"
	"math"
)

// Weighted is a likelihood-weighted event tally for importance-sampled
// campaigns: each event carries the exact/biased probability ratio of the
// draws that produced it, so the weighted sum is an unbiased estimate of
// the count an exact (analog) campaign would have produced. The tally
// keeps the sum of weights and the sum of squared weights — enough to
// recover the estimate, its effective sample size, and a confidence
// interval — with Kahan compensation on both, because biased campaigns
// mix many tiny weights with few large ones.
//
// The zero value is an empty tally ready for Add. Weighted is a value
// type: copy it freely, Merge shard tallies in a fixed order, and call
// Finalize once before publishing (Finalize folds the unexported
// compensation terms into the exported sums so the tally survives a JSON
// round trip bit-for-bit).
type Weighted struct {
	// N counts events as drawn in the biased campaign (the raw,
	// pre-reweighting count).
	N int64 `json:"n"`
	// SumW is the compensated sum of event weights — the unbiased
	// estimate of the exact-campaign count.
	SumW float64 `json:"sum_w"`
	// SumW2 is the compensated sum of squared event weights, the
	// ingredient of the effective sample size and the variance estimate.
	SumW2 float64 `json:"sum_w2"`

	// Kahan compensation terms, folded into the sums by Finalize.
	cw, cw2 float64
}

// Add records one event with likelihood weight w.
func (t *Weighted) Add(w float64) {
	t.N++
	t.addW(w)
	t.addW2(w * w)
}

func (t *Weighted) addW(v float64) {
	y := v - t.cw
	s := t.SumW + y
	t.cw = (s - t.SumW) - y
	t.SumW = s
}

func (t *Weighted) addW2(v float64) {
	y := v - t.cw2
	s := t.SumW2 + y
	t.cw2 = (s - t.SumW2) - y
	t.SumW2 = s
}

// Merge folds another tally into t. Merging is deterministic for a fixed
// merge order — the shard merge in beam runs in shard order, which is how
// the engine's bit-identical-across-worker-counts invariant extends to
// weighted results. Kahan sums are not bit-associative, so re-splitting
// the same events into different shard boundaries reproduces the total
// only to rounding (the property tests bound it near 1 ulp).
func (t *Weighted) Merge(o Weighted) {
	t.N += o.N
	t.addW(o.SumW)
	t.addW(o.cw)
	t.addW2(o.SumW2)
	t.addW2(o.cw2)
}

// Finalize folds the compensation terms into the exported sums and clears
// them. Call once, after the last Add/Merge, before publishing the tally.
func (t *Weighted) Finalize() {
	t.SumW += t.cw
	t.SumW2 += t.cw2
	t.cw, t.cw2 = 0, 0
}

// WeightedWire is the complete serialized state of a Weighted tally,
// including the Kahan compensation terms that Weighted's own JSON shape
// deliberately omits. It exists for the distributed shard protocol: a
// worker ships its per-shard tallies un-finalized, and the coordinator
// must fold them in shard order exactly as a single-node merge would —
// which requires the compensation terms to survive the trip. Go's JSON
// encoding round-trips float64 values exactly (shortest-representation
// formatting), so Wire/Tally is lossless bit-for-bit.
type WeightedWire struct {
	N     int64   `json:"n"`
	SumW  float64 `json:"sum_w"`
	SumW2 float64 `json:"sum_w2"`
	CW    float64 `json:"cw,omitempty"`
	CW2   float64 `json:"cw2,omitempty"`
}

// Wire exports the tally's full state for transport.
func (t Weighted) Wire() WeightedWire {
	return WeightedWire{N: t.N, SumW: t.SumW, SumW2: t.SumW2, CW: t.cw, CW2: t.cw2}
}

// Tally reconstructs the Weighted value, compensation terms included.
func (w WeightedWire) Tally() Weighted {
	return Weighted{N: w.N, SumW: w.SumW, SumW2: w.SumW2, cw: w.CW, cw2: w.CW2}
}

// Sum returns the compensated weighted event count.
func (t Weighted) Sum() float64 { return t.SumW + t.cw }

// SumSquares returns the compensated sum of squared weights.
func (t Weighted) SumSquares() float64 { return t.SumW2 + t.cw2 }

// ESS is the Kish effective sample size (Σw)²/Σw², the number of
// equal-weight events carrying the same statistical information as the
// tally. It is the quantity that gates every CI claim a biased campaign
// makes: a weighted interval is only as good as its ESS, never as good as
// its raw N. ESS ∈ (0, N] for any tally with at least one positive-weight
// event, and 0 for an empty tally.
func (t Weighted) ESS() float64 {
	s, s2 := t.Sum(), t.SumSquares()
	if t.N == 0 || s2 <= 0 {
		return 0
	}
	return s * s / s2
}

// ErrNoWeight is returned when a weighted rate estimate is requested from
// a tally whose interval cannot be formed (negative weighted sum).
var ErrNoWeight = errors.New("stats: negative weighted sum")

// EstimateWeightedRate converts a weighted event tally over an exposure
// into a rate with a 95% interval. The interval treats the tally as an
// equivalent Poisson experiment that observed ESS equal-weight events,
// each worth Sum/ESS: the Garwood bounds are computed at the (fractional)
// effective count and scaled back by the mean weight. With unit weights
// this reduces bit-for-bit to EstimateRate — the zero-bias identity the
// equivalence suite pins.
func EstimateWeightedRate(t Weighted, exposure float64) (RateEstimate, error) {
	if exposure <= 0 {
		return RateEstimate{}, errors.New("stats: non-positive exposure")
	}
	sum := t.Sum()
	if sum < 0 {
		return RateEstimate{}, ErrNoWeight
	}
	ess := t.ESS()
	// Mean weight of the equivalent equal-weight events. With no events
	// there is nothing to scale; keep 1 so the zero-count upper bound
	// stays the exact-campaign Garwood bound.
	scale := 1.0
	if ess > 0 {
		scale = sum / ess
	}
	lower, upper := PoissonBoundsFloat(ess, 0.95)
	return RateEstimate{
		Events:   t.N,
		Exposure: exposure,
		Rate:     sum / exposure,
		Lower:    lower * scale / exposure,
		Upper:    upper * scale / exposure,
	}, nil
}

// PoissonBoundsFloat computes the Garwood two-sided bounds for a Poisson
// mean at a possibly fractional observed count — fractional counts arise
// as effective sample sizes of weighted tallies. At integer counts it is
// exactly the arithmetic of PoissonConfidence.
func PoissonBoundsFloat(count, confidence float64) (lower, upper float64) {
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	if math.IsNaN(count) || count < 0 {
		return math.NaN(), math.NaN()
	}
	alpha := 1 - confidence
	if count > 0 {
		lower = chiSquaredQuantile(alpha/2, 2*count) / 2
	}
	upper = chiSquaredQuantile(1-alpha/2, 2*count+2) / 2
	return lower, upper
}
