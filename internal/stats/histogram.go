package stats

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bin histogram over either a linear or logarithmic
// axis. Log-binned histograms with per-lethargy normalization are how the
// paper presents beamline spectra (Fig. 2, "lethargy scale").
type Histogram struct {
	edges  []float64 // len = bins+1, strictly increasing
	counts []float64
	under  float64
	over   float64
	log    bool
}

// NewLinearHistogram builds a histogram with uniform bins on [lo, hi).
func NewLinearHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 || hi <= lo {
		return nil, errors.New("stats: invalid histogram range")
	}
	edges := make([]float64, bins+1)
	w := (hi - lo) / float64(bins)
	for i := range edges {
		edges[i] = lo + float64(i)*w
	}
	edges[bins] = hi
	return &Histogram{edges: edges, counts: make([]float64, bins)}, nil
}

// NewLogHistogram builds a histogram with log-uniform bins on [lo, hi),
// requiring 0 < lo < hi. This is the natural binning for neutron spectra
// spanning meV to GeV.
func NewLogHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 || lo <= 0 || hi <= lo {
		return nil, errors.New("stats: invalid log histogram range")
	}
	edges := make([]float64, bins+1)
	ratio := math.Log(hi / lo)
	for i := range edges {
		edges[i] = lo * math.Exp(ratio*float64(i)/float64(bins))
	}
	edges[bins] = hi
	return &Histogram{edges: edges, counts: make([]float64, bins), log: true}, nil
}

// Add records one observation with unit weight.
func (h *Histogram) Add(x float64) { h.AddWeighted(x, 1) }

// AddWeighted records one observation with the given weight.
func (h *Histogram) AddWeighted(x, w float64) {
	i := h.binIndex(x)
	switch {
	case i < 0:
		h.under += w
	case i >= len(h.counts):
		h.over += w
	default:
		h.counts[i] += w
	}
}

func (h *Histogram) binIndex(x float64) int {
	lo, hi := h.edges[0], h.edges[len(h.edges)-1]
	if x < lo {
		return -1
	}
	if x >= hi {
		return len(h.counts)
	}
	if h.log {
		return int(math.Log(x/lo) / math.Log(hi/lo) * float64(len(h.counts)))
	}
	return int((x - lo) / (hi - lo) * float64(len(h.counts)))
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Count returns the weight in bin i.
func (h *Histogram) Count(i int) float64 { return h.counts[i] }

// Edges returns a copy of the bin edges.
func (h *Histogram) Edges() []float64 { return append([]float64(nil), h.edges...) }

// BinCenter returns the representative x of bin i (geometric mean for log
// bins, arithmetic mean for linear bins).
func (h *Histogram) BinCenter(i int) float64 {
	lo, hi := h.edges[i], h.edges[i+1]
	if h.log {
		return math.Sqrt(lo * hi)
	}
	return 0.5 * (lo + hi)
}

// Total returns the total recorded weight including under/overflow.
func (h *Histogram) Total() float64 {
	t := h.under + h.over
	for _, c := range h.counts {
		t += c
	}
	return t
}

// Underflow and Overflow return the out-of-range weights.
func (h *Histogram) Underflow() float64 { return h.under }

// Overflow returns the weight recorded above the histogram range.
func (h *Histogram) Overflow() float64 { return h.over }

// Density returns counts normalized per unit x, i.e. counts[i] / binwidth.
func (h *Histogram) Density() []float64 {
	out := make([]float64, len(h.counts))
	for i, c := range h.counts {
		out[i] = c / (h.edges[i+1] - h.edges[i])
	}
	return out
}

// PerLethargy returns counts normalized per unit lethargy:
// counts[i] / ln(edge[i+1]/edge[i]). On a log-x plot this is the standard
// "flux per lethargy" representation where area is proportional to flux
// (Fig. 2 of the paper). Only meaningful for log histograms.
func (h *Histogram) PerLethargy() []float64 {
	out := make([]float64, len(h.counts))
	for i, c := range h.counts {
		du := math.Log(h.edges[i+1] / h.edges[i])
		if du > 0 {
			out[i] = c / du
		}
	}
	return out
}

// IntegralBetween sums bin weights whose centers lie within [lo, hi).
func (h *Histogram) IntegralBetween(lo, hi float64) float64 {
	sum := 0.0
	for i, c := range h.counts {
		x := h.BinCenter(i)
		if x >= lo && x < hi {
			sum += c
		}
	}
	return sum
}

// ASCII renders a quick horizontal bar plot of the histogram, scaled so the
// tallest bin spans width characters. Values are the per-lethargy density
// for log histograms and raw counts otherwise.
func (h *Histogram) ASCII(width int) string {
	if width <= 0 {
		width = 50
	}
	vals := h.counts
	if h.log {
		vals = h.PerLethargy()
	}
	maxV := 0.0
	for _, v := range vals {
		if v > maxV {
			maxV = v
		}
	}
	var b strings.Builder
	for i, v := range vals {
		n := 0
		if maxV > 0 {
			n = int(v / maxV * float64(width))
		}
		fmt.Fprintf(&b, "%12.4g |%s\n", h.BinCenter(i), strings.Repeat("#", n))
	}
	return b.String()
}
