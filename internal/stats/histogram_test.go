package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestLinearHistogramBasics(t *testing.T) {
	h, err := NewLinearHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(0.5)
	h.Add(9.99)
	h.Add(5)
	if h.Count(0) != 1 || h.Count(9) != 1 || h.Count(5) != 1 {
		t.Errorf("counts wrong: %v %v %v", h.Count(0), h.Count(9), h.Count(5))
	}
	if h.Total() != 3 {
		t.Errorf("total = %v", h.Total())
	}
}

func TestHistogramUnderOverflow(t *testing.T) {
	h, _ := NewLinearHistogram(0, 1, 4)
	h.Add(-1)
	h.Add(2)
	h.Add(1) // hi edge is exclusive → overflow
	if h.Underflow() != 1 {
		t.Errorf("underflow = %v", h.Underflow())
	}
	if h.Overflow() != 2 {
		t.Errorf("overflow = %v", h.Overflow())
	}
}

func TestHistogramInvalidArgs(t *testing.T) {
	if _, err := NewLinearHistogram(1, 0, 5); err == nil {
		t.Error("expected error for reversed range")
	}
	if _, err := NewLinearHistogram(0, 1, 0); err == nil {
		t.Error("expected error for zero bins")
	}
	if _, err := NewLogHistogram(0, 1, 5); err == nil {
		t.Error("expected error for zero lower bound in log histogram")
	}
}

func TestLogHistogramBinning(t *testing.T) {
	h, err := NewLogHistogram(1e-3, 1e9, 12) // one bin per decade
	if err != nil {
		t.Fatal(err)
	}
	// Each decade midpoint should land in its own bin.
	for i := 0; i < 12; i++ {
		x := math.Pow(10, -3+float64(i)) * 3.16 // ~ geometric center of the decade
		h.Add(x)
	}
	for i := 0; i < 12; i++ {
		if h.Count(i) != 1 {
			t.Errorf("bin %d count = %v, want 1", i, h.Count(i))
		}
	}
}

func TestHistogramMassConservation(t *testing.T) {
	f := func(raw []float64) bool {
		h, _ := NewLogHistogram(1e-3, 1e10, 40)
		for _, v := range raw {
			h.Add(math.Abs(v))
		}
		return h.Total() == float64(len(raw))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinCenters(t *testing.T) {
	lin, _ := NewLinearHistogram(0, 10, 5)
	if got := lin.BinCenter(0); got != 1 {
		t.Errorf("linear center = %v, want 1", got)
	}
	lg, _ := NewLogHistogram(1, 100, 2)
	if got := lg.BinCenter(0); math.Abs(got-math.Sqrt(10)) > 1e-9 {
		t.Errorf("log center = %v, want sqrt(10)", got)
	}
}

func TestPerLethargy(t *testing.T) {
	h, _ := NewLogHistogram(1, math.E*math.E, 2) // bins of width 1 in lethargy
	h.AddWeighted(1.5, 10)
	pl := h.PerLethargy()
	if math.Abs(pl[0]-10) > 1e-9 {
		t.Errorf("per-lethargy = %v, want 10 (bin width = 1 lethargy unit)", pl[0])
	}
}

func TestDensity(t *testing.T) {
	h, _ := NewLinearHistogram(0, 10, 5)
	h.AddWeighted(1, 6)
	d := h.Density()
	if d[0] != 3 { // 6 counts over width-2 bin
		t.Errorf("density = %v, want 3", d[0])
	}
}

func TestIntegralBetween(t *testing.T) {
	h, _ := NewLogHistogram(1e-3, 1e9, 36)
	h.AddWeighted(0.025, 5) // thermal
	h.AddWeighted(10e6, 7)  // fast
	if got := h.IntegralBetween(1e-3, 0.5); got != 5 {
		t.Errorf("thermal integral = %v, want 5", got)
	}
	if got := h.IntegralBetween(1e6, 1e9); got != 7 {
		t.Errorf("fast integral = %v, want 7", got)
	}
}

func TestASCIIRender(t *testing.T) {
	h, _ := NewLinearHistogram(0, 4, 4)
	h.AddWeighted(0.5, 4)
	h.AddWeighted(1.5, 2)
	s := h.ASCII(8)
	if !strings.Contains(s, "########") {
		t.Errorf("expected full-width bar in:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("expected 4 lines, got %d", len(lines))
	}
}

func TestEdgesCopied(t *testing.T) {
	h, _ := NewLinearHistogram(0, 1, 2)
	e := h.Edges()
	e[0] = 99
	if h.Edges()[0] == 99 {
		t.Error("Edges() exposed internal slice")
	}
}
