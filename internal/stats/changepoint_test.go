package stats

import (
	"math"
	"testing"

	"neutronsim/internal/rng"
)

func stepSeries(n1, n2 int, m1, m2 float64, seed uint64) []float64 {
	s := rng.New(seed)
	out := make([]float64, 0, n1+n2)
	for i := 0; i < n1; i++ {
		out = append(out, float64(s.Poisson(m1)))
	}
	for i := 0; i < n2; i++ {
		out = append(out, float64(s.Poisson(m2)))
	}
	return out
}

func TestDetectStepFindsWaterLikeStep(t *testing.T) {
	// Tin-II-like series: ~200 counts/h baseline, +24% after water.
	series := stepSeries(168, 168, 200, 248, 1)
	cp, err := DetectStep(series, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Significant {
		t.Fatalf("24%% step on 200 counts/h over a week should be significant: z=%v", cp.ZScore)
	}
	if cp.Index < 160 || cp.Index > 176 {
		t.Errorf("change point at %d, want ~168", cp.Index)
	}
	if math.Abs(cp.RelChange-0.24) > 0.05 {
		t.Errorf("relative change = %v, want ~0.24", cp.RelChange)
	}
}

func TestDetectStepNoChange(t *testing.T) {
	series := stepSeries(300, 0, 200, 0, 2)
	cp, err := DetectStep(series, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Significant {
		t.Errorf("flat series flagged significant: z=%v rel=%v", cp.ZScore, cp.RelChange)
	}
}

func TestDetectStepShortSeries(t *testing.T) {
	if _, err := DetectStep([]float64{1, 2}, 5, 5); err == nil {
		t.Error("expected error for short series")
	}
}

func TestDetectStepDownward(t *testing.T) {
	series := stepSeries(100, 100, 300, 200, 3)
	cp, err := DetectStep(series, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Significant || cp.RelChange >= 0 {
		t.Errorf("downward step missed: %+v", cp)
	}
}

func TestCUSUMAlarm(t *testing.T) {
	series := stepSeries(50, 50, 100, 150, 4)
	_, alarm := CUSUM(series, 100, 10, 200)
	if alarm < 50 || alarm > 70 {
		t.Errorf("CUSUM alarm at %d, want shortly after 50", alarm)
	}
}

func TestCUSUMNoAlarm(t *testing.T) {
	series := stepSeries(200, 0, 100, 0, 5)
	_, alarm := CUSUM(series, 100, 10, 500)
	if alarm != -1 {
		t.Errorf("false CUSUM alarm at %d", alarm)
	}
}

func TestMovingAverageFlat(t *testing.T) {
	series := []float64{5, 5, 5, 5, 5}
	ma := MovingAverage(series, 3)
	for i, v := range ma {
		if v != 5 {
			t.Errorf("ma[%d] = %v", i, v)
		}
	}
}

func TestMovingAverageSmooths(t *testing.T) {
	series := stepSeries(100, 0, 100, 0, 6)
	ma := MovingAverage(series, 25)
	sRaw, _ := Summarize(series)
	sMa, _ := Summarize(ma)
	if sMa.Std >= sRaw.Std {
		t.Errorf("moving average did not reduce variance: %v >= %v", sMa.Std, sRaw.Std)
	}
}

func TestMovingAverageWindowOne(t *testing.T) {
	series := []float64{1, 2, 3}
	ma := MovingAverage(series, 1)
	for i := range series {
		if ma[i] != series[i] {
			t.Errorf("window-1 moving average changed data at %d", i)
		}
	}
}
