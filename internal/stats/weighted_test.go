package stats

import (
	"math"
	"testing"
)

// testWeights builds a deterministic but irregular weight sequence mixing
// tiny and large values — the shape biased campaigns actually produce —
// without pulling a random source into the stats package's tests.
func testWeights(n int, seed uint64) []float64 {
	ws := make([]float64, n)
	x := seed*2862933555777941757 + 3037000493
	for i := range ws {
		x = x*2862933555777941757 + 3037000493
		u := float64(x>>11) / (1 << 53)
		// Log-uniform over about four decades, centered near 1.
		ws[i] = math.Exp((u - 0.5) * 9)
	}
	return ws
}

// naiveSums accumulates without compensation, in long double-free Go: the
// reference the Kahan sums must stay close to.
func naiveSums(ws []float64) (sum, sum2 float64) {
	for _, w := range ws {
		sum += w
		sum2 += w * w
	}
	return sum, sum2
}

// TestWeightedConservation pins the weights-conservation property: for
// unit weights the sums equal the count exactly, and for arbitrary
// weights the compensated sums track a naive reference within floating
// rounding.
func TestWeightedConservation(t *testing.T) {
	var unit Weighted
	for i := 0; i < 100000; i++ {
		unit.Add(1)
	}
	unit.Finalize()
	if unit.SumW != float64(unit.N) || unit.SumW2 != float64(unit.N) {
		t.Errorf("unit weights: sums (%v, %v) != count %d exactly", unit.SumW, unit.SumW2, unit.N)
	}
	if ess := unit.ESS(); ess != float64(unit.N) {
		t.Errorf("unit weights: ESS %v != N %d exactly", ess, unit.N)
	}

	ws := testWeights(50000, 7)
	var tally Weighted
	for _, w := range ws {
		tally.Add(w)
	}
	refSum, refSum2 := naiveSums(ws)
	if rel := math.Abs(tally.Sum()-refSum) / refSum; rel > 1e-12 {
		t.Errorf("weight sum %v vs reference %v: relative error %v", tally.Sum(), refSum, rel)
	}
	if rel := math.Abs(tally.SumSquares()-refSum2) / refSum2; rel > 1e-12 {
		t.Errorf("squared sum %v vs reference %v: relative error %v", tally.SumSquares(), refSum2, rel)
	}
}

// TestWeightedESSBounds pins ESS ∈ (0, n] across weight shapes, and the
// two edges: equal weights give ESS = n, one dominant weight drives ESS
// toward 1.
func TestWeightedESSBounds(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		var tally Weighted
		ws := testWeights(10000, seed)
		for _, w := range ws {
			tally.Add(w)
		}
		ess := tally.ESS()
		if !(ess > 0 && ess <= float64(tally.N)) {
			t.Errorf("seed %d: ESS %v outside (0, %d]", seed, ess, tally.N)
		}
	}
	var equal Weighted
	for i := 0; i < 1000; i++ {
		equal.Add(0.25)
	}
	if ess := equal.ESS(); math.Abs(ess-1000) > 1e-9 {
		t.Errorf("equal weights: ESS %v, want 1000", ess)
	}
	var skew Weighted
	skew.Add(1e12)
	for i := 0; i < 1000; i++ {
		skew.Add(1e-6)
	}
	if ess := skew.ESS(); ess >= 1.01 {
		t.Errorf("dominated tally: ESS %v, want ≈ 1", ess)
	}
	if (Weighted{}).ESS() != 0 {
		t.Error("empty tally: ESS must be 0")
	}
}

// TestWeightedMergeAssociativity re-splits one event sequence into the
// shard counts the engine actually uses and asserts every split merges to
// the same totals within rounding. Kahan summation is not bit-associative,
// so the bound is a relative tolerance, not equality — the engine gets
// bit-identical results by fixing the merge order, not by this property.
func TestWeightedMergeAssociativity(t *testing.T) {
	ws := testWeights(30000, 11)
	splits := []int{1, 2, 7, 16}
	var ref Weighted
	for _, w := range ws {
		ref.Add(w)
	}
	ref.Finalize()
	for _, shards := range splits {
		var total Weighted
		for s := 0; s < shards; s++ {
			var part Weighted
			for i := s; i < len(ws); i += shards {
				part.Add(ws[i])
			}
			total.Merge(part)
		}
		total.Finalize()
		if total.N != ref.N {
			t.Fatalf("%d shards: merged N %d != %d", shards, total.N, ref.N)
		}
		if rel := math.Abs(total.SumW-ref.SumW) / ref.SumW; rel > 1e-12 {
			t.Errorf("%d shards: merged sum %v vs %v (rel %v)", shards, total.SumW, ref.SumW, rel)
		}
		if rel := math.Abs(total.SumW2-ref.SumW2) / ref.SumW2; rel > 1e-12 {
			t.Errorf("%d shards: merged sum² %v vs %v (rel %v)", shards, total.SumW2, ref.SumW2, rel)
		}
	}
}

// TestWeightedFinalizeRoundTrip asserts Finalize publishes exactly the
// compensated totals — the value Sum() was already reporting — and that a
// finalized tally is a fixed point (the JSON round-trip guarantee: the
// exported fields alone carry the full state).
func TestWeightedFinalizeRoundTrip(t *testing.T) {
	var tally Weighted
	for _, w := range testWeights(20000, 3) {
		tally.Add(w)
	}
	wantSum, wantSum2 := tally.Sum(), tally.SumSquares()
	tally.Finalize()
	if tally.SumW != wantSum || tally.SumW2 != wantSum2 {
		t.Errorf("Finalize changed the compensated totals: (%v, %v) vs (%v, %v)",
			tally.SumW, tally.SumW2, wantSum, wantSum2)
	}
	roundTripped := Weighted{N: tally.N, SumW: tally.SumW, SumW2: tally.SumW2}
	if roundTripped.Sum() != tally.Sum() || roundTripped.ESS() != tally.ESS() {
		t.Error("exported fields do not reproduce the finalized tally")
	}
	again := tally
	again.Finalize()
	if again != tally {
		t.Error("Finalize is not a fixed point on a finalized tally")
	}
}

// TestEstimateWeightedRateUnitIdentity pins the CI identity: a unit-weight
// tally must produce bit-for-bit the interval EstimateRate computes for
// the same integer count — this is what lets the zero-bias campaign
// publish identical cross sections through the weighted path.
func TestEstimateWeightedRateUnitIdentity(t *testing.T) {
	for _, n := range []int64{0, 1, 2, 17, 400} {
		var tally Weighted
		for i := int64(0); i < n; i++ {
			tally.Add(1)
		}
		tally.Finalize()
		const exposure = 3.5e9
		got, err := EstimateWeightedRate(tally, exposure)
		if err != nil {
			t.Fatal(err)
		}
		want, err := EstimateRate(n, exposure)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("n=%d: weighted estimate %+v != exact estimate %+v", n, got, want)
		}
	}
}

// TestPoissonBoundsFloatMatchesPoissonConfidence asserts the fractional
// Garwood bounds reduce to PoissonConfidence arithmetic at integer
// counts, and behave sanely between them (monotone, finite).
func TestPoissonBoundsFloatMatchesPoissonConfidence(t *testing.T) {
	for _, n := range []int64{0, 1, 5, 100, 10000} {
		lower, upper := PoissonBoundsFloat(float64(n), 0.95)
		ci := PoissonConfidence(n, 0.95)
		if lower != ci.Lower || upper != ci.Upper {
			t.Errorf("n=%d: float bounds (%v, %v) != integer bounds (%v, %v)",
				n, lower, upper, ci.Lower, ci.Upper)
		}
	}
	prevLower, prevUpper := PoissonBoundsFloat(0, 0.95)
	for c := 0.5; c <= 20; c += 0.5 {
		lower, upper := PoissonBoundsFloat(c, 0.95)
		if !(lower >= prevLower && upper > prevUpper) {
			t.Errorf("count %v: bounds (%v, %v) not monotone after (%v, %v)", c, lower, upper, prevLower, prevUpper)
		}
		if math.IsNaN(lower) || math.IsInf(upper, 0) {
			t.Errorf("count %v: degenerate bounds (%v, %v)", c, lower, upper)
		}
		prevLower, prevUpper = lower, upper
	}
	if l, u := PoissonBoundsFloat(-1, 0.95); !math.IsNaN(l) || !math.IsNaN(u) {
		t.Errorf("negative count: bounds (%v, %v), want NaN", l, u)
	}
	if l, u := PoissonBoundsFloat(math.NaN(), 0.95); !math.IsNaN(l) || !math.IsNaN(u) {
		t.Errorf("NaN count: bounds (%v, %v), want NaN", l, u)
	}
}
