package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("mean = %v N = %d", s.Mean, s.N)
	}
	if math.Abs(s.Variance-32.0/7) > 1e-12 {
		t.Errorf("variance = %v, want %v", s.Variance, 32.0/7)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrNoData {
		t.Errorf("err = %v, want ErrNoData", err)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{3.5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 3.5 || s.Std != 0 || s.Variance != 0 {
		t.Errorf("single-sample summary wrong: %+v", s)
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{1, 2, 3}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{5}, 5},
		{nil, 0},
	}
	for _, tt := range tests {
		if got := Median(tt.xs); got != tt.want {
			t.Errorf("Median(%v) = %v, want %v", tt.xs, got, tt.want)
		}
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		q1 := Quantile(raw, 0.25)
		q2 := Quantile(raw, 0.75)
		return q1 <= q2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Known Garwood 95% Poisson CI values (e.g. from standard tables).
func TestPoisson95KnownValues(t *testing.T) {
	tests := []struct {
		count        int64
		lower, upper float64
	}{
		{0, 0, 3.689},
		{1, 0.0253, 5.572},
		{5, 1.623, 11.668},
		{10, 4.795, 18.390},
		{100, 81.36, 121.63},
	}
	for _, tt := range tests {
		ci := Poisson95(tt.count)
		if math.Abs(ci.Lower-tt.lower) > 0.01*math.Max(tt.lower, 0.5) {
			t.Errorf("count %d lower = %v, want %v", tt.count, ci.Lower, tt.lower)
		}
		if math.Abs(ci.Upper-tt.upper) > 0.01*tt.upper {
			t.Errorf("count %d upper = %v, want %v", tt.count, ci.Upper, tt.upper)
		}
	}
}

func TestPoissonCICoversCount(t *testing.T) {
	for _, k := range []int64{1, 2, 7, 50, 1000} {
		ci := Poisson95(k)
		if float64(k) < ci.Lower || float64(k) > ci.Upper {
			t.Errorf("CI for %d does not contain the count: [%v, %v]", k, ci.Lower, ci.Upper)
		}
	}
}

func TestPoissonCIRelativeWidthShrinks(t *testing.T) {
	w10 := Poisson95(10).RelativeWidth()
	w1000 := Poisson95(1000).RelativeWidth()
	if w1000 >= w10 {
		t.Errorf("relative width should shrink with count: w(10)=%v w(1000)=%v", w10, w1000)
	}
	if !math.IsInf(Poisson95(0).RelativeWidth(), 1) {
		t.Error("zero count should have infinite relative width")
	}
}

func TestPoissonConfidenceBadConfidenceDefaults(t *testing.T) {
	ci := PoissonConfidence(5, 1.5)
	if ci.Confidence != 0.95 {
		t.Errorf("confidence = %v, want default 0.95", ci.Confidence)
	}
}

func TestNormalQuantile(t *testing.T) {
	tests := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.8413447, 1.0},
	}
	for _, tt := range tests {
		if got := NormalQuantile(tt.p); math.Abs(got-tt.want) > 1e-4 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("quantile at 0/1 should be infinite")
	}
}

func TestRegularizedGammaP(t *testing.T) {
	// P(1, x) = 1 - exp(-x).
	for _, x := range []float64{0.1, 1, 3, 10} {
		want := 1 - math.Exp(-x)
		if got := RegularizedGammaP(1, x); math.Abs(got-want) > 1e-10 {
			t.Errorf("P(1,%v) = %v, want %v", x, got, want)
		}
	}
	// P(a, 0) = 0; P(a, large) → 1.
	if got := RegularizedGammaP(3, 0); got != 0 {
		t.Errorf("P(3,0) = %v", got)
	}
	if got := RegularizedGammaP(3, 100); math.Abs(got-1) > 1e-10 {
		t.Errorf("P(3,100) = %v", got)
	}
}

func TestEstimateRate(t *testing.T) {
	re, err := EstimateRate(50, 1e10)
	if err != nil {
		t.Fatal(err)
	}
	if re.Rate != 5e-9 {
		t.Errorf("rate = %v", re.Rate)
	}
	if re.Lower >= re.Rate || re.Upper <= re.Rate {
		t.Errorf("interval [%v,%v] does not bracket rate %v", re.Lower, re.Upper, re.Rate)
	}
}

func TestEstimateRateZeroExposure(t *testing.T) {
	if _, err := EstimateRate(5, 0); err == nil {
		t.Error("expected error for zero exposure")
	}
}

func TestRatioCI(t *testing.T) {
	num := RateEstimate{Events: 400, Rate: 4e-8}
	den := RateEstimate{Events: 100, Rate: 2e-8}
	ratio, lo, hi := RatioCI(num, den)
	if ratio != 2 {
		t.Errorf("ratio = %v", ratio)
	}
	if lo >= 2 || hi <= 2 {
		t.Errorf("CI [%v,%v] should bracket 2", lo, hi)
	}
}

func TestRatioCIZeroDenominator(t *testing.T) {
	ratio, _, _ := RatioCI(RateEstimate{Events: 5, Rate: 1}, RateEstimate{})
	if !math.IsNaN(ratio) {
		t.Errorf("ratio = %v, want NaN", ratio)
	}
}
