package memsim

import (
	"testing"
	"testing/quick"

	"neutronsim/internal/rng"
)

func TestEncodeDecodeClean(t *testing.T) {
	f := func(data uint64) bool {
		cw := Encode(data)
		got, status := Decode(cw)
		return got == data && status == DecodeClean
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every single-bit data error is corrected.
func TestSingleBitDataErrorsCorrected(t *testing.T) {
	f := func(data uint64, bitRaw uint8) bool {
		bit := int(bitRaw) % 64
		cw := Encode(data)
		cw.Data ^= 1 << uint(bit)
		got, status := Decode(cw)
		return got == data && status == DecodeCorrected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: every single-bit check error is corrected (data unchanged).
func TestSingleBitCheckErrorsCorrected(t *testing.T) {
	f := func(data uint64, bitRaw uint8) bool {
		bit := int(bitRaw) % 8
		cw := Encode(data)
		cw.Check ^= 1 << uint(bit)
		got, status := Decode(cw)
		return got == data && status == DecodeCorrected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: every double-bit data error is detected as uncorrectable.
func TestDoubleBitErrorsDetected(t *testing.T) {
	f := func(data uint64, b1Raw, b2Raw uint8) bool {
		b1 := int(b1Raw) % 64
		b2 := int(b2Raw) % 64
		if b1 == b2 {
			b2 = (b2 + 1) % 64
		}
		cw := Encode(data)
		cw.Data ^= 1 << uint(b1)
		cw.Data ^= 1 << uint(b2)
		_, status := Decode(cw)
		return status == DecodeUncorrectable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMixedDataCheckDoubleErrorDetected(t *testing.T) {
	s := rng.New(1)
	for i := 0; i < 2000; i++ {
		data := s.Uint64()
		cw := Encode(data)
		cw.Data ^= 1 << uint(s.Intn(64))
		cw.Check ^= 1 << uint(s.Intn(7)) // avoid the overall parity bit
		got, status := Decode(cw)
		if status == DecodeCorrected && got != data {
			t.Fatalf("miscorrected double error to wrong data")
		}
		if status == DecodeClean {
			t.Fatalf("double error decoded as clean")
		}
	}
}

func TestExhaustiveSingleBitForOneWord(t *testing.T) {
	const data = 0xDEADBEEFCAFEF00D
	for bit := 0; bit < 64; bit++ {
		cw := Encode(data)
		cw.Data ^= 1 << uint(bit)
		got, status := Decode(cw)
		if status != DecodeCorrected || got != data {
			t.Fatalf("bit %d: status %v, data %#x", bit, status, got)
		}
	}
	for bit := 0; bit < 8; bit++ {
		cw := Encode(data)
		cw.Check ^= 1 << uint(bit)
		got, status := Decode(cw)
		if status != DecodeCorrected || got != data {
			t.Fatalf("check bit %d: status %v", bit, status)
		}
	}
}

func TestDecodeStatusString(t *testing.T) {
	if DecodeClean.String() != "clean" || DecodeCorrected.String() != "corrected" ||
		DecodeUncorrectable.String() != "uncorrectable" || DecodeStatus(0).String() != "unknown" {
		t.Error("status names wrong")
	}
}

// FuzzDecode ensures arbitrary codewords never panic the decoder and that
// corrected results re-encode cleanly.
func FuzzDecode(f *testing.F) {
	f.Add(uint64(0), uint8(0))
	f.Add(uint64(0xDEADBEEF), uint8(0x55))
	f.Fuzz(func(t *testing.T, data uint64, check uint8) {
		got, status := Decode(Codeword{Data: data, Check: check})
		if status == DecodeClean || status == DecodeCorrected {
			// A clean/corrected word must decode to itself afterwards.
			again, status2 := Decode(Encode(got))
			if status2 != DecodeClean || again != got {
				t.Fatalf("corrected word unstable: %#x -> %#x (%v)", got, again, status2)
			}
		}
	})
}
