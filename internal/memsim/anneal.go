package memsim

import (
	"errors"
	"math"

	"neutronsim/internal/rng"
)

// Annealing model. The paper notes that permanent errors "are caused by
// Displacement Damage (the neutron dislocates atoms in the transistor) and
// can possibly be repaired with annealing (i.e., heating the device)"
// (§IV, after quinnDDR/srour2003). Defect recombination is thermally
// activated, so the repair probability of a stuck-at cell follows an
// Arrhenius law in temperature and saturates exponentially in time.

const (
	// annealActivationEV is the effective activation energy of the
	// dominant displacement-defect recombination path in DRAM silicon.
	annealActivationEV = 0.8
	// annealPrefactorPerHour sets the attempt frequency so that a bake at
	// 100 °C repairs most cells within a day.
	annealPrefactorPerHour = 2e10
	kBoltzmannEVPerK       = 8.617333262e-5
)

// AnnealRepairProbability returns the probability that one stuck-at cell
// recovers after baking at tempC for the given hours.
func AnnealRepairProbability(tempC, hours float64) float64 {
	if hours <= 0 {
		return 0
	}
	tk := tempC + 273.15
	if tk <= 0 {
		return 0
	}
	rate := annealPrefactorPerHour * math.Exp(-annealActivationEV/(kBoltzmannEVPerK*tk))
	return 1 - math.Exp(-rate*hours)
}

// AnnealResult describes one bake cycle applied to a module with live
// permanent faults.
type AnnealResult struct {
	TempC     float64
	Hours     float64
	Before    int64
	Repaired  int64
	Remaining int64
	// PerCellRepairProbability is the Arrhenius repair probability used.
	PerCellRepairProbability float64
}

// Anneal applies a bake cycle to a module that ended a campaign with the
// given number of permanent faults, sampling how many recover.
func Anneal(permanents int64, tempC, hours float64, s *rng.Stream) (AnnealResult, error) {
	if permanents < 0 {
		return AnnealResult{}, errors.New("memsim: negative permanent count")
	}
	if s == nil {
		return AnnealResult{}, errors.New("memsim: nil rng stream")
	}
	p := AnnealRepairProbability(tempC, hours)
	repaired := s.Binomial(permanents, p)
	return AnnealResult{
		TempC:                    tempC,
		Hours:                    hours,
		Before:                   permanents,
		Repaired:                 repaired,
		Remaining:                permanents - repaired,
		PerCellRepairProbability: p,
	}, nil
}
