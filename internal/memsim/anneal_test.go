package memsim

import (
	"math"
	"testing"
	"testing/quick"

	"neutronsim/internal/rng"
)

func TestAnnealRepairProbabilityMonotoneInTemperature(t *testing.T) {
	f := func(rawT float64) bool {
		tempC := 20 + math.Abs(math.Mod(rawT, 150))
		lo := AnnealRepairProbability(tempC, 10)
		hi := AnnealRepairProbability(tempC+20, 10)
		return hi >= lo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAnnealRepairProbabilityMonotoneInTime(t *testing.T) {
	lo := AnnealRepairProbability(100, 1)
	hi := AnnealRepairProbability(100, 24)
	if hi <= lo {
		t.Errorf("longer bake should repair more: %v vs %v", lo, hi)
	}
}

func TestAnnealRepairProbabilityBounds(t *testing.T) {
	for _, tempC := range []float64{-50, 25, 100, 250} {
		for _, hours := range []float64{0, 0.1, 100} {
			p := AnnealRepairProbability(tempC, hours)
			if p < 0 || p > 1 {
				t.Fatalf("p(%v°C, %vh) = %v", tempC, hours, p)
			}
		}
	}
	if AnnealRepairProbability(100, 0) != 0 {
		t.Error("zero-duration bake should repair nothing")
	}
	if AnnealRepairProbability(-273.15, 10) != 0 {
		t.Error("absolute zero should repair nothing")
	}
}

func TestAnnealRegimes(t *testing.T) {
	// Room temperature barely repairs; a 100°C day-long bake repairs most.
	room := AnnealRepairProbability(25, 24)
	bake := AnnealRepairProbability(100, 24)
	if room > 0.2 {
		t.Errorf("room-temperature self-annealing too strong: %v", room)
	}
	if bake < 0.8 {
		t.Errorf("100°C bake too weak: %v", bake)
	}
}

func TestAnneal(t *testing.T) {
	s := rng.New(1)
	res, err := Anneal(1000, 100, 24, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Repaired+res.Remaining != res.Before {
		t.Errorf("counts inconsistent: %+v", res)
	}
	frac := float64(res.Repaired) / 1000
	if math.Abs(frac-res.PerCellRepairProbability) > 0.05 {
		t.Errorf("repaired fraction %v vs probability %v", frac, res.PerCellRepairProbability)
	}
}

func TestAnnealValidation(t *testing.T) {
	s := rng.New(2)
	if _, err := Anneal(-1, 100, 1, s); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := Anneal(10, 100, 1, nil); err == nil {
		t.Error("nil stream accepted")
	}
}

func TestAnnealZeroFaults(t *testing.T) {
	s := rng.New(3)
	res, err := Anneal(0, 100, 24, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Repaired != 0 || res.Remaining != 0 {
		t.Errorf("ghost repairs: %+v", res)
	}
}
