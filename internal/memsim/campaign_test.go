package memsim

import (
	"math"
	"strings"
	"testing"

	"neutronsim/internal/spectrum"
)

func thermalRun(t *testing.T, spec ModuleSpec, hours float64, seed uint64) *Result {
	t.Helper()
	res, err := Run(Config{
		Spec:            spec,
		Band:            ThermalBeam,
		Flux:            spectrum.ROTAXTotalFlux,
		DurationSeconds: hours * 3600,
		Seed:            seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestValidation(t *testing.T) {
	good := Config{
		Spec: DDR3Module(), Band: ThermalBeam,
		Flux: 1e6, DurationSeconds: 10,
	}
	bad := []func(*Config){
		func(c *Config) { c.Band = 0 },
		func(c *Config) { c.Flux = 0 },
		func(c *Config) { c.DurationSeconds = 0 },
		func(c *Config) { c.Spec.CapacityGB = 0 },
		func(c *Config) { c.Spec.ThermalSigmaPerGbit = 0 },
		func(c *Config) { c.Spec.BiasFraction = 0.2 },
		func(c *Config) { c.Spec.CategoryWeights = nil },
		func(c *Config) { c.Spec.SEFIBurstMin = 0 },
	}
	for i, mutate := range bad {
		cfg := good
		cfg.Spec = DDR3Module()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestSpecStrings(t *testing.T) {
	s := DDR3Module().String()
	for _, want := range []string{"DDR3", "4GB", "1.5V", "1866MHz", "10-11-10"} {
		if !strings.Contains(s, want) {
			t.Errorf("spec %q missing %q", s, want)
		}
	}
	if DDR4Module().Generation.String() != "DDR4" {
		t.Error("generation name")
	}
	if Generation(0).String() != "unknown" || Band(0).String() != "unknown" {
		t.Error("unknown names")
	}
	if OneToZero.String() != "1→0" || ZeroToOne.String() != "0→1" || Direction(0).String() != "unknown" {
		t.Error("direction names")
	}
	if Transient.String() != "transient" || SEFI.String() != "SEFI" || Category(0).String() != "unknown" {
		t.Error("category names")
	}
	if ThermalBeam.String() != "thermal" || FastBeam.String() != "fast" {
		t.Error("band names")
	}
}

func TestCapacities(t *testing.T) {
	if DDR3Module().Gbits() != 32 || DDR4Module().Gbits() != 64 {
		t.Error("Gbit capacities wrong")
	}
	if DDR3Module().Bits() != 4<<33 {
		t.Error("bit capacity wrong")
	}
}

func TestDDR3ThermalTaxonomy(t *testing.T) {
	res := thermalRun(t, DDR3Module(), 10, 1)
	if res.Events < 100 {
		t.Fatalf("too few events for taxonomy check: %d", res.Events)
	}
	total := float64(res.Events)
	perm := float64(res.ByCategory[Permanent]) / total
	if perm >= 0.40 {
		t.Errorf("DDR3 permanent share = %v, paper reports < 0.30", perm)
	}
	if res.ByCategory[SEFI] == 0 {
		t.Error("DDR3 should show SEFI events")
	}
	dir, bias := res.DirectionBias()
	if dir != OneToZero {
		t.Errorf("DDR3 dominant direction = %v, want 1→0", dir)
	}
	if bias < 0.93 {
		t.Errorf("DDR3 direction bias = %v, paper reports > 0.95", bias)
	}
}

func TestDDR4ThermalTaxonomy(t *testing.T) {
	res := thermalRun(t, DDR4Module(), 40, 2)
	if res.Events < 100 {
		t.Fatalf("too few events: %d", res.Events)
	}
	total := float64(res.Events)
	perm := float64(res.ByCategory[Permanent]) / total
	if perm <= 0.40 {
		t.Errorf("DDR4 permanent share = %v, paper reports > 0.50", perm)
	}
	if res.ByCategory[SEFI] == 0 {
		t.Error("DDR4 should show SEFI events")
	}
	dir, bias := res.DirectionBias()
	if dir != ZeroToOne {
		t.Errorf("DDR4 dominant direction = %v, want 0→1", dir)
	}
	if bias < 0.93 {
		t.Errorf("DDR4 direction bias = %v", bias)
	}
}

func TestDDR4OrderOfMagnitudeLower(t *testing.T) {
	r3 := thermalRun(t, DDR3Module(), 10, 3)
	r4 := thermalRun(t, DDR4Module(), 10, 4)
	if r3.SigmaPerGbit.Rate == 0 || r4.SigmaPerGbit.Rate == 0 {
		t.Fatal("zero cross sections")
	}
	ratio := r3.SigmaPerGbit.Rate / r4.SigmaPerGbit.Rate
	if ratio < 5 || ratio > 20 {
		t.Errorf("DDR3/DDR4 sigma ratio = %v, paper reports ~10x", ratio)
	}
}

func TestTransientsAndIntermittentsSingleBit(t *testing.T) {
	// "all the observed transient and intermittent errors were single bit
	// flip" — only SEFIs may contribute multi-bit events.
	res := thermalRun(t, DDR3Module(), 10, 5)
	if res.MultiBitEvents != res.ByCategory[SEFI] {
		t.Errorf("multi-bit events %d != SEFI events %d",
			res.MultiBitEvents, res.ByCategory[SEFI])
	}
	wantSingle := res.Events - res.ByCategory[SEFI]
	if res.SingleBitEvents != wantSingle {
		t.Errorf("single-bit events %d, want %d", res.SingleBitEvents, wantSingle)
	}
}

func TestClassifierRecoversTruth(t *testing.T) {
	res := thermalRun(t, DDR3Module(), 10, 6)
	for _, cat := range []Category{Transient, Intermittent, Permanent, SEFI} {
		truth := float64(res.TruthByCategory[cat])
		got := float64(res.ByCategory[cat])
		if truth == 0 {
			continue
		}
		if math.Abs(got-truth)/truth > 0.35 {
			t.Errorf("%v: classified %v vs truth %v", cat, got, truth)
		}
	}
}

func TestChipIRAbortsOnPermanents(t *testing.T) {
	res, err := Run(Config{
		Spec:                DDR3Module(),
		Band:                FastBeam,
		Flux:                spectrum.ChipIR().TotalFlux(),
		DurationSeconds:     3600,
		PermanentAbortLimit: 100,
		Seed:                7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Fatal("ChipIR campaign should abort on permanent pile-up")
	}
	// "after few minutes of irradiation" — well under the hour.
	if res.Passes > 1800 {
		t.Errorf("abort took %d s, want minutes", res.Passes)
	}
}

func TestThermalDoesNotAbort(t *testing.T) {
	res, err := Run(Config{
		Spec:                DDR3Module(),
		Band:                ThermalBeam,
		Flux:                spectrum.ROTAXTotalFlux,
		DurationSeconds:     2 * 3600,
		PermanentAbortLimit: 100,
		Seed:                8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Error("thermal campaign aborted; ROTAX runs completed in the paper")
	}
}

func TestECCAccounting(t *testing.T) {
	res, err := Run(Config{
		Spec:            DDR3Module(),
		Band:            ThermalBeam,
		Flux:            spectrum.ROTAXTotalFlux,
		DurationSeconds: 10 * 3600,
		ECC:             true,
		Seed:            9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ECCCorrected == 0 {
		t.Error("ECC corrected nothing over 10 h")
	}
	// Only SEFI words carry multi-bit corruption, so uncorrectables imply
	// SEFIs happened.
	if res.ECCUncorrectable > 0 && res.TruthByCategory[SEFI] == 0 {
		t.Error("uncorrectable errors without any SEFI")
	}
	if res.TruthByCategory[SEFI] > 0 && res.ECCUncorrectable == 0 {
		t.Error("SEFIs occurred but ECC saw no uncorrectable words")
	}
}

func TestDeterminism(t *testing.T) {
	r1 := thermalRun(t, DDR3Module(), 2, 10)
	r2 := thermalRun(t, DDR3Module(), 2, 10)
	if r1.Events != r2.Events || r1.ByCategory[Permanent] != r2.ByCategory[Permanent] {
		t.Error("campaign not reproducible")
	}
}

func TestFluenceAccounting(t *testing.T) {
	res := thermalRun(t, DDR3Module(), 1, 11)
	want := float64(spectrum.ROTAXTotalFlux) * 3600
	if math.Abs(float64(res.Fluence)-want)/want > 1e-9 {
		t.Errorf("fluence = %v, want %v", res.Fluence, want)
	}
}

func TestResultString(t *testing.T) {
	res := thermalRun(t, DDR3Module(), 1, 12)
	s := res.String()
	for _, want := range []string{"DDR3", "thermal", "events"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

func TestDirectionBiasEmpty(t *testing.T) {
	var res Result
	res.ByDirection = map[Direction]int64{}
	if d, b := res.DirectionBias(); d != 0 || b != 0 {
		t.Error("empty bias should be zero")
	}
}

// Property: classified events always balance across the taxonomy and the
// bit-count split, for arbitrary seeds and durations.
func TestClassifierBalanceProperty(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		hours := 1 + float64(seed)
		res, err := Run(Config{
			Spec:            DDR3Module(),
			Band:            ThermalBeam,
			Flux:            spectrum.ROTAXTotalFlux,
			DurationSeconds: hours * 3600,
			Seed:            seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		for _, c := range []Category{Transient, Intermittent, Permanent, SEFI} {
			sum += res.ByCategory[c]
		}
		if sum != res.Events {
			t.Fatalf("seed %d: categories sum to %d, events %d", seed, sum, res.Events)
		}
		if res.SingleBitEvents+res.MultiBitEvents != res.Events {
			t.Fatalf("seed %d: bit split %d+%d != %d", seed,
				res.SingleBitEvents, res.MultiBitEvents, res.Events)
		}
		var dirSum int64
		for _, n := range res.ByDirection {
			dirSum += n
		}
		if dirSum != res.Events-res.ByCategory[SEFI] {
			t.Fatalf("seed %d: direction-classified %d != non-SEFI events %d",
				seed, dirSum, res.Events-res.ByCategory[SEFI])
		}
	}
}
