// Package memsim simulates the DDR3/DDR4 DRAM beam experiments of the
// paper (§IV): modules under a thermal beam running a continuous
// read/write "correct loop", with errors classified into transient,
// intermittent, permanent, and SEFI categories, and cross sections
// reported per Gbit.
package memsim

import (
	"errors"
	"fmt"

	"neutronsim/internal/units"
)

// Generation is the DRAM generation under test.
type Generation int

// DRAM generations.
const (
	DDR3 Generation = iota + 1
	DDR4
)

// String names the generation.
func (g Generation) String() string {
	switch g {
	case DDR3:
		return "DDR3"
	case DDR4:
		return "DDR4"
	default:
		return "unknown"
	}
}

// Direction is a bit-flip direction. DRAM cells are asymmetric: the paper
// observes >95% of DDR3 errors as 1→0 and >95% of DDR4 errors as 0→1,
// suggesting complementary cell logic (§IV).
type Direction int

// Flip directions.
const (
	OneToZero Direction = iota + 1
	ZeroToOne
)

// String names the direction.
func (d Direction) String() string {
	switch d {
	case OneToZero:
		return "1→0"
	case ZeroToOne:
		return "0→1"
	default:
		return "unknown"
	}
}

// Category is the paper's four-way error taxonomy (§IV).
type Category int

// Error categories.
const (
	Transient Category = iota + 1
	Intermittent
	Permanent
	SEFI
)

// String names the category.
func (c Category) String() string {
	switch c {
	case Transient:
		return "transient"
	case Intermittent:
		return "intermittent"
	case Permanent:
		return "permanent"
	case SEFI:
		return "SEFI"
	default:
		return "unknown"
	}
}

// ModuleSpec describes one DIMM under test, combining the electrical
// parameters the paper quotes with the calibrated sensitivity model.
type ModuleSpec struct {
	Generation   Generation
	CapacityGB   int
	VoltageV     float64
	FrequencyMHz int
	Timings      string

	// ThermalSigmaPerGbit is the per-Gbit thermal-neutron event cross
	// section (cm²); the DDR4 value is ~one order of magnitude below
	// DDR3's (§IV, Fig. DDRCS).
	ThermalSigmaPerGbit units.CrossSection
	// FastSigmaPerGbit drives the ChipIR behaviour, where permanent
	// faults pile up within minutes and abort the campaign (§IV).
	FastSigmaPerGbit units.CrossSection

	// BiasDirection and BiasFraction describe the dominant flip direction.
	BiasDirection Direction
	BiasFraction  float64

	// CategoryWeights gives the underlying physical mix of fault kinds.
	// The correct-loop classifier must recover approximately these
	// proportions.
	CategoryWeights map[Category]float64

	// IntermittentReadProb is the chance an intermittent cell misreads on
	// any given pass while active.
	IntermittentReadProb float64
	// SEFIBurstMin/Max bound the number of words corrupted by one SEFI.
	SEFIBurstMin, SEFIBurstMax int
}

// Gbits returns the module capacity in gigabits.
func (m ModuleSpec) Gbits() float64 { return float64(m.CapacityGB) * 8 }

// Bits returns the module capacity in bits.
func (m ModuleSpec) Bits() uint64 { return uint64(m.CapacityGB) << 33 }

// Validate checks the spec.
func (m ModuleSpec) Validate() error {
	switch {
	case m.CapacityGB <= 0:
		return errors.New("memsim: non-positive capacity")
	case m.ThermalSigmaPerGbit <= 0:
		return errors.New("memsim: non-positive thermal sigma")
	case m.BiasFraction < 0.5 || m.BiasFraction > 1:
		return fmt.Errorf("memsim: bias fraction %v out of [0.5,1]", m.BiasFraction)
	case len(m.CategoryWeights) == 0:
		return errors.New("memsim: missing category weights")
	case m.SEFIBurstMin <= 0 || m.SEFIBurstMax < m.SEFIBurstMin:
		return errors.New("memsim: bad SEFI burst bounds")
	}
	total := 0.0
	for c, w := range m.CategoryWeights {
		if w < 0 {
			return fmt.Errorf("memsim: negative weight for %v", c)
		}
		total += w
	}
	if total <= 0 {
		return errors.New("memsim: zero total category weight")
	}
	return nil
}

// String summarizes the module.
func (m ModuleSpec) String() string {
	return fmt.Sprintf("%v %dGB %.1fV %dMHz %s", m.Generation, m.CapacityGB,
		m.VoltageV, m.FrequencyMHz, m.Timings)
}

// DDR3Module is the paper's DDR3 DUT: 4 GB, single-rank x8, 1.5 V,
// 1866 MHz, timings 10-11-10 (§IV). Calibration: permanent share < 30%,
// 1→0 bias > 95%.
func DDR3Module() ModuleSpec {
	return ModuleSpec{
		Generation:   DDR3,
		CapacityGB:   4,
		VoltageV:     1.5,
		FrequencyMHz: 1866,
		Timings:      "10-11-10",
		// The physical event rate is set so the *observed* cross section
		// lands near 1e-10 cm²/Gbit: only flips whose direction matches
		// the currently stored pattern materialize, so roughly half of
		// the transient/intermittent candidates are invisible.
		ThermalSigmaPerGbit: 1.65e-10,
		FastSigmaPerGbit:    5.0e-9,
		BiasDirection:       OneToZero,
		BiasFraction:        0.98,
		// Weights are chosen so the classifier's observed shares match
		// the paper: ~40% transient, ~25% intermittent, <30% permanent,
		// plus SEFIs (§IV).
		CategoryWeights: map[Category]float64{
			Transient:    0.485,
			Intermittent: 0.303,
			Permanent:    0.164,
			SEFI:         0.048,
		},
		IntermittentReadProb: 0.35,
		SEFIBurstMin:         200,
		SEFIBurstMax:         4000,
	}
}

// DDR4Module is the paper's DDR4 DUT: 8 GB, single-rank x8, 1.2 V,
// 2133 MHz, timings 13-15-15-28 (§IV). Calibration: cross section one
// order of magnitude below DDR3, permanent share > 50%, 0→1 bias > 95%.
func DDR4Module() ModuleSpec {
	return ModuleSpec{
		Generation:          DDR4,
		CapacityGB:          8,
		VoltageV:            1.2,
		FrequencyMHz:        2133,
		Timings:             "13-15-15-28",
		ThermalSigmaPerGbit: 1.35e-11,
		FastSigmaPerGbit:    1.2e-9,
		BiasDirection:       ZeroToOne,
		BiasFraction:        0.965,
		// Observed-share targets: >50% permanent, ~22% transient, ~13%
		// intermittent, plus SEFIs (§IV).
		CategoryWeights: map[Category]float64{
			Transient:    0.326,
			Intermittent: 0.193,
			Permanent:    0.407,
			SEFI:         0.074,
		},
		IntermittentReadProb: 0.35,
		SEFIBurstMin:         200,
		SEFIBurstMax:         4000,
	}
}
