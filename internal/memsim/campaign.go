package memsim

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"neutronsim/internal/engine"
	"neutronsim/internal/rng"
	"neutronsim/internal/stats"
	"neutronsim/internal/telemetry"
	"neutronsim/internal/units"
)

// Band selects which sensitivity the beam exercises.
type Band int

// Beam bands for memory campaigns.
const (
	ThermalBeam Band = iota + 1
	FastBeam
)

// String names the band.
func (b Band) String() string {
	switch b {
	case ThermalBeam:
		return "thermal"
	case FastBeam:
		return "fast"
	default:
		return "unknown"
	}
}

// Config describes one correct-loop campaign (§IV): the module is filled
// with a known pattern (0xFF or 0x00, alternating between passes),
// continuously read, and rewritten after each observed error.
type Config struct {
	Spec ModuleSpec
	Band Band
	// Flux is the beam flux (e.g. ROTAX total flux for thermal runs).
	Flux units.Flux
	// DurationSeconds is the total beam time.
	DurationSeconds float64
	// PassSeconds is the time to read the whole module once (default 1).
	PassSeconds float64
	// ECC enables SECDED accounting.
	ECC bool
	// PermanentAbortLimit stops a campaign shard once this many permanent
	// faults are live in it — what happened to both modules "after few
	// minutes of irradiation at ChipIR" (§IV). Zero disables. Under
	// sharded execution the limit applies per shard (each shard is an
	// independent beam session; see DESIGN.md §9), and the merged result
	// reports Aborted when any session aborted.
	PermanentAbortLimit int
	Seed                uint64
	// Shards caps how many campaign shards execute concurrently (default
	// GOMAXPROCS). It never affects results; see internal/engine.
	Shards int
	// ShardGrain is the number of correct-loop passes per shard (default
	// 8192). Each shard models an independent beam session on a freshly
	// rewritten module: live faults do not carry across shard boundaries.
	// The grain is part of the deterministic seed schedule.
	ShardGrain int
}

// defaultShardGrain is the number of correct-loop passes per engine shard.
// An hour-long session stays a single shard; multi-hour campaigns split.
const defaultShardGrain = 8192

func (c Config) validate() error {
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	switch {
	case c.Band != ThermalBeam && c.Band != FastBeam:
		return errors.New("memsim: band must be thermal or fast")
	case c.Flux <= 0:
		return errors.New("memsim: non-positive flux")
	case c.DurationSeconds <= 0:
		return errors.New("memsim: non-positive duration")
	}
	return nil
}

// liveFault is a materialized cell fault.
type liveFault struct {
	addr     uint64
	dir      Direction
	kind     Category
	bornPass int
}

// Result reports a memory campaign.
type Result struct {
	Spec    ModuleSpec
	Band    Band
	Fluence units.Fluence
	Passes  int
	Aborted bool

	// Events are classified error events (a SEFI burst is one event).
	Events      int64
	ByCategory  map[Category]int64
	ByDirection map[Direction]int64
	// TruthByCategory is the generator-side ground truth, kept for
	// validating the observer-side classifier.
	TruthByCategory map[Category]int64

	SingleBitEvents int64
	MultiBitEvents  int64

	// ECC accounting (populated when Config.ECC is set).
	ECCCorrected     int64
	ECCUncorrectable int64

	// SigmaPerGbit is the classified-event cross section per Gbit.
	SigmaPerGbit stats.RateEstimate
}

// sefiThreshold is the per-pass count of previously unseen addresses above
// which the classifier attributes the burst to DDR control logic (SEFI).
const sefiThreshold = 50

// addrRecord is the streaming per-address observation summary. Keeping a
// compact record instead of the full observation list bounds campaign
// memory by the number of distinct erroring addresses, not by
// passes × stuck-at cells (a multi-day campaign would otherwise need
// gigabytes for the stuck-at observation stream).
type addrRecord struct {
	dir     Direction
	first   int // pass of first sighting
	count   int // total sightings
	maxBits int // worst per-word corruption seen
}

// recorder aggregates the observation stream as the correct loop runs.
type recorder struct {
	records    map[uint64]*addrRecord
	perPassNew map[int]int
	res        *Result
	ecc        bool
}

func newRecorder(res *Result, ecc bool) *recorder {
	return &recorder{
		records:    map[uint64]*addrRecord{},
		perPassNew: map[int]int{},
		res:        res,
		ecc:        ecc,
	}
}

// observe records one misread word.
func (r *recorder) observe(pass int, addr uint64, dir Direction, bits int) {
	rec := r.records[addr]
	if rec == nil {
		rec = &addrRecord{dir: dir, first: pass, maxBits: bits}
		r.records[addr] = rec
		r.perPassNew[pass]++
	}
	rec.count++
	if bits > rec.maxBits {
		rec.maxBits = bits
	}
	if r.ecc {
		if bits <= 1 {
			r.res.ECCCorrected++
		} else {
			r.res.ECCUncorrectable++
		}
	}
}

// Run executes the correct-loop campaign.
//
// The pass loop executes on the sharded engine: the campaign's passes are
// split into contiguous shards, each drawing from its own deterministic
// stream (engine.StreamForShard(Seed, shard)) and behaving like an
// independent beam session on a freshly rewritten module — live faults,
// the abort limit, and the taxonomy classifier are all per shard, and the
// merged result sums the per-session counts. The result is identical for
// any Shards worker count, including 1.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with a caller context: campaign spans nest under the
// caller's, progress posts reach any observer attached with
// telemetry.ContextWithProgress, and cancellation stops the campaign at the
// next shard boundary.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.PassSeconds <= 0 {
		cfg.PassSeconds = 1
	}
	sigma := cfg.Spec.ThermalSigmaPerGbit
	if cfg.Band == FastBeam {
		sigma = cfg.Spec.FastSigmaPerGbit
	}
	rate := float64(sigma) * cfg.Spec.Gbits() * float64(cfg.Flux) // events/s
	passes := int(cfg.DurationSeconds / cfg.PassSeconds)
	if passes < 1 {
		passes = 1
	}

	start := time.Now()
	shardResults, err := engine.Map(ctx, engine.Config{
		Workers: cfg.Shards,
		Grain:   cfg.ShardGrain,
		Seed:    cfg.Seed,
		Name:    "memsim",
		OnShardDone: func(_ engine.Shard, doneItems, totalItems int) {
			telemetry.ReportProgressContext(ctx, telemetry.ProgressUpdate{
				Component: "memsim",
				Device:    cfg.Spec.Generation.String(),
				Beam:      cfg.Band.String(),
				Done:      float64(doneItems),
				Total:     float64(totalItems),
				Fluence:   float64(cfg.Flux) * cfg.PassSeconds * float64(doneItems),
				Elapsed:   time.Since(start),
			})
		},
	}, passes, defaultShardGrain, func(_ context.Context, sh engine.Shard) (*Result, error) {
		return runShard(cfg, sh, rate), nil
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Spec:            cfg.Spec,
		Band:            cfg.Band,
		ByCategory:      map[Category]int64{},
		ByDirection:     map[Direction]int64{},
		TruthByCategory: map[Category]int64{},
	}
	elapsed := 0.0
	for _, sr := range shardResults {
		res.Passes += sr.Passes
		res.Aborted = res.Aborted || sr.Aborted
		res.Events += sr.Events
		res.SingleBitEvents += sr.SingleBitEvents
		res.MultiBitEvents += sr.MultiBitEvents
		res.ECCCorrected += sr.ECCCorrected
		res.ECCUncorrectable += sr.ECCUncorrectable
		for c, n := range sr.ByCategory {
			res.ByCategory[c] += n
		}
		for d, n := range sr.ByDirection {
			res.ByDirection[d] += n
		}
		for c, n := range sr.TruthByCategory {
			res.TruthByCategory[c] += n
		}
		elapsed += float64(sr.Passes) * cfg.PassSeconds
	}
	res.Fluence = units.Fluence(float64(cfg.Flux) * elapsed)
	res.SigmaPerGbit, err = stats.EstimateRate(res.Events, float64(res.Fluence)*cfg.Spec.Gbits())
	if err != nil {
		return nil, err
	}
	return res, nil
}

// runShard executes the shard's pass window [sh.Start, sh.Start+sh.Count)
// as one independent beam session: the module starts freshly written, the
// fault generator and the observer-side classifier both run shard-locally,
// and global pass indices keep the 0xFF/0x00 pattern phase aligned with
// the serial schedule.
func runShard(cfg Config, sh engine.Shard, rate float64) *Result {
	s := sh.Stream
	res := &Result{
		Spec:            cfg.Spec,
		Band:            cfg.Band,
		ByCategory:      map[Category]int64{},
		ByDirection:     map[Direction]int64{},
		TruthByCategory: map[Category]int64{},
	}
	rec := newRecorder(res, cfg.ECC)
	var live []liveFault
	permanents := 0

	catSampler := newCategorySampler(cfg.Spec.CategoryWeights)
	end := sh.Start + sh.Count
	for p := sh.Start; p < end; p++ {
		pattern := patternForPass(p) // true ⇒ cells hold 1 (0xFF)
		// New faults materialize during this pass.
		n := s.Poisson(rate * cfg.PassSeconds)
		for i := int64(0); i < n; i++ {
			kind := catSampler.sample(s)
			dir := cfg.Spec.BiasDirection
			if !s.Bernoulli(cfg.Spec.BiasFraction) {
				dir = otherDirection(dir)
			}
			switch kind {
			case SEFI:
				// Control-logic upset: a burst of addresses misread in
				// this pass only; the read direction follows the pattern.
				res.TruthByCategory[SEFI]++
				burst := cfg.Spec.SEFIBurstMin +
					s.Intn(cfg.Spec.SEFIBurstMax-cfg.Spec.SEFIBurstMin+1)
				bdir := OneToZero
				if !pattern {
					bdir = ZeroToOne
				}
				for b := 0; b < burst; b++ {
					rec.observe(p, s.Uint64n(cfg.Spec.Bits()), bdir, 1+s.Intn(8))
				}
			case Permanent:
				// Displacement damage forms regardless of the stored value.
				res.TruthByCategory[Permanent]++
				live = append(live, liveFault{
					addr: s.Uint64n(cfg.Spec.Bits()), dir: dir,
					kind: Permanent, bornPass: p,
				})
				permanents++
			default:
				// Bit flips require the cell to hold the susceptible
				// value: with an all-ones pattern only 1→0 can occur.
				if (dir == OneToZero) != pattern {
					continue
				}
				res.TruthByCategory[kind]++
				live = append(live, liveFault{
					addr: s.Uint64n(cfg.Spec.Bits()), dir: dir,
					kind: kind, bornPass: p,
				})
			}
		}
		// Read pass: collect misreads.
		keep := live[:0]
		for _, f := range live {
			visible := (f.dir == OneToZero) == pattern
			switch f.kind {
			case Transient:
				if visible {
					rec.observe(p, f.addr, f.dir, 1)
				}
				// Rewritten after the pass either way; transient gone.
			case Intermittent:
				if visible && s.Bernoulli(cfg.Spec.IntermittentReadProb) {
					rec.observe(p, f.addr, f.dir, 1)
				}
				keep = append(keep, f)
			case Permanent:
				if visible {
					rec.observe(p, f.addr, f.dir, 1)
				}
				keep = append(keep, f)
			}
		}
		live = keep
		res.Passes++
		if cfg.PermanentAbortLimit > 0 && permanents >= cfg.PermanentAbortLimit {
			res.Aborted = true
			break
		}
	}
	classify(res, rec, sh.Start+res.Passes)
	return res
}

func patternForPass(p int) bool { return p%2 == 0 }

// categorySampler draws fault categories with the spec's weights using a
// deterministic category order and an O(1) alias draw.
type categorySampler struct {
	cats []Category
	pick *rng.AliasTable
}

func newCategorySampler(weights map[Category]float64) *categorySampler {
	cs := &categorySampler{}
	var ws []float64
	for _, c := range []Category{Transient, Intermittent, Permanent, SEFI} {
		w := weights[c]
		if w <= 0 {
			continue
		}
		cs.cats = append(cs.cats, c)
		ws = append(ws, w)
	}
	if len(cs.cats) == 0 {
		// Degenerate spec with no positive weight: sample will panic, as
		// the cumulative-table version did. Validation rejects this
		// upstream.
		return cs
	}
	pick, err := rng.NewAliasTable(ws)
	if err != nil {
		panic(fmt.Sprintf("memsim: category weights: %v", err))
	}
	cs.pick = pick
	return cs
}

func (cs *categorySampler) sample(s *rng.Stream) Category {
	return cs.cats[cs.pick.Draw(s)]
}

func otherDirection(d Direction) Direction {
	if d == OneToZero {
		return ZeroToOne
	}
	return OneToZero
}

// classify reconstructs the paper's taxonomy purely from the aggregated
// observation records, the way the experimenters did:
//
//   - A pass where an abnormal number of previously unseen addresses error
//     at once is a SEFI burst (one event); the burst's one-shot addresses
//     are debris, not cell faults.
//   - An address seen exactly once is a transient.
//   - An address that errored on every pass whose pattern made its flip
//     direction readable, from first sighting to the end, is a stuck-at
//     (permanent) cell.
//   - Anything recurring with gaps is intermittent.
//
// endPass is the global index one past the last executed pass of the
// classified window; stuck-at detection needs it to count how many passes
// an address could have been observed on.
func classify(res *Result, rec *recorder, endPass int) {
	sefiPasses := map[int]bool{}
	for p, n := range rec.perPassNew {
		if n >= sefiThreshold {
			sefiPasses[p] = true
			res.Events++
			res.ByCategory[SEFI]++
			res.MultiBitEvents++
		}
	}
	// Deterministic iteration for reproducible results.
	addrs := make([]uint64, 0, len(rec.records))
	for a := range rec.records {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		h := rec.records[a]
		// SEFI debris: first (and only) sighting inside a burst pass.
		if sefiPasses[h.first] && h.count == 1 {
			continue
		}
		res.Events++
		res.ByDirection[h.dir]++
		if h.maxBits > 1 {
			res.MultiBitEvents++
		} else {
			res.SingleBitEvents++
		}
		switch {
		case h.count == 1:
			res.ByCategory[Transient]++
		case h.count >= readablePasses(h.first, endPass, h.dir):
			// Stuck-at cells error on every readable pass (including
			// SEFI-burst passes, where their observations still landed).
			res.ByCategory[Permanent]++
		default:
			res.ByCategory[Intermittent]++
		}
	}
}

// readablePasses counts the passes in [first, total) whose pattern makes a
// flip of direction dir observable.
func readablePasses(first, total int, dir Direction) int {
	if first >= total {
		return 0
	}
	n := total - first
	// Readable passes are the even-index passes for 1→0 (pattern all-ones)
	// and odd-index passes for 0→1.
	count := n / 2
	if n%2 == 1 {
		startReadable := (dir == OneToZero) == patternForPass(first)
		if startReadable {
			count++
		}
	}
	return count
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%v @ %v beam: passes=%d events=%d (T=%d I=%d P=%d SEFI=%d) σ/Gbit=%.3g cm² aborted=%v",
		r.Spec.Generation, r.Band, r.Passes, r.Events,
		r.ByCategory[Transient], r.ByCategory[Intermittent],
		r.ByCategory[Permanent], r.ByCategory[SEFI],
		r.SigmaPerGbit.Rate, r.Aborted)
}

// DirectionBias returns the fraction of direction-classified events in the
// dominant direction.
func (r *Result) DirectionBias() (Direction, float64) {
	oz := r.ByDirection[OneToZero]
	zo := r.ByDirection[ZeroToOne]
	total := oz + zo
	if total == 0 {
		return 0, 0
	}
	if oz >= zo {
		return OneToZero, float64(oz) / float64(total)
	}
	return ZeroToOne, float64(zo) / float64(total)
}
