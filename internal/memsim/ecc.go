package memsim

import "math/bits"

// SECDED implements the (72,64) single-error-correct, double-error-detect
// Hamming code used on server DIMMs. The paper's DDR conclusion rests on
// it: "SECDED ECC is shown to be sufficient to correct most thermal
// neutrons induced errors" because transient and intermittent upsets were
// all single-bit, while SEFIs corrupt many bits and defeat it (§IV).
//
// The code is a standard extended Hamming construction: check bit k
// (k=0..6) covers the data bits whose 7-bit position index (over the
// 64-bit word, after skipping power-of-two codeword positions) has bit k
// set; the eighth bit is overall parity.

// Codeword is a 72-bit ECC word: 64 data bits plus 8 check bits.
type Codeword struct {
	Data  uint64
	Check uint8
}

// dataBitPositions maps each of the 64 data bits to its position in the
// classic Hamming codeword (positions that are not powers of two).
var dataBitPositions = buildDataBitPositions()

func buildDataBitPositions() [64]uint32 {
	var out [64]uint32
	pos := uint32(1)
	for i := 0; i < 64; {
		pos++
		if pos&(pos-1) == 0 { // power of two → check-bit slot
			continue
		}
		out[i] = pos
		i++
	}
	return out
}

// Encode computes the 8 check bits for a 64-bit data word.
func Encode(data uint64) Codeword {
	var check uint8
	for k := 0; k < 7; k++ {
		parity := 0
		for i := 0; i < 64; i++ {
			if data&(1<<uint(i)) != 0 && dataBitPositions[i]&(1<<uint(k)) != 0 {
				parity ^= 1
			}
		}
		if parity == 1 {
			check |= 1 << uint(k)
		}
	}
	// Overall parity over data plus the 7 Hamming check bits.
	total := bits.OnesCount64(data) + bits.OnesCount8(check&0x7f)
	if total%2 == 1 {
		check |= 1 << 7
	}
	return Codeword{Data: data, Check: check}
}

// DecodeStatus classifies the outcome of a decode.
type DecodeStatus int

// Decode outcomes.
const (
	DecodeClean DecodeStatus = iota + 1
	DecodeCorrected
	DecodeUncorrectable
)

// String names the status.
func (s DecodeStatus) String() string {
	switch s {
	case DecodeClean:
		return "clean"
	case DecodeCorrected:
		return "corrected"
	case DecodeUncorrectable:
		return "uncorrectable"
	default:
		return "unknown"
	}
}

// Decode checks and (if possible) corrects a received codeword, returning
// the corrected data. Single-bit errors in data or check bits are
// corrected; double-bit errors are detected as uncorrectable.
func Decode(received Codeword) (uint64, DecodeStatus) {
	expected := Encode(received.Data)
	syndrome := (received.Check ^ expected.Check) & 0x7f
	parityErr := overallParity(received) != 0

	switch {
	case syndrome == 0 && !parityErr:
		return received.Data, DecodeClean
	case syndrome == 0 && parityErr:
		// The overall parity bit itself flipped.
		return received.Data, DecodeCorrected
	case parityErr:
		// Odd number of flips with a syndrome: single-bit error at the
		// position the syndrome names.
		for i := 0; i < 64; i++ {
			if dataBitPositions[i] == uint32(syndrome) {
				return received.Data ^ (1 << uint(i)), DecodeCorrected
			}
		}
		// Syndrome names a check-bit position: data is fine.
		if uint32(syndrome)&(uint32(syndrome)-1) == 0 {
			return received.Data, DecodeCorrected
		}
		return received.Data, DecodeUncorrectable
	default:
		// Syndrome set but overall parity clean: even number of flips.
		return received.Data, DecodeUncorrectable
	}
}

func overallParity(cw Codeword) int {
	return (bits.OnesCount64(cw.Data) + bits.OnesCount8(cw.Check)) % 2
}
