package materials

import (
	"math"
	"testing"

	"neutronsim/internal/rng"
	"neutronsim/internal/units"
)

func TestWaterComposition(t *testing.T) {
	w := Water()
	// Standard values: N(H2O) = 3.34e22 → H 6.69e22, O 3.34e22 atoms/cm³.
	if got := w.HydrogenDensity(); math.Abs(got-6.69e22)/6.69e22 > 0.01 {
		t.Errorf("water hydrogen density = %v, want ~6.69e22", got)
	}
	var oxygen float64
	for _, c := range w.Components() {
		if c.Element.Name == "O" {
			oxygen = c.NumberDensity
		}
	}
	if math.Abs(oxygen-3.34e22)/3.34e22 > 0.01 {
		t.Errorf("water oxygen density = %v, want ~3.34e22", oxygen)
	}
}

func TestWaterMacroscopicScatter(t *testing.T) {
	// Σs(water) ≈ 6.69e22*20.4b + 3.34e22*3.76b ≈ 1.49 cm⁻¹.
	got := Water().MacroScatter()
	if math.Abs(got-1.49)/1.49 > 0.05 {
		t.Errorf("water Σs = %v cm⁻¹, want ~1.49", got)
	}
}

func TestWaterAbsorption(t *testing.T) {
	// Σa(water, thermal) ≈ 6.69e22*0.332b ≈ 0.022 cm⁻¹.
	got := Water().MacroAbsorb(0.0253)
	if math.Abs(got-0.022)/0.022 > 0.1 {
		t.Errorf("water Σa = %v cm⁻¹, want ~0.022", got)
	}
}

func TestMeanFreePathWater(t *testing.T) {
	// Thermal mfp in water ≈ 0.66 cm (1/1.51).
	got := Water().MeanFreePath(0.0253)
	if got < 0.5 || got > 0.8 {
		t.Errorf("thermal mfp in water = %v cm, want ~0.66", got)
	}
}

func TestCadmiumBlocksThermalOnly(t *testing.T) {
	cd := CadmiumSheet()
	thermalProb := cd.AbsorptionProbability(0.0253)
	fastProb := cd.AbsorptionProbability(10 * units.MeV)
	if thermalProb < 0.9 {
		t.Errorf("Cd thermal absorption probability = %v, want > 0.9", thermalProb)
	}
	if fastProb > 0.01 {
		t.Errorf("Cd fast absorption probability = %v, want ~0 (transparent to fast)", fastProb)
	}
	// 1 mm of Cd should have huge thermal optical depth.
	depth := cd.MacroAbsorb(0.0253) * 0.1
	if depth < 5 {
		t.Errorf("1mm Cd thermal optical depth = %v, want > 5", depth)
	}
}

func TestBoratedPolyethyleneAbsorbs(t *testing.T) {
	plain := Polyethylene()
	borated := BoratedPolyethylene(0.05)
	if borated.MacroAbsorb(0.0253) < 50*plain.MacroAbsorb(0.0253) {
		t.Errorf("5%% borated PE should absorb far more than plain PE: %v vs %v",
			borated.MacroAbsorb(0.0253), plain.MacroAbsorb(0.0253))
	}
	// Still hydrogen-rich.
	if borated.HydrogenDensity() < 0.5*plain.HydrogenDensity() {
		t.Error("borated PE lost too much hydrogen")
	}
}

func TestBoratedPolyethyleneClamps(t *testing.T) {
	if m := BoratedPolyethylene(-1); m.MacroAbsorb(0.0253) > Polyethylene().MacroAbsorb(0.0253)*2 {
		t.Error("negative boron fraction should clamp to zero loading")
	}
	// Over-loading clamps at 30%.
	m1 := BoratedPolyethylene(0.3)
	m2 := BoratedPolyethylene(5)
	if math.Abs(m1.MacroAbsorb(0.0253)-m2.MacroAbsorb(0.0253)) > 1e-9 {
		t.Error("over-loaded boron fraction should clamp to 0.3")
	}
}

func TestConcreteHasHydrogen(t *testing.T) {
	c := Concrete()
	if c.HydrogenDensity() <= 0 {
		t.Error("concrete should contain bound water hydrogen")
	}
	if c.HydrogenDensity() >= Water().HydrogenDensity() {
		t.Error("concrete should have less hydrogen than water")
	}
}

func TestBPSGBoronContent(t *testing.T) {
	b := BPSG()
	found := false
	for _, c := range b.Components() {
		if c.Element.Name == "B10" && c.NumberDensity > 1e19 {
			found = true
		}
	}
	if !found {
		t.Error("BPSG must contain a significant 10B density")
	}
	// Thermal absorption should dwarf pure silicon's.
	if b.MacroAbsorb(0.0253) < 100*SiliconBulk().MacroAbsorb(0.0253) {
		t.Error("BPSG thermal absorption should be >> silicon")
	}
}

func TestAirNearlyTransparent(t *testing.T) {
	if mfp := Air().MeanFreePath(0.0253); mfp < 1000 {
		t.Errorf("thermal mfp in air = %v cm, want > 10 m", mfp)
	}
}

func TestLiquidMethaneModerator(t *testing.T) {
	m := LiquidMethane()
	if m.HydrogenDensity() <= 0 {
		t.Error("methane should be hydrogen-rich")
	}
	// CH4 at 0.42 g/cm³: N(CH4) = 1.58e22 → H = 6.3e22.
	if got := m.HydrogenDensity(); math.Abs(got-6.3e22)/6.3e22 > 0.02 {
		t.Errorf("methane H density = %v, want ~6.3e22", got)
	}
}

func TestHelium3Gas(t *testing.T) {
	g := Helium3Gas(4)
	if g.MacroAbsorb(0.0253) <= 0 {
		t.Error("3He gas must absorb thermal neutrons")
	}
	// Pressure scaling: 8 atm ≈ 2× absorption of 4 atm.
	g8 := Helium3Gas(8)
	ratio := g8.MacroAbsorb(0.0253) / g.MacroAbsorb(0.0253)
	if math.Abs(ratio-2) > 0.01 {
		t.Errorf("pressure scaling ratio = %v, want 2", ratio)
	}
	// Zero/negative pressure defaults to 1 atm.
	if Helium3Gas(0).MacroAbsorb(0.0253) <= 0 {
		t.Error("defaulted pressure should still absorb")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("bad", -1, []WeightFraction{{Hydrogen, 1}}); err == nil {
		t.Error("negative density accepted")
	}
	if _, err := New("bad", 1, nil); err == nil {
		t.Error("empty composition accepted")
	}
	if _, err := New("bad", 1, []WeightFraction{{Hydrogen, -0.5}}); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := New("bad", 1, []WeightFraction{{Hydrogen, 0}}); err == nil {
		t.Error("zero total fraction accepted")
	}
}

func TestFractionNormalization(t *testing.T) {
	// Fractions 2:2 should behave as 0.5:0.5.
	a, err := New("a", 1, []WeightFraction{{Hydrogen, 2}, {Carbon, 2}})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New("b", 1, []WeightFraction{{Hydrogen, 0.5}, {Carbon, 0.5}})
	if math.Abs(a.MacroScatter()-b.MacroScatter()) > 1e-9 {
		t.Error("weight fractions were not normalized")
	}
}

func TestSampleScattererWeighted(t *testing.T) {
	w := Water()
	s := rng.New(1)
	hCount := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if w.SampleScatterer(s).Name == "H" {
			hCount++
		}
	}
	// H share of Σs ≈ 6.69e22*20.4/(6.69e22*20.4+3.34e22*3.76) ≈ 0.916.
	frac := float64(hCount) / n
	if math.Abs(frac-0.916) > 0.02 {
		t.Errorf("hydrogen scatter share = %v, want ~0.916", frac)
	}
}

func TestAbsorptionProbabilityBounds(t *testing.T) {
	for _, m := range []*Material{Water(), Concrete(), CadmiumSheet(), Air(), BPSG()} {
		for _, e := range []units.Energy{0.001, 0.0253, 1, 1e3, 1e6, 100e6} {
			p := m.AbsorptionProbability(e)
			if p < 0 || p > 1 {
				t.Errorf("%s at %v: absorption probability %v out of [0,1]", m.Name(), e, p)
			}
		}
	}
}

func TestComponentsCopied(t *testing.T) {
	w := Water()
	cs := w.Components()
	cs[0].NumberDensity = -1
	if w.Components()[0].NumberDensity == -1 {
		t.Error("Components() exposed internal slice")
	}
}

func TestCatalogDensities(t *testing.T) {
	tests := []struct {
		m    *Material
		want float64
	}{
		{Water(), 1.0},
		{Concrete(), 2.3},
		{Polyethylene(), 0.94},
		{CadmiumSheet(), 8.65},
		{SiliconBulk(), 2.33},
	}
	for _, tt := range tests {
		if got := tt.m.Density(); got != tt.want {
			t.Errorf("%s density = %v, want %v", tt.m.Name(), got, tt.want)
		}
	}
}

func TestCadmiumResonanceFromTable(t *testing.T) {
	// With evaluated data loaded, the 0.178 eV resonance must show up in
	// the macroscopic absorption of the Cd sheet.
	cd := CadmiumSheet()
	peak := cd.MacroAbsorb(0.178)
	thermal := cd.MacroAbsorb(0.0253)
	if peak <= thermal {
		t.Errorf("Cd resonance missing: Σa(0.178)=%v vs Σa(0.0253)=%v", peak, thermal)
	}
	// Cutoff: epithermal absorption collapses.
	if cd.MacroAbsorb(1) > thermal/50 {
		t.Errorf("Cd cutoff too soft: Σa(1eV)=%v", cd.MacroAbsorb(1))
	}
}

func TestTabulatedBoronMatchesAnalytic(t *testing.T) {
	// The borated-PE absorption should be unchanged (within a few percent)
	// by switching B10 from 1/v to the table.
	m := BoratedPolyethylene(0.05)
	got := m.MacroAbsorb(0.0253)
	if got < 2.0 || got > 2.6 {
		t.Errorf("borated PE thermal Σa = %v, want ~2.3", got)
	}
}

func TestKeroseneModerator(t *testing.T) {
	k := Kerosene()
	if k.HydrogenDensity() <= 0 {
		t.Fatal("kerosene should be hydrogen-rich")
	}
	// ~7.4e22 H/cm³ (0.81 g/cm³ × 0.1526 × N_A).
	if got := k.HydrogenDensity(); math.Abs(got-7.4e22)/7.4e22 > 0.05 {
		t.Errorf("kerosene H density = %v, want ~7.4e22", got)
	}
}
