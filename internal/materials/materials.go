// Package materials defines the element and material library used by the
// neutron transport engine: the hydrogen-rich moderators the paper blames
// for thermal-flux enhancement (water, concrete), the absorbers it proposes
// as shields (cadmium, borated plastic), and the chip materials themselves
// (silicon, BPSG).
package materials

import (
	"fmt"
	"math"
	"sort"

	"neutronsim/internal/physics"
	"neutronsim/internal/rng"
	"neutronsim/internal/units"
)

// Avogadro's number (atoms per mole).
const avogadro = 6.02214076e23

// Element is a nuclide (or natural element treated as one effective
// nuclide) with thermal-region cross-section data.
type Element struct {
	Name string
	// A is the mass number used for scattering kinematics.
	A float64
	// MolarMass in g/mol (≈A for our purposes, set explicitly where the
	// natural element differs).
	MolarMass float64
	// SigmaScatterB is the elastic scattering cross section in barns,
	// treated as energy-independent across the range we transport.
	SigmaScatterB float64
	// SigmaAbsorbThermalB is the 2200 m/s absorption cross section in
	// barns, scaled with 1/v at other energies.
	SigmaAbsorbThermalB float64
	// AbsorbTable, when set, replaces the 1/v law with tabulated
	// evaluated-data-shaped values (used for resonant absorbers such as
	// cadmium).
	AbsorbTable *physics.XSTable
}

// The element table. Values are standard thermal-neutron constants.
var (
	Hydrogen = Element{Name: "H", A: 1, MolarMass: 1.008, SigmaScatterB: 20.4, SigmaAbsorbThermalB: 0.332}
	Carbon   = Element{Name: "C", A: 12, MolarMass: 12.011, SigmaScatterB: 4.74, SigmaAbsorbThermalB: 0.0035}
	Nitrogen = Element{Name: "N", A: 14, MolarMass: 14.007, SigmaScatterB: 10.0, SigmaAbsorbThermalB: 1.9}
	Oxygen   = Element{Name: "O", A: 16, MolarMass: 15.999, SigmaScatterB: 3.76, SigmaAbsorbThermalB: 0.00019}
	Sodium   = Element{Name: "Na", A: 23, MolarMass: 22.99, SigmaScatterB: 3.28, SigmaAbsorbThermalB: 0.53}
	Aluminum = Element{Name: "Al", A: 27, MolarMass: 26.982, SigmaScatterB: 1.41, SigmaAbsorbThermalB: 0.231}
	Silicon  = Element{Name: "Si", A: 28, MolarMass: 28.085, SigmaScatterB: 2.04, SigmaAbsorbThermalB: 0.171}
	Calcium  = Element{Name: "Ca", A: 40, MolarMass: 40.078, SigmaScatterB: 2.83, SigmaAbsorbThermalB: 0.43}
	Iron     = Element{Name: "Fe", A: 56, MolarMass: 55.845, SigmaScatterB: 11.35, SigmaAbsorbThermalB: 2.56}
	Cadmium  = Element{Name: "Cd", A: 112, MolarMass: 112.41, SigmaScatterB: 6.5, SigmaAbsorbThermalB: physics.NaturalCadmiumSigma, AbsorbTable: physics.CadmiumAbsorption}
	Boron10  = Element{Name: "B10", A: 10, MolarMass: 10.013, SigmaScatterB: 2.1, SigmaAbsorbThermalB: physics.Boron10ThermalSigma, AbsorbTable: physics.Boron10Absorption}
	Boron11  = Element{Name: "B11", A: 11, MolarMass: 11.009, SigmaScatterB: 4.84, SigmaAbsorbThermalB: 0.0055}
	Helium3  = Element{Name: "He3", A: 3, MolarMass: 3.016, SigmaScatterB: 3.1, SigmaAbsorbThermalB: physics.Helium3ThermalSigma}
	Phosphor = Element{Name: "P", A: 31, MolarMass: 30.974, SigmaScatterB: 3.31, SigmaAbsorbThermalB: 0.172}
)

// SigmaAbsorb returns the microscopic absorption cross section at energy
// e: tabulated where evaluated data is loaded, 1/v-scaled otherwise.
func (el Element) SigmaAbsorb(e units.Energy) units.CrossSection {
	if el.AbsorbTable != nil {
		return el.AbsorbTable.At(e)
	}
	return physics.OneOverV(units.FromBarns(el.SigmaAbsorbThermalB), e)
}

// SigmaScatter returns the (energy-flat) microscopic scattering cross
// section.
func (el Element) SigmaScatter() units.CrossSection {
	return units.FromBarns(el.SigmaScatterB)
}

// Component is one element of a material with its atomic number density.
type Component struct {
	Element       Element
	NumberDensity float64 // atoms per cm³
}

// Material is a homogeneous mixture with macroscopic cross sections.
type Material struct {
	name       string
	density    float64 // g/cm³
	components []Component
}

// WeightFraction pairs an element with its mass fraction for the builder.
type WeightFraction struct {
	Element  Element
	Fraction float64
}

// New builds a material from a bulk density (g/cm³) and element weight
// fractions. Fractions are normalized; number densities follow
// n_i = rho * w_i * N_A / M_i.
func New(name string, density float64, fractions []WeightFraction) (*Material, error) {
	if density <= 0 {
		return nil, fmt.Errorf("materials: %s: non-positive density %v", name, density)
	}
	if len(fractions) == 0 {
		return nil, fmt.Errorf("materials: %s: no components", name)
	}
	total := 0.0
	for _, f := range fractions {
		if f.Fraction < 0 {
			return nil, fmt.Errorf("materials: %s: negative fraction for %s", name, f.Element.Name)
		}
		total += f.Fraction
	}
	if total <= 0 {
		return nil, fmt.Errorf("materials: %s: zero total fraction", name)
	}
	m := &Material{name: name, density: density}
	for _, f := range fractions {
		w := f.Fraction / total
		if w == 0 {
			continue
		}
		m.components = append(m.components, Component{
			Element:       f.Element,
			NumberDensity: density * w * avogadro / f.Element.MolarMass,
		})
	}
	sort.Slice(m.components, func(i, j int) bool {
		return m.components[i].Element.Name < m.components[j].Element.Name
	})
	return m, nil
}

// mustNew panics on error; used only for the vetted built-in catalog.
func mustNew(name string, density float64, fractions []WeightFraction) *Material {
	m, err := New(name, density, fractions)
	if err != nil {
		panic(err)
	}
	return m
}

// Name returns the material name.
func (m *Material) Name() string { return m.name }

// Density returns the bulk density in g/cm³.
func (m *Material) Density() float64 { return m.density }

// Components returns a copy of the component list.
func (m *Material) Components() []Component {
	return append([]Component(nil), m.components...)
}

// MacroScatter returns the macroscopic scattering cross section Σs (cm⁻¹).
func (m *Material) MacroScatter() float64 {
	sum := 0.0
	for _, c := range m.components {
		sum += c.NumberDensity * float64(c.Element.SigmaScatter())
	}
	return sum
}

// MacroAbsorb returns the macroscopic absorption cross section Σa (cm⁻¹)
// at energy e (1/v law per element).
func (m *Material) MacroAbsorb(e units.Energy) float64 {
	sum := 0.0
	for _, c := range m.components {
		sum += c.NumberDensity * float64(c.Element.SigmaAbsorb(e))
	}
	return sum
}

// MacroTotal returns Σt = Σs + Σa(E) in cm⁻¹.
func (m *Material) MacroTotal(e units.Energy) float64 {
	return m.MacroScatter() + m.MacroAbsorb(e)
}

// MeanFreePath returns 1/Σt in cm, or +Inf for vacuum-like materials.
func (m *Material) MeanFreePath(e units.Energy) float64 {
	t := m.MacroTotal(e)
	if t <= 0 {
		return math.Inf(1)
	}
	return 1 / t
}

// AbsorptionProbability returns Σa/Σt at energy e, the per-collision
// probability that the interaction is an absorption.
func (m *Material) AbsorptionProbability(e units.Energy) float64 {
	t := m.MacroTotal(e)
	if t <= 0 {
		return 0
	}
	return m.MacroAbsorb(e) / t
}

// SampleScatterer picks the nucleus a scattering collision occurs on,
// weighted by each component's contribution to Σs.
func (m *Material) SampleScatterer(s *rng.Stream) Element {
	total := m.MacroScatter()
	if total <= 0 || len(m.components) == 0 {
		return Hydrogen
	}
	u := s.Float64() * total
	acc := 0.0
	for _, c := range m.components {
		acc += c.NumberDensity * float64(c.Element.SigmaScatter())
		if u < acc {
			return c.Element
		}
	}
	return m.components[len(m.components)-1].Element
}

// HydrogenDensity returns the hydrogen number density (atoms/cm³), the key
// figure of merit for a moderator.
func (m *Material) HydrogenDensity() float64 {
	for _, c := range m.components {
		if c.Element.Name == "H" {
			return c.NumberDensity
		}
	}
	return 0
}

// Built-in catalog ---------------------------------------------------------

// Water is the moderator the paper measured directly (2 in over Tin-II,
// +24% thermal counts) and the cooling-loop fluid in liquid-cooled HPC.
func Water() *Material {
	return mustNew("water", 1.0, []WeightFraction{
		{Hydrogen, 2 * 1.008 / 18.015},
		{Oxygen, 15.999 / 18.015},
	})
}

// Concrete is NIST-like ordinary concrete; floors and walls of data
// centers ("concrete slab floors, cinder block walls", §I).
func Concrete() *Material {
	return mustNew("concrete", 2.3, []WeightFraction{
		{Hydrogen, 0.010},
		{Oxygen, 0.532},
		{Silicon, 0.337},
		{Calcium, 0.044},
		{Aluminum, 0.034},
		{Iron, 0.014},
		{Sodium, 0.029},
	})
}

// Polyethylene (CH₂)n, the reference laboratory moderator.
func Polyethylene() *Material {
	return mustNew("polyethylene", 0.94, []WeightFraction{
		{Hydrogen, 2 * 1.008 / 14.027},
		{Carbon, 12.011 / 14.027},
	})
}

// BoratedPolyethylene is polyethylene loaded with natural boron at the
// given weight fraction (e.g. 0.05 for 5%), the practical thermal shield
// discussed (and rejected for thermal-isolation reasons) in §VI.
func BoratedPolyethylene(boronWeightFraction float64) *Material {
	if boronWeightFraction < 0 {
		boronWeightFraction = 0
	}
	if boronWeightFraction > 0.3 {
		boronWeightFraction = 0.3
	}
	rest := 1 - boronWeightFraction
	b10 := boronWeightFraction * physics.NaturalBoron10Fraction
	b11 := boronWeightFraction * (1 - physics.NaturalBoron10Fraction)
	return mustNew("borated polyethylene", 1.0, []WeightFraction{
		{Hydrogen, rest * 2 * 1.008 / 14.027},
		{Carbon, rest * 12.011 / 14.027},
		{Boron10, b10},
		{Boron11, b11},
	})
}

// CadmiumSheet is metallic cadmium, the thin thermal-neutron shield (§VI).
func CadmiumSheet() *Material {
	return mustNew("cadmium", 8.65, []WeightFraction{{Cadmium, 1}})
}

// SiliconBulk is crystalline silicon, the chip substrate.
func SiliconBulk() *Material {
	return mustNew("silicon", 2.33, []WeightFraction{{Silicon, 1}})
}

// BPSG is borophosphosilicate glass with natural boron — the insulating
// layer whose ¹⁰B content caused the historical 8× error-rate problem
// (baumann1995boron, §II). Boron loading ~4% by weight.
func BPSG() *Material {
	const bFrac = 0.04
	return mustNew("BPSG", 2.2, []WeightFraction{
		{Silicon, (1 - bFrac - 0.04) * 28.085 / 60.08},
		{Oxygen, (1 - bFrac - 0.04) * 2 * 15.999 / 60.08},
		{Phosphor, 0.04},
		{Boron10, bFrac * physics.NaturalBoron10Fraction},
		{Boron11, bFrac * (1 - physics.NaturalBoron10Fraction)},
	})
}

// Air at sea level; essentially transparent at the cm scale.
func Air() *Material {
	return mustNew("air", 1.205e-3, []WeightFraction{
		{Nitrogen, 0.755},
		{Oxygen, 0.232},
	})
}

// Kerosene is jet fuel (dodecane-like CH₂ chains) — the paper lists
// gasoline/fuel tanks among the hydrogen-rich materials that raise the
// thermal flux around a vehicle's electronics.
func Kerosene() *Material {
	// C12H26: hydrogen weight fraction 26·1.008/170.33.
	return mustNew("kerosene", 0.81, []WeightFraction{
		{Hydrogen, 26 * 1.008 / 170.33},
		{Carbon, 12 * 12.011 / 170.33},
	})
}

// LiquidMethane is the cryogenic moderator ROTAX uses to thermalize its
// beam ("the thermalization is achieved by moderation of the neutrons
// using liquid methane", §III-C).
func LiquidMethane() *Material {
	return mustNew("liquid methane", 0.42, []WeightFraction{
		{Hydrogen, 4 * 1.008 / 16.043},
		{Carbon, 12.011 / 16.043},
	})
}

// Helium3Gas returns the ³He fill gas of a proportional counter tube at
// the given pressure in atmospheres (ideal gas at room temperature).
func Helium3Gas(atm float64) *Material {
	if atm <= 0 {
		atm = 1
	}
	// Ideal-gas density of He-3: M * P/(RT) with M = 3.016 g/mol.
	density := 3.016 * atm / (82.057 * 293.15) // g/cm³ (R in cm³·atm/(mol·K))
	return mustNew("helium-3", density, []WeightFraction{{Helium3, 1}})
}
