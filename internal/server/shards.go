package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"neutronsim/internal/beam"
	"neutronsim/internal/telemetry/trace"
)

// ShardRequest is the body of POST /v1/shards — the internal peer surface
// of cluster mode (DESIGN.md §15). A coordinator sends a normalized
// campaign plus a half-open shard range; the worker executes exactly
// those shards of the campaign's deterministic plan and returns their
// per-shard tallies. Ranges are idempotent — re-dispatching one after a
// timeout or worker loss can only reproduce identical tallies — which is
// what makes the coordinator's failure handling safe.
type ShardRequest struct {
	Campaign *CampaignRequest `json:"campaign"`
	Lo       int              `json:"lo"`
	Hi       int              `json:"hi"`
}

// ShardResponse is the POST /v1/shards body.
type ShardResponse struct {
	Partial *beam.Partial `json:"partial"`
}

// handleShards is POST /v1/shards: synchronous shard-range execution.
//
//	200  partial result (body ShardResponse)
//	400  malformed request, non-beam campaign, or range outside the plan
//	503  draining (Retry-After set)
//
// Concurrency is bounded by Config.ShardSlots; excess requests wait in
// the handler until a slot frees or the client gives up, so a saturated
// worker exerts backpressure through latency rather than queue growth
// (the coordinator's per-range timeout and re-dispatch handle the rest).
// The endpoint always executes locally — never through Config.Execute —
// so a coordinator receiving a range does not recurse into its own
// fan-out.
func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.unavailable(w)
		return
	}
	var raw ShardRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		writeError(w, http.StatusBadRequest, "decode shard request: %v", err)
		return
	}
	if raw.Campaign == nil {
		writeError(w, http.StatusBadRequest, "shard request missing campaign")
		return
	}
	req, err := raw.Campaign.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid campaign: %v", err)
		return
	}
	if req.Kind != KindBeam {
		writeError(w, http.StatusBadRequest, "shard-range execution supports beam campaigns, got kind %q", req.Kind)
		return
	}
	if raw.Lo < 0 || raw.Hi <= raw.Lo {
		writeError(w, http.StatusBadRequest, "invalid shard range [%d,%d)", raw.Lo, raw.Hi)
		return
	}
	ctx := r.Context()
	select {
	case s.shardSem <- struct{}{}:
		defer func() { <-s.shardSem }()
	case <-ctx.Done():
		return // client gave up while waiting for a slot
	}
	// Join the coordinator's trace so one trace spans coordinator queue →
	// peer dispatch → shard execution → merge.
	var parent *trace.Traceparent
	if tp, perr := trace.ParseTraceparent(r.Header.Get(trace.Header)); perr == nil {
		parent = &tp
	}
	tr, root := trace.New("shards", parent)
	tr.SetRecorder(trace.Default)
	root.SetAttr("kind", req.Kind)
	defer root.End()
	ctx = trace.NewContext(ctx, root)

	cfg, err := BeamConfig(req, s.cfg.JobShards)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid campaign: %v", err)
		return
	}
	s.cfg.Registry.Counter("server.shard_ranges").Add(1)
	start := time.Now()
	partial, err := beam.RunRange(ctx, cfg, raw.Lo, raw.Hi)
	s.cfg.Registry.Histogram("server.shard_range_seconds").ObserveSince(start)
	if err != nil {
		if errors.Is(err, ctx.Err()) {
			return // canceled by the coordinator; nothing to say
		}
		s.cfg.Registry.Counter("server.shard_range_errors").Add(1)
		writeError(w, http.StatusBadRequest, "shard range %d-%d: %v", raw.Lo, raw.Hi, err)
		return
	}
	if tp := root.Traceparent(); tp != "" {
		w.Header().Set(trace.Header, tp)
	}
	writeJSON(w, http.StatusOK, ShardResponse{Partial: partial})
}
