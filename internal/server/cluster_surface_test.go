package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"neutronsim/internal/beam"
	"neutronsim/internal/telemetry"
)

// TestRetryAfterJitterBounds pins the ±20% jitter contract: with a 10s
// configured hint every rendered value lies in [8,12], and the draws are
// not all identical (a degenerate "jitter" of zero would re-synchronize
// retry herds).
func TestRetryAfterJitterBounds(t *testing.T) {
	cfg := Config{RetryAfter: 10 * time.Second}.withDefaults()
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		s := retryAfterSeconds(cfg)
		secs, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("Retry-After %q is not integer seconds: %v", s, err)
		}
		if secs < 8 || secs > 12 {
			t.Fatalf("Retry-After %d outside ±20%% of 10s", secs)
		}
		seen[secs] = true
	}
	if len(seen) < 2 {
		t.Errorf("200 draws produced a single value %v; jitter is not jittering", seen)
	}
	// Sub-second bases must still render a positive header.
	small := Config{RetryAfter: 100 * time.Millisecond}.withDefaults()
	small.RetryAfter = 100 * time.Millisecond
	if s := retryAfterSeconds(small); s != "1" {
		t.Errorf("tiny RetryAfter rendered %q, want clamp to 1", s)
	}
}

// TestReadyzBody checks the /readyz JSON contract both ways: ready with
// live queue numbers, and draining with 503 + Retry-After.
func TestReadyzBody(t *testing.T) {
	srv := New(Config{Workers: 1, Registry: telemetry.NewRegistry()})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var info ReadyzInfo
	if derr := json.NewDecoder(resp.Body).Decode(&info); derr != nil {
		t.Fatalf("decode readyz body: %v", derr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz status %d", resp.StatusCode)
	}
	want := ReadyzInfo{Status: "ready", QueueDepth: 0, JobsRunning: 0, Draining: false}
	if info != want {
		t.Errorf("readyz body %+v, want %+v", info, want)
	}

	srv.draining.Store(true)
	resp, err = ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if derr := json.NewDecoder(resp.Body).Decode(&info); derr != nil {
		t.Fatalf("decode draining readyz body: %v", derr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining readyz status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining readyz without Retry-After")
	}
	if info.Status != "draining" || !info.Draining {
		t.Errorf("draining readyz body %+v", info)
	}
}

// shardsPost submits a ShardRequest and returns status + body.
func shardsPost(t *testing.T, ts *httptest.Server, body any) (int, []byte) {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/shards", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

// TestShardsEndpoint drives POST /v1/shards over HTTP: executing the
// full plan as two ranges and assembling locally must reproduce the
// direct library result bit-for-bit, and malformed ranges must 400.
func TestShardsEndpoint(t *testing.T) {
	srv := New(Config{Workers: 1, Registry: telemetry.NewRegistry()})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req, err := (&CampaignRequest{
		Kind: KindBeam,
		Seed: 512,
		Beam: &BeamParams{
			Device: "TitanV", Workload: "MxM", Spectrum: "ROTAX",
			DurationSeconds: 5, RunSeconds: 0.01, CalSamples: 2000, ShardGrain: 32,
		},
	}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := BeamConfig(req, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := t.Context()
	info, err := beam.PlanInfo(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := beam.RunContext(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}

	mid := info.Shards / 2
	var partials []*beam.Partial
	for _, r := range [][2]int{{0, mid}, {mid, info.Shards}} {
		status, body := shardsPost(t, ts, ShardRequest{Campaign: req, Lo: r[0], Hi: r[1]})
		if status != http.StatusOK {
			t.Fatalf("shards [%d,%d): status %d: %s", r[0], r[1], status, body)
		}
		var sr ShardResponse
		if err := json.Unmarshal(body, &sr); err != nil || sr.Partial == nil {
			t.Fatalf("decode shard response: %v", err)
		}
		partials = append(partials, sr.Partial)
	}
	got, err := beam.AssemblePartials(ctx, cfg, partials)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, direct) {
		t.Error("HTTP shard ranges assembled to a different result than the direct run")
	}

	for _, tc := range []struct {
		name string
		body any
		want string
	}{
		{"missing campaign", ShardRequest{Lo: 0, Hi: 1}, "missing campaign"},
		{"inverted range", ShardRequest{Campaign: req, Lo: 3, Hi: 1}, "invalid shard range"},
		{"outside plan", ShardRequest{Campaign: req, Lo: 0, Hi: info.Shards + 5}, "outside plan"},
		{"non-beam", ShardRequest{Campaign: &CampaignRequest{Kind: KindMemory, Memory: &MemoryParams{Generation: "DDR3", Band: "thermal", Flux: 1e5, DurationSeconds: 10}}, Lo: 0, Hi: 1}, "beam campaigns"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			status, body := shardsPost(t, ts, tc.body)
			if status != http.StatusBadRequest || !strings.Contains(string(body), tc.want) {
				t.Errorf("status %d body %s, want 400 containing %q", status, body, tc.want)
			}
		})
	}

	// Draining servers refuse ranges so the coordinator re-dispatches.
	srv.draining.Store(true)
	if status, _ := shardsPost(t, ts, ShardRequest{Campaign: req, Lo: 0, Hi: 1}); status != http.StatusServiceUnavailable {
		t.Errorf("draining shards status %d, want 503", status)
	}
}
