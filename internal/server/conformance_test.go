package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"neutronsim/internal/beam"
	"neutronsim/internal/memsim"
	"neutronsim/internal/plan"
	"neutronsim/internal/rng"
	"neutronsim/internal/spectrum"
	"neutronsim/internal/telemetry"
	"neutronsim/internal/transport"
	"neutronsim/internal/units"
)

// postCampaign submits a request and returns the response with its body.
func postCampaign(t *testing.T, ts *httptest.Server, req *CampaignRequest, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/campaigns", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hreq.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatalf("POST /v1/campaigns: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp, body
}

// awaitJob polls a job until it reaches a terminal state.
func awaitJob(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) JobInfo {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET job %s: %v", id, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("read job %s: %v", id, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job %s: status %d: %s", id, resp.StatusCode, body)
		}
		var info JobInfo
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatalf("decode job %s: %v", id, err)
		}
		switch info.State {
		case StateDone, StateFailed, StateCanceled:
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, info.State, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// submitAndAwait runs one campaign to completion through the HTTP API and
// returns the terminal job info.
func submitAndAwait(t *testing.T, ts *httptest.Server, req *CampaignRequest) JobInfo {
	t.Helper()
	resp, body := postCampaign(t, ts, req, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatalf("decode 202 body: %v", err)
	}
	return awaitJob(t, ts, info.ID, 2*time.Minute)
}

// TestConformanceBeamHTTP is the PR's acceptance gate: for three catalog
// devices on both spectra, the result served over HTTP must DeepEqual the
// direct library call, and a second identical POST must be served from the
// cache with a byte-identical payload.
func TestConformanceBeamHTTP(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := New(Config{Workers: 2, Registry: reg})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	devices := []string{"K20", "TitanV", "Zynq7000"}
	spectra := []string{"ChipIR", "ROTAX"}
	for i, devName := range devices {
		for k, spName := range spectra {
			seed := uint64(100 + 10*i + k)
			req := &CampaignRequest{
				Kind: KindBeam,
				Seed: seed,
				Beam: &BeamParams{
					Device:          devName,
					Workload:        "MxM",
					Spectrum:        spName,
					DurationSeconds: 2,
					CalSamples:      2000,
				},
			}
			info := submitAndAwait(t, ts, req)
			if info.State != StateDone {
				t.Fatalf("%s/%s: job ended %s: %s", devName, spName, info.State, info.Error)
			}
			var env ResultEnvelope
			if err := json.Unmarshal(info.Result, &env); err != nil {
				t.Fatalf("%s/%s: decode envelope: %v", devName, spName, err)
			}
			if env.Kind != KindBeam || env.Beam == nil {
				t.Fatalf("%s/%s: envelope missing beam result", devName, spName)
			}

			// The direct library call the HTTP result must match, with the
			// same values normalization fills in.
			d, err := DeviceByName(devName)
			if err != nil {
				t.Fatal(err)
			}
			sp, err := SpectrumByName(spName)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := beam.RunContext(context.Background(), beam.Config{
				Device:          d,
				WorkloadName:    "MxM",
				Beam:            sp,
				DurationSeconds: 2,
				Derating:        1,
				Seed:            seed,
				CalSamples:      2000,
				ShardGrain:      defaultBeamGrain,
			})
			if err != nil {
				t.Fatalf("%s/%s: direct run: %v", devName, spName, err)
			}
			if !reflect.DeepEqual(env.Beam, direct) {
				t.Errorf("%s/%s: HTTP result differs from direct library call\nhttp:   %+v\ndirect: %+v",
					devName, spName, env.Beam, direct)
			}

			// Second identical POST: cache hit, counter bump, identical bytes.
			hits := reg.Counter("server.cache_hits").Value()
			resp2, body2 := postCampaign(t, ts, req, nil)
			if resp2.StatusCode != http.StatusOK {
				t.Fatalf("%s/%s: repeat POST: status %d: %s", devName, spName, resp2.StatusCode, body2)
			}
			if got := resp2.Header.Get("X-Cache"); got != "hit" {
				t.Errorf("%s/%s: repeat POST X-Cache = %q, want hit", devName, spName, got)
			}
			if got := reg.Counter("server.cache_hits").Value(); got != hits+1 {
				t.Errorf("%s/%s: cache_hits = %d, want %d", devName, spName, got, hits+1)
			}
			if !bytes.Equal(body2, []byte(info.Result)) {
				t.Errorf("%s/%s: cached payload differs from the job's result bytes", devName, spName)
			}
			if etag := resp2.Header.Get("ETag"); etag == "" || etag != ETagFor(body2) {
				t.Errorf("%s/%s: ETag %q does not match body", devName, spName, resp2.Header.Get("ETag"))
			}
		}
	}
}

// TestConformanceBiasedBeamHTTP extends the HTTP conformance gate to
// importance-sampled campaigns: a biased request must DeepEqual the
// direct library call after a JSON round trip — which is exactly the
// finalized-Kahan guarantee of stats.Weighted — and exact, identity-bias
// and biased spellings of the same campaign must occupy distinct cache
// entries.
func TestConformanceBiasedBeamHTTP(t *testing.T) {
	srv := New(Config{Workers: 2, Registry: telemetry.NewRegistry()})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	base := func(bias *plan.Bias) *CampaignRequest {
		return &CampaignRequest{
			Kind: KindBeam,
			Seed: 77,
			Beam: &BeamParams{
				Device:          "Zynq7000",
				Workload:        "MxM",
				Spectrum:        "ChipIR",
				DurationSeconds: 2,
				CalSamples:      2000,
				Bias:            bias,
			},
		}
	}
	info := submitAndAwait(t, ts, base(&plan.Bias{Thermal: 50}))
	if info.State != StateDone {
		t.Fatalf("biased job ended %s: %s", info.State, info.Error)
	}
	var env ResultEnvelope
	if err := json.Unmarshal(info.Result, &env); err != nil {
		t.Fatalf("decode envelope: %v", err)
	}
	if env.Beam == nil || env.Beam.Weighted == nil {
		t.Fatal("biased campaign result carries no weighted section over HTTP")
	}
	d, _ := DeviceByName("Zynq7000")
	sp, _ := SpectrumByName("ChipIR")
	direct, err := beam.RunContext(context.Background(), beam.Config{
		Device:          d,
		WorkloadName:    "MxM",
		Beam:            sp,
		DurationSeconds: 2,
		Derating:        1,
		Seed:            77,
		CalSamples:      2000,
		ShardGrain:      defaultBeamGrain,
		Bias:            &plan.Bias{Thermal: 50},
	})
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	if !reflect.DeepEqual(env.Beam, direct) {
		t.Errorf("HTTP biased result differs from direct library call\nhttp:   %+v\ndirect: %+v", env.Beam, direct)
	}

	// The three spellings are three campaigns: distinct cache keys.
	keys := map[string]string{}
	for name, req := range map[string]*CampaignRequest{
		"exact":    base(nil),
		"identity": base(&plan.Bias{}),
		"biased":   base(&plan.Bias{Thermal: 50}),
	} {
		norm, err := req.Normalize()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		k := norm.CacheKey()
		for prev, pk := range keys {
			if pk == k {
				t.Errorf("%s and %s share a cache key", name, prev)
			}
		}
		keys[name] = k
	}

	// Invalid bias factors are rejected at submission, not at run time.
	resp, body := postCampaign(t, ts, base(&plan.Bias{Thermal: -2}), nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative bias factor: status %d (%s), want 400", resp.StatusCode, body)
	}
}

// TestConformanceImplicitCaptureHTTP round-trips a weighted transport
// campaign: the implicit_capture knob reaches the simulator, the weighted
// tallies survive JSON, and the knob is part of the cache key.
func TestConformanceImplicitCaptureHTTP(t *testing.T) {
	srv := New(Config{Workers: 1, Registry: telemetry.NewRegistry()})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := &CampaignRequest{
		Kind: KindTransport,
		Seed: 9,
		Transport: &TransportParams{
			Slabs:           []SlabParam{{Material: "water", ThicknessCm: 5.08}},
			Neutrons:        5000,
			Source:          "ChipIR",
			ImplicitCapture: true,
		},
	}
	info := submitAndAwait(t, ts, req)
	if info.State != StateDone {
		t.Fatalf("implicit-capture job ended %s: %s", info.State, info.Error)
	}
	var env ResultEnvelope
	if err := json.Unmarshal(info.Result, &env); err != nil {
		t.Fatalf("decode envelope: %v", err)
	}
	if env.Transport == nil || env.Transport.Weighted == nil {
		t.Fatal("implicit-capture result carries no weighted section over HTTP")
	}
	if env.Transport.Weighted.Absorbed.SumW <= 0 {
		t.Error("weighted absorption did not survive the JSON round trip")
	}
	analog := *req
	tp := *req.Transport
	tp.ImplicitCapture = false
	analog.Transport = &tp
	na, err := analog.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	nw, err := req.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if na.CacheKey() == nw.CacheKey() {
		t.Error("implicit_capture does not move the transport cache key")
	}
}

// TestConformanceTransportHTTP checks the transport dispatch path against
// the library, including the material and spectrum registries.
func TestConformanceTransportHTTP(t *testing.T) {
	srv := New(Config{Workers: 1, Registry: telemetry.NewRegistry()})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := &CampaignRequest{
		Kind: KindTransport,
		Seed: 17,
		Transport: &TransportParams{
			Slabs:    []SlabParam{{Material: "water", ThicknessCm: 5}},
			Neutrons: 20000,
			Source:   "ChipIR",
		},
	}
	info := submitAndAwait(t, ts, req)
	if info.State != StateDone {
		t.Fatalf("job ended %s: %s", info.State, info.Error)
	}
	var env ResultEnvelope
	if err := json.Unmarshal(info.Result, &env); err != nil {
		t.Fatal(err)
	}
	m, err := MaterialByName("water")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := transport.SimulateWithOptions(
		[]transport.Slab{{Material: m, Thickness: 5}},
		20000, spectrum.ChipIR().Sample, rng.New(17),
		transport.Options{ShardGrain: defaultTransportGrain})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(env.Transport, direct) {
		t.Errorf("HTTP tally differs from direct library call\nhttp:   %+v\ndirect: %+v", env.Transport, direct)
	}
}

// TestConformanceMemoryHTTP checks the memory dispatch path and the band
// defaulting (thermal band at ROTAX total flux).
func TestConformanceMemoryHTTP(t *testing.T) {
	srv := New(Config{Workers: 1, Registry: telemetry.NewRegistry()})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := &CampaignRequest{
		Kind: KindMemory,
		Seed: 5,
		Memory: &MemoryParams{
			Generation:      "DDR4",
			DurationSeconds: 600,
		},
	}
	info := submitAndAwait(t, ts, req)
	if info.State != StateDone {
		t.Fatalf("job ended %s: %s", info.State, info.Error)
	}
	var env ResultEnvelope
	if err := json.Unmarshal(info.Result, &env); err != nil {
		t.Fatal(err)
	}
	direct, err := memsim.Run(memsim.Config{
		Spec:            memsim.DDR4Module(),
		Band:            memsim.ThermalBeam,
		Flux:            units.Flux(float64(spectrum.ROTAXTotalFlux)),
		DurationSeconds: 600,
		PassSeconds:     1,
		Seed:            5,
		ShardGrain:      defaultMemoryGrain,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(env.Memory, direct) {
		t.Errorf("HTTP memory result differs from direct library call\nhttp:   %+v\ndirect: %+v", env.Memory, direct)
	}
}

// TestSubmitValidation exercises the 400 paths.
func TestSubmitValidation(t *testing.T) {
	srv := New(Config{Workers: 1, Registry: telemetry.NewRegistry()})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
	}{
		{"bad json", `{`},
		{"unknown field", `{"kind":"beam","frobnicate":1}`},
		{"unknown kind", `{"kind":"warp"}`},
		{"missing section", `{"kind":"beam"}`},
		{"unknown device", `{"kind":"beam","beam":{"device":"PDP11","workload":"MxM","spectrum":"ChipIR","duration_seconds":1}}`},
		{"unknown spectrum", `{"kind":"beam","beam":{"device":"K20","workload":"MxM","spectrum":"LANSCE","duration_seconds":1}}`},
		{"unknown material", `{"kind":"transport","transport":{"slabs":[{"material":"unobtainium","thickness_cm":1}],"neutrons":100}}`},
		{"two sections", `{"kind":"beam","beam":{"device":"K20","workload":"MxM","spectrum":"ChipIR","duration_seconds":1},"memory":{"generation":"DDR3","duration_seconds":1}}`},
		{"zero duration", `{"kind":"beam","beam":{"device":"K20","workload":"MxM","spectrum":"ChipIR"}}`},
	}
	for _, tc := range cases {
		resp, err := ts.Client().Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewBufferString(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// TestCatalogEndpoints sanity-checks the discovery endpoints.
func TestCatalogEndpoints(t *testing.T) {
	srv := New(Config{Workers: 1, Registry: telemetry.NewRegistry()})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		path string
		want string
	}{
		{"/v1/devices", "K20"},
		{"/v1/spectra", "ROTAX"},
		{"/v1/materials", "borated polyethylene"},
		{"/healthz", "ok"},
		{"/readyz", "ready"},
	} {
		resp, err := ts.Client().Get(ts.URL + tc.path)
		if err != nil {
			t.Fatalf("GET %s: %v", tc.path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", tc.path, resp.StatusCode)
		}
		if !bytes.Contains(body, []byte(tc.want)) {
			t.Errorf("GET %s: body %q missing %q", tc.path, body, tc.want)
		}
	}
}

// TestNormalizeIdempotentAndKeyed checks that normalization is idempotent
// and that implicit and explicit defaults share one cache key.
func TestNormalizeIdempotentAndKeyed(t *testing.T) {
	implicit := &CampaignRequest{Kind: "Beam", Seed: 9, Beam: &BeamParams{
		Device: "K20", Workload: "MxM", Spectrum: "chipir", DurationSeconds: 3,
	}}
	explicit := &CampaignRequest{Kind: KindBeam, Seed: 9, Beam: &BeamParams{
		Device: "K20", Workload: "MxM", Spectrum: "ChipIR", DurationSeconds: 3,
		Derating: 1, CalSamples: 20000, ShardGrain: defaultBeamGrain,
	}}
	n1, err := implicit.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	n2, err := explicit.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n1.CacheKey() != n2.CacheKey() {
		t.Errorf("implicit and explicit defaults hash differently:\n%+v\n%+v", n1.Beam, n2.Beam)
	}
	again, err := n1.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(n1, again) {
		t.Errorf("normalization is not idempotent: %+v vs %+v", n1, again)
	}
	seeded := &CampaignRequest{Kind: KindBeam, Seed: 10, Beam: implicit.Beam}
	n3, err := seeded.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n3.CacheKey() == n1.CacheKey() {
		t.Error("seed is not part of the cache key")
	}
}
