package server

import (
	"math"

	"neutronsim/internal/plan"
	"neutronsim/internal/surrogate"
	"neutronsim/internal/telemetry"
)

// surrogateTier is the optional serving layer between the result cache
// and the exact Monte Carlo path: a fitted design-space model plus the
// counters that account for every gating decision. Only xsection
// campaigns with a positive client tolerance ever consult it, and a
// surrogate answer is never written into the exact result cache — the
// cache's byte-identical guarantee stays intact.
type surrogateTier struct {
	model *surrogate.Model

	served            *telemetry.Counter
	fallbackHull      *telemetry.Counter
	fallbackTolerance *telemetry.Counter
	rejected          *telemetry.Counter
}

func newSurrogateTier(m *surrogate.Model, reg *telemetry.Registry) *surrogateTier {
	if m == nil {
		return nil
	}
	return &surrogateTier{
		model:             m,
		served:            reg.Counter("server.surrogate_served"),
		fallbackHull:      reg.Counter("server.surrogate_fallback_hull"),
		fallbackTolerance: reg.Counter("server.surrogate_fallback_tolerance"),
		rejected:          reg.Counter("server.surrogate_rejected"),
	}
}

// answer gates one request against the model and, when every gate
// passes, produces the approximate result envelope. A nil envelope
// means fall through to the exact path. tolerance is the raw request's
// serving hint (the normalized request has it zeroed); req must be
// normalized.
//
// Gate order, each bumping its own counter on the way out:
//
//  1. kind/tolerance: only xsection queries that opted in (tolerance>0)
//     consult the tier at all (no counter — the tier is not involved).
//  2. rejected: the feature vector is non-finite. Normalize already
//     refuses non-finite JSON numbers, so this guards the computed
//     features (log10 of boron=0 is -Inf) rather than raw input.
//  3. fallback_hull: finite features outside the trained hull, a bias
//     differing from the training estimator's, or a spectrum the model
//     never saw.
//  4. fallback_tolerance: the client wants tighter error than the
//     model's certified bound.
func (t *surrogateTier) answer(req *CampaignRequest, tolerance float64) *ResultEnvelope {
	if t == nil || req.Kind != KindXsection || !(tolerance > 0) {
		return nil
	}
	p := req.Xsection
	sp, err := SpectrumByName(p.Spectrum)
	if err != nil {
		return nil
	}
	var bias plan.Bias
	if p.Bias != nil {
		bias = *p.Bias
	}
	f := surrogate.FeatureVector(p.BoronPerCm2, p.QcritFC, sp, bias)
	for _, v := range f {
		// Non-finite features can never be in a hull; count them as
		// rejected input rather than an honest out-of-domain fallback.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.rejected.Add(1)
			return nil
		}
	}
	fp, ok := surrogate.SpectrumFingerprint(sp)
	if !t.model.Hull.Contains(f) || !ok || !t.model.SpectrumTrained(fp) {
		t.fallbackHull.Add(1)
		return nil
	}
	if t.model.CertifiedRelErr > tolerance {
		t.fallbackTolerance.Add(1)
		return nil
	}
	t.served.Add(1)
	return &ResultEnvelope{Kind: KindXsection, Xsection: &XsectionResult{
		BoronPerCm2: p.BoronPerCm2,
		QcritFC:     p.QcritFC,
		Spectrum:    p.Spectrum,
		SigmaCm2:    t.model.PredictSigma(f),
		Approx:      true,
		Confidence:  t.model.Confidence(),
		RelErrBound: t.model.CertifiedRelErr,
		ModelHash:   t.model.Hash,
	}}
}

// SurrogateStats is the surrogate section of GET /v1/stats.
type SurrogateStats struct {
	Loaded bool `json:"loaded"`
	// Model identity and guarantee; only set when loaded.
	ModelHash       string    `json:"model_hash,omitempty"`
	CertifiedRelErr float64   `json:"certified_rel_err,omitempty"`
	FeatureNames    []string  `json:"feature_names,omitempty"`
	HullMin         []float64 `json:"hull_min,omitempty"`
	HullMax         []float64 `json:"hull_max,omitempty"`
	// Gating counters (see surrogateTier.answer for semantics).
	Served            int64 `json:"served"`
	FallbackHull      int64 `json:"fallback_hull"`
	FallbackTolerance int64 `json:"fallback_tolerance"`
	Rejected          int64 `json:"rejected"`
}

func (t *surrogateTier) stats() SurrogateStats {
	if t == nil {
		return SurrogateStats{}
	}
	return SurrogateStats{
		Loaded:            true,
		ModelHash:         t.model.Hash,
		CertifiedRelErr:   t.model.CertifiedRelErr,
		FeatureNames:      t.model.FeatureNames,
		HullMin:           t.model.Hull.Min,
		HullMax:           t.model.Hull.Max,
		Served:            t.served.Value(),
		FallbackHull:      t.fallbackHull.Value(),
		FallbackTolerance: t.fallbackTolerance.Value(),
		Rejected:          t.rejected.Value(),
	}
}
