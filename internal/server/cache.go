package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"neutronsim/internal/telemetry"
)

// cacheEntry is one completed campaign result.
type cacheEntry struct {
	key  string
	body []byte // marshaled ResultEnvelope
	etag string // strong ETag: quoted sha256 of body
}

// Cache is the deterministic result cache: completed campaign bodies keyed
// by the canonical request hash, bounded both by entry count and by total
// body bytes, evicting least-recently-used entries. Because campaigns are
// pure functions of the normalized request, entries never expire — an
// entry can only become wrong if the physics changes, which is a new
// binary, not a new request.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	ll         *list.List // front = most recently used; values are *cacheEntry
	index      map[string]*list.Element

	hits   *telemetry.Counter
	misses *telemetry.Counter
}

// NewCache builds a cache bounded by maxEntries entries and maxBytes total
// body bytes. Non-positive bounds fall back to 256 entries / 64 MiB.
func NewCache(maxEntries int, maxBytes int64, reg *telemetry.Registry) *Cache {
	if maxEntries <= 0 {
		maxEntries = 256
	}
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	if reg == nil {
		reg = telemetry.Default
	}
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		index:      map[string]*list.Element{},
		hits:       reg.Counter("server.cache_hits"),
		misses:     reg.Counter("server.cache_misses"),
	}
}

// ETagFor computes the strong ETag for a response body.
func ETagFor(body []byte) string {
	sum := sha256.Sum256(body)
	return `"` + hex.EncodeToString(sum[:]) + `"`
}

// Get returns the cached body and ETag for a key, counting the hit or
// miss. The returned slice is shared; callers must not mutate it.
func (c *Cache) Get(key string) (body []byte, etag string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		c.misses.Add(1)
		return nil, "", false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	c.hits.Add(1)
	return e.body, e.etag, true
}

// Put stores a completed result body. Oversized bodies (> maxBytes on
// their own) are not cached. Put returns the entry's ETag either way.
func (c *Cache) Put(key string, body []byte) string {
	etag := ETagFor(body)
	if int64(len(body)) > c.maxBytes {
		return etag
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		// Deterministic campaigns make a differing body for the same key
		// impossible; refresh recency and keep the original.
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).etag
	}
	e := &cacheEntry{key: key, body: body, etag: etag}
	c.index[key] = c.ll.PushFront(e)
	c.bytes += int64(len(body))
	for c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		ev := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.index, ev.key)
		c.bytes -= int64(len(ev.body))
	}
	return etag
}

// CacheStats is a point-in-time snapshot of the result cache, served by
// GET /v1/stats.
type CacheStats struct {
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRatio float64 `json:"hit_ratio"`
	Entries  int     `json:"entries"`
	Bytes    int64   `json:"bytes"`
	MaxBytes int64   `json:"max_bytes"`
	Capacity int     `json:"capacity"`
}

// Stats reads the current counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	entries, bytes := c.ll.Len(), c.bytes
	c.mu.Unlock()
	st := CacheStats{
		Hits:     c.hits.Value(),
		Misses:   c.misses.Value(),
		Entries:  entries,
		Bytes:    bytes,
		MaxBytes: c.maxBytes,
		Capacity: c.maxEntries,
	}
	if total := st.Hits + st.Misses; total > 0 {
		st.HitRatio = float64(st.Hits) / float64(total)
	}
	return st
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes reports the total cached body bytes.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
