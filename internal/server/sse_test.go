package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"neutronsim/internal/telemetry"
)

// sseFrame is one parsed server-sent event (or comment).
type sseFrame struct {
	comment string
	event   string
	data    string
}

// readSSE parses a complete SSE stream into frames.
func readSSE(t *testing.T, body string) []sseFrame {
	t.Helper()
	var frames []sseFrame
	for _, chunk := range strings.Split(body, "\n\n") {
		if strings.TrimSpace(chunk) == "" {
			continue
		}
		var f sseFrame
		sc := bufio.NewScanner(strings.NewReader(chunk))
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, ":"):
				f.comment = strings.TrimSpace(line[1:])
			case strings.HasPrefix(line, "event: "):
				f.event = line[len("event: "):]
			case strings.HasPrefix(line, "data: "):
				f.data = line[len("data: "):]
			}
		}
		frames = append(frames, f)
	}
	return frames
}

// TestSSEEventOrdering checks that progress frames arrive in submission
// order (Done never decreases) and the terminal state frame comes last.
func TestSSEEventOrdering(t *testing.T) {
	srv := New(Config{Workers: 1, Registry: telemetry.NewRegistry()})
	defer srv.Drain()
	connected := make(chan struct{})
	srv.execute = func(ctx context.Context, req *CampaignRequest, _ int) (*ResultEnvelope, error) {
		<-connected
		for i := 1; i <= 5; i++ {
			telemetry.ReportProgressContext(ctx, telemetry.ProgressUpdate{
				Component: "beam", Done: float64(i), Total: 5,
			})
			// Give the subscriber channel room to drain so no frame is
			// dropped by the non-blocking send.
			time.Sleep(5 * time.Millisecond)
		}
		return &ResultEnvelope{Kind: req.Kind}, nil
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postCampaign(t, ts, testRequest(1), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	stream, err := ts.Client().Get(ts.URL + "/v1/jobs/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	close(connected)
	raw := new(strings.Builder)
	if _, err := io.Copy(raw, stream.Body); err != nil {
		t.Fatal(err)
	}
	frames := readSSE(t, raw.String())
	if len(frames) < 2 {
		t.Fatalf("stream too short: %q", raw.String())
	}
	last := -1.0
	progress := 0
	for i, f := range frames {
		switch f.event {
		case "progress":
			progress++
			var p ProgressInfo
			if err := json.Unmarshal([]byte(f.data), &p); err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
			if p.Done < last {
				t.Errorf("progress went backwards: %v after %v", p.Done, last)
			}
			last = p.Done
		case "state":
			if i != len(frames)-1 {
				t.Errorf("state frame at %d is not last of %d", i, len(frames))
			}
			if !strings.Contains(f.data, `"state":"done"`) {
				t.Errorf("terminal frame: %s", f.data)
			}
		}
	}
	if progress == 0 {
		t.Error("no progress frames observed")
	}
}

// TestSSEHeartbeatOnIdleStream checks that a quiet job still produces
// periodic comment frames so intermediaries keep the connection alive.
func TestSSEHeartbeatOnIdleStream(t *testing.T) {
	srv := New(Config{Workers: 1, SSEHeartbeat: 20 * time.Millisecond, Registry: telemetry.NewRegistry()})
	defer srv.Drain()
	release := make(chan struct{})
	started := make(chan string, 1)
	srv.execute = blockingExec(started, release)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postCampaign(t, ts, testRequest(1), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	<-started // job is running and will emit no progress at all
	stream, err := ts.Client().Get(ts.URL + "/v1/jobs/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	// Read until a few heartbeats have arrived, then release the job.
	reader := bufio.NewReader(stream.Body)
	heartbeats := 0
	deadline := time.After(5 * time.Second)
	lines := make(chan string)
	go func() {
		for {
			line, err := reader.ReadString('\n')
			if err != nil {
				close(lines)
				return
			}
			lines <- line
		}
	}()
	for heartbeats < 3 {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("stream closed before heartbeats arrived")
			}
			if strings.HasPrefix(line, ": heartbeat") {
				heartbeats++
			}
		case <-deadline:
			t.Fatalf("saw %d heartbeats in 5s, want 3", heartbeats)
		}
	}
	close(release)
	// The stream must still terminate cleanly with the state frame.
	var tail strings.Builder
	for line := range lines {
		tail.WriteString(line)
	}
	if !strings.Contains(tail.String(), `"state":"done"`) {
		t.Errorf("stream did not end with terminal state:\n%s", tail.String())
	}
}

// TestSSEClosesOnJobCancellation checks that canceling a running job ends
// the event stream with a canceled state frame rather than leaving the
// client hanging.
func TestSSEClosesOnJobCancellation(t *testing.T) {
	srv := New(Config{Workers: 1, Registry: telemetry.NewRegistry()})
	defer srv.Drain()
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	srv.execute = blockingExec(started, release)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postCampaign(t, ts, testRequest(1), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	<-started

	stream, err := ts.Client().Get(ts.URL + "/v1/jobs/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+info.ID, nil)
	delResp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()

	done := make(chan string, 1)
	go func() {
		var b strings.Builder
		io.Copy(&b, stream.Body)
		done <- b.String()
	}()
	select {
	case text := <-done:
		frames := readSSE(t, text)
		if len(frames) == 0 {
			t.Fatalf("empty stream after cancellation: %q", text)
		}
		lastFrame := frames[len(frames)-1]
		if lastFrame.event != "state" || !strings.Contains(lastFrame.data, `"state":"canceled"`) {
			t.Errorf("stream must end with a canceled state frame, got %+v", lastFrame)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not close after job cancellation")
	}
}
