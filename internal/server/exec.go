package server

import (
	"context"
	"fmt"
	"strings"

	"neutronsim/internal/beam"
	"neutronsim/internal/core"
	"neutronsim/internal/memsim"
	"neutronsim/internal/plan"
	"neutronsim/internal/rng"
	"neutronsim/internal/spectrum"
	"neutronsim/internal/surrogate"
	"neutronsim/internal/transport"
	"neutronsim/internal/units"
)

// ResultEnvelope is the campaign result body: exactly one section is set,
// matching the request kind. It contains only deterministic simulation
// output — no timestamps or server state — so identical requests produce
// byte-identical envelopes and the cache's strong ETags are honest.
type ResultEnvelope struct {
	Kind       string           `json:"kind"`
	Beam       *beam.Result     `json:"beam,omitempty"`
	Assessment *core.Assessment `json:"assessment,omitempty"`
	Memory     *memsim.Result   `json:"memory,omitempty"`
	Transport  *transport.Tally `json:"transport,omitempty"`
	Xsection   *XsectionResult  `json:"xsection,omitempty"`
}

// XsectionResult is the xsection campaign result. Exact Monte Carlo
// answers carry only the deterministic estimate; surrogate-served
// answers additionally set Approx with the model's provenance, so a
// client can always tell which tier answered.
type XsectionResult struct {
	BoronPerCm2 float64 `json:"boron_per_cm2"`
	QcritFC     float64 `json:"qcrit_fc"`
	Spectrum    string  `json:"spectrum"`
	Samples     int     `json:"samples,omitempty"` // exact path only
	SigmaCm2    float64 `json:"sigma_cm2"`
	// Approx marks a surrogate-tier answer; the three fields below are
	// only set alongside it.
	Approx      bool    `json:"approx,omitempty"`
	Confidence  float64 `json:"confidence,omitempty"`
	RelErrBound float64 `json:"rel_err_bound,omitempty"`
	ModelHash   string  `json:"model_hash,omitempty"`
}

// Execute runs a normalized campaign request against the simulators.
// shards caps per-job engine concurrency (0 = GOMAXPROCS). The ctx
// carries the job's progress observer and deadline.
func Execute(ctx context.Context, req *CampaignRequest, shards int) (*ResultEnvelope, error) {
	switch req.Kind {
	case KindBeam:
		return execBeam(ctx, req, shards)
	case KindAssess:
		return execAssess(ctx, req, shards)
	case KindMemory:
		return execMemory(ctx, req, shards)
	case KindTransport:
		return execTransport(ctx, req, shards)
	case KindXsection:
		return execXsection(req)
	}
	return nil, fmt.Errorf("unknown kind %q", req.Kind)
}

// BeamConfig resolves a normalized beam campaign into the library Config.
// Both whole-campaign execution (execBeam) and shard-range execution
// (POST /v1/shards) build their Config here, so a shard range runs against
// exactly the plan the full campaign would — the precondition for
// bit-identical distributed assembly.
func BeamConfig(req *CampaignRequest, shards int) (beam.Config, error) {
	p := req.Beam
	d, err := DeviceByName(p.Device)
	if err != nil {
		return beam.Config{}, err
	}
	sp, err := SpectrumByName(p.Spectrum)
	if err != nil {
		return beam.Config{}, err
	}
	return beam.Config{
		Device:          d,
		WorkloadName:    p.Workload,
		Beam:            sp,
		DurationSeconds: p.DurationSeconds,
		RunSeconds:      p.RunSeconds,
		Derating:        p.Derating,
		Seed:            req.Seed,
		CalSamples:      p.CalSamples,
		Shards:          shards,
		ShardGrain:      p.ShardGrain,
		Bias:            p.Bias,
	}, nil
}

func execBeam(ctx context.Context, req *CampaignRequest, shards int) (*ResultEnvelope, error) {
	cfg, err := BeamConfig(req, shards)
	if err != nil {
		return nil, err
	}
	res, err := beam.RunContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return &ResultEnvelope{Kind: KindBeam, Beam: res}, nil
}

func execAssess(ctx context.Context, req *CampaignRequest, shards int) (*ResultEnvelope, error) {
	p := req.Assess
	d, err := DeviceByName(p.Device)
	if err != nil {
		return nil, err
	}
	res, err := core.AssessContext(ctx, d, p.Workloads, core.Budget{
		FastSeconds:    p.FastSeconds,
		ThermalSeconds: p.ThermalSeconds,
		Boost:          p.Boost,
		Shards:         shards,
	}, req.Seed)
	if err != nil {
		return nil, err
	}
	return &ResultEnvelope{Kind: KindAssess, Assessment: res}, nil
}

func execMemory(ctx context.Context, req *CampaignRequest, shards int) (*ResultEnvelope, error) {
	p := req.Memory
	spec := memsim.DDR3Module()
	if p.Generation == "DDR4" {
		spec = memsim.DDR4Module()
	}
	band := memsim.ThermalBeam
	if p.Band == memsim.FastBeam.String() {
		band = memsim.FastBeam
	}
	res, err := memsim.RunContext(ctx, memsim.Config{
		Spec:                spec,
		Band:                band,
		Flux:                units.Flux(p.Flux),
		DurationSeconds:     p.DurationSeconds,
		PassSeconds:         p.PassSeconds,
		ECC:                 p.ECC,
		PermanentAbortLimit: p.PermanentAbortLimit,
		Seed:                req.Seed,
		Shards:              shards,
		ShardGrain:          p.ShardGrain,
	})
	if err != nil {
		return nil, err
	}
	return &ResultEnvelope{Kind: KindMemory, Memory: res}, nil
}

func execTransport(ctx context.Context, req *CampaignRequest, shards int) (*ResultEnvelope, error) {
	p := req.Transport
	slabs := make([]transport.Slab, len(p.Slabs))
	for i, sl := range p.Slabs {
		m, err := MaterialByName(sl.Material)
		if err != nil {
			return nil, err
		}
		slabs[i] = transport.Slab{Material: m, Thickness: sl.ThicknessCm}
	}
	var source func(*rng.Stream) units.Energy
	if p.MonoEV > 0 {
		mono, err := spectrum.NewMono("mono", units.Energy(p.MonoEV), 1)
		if err != nil {
			return nil, err
		}
		source = mono.Sample
	} else {
		sp, err := SpectrumByName(strings.TrimSpace(p.Source))
		if err != nil {
			return nil, err
		}
		source = sp.Sample
	}
	res, err := transport.SimulateContext(ctx, slabs, p.Neutrons, source, rng.New(req.Seed), transport.Options{
		ForwardBias:     p.ForwardBias,
		Shards:          shards,
		ShardGrain:      p.ShardGrain,
		ImplicitCapture: p.ImplicitCapture,
	})
	if err != nil {
		return nil, err
	}
	return &ResultEnvelope{Kind: KindTransport, Transport: res}, nil
}

// execXsection is the exact Monte Carlo path for a design-space
// cross-section query: the same device construction, estimator and RNG
// discipline as one cmd/sweep grid point, so a surrogate trained on
// sweep output predicts exactly this quantity — and the fallback path
// behind the surrogate tier returns bit-identical results to a direct
// library run.
func execXsection(req *CampaignRequest) (*ResultEnvelope, error) {
	p := req.Xsection
	sp, err := SpectrumByName(p.Spectrum)
	if err != nil {
		return nil, err
	}
	d := surrogate.DesignDevice(p.BoronPerCm2, p.QcritFC)
	s := rng.New(req.Seed)
	var sigma units.CrossSection
	if p.Bias == nil {
		sigma, err = d.UpsetCrossSection(sp.Sample, p.Samples, s)
	} else {
		var cp *plan.CampaignPlan
		cp, err = plan.CompileBiased(d, sp, p.Samples, s, *p.Bias)
		if err != nil {
			return nil, err
		}
		sigma, _, err = cp.UpsetCrossSectionWeighted(d, p.Samples, s)
	}
	if err != nil {
		return nil, err
	}
	return &ResultEnvelope{Kind: KindXsection, Xsection: &XsectionResult{
		BoronPerCm2: p.BoronPerCm2,
		QcritFC:     p.QcritFC,
		Spectrum:    p.Spectrum,
		Samples:     p.Samples,
		SigmaCm2:    float64(sigma),
	}}, nil
}
