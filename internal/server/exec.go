package server

import (
	"context"
	"fmt"
	"strings"

	"neutronsim/internal/beam"
	"neutronsim/internal/core"
	"neutronsim/internal/memsim"
	"neutronsim/internal/rng"
	"neutronsim/internal/spectrum"
	"neutronsim/internal/transport"
	"neutronsim/internal/units"
)

// ResultEnvelope is the campaign result body: exactly one section is set,
// matching the request kind. It contains only deterministic simulation
// output — no timestamps or server state — so identical requests produce
// byte-identical envelopes and the cache's strong ETags are honest.
type ResultEnvelope struct {
	Kind       string           `json:"kind"`
	Beam       *beam.Result     `json:"beam,omitempty"`
	Assessment *core.Assessment `json:"assessment,omitempty"`
	Memory     *memsim.Result   `json:"memory,omitempty"`
	Transport  *transport.Tally `json:"transport,omitempty"`
}

// Execute runs a normalized campaign request against the simulators.
// shards caps per-job engine concurrency (0 = GOMAXPROCS). The ctx
// carries the job's progress observer and deadline.
func Execute(ctx context.Context, req *CampaignRequest, shards int) (*ResultEnvelope, error) {
	switch req.Kind {
	case KindBeam:
		return execBeam(ctx, req, shards)
	case KindAssess:
		return execAssess(ctx, req, shards)
	case KindMemory:
		return execMemory(ctx, req, shards)
	case KindTransport:
		return execTransport(ctx, req, shards)
	}
	return nil, fmt.Errorf("unknown kind %q", req.Kind)
}

// BeamConfig resolves a normalized beam campaign into the library Config.
// Both whole-campaign execution (execBeam) and shard-range execution
// (POST /v1/shards) build their Config here, so a shard range runs against
// exactly the plan the full campaign would — the precondition for
// bit-identical distributed assembly.
func BeamConfig(req *CampaignRequest, shards int) (beam.Config, error) {
	p := req.Beam
	d, err := DeviceByName(p.Device)
	if err != nil {
		return beam.Config{}, err
	}
	sp, err := SpectrumByName(p.Spectrum)
	if err != nil {
		return beam.Config{}, err
	}
	return beam.Config{
		Device:          d,
		WorkloadName:    p.Workload,
		Beam:            sp,
		DurationSeconds: p.DurationSeconds,
		RunSeconds:      p.RunSeconds,
		Derating:        p.Derating,
		Seed:            req.Seed,
		CalSamples:      p.CalSamples,
		Shards:          shards,
		ShardGrain:      p.ShardGrain,
		Bias:            p.Bias,
	}, nil
}

func execBeam(ctx context.Context, req *CampaignRequest, shards int) (*ResultEnvelope, error) {
	cfg, err := BeamConfig(req, shards)
	if err != nil {
		return nil, err
	}
	res, err := beam.RunContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return &ResultEnvelope{Kind: KindBeam, Beam: res}, nil
}

func execAssess(ctx context.Context, req *CampaignRequest, shards int) (*ResultEnvelope, error) {
	p := req.Assess
	d, err := DeviceByName(p.Device)
	if err != nil {
		return nil, err
	}
	res, err := core.AssessContext(ctx, d, p.Workloads, core.Budget{
		FastSeconds:    p.FastSeconds,
		ThermalSeconds: p.ThermalSeconds,
		Boost:          p.Boost,
		Shards:         shards,
	}, req.Seed)
	if err != nil {
		return nil, err
	}
	return &ResultEnvelope{Kind: KindAssess, Assessment: res}, nil
}

func execMemory(ctx context.Context, req *CampaignRequest, shards int) (*ResultEnvelope, error) {
	p := req.Memory
	spec := memsim.DDR3Module()
	if p.Generation == "DDR4" {
		spec = memsim.DDR4Module()
	}
	band := memsim.ThermalBeam
	if p.Band == memsim.FastBeam.String() {
		band = memsim.FastBeam
	}
	res, err := memsim.RunContext(ctx, memsim.Config{
		Spec:                spec,
		Band:                band,
		Flux:                units.Flux(p.Flux),
		DurationSeconds:     p.DurationSeconds,
		PassSeconds:         p.PassSeconds,
		ECC:                 p.ECC,
		PermanentAbortLimit: p.PermanentAbortLimit,
		Seed:                req.Seed,
		Shards:              shards,
		ShardGrain:          p.ShardGrain,
	})
	if err != nil {
		return nil, err
	}
	return &ResultEnvelope{Kind: KindMemory, Memory: res}, nil
}

func execTransport(ctx context.Context, req *CampaignRequest, shards int) (*ResultEnvelope, error) {
	p := req.Transport
	slabs := make([]transport.Slab, len(p.Slabs))
	for i, sl := range p.Slabs {
		m, err := MaterialByName(sl.Material)
		if err != nil {
			return nil, err
		}
		slabs[i] = transport.Slab{Material: m, Thickness: sl.ThicknessCm}
	}
	var source func(*rng.Stream) units.Energy
	if p.MonoEV > 0 {
		mono, err := spectrum.NewMono("mono", units.Energy(p.MonoEV), 1)
		if err != nil {
			return nil, err
		}
		source = mono.Sample
	} else {
		sp, err := SpectrumByName(strings.TrimSpace(p.Source))
		if err != nil {
			return nil, err
		}
		source = sp.Sample
	}
	res, err := transport.SimulateContext(ctx, slabs, p.Neutrons, source, rng.New(req.Seed), transport.Options{
		ForwardBias:     p.ForwardBias,
		Shards:          shards,
		ShardGrain:      p.ShardGrain,
		ImplicitCapture: p.ImplicitCapture,
	})
	if err != nil {
		return nil, err
	}
	return &ResultEnvelope{Kind: KindTransport, Transport: res}, nil
}
