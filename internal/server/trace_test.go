package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"neutronsim/internal/telemetry"
	"neutronsim/internal/telemetry/trace"
)

// TestJobTraceEndToEnd runs a real (small) beam campaign through the HTTP
// surface with an incoming W3C traceparent and checks the full tracing
// contract: trace ID inheritance, the emitted response header, the span
// tree at /v1/jobs/{id}/trace, and the stage breakdown in job status.
func TestJobTraceEndToEnd(t *testing.T) {
	srv := New(Config{Workers: 1, Registry: telemetry.NewRegistry()})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const callerTrace = "0af7651916cd43dd8448eb211c80319c"
	const callerSpan = "b7ad6b7169203331"
	resp, body := postCampaign(t, ts, testRequest(1), map[string]string{
		trace.Header: "00-" + callerTrace + "-" + callerSpan + "-01",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	// The 202 echoes a traceparent naming the job's root span inside the
	// caller's trace.
	tp, err := trace.ParseTraceparent(resp.Header.Get(trace.Header))
	if err != nil {
		t.Fatalf("response traceparent: %v", err)
	}
	if tp.TraceID.String() != callerTrace {
		t.Fatalf("response trace ID = %s, want caller's %s", tp.TraceID, callerTrace)
	}
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.TraceID != callerTrace {
		t.Fatalf("job TraceID = %q, want %q", info.TraceID, callerTrace)
	}

	final := awaitJob(t, ts, info.ID, 30*time.Second)
	if final.State != StateDone {
		t.Fatalf("job state = %q: %s", final.State, final.Error)
	}

	// Job status carries the per-stage timing breakdown.
	stages := map[string]float64{}
	for _, st := range final.Stages {
		if st.Seconds < 0 {
			t.Errorf("stage %q has negative duration %v", st.Stage, st.Seconds)
		}
		stages[st.Stage] = st.Seconds
	}
	for _, want := range []string{"queue", "compile", "run", "merge"} {
		if _, ok := stages[want]; !ok {
			t.Errorf("job stages missing %q: %+v", want, final.Stages)
		}
	}

	// The span tree endpoint returns the same trace, rooted at the job
	// span, parented to the caller's span, with stage totals bounded by
	// the root duration.
	res, err := ts.Client().Get(ts.URL + "/v1/jobs/" + info.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint: status %d", res.StatusCode)
	}
	var snap trace.Snapshot
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.TraceID != callerTrace {
		t.Fatalf("trace snapshot ID = %q, want %q", snap.TraceID, callerTrace)
	}
	if snap.Root == nil || snap.Root.Name != "job" {
		t.Fatal("trace must root at the job span")
	}
	if snap.Root.InFlight {
		t.Error("root span still in flight after a terminal job")
	}
	attrs := map[string]string{}
	for _, a := range snap.Root.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["job_id"] != info.ID || attrs["state"] != StateDone {
		t.Errorf("root attrs = %v", snap.Root.Attrs)
	}
	var total float64
	for _, st := range snap.Stages {
		if st.Seconds < 0 {
			t.Errorf("stage %q negative in snapshot", st.Stage)
		}
		total += st.Seconds
	}
	// Stages partition the job's wall time (plus untagged slack), so their
	// sum can never exceed the root duration. Allow a sliver of float
	// noise.
	if total > snap.Root.DurationSeconds*1.001+0.001 {
		t.Errorf("stage sum %v exceeds root duration %v", total, snap.Root.DurationSeconds)
	}
	// The pipeline spans all landed under the job root.
	names := map[string]bool{}
	var walk func(n *trace.SpanSnapshot)
	walk = func(n *trace.SpanSnapshot) {
		names[n.Name] = true
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(snap.Root)
	for _, want := range []string{"queue.wait", "beam.campaign", "plan.lookup", "engine.beam", "engine.shard", "beam.merge"} {
		if !names[want] {
			t.Errorf("trace tree missing span %q", want)
		}
	}
}

func TestJobTraceFreshWhenHeaderMalformed(t *testing.T) {
	srv := New(Config{Workers: 1, Registry: telemetry.NewRegistry()})
	defer srv.Drain()
	release := make(chan struct{})
	close(release)
	srv.execute = blockingExec(nil, release)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postCampaign(t, ts, testRequest(1), map[string]string{
		trace.Header: "garbage-not-a-traceparent",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	tp, err := trace.ParseTraceparent(resp.Header.Get(trace.Header))
	if err != nil {
		t.Fatalf("malformed inbound header must still yield a valid outbound one: %v", err)
	}
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.TraceID != tp.TraceID.String() {
		t.Errorf("job TraceID %q != header trace ID %q", info.TraceID, tp.TraceID)
	}
}

func TestTraceEndpointUnknownJob(t *testing.T) {
	srv := New(Config{Workers: 1, Registry: telemetry.NewRegistry()})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	res, err := ts.Client().Get(ts.URL + "/v1/jobs/j-999999/trace")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", res.StatusCode)
	}
}

func TestMetricsEndpointServesValidExposition(t *testing.T) {
	srv := New(Config{Workers: 1, Registry: telemetry.NewRegistry()})
	defer srv.Drain()
	release := make(chan struct{})
	close(release)
	srv.execute = blockingExec(nil, release)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postCampaign(t, ts, testRequest(1), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	awaitJob(t, ts, info.ID, 10*time.Second)

	res, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Errorf("Content-Type = %q", ct)
	}
	text, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "server_jobs_submitted_total 1") {
		t.Errorf("/metrics missing job counter:\n%s", text)
	}
}
