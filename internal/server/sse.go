package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// handleEvents is GET /v1/jobs/{id}/events: a Server-Sent Events stream of
// the job's progress, wired to the engine's per-shard completion counter
// through the job's context observer. Each progress frame is a "progress"
// event; the stream ends with one "state" event carrying the terminal
// JobInfo (minus the result body — fetch that from /v1/jobs/{id} or
// resubmit the request for a cache hit).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	sub := j.subscribe()
	defer j.unsubscribe(sub)
	// Idle streams emit SSE comment frames so proxies and clients with
	// read timeouts keep the connection open while a long campaign runs
	// between progress updates.
	var heartbeat <-chan time.Time
	if s.cfg.SSEHeartbeat > 0 {
		t := time.NewTicker(s.cfg.SSEHeartbeat)
		defer t.Stop()
		heartbeat = t.C
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat:
			fmt.Fprint(w, ": heartbeat\n\n")
			flusher.Flush()
		case p := <-sub:
			writeEvent(w, "progress", p)
			flusher.Flush()
		case <-j.Done():
			// Drain any progress frames that beat the terminal state.
			for {
				select {
				case p := <-sub:
					writeEvent(w, "progress", p)
					continue
				default:
				}
				break
			}
			info := j.Info()
			info.Result = nil // keep the stream light; the body lives at /v1/jobs/{id}
			writeEvent(w, "state", info)
			flusher.Flush()
			return
		}
	}
}

// writeEvent emits one SSE frame.
func writeEvent(w http.ResponseWriter, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}
