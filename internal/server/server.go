package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"neutronsim/internal/surrogate"
	"neutronsim/internal/telemetry"
	"neutronsim/internal/telemetry/trace"
)

// Config sizes the service. The zero value gets sensible defaults from
// New.
type Config struct {
	// Addr is the listen address for Start/Run (default "127.0.0.1:0").
	Addr string
	// QueueDepth bounds how many jobs may wait beyond the ones running
	// (default 64). A full queue answers 429 with Retry-After.
	QueueDepth int
	// Workers is the number of concurrent jobs (default 2).
	Workers int
	// JobShards caps each job's engine concurrency (default GOMAXPROCS).
	// Like every shard-worker knob, it never affects results.
	JobShards int
	// CacheEntries / CacheBytes bound the result cache (defaults 256
	// entries, 64 MiB).
	CacheEntries int
	CacheBytes   int64
	// JobTimeout is the per-job deadline (default 10m; negative disables).
	JobTimeout time.Duration
	// DrainTimeout bounds how long Run waits for in-flight jobs after its
	// context is canceled before canceling them (default 30s).
	DrainTimeout time.Duration
	// RetryAfter is the hint returned with 429/503 (default 2s).
	RetryAfter time.Duration
	// MaxJobs bounds retained job records; the oldest terminal jobs are
	// forgotten beyond it (default 1024).
	MaxJobs int
	// SSEHeartbeat is the idle interval between comment frames on the
	// /v1/jobs/{id}/events stream, keeping proxies from timing out a quiet
	// connection (default 15s; negative disables).
	SSEHeartbeat time.Duration
	// ShardSlots bounds concurrent POST /v1/shards executions — the
	// synchronous worker surface of cluster mode (default GOMAXPROCS).
	// Like every worker knob it never affects results.
	ShardSlots int
	// Execute overrides how jobs run (default Execute, the local library
	// call). Cluster coordinators inject their fan-out executor here;
	// POST /v1/shards always uses the local executor regardless, so a
	// coordinator asked to run a shard range never recurses.
	Execute func(ctx context.Context, req *CampaignRequest, shards int) (*ResultEnvelope, error)
	// Registry receives the service's telemetry (default telemetry.Default).
	Registry *telemetry.Registry
	// Surrogate enables the approximate serving tier between the result
	// cache and exact Monte Carlo: xsection requests carrying a positive
	// tolerance that lands inside the model's trained hull and certified
	// error bound are answered from the fitted model in O(µs) with
	// approx: true. Nil (the default) disables the tier; every request
	// then runs exact MC. Load a model with surrogate.Load, which
	// verifies its content hash.
	Surrogate *surrogate.Model
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 10 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 2 * time.Second
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.SSEHeartbeat == 0 {
		c.SSEHeartbeat = 15 * time.Second
	}
	if c.ShardSlots <= 0 {
		c.ShardSlots = runtime.GOMAXPROCS(0)
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default
	}
	return c
}

// Server is the neutrond campaign service.
type Server struct {
	cfg       Config
	mux       *http.ServeMux
	cache     *Cache
	surrogate *surrogateTier // nil when no model is loaded

	queue chan *Job
	quit  chan struct{} // closed at drain: workers stop pulling
	// shardSem bounds concurrent /v1/shards executions (cluster worker
	// surface); acquired per request, released when the range finishes.
	shardSem chan struct{}

	mu       sync.Mutex
	byID     map[string]*Job
	order    []string        // job insertion order, for record eviction
	inflight map[string]*Job // cache key → queued/running job (coalescing)

	nextID   atomic.Int64
	draining atomic.Bool

	// runCtx parents every job context. It is canceled only when the
	// drain deadline expires (or the server is force-stopped), never by
	// the signal that starts the drain — in-flight jobs get their chance
	// to finish.
	runCtx    context.Context
	runCancel context.CancelFunc
	workerWG  sync.WaitGroup

	listener net.Listener
	httpSrv  *http.Server

	// execute runs one campaign; tests override it to control timing.
	execute func(ctx context.Context, req *CampaignRequest, shards int) (*ResultEnvelope, error)

	jobsRunning *telemetry.Gauge
	queueDepth  *telemetry.Gauge
}

// New builds a Server and starts its worker pool. Callers that only need
// the HTTP surface (tests) use Handler; Run adds the listener and drain
// lifecycle.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		cache:     NewCache(cfg.CacheEntries, cfg.CacheBytes, cfg.Registry),
		surrogate: newSurrogateTier(cfg.Surrogate, cfg.Registry),
		queue:     make(chan *Job, cfg.QueueDepth),
		quit:      make(chan struct{}),
		shardSem:  make(chan struct{}, cfg.ShardSlots),
		byID:      map[string]*Job{},
		inflight:  map[string]*Job{},
		execute:   Execute,
	}
	if cfg.Execute != nil {
		s.execute = cfg.Execute
	}
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	s.jobsRunning = cfg.Registry.Gauge("server.jobs_running")
	s.queueDepth = cfg.Registry.Gauge("server.queue_depth")
	s.mux = http.NewServeMux()
	s.routes()
	for i := 0; i < cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Addr returns the bound listen address after Start.
func (s *Server) Addr() string {
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Start binds the configured address and begins serving in the
// background. It returns once the listener is bound, so Addr is valid.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.listener = ln
	s.httpSrv = &http.Server{Handler: s.mux}
	go func() {
		if err := s.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			telemetry.Count("server.serve_errors", 1)
		}
	}()
	return nil
}

// Run starts the server and blocks until ctx is canceled, then drains:
// intake switches to 503, in-flight jobs get DrainTimeout to finish
// before being canceled, and the HTTP server shuts down last so job
// watchers see their terminal events.
func (s *Server) Run(ctx context.Context) error {
	if err := s.Start(); err != nil {
		return err
	}
	<-ctx.Done()
	return s.Drain()
}

// Drain performs the graceful-shutdown sequence. It is safe to call once.
func (s *Server) Drain() error {
	s.draining.Store(true)
	// Lock barrier: any submit that read draining == false holds s.mu
	// through its enqueue, so after this round-trip no new job can land
	// in the queue.
	s.mu.Lock()
	s.mu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	close(s.quit)
	// Flush jobs still waiting in the queue: intake has stopped, so they
	// would otherwise sit queued forever if the workers exit first.
	s.flushQueue()
	workersDone := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(workersDone)
	}()
	timedOut := false
	select {
	case <-workersDone:
	case <-time.After(s.cfg.DrainTimeout):
		timedOut = true
		s.runCancel() // cancel in-flight jobs at the next shard boundary
		<-workersDone
	}
	s.runCancel()
	// Workers are gone; anything they pulled-then-requeued or that raced
	// past the first flush is settled now.
	s.flushQueue()
	if s.httpSrv != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.httpSrv.Shutdown(shutCtx); err != nil {
			return err
		}
	}
	if timedOut {
		return fmt.Errorf("server: drain deadline exceeded after %v; in-flight jobs canceled", s.cfg.DrainTimeout)
	}
	return nil
}

// flushQueue drains the queue channel, settling each waiting job as
// canceled.
func (s *Server) flushQueue() {
	for {
		select {
		case j := <-s.queue:
			s.queueDepth.Add(-1)
			if j.finish(StateCanceled, nil, "", "server draining") {
				s.clearInflight(j)
			}
		default:
			return
		}
	}
}

// worker pulls jobs until drain.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for {
		select {
		case <-s.quit:
			return
		case j := <-s.queue:
			s.queueDepth.Add(-1)
			s.runJob(j)
		}
	}
}

// runJob executes one job and settles its terminal state, cache entry and
// telemetry.
func (s *Server) runJob(j *Job) {
	ctx := s.runCtx
	var cancel context.CancelFunc
	if s.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	if !j.markRunning(cancel) {
		s.clearInflight(j) // canceled while queued
		return
	}
	s.jobsRunning.Add(1)
	defer s.jobsRunning.Add(-1)
	start := time.Now()
	ctx = telemetry.ContextWithProgress(ctx, j.observe)
	// Parent the campaign's telemetry spans under the job's root span so
	// the whole pipeline — plan lookup, engine shards, merge — lands in the
	// job's trace tree.
	ctx = trace.NewContext(ctx, j.root)
	log := telemetry.LogWith(ctx).With("job_id", j.ID, "kind", j.Req.Kind)
	log.Info("job started")
	env, err := s.execute(ctx, j.Req, s.cfg.JobShards)
	s.cfg.Registry.Histogram("server.job_seconds").ObserveSince(start)
	switch {
	case err == nil:
		body, merr := json.Marshal(env)
		if merr != nil {
			j.finish(StateFailed, nil, "", fmt.Sprintf("marshal result: %v", merr))
			s.cfg.Registry.Counter("server.jobs_failed").Add(1)
			break
		}
		etag := s.cache.Put(j.Key, body)
		j.finish(StateDone, body, etag, "")
		s.cfg.Registry.Counter("server.jobs_completed").Add(1)
	case errors.Is(err, context.Canceled):
		j.finish(StateCanceled, nil, "", err.Error())
		s.cfg.Registry.Counter("server.jobs_canceled").Add(1)
	case errors.Is(err, context.DeadlineExceeded):
		j.finish(StateFailed, nil, "", fmt.Sprintf("job deadline exceeded: %v", err))
		s.cfg.Registry.Counter("server.jobs_failed").Add(1)
	default:
		j.finish(StateFailed, nil, "", err.Error())
		s.cfg.Registry.Counter("server.jobs_failed").Add(1)
	}
	s.clearInflight(j)
	if state := j.State(); state == StateDone {
		log.Info("job finished", "state", state, "seconds", time.Since(start).Seconds())
	} else {
		log.Warn("job finished", "state", state, "seconds", time.Since(start).Seconds(), "error", err)
	}
}

// errDraining rejects submissions during shutdown.
var errDraining = errors.New("server is draining")

// submit enqueues a normalized request, coalescing with any identical
// queued/running job. It returns the job and whether it was coalesced;
// a nil job means the queue is full. The draining check happens under
// the same lock the enqueue does, so Drain's lock barrier guarantees no
// job lands in the queue after the final flush.
func (s *Server) submit(req *CampaignRequest, key string, parent *trace.Traceparent) (j *Job, coalesced bool, err error) {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		return nil, false, errDraining
	}
	if existing, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		return existing, true, nil
	}
	id := fmt.Sprintf("j-%06d", s.nextID.Add(1))
	j = newJob(id, req, key, parent)
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		return nil, false, nil
	}
	s.queueDepth.Add(1)
	s.inflight[key] = j
	s.byID[id] = j
	s.order = append(s.order, id)
	s.evictOldRecordsLocked()
	s.mu.Unlock()
	s.cfg.Registry.Counter("server.jobs_submitted").Add(1)
	return j, false, nil
}

// evictOldRecordsLocked forgets the oldest terminal job records beyond
// MaxJobs. Queued/running jobs are never evicted.
func (s *Server) evictOldRecordsLocked() {
	for len(s.byID) > s.cfg.MaxJobs {
		evicted := false
		for i, id := range s.order {
			j, ok := s.byID[id]
			if !ok {
				continue
			}
			switch j.State() {
			case StateDone, StateFailed, StateCanceled:
				delete(s.byID, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
			}
			if evicted {
				break
			}
		}
		if !evicted {
			return // everything live; keep the records
		}
	}
}

// jobByID looks a job record up.
func (s *Server) jobByID(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	return j, ok
}

// clearInflight removes the job from the coalescing map once terminal.
func (s *Server) clearInflight(j *Job) {
	s.mu.Lock()
	if s.inflight[j.Key] == j {
		delete(s.inflight, j.Key)
	}
	s.mu.Unlock()
}
