package server

import (
	"fmt"
	"sort"
	"strings"

	"neutronsim/internal/materials"
)

// materialCatalog maps request material names (lowercase) to constructors
// from the built-in library. Borated polyethylene is fixed at the 5 wt%
// grade shielding vendors actually sell; a request needing a different
// loading is a library call, not a service call.
var materialCatalog = map[string]func() *materials.Material{
	"water":                materials.Water,
	"concrete":             materials.Concrete,
	"polyethylene":         materials.Polyethylene,
	"borated polyethylene": func() *materials.Material { return materials.BoratedPolyethylene(0.05) },
	"cadmium":              materials.CadmiumSheet,
	"silicon":              materials.SiliconBulk,
	"bpsg":                 materials.BPSG,
	"air":                  materials.Air,
	"kerosene":             materials.Kerosene,
	"liquid methane":       materials.LiquidMethane,
}

// MaterialByName resolves a transport material case-insensitively.
func MaterialByName(name string) (*materials.Material, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	ctor, ok := materialCatalog[key]
	if !ok {
		return nil, fmt.Errorf("unknown material %q (have %s)", name, strings.Join(MaterialNames(), ", "))
	}
	return ctor(), nil
}

// MaterialNames lists the materials the service accepts, sorted.
func MaterialNames() []string {
	names := make([]string, 0, len(materialCatalog))
	for k := range materialCatalog {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
