package server

import (
	"context"
	"encoding/json"
	"sync"

	"neutronsim/internal/telemetry"
	"neutronsim/internal/telemetry/trace"
)

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// ProgressInfo is the live progress of a running job, fed by the engine's
// per-shard completion hook through the job's context observer.
type ProgressInfo struct {
	Component string  `json:"component,omitempty"`
	Done      float64 `json:"done"`
	Total     float64 `json:"total"`
	Fluence   float64 `json:"fluence,omitempty"`
	Events    int64   `json:"events,omitempty"`
}

// JobInfo is the wire representation of a job (GET /v1/jobs/{id} and the
// body of a 202 Accepted).
type JobInfo struct {
	ID       string           `json:"id"`
	State    string           `json:"state"`
	Kind     string           `json:"kind"`
	Key      string           `json:"key"`
	TraceID  string           `json:"trace_id,omitempty"`
	Error    string           `json:"error,omitempty"`
	Progress *ProgressInfo    `json:"progress,omitempty"`
	Result   json.RawMessage  `json:"result,omitempty"`
	Request  *CampaignRequest `json:"request,omitempty"`
	// Stages is the per-stage wall-time breakdown derived from the job's
	// trace (queue wait, plan compile, sharded run, merge). Present as soon
	// as the first staged span has started; see GET /v1/jobs/{id}/trace for
	// the full span tree.
	Stages []trace.StageTiming `json:"stages,omitempty"`
}

// Job is one submitted campaign moving through the queue.
type Job struct {
	ID  string
	Req *CampaignRequest // normalized
	Key string

	// tr is the job's trace; root spans the job end to end and qspan covers
	// the time spent waiting in the queue. The worker parents the campaign's
	// telemetry spans under root, so /v1/jobs/{id}/trace shows queue wait,
	// plan compile, every engine shard and the merge as one tree.
	tr    *trace.Trace
	root  *trace.Span
	qspan *trace.Span

	mu       sync.Mutex
	state    string
	errMsg   string
	result   []byte // marshaled ResultEnvelope, set when state == done
	etag     string
	progress ProgressInfo
	hasProg  bool
	cancel   context.CancelFunc
	subs     map[chan ProgressInfo]struct{}

	// done is closed exactly once when the job reaches a terminal state.
	done chan struct{}
}

func newJob(id string, req *CampaignRequest, key string, parent *trace.Traceparent) *Job {
	tr, root := trace.New("job", parent)
	tr.SetRecorder(trace.Default)
	root.SetAttr("job_id", id)
	root.SetAttr("kind", req.Kind)
	q := root.StartChild("queue.wait")
	q.SetStage("queue")
	return &Job{
		ID:    id,
		Req:   req,
		Key:   key,
		tr:    tr,
		root:  root,
		qspan: q,
		state: StateQueued,
		subs:  map[chan ProgressInfo]struct{}{},
		done:  make(chan struct{}),
	}
}

// TraceSnapshot materializes the job's trace tree (GET /v1/jobs/{id}/trace).
func (j *Job) TraceSnapshot() *trace.Snapshot { return j.tr.Snapshot() }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Info snapshots the job for the wire, including the result body when
// done. The result bytes are exactly the cached campaign body, so a
// client reading a finished job and a client hitting the cache see
// byte-identical payloads.
func (j *Job) Info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := JobInfo{
		ID:      j.ID,
		State:   j.state,
		Kind:    j.Req.Kind,
		Key:     j.Key,
		TraceID: j.tr.ID().String(),
		Error:   j.errMsg,
	}
	if snap := j.tr.Snapshot(); snap != nil {
		info.Stages = snap.Stages
	}
	if j.hasProg {
		p := j.progress
		info.Progress = &p
	}
	if j.state == StateDone {
		info.Result = json.RawMessage(j.result)
	}
	return info
}

// State returns the job's current state.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// ETag returns the result ETag ("" until done).
func (j *Job) ETag() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.etag
}

// markRunning moves queued → running, storing the cancel func for DELETE.
// It reports false if the job was canceled while queued (the worker then
// skips it).
func (j *Job) markRunning(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.cancel = cancel
	j.qspan.End()
	return true
}

// observe receives a telemetry progress update from the job's context.
// Subscriber channels get a non-blocking send: SSE writers that fall
// behind miss intermediate frames, never block the simulation.
func (j *Job) observe(u telemetry.ProgressUpdate) {
	j.mu.Lock()
	p := ProgressInfo{
		Component: u.Component,
		Done:      u.Done,
		Total:     u.Total,
		Fluence:   u.Fluence,
		Events:    u.Events,
	}
	j.progress = p
	j.hasProg = true
	subs := make([]chan ProgressInfo, 0, len(j.subs))
	for ch := range j.subs {
		subs = append(subs, ch)
	}
	j.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- p:
		default:
		}
	}
}

// subscribe registers a progress channel; the current progress (if any) is
// primed into it so late subscribers see state immediately.
func (j *Job) subscribe() chan ProgressInfo {
	ch := make(chan ProgressInfo, 8)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	if j.hasProg {
		ch <- j.progress
	}
	j.mu.Unlock()
	return ch
}

func (j *Job) unsubscribe(ch chan ProgressInfo) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// finish moves the job to a terminal state. Calling it twice is a bug
// everywhere except the canceled-while-queued race, where the first
// terminal state wins.
func (j *Job) finish(state string, result []byte, etag string, errMsg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone || j.state == StateFailed || j.state == StateCanceled {
		return false
	}
	j.state = state
	j.result = result
	j.etag = etag
	j.errMsg = errMsg
	j.cancel = nil
	j.endTrace(state, errMsg)
	close(j.done)
	return true
}

// endTrace settles the job's spans at a terminal state. Span.End is
// idempotent, so the canceled-while-queued path (which never ran
// markRunning) and the normal path converge here safely.
func (j *Job) endTrace(state, errMsg string) {
	j.qspan.End()
	j.root.SetAttr("state", state)
	if errMsg != "" {
		j.root.SetAttr("error", errMsg)
	}
	j.root.End()
}

// Cancel requests cancellation: a queued job is finished as canceled on
// the spot; a running job has its context canceled and reaches the
// canceled state when the engine unwinds at the next shard boundary.
// It reports whether the request had any effect.
func (j *Job) Cancel() bool {
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.errMsg = context.Canceled.Error()
		j.endTrace(StateCanceled, j.errMsg)
		close(j.done)
		j.mu.Unlock()
		return true
	case StateRunning:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true
	}
	j.mu.Unlock()
	return false
}
