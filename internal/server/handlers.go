package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"strconv"

	"neutronsim/internal/device"
	"neutronsim/internal/physics"
	"neutronsim/internal/plan"
	"neutronsim/internal/spectrum"
	"neutronsim/internal/telemetry"
	"neutronsim/internal/telemetry/trace"
	"neutronsim/internal/workload"
)

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("POST /v1/shards", s.handleShards)
	s.mux.Handle("GET /metrics", telemetry.PrometheusHandler(s.cfg.Registry))
	s.mux.HandleFunc("GET /v1/devices", s.handleDevices)
	s.mux.HandleFunc("GET /v1/spectra", s.handleSpectra)
	s.mux.HandleFunc("GET /v1/materials", s.handleMaterials)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
}

// writeJSON writes v as a compact JSON response. Compact output keeps an
// embedded result (json.RawMessage) byte-identical to the cached campaign
// body, which the cache's strong ETags and the conformance suite rely on.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the service's error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit is POST /v1/campaigns: cache-first, then enqueue.
//
//	200  cached result (X-Cache: hit), or 304 on a matching If-None-Match
//	202  job accepted (body JobInfo, Location /v1/jobs/{id})
//	400  malformed or invalid request
//	429  queue full (Retry-After set)
//	503  draining (Retry-After set)
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.unavailable(w)
		return
	}
	var raw CampaignRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	req, err := raw.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid request: %v", err)
		return
	}
	key := req.CacheKey()
	if body, etag, ok := s.cache.Get(key); ok {
		w.Header().Set("ETag", etag)
		w.Header().Set("X-Cache", "hit")
		if match := r.Header.Get("If-None-Match"); match != "" && match == etag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body)
		return
	}
	// Surrogate tier: after the exact-result cache (an exact answer is
	// strictly better than an approximate one), before the job queue.
	// The gate reads the raw request's tolerance — Normalize zeroes it on
	// the canonical form so it can't perturb the cache key. Served
	// answers are marked X-Cache: surrogate and are never cached: the
	// result cache holds only exact, byte-identical campaign results.
	if env := s.surrogate.answer(req, raw.Tolerance); env != nil {
		body, merr := json.Marshal(env)
		if merr != nil {
			writeError(w, http.StatusInternalServerError, "marshal surrogate result: %v", merr)
			return
		}
		w.Header().Set("X-Cache", "surrogate")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body)
		return
	}
	// A valid incoming traceparent links the job's trace into the caller's;
	// a malformed or absent one starts a fresh trace (W3C behavior).
	var parent *trace.Traceparent
	if tp, perr := trace.ParseTraceparent(r.Header.Get(trace.Header)); perr == nil {
		parent = &tp
	}
	j, coalesced, err := s.submit(req, key, parent)
	if errors.Is(err, errDraining) {
		s.unavailable(w)
		return
	}
	if j == nil {
		s.cfg.Registry.Counter("server.queue_full").Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg))
		writeError(w, http.StatusTooManyRequests, "queue full (depth %d); retry later", s.cfg.QueueDepth)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	w.Header().Set("X-Cache", "miss")
	if coalesced {
		w.Header().Set("X-Coalesced", "true")
	}
	if tp := j.root.Traceparent(); tp != "" {
		w.Header().Set(trace.Header, tp)
	}
	if !coalesced {
		telemetry.Log().Info("job accepted",
			"job_id", j.ID, "kind", j.Req.Kind, "trace_id", j.tr.ID().String())
	}
	writeJSON(w, http.StatusAccepted, j.Info())
}

// handleTrace is GET /v1/jobs/{id}/trace: the job's span tree with
// per-stage durations. Live jobs return a snapshot with in-flight spans
// marked; the tree is final once the job is terminal.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.TraceSnapshot())
}

func (s *Server) unavailable(w http.ResponseWriter) {
	w.Header().Set("Retry-After", retryAfterSeconds(s.cfg))
	writeError(w, http.StatusServiceUnavailable, "server is draining")
}

// retryAfterSeconds renders the 429/503 Retry-After hint with ±20% jitter
// so that a burst of rejected clients — or a coordinator fan-out hitting
// a saturated worker fleet — does not come back as a synchronized retry
// herd that saturates the queue all over again. The result is always at
// least 1 second (the header is integer seconds).
func retryAfterSeconds(cfg Config) string {
	base := cfg.RetryAfter.Seconds()
	secs := int(math.Round(base * (0.8 + 0.4*rand.Float64())))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// handleJob is GET /v1/jobs/{id}. Finished jobs carry the result body and
// its strong ETag; If-None-Match short-circuits to 304.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if etag := j.ETag(); etag != "" {
		w.Header().Set("ETag", etag)
		if match := r.Header.Get("If-None-Match"); match != "" && match == etag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	writeJSON(w, http.StatusOK, j.Info())
}

// handleCancel is DELETE /v1/jobs/{id}.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if j.Cancel() {
		s.clearInflight(j)
	}
	writeJSON(w, http.StatusOK, j.Info())
}

// DeviceInfo is one row of GET /v1/devices.
type DeviceInfo struct {
	Name       string   `json:"name"`
	Kind       string   `json:"kind"`
	Process    string   `json:"process"`
	DieAreaCm2 float64  `json:"die_area_cm2"`
	Workloads  []string `json:"workloads"`
}

func (s *Server) handleDevices(w http.ResponseWriter, _ *http.Request) {
	var rows []DeviceInfo
	for _, d := range device.All() {
		rows = append(rows, DeviceInfo{
			Name:       d.Name,
			Kind:       d.Kind.String(),
			Process:    d.Process,
			DieAreaCm2: d.DieAreaCm2,
			Workloads:  workload.ForDeviceKind(d.Kind.String()),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"devices": rows})
}

// SpectrumInfo is one row of GET /v1/spectra.
type SpectrumInfo struct {
	Name        string  `json:"name"`
	TotalFlux   float64 `json:"total_flux"`
	ThermalFlux float64 `json:"thermal_flux"`
	FastFlux    float64 `json:"fast_flux"`
}

func (s *Server) handleSpectra(w http.ResponseWriter, _ *http.Request) {
	var rows []SpectrumInfo
	for _, sp := range []spectrum.Spectrum{spectrum.ChipIR(), spectrum.ROTAX()} {
		rows = append(rows, SpectrumInfo{
			Name:        sp.Name(),
			TotalFlux:   float64(sp.TotalFlux()),
			ThermalFlux: float64(sp.FluxInBand(physics.BandThermal)),
			FastFlux:    float64(sp.FluxInBand(physics.BandFast)),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"spectra": rows})
}

func (s *Server) handleMaterials(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"materials": MaterialNames()})
}

// JobStats summarizes the job pipeline for GET /v1/stats.
type JobStats struct {
	Submitted  int64 `json:"submitted"`
	Completed  int64 `json:"completed"`
	Failed     int64 `json:"failed"`
	Canceled   int64 `json:"canceled"`
	Running    int   `json:"running"`
	QueueDepth int   `json:"queue_depth"`
}

// StatsResponse is the GET /v1/stats body: the job pipeline, the result
// cache, the process-wide compiled-plan cache shared by the worker
// pool, and the surrogate serving tier.
type StatsResponse struct {
	Jobs        JobStats       `json:"jobs"`
	ResultCache CacheStats     `json:"result_cache"`
	PlanCache   PlanStats      `json:"plan_cache"`
	Surrogate   SurrogateStats `json:"surrogate"`
}

// PlanStats mirrors plan.Cache stats plus the derived hit ratio, so the
// JSON surface is self-contained.
type PlanStats struct {
	plan.Stats
	HitRatio float64 `json:"hit_ratio"`
}

// handleStats is GET /v1/stats: operational counters for the job queue,
// the result cache, and the compiled-plan cache. Plan-cache numbers come
// from plan.Shared because beam compiles through it; they therefore cover
// every campaign this process ran, not only neutrond jobs.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	reg := s.cfg.Registry
	ps := plan.Shared.Stats()
	writeJSON(w, http.StatusOK, StatsResponse{
		Jobs: JobStats{
			Submitted:  reg.Counter("server.jobs_submitted").Value(),
			Completed:  reg.Counter("server.jobs_completed").Value(),
			Failed:     reg.Counter("server.jobs_failed").Value(),
			Canceled:   reg.Counter("server.jobs_canceled").Value(),
			Running:    int(s.jobsRunning.Value()),
			QueueDepth: int(s.queueDepth.Value()),
		},
		ResultCache: s.cache.Stats(),
		PlanCache:   PlanStats{Stats: ps, HitRatio: ps.HitRatio()},
		Surrogate:   s.surrogate.stats(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ReadyzInfo is the GET /readyz body: readiness plus the saturation
// signals an operator (or a cluster coordinator's health checker) needs
// without scraping /metrics — queue depth, in-flight jobs, drain state.
type ReadyzInfo struct {
	Status      string `json:"status"` // ready | draining
	QueueDepth  int    `json:"queue_depth"`
	JobsRunning int    `json:"jobs_running"`
	Draining    bool   `json:"draining"`
}

// handleReadyz reports 200 while accepting work and 503 once draining, so
// load balancers stop routing before shutdown completes. Both answers
// carry the ReadyzInfo saturation snapshot.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	info := ReadyzInfo{
		Status:      "ready",
		QueueDepth:  int(s.queueDepth.Value()),
		JobsRunning: int(s.jobsRunning.Value()),
	}
	if s.draining.Load() {
		info.Status = "draining"
		info.Draining = true
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg))
		writeJSON(w, http.StatusServiceUnavailable, info)
		return
	}
	writeJSON(w, http.StatusOK, info)
}
