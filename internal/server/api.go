// Package server implements neutrond's HTTP/JSON campaign service: a
// bounded job queue and worker pool running the calibrated simulators
// (beam, assessment, memory, transport) behind a deterministic
// content-addressed result cache.
//
// Because PR 2 made every campaign a pure function of (request, seed) —
// worker counts never affect results — two requests that normalize to the
// same canonical form are guaranteed to produce byte-identical responses.
// The service exploits that: requests are hashed after normalization
// (defaults applied, seed included, worker knobs excluded) and completed
// results are served straight from an LRU cache with strong ETags.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"neutronsim/internal/device"
	"neutronsim/internal/memsim"
	"neutronsim/internal/plan"
	"neutronsim/internal/spectrum"
	"neutronsim/internal/workload"
)

// Campaign kinds accepted by POST /v1/campaigns.
const (
	KindBeam      = "beam"
	KindAssess    = "assess"
	KindMemory    = "memory"
	KindTransport = "transport"
	KindXsection  = "xsection"
)

// CampaignRequest is the body of POST /v1/campaigns. Exactly one of the
// kind-specific sections must be set, matching Kind.
type CampaignRequest struct {
	// Kind selects the simulator: beam, assess, memory, transport or
	// xsection.
	Kind string `json:"kind"`
	// Seed makes the campaign reproducible; it is part of the cache key.
	Seed uint64 `json:"seed"`
	// Tolerance is a serving hint, not a campaign parameter: the relative
	// error the client will accept on the result. A positive tolerance
	// lets the server answer an xsection query from the surrogate tier
	// when the fitted model's certified error bound fits inside it; zero
	// (the default) always routes exact Monte Carlo. Like the worker
	// knobs, it never changes what the exact path computes, so Normalize
	// zeroes it out of the canonical form and it is excluded from the
	// cache key.
	Tolerance float64 `json:"tolerance,omitempty"`

	Beam      *BeamParams      `json:"beam,omitempty"`
	Assess    *AssessParams    `json:"assess,omitempty"`
	Memory    *MemoryParams    `json:"memory,omitempty"`
	Transport *TransportParams `json:"transport,omitempty"`
	Xsection  *XsectionParams  `json:"xsection,omitempty"`
}

// BeamParams describes one beam campaign (beam.RunContext).
type BeamParams struct {
	Device          string  `json:"device"`
	Workload        string  `json:"workload"`
	Spectrum        string  `json:"spectrum"` // ChipIR or ROTAX
	DurationSeconds float64 `json:"duration_seconds"`
	RunSeconds      float64 `json:"run_seconds,omitempty"`
	Derating        float64 `json:"derating,omitempty"`
	CalSamples      int     `json:"cal_samples,omitempty"`
	ShardGrain      int     `json:"shard_grain,omitempty"`
	// Bias opts the campaign into importance-sampled (weighted) transport:
	// per-band oversampling factors, with likelihood-weighted tallies in
	// the result's weighted section. Absent means exact; present — even
	// empty — routes the weighted code path, so the two spellings have
	// distinct cache keys on purpose (they return different result shapes).
	Bias *plan.Bias `json:"bias,omitempty"`
}

// AssessParams describes a full device assessment (core.AssessContext).
// Zero budget fields default to the quick budget (600 s fast, 3600 s
// thermal, boost 50) — the service is interactive, so the production
// budget must be requested explicitly.
type AssessParams struct {
	Device         string   `json:"device"`
	Workloads      []string `json:"workloads,omitempty"`
	FastSeconds    float64  `json:"fast_seconds,omitempty"`
	ThermalSeconds float64  `json:"thermal_seconds,omitempty"`
	Boost          float64  `json:"boost,omitempty"`
}

// MemoryParams describes a DRAM correct-loop campaign (memsim.RunContext).
type MemoryParams struct {
	Generation          string  `json:"generation"`     // DDR3 or DDR4
	Band                string  `json:"band,omitempty"` // thermal (default) or fast
	Flux                float64 `json:"flux,omitempty"` // n/cm²/s; defaults to the band's beamline flux
	DurationSeconds     float64 `json:"duration_seconds"`
	PassSeconds         float64 `json:"pass_seconds,omitempty"`
	ECC                 bool    `json:"ecc,omitempty"`
	PermanentAbortLimit int     `json:"permanent_abort_limit,omitempty"`
	ShardGrain          int     `json:"shard_grain,omitempty"`
}

// TransportParams describes a 1-D slab transport run
// (transport.SimulateContext).
type TransportParams struct {
	Slabs       []SlabParam `json:"slabs"`
	Neutrons    int         `json:"neutrons"`
	Source      string      `json:"source,omitempty"`  // spectrum name; default ChipIR
	MonoEV      float64     `json:"mono_ev,omitempty"` // monoenergetic source instead of Source
	ForwardBias float64     `json:"forward_bias,omitempty"`
	ShardGrain  int         `json:"shard_grain,omitempty"`
	// ImplicitCapture selects weighted (non-analog) transport: continuous
	// absorption with Russian roulette, weighted tallies in the result.
	ImplicitCapture bool `json:"implicit_capture,omitempty"`
}

// SlabParam is one homogeneous layer of a transport geometry.
type SlabParam struct {
	Material    string  `json:"material"`
	ThicknessCm float64 `json:"thickness_cm"`
}

// XsectionParams describes one design-space cross-section query: the
// upset cross section of the sweep design device (the K20 planar
// template with the two knobs applied) under a beamline spectrum —
// exactly the quantity cmd/sweep maps per grid point. This is the kind
// the surrogate tier can serve: with a positive request tolerance, an
// in-hull query is answered from the fitted model in O(µs); otherwise
// it runs the exact Monte Carlo estimator.
type XsectionParams struct {
	BoronPerCm2 float64 `json:"boron_per_cm2"`
	QcritFC     float64 `json:"qcrit_fc"`
	Spectrum    string  `json:"spectrum"` // ChipIR or ROTAX
	// Samples is the exact estimator's Monte Carlo budget (default 60000,
	// the cmd/sweep default). The surrogate path ignores it — the model's
	// training budget is recorded in its content hash instead.
	Samples int `json:"samples,omitempty"`
	// Bias opts the exact path into importance-sampled estimation, like
	// BeamParams.Bias. Biased queries are never surrogate-served: the
	// model is trained on the exact estimator, so the bias features fall
	// outside its hull.
	Bias *plan.Bias `json:"bias,omitempty"`
}

// SpectrumByName resolves a beamline spectrum case-insensitively.
func SpectrumByName(name string) (spectrum.Spectrum, error) {
	switch strings.ToLower(name) {
	case "chipir":
		return spectrum.ChipIR(), nil
	case "rotax":
		return spectrum.ROTAX(), nil
	}
	return nil, fmt.Errorf("unknown spectrum %q (want ChipIR or ROTAX)", name)
}

// DeviceByName resolves a catalog device by exact name.
func DeviceByName(name string) (*device.Device, error) {
	for _, d := range device.All() {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("unknown device %q", name)
}

// Engine defaults mirrored into normalized requests so that a request with
// a zero grain and one with the explicit default hash to the same key (the
// grain is part of the deterministic seed schedule; see DESIGN.md §9).
const (
	defaultBeamGrain      = 8192
	defaultMemoryGrain    = 8192
	defaultTransportGrain = 16384
)

// Normalize validates the request against the catalogs and returns a
// canonical deep copy with every default filled in. Two requests that
// normalize to equal values are the same campaign and share a cache entry.
func (r *CampaignRequest) Normalize() (*CampaignRequest, error) {
	if r == nil {
		return nil, fmt.Errorf("empty request")
	}
	n := &CampaignRequest{Kind: strings.ToLower(strings.TrimSpace(r.Kind)), Seed: r.Seed}
	sections := 0
	for _, set := range []bool{r.Beam != nil, r.Assess != nil, r.Memory != nil, r.Transport != nil, r.Xsection != nil} {
		if set {
			sections++
		}
	}
	if sections > 1 {
		return nil, fmt.Errorf("request must set exactly one campaign section, got %d", sections)
	}
	// Tolerance is validated here but deliberately NOT copied onto the
	// canonical form: it is a serving hint, and the cache key must be a
	// pure function of the campaign the exact path would run.
	if math.IsNaN(r.Tolerance) || math.IsInf(r.Tolerance, 0) || r.Tolerance < 0 || r.Tolerance >= 1 {
		return nil, fmt.Errorf("tolerance must be a finite relative error in [0,1)")
	}
	switch n.Kind {
	case KindBeam:
		if r.Beam == nil {
			return nil, fmt.Errorf("kind %q requires a beam section", n.Kind)
		}
		return n, n.normalizeBeam(r.Beam)
	case KindAssess:
		if r.Assess == nil {
			return nil, fmt.Errorf("kind %q requires an assess section", n.Kind)
		}
		return n, n.normalizeAssess(r.Assess)
	case KindMemory:
		if r.Memory == nil {
			return nil, fmt.Errorf("kind %q requires a memory section", n.Kind)
		}
		return n, n.normalizeMemory(r.Memory)
	case KindTransport:
		if r.Transport == nil {
			return nil, fmt.Errorf("kind %q requires a transport section", n.Kind)
		}
		return n, n.normalizeTransport(r.Transport)
	case KindXsection:
		if r.Xsection == nil {
			return nil, fmt.Errorf("kind %q requires an xsection section", n.Kind)
		}
		return n, n.normalizeXsection(r.Xsection)
	}
	return nil, fmt.Errorf("unknown kind %q (want beam, assess, memory, transport or xsection)", r.Kind)
}

func (n *CampaignRequest) normalizeBeam(p *BeamParams) error {
	b := *p
	if _, err := DeviceByName(b.Device); err != nil {
		return err
	}
	if _, err := workload.New(b.Workload); err != nil {
		return fmt.Errorf("unknown workload %q", b.Workload)
	}
	sp, err := SpectrumByName(b.Spectrum)
	if err != nil {
		return err
	}
	b.Spectrum = sp.Name()
	if b.DurationSeconds <= 0 {
		return fmt.Errorf("beam duration_seconds must be positive")
	}
	if b.RunSeconds < 0 {
		return fmt.Errorf("beam run_seconds cannot be negative")
	}
	if b.Derating == 0 {
		b.Derating = 1
	}
	if b.Derating <= 0 || b.Derating > 1 {
		return fmt.Errorf("beam derating must be in (0,1]")
	}
	if b.CalSamples < 0 {
		return fmt.Errorf("beam cal_samples cannot be negative")
	}
	if b.CalSamples == 0 {
		b.CalSamples = 20000
	}
	if b.ShardGrain < 0 {
		return fmt.Errorf("beam shard_grain cannot be negative")
	}
	if b.ShardGrain == 0 {
		b.ShardGrain = defaultBeamGrain
	}
	if b.Bias != nil {
		if err := b.Bias.Validate(); err != nil {
			return err
		}
		bias := *b.Bias
		b.Bias = &bias
	}
	n.Beam = &b
	return nil
}

func (n *CampaignRequest) normalizeAssess(p *AssessParams) error {
	a := *p
	d, err := DeviceByName(a.Device)
	if err != nil {
		return err
	}
	if a.Workloads == nil {
		a.Workloads = workload.ForDeviceKind(d.Kind.String())
	}
	if len(a.Workloads) == 0 {
		return fmt.Errorf("no workloads for device %s", d.Name)
	}
	cleaned := make([]string, 0, len(a.Workloads))
	for _, w := range a.Workloads {
		w = strings.TrimSpace(w)
		if _, err := workload.New(w); err != nil {
			return fmt.Errorf("unknown workload %q", w)
		}
		cleaned = append(cleaned, w)
	}
	a.Workloads = cleaned
	if a.FastSeconds < 0 || a.ThermalSeconds < 0 || a.Boost < 0 {
		return fmt.Errorf("assess budget fields cannot be negative")
	}
	if a.FastSeconds == 0 {
		a.FastSeconds = 600
	}
	if a.ThermalSeconds == 0 {
		a.ThermalSeconds = 3600
	}
	if a.Boost == 0 {
		a.Boost = 50
	}
	n.Assess = &a
	return nil
}

func (n *CampaignRequest) normalizeMemory(p *MemoryParams) error {
	m := *p
	switch strings.ToUpper(m.Generation) {
	case "DDR3":
		m.Generation = "DDR3"
	case "DDR4":
		m.Generation = "DDR4"
	default:
		return fmt.Errorf("unknown memory generation %q (want DDR3 or DDR4)", m.Generation)
	}
	switch strings.ToLower(m.Band) {
	case "", "thermal":
		m.Band = memsim.ThermalBeam.String()
		if m.Flux == 0 {
			m.Flux = float64(spectrum.ROTAXTotalFlux)
		}
	case "fast":
		m.Band = memsim.FastBeam.String()
		if m.Flux == 0 {
			m.Flux = float64(spectrum.ChipIRFastFluxAbove10MeV)
		}
	default:
		return fmt.Errorf("unknown memory band %q (want thermal or fast)", m.Band)
	}
	if m.Flux <= 0 {
		return fmt.Errorf("memory flux must be positive")
	}
	if m.DurationSeconds <= 0 {
		return fmt.Errorf("memory duration_seconds must be positive")
	}
	if m.PassSeconds < 0 || m.PermanentAbortLimit < 0 {
		return fmt.Errorf("memory pass_seconds and permanent_abort_limit cannot be negative")
	}
	if m.PassSeconds == 0 {
		m.PassSeconds = 1
	}
	if m.ShardGrain < 0 {
		return fmt.Errorf("memory shard_grain cannot be negative")
	}
	if m.ShardGrain == 0 {
		m.ShardGrain = defaultMemoryGrain
	}
	n.Memory = &m
	return nil
}

func (n *CampaignRequest) normalizeTransport(p *TransportParams) error {
	t := *p
	if len(t.Slabs) == 0 {
		return fmt.Errorf("transport needs at least one slab")
	}
	t.Slabs = append([]SlabParam(nil), t.Slabs...)
	for i, sl := range t.Slabs {
		m, err := MaterialByName(sl.Material)
		if err != nil {
			return err
		}
		if sl.ThicknessCm <= 0 {
			return fmt.Errorf("slab %d thickness_cm must be positive", i)
		}
		t.Slabs[i].Material = m.Name()
	}
	if t.Neutrons <= 0 {
		return fmt.Errorf("transport neutrons must be positive")
	}
	if t.MonoEV < 0 {
		return fmt.Errorf("transport mono_ev cannot be negative")
	}
	if t.MonoEV == 0 {
		sp, err := SpectrumByName(strings.TrimSpace(firstNonEmpty(t.Source, "ChipIR")))
		if err != nil {
			return err
		}
		t.Source = sp.Name()
	} else if t.Source != "" {
		return fmt.Errorf("transport source and mono_ev are mutually exclusive")
	}
	if t.ForwardBias < 0 || t.ForwardBias >= 1 {
		return fmt.Errorf("transport forward_bias must be in [0,1)")
	}
	if t.ShardGrain < 0 {
		return fmt.Errorf("transport shard_grain cannot be negative")
	}
	if t.ShardGrain == 0 {
		t.ShardGrain = defaultTransportGrain
	}
	n.Transport = &t
	return nil
}

func (n *CampaignRequest) normalizeXsection(p *XsectionParams) error {
	x := *p
	// NaN slips through sign checks, so demand finiteness explicitly.
	if math.IsNaN(x.BoronPerCm2) || math.IsInf(x.BoronPerCm2, 0) || x.BoronPerCm2 < 0 {
		return fmt.Errorf("xsection boron_per_cm2 must be finite and non-negative")
	}
	if math.IsNaN(x.QcritFC) || math.IsInf(x.QcritFC, 0) || x.QcritFC <= 0 {
		return fmt.Errorf("xsection qcrit_fc must be finite and positive")
	}
	sp, err := SpectrumByName(x.Spectrum)
	if err != nil {
		return err
	}
	x.Spectrum = sp.Name()
	if x.Samples < 0 {
		return fmt.Errorf("xsection samples cannot be negative")
	}
	if x.Samples == 0 {
		x.Samples = defaultXsectionSamples
	}
	if x.Bias != nil {
		if err := x.Bias.Validate(); err != nil {
			return err
		}
		bias := *x.Bias
		x.Bias = &bias
	}
	n.Xsection = &x
	return nil
}

// defaultXsectionSamples mirrors the cmd/sweep default Monte Carlo
// budget per cross section.
const defaultXsectionSamples = 60000

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

// CacheKey returns the canonical SHA-256 of the normalized request — the
// service's content address. It must only be called on the value returned
// by Normalize; struct-order JSON marshaling makes it deterministic.
func (r *CampaignRequest) CacheKey() string {
	data, err := json.Marshal(r)
	if err != nil {
		// A normalized request is plain data and always marshals.
		panic(fmt.Sprintf("server: marshal normalized request: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
