package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"neutronsim/internal/telemetry"
)

// testRequest returns a valid small beam request; vary seed for distinct
// cache keys.
func testRequest(seed uint64) *CampaignRequest {
	return &CampaignRequest{Kind: KindBeam, Seed: seed, Beam: &BeamParams{
		Device: "K20", Workload: "MxM", Spectrum: "ChipIR", DurationSeconds: 1,
	}}
}

// blockingExec returns an execute override that signals each start on
// started and blocks until release is closed (or the job ctx ends, which
// it reports as the ctx error).
func blockingExec(started chan<- string, release <-chan struct{}) func(ctx context.Context, req *CampaignRequest, shards int) (*ResultEnvelope, error) {
	return func(ctx context.Context, req *CampaignRequest, _ int) (*ResultEnvelope, error) {
		if started != nil {
			started <- req.CacheKey()
		}
		select {
		case <-release:
			return &ResultEnvelope{Kind: req.Kind}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func TestQueueBackpressure(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := New(Config{Workers: 1, QueueDepth: 1, Registry: reg})
	defer srv.Drain()
	started := make(chan string, 4)
	release := make(chan struct{})
	srv.execute = blockingExec(started, release)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// First job occupies the worker, second fills the queue.
	resp, body := postCampaign(t, ts, testRequest(1), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: status %d: %s", resp.StatusCode, body)
	}
	<-started
	resp, body = postCampaign(t, ts, testRequest(2), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: status %d: %s", resp.StatusCode, body)
	}
	// Third submission finds the queue full.
	resp, body = postCampaign(t, ts, testRequest(3), nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3: status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if got := reg.Counter("server.queue_full").Value(); got != 1 {
		t.Errorf("queue_full = %d, want 1", got)
	}
	// Coalescing: resubmitting job 2's request joins the queued job
	// instead of consuming capacity.
	resp, body = postCampaign(t, ts, testRequest(2), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("coalesce: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Coalesced") != "true" {
		t.Error("identical in-flight request was not coalesced")
	}
	close(release)
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	awaitJob(t, ts, info.ID, 10*time.Second)
}

func TestGracefulDrainFinishesInFlight(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := New(Config{Workers: 1, DrainTimeout: 30 * time.Second, Registry: reg})
	started := make(chan string, 1)
	release := make(chan struct{})
	srv.execute = blockingExec(started, release)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postCampaign(t, ts, testRequest(1), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	<-started

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain() }()

	// While draining: readiness and intake answer 503.
	waitFor(t, time.Second, func() bool {
		resp, err := ts.Client().Get(ts.URL + "/readyz")
		if err != nil {
			return false
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	})
	resp, body = postCampaign(t, ts, testRequest(99), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503: %s", resp.StatusCode, body)
	}

	// The in-flight job is allowed to finish, and the drain completes
	// without hitting its deadline.
	close(release)
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not complete")
	}
	got := awaitJob(t, ts, info.ID, time.Second)
	if got.State != StateDone {
		t.Errorf("in-flight job ended %s, want done", got.State)
	}
}

func TestDrainDeadlineCancelsStuckJobs(t *testing.T) {
	srv := New(Config{Workers: 1, DrainTimeout: 100 * time.Millisecond, Registry: telemetry.NewRegistry()})
	started := make(chan string, 1)
	srv.execute = blockingExec(started, nil) // never released: only ctx can end it
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postCampaign(t, ts, testRequest(1), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	<-started
	err := srv.Drain()
	if err == nil || !strings.Contains(err.Error(), "drain deadline") {
		t.Fatalf("drain error = %v, want drain deadline exceeded", err)
	}
	got := awaitJob(t, ts, info.ID, time.Second)
	if got.State != StateCanceled {
		t.Errorf("stuck job ended %s, want canceled", got.State)
	}
}

func TestCancelRunningAndQueuedJobs(t *testing.T) {
	reg := telemetry.NewRegistry()
	// The resubmitted job at the end blocks until drain cancels it, so
	// keep the deferred drain's deadline short.
	srv := New(Config{Workers: 1, DrainTimeout: 200 * time.Millisecond, Registry: reg})
	defer srv.Drain()
	started := make(chan string, 2)
	srv.execute = blockingExec(started, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	submit := func(seed uint64) JobInfo {
		resp, body := postCampaign(t, ts, testRequest(seed), nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", seed, resp.StatusCode, body)
		}
		var info JobInfo
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		return info
	}
	running := submit(1)
	<-started
	queued := submit(2)

	del := func(id string) JobInfo {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("DELETE %s: status %d: %s", id, resp.StatusCode, body)
		}
		var info JobInfo
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		return info
	}
	// Queued job cancels synchronously.
	if got := del(queued.ID); got.State != StateCanceled {
		t.Errorf("queued job after DELETE: %s, want canceled", got.State)
	}
	// Running job unwinds via its context.
	del(running.ID)
	got := awaitJob(t, ts, running.ID, 5*time.Second)
	if got.State != StateCanceled {
		t.Errorf("running job after DELETE: %s, want canceled", got.State)
	}
	if n := reg.Counter("server.jobs_canceled").Value(); n != 1 {
		// Only the running job reaches runJob's cancel accounting; the
		// queued one was settled before a worker picked it up.
		t.Errorf("jobs_canceled = %d, want 1", n)
	}
	// After cancellation the key is free for resubmission (no coalescing
	// with a dead job).
	resp, body := postCampaign(t, ts, testRequest(2), nil)
	if resp.StatusCode != http.StatusAccepted || resp.Header.Get("X-Coalesced") == "true" {
		t.Errorf("resubmit after cancel: status %d coalesced=%q: %s",
			resp.StatusCode, resp.Header.Get("X-Coalesced"), body)
	}
}

func TestSSEStreamsProgressAndTerminalState(t *testing.T) {
	srv := New(Config{Workers: 1, Registry: telemetry.NewRegistry()})
	defer srv.Drain()
	connected := make(chan struct{})
	srv.execute = func(ctx context.Context, req *CampaignRequest, _ int) (*ResultEnvelope, error) {
		<-connected
		for i := 1; i <= 3; i++ {
			telemetry.ReportProgressContext(ctx, telemetry.ProgressUpdate{
				Component: "beam", Done: float64(i), Total: 3,
			})
		}
		return &ResultEnvelope{Kind: req.Kind}, nil
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postCampaign(t, ts, testRequest(1), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	stream, err := ts.Client().Get(ts.URL + "/v1/jobs/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	close(connected)
	events, err := io.ReadAll(stream.Body) // stream ends at the terminal event
	if err != nil {
		t.Fatal(err)
	}
	text := string(events)
	if !strings.Contains(text, "event: progress") {
		t.Errorf("stream missing progress events:\n%s", text)
	}
	if !strings.Contains(text, "event: state") || !strings.Contains(text, `"state":"done"`) {
		t.Errorf("stream missing terminal state event:\n%s", text)
	}
	if strings.Contains(text, `"result"`) {
		t.Errorf("terminal event should not carry the result body:\n%s", text)
	}
}

func TestJobETagConditionalGet(t *testing.T) {
	srv := New(Config{Workers: 1, Registry: telemetry.NewRegistry()})
	defer srv.Drain()
	release := make(chan struct{})
	close(release)
	srv.execute = blockingExec(nil, release)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postCampaign(t, ts, testRequest(1), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	awaitJob(t, ts, info.ID, 5*time.Second)

	// Conditional POST of the identical request.
	resp1, body1 := postCampaign(t, ts, testRequest(1), nil)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("repeat POST: status %d: %s", resp1.StatusCode, body1)
	}
	etag := resp1.Header.Get("ETag")
	if etag == "" {
		t.Fatal("cache hit without ETag")
	}
	resp2, _ := postCampaign(t, ts, testRequest(1), map[string]string{"If-None-Match": etag})
	if resp2.StatusCode != http.StatusNotModified {
		t.Errorf("If-None-Match POST: status %d, want 304", resp2.StatusCode)
	}
	// Conditional GET of the job record.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+info.ID, nil)
	req.Header.Set("If-None-Match", etag)
	resp3, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotModified {
		t.Errorf("conditional job GET: status %d, want 304", resp3.StatusCode)
	}
}

func TestCacheLRUBounds(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewCache(2, 1<<20, reg)
	c.Put("a", []byte("aaaa"))
	c.Put("b", []byte("bbbb"))
	if _, _, ok := c.Get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("entry a missing")
	}
	c.Put("c", []byte("cccc"))
	if _, _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted as LRU")
	}
	if _, _, ok := c.Get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if _, _, ok := c.Get("c"); !ok {
		t.Error("c should be cached")
	}
	if hits, misses := reg.Counter("server.cache_hits").Value(), reg.Counter("server.cache_misses").Value(); hits != 3 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 3/1", hits, misses)
	}

	// Byte bound: entries are evicted until the total fits, and an entry
	// larger than the bound is not cached at all.
	cb := NewCache(100, 10, telemetry.NewRegistry())
	cb.Put("x", []byte("12345678")) // 8 bytes
	cb.Put("y", []byte("1234"))     // 12 total → x evicted
	if _, _, ok := cb.Get("x"); ok {
		t.Error("x should have been evicted by the byte bound")
	}
	if cb.Bytes() != 4 || cb.Len() != 1 {
		t.Errorf("cache holds %d entries / %d bytes, want 1/4", cb.Len(), cb.Bytes())
	}
	cb.Put("huge", bytes.Repeat([]byte("z"), 11))
	if _, _, ok := cb.Get("huge"); ok {
		t.Error("oversized entry should not be cached")
	}

	// Deterministic results: re-putting a key keeps one entry and a
	// stable ETag.
	etag1 := cb.Put("y", []byte("1234"))
	etag2 := cb.Put("y", []byte("1234"))
	if etag1 != etag2 || cb.Len() != 1 {
		t.Errorf("re-put changed the entry: %q vs %q, len %d", etag1, etag2, cb.Len())
	}
}

func TestJobRecordEviction(t *testing.T) {
	srv := New(Config{Workers: 1, MaxJobs: 2, Registry: telemetry.NewRegistry()})
	defer srv.Drain()
	release := make(chan struct{})
	close(release)
	srv.execute = blockingExec(nil, release)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var first string
	for seed := uint64(1); seed <= 3; seed++ {
		resp, body := postCampaign(t, ts, testRequest(seed), nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", seed, resp.StatusCode, body)
		}
		var info JobInfo
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		if seed == 1 {
			first = info.ID
		}
		awaitJob(t, ts, info.ID, 5*time.Second)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + first)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("oldest job record: status %d, want 404 after eviction", resp.StatusCode)
	}
}

// waitFor polls cond until it holds or the timeout elapses.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStatsEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := New(Config{Workers: 1, Registry: reg})
	defer srv.Drain()
	srv.execute = func(_ context.Context, req *CampaignRequest, _ int) (*ResultEnvelope, error) {
		return &ResultEnvelope{Kind: req.Kind}, nil
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postCampaign(t, ts, testRequest(1), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	awaitJob(t, ts, info.ID, 10*time.Second)
	// Replay the identical request so the result cache answers it.
	resp, body = postCampaign(t, ts, testRequest(1), nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("replay: status %d, X-Cache %q: %s", resp.StatusCode, resp.Header.Get("X-Cache"), body)
	}

	hresp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/stats: status %d", hresp.StatusCode)
	}
	var st StatsResponse
	if err := json.NewDecoder(hresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Jobs.Submitted != 1 || st.Jobs.Completed != 1 {
		t.Errorf("jobs = %+v, want 1 submitted / 1 completed", st.Jobs)
	}
	if st.ResultCache.Hits != 1 || st.ResultCache.Entries != 1 {
		t.Errorf("result cache = %+v, want 1 hit / 1 entry", st.ResultCache)
	}
	if st.ResultCache.HitRatio <= 0 || st.ResultCache.HitRatio > 1 {
		t.Errorf("result cache hit ratio = %v, want in (0,1]", st.ResultCache.HitRatio)
	}
	// The plan cache is the process-wide plan.Shared, so other tests may
	// have populated it; only its invariants are checkable here.
	if st.PlanCache.Capacity <= 0 {
		t.Errorf("plan cache capacity = %d, want > 0", st.PlanCache.Capacity)
	}
	if st.PlanCache.Entries < 0 || st.PlanCache.Entries > st.PlanCache.Capacity {
		t.Errorf("plan cache entries = %d, want within [0, %d]", st.PlanCache.Entries, st.PlanCache.Capacity)
	}
}
