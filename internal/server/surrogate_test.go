package server

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"neutronsim/internal/plan"
	"neutronsim/internal/rng"
	"neutronsim/internal/surrogate"
	"neutronsim/internal/telemetry"
)

var (
	srvModelOnce sync.Once
	srvModel     *surrogate.Model
	srvModelErr  error
)

// testModel trains one small real model for the server-level tests.
func testModel(t *testing.T) *surrogate.Model {
	t.Helper()
	srvModelOnce.Do(func() {
		ds, err := surrogate.EvaluateGrid(surrogate.GridConfig{
			BoronMin: 1e12, BoronMax: 1e15, BoronSteps: 8,
			QcritMin: 1, QcritMax: 8, QcritSteps: 6,
			Samples: 20000,
			Seed:    7,
		})
		if err != nil {
			srvModelErr = err
			return
		}
		srvModel, srvModelErr = surrogate.Train(ds, surrogate.TrainConfig{})
	})
	if srvModelErr != nil {
		t.Fatalf("testModel: %v", srvModelErr)
	}
	return srvModel
}

func newSurrogateServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Config{Workers: 2, Registry: telemetry.NewRegistry(), Surrogate: testModel(t)})
	t.Cleanup(func() { srv.Drain() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func xsectionRequest(boron, qcrit float64, spec string, samples int, tol float64) *CampaignRequest {
	return &CampaignRequest{
		Kind:      KindXsection,
		Seed:      42,
		Tolerance: tol,
		Xsection:  &XsectionParams{BoronPerCm2: boron, QcritFC: qcrit, Spectrum: spec, Samples: samples},
	}
}

func decodeEnvelope(t *testing.T, body []byte) *ResultEnvelope {
	t.Helper()
	var env ResultEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("decode envelope: %v: %s", err, body)
	}
	return &env
}

// directXsection runs the library path an xsection campaign must match
// bit-for-bit.
func directXsection(t *testing.T, req *CampaignRequest) float64 {
	t.Helper()
	p := req.Xsection
	sp, err := SpectrumByName(p.Spectrum)
	if err != nil {
		t.Fatal(err)
	}
	d := surrogate.DesignDevice(p.BoronPerCm2, p.QcritFC)
	s := rng.New(req.Seed)
	if p.Bias == nil {
		sigma, err := d.UpsetCrossSection(sp.Sample, p.Samples, s)
		if err != nil {
			t.Fatal(err)
		}
		return float64(sigma)
	}
	cp, err := plan.CompileBiased(d, sp, p.Samples, s, *p.Bias)
	if err != nil {
		t.Fatal(err)
	}
	sigma, _, err := cp.UpsetCrossSectionWeighted(d, p.Samples, s)
	if err != nil {
		t.Fatal(err)
	}
	return float64(sigma)
}

// runExactJob submits a request expected to miss both the cache and the
// surrogate tier, awaits the job, and returns the result envelope.
func runExactJob(t *testing.T, ts *httptest.Server, req *CampaignRequest) *ResultEnvelope {
	t.Helper()
	resp, body := postCampaign(t, ts, req, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("expected 202 exact-path submit, got %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("exact-path submit X-Cache = %q, want miss", got)
	}
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	info = awaitJob(t, ts, info.ID, time.Minute)
	if info.State != StateDone {
		t.Fatalf("job state %s: %s", info.State, info.Error)
	}
	return decodeEnvelope(t, info.Result)
}

// TestXsectionExactBitIdentical is the fallback-equivalence gate: an
// xsection request that bypasses the surrogate (tolerance zero) must
// return the exact library result bit-for-bit, with the surrogate tier
// loaded and irrelevant.
func TestXsectionExactBitIdentical(t *testing.T) {
	_, ts := newSurrogateServer(t)
	req := xsectionRequest(1e14, 3, "ROTAX", 3000, 0)
	env := runExactJob(t, ts, req)
	if env.Kind != KindXsection || env.Xsection == nil {
		t.Fatalf("bad envelope: %+v", env)
	}
	if env.Xsection.Approx {
		t.Fatal("zero-tolerance request served approximately")
	}
	want := directXsection(t, req)
	if math.Float64bits(env.Xsection.SigmaCm2) != math.Float64bits(want) {
		t.Fatalf("exact path sigma %v != direct library %v (bit mismatch)", env.Xsection.SigmaCm2, want)
	}
	if env.Xsection.Samples != 3000 || env.Xsection.ModelHash != "" {
		t.Fatalf("exact result carries surrogate fields: %+v", env.Xsection)
	}
}

// TestXsectionBiasedExactBitIdentical covers the weighted estimator
// path: a biased query is never surrogate-served (the bias features
// fall outside the hull) and matches the direct weighted library run.
func TestXsectionBiasedExactBitIdentical(t *testing.T) {
	_, ts := newSurrogateServer(t)
	req := xsectionRequest(1e14, 3, "ROTAX", 3000, 0.5)
	req.Xsection.Bias = &plan.Bias{Thermal: 4}
	env := runExactJob(t, ts, req)
	if env.Xsection == nil || env.Xsection.Approx {
		t.Fatalf("biased request not answered exactly: %+v", env.Xsection)
	}
	want := directXsection(t, req)
	if math.Float64bits(env.Xsection.SigmaCm2) != math.Float64bits(want) {
		t.Fatalf("biased path sigma %v != direct library %v (bit mismatch)", env.Xsection.SigmaCm2, want)
	}
}

func TestXsectionSurrogateServe(t *testing.T) {
	m := testModel(t)
	_, ts := newSurrogateServer(t)
	req := xsectionRequest(1e14, 3, "ROTAX", 3000, 0.5)

	for round := 0; round < 2; round++ {
		resp, body := postCampaign(t, ts, req, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: status %d: %s", round, resp.StatusCode, body)
		}
		// Both rounds must be surrogate-served: approximate answers never
		// populate the exact result cache.
		if got := resp.Header.Get("X-Cache"); got != "surrogate" {
			t.Fatalf("round %d: X-Cache = %q, want surrogate", round, got)
		}
		env := decodeEnvelope(t, body)
		x := env.Xsection
		if env.Kind != KindXsection || x == nil || !x.Approx {
			t.Fatalf("round %d: not an approximate xsection result: %s", round, body)
		}
		if x.ModelHash != m.Hash {
			t.Errorf("model hash %q, want %q", x.ModelHash, m.Hash)
		}
		if x.RelErrBound != m.CertifiedRelErr {
			t.Errorf("rel err bound %v, want %v", x.RelErrBound, m.CertifiedRelErr)
		}
		if c := x.Confidence; !(c > 0 && c < 1) {
			t.Errorf("confidence %v outside (0,1)", c)
		}
		if !(x.SigmaCm2 > 0) || math.IsInf(x.SigmaCm2, 0) {
			t.Errorf("surrogate sigma %v is not finite positive", x.SigmaCm2)
		}
		// Within 2× the certified bound of a well-resolved exact answer —
		// the factor of two absorbs the reference run's own Monte Carlo
		// noise, which the certified bound does not cover.
		ref := xsectionRequest(1e14, 3, "ROTAX", 20000, 0)
		want := directXsection(t, ref)
		if rel := math.Abs(x.SigmaCm2/want - 1); rel > 2*m.CertifiedRelErr {
			t.Errorf("surrogate sigma %v vs exact %v: rel err %v exceeds 2x certified %v",
				x.SigmaCm2, want, rel, m.CertifiedRelErr)
		}
	}
}

// TestXsectionSurrogateFallbacks drives each gate of the tier and
// checks both the serving behavior (202, exact path) and the stats
// counters that account for it.
func TestXsectionSurrogateFallbacks(t *testing.T) {
	m := testModel(t)
	_, ts := newSurrogateServer(t)

	fetchStats := func() SurrogateStats {
		resp, err := ts.Client().Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st StatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st.Surrogate
	}

	expect202 := func(req *CampaignRequest, label string) {
		t.Helper()
		resp, body := postCampaign(t, ts, req, nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("%s: status %d, want 202 exact fallback: %s", label, resp.StatusCode, body)
		}
		var info JobInfo
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		awaitJob(t, ts, info.ID, time.Minute)
	}

	// Zero boron: log10 feature is -Inf → rejected.
	expect202(xsectionRequest(0, 3, "ROTAX", 1000, 0.5), "zero boron")
	// Finite but far outside the trained hull → fallback_hull.
	expect202(xsectionRequest(1e20, 3, "ROTAX", 1000, 0.5), "out-of-hull boron")
	// Biased estimator → bias features outside hull → fallback_hull.
	biased := xsectionRequest(1e14, 3, "ROTAX", 1000, 0.5)
	biased.Xsection.Bias = &plan.Bias{Fast: 2}
	expect202(biased, "biased query")
	// Tolerance tighter than the certified bound → fallback_tolerance.
	tight := xsectionRequest(1e14, 3, "ROTAX", 1000, m.CertifiedRelErr/2)
	expect202(tight, "tight tolerance")

	st := fetchStats()
	if !st.Loaded || st.ModelHash != m.Hash {
		t.Fatalf("stats surrogate section = %+v, want loaded with hash %s", st, m.Hash)
	}
	if st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}
	if st.FallbackHull != 2 {
		t.Errorf("fallback_hull = %d, want 2", st.FallbackHull)
	}
	if st.FallbackTolerance != 1 {
		t.Errorf("fallback_tolerance = %d, want 1", st.FallbackTolerance)
	}
	if st.Served != 0 {
		t.Errorf("served = %d, want 0", st.Served)
	}

	// Now one servable query, and the stats reflect it. A different
	// design point than the tight-tolerance request above, which ran
	// exactly and populated the result cache — the cache is consulted
	// before the surrogate, and an exact cached answer wins.
	resp, body := postCampaign(t, ts, xsectionRequest(1e14, 2.5, "ROTAX", 1000, 0.5), nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "surrogate" {
		t.Fatalf("servable query: status %d X-Cache %q: %s", resp.StatusCode, resp.Header.Get("X-Cache"), body)
	}
	if st := fetchStats(); st.Served != 1 {
		t.Errorf("served = %d after a surrogate answer, want 1", st.Served)
	}
}

// TestStatsSurrogateSchema pins the GET /v1/stats surrogate section:
// loaded with model identity when a model is configured, and an
// explicit loaded:false shell otherwise.
func TestStatsSurrogateSchema(t *testing.T) {
	m := testModel(t)
	_, ts := newSurrogateServer(t)
	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	sec, ok := raw["surrogate"]
	if !ok {
		t.Fatal("stats body has no surrogate section")
	}
	var st SurrogateStats
	if err := json.Unmarshal(sec, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Loaded || st.ModelHash != m.Hash || st.CertifiedRelErr != m.CertifiedRelErr {
		t.Fatalf("surrogate stats = %+v, want model identity for %s", st, m.Hash)
	}
	if len(st.FeatureNames) != surrogate.NumFeatures ||
		len(st.HullMin) != surrogate.NumFeatures || len(st.HullMax) != surrogate.NumFeatures {
		t.Fatalf("surrogate stats hull/feature arity: %+v", st)
	}

	// No model configured: the section is present but unloaded.
	bare := New(Config{Workers: 1, Registry: telemetry.NewRegistry()})
	defer bare.Drain()
	bts := httptest.NewServer(bare.Handler())
	defer bts.Close()
	bresp, err := bts.Client().Get(bts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	var bst StatsResponse
	if err := json.NewDecoder(bresp.Body).Decode(&bst); err != nil {
		t.Fatal(err)
	}
	if bst.Surrogate.Loaded || bst.Surrogate.ModelHash != "" {
		t.Fatalf("no-model stats = %+v, want unloaded", bst.Surrogate)
	}
}

func TestXsectionValidation(t *testing.T) {
	_, ts := newSurrogateServer(t)
	for _, tc := range []struct {
		name string
		req  *CampaignRequest
	}{
		{"negative boron", xsectionRequest(-1, 3, "ROTAX", 1000, 0)},
		{"zero qcrit", xsectionRequest(1e14, 0, "ROTAX", 1000, 0)},
		{"bad spectrum", xsectionRequest(1e14, 3, "LANSCE", 1000, 0)},
		{"negative samples", xsectionRequest(1e14, 3, "ROTAX", -5, 0)},
		{"negative tolerance", xsectionRequest(1e14, 3, "ROTAX", 1000, -0.1)},
		{"tolerance >= 1", xsectionRequest(1e14, 3, "ROTAX", 1000, 1)},
		{"missing section", &CampaignRequest{Kind: KindXsection, Seed: 1}},
	} {
		resp, body := postCampaign(t, ts, tc.req, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, resp.StatusCode, body)
		}
	}
}

// TestXsectionNormalizeDefaults pins the canonical form: samples
// defaulted, tolerance validated but excluded from the cache key.
func TestXsectionNormalizeDefaults(t *testing.T) {
	base := xsectionRequest(1e14, 3, "rotax", 0, 0)
	n, err := base.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Xsection.Samples != defaultXsectionSamples {
		t.Errorf("samples defaulted to %d, want %d", n.Xsection.Samples, defaultXsectionSamples)
	}
	if n.Xsection.Spectrum != "ROTAX" {
		t.Errorf("spectrum normalized to %q", n.Xsection.Spectrum)
	}
	withTol := xsectionRequest(1e14, 3, "ROTAX", 0, 0.25)
	nt, err := withTol.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if nt.Tolerance != 0 {
		t.Errorf("normalized tolerance %v, want 0 (serving hint, not campaign state)", nt.Tolerance)
	}
	if n.CacheKey() != nt.CacheKey() {
		t.Error("tolerance leaked into the cache key")
	}
}
