package vr

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"neutronsim/internal/beam"
	"neutronsim/internal/plan"
)

// minReduction is the CI floor on the headline number: the biased E3
// campaign must match the exact campaign's 95% CI width on the thermal-DUE
// channel from at least 20× fewer neutrons (ISSUE acceptance criterion).
const minReduction = 20

func TestMain(m *testing.M) {
	code := m.Run()
	bench := flag.Lookup("test.bench")
	if code == 0 && bench != nil && bench.Value.String() != "" {
		if err := writeVRSnapshot("../../BENCH_vr.json"); err != nil {
			fmt.Fprintln(os.Stderr, "vr bench snapshot:", err)
			code = 1
		}
	}
	os.Exit(code)
}

// writeVRSnapshot runs the full E3 comparison, enforces the gates, and
// publishes the report. Gate failures fail the bench run (exit 1), so CI
// cannot silently ship a regression in either the identity contract or
// the variance reduction.
func writeVRSnapshot(path string) error {
	rep, err := Compare(DefaultOptions())
	if err != nil {
		return err
	}
	if err := Gate(rep, minReduction); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// TestVRCompareQuick runs a shortened E3 comparison as a tier-1 smoke
// test: the identity gate must hold and the report must be coherent. The
// reduction floor itself is only enforced at full statistics by the bench
// snapshot — a 6000-second campaign records too few exact thermal DUEs to
// pin a factor.
func TestVRCompareQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping E3 comparison in -short mode")
	}
	o := DefaultOptions()
	o.DurationSeconds = 6000
	rep, err := Compare(o)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.IdentityBitExact {
		t.Error("zero-bias campaign diverged from the exact campaign")
	}
	if rep.ExactThermalDUE <= 0 || rep.BiasedThermalDUEHits <= rep.ExactThermalDUE {
		t.Errorf("biased campaign should oversample the thermal-DUE channel: exact %d, biased hits %d",
			rep.ExactThermalDUE, rep.BiasedThermalDUEHits)
	}
	if rep.BiasedChannelESS <= 0 || rep.BiasedChannelESS > float64(rep.BiasedThermalDUEHits) {
		t.Errorf("channel ESS %v outside (0, hits=%d]", rep.BiasedChannelESS, rep.BiasedThermalDUEHits)
	}
	if rep.NeutronBudgetReduction <= 1 {
		t.Errorf("biased campaign is no better than exact: reduction %v", rep.NeutronBudgetReduction)
	}
	if rep.ESSPerSecond <= 0 {
		t.Errorf("ESS per second %v", rep.ESSPerSecond)
	}
}

// BenchmarkVRBiasedCampaign measures the throughput of the biased run
// loop on a small E3 slice (the compiled biased plan is cached after the
// first iteration, so steady state times the weighted runner itself).
func BenchmarkVRBiasedCampaign(b *testing.B) {
	o := DefaultOptions()
	o.DurationSeconds = 250
	cfg := o.config()
	cfg.Bias = &plan.Bias{Thermal: o.ThermalFactor}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := beam.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
