// Package vr measures the variance reduction the importance-sampled
// transport path delivers on the paper's rare-event campaign (EXPERIMENTS.md
// E3): thermal-band DUEs of the boron-loaded Zynq FPGA under the ChipIR
// fast spectrum, where the thermal-capture channel holds about 1% of the
// interaction mass. It runs the same campaign three ways — exact, zero-bias
// (the identity gate), and thermally biased — and reports how many times
// fewer neutrons the biased campaign needs to match the exact campaign's
// 95% CI width on that channel. The snapshot writer in bench_test.go turns
// the report into BENCH_vr.json and fails the build when the reduction
// falls below its floor or the zero-bias run stops being bit-exact.
package vr

import (
	"errors"
	"fmt"
	"reflect"
	"time"

	"neutronsim/internal/beam"
	"neutronsim/internal/device"
	"neutronsim/internal/physics"
	"neutronsim/internal/plan"
	"neutronsim/internal/spectrum"
	"neutronsim/internal/stats"
)

// Options shapes the E3 comparison campaign. The zero value of any field
// falls back to DefaultOptions.
type Options struct {
	// DurationSeconds is the simulated beam time of each campaign. It must
	// be long enough that the *exact* campaign records a handful of
	// thermal-band DUEs, otherwise the exact CI width is meaningless.
	DurationSeconds float64
	// RunSeconds keeps runs short. A run's likelihood weight is the
	// product of its draws' weights, so the campaign must stay in the
	// rare-event regime of O(1) draws per run or the weight products —
	// and with them the effective sample size — degenerate exponentially
	// (DESIGN.md §14).
	RunSeconds float64
	// SensitiveFraction boosts the device so the comparison gathers real
	// statistics in seconds of wall time; both campaigns scale
	// identically, so the reduction factor is unaffected.
	SensitiveFraction float64
	// ThermalFactor is the oversampling factor of the biased campaign.
	ThermalFactor float64
	Seed          uint64
	CalSamples    int
	ShardGrain    int
}

// DefaultOptions is the configuration BENCH_vr.json is generated with.
func DefaultOptions() Options {
	return Options{
		DurationSeconds:   24000,
		RunSeconds:        0.03,
		SensitiveFraction: 0.2,
		ThermalFactor:     60,
		Seed:              4242,
		CalSamples:        2000,
		ShardGrain:        1024,
	}
}

func (o Options) withDefaults() Options {
	def := DefaultOptions()
	if o.DurationSeconds <= 0 {
		o.DurationSeconds = def.DurationSeconds
	}
	if o.RunSeconds <= 0 {
		o.RunSeconds = def.RunSeconds
	}
	if o.SensitiveFraction <= 0 {
		o.SensitiveFraction = def.SensitiveFraction
	}
	if o.ThermalFactor <= 0 {
		o.ThermalFactor = def.ThermalFactor
	}
	if o.CalSamples <= 0 {
		o.CalSamples = def.CalSamples
	}
	if o.ShardGrain <= 0 {
		o.ShardGrain = def.ShardGrain
	}
	return o
}

func (o Options) config() beam.Config {
	dut := *device.FPGA()
	dut.SensitiveFraction = o.SensitiveFraction
	return beam.Config{
		Device:          &dut,
		WorkloadName:    "MxM",
		Beam:            spectrum.ChipIR(),
		DurationSeconds: o.DurationSeconds,
		RunSeconds:      o.RunSeconds,
		Seed:            o.Seed,
		CalSamples:      o.CalSamples,
		ShardGrain:      o.ShardGrain,
	}
}

// Report is the outcome of one E3 comparison; it serializes to
// BENCH_vr.json.
type Report struct {
	Device          string  `json:"device"`
	Workload        string  `json:"workload"`
	Spectrum        string  `json:"spectrum"`
	DurationSeconds float64 `json:"duration_seconds"`
	RunSeconds      float64 `json:"run_seconds"`
	ThermalFactor   float64 `json:"thermal_factor"`
	Runs            int     `json:"runs"`
	Fluence         float64 `json:"fluence"`

	// IdentityBitExact records whether the zero-bias campaign reproduced
	// the exact campaign bit-for-bit (Weighted section stripped).
	IdentityBitExact bool `json:"identity_bit_exact"`

	// Exact side of the comparison: raw thermal-band DUE count and the
	// relative width of its Garwood 95% CI.
	ExactThermalDUE int64   `json:"exact_thermal_due"`
	ExactRelWidth   float64 `json:"exact_rel_ci_width"`

	// Biased side: history count and weighted sum on the same channel,
	// its effective sample size, and the relative width of the ESS-gated
	// 95% CI at the same neutron budget.
	BiasedThermalDUEHits int64   `json:"biased_thermal_due_hits"`
	BiasedThermalDUESum  float64 `json:"biased_thermal_due_weighted_sum"`
	BiasedChannelESS     float64 `json:"biased_thermal_due_ess"`
	BiasedRelWidth       float64 `json:"biased_rel_ci_width"`

	// NeutronBudgetReduction is the headline number: how many times fewer
	// neutrons the biased campaign needs to match the exact campaign's CI
	// width on the thermal-DUE channel. CI widths shrink with the square
	// root of the budget, so the factor is (exact width / biased width)².
	NeutronBudgetReduction float64 `json:"neutron_budget_reduction"`

	// DrawsESS is the effective neutron budget behind the whole biased
	// campaign; ESSPerSecond divides it by the campaign's wall time.
	DrawsESS          float64 `json:"biased_draws_ess"`
	BiasedWallSeconds float64 `json:"biased_wall_seconds"`
	ESSPerSecond      float64 `json:"ess_per_second"`
}

// Compare runs the three campaigns and assembles the report. It fails
// rather than report a vacuous comparison: the exact campaign must record
// at least one thermal-band DUE and the biased campaign must put weight on
// the channel.
func Compare(o Options) (*Report, error) {
	o = o.withDefaults()
	cfg := o.config()
	exact, err := beam.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("vr: exact campaign: %w", err)
	}

	unitCfg := cfg
	unitCfg.Bias = &plan.Bias{}
	unit, err := beam.Run(unitCfg)
	if err != nil {
		return nil, fmt.Errorf("vr: zero-bias campaign: %w", err)
	}
	if unit.Weighted == nil {
		return nil, errors.New("vr: zero-bias campaign carries no Weighted section")
	}
	stripped := *unit
	stripped.Weighted = nil
	identity := reflect.DeepEqual(&stripped, exact)

	// The exact campaign does not attribute DUEs to bands (that tally only
	// exists on the weighted path); the zero-bias run is bit-identical to
	// it, so its raw per-band history counts are the exact counts.
	exactThermal := unit.Weighted.DUEByBand[physics.BandThermal].N
	if exactThermal == 0 {
		return nil, fmt.Errorf("vr: exact campaign recorded no thermal-band DUEs in %v beam seconds; raise DurationSeconds", o.DurationSeconds)
	}
	exactEst, err := stats.EstimateRate(exactThermal, float64(exact.Fluence))
	if err != nil {
		return nil, fmt.Errorf("vr: exact estimate: %w", err)
	}
	relExact := (exactEst.Upper - exactEst.Lower) / exactEst.Rate

	biasedCfg := cfg
	biasedCfg.Bias = &plan.Bias{Thermal: o.ThermalFactor}
	start := time.Now()
	biased, err := beam.Run(biasedCfg)
	if err != nil {
		return nil, fmt.Errorf("vr: biased campaign: %w", err)
	}
	wall := time.Since(start).Seconds()
	wt := biased.Weighted.DUEByBand[physics.BandThermal]
	if wt.Sum() <= 0 {
		return nil, errors.New("vr: biased campaign put no weight on the thermal-DUE channel")
	}
	biasedEst, err := stats.EstimateWeightedRate(wt, float64(biased.Fluence))
	if err != nil {
		return nil, fmt.Errorf("vr: biased estimate: %w", err)
	}
	relBiased := (biasedEst.Upper - biasedEst.Lower) / biasedEst.Rate

	ratio := relExact / relBiased
	return &Report{
		Device:          cfg.Device.Name,
		Workload:        cfg.WorkloadName,
		Spectrum:        cfg.Beam.Name(),
		DurationSeconds: o.DurationSeconds,
		RunSeconds:      o.RunSeconds,
		ThermalFactor:   o.ThermalFactor,
		Runs:            exact.Runs,
		Fluence:         float64(exact.Fluence),

		IdentityBitExact: identity,

		ExactThermalDUE: exactThermal,
		ExactRelWidth:   relExact,

		BiasedThermalDUEHits: wt.N,
		BiasedThermalDUESum:  wt.Sum(),
		BiasedChannelESS:     wt.ESS(),
		BiasedRelWidth:       relBiased,

		NeutronBudgetReduction: ratio * ratio,

		DrawsESS:          biased.Weighted.Draws.ESS(),
		BiasedWallSeconds: wall,
		ESSPerSecond:      biased.Weighted.Draws.ESS() / wall,
	}, nil
}

// Gate enforces the CI contract on a report: the zero-bias identity must
// hold and the neutron-budget reduction must clear the floor.
func Gate(r *Report, minReduction float64) error {
	if !r.IdentityBitExact {
		return errors.New("vr: zero-bias campaign is no longer bit-identical to the exact campaign")
	}
	if r.NeutronBudgetReduction < minReduction {
		return fmt.Errorf("vr: neutron-budget reduction %.1f× below the %.0f× floor (exact rel width %.3f, biased %.3f)",
			r.NeutronBudgetReduction, minReduction, r.ExactRelWidth, r.BiasedRelWidth)
	}
	return nil
}
