package fleet

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The fleet log text format, one line per event plus a metadata header:
//
//	# neutronsim-fleet-log v1
//	# days=120 rainydays=37
//	# class dry-aisle nodehours=1.44e+06
//	# class near-cooling nodehours=1.44e+06
//	h000123 near-cooling node-042 DUE rain=true
//
// The format exists so logs can be archived and re-analyzed offline, the
// way real machine-room studies work from syslog archives.

const logMagic = "# neutronsim-fleet-log v1"

// WriteTo serializes the log. It implements io.WriterTo.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(format string, args ...any) error {
		c, err := fmt.Fprintf(bw, format, args...)
		n += int64(c)
		return err
	}
	if err := write("%s\n", logMagic); err != nil {
		return n, err
	}
	if err := write("# days=%d rainydays=%d\n", l.Days, l.RainyDays); err != nil {
		return n, err
	}
	classes := make([]string, 0, len(l.NodeHours))
	for c := range l.NodeHours {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		if err := write("# class %s nodehours=%g\n", c, l.NodeHours[c]); err != nil {
			return n, err
		}
	}
	for _, e := range l.Entries {
		if err := write("h%06d %s node-%d %s rain=%t\n",
			e.Hour, e.Class, e.Node, e.Type, e.Rainy); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ParseLog reads a serialized fleet log back.
func ParseLog(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, errors.New("fleet: empty log")
	}
	if sc.Text() != logMagic {
		return nil, fmt.Errorf("fleet: bad log header %q", sc.Text())
	}
	log := &Log{NodeHours: map[string]float64{}}
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# days=") {
			if _, err := fmt.Sscanf(line, "# days=%d rainydays=%d", &log.Days, &log.RainyDays); err != nil {
				return nil, fmt.Errorf("fleet: line %d: %w", lineNo, err)
			}
			continue
		}
		if strings.HasPrefix(line, "# class ") {
			fields := strings.Fields(line)
			if len(fields) != 4 || !strings.HasPrefix(fields[3], "nodehours=") {
				return nil, fmt.Errorf("fleet: line %d: bad class header", lineNo)
			}
			hours, err := strconv.ParseFloat(strings.TrimPrefix(fields[3], "nodehours="), 64)
			if err != nil {
				return nil, fmt.Errorf("fleet: line %d: %w", lineNo, err)
			}
			log.NodeHours[fields[2]] = hours
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // unknown comment
		}
		entry, err := parseEntry(line)
		if err != nil {
			return nil, fmt.Errorf("fleet: line %d: %w", lineNo, err)
		}
		log.Entries = append(log.Entries, entry)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(log.NodeHours) == 0 {
		return nil, errors.New("fleet: log has no class headers")
	}
	return log, nil
}

func parseEntry(line string) (Entry, error) {
	fields := strings.Fields(line)
	if len(fields) != 5 {
		return Entry{}, fmt.Errorf("expected 5 fields, got %d", len(fields))
	}
	var e Entry
	if !strings.HasPrefix(fields[0], "h") {
		return Entry{}, fmt.Errorf("bad hour field %q", fields[0])
	}
	hour, err := strconv.Atoi(strings.TrimPrefix(fields[0], "h"))
	if err != nil {
		return Entry{}, err
	}
	e.Hour = hour
	e.Class = fields[1]
	if !strings.HasPrefix(fields[2], "node-") {
		return Entry{}, fmt.Errorf("bad node field %q", fields[2])
	}
	if e.Node, err = strconv.Atoi(strings.TrimPrefix(fields[2], "node-")); err != nil {
		return Entry{}, err
	}
	switch fields[3] {
	case "SDC":
		e.Type = EventSDC
	case "DUE":
		e.Type = EventDUE
	default:
		return Entry{}, fmt.Errorf("bad event type %q", fields[3])
	}
	switch fields[4] {
	case "rain=true":
		e.Rainy = true
	case "rain=false":
		e.Rainy = false
	default:
		return Entry{}, fmt.Errorf("bad rain field %q", fields[4])
	}
	return e, nil
}
