// Package fleet simulates a supercomputer fleet in production and the
// field-data analysis the paper's related work leans on (§II: "some
// studies also analyze field data from supercomputers error logs"). Nodes
// are grouped into classes by their environment — in particular, proximity
// to the water-cooling loops, which the paper shows raises the local
// thermal flux — and the simulator produces an hour-resolution error log.
// The analyzer then recovers per-class FIT rates from the log and tests
// whether the "near cooling" class really fails more often, closing the
// loop from beam measurement to machine-room observation.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"neutronsim/internal/fit"
	"neutronsim/internal/rng"
	"neutronsim/internal/stats"
	"neutronsim/internal/telemetry"
	"neutronsim/internal/units"
)

// EventType is the logged error type.
type EventType int

// Event types.
const (
	EventSDC EventType = iota + 1
	EventDUE
)

// String names the event type.
func (e EventType) String() string {
	switch e {
	case EventSDC:
		return "SDC"
	case EventDUE:
		return "DUE"
	default:
		return "unknown"
	}
}

// NodeClass is a group of identical nodes sharing an environment.
type NodeClass struct {
	Name  string
	Count int
	// Env is the class environment *without* the weather flag; rain is
	// applied fleet-wide by the daily weather sequence.
	Env fit.Environment
	// Sigmas are the per-node device cross sections (from a beam
	// assessment).
	Sigmas fit.Sigmas
}

// Config drives a fleet simulation.
type Config struct {
	Classes []NodeClass
	Days    int
	// RainProbability is the chance each day is rainy (thermal flux ×2).
	RainProbability float64
	Seed            uint64
}

func (c Config) validate() error {
	if len(c.Classes) == 0 {
		return errors.New("fleet: no node classes")
	}
	for _, cl := range c.Classes {
		if cl.Name == "" {
			return errors.New("fleet: unnamed class")
		}
		if cl.Count <= 0 {
			return fmt.Errorf("fleet: class %s has no nodes", cl.Name)
		}
		if err := cl.Sigmas.Validate(); err != nil {
			return fmt.Errorf("fleet: class %s: %w", cl.Name, err)
		}
	}
	if c.Days <= 0 {
		return errors.New("fleet: non-positive duration")
	}
	if c.RainProbability < 0 || c.RainProbability > 1 {
		return errors.New("fleet: rain probability out of [0,1]")
	}
	return nil
}

// Entry is one error-log record.
type Entry struct {
	Hour  int // hour index since start
	Class string
	Node  int // node index within the class
	Type  EventType
	Rainy bool
}

// Log is a complete fleet error log with exposure bookkeeping.
type Log struct {
	Entries []Entry
	// NodeHours maps class → accumulated node-hours.
	NodeHours map[string]float64
	// RainyDays counts how many days were rainy.
	RainyDays int
	Days      int
}

// Simulate runs the fleet for the configured number of days.
func Simulate(cfg Config) (*Log, error) {
	return SimulateContext(context.Background(), cfg)
}

// SimulateContext is Simulate with a caller context; cancellation stops the
// simulation at the next day boundary and returns the context's error.
func SimulateContext(ctx context.Context, cfg Config) (*Log, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ctx, span := telemetry.StartSpan(ctx, "fleet.simulate")
	defer span.End()
	simStart := time.Now()
	s := rng.New(cfg.Seed)
	log := &Log{NodeHours: map[string]float64{}, Days: cfg.Days}
	// Precompute per-class hourly event rates for dry and rainy weather.
	type classRates struct {
		sdcDry, dueDry, sdcWet, dueWet float64 // events per node-hour
	}
	rates := make([]classRates, len(cfg.Classes))
	for i, cl := range cfg.Classes {
		dryEnv := cl.Env
		dryEnv.Raining = false
		wetEnv := cl.Env
		wetEnv.Raining = true
		dry, err := fit.Compute(cl.Sigmas, dryEnv)
		if err != nil {
			return nil, fmt.Errorf("fleet: class %s: %w", cl.Name, err)
		}
		wet, err := fit.Compute(cl.Sigmas, wetEnv)
		if err != nil {
			return nil, fmt.Errorf("fleet: class %s: %w", cl.Name, err)
		}
		rates[i] = classRates{
			sdcDry: float64(dry.SDC.Total()) / 1e9,
			dueDry: float64(dry.DUE.Total()) / 1e9,
			sdcWet: float64(wet.SDC.Total()) / 1e9,
			dueWet: float64(wet.DUE.Total()) / 1e9,
		}
	}
	// One emit helper for the whole simulation; the previous per-class
	// per-hour closure allocation was the inner loop's only heap traffic
	// besides the log itself.
	emit := func(n int64, cl *NodeClass, h int, typ EventType, rainy bool) {
		for k := int64(0); k < n; k++ {
			log.Entries = append(log.Entries, Entry{
				Hour:  h,
				Class: cl.Name,
				Node:  s.Intn(cl.Count),
				Type:  typ,
				Rainy: rainy,
			})
		}
	}
	for day := 0; day < cfg.Days; day++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rainy := s.Bernoulli(cfg.RainProbability)
		if rainy {
			log.RainyDays++
		}
		telemetry.ReportProgressContext(ctx, telemetry.ProgressUpdate{
			Component: "fleet",
			Done:      float64(day + 1),
			Total:     float64(cfg.Days),
			Events:    int64(len(log.Entries)),
			Elapsed:   time.Since(simStart),
		})
		for hour := 0; hour < 24; hour++ {
			h := day*24 + hour
			for i := range cfg.Classes {
				cl := &cfg.Classes[i]
				log.NodeHours[cl.Name] += float64(cl.Count)
				r := rates[i]
				sdcRate, dueRate := r.sdcDry, r.dueDry
				if rainy {
					sdcRate, dueRate = r.sdcWet, r.dueWet
				}
				emit(s.Poisson(sdcRate*float64(cl.Count)), cl, h, EventSDC, rainy)
				emit(s.Poisson(dueRate*float64(cl.Count)), cl, h, EventDUE, rainy)
			}
		}
	}
	reg := telemetry.Default
	reg.Counter("fleet.log_entries").Add(int64(len(log.Entries)))
	reg.Counter("fleet.rainy_days").Add(int64(log.RainyDays))
	reg.Counter("fleet.days_simulated").Add(int64(cfg.Days))
	total := 0.0
	for _, h := range log.NodeHours {
		total += h
	}
	reg.Gauge("fleet.node_hours").Add(total)
	return log, nil
}

// ClassReport is the recovered reliability of one node class.
type ClassReport struct {
	Class     string
	NodeHours float64
	SDC       int64
	DUE       int64
	// MeasuredSDCFIT and MeasuredDUEFIT are per-node rates recovered from
	// the log.
	MeasuredSDCFIT units.FIT
	MeasuredDUEFIT units.FIT
}

// Comparison is a pairwise rate test between classes.
type Comparison struct {
	ClassA, ClassB string
	Total          stats.RateComparison
}

// Report is the full field-data analysis.
type Report struct {
	PerClass    []ClassReport
	Comparisons []Comparison
	// RainEffect compares fleet-wide total rates on rainy vs dry hours.
	RainEffect stats.RateComparison
	// RainExposureHours and DryExposureHours are fleet-wide node-hours.
	RainExposureHours float64
	DryExposureHours  float64
}

// Analyze recovers per-class FIT rates from the log, tests each pair of
// classes for different failure rates, and tests the rain effect.
func Analyze(log *Log) (*Report, error) {
	if log == nil || len(log.NodeHours) == 0 {
		return nil, errors.New("fleet: empty log")
	}
	_, span := telemetry.StartSpan(context.Background(), "fleet.analyze")
	defer span.End()
	telemetry.Count("fleet.entries_analyzed", int64(len(log.Entries)))
	counts := map[string]*ClassReport{}
	names := make([]string, 0, len(log.NodeHours))
	for name, hours := range log.NodeHours {
		counts[name] = &ClassReport{Class: name, NodeHours: hours}
		names = append(names, name)
	}
	sort.Strings(names)
	var rainEvents, dryEvents int64
	totalNodeHours := 0.0
	for _, hours := range log.NodeHours {
		totalNodeHours += hours
	}
	rainyFrac := 0.0
	if log.Days > 0 {
		rainyFrac = float64(log.RainyDays) / float64(log.Days)
	}
	for _, e := range log.Entries {
		cr, ok := counts[e.Class]
		if !ok {
			return nil, fmt.Errorf("fleet: log entry for unknown class %q", e.Class)
		}
		switch e.Type {
		case EventSDC:
			cr.SDC++
		case EventDUE:
			cr.DUE++
		default:
			return nil, fmt.Errorf("fleet: invalid event type %v", e.Type)
		}
		if e.Rainy {
			rainEvents++
		} else {
			dryEvents++
		}
	}
	rep := &Report{
		RainExposureHours: totalNodeHours * rainyFrac,
		DryExposureHours:  totalNodeHours * (1 - rainyFrac),
	}
	for _, name := range names {
		cr := counts[name]
		if cr.NodeHours > 0 {
			cr.MeasuredSDCFIT = units.FIT(float64(cr.SDC) / cr.NodeHours * 1e9)
			cr.MeasuredDUEFIT = units.FIT(float64(cr.DUE) / cr.NodeHours * 1e9)
		}
		rep.PerClass = append(rep.PerClass, *cr)
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			a, b := counts[names[i]], counts[names[j]]
			rc, err := stats.CompareRates(a.SDC+a.DUE, a.NodeHours, b.SDC+b.DUE, b.NodeHours)
			if err != nil {
				return nil, err
			}
			rep.Comparisons = append(rep.Comparisons, Comparison{
				ClassA: names[i], ClassB: names[j], Total: rc,
			})
		}
	}
	if rep.DryExposureHours > 0 && rep.RainExposureHours > 0 {
		rc, err := stats.CompareRates(dryEvents, rep.DryExposureHours,
			rainEvents, rep.RainExposureHours)
		if err != nil {
			return nil, err
		}
		rep.RainEffect = rc
	}
	return rep, nil
}
