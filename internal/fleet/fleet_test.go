package fleet

import (
	"math"
	"testing"

	"neutronsim/internal/fit"
	"neutronsim/internal/units"
)

// testSigmas returns node-level cross sections (accelerator plus the
// unprotected memory fleet) — two orders above a bare device, which is
// what makes field studies statistically feasible at all.
func testSigmas() fit.Sigmas {
	return fit.Sigmas{
		SDCFast:    8e-7,
		SDCThermal: 8e-7, // DRAM-heavy nodes are as thermally sensitive as fast
		DUEFast:    3e-7,
		DUEThermal: 3e-7,
	}
}

func twoClassConfig(days, nodes int, rainProb float64, seed uint64) Config {
	site := fit.AtAltitude("Los Alamos", 2231)
	dry := fit.Environment{Location: site, ConcreteFloor: true}
	wet := fit.DataCenter(site)
	return Config{
		Classes: []NodeClass{
			{Name: "dry-aisle", Count: nodes, Env: dry, Sigmas: testSigmas()},
			{Name: "near-cooling", Count: nodes, Env: wet, Sigmas: testSigmas()},
		},
		Days:            days,
		RainProbability: rainProb,
		Seed:            seed,
	}
}

func TestConfigValidation(t *testing.T) {
	good := twoClassConfig(10, 500, 0, 1)
	mutations := []func(*Config){
		func(c *Config) { c.Classes = nil },
		func(c *Config) { c.Classes[0].Name = "" },
		func(c *Config) { c.Classes[0].Count = 0 },
		func(c *Config) { c.Classes[0].Sigmas = fit.Sigmas{} },
		func(c *Config) { c.Days = 0 },
		func(c *Config) { c.RainProbability = 2 },
	}
	for i, m := range mutations {
		cfg := twoClassConfig(10, 500, 0, 1)
		m(&cfg)
		if _, err := Simulate(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := Simulate(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestSimulateBookkeeping(t *testing.T) {
	cfg := twoClassConfig(30, 500, 0.3, 2)
	log, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantHours := float64(30 * 24 * 500)
	for _, cl := range cfg.Classes {
		if got := log.NodeHours[cl.Name]; math.Abs(got-wantHours) > 1e-9 {
			t.Errorf("%s node-hours = %v, want %v", cl.Name, got, wantHours)
		}
	}
	if log.RainyDays == 0 || log.RainyDays == 30 {
		t.Errorf("rainy days = %d with prob 0.3", log.RainyDays)
	}
	for _, e := range log.Entries {
		if e.Hour < 0 || e.Hour >= 30*24 {
			t.Fatalf("entry hour %d out of range", e.Hour)
		}
		if e.Node < 0 || e.Node >= 500 {
			t.Fatalf("entry node %d out of range", e.Node)
		}
		if e.Type != EventSDC && e.Type != EventDUE {
			t.Fatalf("bad event type %v", e.Type)
		}
	}
}

func TestAnalyzeRecoversFIT(t *testing.T) {
	cfg := twoClassConfig(180, 1000, 0, 3)
	log, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(log)
	if err != nil {
		t.Fatal(err)
	}
	// Expected per-node FIT for the dry class.
	env := cfg.Classes[0].Env
	want, err := fit.Compute(testSigmas(), env)
	if err != nil {
		t.Fatal(err)
	}
	var dry ClassReport
	for _, cr := range rep.PerClass {
		if cr.Class == "dry-aisle" {
			dry = cr
		}
	}
	if dry.SDC == 0 || dry.DUE == 0 {
		t.Fatalf("no events recovered: %+v", dry)
	}
	relSDC := float64(dry.MeasuredSDCFIT)/float64(want.SDC.Total()) - 1
	if math.Abs(relSDC) > 0.12 {
		t.Errorf("recovered SDC FIT %v vs injected %v (rel %v)",
			dry.MeasuredSDCFIT, want.SDC.Total(), relSDC)
	}
}

func TestAnalyzeDetectsCoolingEffect(t *testing.T) {
	// The paper's machine-room claim: nodes near the water loops see a
	// higher thermal flux and fail more. The effect on the *total* rate
	// is only a few percent (fast neutrons dominate), so it takes a year
	// of a 4000-node class to resolve — exactly why such field studies
	// need production-scale data.
	log, err := Simulate(twoClassConfig(365, 8000, 0, 4))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(log)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Comparisons) != 1 {
		t.Fatalf("%d comparisons", len(rep.Comparisons))
	}
	c := rep.Comparisons[0]
	if !c.Total.Significant {
		t.Errorf("cooling effect not detected: %+v", c.Total)
	}
	if c.Total.Ratio <= 1 {
		t.Errorf("near-cooling class should have the higher rate: %v", c.Total.Ratio)
	}
}

func TestAnalyzeRainEffect(t *testing.T) {
	log, err := Simulate(twoClassConfig(365, 2000, 0.4, 5))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(log)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RainExposureHours == 0 || rep.DryExposureHours == 0 {
		t.Fatal("missing exposure split")
	}
	if rep.RainEffect.Ratio <= 1 {
		t.Errorf("rainy hours should have the higher rate: %v", rep.RainEffect.Ratio)
	}
	if !rep.RainEffect.Significant {
		t.Errorf("rain effect not significant over a year: p=%v", rep.RainEffect.PValue)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Error("nil log accepted")
	}
	if _, err := Analyze(&Log{}); err == nil {
		t.Error("empty log accepted")
	}
	bad := &Log{
		NodeHours: map[string]float64{"a": 10},
		Entries:   []Entry{{Class: "ghost", Type: EventSDC}},
	}
	if _, err := Analyze(bad); err == nil {
		t.Error("entry for unknown class accepted")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	l1, err := Simulate(twoClassConfig(10, 500, 0.5, 6))
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Simulate(twoClassConfig(10, 500, 0.5, 6))
	if err != nil {
		t.Fatal(err)
	}
	if len(l1.Entries) != len(l2.Entries) || l1.RainyDays != l2.RainyDays {
		t.Error("fleet simulation not reproducible")
	}
}

func TestEventTypeString(t *testing.T) {
	if EventSDC.String() != "SDC" || EventDUE.String() != "DUE" || EventType(0).String() != "unknown" {
		t.Error("event names")
	}
}

func TestMeasuredFITUnits(t *testing.T) {
	// One event in 1e9 node-hours is 1 FIT by definition.
	log := &Log{
		NodeHours: map[string]float64{"x": 1e9},
		Entries:   []Entry{{Class: "x", Type: EventSDC}},
		Days:      1,
	}
	rep, err := Analyze(log)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerClass[0].MeasuredSDCFIT != units.FIT(1) {
		t.Errorf("measured FIT = %v, want 1", rep.PerClass[0].MeasuredSDCFIT)
	}
}
