// Package plot renders simple, dependency-free SVG figures: log-log line
// charts for the beamline spectra (Fig. 2), time series for the Tin-II
// counts (Fig. turkeypan), and grouped bar charts for the cross-section
// ratios (Fig. cs_ratio). The goal is publication-shaped figures from the
// standard library alone.
package plot

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Figure is anything that can render itself to SVG.
type Figure interface {
	SVG() (string, error)
}

// Series is one named line on a chart.
type Series struct {
	Name string
	X, Y []float64
}

// Chart is a line chart with optional logarithmic axes.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	LogY   bool
	Series []Series
	// Width and Height in pixels (defaults 840×520).
	Width, Height int
}

// palette holds the line/bar colors (color-blind-safe-ish).
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

const (
	marginLeft   = 70.0
	marginRight  = 20.0
	marginTop    = 40.0
	marginBottom = 55.0
)

func (c Chart) size() (w, h float64) {
	if c.Width <= 0 {
		c.Width = 840
	}
	if c.Height <= 0 {
		c.Height = 520
	}
	return float64(c.Width), float64(c.Height)
}

// SVG renders the chart.
func (c Chart) SVG() (string, error) {
	if len(c.Series) == 0 {
		return "", errors.New("plot: chart has no series")
	}
	var xs, ys []float64
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("plot: series %q length mismatch", s.Name)
		}
		if len(s.X) == 0 {
			return "", fmt.Errorf("plot: series %q is empty", s.Name)
		}
		for i := range s.X {
			if c.LogX && s.X[i] <= 0 {
				continue // log axes drop non-positive points
			}
			if c.LogY && s.Y[i] <= 0 {
				continue
			}
			xs = append(xs, s.X[i])
			ys = append(ys, s.Y[i])
		}
	}
	if len(xs) == 0 {
		return "", errors.New("plot: no plottable points (log axis with non-positive data?)")
	}
	xAxis, err := newAxis(minOf(xs), maxOf(xs), c.LogX)
	if err != nil {
		return "", err
	}
	yAxis, err := newAxis(minOf(ys), maxOf(ys), c.LogY)
	if err != nil {
		return "", err
	}
	w, h := c.size()
	plotW := w - marginLeft - marginRight
	plotH := h - marginTop - marginBottom
	px := func(x float64) float64 { return marginLeft + xAxis.frac(x)*plotW }
	py := func(y float64) float64 { return marginTop + (1-yAxis.frac(y))*plotH }

	var b strings.Builder
	svgHeader(&b, w, h, c.Title)
	drawAxes(&b, w, h, c.XLabel, c.YLabel, xAxis, yAxis, px, py)
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		var pts []string
		for j := range s.X {
			if (c.LogX && s.X[j] <= 0) || (c.LogY && s.Y[j] <= 0) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[j]), py(s.Y[j])))
		}
		if len(pts) == 0 {
			continue
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="2" points="%s"/>`+"\n",
			color, strings.Join(pts, " "))
		// Legend entry.
		lx := marginLeft + 12
		ly := marginTop + 8 + float64(i)*18
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="14" height="4" fill="%s"/>`+"\n", lx, ly, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="12">%s</text>`+"\n", lx+20, ly+6, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// TimeSeries is a convenience builder: y values at 0..n-1.
func TimeSeries(title, xLabel, yLabel string, names []string, series ...[]float64) (Chart, error) {
	if len(names) != len(series) {
		return Chart{}, errors.New("plot: names/series mismatch")
	}
	c := Chart{Title: title, XLabel: xLabel, YLabel: yLabel}
	for i, ys := range series {
		xs := make([]float64, len(ys))
		for j := range xs {
			xs[j] = float64(j)
		}
		c.Series = append(c.Series, Series{Name: names[i], X: xs, Y: ys})
	}
	return c, nil
}

// BarGroup is one colored group of bars across the categories.
type BarGroup struct {
	Name   string
	Values []float64
}

// BarChart is a grouped vertical bar chart.
type BarChart struct {
	Title  string
	YLabel string
	// Labels name the categories along the x axis.
	Labels []string
	Groups []BarGroup
	Width  int
	Height int
}

// SVG renders the bar chart.
func (bc BarChart) SVG() (string, error) {
	if len(bc.Labels) == 0 || len(bc.Groups) == 0 {
		return "", errors.New("plot: bar chart needs labels and groups")
	}
	maxV := 0.0
	for _, g := range bc.Groups {
		if len(g.Values) != len(bc.Labels) {
			return "", fmt.Errorf("plot: group %q has %d values for %d labels",
				g.Name, len(g.Values), len(bc.Labels))
		}
		for _, v := range g.Values {
			if v < 0 {
				return "", errors.New("plot: bar charts need non-negative values")
			}
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	yAxis, err := newAxis(0, maxV, false)
	if err != nil {
		return "", err
	}
	w, h := 840.0, 520.0
	if bc.Width > 0 {
		w = float64(bc.Width)
	}
	if bc.Height > 0 {
		h = float64(bc.Height)
	}
	plotW := w - marginLeft - marginRight
	plotH := h - marginTop - marginBottom
	py := func(y float64) float64 { return marginTop + (1-yAxis.frac(y))*plotH }

	var b strings.Builder
	svgHeader(&b, w, h, bc.Title)
	// Y grid and labels.
	for _, tick := range yAxis.ticks() {
		y := py(tick)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginLeft, y, w-marginRight, y)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, y+4, formatTick(tick))
	}
	fmt.Fprintf(&b, `<text x="16" y="%.1f" font-size="12" transform="rotate(-90 16 %.1f)" text-anchor="middle">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, escape(bc.YLabel))
	// Bars.
	catW := plotW / float64(len(bc.Labels))
	barW := catW * 0.8 / float64(len(bc.Groups))
	for ci, label := range bc.Labels {
		cx := marginLeft + float64(ci)*catW
		for gi, g := range bc.Groups {
			v := g.Values[ci]
			x := cx + catW*0.1 + float64(gi)*barW
			y := py(v)
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, y, barW*0.92, marginTop+plotH-y, palette[gi%len(palette)])
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="middle">%s</text>`+"\n",
			cx+catW/2, h-marginBottom+16, escape(label))
	}
	// Legend.
	for gi, g := range bc.Groups {
		lx := marginLeft + 12
		ly := marginTop + 8 + float64(gi)*18
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="14" height="10" fill="%s"/>`+"\n",
			lx, ly, palette[gi%len(palette)])
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="12">%s</text>`+"\n", lx+20, ly+9, escape(g.Name))
	}
	// Baseline.
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333"/>`+"\n",
		marginLeft, marginTop+plotH, w-marginRight, marginTop+plotH)
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// axis maps data values to [0,1].
type axis struct {
	lo, hi float64
	log    bool
}

func newAxis(lo, hi float64, logScale bool) (axis, error) {
	if math.IsNaN(lo) || math.IsNaN(hi) {
		return axis{}, errors.New("plot: NaN axis bounds")
	}
	if logScale {
		if lo <= 0 {
			return axis{}, errors.New("plot: log axis needs positive data")
		}
		lo = math.Pow(10, math.Floor(math.Log10(lo)))
		hi = math.Pow(10, math.Ceil(math.Log10(hi)))
		if hi <= lo {
			hi = lo * 10
		}
		return axis{lo: lo, hi: hi, log: true}, nil
	}
	if hi == lo {
		hi = lo + 1
	}
	// Pad linear axes slightly.
	span := hi - lo
	lo -= span * 0.02
	hi += span * 0.02
	if lo > 0 && lo < span*0.2 {
		lo = 0 // anchor near-zero linear axes at zero
	}
	return axis{lo: lo, hi: hi}, nil
}

// frac maps a value to [0,1] along the axis.
func (a axis) frac(v float64) float64 {
	if a.log {
		if v <= 0 {
			return 0
		}
		return (math.Log10(v) - math.Log10(a.lo)) / (math.Log10(a.hi) - math.Log10(a.lo))
	}
	return (v - a.lo) / (a.hi - a.lo)
}

// ticks returns tick positions: decades for log axes, a 1-2-5 progression
// for linear axes.
func (a axis) ticks() []float64 {
	if a.log {
		var out []float64
		for d := math.Log10(a.lo); d <= math.Log10(a.hi)+1e-9; d++ {
			out = append(out, math.Pow(10, d))
		}
		return out
	}
	span := a.hi - a.lo
	raw := span / 6
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag < 1.5:
		step = mag
	case raw/mag < 3.5:
		step = 2 * mag
	case raw/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	start := math.Ceil(a.lo/step) * step
	var out []float64
	for v := start; v <= a.hi+step*1e-9; v += step {
		out = append(out, v)
	}
	return out
}

func svgHeader(b *strings.Builder, w, h float64, title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f" font-family="sans-serif">`+"\n", w, h, w, h)
	fmt.Fprintf(b, `<rect width="%.0f" height="%.0f" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(b, `<text x="%.1f" y="24" font-size="15" text-anchor="middle">%s</text>`+"\n", w/2, escape(title))
}

func drawAxes(b *strings.Builder, w, h float64, xLabel, yLabel string, xAxis, yAxis axis,
	px, py func(float64) float64) {
	plotBottom := h - marginBottom
	for _, tick := range xAxis.ticks() {
		x := px(tick)
		fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			x, marginTop, x, plotBottom)
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, plotBottom+16, formatTick(tick))
	}
	for _, tick := range yAxis.ticks() {
		y := py(tick)
		fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginLeft, y, w-marginRight, y)
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, y+4, formatTick(tick))
	}
	fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333"/>`+"\n",
		marginLeft, plotBottom, w-marginRight, plotBottom)
	fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333"/>`+"\n",
		marginLeft, marginTop, marginLeft, plotBottom)
	fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginLeft+(w-marginLeft-marginRight)/2, h-14, escape(xLabel))
	fmt.Fprintf(b, `<text x="16" y="%.1f" font-size="12" transform="rotate(-90 16 %.1f)" text-anchor="middle">%s</text>`+"\n",
		marginTop+(plotBottom-marginTop)/2, marginTop+(plotBottom-marginTop)/2, escape(yLabel))
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1e5 || av < 1e-3:
		return fmt.Sprintf("%.0e", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs {
		if v < m {
			m = v
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}
