package plot

import (
	"math"
	"strings"
	"testing"
)

func TestChartSVGBasics(t *testing.T) {
	c := Chart{
		Title:  "demo",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{1, 2, 3}, Y: []float64{1, 4, 9}},
			{Name: "b", X: []float64{1, 2, 3}, Y: []float64{2, 3, 4}},
		},
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "</svg>", "polyline", "demo", ">a<", ">b<"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("%d polylines, want 2", got)
	}
}

func TestChartValidation(t *testing.T) {
	if _, err := (Chart{}).SVG(); err == nil {
		t.Error("empty chart accepted")
	}
	c := Chart{Series: []Series{{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}}}
	if _, err := c.SVG(); err == nil {
		t.Error("mismatched series accepted")
	}
	c = Chart{Series: []Series{{Name: "empty", X: nil, Y: nil}}}
	if _, err := c.SVG(); err == nil {
		t.Error("empty series accepted")
	}
	// Log axis with all-nonpositive data cannot plot anything.
	c = Chart{LogY: true, Series: []Series{{Name: "z", X: []float64{1}, Y: []float64{0}}}}
	if _, err := c.SVG(); err == nil {
		t.Error("unplottable log data accepted")
	}
}

func TestLogLogChart(t *testing.T) {
	// A spectra-like chart spanning many decades must render and drop
	// non-positive points silently.
	c := Chart{
		Title: "spectra", LogX: true, LogY: true,
		Series: []Series{{
			Name: "flux",
			X:    []float64{1e-3, 1e0, 1e3, 1e6, 1e9},
			Y:    []float64{1e5, 0, 1e4, 1e6, 1e3}, // one zero point dropped
		}},
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "polyline") {
		t.Error("no polyline")
	}
}

func TestTimeSeriesBuilder(t *testing.T) {
	c, err := TimeSeries("counts", "hour", "counts/h",
		[]string{"bare", "shielded"},
		[]float64{1, 2, 3}, []float64{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Series) != 2 || c.Series[0].X[2] != 2 {
		t.Errorf("series built wrong: %+v", c.Series)
	}
	if _, err := TimeSeries("x", "", "", []string{"only"}, []float64{1}, []float64{2}); err == nil {
		t.Error("mismatched names accepted")
	}
}

func TestBarChartSVG(t *testing.T) {
	bc := BarChart{
		Title:  "ratios",
		YLabel: "ratio",
		Labels: []string{"XeonPhi", "K20"},
		Groups: []BarGroup{
			{Name: "SDC", Values: []float64{10.1, 2.0}},
			{Name: "DUE", Values: []float64{6.4, 3.0}},
		},
	}
	svg, err := bc.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(svg, "<rect"); got < 4 {
		t.Errorf("%d rects, want >= 4 bars", got)
	}
	for _, want := range []string{"XeonPhi", "K20", "SDC", "DUE"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestBarChartValidation(t *testing.T) {
	if _, err := (BarChart{}).SVG(); err == nil {
		t.Error("empty bar chart accepted")
	}
	bc := BarChart{Labels: []string{"a"}, Groups: []BarGroup{{Name: "g", Values: []float64{1, 2}}}}
	if _, err := bc.SVG(); err == nil {
		t.Error("mismatched group accepted")
	}
	bc = BarChart{Labels: []string{"a"}, Groups: []BarGroup{{Name: "g", Values: []float64{-1}}}}
	if _, err := bc.SVG(); err == nil {
		t.Error("negative bar accepted")
	}
}

func TestAxisFracLinear(t *testing.T) {
	a, err := newAxis(0, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if f := a.frac(0); f < 0 || f > 0.1 {
		t.Errorf("frac(0) = %v", f)
	}
	if f := a.frac(10); f < 0.9 || f > 1 {
		t.Errorf("frac(10) = %v", f)
	}
	if a.frac(5) <= a.frac(2) {
		t.Error("frac not monotone")
	}
}

func TestAxisFracLog(t *testing.T) {
	a, err := newAxis(1, 1000, true)
	if err != nil {
		t.Fatal(err)
	}
	// Geometric midpoint maps to the middle.
	if f := a.frac(math.Sqrt(1 * 1000 * 1000)); math.Abs(f-0.833) > 0.2 {
		_ = f // coarse check only; exact depends on decade snapping
	}
	mid := a.frac(math.Pow(10, 1.5))
	if math.Abs(mid-0.5) > 1e-9 {
		t.Errorf("log midpoint frac = %v, want 0.5", mid)
	}
	if _, err := newAxis(0, 10, true); err == nil {
		t.Error("log axis with zero lower bound accepted")
	}
}

func TestTicks(t *testing.T) {
	a, _ := newAxis(0, 10, false)
	ticks := a.ticks()
	if len(ticks) < 3 || len(ticks) > 12 {
		t.Errorf("%d linear ticks", len(ticks))
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Error("ticks not increasing")
		}
	}
	lg, _ := newAxis(1, 1e6, true)
	logTicks := lg.ticks()
	if len(logTicks) != 7 { // 1e0..1e6
		t.Errorf("%d log ticks, want 7", len(logTicks))
	}
}

func TestDegenerateAxis(t *testing.T) {
	a, err := newAxis(5, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.frac(5) < 0 || a.frac(5) > 1 {
		t.Error("degenerate axis frac out of range")
	}
	if _, err := newAxis(math.NaN(), 1, false); err == nil {
		t.Error("NaN bounds accepted")
	}
}

func TestEscape(t *testing.T) {
	c := Chart{
		Title:  `a<b>&"c"`,
		Series: []Series{{Name: "s", X: []float64{1, 2}, Y: []float64{1, 2}}},
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, `a<b>`) {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "a&lt;b&gt;&amp;&quot;c&quot;") {
		t.Error("escaped title missing")
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		0:    "0",
		1e6:  "1e+06",
		0.5:  "0.5",
		150:  "150",
		1e-6: "1e-06",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}
