package surrogate

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"neutronsim/internal/plan"
	"neutronsim/internal/rng"
	"neutronsim/internal/spectrum"
	"neutronsim/internal/telemetry"
)

// DataVersion tags the training-dataset JSON layout (the artifact
// cmd/sweep -train-out exports).
const DataVersion = "surrogate-data/v1"

// Row is one training observation: a feature vector and the exact
// Monte Carlo cross section measured at it. The provenance fields make
// exported datasets self-describing; only Features, SigmaCm2 and the
// spectrum fingerprint enter the training fingerprint.
type Row struct {
	Features            []float64 `json:"features"`
	SigmaCm2            float64   `json:"sigma_cm2"`
	Spectrum            string    `json:"spectrum"`
	SpectrumFingerprint string    `json:"spectrum_fingerprint"`
	BoronPerCm2         float64   `json:"boron_per_cm2"`
	QcritFC             float64   `json:"qcrit_fc"`
}

// Dataset is a training set of design-space evaluations.
type Dataset struct {
	Version      string   `json:"version"`
	FeatureNames []string `json:"feature_names"`
	// CalSamples and Seed record how the targets were measured; they are
	// part of the training fingerprint because they set the Monte Carlo
	// noise floor the certified bound absorbs.
	CalSamples int    `json:"cal_samples"`
	Seed       uint64 `json:"seed"`
	Rows       []Row  `json:"rows"`
}

// NewDataset starts an empty dataset with the standard feature layout.
func NewDataset(calSamples int, seed uint64) *Dataset {
	return &Dataset{
		Version:      DataVersion,
		FeatureNames: append([]string(nil), FeatureNames...),
		CalSamples:   calSamples,
		Seed:         seed,
	}
}

// Add appends one observation, building its feature vector from the
// design point, the spectrum, and the estimator's bias factors.
func (ds *Dataset) Add(boronPerCm2, qcritFC float64, sp spectrum.Spectrum, bias plan.Bias, sigmaCm2 float64) {
	fp, _ := SpectrumFingerprint(sp)
	ds.Rows = append(ds.Rows, Row{
		Features:            FeatureVector(boronPerCm2, qcritFC, sp, bias),
		SigmaCm2:            sigmaCm2,
		Spectrum:            sp.Name(),
		SpectrumFingerprint: fp,
		BoronPerCm2:         boronPerCm2,
		QcritFC:             qcritFC,
	})
}

// Fingerprint is the content hash of the training data: the dataset
// tag, the measurement budget, and every row's features, target and
// spectrum identity. It seeds the model's content hash, so retraining
// on any changed grid yields a different model address.
func (ds *Dataset) Fingerprint() string {
	h := sha256.New()
	h.Write([]byte(DataVersion + "\x00"))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(ds.CalSamples))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], ds.Seed)
	h.Write(buf[:])
	for _, r := range ds.Rows {
		for _, f := range r.Features {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
			h.Write(buf[:])
		}
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(r.SigmaCm2))
		h.Write(buf[:])
		h.Write([]byte(r.SpectrumFingerprint))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Save writes the dataset atomically to path.
func (ds *Dataset) Save(path string) error {
	data, err := json.MarshalIndent(ds, "", "  ")
	if err != nil {
		return fmt.Errorf("surrogate: marshal dataset: %w", err)
	}
	return telemetry.WriteFileAtomic(path, append(data, '\n'), 0o644)
}

// LoadDataset reads a dataset written by Save.
func LoadDataset(path string) (*Dataset, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("surrogate: read dataset: %w", err)
	}
	var ds Dataset
	if err := json.Unmarshal(data, &ds); err != nil {
		return nil, fmt.Errorf("surrogate: decode dataset %s: %w", path, err)
	}
	if ds.Version != DataVersion {
		return nil, fmt.Errorf("surrogate: dataset version %q, want %q", ds.Version, DataVersion)
	}
	return &ds, nil
}

// TrainConfig are the fit hyperparameters. The zero value gets the
// defaults from withDefaults; every field is part of the model's
// content hash via the fields copied onto the Model.
type TrainConfig struct {
	// Degree is the polynomial total degree (default 4 — enough for the
	// spectrum-switch × log-Qcrit-curvature interactions the physics
	// has; on the default grid it halves the held-out error of a cubic
	// while keeping fewer terms than training rows).
	Degree int
	// Lambda is the ridge strength relative to the training row count
	// (default 1e-6).
	Lambda float64
	// HoldEvery holds out every HoldEvery-th usable row for
	// certification (default 4). The held-out rows never influence the
	// coefficients, so the measured error honestly describes the served
	// model.
	HoldEvery int
	// SafetyFactor inflates the max held-out relative error into the
	// certified serving bound (default 1.5, floored at 1%).
	SafetyFactor float64
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Degree <= 0 {
		c.Degree = 4
	}
	if c.Lambda <= 0 {
		c.Lambda = 1e-6
	}
	if c.HoldEvery <= 1 {
		c.HoldEvery = 4
	}
	if c.SafetyFactor < 1 {
		c.SafetyFactor = 1.5
	}
	return c
}

// minCertifiedRelErr floors the certified bound: even a fit that nails
// every held-out point cannot promise better than 1% — the targets
// themselves carry Monte Carlo noise.
const minCertifiedRelErr = 0.01

// Train fits a polynomial ridge model on the dataset and certifies it
// on a deterministic held-out split. Rows with non-finite features or a
// non-positive measured cross section are dropped (and counted): the
// target is log σ, and a zero estimate means the grid point starved —
// nothing a smooth fit should learn from. Training is fully
// deterministic, so identical datasets and hyperparameters produce
// byte-identical models with identical content hashes.
func Train(ds *Dataset, cfg TrainConfig) (*Model, error) {
	cfg = cfg.withDefaults()
	if ds == nil || len(ds.Rows) == 0 {
		return nil, fmt.Errorf("surrogate: empty dataset")
	}
	if len(ds.FeatureNames) == 0 {
		return nil, fmt.Errorf("surrogate: dataset has no feature names")
	}
	dim := len(ds.FeatureNames)

	var kept []Row
	dropped := 0
	for _, r := range ds.Rows {
		if len(r.Features) != dim || !allFinite(r.Features) || !(r.SigmaCm2 > 0) || math.IsInf(r.SigmaCm2, 0) {
			dropped++
			continue
		}
		kept = append(kept, r)
	}
	var train, held []Row
	for i, r := range kept {
		if i%cfg.HoldEvery == cfg.HoldEvery-1 {
			held = append(held, r)
		} else {
			train = append(train, r)
		}
	}
	if len(train) < 8 || len(held) < 2 {
		return nil, fmt.Errorf("surrogate: %d train / %d held-out usable rows (%d dropped); need at least 8/2",
			len(train), len(held), dropped)
	}

	// Standardize over the training split. A zero scale marks a feature
	// constant in training; it contributes no terms and its hull pin
	// (min == max) rejects any query that differs in it.
	mean := make([]float64, dim)
	scale := make([]float64, dim)
	for i := 0; i < dim; i++ {
		var s float64
		for _, r := range train {
			s += r.Features[i]
		}
		mean[i] = s / float64(len(train))
		var v float64
		for _, r := range train {
			d := r.Features[i] - mean[i]
			v += d * d
		}
		scale[i] = math.Sqrt(v / float64(len(train)))
		if scale[i] < 1e-12 {
			scale[i] = 0
		}
	}
	active := make([]bool, dim)
	for i := range active {
		active[i] = scale[i] > 0
	}
	terms := enumerateTerms(active, cfg.Degree)

	standardize := func(f []float64) []float64 {
		z := make([]float64, dim)
		for i := range z {
			if scale[i] > 0 {
				z[i] = (f[i] - mean[i]) / scale[i]
			}
		}
		return z
	}
	design := func(z []float64) []float64 {
		row := make([]float64, len(terms))
		for t, term := range terms {
			v := 1.0
			for i, e := range term {
				for k := 0; k < e; k++ {
					v *= z[i]
				}
			}
			row[t] = v
		}
		return row
	}

	// Normal equations with ridge on everything but the intercept
	// (terms[0] is the all-zero monomial by construction).
	p := len(terms)
	a := make([][]float64, p)
	for i := range a {
		a[i] = make([]float64, p)
	}
	b := make([]float64, p)
	for _, r := range train {
		phi := design(standardize(r.Features))
		y := math.Log10(r.SigmaCm2)
		for i := 0; i < p; i++ {
			for j := i; j < p; j++ {
				a[i][j] += phi[i] * phi[j]
			}
			b[i] += phi[i] * y
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < i; j++ {
			a[i][j] = a[j][i]
		}
	}
	coef, err := ridgeSolve(a, b, cfg.Lambda*float64(len(train)))
	if err != nil {
		return nil, err
	}

	m := &Model{
		Version:             ModelVersion,
		Quantity:            "log10_sigma_cm2",
		FeatureNames:        append([]string(nil), ds.FeatureNames...),
		Degree:              cfg.Degree,
		Lambda:              cfg.Lambda,
		Mean:                mean,
		Scale:               scale,
		Terms:               terms,
		Coef:                coef,
		TrainingFingerprint: ds.Fingerprint(),
		CalSamples:          ds.CalSamples,
		Seed:                ds.Seed,
		TrainRows:           len(train),
		HeldOutRows:         len(held),
		DroppedRows:         dropped,
	}

	// Trained domain: the hull spans every usable row (train and held —
	// both carry certified-error evidence), and the fingerprint set
	// records which spectra contributed.
	m.Hull.Min = make([]float64, dim)
	m.Hull.Max = make([]float64, dim)
	copy(m.Hull.Min, kept[0].Features)
	copy(m.Hull.Max, kept[0].Features)
	fps := map[string]bool{}
	for _, r := range kept {
		for i, f := range r.Features {
			m.Hull.Min[i] = math.Min(m.Hull.Min[i], f)
			m.Hull.Max[i] = math.Max(m.Hull.Max[i], f)
		}
		if r.SpectrumFingerprint != "" {
			fps[r.SpectrumFingerprint] = true
		}
	}
	for fp := range fps {
		m.SpectrumFingerprints = append(m.SpectrumFingerprints, fp)
	}
	sort.Strings(m.SpectrumFingerprints)

	// Certify on the held-out split: relative error on the σ scale.
	var maxErr, sumErr float64
	for _, r := range held {
		pred := m.Predict(r.Features)
		rel := math.Abs(math.Pow(10, pred-math.Log10(r.SigmaCm2)) - 1)
		sumErr += rel
		maxErr = math.Max(maxErr, rel)
	}
	m.HeldOutMaxRelErr = maxErr
	m.HeldOutMeanRelErr = sumErr / float64(len(held))
	m.CertifiedRelErr = math.Max(cfg.SafetyFactor*maxErr, minCertifiedRelErr)
	if math.IsInf(m.CertifiedRelErr, 0) || math.IsNaN(m.CertifiedRelErr) {
		return nil, fmt.Errorf("surrogate: held-out error is not finite; fit diverged")
	}

	m.seal()
	return m, nil
}

func allFinite(f []float64) bool {
	for _, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// enumerateTerms lists every monomial exponent vector of total degree
// <= degree over the active features, in a deterministic lexicographic
// order with the intercept (all zeros) first.
func enumerateTerms(active []bool, degree int) [][]int {
	var terms [][]int
	cur := make([]int, len(active))
	var rec func(i, remaining int)
	rec = func(i, remaining int) {
		if i == len(active) {
			t := make([]int, len(cur))
			copy(t, cur)
			terms = append(terms, t)
			return
		}
		maxE := 0
		if active[i] {
			maxE = remaining
		}
		for e := 0; e <= maxE; e++ {
			cur[i] = e
			rec(i+1, remaining-e)
		}
		cur[i] = 0
	}
	rec(0, degree)
	return terms
}

// ridgeSolve solves (A + λI)x = b via Cholesky, skipping the ridge on
// the intercept (index 0). If the factorization stalls numerically the
// ridge is escalated ×10 a few times before giving up — collinear
// features (the band fractions move together) make A rank-deficient,
// which any positive λ repairs.
func ridgeSolve(a [][]float64, b []float64, lambda float64) ([]float64, error) {
	p := len(a)
	for attempt := 0; attempt < 4; attempt++ {
		m := make([][]float64, p)
		for i := range m {
			m[i] = append([]float64(nil), a[i]...)
			if i != 0 {
				m[i][i] += lambda
			}
		}
		if x, ok := cholSolve(m, b); ok {
			return x, nil
		}
		lambda *= 10
	}
	return nil, fmt.Errorf("surrogate: normal equations not positive definite even at lambda=%g", lambda)
}

// cholSolve solves Mx = b for symmetric positive-definite M in place.
func cholSolve(m [][]float64, b []float64) ([]float64, bool) {
	p := len(m)
	// Factor M = LLᵀ, storing L in the lower triangle.
	for i := 0; i < p; i++ {
		for j := 0; j <= i; j++ {
			s := m[i][j]
			for k := 0; k < j; k++ {
				s -= m[i][k] * m[j][k]
			}
			if i == j {
				if s <= 0 || math.IsNaN(s) {
					return nil, false
				}
				m[i][i] = math.Sqrt(s)
			} else {
				m[i][j] = s / m[j][j]
			}
		}
	}
	// Ly = b, then Lᵀx = y.
	x := make([]float64, p)
	for i := 0; i < p; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= m[i][k] * x[k]
		}
		x[i] = s / m[i][i]
	}
	for i := p - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < p; k++ {
			s -= m[k][i] * x[k]
		}
		x[i] = s / m[i][i]
	}
	return x, true
}

// GridConfig describes a training grid: the same log-spaced design
// lattice cmd/sweep maps, evaluated with the exact estimator on both
// beamlines.
type GridConfig struct {
	BoronMin, BoronMax float64
	BoronSteps         int
	QcritMin, QcritMax float64
	QcritSteps         int
	// Samples is the Monte Carlo energy budget per cross section.
	Samples int
	Seed    uint64
}

// DefaultGrid is the stock training grid for benches, CI retrains and
// the neutrond quickstart: three decades of boron density by the 1–8 fC
// Qcrit range, dense enough that the default quartic fit certifies a
// few-percent bound, cheap enough to evaluate in a couple of seconds.
func DefaultGrid() GridConfig {
	return GridConfig{
		BoronMin: 1e12, BoronMax: 1e15, BoronSteps: 12,
		QcritMin: 1, QcritMax: 8, QcritSteps: 10,
		Samples: 60000,
		Seed:    7,
	}
}

// EvaluateGrid runs the exact design-space estimator over the grid and
// returns the dataset: per point, σ_thermal against ROTAX then σ_fast
// against ChipIR, from a per-point split stream exactly as cmd/sweep
// evaluates them. The traversal order is fixed, so the dataset — and
// every model trained from it — is a pure function of the config.
func EvaluateGrid(cfg GridConfig) (*Dataset, error) {
	if cfg.BoronMin <= 0 || cfg.BoronMax < cfg.BoronMin || cfg.BoronSteps < 1 {
		return nil, fmt.Errorf("surrogate: invalid boron grid")
	}
	if cfg.QcritMin <= 0 || cfg.QcritMax < cfg.QcritMin || cfg.QcritSteps < 1 {
		return nil, fmt.Errorf("surrogate: invalid qcrit grid")
	}
	if cfg.Samples <= 0 {
		return nil, fmt.Errorf("surrogate: samples must be positive")
	}
	logStep := func(lo, hi float64, steps, i int) float64 {
		if steps == 1 {
			return lo
		}
		return lo * math.Exp(math.Log(hi/lo)*float64(i)/float64(steps-1))
	}
	ds := NewDataset(cfg.Samples, cfg.Seed)
	rotax := spectrum.ROTAX()
	chip := spectrum.ChipIR()
	root := rng.New(cfg.Seed)
	for bi := 0; bi < cfg.BoronSteps; bi++ {
		for qi := 0; qi < cfg.QcritSteps; qi++ {
			boron := logStep(cfg.BoronMin, cfg.BoronMax, cfg.BoronSteps, bi)
			qcrit := logStep(cfg.QcritMin, cfg.QcritMax, cfg.QcritSteps, qi)
			d := DesignDevice(boron, qcrit)
			s := root.Split()
			for _, sp := range []spectrum.Spectrum{rotax, chip} {
				sigma, err := d.UpsetCrossSection(sp.Sample, cfg.Samples, s)
				if err != nil {
					return nil, err
				}
				ds.Add(boron, qcrit, sp, plan.Bias{}, float64(sigma))
			}
		}
	}
	return ds, nil
}
