// Package surrogate fits and serves a small pure-Go regression model of
// the design-space cross sections that cmd/sweep maps: σ_upset as a
// function of ¹⁰B areal density, critical charge, and the beamline's
// band composition. The paper's headline quantities vary smoothly over
// this space, so a polynomial ridge fit on sweep-grid campaigns answers
// interactive queries in O(µs) where the exact Monte Carlo estimator
// takes milliseconds — the top of neutrond's cache → surrogate → exact
// serving pyramid (DESIGN.md §17).
//
// A fitted Model is versioned by a plan-cache-style content hash
// (SHA-256 over the model tag, the training-grid fingerprint, the
// hyperparameters and the coefficients) and carries the axis-aligned
// hull of its training features plus a certified held-out relative
// error bound. Serving is strictly gated: only queries inside the hull,
// against a spectrum the model was trained on, and with a client
// tolerance at or above the certified bound are answered approximately;
// everything else falls through to the exact estimator unchanged.
package surrogate

import (
	"math"

	"neutronsim/internal/device"
	"neutronsim/internal/physics"
	"neutronsim/internal/plan"
	"neutronsim/internal/spectrum"
)

// Feature indices of the model input vector. The first two are the
// sweep design knobs in log space; the band fractions make the model
// spectrum-aware (one model covers both beamlines); the bias factors
// pin the estimator family — training runs the exact estimator, so all
// three are 1 across the training set and any importance-sampled query
// lands outside the hull and falls back to exact MC.
const (
	FeatLogBoron = iota
	FeatLogQcrit
	FeatFracThermal
	FeatFracEpithermal
	FeatFracFast
	FeatBiasThermal
	FeatBiasEpithermal
	FeatBiasFast
	NumFeatures
)

// FeatureNames labels the feature vector, index-aligned with the Feat*
// constants. Models record it so a served model and a query built by a
// different binary can be checked for layout agreement.
var FeatureNames = []string{
	"log10_boron_per_cm2",
	"log10_qcrit_fc",
	"frac_thermal",
	"frac_epithermal",
	"frac_fast",
	"bias_thermal",
	"bias_epithermal",
	"bias_fast",
}

// FeatureVector builds the model input for one design-space query.
// Out-of-domain inputs degrade to non-finite features (log10 of a
// non-positive boron density or Qcrit is -Inf/NaN, a fluxless spectrum
// yields NaN fractions) rather than erroring: the hull check rejects
// non-finite vectors, so such queries fall back to exact MC by
// construction.
func FeatureVector(boronPerCm2, qcritFC float64, sp spectrum.Spectrum, bias plan.Bias) []float64 {
	f := make([]float64, NumFeatures)
	f[FeatLogBoron] = math.Log10(boronPerCm2)
	f[FeatLogQcrit] = math.Log10(qcritFC)
	total := float64(sp.TotalFlux())
	f[FeatFracThermal] = float64(sp.FluxInBand(physics.BandThermal)) / total
	f[FeatFracEpithermal] = float64(sp.FluxInBand(physics.BandEpithermal)) / total
	f[FeatFracFast] = float64(sp.FluxInBand(physics.BandFast)) / total
	f[FeatBiasThermal] = effectiveFactor(bias.Thermal)
	f[FeatBiasEpithermal] = effectiveFactor(bias.Epithermal)
	f[FeatBiasFast] = effectiveFactor(bias.Fast)
	return f
}

// effectiveFactor resolves a bias field the way plan.Bias does: zero
// means unset and acts as 1.
func effectiveFactor(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

// SpectrumFingerprint returns the spectrum's content fingerprint, or
// ok=false for spectrum types that do not publish one (such spectra can
// neither train a model nor be served by one).
func SpectrumFingerprint(sp spectrum.Spectrum) (string, bool) {
	fp, ok := sp.(interface{ Fingerprint() string })
	if !ok {
		return "", false
	}
	return fp.Fingerprint(), true
}

// DesignDevice returns the sweep design-space device for one
// (boron, Qcrit) point: the K20 planar template with the two design
// knobs applied and the catalog's QcritSigma = Qcrit/4 spread.
// cmd/sweep, the training grid, and neutrond's xsection executor all
// build their device here, so a surrogate trained on sweep output
// predicts exactly the quantity the exact path computes.
func DesignDevice(boronPerCm2, qcritFC float64) *device.Device {
	d := device.K20()
	d.Name = "sweep"
	d.Boron10PerCm2 = boronPerCm2
	d.QcritFC = qcritFC
	d.QcritSigmaFC = qcritFC / 4
	return d
}
