package surrogate

import (
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"neutronsim/internal/plan"
	"neutronsim/internal/rng"
	"neutronsim/internal/spectrum"
)

// testGrid is small enough to evaluate in well under a second but wide
// enough on both axes for a nontrivial fit.
func testGrid() GridConfig {
	return GridConfig{
		BoronMin: 1e12, BoronMax: 1e15, BoronSteps: 6,
		QcritMin: 1, QcritMax: 8, QcritSteps: 5,
		Samples: 8000,
		Seed:    7,
	}
}

var (
	modelOnce sync.Once
	modelVal  *Model
	modelData *Dataset
	modelErr  error
)

// trainedModel trains one shared model for the whole test package.
func trainedModel(t *testing.T) (*Model, *Dataset) {
	t.Helper()
	modelOnce.Do(func() {
		modelData, modelErr = EvaluateGrid(testGrid())
		if modelErr != nil {
			return
		}
		modelVal, modelErr = Train(modelData, TrainConfig{})
	})
	if modelErr != nil {
		t.Fatalf("trainedModel: %v", modelErr)
	}
	return modelVal, modelData
}

func TestTrainDeterministicHash(t *testing.T) {
	m1, ds := trainedModel(t)
	m2, err := Train(ds, TrainConfig{})
	if err != nil {
		t.Fatalf("retrain: %v", err)
	}
	if m1.Hash == "" || len(m1.Hash) != 64 {
		t.Fatalf("model hash %q is not a sha256 hex digest", m1.Hash)
	}
	if m1.Hash != m2.Hash {
		t.Fatalf("retraining on the same dataset changed the hash: %s vs %s", m1.Hash, m2.Hash)
	}
	// A different grid must produce a different content address.
	g := testGrid()
	g.Samples = 4000
	ds2, err := EvaluateGrid(g)
	if err != nil {
		t.Fatalf("EvaluateGrid: %v", err)
	}
	m3, err := Train(ds2, TrainConfig{})
	if err != nil {
		t.Fatalf("train on variant grid: %v", err)
	}
	if m3.Hash == m1.Hash {
		t.Fatal("models trained on different grids share a content hash")
	}
	if m3.TrainingFingerprint == m1.TrainingFingerprint {
		t.Fatal("different grids share a training fingerprint")
	}
}

func TestTrainCertification(t *testing.T) {
	m, _ := trainedModel(t)
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if m.HeldOutRows < 2 || m.TrainRows < 8 {
		t.Fatalf("split too small: %d train / %d held", m.TrainRows, m.HeldOutRows)
	}
	if m.DroppedRows != 0 {
		t.Fatalf("clean grid dropped %d rows", m.DroppedRows)
	}
	if m.CertifiedRelErr < m.HeldOutMaxRelErr {
		t.Fatalf("certified bound %v below held-out max %v", m.CertifiedRelErr, m.HeldOutMaxRelErr)
	}
	if m.CertifiedRelErr < minCertifiedRelErr {
		t.Fatalf("certified bound %v below floor %v", m.CertifiedRelErr, minCertifiedRelErr)
	}
	// The fit should actually be good on this smooth response surface.
	if m.HeldOutMaxRelErr > 0.25 {
		t.Fatalf("held-out max relative error %v is implausibly large", m.HeldOutMaxRelErr)
	}
	if c := m.Confidence(); c <= 0 || c >= 1 {
		t.Fatalf("confidence %v outside (0,1)", c)
	}
}

// TestModelAccuracyVsFreshExact compares the surrogate against exact MC
// evaluations at interior points the training grid never visited, with
// fresh RNG streams. Allows 2× the certified bound so independent Monte
// Carlo noise on the reference cannot flake the test.
func TestModelAccuracyVsFreshExact(t *testing.T) {
	m, _ := trainedModel(t)
	rotax := spectrum.ROTAX()
	chip := spectrum.ChipIR()
	root := rng.New(12345)
	points := []struct {
		boron, qcrit float64
	}{
		{3.3e13, 2.7},
		{8.9e13, 5.1},
		{4.2e14, 1.6},
	}
	for _, p := range points {
		d := DesignDevice(p.boron, p.qcrit)
		s := root.Split()
		for _, sp := range []spectrum.Spectrum{rotax, chip} {
			sigma, err := d.UpsetCrossSection(sp.Sample, 20000, s)
			if err != nil {
				t.Fatalf("exact eval: %v", err)
			}
			f := FeatureVector(p.boron, p.qcrit, sp, plan.Bias{})
			if !m.Hull.Contains(f) {
				t.Fatalf("interior point (%g, %g, %s) outside hull", p.boron, p.qcrit, sp.Name())
			}
			pred := m.PredictSigma(f)
			rel := math.Abs(pred/float64(sigma) - 1)
			if rel > 2*m.CertifiedRelErr {
				t.Errorf("point (%g fC, boron %g, %s): surrogate %.4g vs exact %.4g, rel err %.4f > 2x certified %.4f",
					p.qcrit, p.boron, sp.Name(), pred, float64(sigma), rel, 2*m.CertifiedRelErr)
			}
		}
	}
}

func TestHullBoundaryInclusive(t *testing.T) {
	m, _ := trainedModel(t)
	onMin := append([]float64(nil), m.Hull.Min...)
	onMax := append([]float64(nil), m.Hull.Max...)
	if !m.Hull.Contains(onMin) {
		t.Error("query exactly on the hull min face rejected; bounds must be inclusive")
	}
	if !m.Hull.Contains(onMax) {
		t.Error("query exactly on the hull max face rejected; bounds must be inclusive")
	}
	// One ulp-scale nudge past a face is outside.
	past := append([]float64(nil), m.Hull.Max...)
	past[FeatLogBoron] = math.Nextafter(past[FeatLogBoron], math.Inf(1))
	if m.Hull.Contains(past) {
		t.Error("query past the hull max face accepted")
	}
	below := append([]float64(nil), m.Hull.Min...)
	below[FeatLogQcrit] = math.Nextafter(below[FeatLogQcrit], math.Inf(-1))
	if m.Hull.Contains(below) {
		t.Error("query below the hull min face accepted")
	}
}

func TestHullRejectsNonFinite(t *testing.T) {
	m, _ := trainedModel(t)
	mid := make([]float64, NumFeatures)
	for i := range mid {
		mid[i] = (m.Hull.Min[i] + m.Hull.Max[i]) / 2
	}
	if !m.Hull.Contains(mid) {
		t.Fatal("hull midpoint rejected")
	}
	for i := 0; i < NumFeatures; i++ {
		for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
			f := append([]float64(nil), mid...)
			f[i] = bad
			if m.Hull.Contains(f) {
				t.Errorf("hull accepted %v in feature %s", bad, FeatureNames[i])
			}
		}
	}
	if m.Hull.Contains(nil) {
		t.Error("hull accepted a nil vector")
	}
	if m.Hull.Contains(mid[:NumFeatures-1]) {
		t.Error("hull accepted a short vector")
	}
}

// TestFeatureVectorDegradesOutOfDomain checks that invalid design
// inputs become non-finite features the hull rejects, rather than
// errors or silently-servable vectors.
func TestFeatureVectorDegradesOutOfDomain(t *testing.T) {
	m, _ := trainedModel(t)
	sp := spectrum.ROTAX()
	for _, tc := range []struct {
		name         string
		boron, qcrit float64
	}{
		{"zero boron", 0, 3},
		{"negative boron", -1e13, 3},
		{"zero qcrit", 1e13, 0},
		{"nan qcrit", 1e13, math.NaN()},
	} {
		f := FeatureVector(tc.boron, tc.qcrit, sp, plan.Bias{})
		if m.Hull.Contains(f) {
			t.Errorf("%s: hull accepted out-of-domain query", tc.name)
		}
	}
	// A biased query differs from the (all-ones) training bias features
	// and must fall outside the hull.
	f := FeatureVector(1e14, 3, sp, plan.Bias{Thermal: 4})
	if m.Hull.Contains(f) {
		t.Error("importance-sampled query accepted by a model trained on the exact estimator")
	}
}

func TestSpectrumFingerprintAndTraining(t *testing.T) {
	m, _ := trainedModel(t)
	for _, sp := range []spectrum.Spectrum{spectrum.ROTAX(), spectrum.ChipIR()} {
		fp, ok := SpectrumFingerprint(sp)
		if !ok || fp == "" {
			t.Fatalf("%s does not publish a fingerprint", sp.Name())
		}
		if !m.SpectrumTrained(fp) {
			t.Errorf("model not marked trained on %s", sp.Name())
		}
	}
	if m.SpectrumTrained("no-such-fingerprint") {
		t.Error("model claims training on an unknown spectrum")
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	m, _ := trainedModel(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Hash != m.Hash {
		t.Fatalf("round trip changed hash: %s vs %s", got.Hash, m.Hash)
	}
	f := FeatureVector(1e14, 3, spectrum.ROTAX(), plan.Bias{})
	if a, b := m.Predict(f), got.Predict(f); a != b {
		t.Fatalf("round trip changed prediction: %v vs %v", a, b)
	}
	// Tampering with a saved model must be detected.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	tampered := filepath.Join(t.TempDir(), "tampered.json")
	if err := os.WriteFile(tampered, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(tampered); err == nil {
		t.Fatal("Load accepted a tampered model")
	}
}

func TestDatasetSaveLoadRoundTrip(t *testing.T) {
	_, ds := trainedModel(t)
	path := filepath.Join(t.TempDir(), "train.json")
	if err := ds.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := LoadDataset(path)
	if err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if got.Fingerprint() != ds.Fingerprint() {
		t.Fatal("dataset round trip changed the training fingerprint")
	}
	m, err := Train(got, TrainConfig{})
	if err != nil {
		t.Fatalf("train from loaded dataset: %v", err)
	}
	if m.Hash != modelVal.Hash {
		t.Fatal("model trained from a round-tripped dataset has a different hash")
	}
}

func TestTrainDropsBadRows(t *testing.T) {
	_, ds := trainedModel(t)
	bad := &Dataset{
		Version:      DataVersion,
		FeatureNames: ds.FeatureNames,
		CalSamples:   ds.CalSamples,
		Seed:         ds.Seed,
		Rows:         append([]Row(nil), ds.Rows...),
	}
	nan := append([]float64(nil), ds.Rows[0].Features...)
	nan[FeatLogBoron] = math.NaN()
	bad.Rows = append(bad.Rows,
		Row{Features: nan, SigmaCm2: 1e-14, SpectrumFingerprint: ds.Rows[0].SpectrumFingerprint},
		Row{Features: ds.Rows[1].Features, SigmaCm2: 0, SpectrumFingerprint: ds.Rows[1].SpectrumFingerprint},
		Row{Features: ds.Rows[2].Features[:3], SigmaCm2: 1e-14, SpectrumFingerprint: ds.Rows[2].SpectrumFingerprint},
	)
	m, err := Train(bad, TrainConfig{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if m.DroppedRows != 3 {
		t.Fatalf("dropped %d rows, want 3", m.DroppedRows)
	}
}

func TestTrainRejectsTinyDataset(t *testing.T) {
	_, ds := trainedModel(t)
	tiny := &Dataset{
		Version:      DataVersion,
		FeatureNames: ds.FeatureNames,
		Rows:         ds.Rows[:4],
	}
	if _, err := Train(tiny, TrainConfig{}); err == nil {
		t.Fatal("Train accepted a 4-row dataset")
	}
	if _, err := Train(&Dataset{Version: DataVersion, FeatureNames: ds.FeatureNames}, TrainConfig{}); err == nil {
		t.Fatal("Train accepted an empty dataset")
	}
}

// FuzzFeatureVector drives arbitrary design inputs and bias factors
// through the serving gate: building features never panics, non-finite
// features are never inside the hull, and anything the hull accepts
// yields a finite positive cross-section prediction.
func FuzzFeatureVector(f *testing.F) {
	g := testGrid()
	g.Samples = 4000
	ds, err := EvaluateGrid(g)
	if err != nil {
		f.Fatalf("EvaluateGrid: %v", err)
	}
	m, err := Train(ds, TrainConfig{})
	if err != nil {
		f.Fatalf("Train: %v", err)
	}
	f.Add(1e14, 3.0, 1.0, 1.0, 1.0, true)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, false)
	f.Add(math.Inf(1), math.NaN(), -1.0, 2.0, 1e300, true)
	f.Add(m.Hull.Min[FeatLogBoron], m.Hull.Min[FeatLogQcrit], 1.0, 1.0, 1.0, false)
	f.Fuzz(func(t *testing.T, boron, qcrit, bt, be, bf float64, thermal bool) {
		var sp spectrum.Spectrum
		if thermal {
			sp = spectrum.ROTAX()
		} else {
			sp = spectrum.ChipIR()
		}
		fv := FeatureVector(boron, qcrit, sp, plan.Bias{Thermal: bt, Epithermal: be, Fast: bf})
		if len(fv) != NumFeatures {
			t.Fatalf("feature vector length %d", len(fv))
		}
		if !allFinite(fv) && m.Hull.Contains(fv) {
			t.Fatalf("hull accepted non-finite features %v", fv)
		}
		if m.Hull.Contains(fv) {
			sigma := m.PredictSigma(fv)
			if !(sigma > 0) || math.IsInf(sigma, 0) || math.IsNaN(sigma) {
				t.Fatalf("in-hull prediction %v is not a finite positive cross section (features %v)", sigma, fv)
			}
		}
	})
}
