// Surrogate serving benchmarks and the BENCH_surrogate.json gate. This
// file lives in the external test package so it can drive the full
// serving pyramid — server and cluster import surrogate, so the storm
// harness cannot live in package surrogate itself.
package surrogate_test

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"neutronsim/internal/cluster"
	"neutronsim/internal/plan"
	"neutronsim/internal/rng"
	"neutronsim/internal/server"
	"neutronsim/internal/spectrum"
	"neutronsim/internal/surrogate"
	"neutronsim/internal/telemetry"
)

// benchExactSamples is the exact estimator's production default Monte
// Carlo budget (server xsection default and cmd/sweep -samples), so the
// speedup compares the surrogate against what an interactive exact
// query actually costs.
const benchExactSamples = 60000

var (
	benchOnce  sync.Once
	benchModel *surrogate.Model
	benchErr   error
)

// defaultModel trains the stock DefaultGrid model once per process —
// the same model CI retrains and the quickstart ships.
func defaultModel() (*surrogate.Model, error) {
	benchOnce.Do(func() {
		var ds *surrogate.Dataset
		ds, benchErr = surrogate.EvaluateGrid(surrogate.DefaultGrid())
		if benchErr != nil {
			return
		}
		benchModel, benchErr = surrogate.Train(ds, surrogate.TrainConfig{})
	})
	return benchModel, benchErr
}

// BenchmarkSurrogatePredict is the approximate serving path: one hull
// check plus one polynomial evaluation per query.
func BenchmarkSurrogatePredict(b *testing.B) {
	m, err := defaultModel()
	if err != nil {
		b.Fatal(err)
	}
	f := surrogate.FeatureVector(1e14, 3, spectrum.ROTAX(), plan.Bias{})
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		if !m.Hull.Contains(f) {
			b.Fatal("bench point left the hull")
		}
		sink = m.PredictSigma(f)
	}
	_ = sink
}

// BenchmarkSurrogateExactXsection is the tier the surrogate displaces:
// the exact Monte Carlo cross-section estimator at the production
// sample budget, with the process warm (spectra compiled, no cold
// setup in the loop).
func BenchmarkSurrogateExactXsection(b *testing.B) {
	sp := spectrum.ROTAX()
	d := surrogate.DesignDevice(1e14, 3)
	s := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.UpsetCrossSection(sp.Sample, benchExactSamples, s); err != nil {
			b.Fatal(err)
		}
	}
}

// runTierStorm drives a mixed-tolerance xsection storm through a
// surrogate-enabled server: every third key demands an exact answer
// (cacheable), the rest are surrogate-servable. The report's tier
// breakdown is the serving pyramid under load.
func runTierStorm(m *surrogate.Model) (*cluster.Report, error) {
	srv := server.New(server.Config{
		Workers:   4,
		Registry:  telemetry.NewRegistry(),
		Surrogate: m,
	})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	return cluster.RunLoad(context.Background(), cluster.LoadConfig{
		Target:      ts.URL,
		Concurrency: 4,
		Duration:    1500 * time.Millisecond,
		Keys:        40,
		Seed:        3,
		Campaign:    cluster.XsectionCampaign(0.1),
		Client:      ts.Client(),
	})
}

// TestSurrogateTierStorm is the -race-friendly storm check CI runs even
// without benchmarks: all three tiers answer, nothing errors.
func TestSurrogateTierStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("storm skipped in -short mode")
	}
	m, err := defaultModel()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runTierStorm(m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("storm errors = %d, want 0", rep.Errors)
	}
	if rep.Tiers[cluster.TierSurrogate].Requests == 0 {
		t.Fatalf("no surrogate-tier answers in storm: %+v", rep.Tiers)
	}
	if rep.Tiers[cluster.TierExact].Requests == 0 {
		t.Fatalf("no exact-tier answers in storm: %+v", rep.Tiers)
	}
}

// TestMain writes BENCH_surrogate.json at the repo root when benchmarks
// run, following the BENCH_plan.json idiom. It exits non-zero if the
// held-out error escaped the certified bound, if the surrogate's
// latency win over warm exact MC is below 1000×, or if the tier storm
// saw errors — the surrogate CI gates.
func TestMain(m *testing.M) {
	code := m.Run()
	bench := flag.Lookup("test.bench")
	if code == 0 && bench != nil && bench.Value.String() != "" {
		if err := writeSurrogateSnapshot("../../BENCH_surrogate.json"); err != nil {
			fmt.Fprintln(os.Stderr, "surrogate bench snapshot:", err)
			code = 1
		}
	}
	os.Exit(code)
}

func writeSurrogateSnapshot(path string) error {
	model, err := defaultModel()
	if err != nil {
		return err
	}
	predict := testing.Benchmark(BenchmarkSurrogatePredict)
	exact := testing.Benchmark(BenchmarkSurrogateExactXsection)
	if predict.N == 0 || exact.N == 0 {
		return fmt.Errorf("benchmarks did not run")
	}
	speedup := float64(exact.NsPerOp()) / float64(predict.NsPerOp())
	storm, err := runTierStorm(model)
	if err != nil {
		return err
	}
	snap := struct {
		Note              string                         `json:"note"`
		GOMAXPROCS        int                            `json:"gomaxprocs"`
		ModelHash         string                         `json:"model_hash"`
		TrainRows         int                            `json:"train_rows"`
		HeldOutRows       int                            `json:"held_out_rows"`
		HeldOutMaxRelErr  float64                        `json:"held_out_max_rel_err"`
		HeldOutMeanRelErr float64                        `json:"held_out_mean_rel_err"`
		CertifiedRelErr   float64                        `json:"certified_rel_err"`
		ExactSamples      int                            `json:"exact_samples"`
		PredictNsPerOp    float64                        `json:"surrogate_ns_per_op"`
		PredictAllocs     int64                          `json:"surrogate_allocs_per_op"`
		ExactNsPerOp      float64                        `json:"exact_ns_per_op"`
		Speedup           float64                        `json:"surrogate_speedup_vs_exact"`
		StormRequests     int64                          `json:"storm_requests"`
		StormErrors       int64                          `json:"storm_errors"`
		StormTiers        map[string]cluster.TierLatency `json:"storm_tiers"`
	}{
		Note: "surrogate serving tier (DESIGN.md §17); held-out error must stay " +
			"within the certified bound and the surrogate must be >= 1000x faster " +
			"than warm exact MC",
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		ModelHash:         model.Hash,
		TrainRows:         model.TrainRows,
		HeldOutRows:       model.HeldOutRows,
		HeldOutMaxRelErr:  model.HeldOutMaxRelErr,
		HeldOutMeanRelErr: model.HeldOutMeanRelErr,
		CertifiedRelErr:   model.CertifiedRelErr,
		ExactSamples:      benchExactSamples,
		PredictNsPerOp:    float64(predict.NsPerOp()),
		PredictAllocs:     predict.AllocsPerOp(),
		ExactNsPerOp:      float64(exact.NsPerOp()),
		Speedup:           speedup,
		StormRequests:     storm.Requests,
		StormErrors:       storm.Errors,
		StormTiers:        storm.Tiers,
	}
	if snap.HeldOutMaxRelErr > snap.CertifiedRelErr {
		return fmt.Errorf("held-out max rel err %.4f escaped the certified bound %.4f",
			snap.HeldOutMaxRelErr, snap.CertifiedRelErr)
	}
	if speedup < 1000 {
		return fmt.Errorf("surrogate speedup %.0fx vs warm exact MC, want >= 1000x", speedup)
	}
	if storm.Errors != 0 {
		return fmt.Errorf("tier storm saw %d errors, want 0", storm.Errors)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return telemetry.WriteFileAtomic(path, append(data, '\n'), 0o644)
}
