package surrogate

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"

	"neutronsim/internal/telemetry"
)

// ModelVersion tags the fitted-model JSON layout and leads the content
// hash, so a layout change can never collide with an old model.
const ModelVersion = "surrogate/v1"

// Hull is the axis-aligned bounding box of the training features — the
// region where the certified error bound was actually measured. The
// bounds are inclusive: a query exactly on a face is inside.
type Hull struct {
	Min []float64 `json:"min"`
	Max []float64 `json:"max"`
}

// Contains reports whether f lies inside the hull. Non-finite features
// (NaN, ±Inf), and vectors whose length disagrees with the hull, are
// outside by definition — the caller's fallback to exact MC handles
// them without any special casing.
func (h Hull) Contains(f []float64) bool {
	if len(f) != len(h.Min) || len(h.Min) != len(h.Max) {
		return false
	}
	for i, v := range f {
		// A NaN fails both comparisons' negations, so spell the check
		// directly: inside means min <= v <= max, which is false for NaN.
		if !(v >= h.Min[i] && v <= h.Max[i]) {
			return false
		}
	}
	return true
}

// Model is a fitted polynomial ridge regression predicting
// log10(σ_upset/cm²) from a FeatureVector. It is immutable after
// training; Hash is the content address under which neutrond reports it.
type Model struct {
	Version  string `json:"version"`
	Quantity string `json:"quantity"` // what Predict returns

	// Fit family and hyperparameters.
	FeatureNames []string  `json:"feature_names"`
	Degree       int       `json:"degree"`
	Lambda       float64   `json:"lambda"`
	Mean         []float64 `json:"mean"`  // per-feature standardization shift
	Scale        []float64 `json:"scale"` // per-feature standardization scale (0 = constant in training)
	Terms        [][]int   `json:"terms"` // monomial exponents over standardized features
	Coef         []float64 `json:"coef"`  // one coefficient per term

	// Trained domain.
	Hull                 Hull     `json:"hull"`
	SpectrumFingerprints []string `json:"spectrum_fingerprints"`

	// Training provenance and certification.
	TrainingFingerprint string  `json:"training_fingerprint"`
	CalSamples          int     `json:"cal_samples"`
	Seed                uint64  `json:"seed"`
	TrainRows           int     `json:"train_rows"`
	HeldOutRows         int     `json:"held_out_rows"`
	DroppedRows         int     `json:"dropped_rows"`
	HeldOutMaxRelErr    float64 `json:"held_out_max_rel_err"`
	HeldOutMeanRelErr   float64 `json:"held_out_mean_rel_err"`
	// CertifiedRelErr is the serving guarantee: SafetyFactor × the max
	// held-out relative error (floored). Queries whose tolerance is
	// below it are never answered approximately.
	CertifiedRelErr float64 `json:"certified_rel_err"`

	// Hash is the SHA-256 content address over everything above.
	Hash string `json:"hash"`
}

// contentHash computes the model's content address: SHA-256 over the
// version tag and the canonical JSON of every field except Hash itself.
// Struct-order JSON marshaling makes it deterministic, exactly like the
// result cache's request hashing.
func (m *Model) contentHash() string {
	c := *m
	c.Hash = ""
	data, err := json.Marshal(&c)
	if err != nil {
		// A trained model is plain finite data and always marshals.
		panic(fmt.Sprintf("surrogate: marshal model for hashing: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(ModelVersion + "\x00"))
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil))
}

// seal stamps the content hash. Train calls it once; a sealed model is
// treated as immutable.
func (m *Model) seal() { m.Hash = m.contentHash() }

// Verify checks structural consistency and that the stored hash matches
// the content — the guard Load applies before a model may serve.
func (m *Model) Verify() error {
	switch {
	case m.Version != ModelVersion:
		return fmt.Errorf("surrogate: model version %q, want %q", m.Version, ModelVersion)
	case len(m.FeatureNames) == 0,
		len(m.Mean) != len(m.FeatureNames),
		len(m.Scale) != len(m.FeatureNames),
		len(m.Hull.Min) != len(m.FeatureNames),
		len(m.Hull.Max) != len(m.FeatureNames):
		return fmt.Errorf("surrogate: inconsistent feature dimensions")
	case len(m.Coef) != len(m.Terms), len(m.Terms) == 0:
		return fmt.Errorf("surrogate: %d coefficients for %d terms", len(m.Coef), len(m.Terms))
	case !(m.CertifiedRelErr > 0) || math.IsInf(m.CertifiedRelErr, 0):
		return fmt.Errorf("surrogate: certified error bound %v must be a positive finite number", m.CertifiedRelErr)
	}
	for _, t := range m.Terms {
		if len(t) != len(m.FeatureNames) {
			return fmt.Errorf("surrogate: term arity %d, want %d", len(t), len(m.FeatureNames))
		}
	}
	for i := range m.Hull.Min {
		if !(m.Hull.Min[i] <= m.Hull.Max[i]) {
			return fmt.Errorf("surrogate: hull dimension %d inverted or non-finite", i)
		}
	}
	if got := m.contentHash(); got != m.Hash {
		return fmt.Errorf("surrogate: content hash mismatch: stored %.12s…, computed %.12s…", m.Hash, got)
	}
	return nil
}

// SpectrumTrained reports whether the model was fitted on data from the
// spectrum with the given content fingerprint.
func (m *Model) SpectrumTrained(fingerprint string) bool {
	for _, fp := range m.SpectrumFingerprints {
		if fp == fingerprint {
			return true
		}
	}
	return false
}

// Predict evaluates the fitted polynomial at the feature vector and
// returns log10(σ/cm²). It allocates nothing and runs in a few hundred
// nanoseconds — the O(µs) serving budget. Callers must gate on
// Hull.Contains first; outside the hull the polynomial extrapolates
// with no error guarantee.
func (m *Model) Predict(f []float64) float64 {
	var z [NumFeatures]float64
	n := len(m.Mean)
	for i := 0; i < n && i < len(f) && i < len(z); i++ {
		if m.Scale[i] > 0 {
			z[i] = (f[i] - m.Mean[i]) / m.Scale[i]
		}
	}
	y := 0.0
	for t, term := range m.Terms {
		v := m.Coef[t]
		for i, e := range term {
			for k := 0; k < e; k++ {
				v *= z[i]
			}
		}
		y += v
	}
	return y
}

// PredictSigma returns the cross-section estimate in cm².
func (m *Model) PredictSigma(f []float64) float64 {
	return math.Pow(10, m.Predict(f))
}

// Confidence is the serving confidence derived from the certified
// bound: 1 - CertifiedRelErr, floored at zero.
func (m *Model) Confidence() float64 {
	if c := 1 - m.CertifiedRelErr; c > 0 {
		return c
	}
	return 0
}

// Encode renders the model as indented JSON with a trailing newline.
func (m *Model) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("surrogate: marshal model: %w", err)
	}
	return append(data, '\n'), nil
}

// Save writes the model atomically to path.
func (m *Model) Save(path string) error {
	data, err := m.Encode()
	if err != nil {
		return err
	}
	return telemetry.WriteFileAtomic(path, data, 0o644)
}

// Load reads a model written by Save and verifies its content hash; a
// corrupted or hand-edited model never serves.
func Load(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("surrogate: read model: %w", err)
	}
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("surrogate: decode model %s: %w", path, err)
	}
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("%w (model %s)", err, path)
	}
	return &m, nil
}
