package device

import "neutronsim/internal/rng"

// The device catalog encodes the six devices under test (§III-A) with
// physically motivated parameters:
//
//   - Die areas and charge-collection depths follow the process node
//     (planar CMOS collects over ~1 µm; FinFET/Tri-Gate fins collect over
//     ~0.3 µm, one reason the paper sees FinFET parts less thermally
//     sensitive).
//   - Critical charge shrinks with the node (28 nm ≈ 6 fC → 12 nm ≈ 1.2 fC).
//   - Boron10PerCm2 is calibrated so that Monte Carlo beam campaigns
//     reproduce the fast:thermal cross-section ratios the paper measured
//     (Fig. cs_ratio). The calibration procedure lives in Calibrate; the
//     baked-in numbers were produced by it (see calibration_test.go, which
//     re-verifies self-consistency).
//   - ControlFracFast/Thermal encode how often a fault lands in control
//     logic (the DUE path). The per-band split is what lets one device
//     show SDC ratio 10.14 but DUE ratio 6.37 (Xeon Phi), or the APU's
//     near-1 DUE ratio that the paper attributes to thermally sensitive
//     CPU-GPU communication logic.

// XeonPhi is the Intel Xeon Phi 3120A (Knights Corner), 22nm Tri-Gate.
// Target ratios: SDC 10.14, DUE 6.37 — low thermal sensitivity, a sign of
// little or depleted boron (§V).
func XeonPhi() *Device {
	return &Device{
		Name:               "XeonPhi",
		Vendor:             "Intel",
		Process:            "22nm Intel 3-D Tri-Gate",
		Tech:               TriGate,
		Kind:               KindAccelerator,
		DieAreaCm2:         7.0,
		SensitiveDepthUm:   0.35,
		SensitiveFraction:  1e-3,
		Boron10PerCm2:      3.55e13,
		QcritFC:            2.0,
		QcritSigmaFC:       0.5,
		ControlFracFast:    0.30,
		ControlFracThermal: 0.420,
		MBUProb:            0.05,
	}
}

// K20 is the NVIDIA Tesla K20 (Kepler), 28nm TSMC planar CMOS.
// Target ratios: SDC ≈2, DUE ≈3 — high thermal sensitivity.
func K20() *Device {
	return &Device{
		Name:               "K20",
		Vendor:             "NVIDIA",
		Process:            "28nm TSMC CMOS",
		Tech:               CMOSPlanar,
		Kind:               KindGPU,
		DieAreaCm2:         5.61,
		SensitiveDepthUm:   1.0,
		SensitiveFraction:  1e-3,
		Boron10PerCm2:      3.70e14,
		QcritFC:            6.0,
		QcritSigmaFC:       1.5,
		ControlFracFast:    0.25,
		ControlFracThermal: 0.177,
		MBUProb:            0.08,
	}
}

// TitanX is the NVIDIA Titan X (Pascal), 16nm TSMC FinFET.
// Target ratios: SDC ≈3, DUE ≈7.
func TitanX() *Device {
	return &Device{
		Name:               "TitanX",
		Vendor:             "NVIDIA",
		Process:            "16nm TSMC FinFET",
		Tech:               FinFET,
		Kind:               KindGPU,
		DieAreaCm2:         4.71,
		SensitiveDepthUm:   0.30,
		SensitiveFraction:  1e-3,
		Boron10PerCm2:      7.14e13,
		QcritFC:            1.5,
		QcritSigmaFC:       0.4,
		ControlFracFast:    0.25,
		ControlFracThermal: 0.112,
		MBUProb:            0.10,
	}
}

// TitanV is the NVIDIA Titan V (Volta), 12nm TSMC FinFET. The companion
// study could only exercise MxM on it; its thermal SDC cross section was
// almost double the TitanX's. Target ratios: SDC ≈2, DUE ≈6.
func TitanV() *Device {
	return &Device{
		Name:               "TitanV",
		Vendor:             "NVIDIA",
		Process:            "12nm TSMC FinFET",
		Tech:               FinFET,
		Kind:               KindGPU,
		DieAreaCm2:         8.15,
		SensitiveDepthUm:   0.25,
		SensitiveFraction:  1e-3,
		Boron10PerCm2:      8.39e13,
		QcritFC:            1.2,
		QcritSigmaFC:       0.3,
		ControlFracFast:    0.25,
		ControlFracThermal: 0.079,
		MBUProb:            0.12,
	}
}

// APUConfig selects which halves of the AMD A10-7890K (Kaveri) APU are
// exercised; the paper tests CPU-only, GPU-only, and a 50/50 split (§V).
type APUConfig int

// APU execution configurations.
const (
	APUCPU APUConfig = iota + 1
	APUGPU
	APUCPUGPU
)

// String names the configuration.
func (c APUConfig) String() string {
	switch c {
	case APUCPU:
		return "CPU"
	case APUGPU:
		return "GPU"
	case APUCPUGPU:
		return "CPU+GPU"
	default:
		return "unknown"
	}
}

// APU builds the AMD A10-7890K Kaveri model for one execution
// configuration (28nm SHP Bulk, Global Foundries). The shared silicon is
// identical; the exercised-area and control-logic exposure differ. The
// CPU+GPU configuration has the worst thermal DUE ratio (≈1.18) because
// the CPU-GPU synchronization logic is thermally sensitive (§V).
func APU(cfg APUConfig) *Device {
	d := &Device{
		Vendor:            "AMD",
		Process:           "28nm SHP Bulk (Global Foundries)",
		Tech:              CMOSPlanar,
		Kind:              KindAPU,
		SensitiveDepthUm:  1.0,
		SensitiveFraction: 1e-3,
		QcritFC:           6.0,
		QcritSigmaFC:      1.5,
		MBUProb:           0.06,
	}
	switch cfg {
	case APUCPU:
		d.Name = "APU-CPU"
		d.DieAreaCm2 = 0.9 // CPU module share of the die
		d.Boron10PerCm2 = 4.17e14
		d.ControlFracFast = 0.30
		d.ControlFracThermal = 0.467
	case APUGPU:
		d.Name = "APU-GPU"
		d.DieAreaCm2 = 1.3 // GCN GPU share of the die
		d.Boron10PerCm2 = 4.76e14
		d.ControlFracFast = 0.35
		d.ControlFracThermal = 0.551
	default:
		d.Name = "APU-CPU+GPU"
		d.DieAreaCm2 = 2.45 // whole die active
		d.Boron10PerCm2 = 5.06e14
		d.ControlFracFast = 0.35
		d.ControlFracThermal = 0.559
	}
	return d
}

// FPGA is the Xilinx Zynq-7000, 28nm TSMC. Errors manifest through
// persistent configuration-memory corruption; DUEs are very rare because
// there is no OS or control flow to hang (§V). Target SDC ratio: 2.33.
func FPGA() *Device {
	return &Device{
		Name:               "Zynq7000",
		Vendor:             "Xilinx",
		Process:            "28nm TSMC",
		Tech:               CMOSPlanar,
		Kind:               KindFPGA,
		DieAreaCm2:         1.0,
		SensitiveDepthUm:   1.0,
		SensitiveFraction:  1e-3,
		Boron10PerCm2:      3.15e14,
		QcritFC:            5.0,
		QcritSigmaFC:       1.0,
		ControlFracFast:    0.01,
		ControlFracThermal: 0.01,
		MBUProb:            0.15,
		ConfigMemory:       true,
	}
}

// FPGAPrecision returns the Zynq model with the MNIST network implemented
// in single- or double-precision arithmetic. The double version occupies
// about twice the fabric resources; since the neutron cross section tracks
// the exercised circuit area, its fast cross section doubles — and the
// companion study measured its *thermal* cross section almost 4× the
// single version's, i.e. the extra DSP/CLB resources are disproportionately
// boron-exposed. We model that as exercised area ×2 and boron areal
// density ×2.
func FPGAPrecision(double bool) *Device {
	d := FPGA()
	if !double {
		d.Name = "Zynq7000-single"
		return d
	}
	d.Name = "Zynq7000-double"
	d.DieAreaCm2 *= 2
	d.Boron10PerCm2 *= 2
	return d
}

// BoronFree returns a copy of d with all ¹⁰B removed — the "purified
// boron" counterfactual the paper discusses (§III motivation): such a
// device is immune to thermal neutrons.
func BoronFree(d *Device) *Device {
	cp := *d
	cp.Name = d.Name + "-depleted-B"
	cp.Boron10PerCm2 = 0
	return &cp
}

// WithBPSG returns a copy of d with the historical borophosphosilicate
// glass layer re-added, multiplying the boron load (baumann1995boron
// reported ≈8× error rates; we add the boron that produces roughly that).
func WithBPSG(d *Device) *Device {
	cp := *d
	cp.Name = d.Name + "+BPSG"
	// A BPSG film holds far more ¹⁰B than modern residual doping.
	cp.Boron10PerCm2 = d.Boron10PerCm2 * 8
	return &cp
}

// Sample returns a manufacturing sample of the device: the same design
// with part-to-part process variation applied as a lognormal factor on the
// sensitive fraction. The companion studies report ~10% cross-section
// variation among samples of the same device, which a sigma of 0.1
// reproduces.
func Sample(d *Device, s *rng.Stream) *Device {
	cp := *d
	cp.SensitiveFraction *= s.LogNormal(0, 0.1)
	if cp.SensitiveFraction > 1 {
		cp.SensitiveFraction = 1
	}
	return &cp
}

// All returns every catalog device including the three APU configurations.
func All() []*Device {
	return []*Device{
		XeonPhi(), K20(), TitanX(), TitanV(),
		APU(APUCPU), APU(APUGPU), APU(APUCPUGPU),
		FPGA(),
	}
}
