package device

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTripAllCatalogDevices(t *testing.T) {
	for _, d := range All() {
		var buf bytes.Buffer
		if err := Save(&buf, d); err != nil {
			t.Fatalf("%s: save: %v", d.Name, err)
		}
		back, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s: load: %v", d.Name, err)
		}
		if *back != *d {
			t.Errorf("%s: round trip changed the model:\n%+v\nvs\n%+v", d.Name, back, d)
		}
	}
}

func TestLoadRejectsInvalidModels(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"garbage", `not json`},
		{"unknown field", `{"name":"x","technology":"FinFET","kind":"GPU","dieAreaCm2":1,"sensitiveDepthUm":1,"sensitiveFraction":0.001,"qcritFC":1,"surprise":true}`},
		{"bad technology", `{"name":"x","technology":"vacuum tubes","kind":"GPU","dieAreaCm2":1,"sensitiveDepthUm":1,"sensitiveFraction":0.001,"qcritFC":1}`},
		{"bad kind", `{"name":"x","technology":"FinFET","kind":"toaster","dieAreaCm2":1,"sensitiveDepthUm":1,"sensitiveFraction":0.001,"qcritFC":1}`},
		{"fails validation", `{"name":"","technology":"FinFET","kind":"GPU","dieAreaCm2":1,"sensitiveDepthUm":1,"sensitiveFraction":0.001,"qcritFC":1}`},
		{"zero area", `{"name":"x","technology":"FinFET","kind":"GPU","dieAreaCm2":0,"sensitiveDepthUm":1,"sensitiveFraction":0.001,"qcritFC":1}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(tc.json)); err == nil {
				t.Error("invalid model accepted")
			}
		})
	}
}

func TestLoadMinimalCustomDevice(t *testing.T) {
	in := `{
  "name": "MyASIC",
  "technology": "FinFET",
  "kind": "accelerator",
  "dieAreaCm2": 2.5,
  "sensitiveDepthUm": 0.3,
  "sensitiveFraction": 0.001,
  "boron10PerCm2": 5e13,
  "qcritFC": 1.2,
  "qcritSigmaFC": 0.3,
  "controlFracFast": 0.2,
  "controlFracThermal": 0.3,
  "mbuProb": 0.1
}`
	d, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "MyASIC" || d.Tech != FinFET || d.Kind != KindAccelerator {
		t.Errorf("parsed wrong: %+v", d)
	}
	if d.Boron10PerCm2 != 5e13 {
		t.Errorf("boron = %v", d.Boron10PerCm2)
	}
}

func TestSaveValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, nil); err == nil {
		t.Error("nil device accepted")
	}
	bad := K20()
	bad.DieAreaCm2 = -1
	if err := Save(&buf, bad); err == nil {
		t.Error("invalid device accepted")
	}
}

func TestSaveIsHumanReadable(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, FPGA()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"name": "Zynq7000"`, `"technology": "planar CMOS"`, `"configMemory": true`} {
		if !strings.Contains(out, want) {
			t.Errorf("serialized form missing %q:\n%s", want, out)
		}
	}
}
