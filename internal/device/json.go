package device

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// deviceJSON is the on-disk schema for custom device models. All physical
// fields mirror Device; enums are serialized as their display names so the
// files stay human-editable.
type deviceJSON struct {
	Name               string  `json:"name"`
	Vendor             string  `json:"vendor,omitempty"`
	Process            string  `json:"process,omitempty"`
	Technology         string  `json:"technology"`
	Kind               string  `json:"kind"`
	DieAreaCm2         float64 `json:"dieAreaCm2"`
	SensitiveDepthUm   float64 `json:"sensitiveDepthUm"`
	SensitiveFraction  float64 `json:"sensitiveFraction"`
	Boron10PerCm2      float64 `json:"boron10PerCm2"`
	QcritFC            float64 `json:"qcritFC"`
	QcritSigmaFC       float64 `json:"qcritSigmaFC"`
	ControlFracFast    float64 `json:"controlFracFast"`
	ControlFracThermal float64 `json:"controlFracThermal"`
	MBUProb            float64 `json:"mbuProb"`
	ConfigMemory       bool    `json:"configMemory,omitempty"`
}

var technologyNames = map[string]Technology{
	"planar CMOS":  CMOSPlanar,
	"FinFET":       FinFET,
	"3-D Tri-Gate": TriGate,
}

var kindNames = map[string]Kind{
	"CPU":         KindCPU,
	"GPU":         KindGPU,
	"accelerator": KindAccelerator,
	"APU":         KindAPU,
	"FPGA":        KindFPGA,
}

// MarshalJSON serializes the device model.
func (d *Device) MarshalJSON() ([]byte, error) {
	return json.Marshal(deviceJSON{
		Name:               d.Name,
		Vendor:             d.Vendor,
		Process:            d.Process,
		Technology:         d.Tech.String(),
		Kind:               d.Kind.String(),
		DieAreaCm2:         d.DieAreaCm2,
		SensitiveDepthUm:   d.SensitiveDepthUm,
		SensitiveFraction:  d.SensitiveFraction,
		Boron10PerCm2:      d.Boron10PerCm2,
		QcritFC:            d.QcritFC,
		QcritSigmaFC:       d.QcritSigmaFC,
		ControlFracFast:    d.ControlFracFast,
		ControlFracThermal: d.ControlFracThermal,
		MBUProb:            d.MBUProb,
		ConfigMemory:       d.ConfigMemory,
	})
}

// UnmarshalJSON deserializes and validates a device model.
func (d *Device) UnmarshalJSON(data []byte) error {
	var raw deviceJSON
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return fmt.Errorf("device: parse: %w", err)
	}
	tech, ok := technologyNames[raw.Technology]
	if !ok {
		return fmt.Errorf("device: unknown technology %q (want one of: planar CMOS, FinFET, 3-D Tri-Gate)", raw.Technology)
	}
	kind, ok := kindNames[raw.Kind]
	if !ok {
		return fmt.Errorf("device: unknown kind %q (want one of: CPU, GPU, accelerator, APU, FPGA)", raw.Kind)
	}
	*d = Device{
		Name:               raw.Name,
		Vendor:             raw.Vendor,
		Process:            raw.Process,
		Tech:               tech,
		Kind:               kind,
		DieAreaCm2:         raw.DieAreaCm2,
		SensitiveDepthUm:   raw.SensitiveDepthUm,
		SensitiveFraction:  raw.SensitiveFraction,
		Boron10PerCm2:      raw.Boron10PerCm2,
		QcritFC:            raw.QcritFC,
		QcritSigmaFC:       raw.QcritSigmaFC,
		ControlFracFast:    raw.ControlFracFast,
		ControlFracThermal: raw.ControlFracThermal,
		MBUProb:            raw.MBUProb,
		ConfigMemory:       raw.ConfigMemory,
	}
	return d.Validate()
}

// Load reads a device model from JSON.
func Load(r io.Reader) (*Device, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("device: read: %w", err)
	}
	d := &Device{}
	if err := d.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return d, nil
}

// Save writes the device model as indented JSON.
func Save(w io.Writer, d *Device) error {
	if d == nil {
		return fmt.Errorf("device: nil device")
	}
	if err := d.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
