package device

import (
	"math"
	"testing"

	"neutronsim/internal/physics"
	"neutronsim/internal/rng"
	"neutronsim/internal/units"
)

func TestCatalogValidates(t *testing.T) {
	for _, d := range All() {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	base := func() *Device { return K20() }
	tests := []struct {
		name   string
		mutate func(*Device)
	}{
		{"empty name", func(d *Device) { d.Name = "" }},
		{"zero area", func(d *Device) { d.DieAreaCm2 = 0 }},
		{"zero depth", func(d *Device) { d.SensitiveDepthUm = 0 }},
		{"bad sensitive fraction", func(d *Device) { d.SensitiveFraction = 2 }},
		{"negative boron", func(d *Device) { d.Boron10PerCm2 = -1 }},
		{"zero qcrit", func(d *Device) { d.QcritFC = 0 }},
		{"control frac > 1", func(d *Device) { d.ControlFracFast = 1.5 }},
		{"thermal control frac < 0", func(d *Device) { d.ControlFracThermal = -0.1 }},
		{"MBU prob > 1", func(d *Device) { d.MBUProb = 2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := base()
			tt.mutate(d)
			if err := d.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestInteractionProbabilityBands(t *testing.T) {
	d := K20()
	thermal := d.InteractionProbability(0.0253)
	fast := d.InteractionProbability(10 * units.MeV)
	epi := d.InteractionProbability(100)
	if thermal <= 0 || fast <= 0 {
		t.Fatal("thermal and fast interaction probabilities must be positive")
	}
	// Epithermal capture follows 1/v: far below thermal.
	if epi >= thermal/10 {
		t.Errorf("epithermal prob %v should be well below thermal %v", epi, thermal)
	}
	// Probabilities are tiny (devices are thin targets).
	if thermal > 1e-6 || fast > 1e-6 {
		t.Errorf("interaction probabilities implausibly large: %v %v", thermal, fast)
	}
}

func TestBoronFreeDeviceThermallyImmune(t *testing.T) {
	d := BoronFree(K20())
	if got := d.InteractionProbability(0.0253); got != 0 {
		t.Errorf("boron-free device has thermal interaction probability %v", got)
	}
	if got := d.InteractionProbability(10 * units.MeV); got == 0 {
		t.Error("boron-free device must keep its fast sensitivity")
	}
	s := rng.New(1)
	for i := 0; i < 200000; i++ {
		if _, ok := d.TryUpset(0.0253, s); ok {
			t.Fatal("boron-free device upset by a thermal neutron")
		}
	}
}

func TestWithBPSGMultipliesBoron(t *testing.T) {
	base := K20()
	bpsg := WithBPSG(base)
	if bpsg.Boron10PerCm2 != 8*base.Boron10PerCm2 {
		t.Errorf("BPSG boron = %v, want 8x %v", bpsg.Boron10PerCm2, base.Boron10PerCm2)
	}
	ratio := bpsg.InteractionProbability(0.0253) / base.InteractionProbability(0.0253)
	if math.Abs(ratio-8) > 1e-9 {
		t.Errorf("BPSG thermal interaction ratio = %v, want 8", ratio)
	}
}

func TestTryUpsetProducesClassifiedFaults(t *testing.T) {
	d := K20()
	s := rng.New(2)
	// Force interactions by boosting sensitivity for the unit test.
	d.SensitiveFraction = 1
	d.Boron10PerCm2 *= 1e6
	targets := map[Target]int{}
	secondaries := map[physics.SecondaryKind]int{}
	upsets := 0
	for i := 0; i < 20000; i++ {
		f, ok := d.TryUpset(0.0253, s)
		if !ok {
			continue
		}
		upsets++
		if f.Band != physics.BandThermal {
			t.Fatalf("thermal neutron produced %v-band fault", f.Band)
		}
		if f.Bits < 1 {
			t.Fatalf("fault with %d bits", f.Bits)
		}
		targets[f.Target]++
		secondaries[f.Secondary]++
	}
	if upsets == 0 {
		t.Fatal("no upsets produced")
	}
	if targets[TargetControl] == 0 || targets[TargetMemory] == 0 || targets[TargetDatapath] == 0 {
		t.Errorf("expected a mix of targets, got %v", targets)
	}
	if secondaries[physics.Alpha] == 0 || secondaries[physics.Lithium7] == 0 {
		t.Errorf("thermal upsets should come from alphas and 7Li: %v", secondaries)
	}
}

func TestFPGAFaultsTargetConfig(t *testing.T) {
	d := FPGA()
	d.SensitiveFraction = 1
	d.Boron10PerCm2 *= 1e6
	s := rng.New(3)
	config, control := 0, 0
	for i := 0; i < 20000; i++ {
		if f, ok := d.TryUpset(0.0253, s); ok {
			switch f.Target {
			case TargetConfig:
				config++
			case TargetControl:
				control++
			}
		}
	}
	if config == 0 {
		t.Fatal("FPGA produced no configuration-memory faults")
	}
	if control > config/10 {
		t.Errorf("FPGA control faults %d should be rare vs config %d", control, config)
	}
}

func TestControlFractionPerBand(t *testing.T) {
	d := APU(APUCPUGPU) // cfFast 0.35, cfThermal 0.533
	s := rng.New(4)
	// Drive the post-interaction stage directly so both bands get large
	// upset samples (fast interactions are rare even at full sensitivity).
	frac := func(e units.Energy) float64 {
		control, total := 0, 0
		for i := 0; i < 40000; i++ {
			if f, ok := d.upsetFromInteraction(e, s); ok {
				total++
				if f.Target == TargetControl {
					control++
				}
			}
		}
		if total == 0 {
			t.Fatalf("no upsets at %v", e)
		}
		return float64(control) / float64(total)
	}
	th := frac(0.0253)
	fa := frac(30 * units.MeV)
	if math.Abs(th-0.533) > 0.03 {
		t.Errorf("thermal control fraction = %v, want 0.533", th)
	}
	if math.Abs(fa-0.35) > 0.03 {
		t.Errorf("fast control fraction = %v, want 0.35", fa)
	}
}

func TestMBUBits(t *testing.T) {
	d := TitanV()
	d.SensitiveFraction = 1
	d.Boron10PerCm2 *= 1e6
	s := rng.New(5)
	multi, total := 0, 0
	for i := 0; i < 30000; i++ {
		if f, ok := d.TryUpset(0.0253, s); ok {
			total++
			if f.Bits > 1 {
				multi++
				if f.Bits < 2 || f.Bits > 4 {
					t.Fatalf("MBU size %d out of range", f.Bits)
				}
			}
		}
	}
	got := float64(multi) / float64(total)
	if math.Abs(got-d.MBUProb) > 0.02 {
		t.Errorf("MBU fraction = %v, want %v", got, d.MBUProb)
	}
}

func TestUpsetCrossSectionValidation(t *testing.T) {
	d := K20()
	s := rng.New(6)
	if _, err := d.UpsetCrossSection(nil, 10, s); err == nil {
		t.Error("nil sampler accepted")
	}
	if _, err := d.UpsetCrossSection(func(*rng.Stream) units.Energy { return 1 }, 0, s); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestUpsetCrossSectionScalesWithBoron(t *testing.T) {
	s := rng.New(7)
	thermal := func(*rng.Stream) units.Energy { return 0.0253 }
	d1 := K20()
	d2 := K20()
	d2.Boron10PerCm2 *= 4
	s1, err := d1.UpsetCrossSection(thermal, 300000, s)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := d2.UpsetCrossSection(thermal, 300000, s)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(s2) / float64(s1)
	if math.Abs(ratio-4) > 0.5 {
		t.Errorf("thermal cross section should scale linearly with boron: ratio %v", ratio)
	}
}

func TestQcritOrdersThermalSensitivity(t *testing.T) {
	// With equal boron, a lower-Qcrit device upsets more per interaction.
	s := rng.New(8)
	thermal := func(*rng.Stream) units.Energy { return 0.0253 }
	lo := K20()
	lo.QcritFC, lo.QcritSigmaFC = 1, 0.2
	hi := K20()
	hi.QcritFC, hi.QcritSigmaFC = 20, 2
	sLo, _ := lo.UpsetCrossSection(thermal, 200000, s)
	sHi, _ := hi.UpsetCrossSection(thermal, 200000, s)
	if sLo <= sHi {
		t.Errorf("low-Qcrit device should be more sensitive: %v vs %v", sLo, sHi)
	}
}

func TestStringers(t *testing.T) {
	if CMOSPlanar.String() != "planar CMOS" || FinFET.String() != "FinFET" ||
		TriGate.String() != "3-D Tri-Gate" || Technology(0).String() != "unknown" {
		t.Error("technology names wrong")
	}
	if KindGPU.String() != "GPU" || KindFPGA.String() != "FPGA" || Kind(0).String() != "unknown" {
		t.Error("kind names wrong")
	}
	if TargetControl.String() != "control" || TargetConfig.String() != "config" ||
		TargetMemory.String() != "memory" || TargetDatapath.String() != "datapath" ||
		Target(0).String() != "unknown" {
		t.Error("target names wrong")
	}
	if APUCPU.String() != "CPU" || APUGPU.String() != "GPU" ||
		APUCPUGPU.String() != "CPU+GPU" || APUConfig(0).String() != "unknown" {
		t.Error("APU config names wrong")
	}
}

func TestCatalogDistinctNames(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range All() {
		if seen[d.Name] {
			t.Errorf("duplicate device name %q", d.Name)
		}
		seen[d.Name] = true
	}
}

func TestFinFETShallowerThanPlanar(t *testing.T) {
	if TitanX().SensitiveDepthUm >= K20().SensitiveDepthUm {
		t.Error("FinFET charge-collection depth should be below planar CMOS")
	}
}

func TestSampleVariation(t *testing.T) {
	s := rng.New(30)
	base := K20()
	var ratios []float64
	for i := 0; i < 2000; i++ {
		sample := Sample(base, s)
		if err := sample.Validate(); err != nil {
			t.Fatal(err)
		}
		ratios = append(ratios, sample.SensitiveFraction/base.SensitiveFraction)
	}
	mean, sd := 0.0, 0.0
	for _, r := range ratios {
		mean += r
	}
	mean /= float64(len(ratios))
	for _, r := range ratios {
		sd += (r - mean) * (r - mean)
	}
	sd = math.Sqrt(sd / float64(len(ratios)))
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("sample mean ratio = %v, want ~1", mean)
	}
	// ~10% part-to-part spread, as the companion studies report.
	if sd < 0.07 || sd > 0.14 {
		t.Errorf("sample spread = %v, want ~0.10", sd)
	}
}

func TestSampleNeverExceedsFullSensitivity(t *testing.T) {
	s := rng.New(31)
	d := K20()
	d.SensitiveFraction = 0.95
	for i := 0; i < 2000; i++ {
		if Sample(d, s).SensitiveFraction > 1 {
			t.Fatal("sample sensitivity exceeded 1")
		}
	}
}
