package device

import (
	"math"
	"testing"

	"neutronsim/internal/rng"
	"neutronsim/internal/spectrum"
	"neutronsim/internal/units"
)

func beamSamplers() (fast, thermal func(*rng.Stream) units.Energy) {
	chip := spectrum.ChipIR()
	rotax := spectrum.ROTAX()
	return func(s *rng.Stream) units.Energy { return chip.Sample(s) },
		func(s *rng.Stream) units.Energy { return rotax.Sample(s) }
}

// TestBakedBoronMatchesTargets re-verifies the calibration that produced
// the catalog's Boron10PerCm2 values: the measured fast:thermal ratio of
// every device must sit near its RatioTargets entry.
func TestBakedBoronMatchesTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration verification is slow")
	}
	fast, thermal := beamSamplers()
	s := rng.New(99)
	for _, d := range All() {
		target := RatioTargets[d.Name]
		if target == 0 {
			t.Fatalf("no ratio target for %s", d.Name)
		}
		got, err := MeasuredRatio(d, fast, thermal, 150000, s)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if math.Abs(got-target)/target > 0.20 {
			t.Errorf("%s: measured ratio %.2f vs target %.2f", d.Name, got, target)
		}
	}
}

func TestCalibrateConverges(t *testing.T) {
	fast, thermal := beamSamplers()
	s := rng.New(100)
	d := K20()
	d.Boron10PerCm2 = 1e12 // deliberately far off
	if err := Calibrate(d, 2.18, fast, thermal, 80000, 0.10, s); err != nil {
		t.Fatal(err)
	}
	got, err := MeasuredRatio(d, fast, thermal, 150000, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.18)/2.18 > 0.25 {
		t.Errorf("post-calibration ratio %v, want ~2.18", got)
	}
}

func TestCalibrateSeedsBoronFreeDevice(t *testing.T) {
	fast, thermal := beamSamplers()
	s := rng.New(101)
	d := BoronFree(K20())
	if err := Calibrate(d, 3, fast, thermal, 60000, 0.15, s); err != nil {
		t.Fatal(err)
	}
	if d.Boron10PerCm2 <= 0 {
		t.Error("calibration left device boron-free")
	}
}

func TestCalibrateValidation(t *testing.T) {
	fast, thermal := beamSamplers()
	s := rng.New(102)
	if err := Calibrate(K20(), 0, fast, thermal, 1000, 0.1, s); err == nil {
		t.Error("zero target ratio accepted")
	}
}

func TestMeasuredRatioBoronFreeErrors(t *testing.T) {
	fast, thermal := beamSamplers()
	s := rng.New(103)
	if _, err := MeasuredRatio(BoronFree(K20()), fast, thermal, 10000, s); err == nil {
		t.Error("boron-free ratio should error (division by zero thermal sigma)")
	}
}

// TestXeonPhiLeastThermallySensitive encodes the paper's headline ordering:
// the Xeon Phi has by far the weakest thermal response relative to fast.
func TestXeonPhiLeastThermallySensitive(t *testing.T) {
	if testing.Short() {
		t.Skip("slow MC comparison")
	}
	fast, thermal := beamSamplers()
	s := rng.New(104)
	phi, err := MeasuredRatio(XeonPhi(), fast, thermal, 120000, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []*Device{K20(), TitanX(), APU(APUCPUGPU), FPGA()} {
		r, err := MeasuredRatio(d, fast, thermal, 120000, s)
		if err != nil {
			t.Fatal(err)
		}
		if r >= phi {
			t.Errorf("%s ratio %.2f should be below XeonPhi's %.2f", d.Name, r, phi)
		}
	}
}
