package device

import (
	"errors"
	"fmt"

	"neutronsim/internal/rng"
	"neutronsim/internal/units"
)

// RatioTargets lists the fast:thermal total-upset cross-section ratios the
// calibration aims for, derived from the paper's Fig. cs_ratio values by
// separating the published SDC and DUE ratios with the per-band control
// fractions (see catalog.go):
//
//	R_SDC = Rt × (1-cfFast)/(1-cfThermal),  R_DUE = Rt × cfFast/cfThermal.
//
// Solving both published ratios for each device yields Rt and cfThermal.
// A second calibration round against full campaign pipelines (workload
// masking included) refined the first-round values; see catalog.go.
var RatioTargets = map[string]float64{
	"XeonPhi":     8.46,
	"K20":         2.25,
	"TitanX":      3.70,
	"TitanV":      2.68,
	"APU-CPU":     1.98,
	"APU-GPU":     1.75,
	"APU-CPU+GPU": 1.64,
	"Zynq7000":    2.59,
}

// MeasuredRatio estimates the device's fast:thermal total upset
// cross-section ratio by Monte Carlo against the two beam energy samplers
// (typically ChipIR and ROTAX spectra).
func MeasuredRatio(d *Device, fastBeam, thermalBeam func(*rng.Stream) units.Energy, n int, s *rng.Stream) (float64, error) {
	sigmaF, err := d.UpsetCrossSection(fastBeam, n, s)
	if err != nil {
		return 0, err
	}
	sigmaT, err := d.UpsetCrossSection(thermalBeam, n, s)
	if err != nil {
		return 0, err
	}
	if sigmaT <= 0 {
		return 0, errors.New("device: zero thermal cross section (boron-free device?)")
	}
	return float64(sigmaF) / float64(sigmaT), nil
}

// Calibrate adjusts d.Boron10PerCm2 in place until the measured
// fast:thermal ratio matches targetRatio within tol (relative). Because the
// thermal cross section is linear in the boron areal density, a few fixed-
// point iterations converge. This mirrors the paper's methodology: the
// boron content is unknown, so it is inferred from the two beam
// measurements.
func Calibrate(d *Device, targetRatio float64, fastBeam, thermalBeam func(*rng.Stream) units.Energy, n int, tol float64, s *rng.Stream) error {
	if targetRatio <= 0 {
		return errors.New("device: target ratio must be positive")
	}
	if d.Boron10PerCm2 <= 0 {
		d.Boron10PerCm2 = 1e14 // seed for boron-free starting points
	}
	if tol <= 0 {
		tol = 0.05
	}
	for iter := 0; iter < 12; iter++ {
		ratio, err := MeasuredRatio(d, fastBeam, thermalBeam, n, s)
		if err != nil {
			return fmt.Errorf("calibrate %s: %w", d.Name, err)
		}
		rel := ratio/targetRatio - 1
		if rel < tol && rel > -tol {
			return nil
		}
		// ratio ∝ 1/boron (to first order): scale boron by ratio/target.
		d.Boron10PerCm2 *= ratio / targetRatio
	}
	return fmt.Errorf("calibrate %s: did not converge to ratio %.3g", d.Name, targetRatio)
}
