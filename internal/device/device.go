// Package device models the radiation sensitivity of the computing devices
// the paper irradiated: Intel Xeon Phi, NVIDIA K20/TitanX/TitanV, the AMD
// APU, and a Xilinx Zynq FPGA.
//
// The model is physical rather than tabular: a neutron crossing the die
// interacts either by ¹⁰B(n,α)⁷Li capture (thermal/epithermal, scaling with
// the device's boron areal density) or by fast-neutron silicon interactions
// (elastic recoils and (n,α)/(n,p) reactions). The charged secondary
// deposits charge in a sensitive node; an upset occurs when that charge
// exceeds the device's critical charge. Boron content per device is the
// calibration knob — exactly the quantity the paper says is proprietary and
// can only be inferred by beam experiments.
package device

import (
	"errors"
	"fmt"

	"neutronsim/internal/physics"
	"neutronsim/internal/rng"
	"neutronsim/internal/units"
)

// Technology is the transistor technology, which the paper correlates with
// thermal sensitivity (FinFET devices appear less thermally susceptible
// than planar CMOS, §V).
type Technology int

// Transistor technologies.
const (
	CMOSPlanar Technology = iota + 1
	FinFET
	TriGate
)

// String names the technology.
func (t Technology) String() string {
	switch t {
	case CMOSPlanar:
		return "planar CMOS"
	case FinFET:
		return "FinFET"
	case TriGate:
		return "3-D Tri-Gate"
	default:
		return "unknown"
	}
}

// Kind is the device class.
type Kind int

// Device kinds.
const (
	KindCPU Kind = iota + 1
	KindGPU
	KindAccelerator
	KindAPU
	KindFPGA
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindCPU:
		return "CPU"
	case KindGPU:
		return "GPU"
	case KindAccelerator:
		return "accelerator"
	case KindAPU:
		return "APU"
	case KindFPGA:
		return "FPGA"
	default:
		return "unknown"
	}
}

// Target is the architectural structure a fault lands in; it determines
// whether the fault can become an SDC (data) or a DUE (control), or a
// persistent circuit change (FPGA configuration memory).
type Target int

// Fault targets.
const (
	TargetDatapath Target = iota + 1
	TargetMemory
	TargetControl
	TargetConfig
)

// String names the target.
func (t Target) String() string {
	switch t {
	case TargetDatapath:
		return "datapath"
	case TargetMemory:
		return "memory"
	case TargetControl:
		return "control"
	case TargetConfig:
		return "config"
	default:
		return "unknown"
	}
}

// Fault is one radiation-induced upset emitted by the device model.
type Fault struct {
	Band      physics.EnergyBand
	Target    Target
	Secondary physics.SecondaryKind
	ChargeFC  float64
	Bits      int // number of bits upset (>=1; >1 is an MBU)
}

// Device is a physical sensitivity model of one chip.
type Device struct {
	Name    string
	Vendor  string
	Process string
	Tech    Technology
	Kind    Kind

	// DieAreaCm2 is the exposed silicon area.
	DieAreaCm2 float64
	// SensitiveDepthUm is the charge-collection depth; thinner for FinFET.
	SensitiveDepthUm float64
	// SensitiveFraction is the fraction of interactions that occur close
	// enough to a sensitive node to matter (layout density factor).
	SensitiveFraction float64
	// Boron10PerCm2 is the ¹⁰B areal density — the proprietary quantity
	// the paper infers from beam tests. Zero means boron-free (immune to
	// thermal neutrons).
	Boron10PerCm2 float64
	// QcritFC and QcritSigmaFC describe the critical-charge distribution.
	QcritFC      float64
	QcritSigmaFC float64
	// ControlFracFast and ControlFracThermal give the probability that a
	// fast/thermal fault lands in control logic (DUE path). They differ
	// because ¹⁰B is not uniformly distributed across chip structures
	// (the paper's APU discussion, §V).
	ControlFracFast    float64
	ControlFracThermal float64
	// MBUProb is the probability an upset flips more than one bit.
	MBUProb float64
	// ConfigMemory marks SRAM-FPGA-style persistent configuration faults.
	ConfigMemory bool
}

// Validate checks the model parameters.
func (d *Device) Validate() error {
	switch {
	case d.Name == "":
		return errors.New("device: missing name")
	case d.DieAreaCm2 <= 0:
		return fmt.Errorf("device %s: non-positive die area", d.Name)
	case d.SensitiveDepthUm <= 0:
		return fmt.Errorf("device %s: non-positive sensitive depth", d.Name)
	case d.SensitiveFraction <= 0 || d.SensitiveFraction > 1:
		return fmt.Errorf("device %s: sensitive fraction out of (0,1]", d.Name)
	case d.Boron10PerCm2 < 0:
		return fmt.Errorf("device %s: negative boron density", d.Name)
	case d.QcritFC <= 0:
		return fmt.Errorf("device %s: non-positive Qcrit", d.Name)
	case d.ControlFracFast < 0 || d.ControlFracFast > 1 ||
		d.ControlFracThermal < 0 || d.ControlFracThermal > 1:
		return fmt.Errorf("device %s: control fractions out of [0,1]", d.Name)
	case d.MBUProb < 0 || d.MBUProb > 1:
		return fmt.Errorf("device %s: MBU probability out of [0,1]", d.Name)
	}
	return nil
}

// Effective fast-interaction microscopic cross section for upset-capable
// silicon interactions (elastic + reaction channels), in barns.
const fastEffectiveSigmaBarns = 1.5

// siliconAtomsPerCm3 is the atomic density of silicon.
const siliconAtomsPerCm3 = 4.996e22

// siliconArealDensity returns the Si atoms/cm² within the charge-collection
// depth.
func (d *Device) siliconArealDensity() float64 {
	return siliconAtomsPerCm3 * d.SensitiveDepthUm * 1e-4
}

// InteractionProbability returns the probability that a single neutron of
// energy e crossing the die produces a charged secondary near a sensitive
// node (before the critical-charge test).
func (d *Device) InteractionProbability(e units.Energy) float64 {
	band := physics.Classify(e)
	var p float64
	switch band {
	case physics.BandThermal, physics.BandEpithermal:
		// 1/v capture on the boron content.
		p = d.Boron10PerCm2 * float64(physics.Boron10Capture(e))
	case physics.BandFast:
		p = d.siliconArealDensity() * fastEffectiveSigmaBarns * float64(units.Barn)
	}
	return p * d.SensitiveFraction
}

// TryUpset simulates one neutron of energy e crossing the die. It returns
// the fault and true if the neutron produced an upset.
func (d *Device) TryUpset(e units.Energy, s *rng.Stream) (Fault, bool) {
	if !s.Bernoulli(d.InteractionProbability(e)) {
		return Fault{}, false
	}
	return d.upsetFromInteraction(e, s)
}

// InteractionUpset runs the charge-deposition and classification stage for
// a neutron of energy e that is already known to have interacted in the
// die. Campaign harnesses that sample interactions directly (rather than
// tracking every beam neutron) use this entry point.
func (d *Device) InteractionUpset(e units.Energy, s *rng.Stream) (Fault, bool) {
	return d.upsetFromInteraction(e, s)
}

// upsetFromInteraction runs the charge-deposition and classification stage
// for a neutron already known to have interacted.
func (d *Device) upsetFromInteraction(e units.Energy, s *rng.Stream) (Fault, bool) {
	band := physics.Classify(e)
	var sec physics.Secondary
	switch band {
	case physics.BandThermal, physics.BandEpithermal:
		// Capture products fly back-to-back; one of the two ions
		// traverses the nearby sensitive node. The stack buffer keeps
		// this branch off the heap — it runs once per interaction in
		// every beam campaign.
		var buf [physics.MaxCaptureProducts]physics.Secondary
		products := physics.AppendBoronCaptureProducts(buf[:0], s)
		charged := products[:2] // alpha and 7Li
		sec = charged[s.Intn(2)]
	default:
		sec = physics.FastSiliconSecondary(e, s)
	}
	q := physics.DepositedCharge(sec, s)
	qcrit := s.NormalMeanStd(d.QcritFC, d.QcritSigmaFC)
	if qcrit < 0.1 {
		qcrit = 0.1
	}
	if q < qcrit {
		return Fault{}, false
	}
	f := Fault{Band: band, Secondary: sec.Kind, ChargeFC: q, Bits: 1}
	cf := d.ControlFracFast
	if band != physics.BandFast {
		cf = d.ControlFracThermal
	}
	switch {
	case s.Bernoulli(cf):
		f.Target = TargetControl
	case d.ConfigMemory:
		f.Target = TargetConfig
	case s.Bool():
		f.Target = TargetMemory
	default:
		f.Target = TargetDatapath
	}
	if s.Bernoulli(d.MBUProb) {
		f.Bits = 2 + s.Intn(3)
	}
	return f, true
}

// UpsetCrossSection estimates the device's upset cross section (cm² per
// device, before any workload masking) against an energy sampler, using n
// Monte Carlo energies. This is the calibration estimator: it measures
// sigma = A × E[p_interact(E) × P(upset | interaction, E)].
func (d *Device) UpsetCrossSection(sample func(*rng.Stream) units.Energy, n int, s *rng.Stream) (units.CrossSection, error) {
	if n <= 0 {
		return 0, errors.New("device: sample count must be positive")
	}
	if sample == nil {
		return 0, errors.New("device: nil energy sampler")
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		e := sample(s)
		p := d.InteractionProbability(e)
		if p == 0 {
			continue
		}
		if _, ok := d.upsetFromInteraction(e, s); ok {
			sum += p
		}
	}
	return units.CrossSection(sum / float64(n) * d.DieAreaCm2), nil
}
