package spectrum

import (
	"math"
	"testing"

	"neutronsim/internal/physics"
	"neutronsim/internal/rng"
	"neutronsim/internal/units"
)

func TestChipIRFluxes(t *testing.T) {
	c := ChipIR()
	if got := c.FluxInBand(physics.BandThermal); got != ChipIRThermalFlux {
		t.Errorf("thermal flux = %v, want %v", got, ChipIRThermalFlux)
	}
	fast := c.FluxInBand(physics.BandFast)
	if fast < ChipIRFastFluxAbove10MeV {
		t.Errorf("fast flux %v below the quoted >10MeV flux %v", fast, ChipIRFastFluxAbove10MeV)
	}
	if c.TotalFlux() <= fast {
		t.Error("total flux must exceed fast flux")
	}
}

func TestChipIRFastDominated(t *testing.T) {
	c := ChipIR()
	if c.FluxInBand(physics.BandFast) < 10*c.FluxInBand(physics.BandThermal) {
		t.Error("ChipIR should be strongly fast-dominated")
	}
}

func TestROTAXThermalDominated(t *testing.T) {
	r := ROTAX()
	if got := r.TotalFlux(); got != ROTAXTotalFlux {
		t.Errorf("total = %v, want %v", got, ROTAXTotalFlux)
	}
	th := r.FluxInBand(physics.BandThermal)
	if float64(th)/float64(r.TotalFlux()) < 0.9 {
		t.Errorf("ROTAX thermal share = %v, want >= 0.9", float64(th)/float64(r.TotalFlux()))
	}
	if r.FluxInBand(physics.BandFast) != 0 {
		t.Error("ROTAX should carry no fast component")
	}
}

func TestSamplesStayInDeclaredBands(t *testing.T) {
	s := rng.New(1)
	for _, sp := range []*Mixture{ChipIR(), ROTAX()} {
		bands := EstimateBandFluxes(sp, 20000, s)
		for b, f := range bands {
			exact := sp.FluxInBand(b)
			if exact == 0 && f > 0 {
				t.Errorf("%s: sampled flux %v in band %v with no declared component", sp.Name(), f, b)
				continue
			}
			if exact > 0 {
				rel := math.Abs(float64(f)-float64(exact)) / float64(exact)
				if rel > 0.05 {
					t.Errorf("%s band %v: MC flux %v vs exact %v (rel %v)", sp.Name(), b, f, exact, rel)
				}
			}
		}
	}
}

func TestROTAXThermalPeakCold(t *testing.T) {
	// Liquid-methane moderation ⇒ spectrum peaks below room temperature.
	s := rng.New(2)
	r := ROTAX()
	var sum float64
	var n int
	for i := 0; i < 50000; i++ {
		e := r.Sample(s)
		if e.IsThermal() {
			sum += float64(e)
			n++
		}
	}
	mean := sum / float64(n)
	// Mean of Maxwellian = 1.5 kT; for 130 K kT = 0.0112 → mean ≈ 0.0168.
	if mean > 0.025 {
		t.Errorf("ROTAX thermal mean energy = %v eV; expected colder than room (0.038)", mean)
	}
}

func TestChipIRSpallationBump(t *testing.T) {
	s := rng.New(3)
	c := ChipIR()
	count := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if c.Sample(s) > 10*units.MeV {
			count++
		}
	}
	frac := float64(count) / n
	want := float64(ChipIRFastFluxAbove10MeV) / float64(c.TotalFlux())
	if math.Abs(frac-want) > 0.03 {
		t.Errorf(">10MeV sample fraction = %v, want ~%v", frac, want)
	}
}

func TestNewMixtureValidation(t *testing.T) {
	if _, err := NewMixture("x", nil); err == nil {
		t.Error("empty mixture accepted")
	}
	if _, err := NewMixture("x", []Component{{Flux: 0, Sample: MaxwellSampler(0.025), Band: physics.BandThermal}}); err == nil {
		t.Error("zero flux accepted")
	}
	if _, err := NewMixture("x", []Component{{Flux: 1, Band: physics.BandThermal}}); err == nil {
		t.Error("nil sampler accepted")
	}
}

func TestMixtureBandClamping(t *testing.T) {
	// A sampler that never produces energies in its declared band should
	// be clamped into the band rather than looping forever.
	m, err := NewMixture("degenerate", []Component{{
		Label:  "mislabeled",
		Band:   physics.BandThermal,
		Flux:   1,
		Sample: func(s *rng.Stream) units.Energy { return 5 * units.MeV },
	}})
	if err != nil {
		t.Fatal(err)
	}
	e := m.Sample(rng.New(4))
	if !e.IsThermal() {
		t.Errorf("clamped sample %v not thermal", e)
	}
}

func TestEnvironmentFluxes(t *testing.T) {
	env, err := NewEnvironment(EnvironmentConfig{
		Name:                  "NYC-like",
		FastFluxPerHour:       13,
		EpithermalFluxPerHour: 5,
		ThermalFluxPerHour:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := env.FluxInBand(physics.BandFast).PerHour(); math.Abs(got-13) > 1e-9 {
		t.Errorf("fast = %v/h, want 13", got)
	}
	if got := env.FluxInBand(physics.BandThermal).PerHour(); math.Abs(got-4) > 1e-9 {
		t.Errorf("thermal = %v/h, want 4", got)
	}
	if got := env.TotalFlux().PerHour(); math.Abs(got-22) > 1e-9 {
		t.Errorf("total = %v/h, want 22", got)
	}
}

func TestEnvironmentValidation(t *testing.T) {
	if _, err := NewEnvironment(EnvironmentConfig{}); err == nil {
		t.Error("all-zero environment accepted")
	}
}

func TestEnvironmentThermalOnly(t *testing.T) {
	env, err := NewEnvironment(EnvironmentConfig{ThermalFluxPerHour: 6})
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(5)
	for i := 0; i < 1000; i++ {
		if !env.Sample(s).IsThermal() {
			t.Fatal("thermal-only environment emitted non-thermal neutron")
		}
	}
	if env.Name() != "environment" {
		t.Errorf("default name = %q", env.Name())
	}
}

func TestMono(t *testing.T) {
	m, err := NewMono("14MeV", 14*units.MeV, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(6)
	if got := m.Sample(s); got != 14*units.MeV {
		t.Errorf("sample = %v", got)
	}
	if m.FluxInBand(physics.BandFast) != 1e6 {
		t.Error("fast band flux wrong")
	}
	if m.FluxInBand(physics.BandThermal) != 0 {
		t.Error("thermal band flux should be zero")
	}
}

func TestMonoValidation(t *testing.T) {
	if _, err := NewMono("bad", 0, 1); err == nil {
		t.Error("zero energy accepted")
	}
	if _, err := NewMono("bad", 1, 0); err == nil {
		t.Error("zero flux accepted")
	}
}

func TestLethargyHistogramShapes(t *testing.T) {
	s := rng.New(7)
	hChip, err := LethargyHistogram(ChipIR(), 100000, 60, s)
	if err != nil {
		t.Fatal(err)
	}
	hRotax, err := LethargyHistogram(ROTAX(), 100000, 60, s)
	if err != nil {
		t.Fatal(err)
	}
	// The ChipIR per-lethargy peak must sit in the fast region; ROTAX's in
	// the thermal region. This is the qualitative content of Fig. 2.
	peakBin := func(h interface {
		PerLethargy() []float64
		BinCenter(int) float64
	}) float64 {
		pl := h.PerLethargy()
		best, bestV := 0, 0.0
		for i, v := range pl {
			if v > bestV {
				best, bestV = i, v
			}
		}
		return h.BinCenter(best)
	}
	if e := peakBin(hChip); e < 1e6 {
		t.Errorf("ChipIR lethargy peak at %v eV, want fast region", e)
	}
	if e := peakBin(hRotax); e > 0.5 {
		t.Errorf("ROTAX lethargy peak at %v eV, want thermal region", e)
	}
}

func TestLethargyHistogramFluxConservation(t *testing.T) {
	s := rng.New(8)
	h, err := LethargyHistogram(ROTAX(), 20000, 40, s)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(h.Total()-float64(ROTAXTotalFlux)) / float64(ROTAXTotalFlux); rel > 1e-9 {
		t.Errorf("histogram total %v != flux %v", h.Total(), ROTAXTotalFlux)
	}
}

func TestLethargyHistogramValidation(t *testing.T) {
	if _, err := LethargyHistogram(ROTAX(), 0, 40, rng.New(1)); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestComponentsCopied(t *testing.T) {
	c := ChipIR()
	comps := c.Components()
	comps[0].Flux = 0
	if c.Components()[0].Flux == 0 {
		t.Error("Components() exposed internal slice")
	}
}

func TestWattSampler(t *testing.T) {
	s := rng.New(9)
	sample := WattSampler(0.988, 2.249, 1)
	for i := 0; i < 5000; i++ {
		if e := sample(s); e < 1*units.MeV {
			t.Fatalf("Watt sample %v below cutoff", e)
		}
	}
}

func TestOneOverESamplerBounds(t *testing.T) {
	s := rng.New(10)
	sample := OneOverESampler(0.5, 1e6)
	for i := 0; i < 5000; i++ {
		e := sample(s)
		if e < 0.5 || e > 1e6 {
			t.Fatalf("1/E sample %v out of range", e)
		}
	}
}

func TestLogNormalBumpTruncation(t *testing.T) {
	s := rng.New(11)
	sample := LogNormalBumpSampler(2e6, 2.0, units.FastThreshold, 10*units.MeV)
	for i := 0; i < 5000; i++ {
		e := sample(s)
		if e < units.FastThreshold || e > 10*units.MeV {
			t.Fatalf("bump sample %v escaped truncation", e)
		}
	}
}
