// Package spectrum models the neutron energy spectra the paper exposes
// devices to: the ChipIR atmospheric-like high-energy beamline, the ROTAX
// thermal beamline (Fig. 2), and scalable natural environments.
//
// A Spectrum couples a total flux with an energy distribution that can be
// sampled; beam campaigns draw neutron energies from it and accumulate
// fluence. Spectra built from band-pure components report exact per-band
// fluxes, which is what cross-section normalization needs.
package spectrum

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"math"
	"sort"
	"sync"

	"neutronsim/internal/physics"
	"neutronsim/internal/rng"
	"neutronsim/internal/stats"
	"neutronsim/internal/units"
)

// Spectrum is a neutron field with a total flux and a sampleable energy
// distribution.
type Spectrum interface {
	// Name identifies the spectrum (e.g. "ChipIR").
	Name() string
	// Sample draws one neutron energy.
	Sample(s *rng.Stream) units.Energy
	// TotalFlux is the all-energy flux.
	TotalFlux() units.Flux
	// FluxInBand is the flux restricted to one energy band.
	FluxInBand(b physics.EnergyBand) units.Flux
}

// Component is one band-pure piece of a mixture spectrum.
type Component struct {
	Label  string
	Band   physics.EnergyBand
	Flux   units.Flux
	Sample func(s *rng.Stream) units.Energy
}

// Mixture is a spectrum assembled from flux-weighted components.
//
// Sampling is constant-time: component selection is a Walker alias draw
// over the component fluxes, and each component's energy distribution is
// tabulated once at construction as an inverse-CDF quantile table
// (DESIGN.md §11). Both structures are immutable after NewMixture, so a
// Mixture may be sampled concurrently from independent streams.
type Mixture struct {
	name   string
	comps  []Component
	total  units.Flux
	pick   *rng.AliasTable
	tables []energyTable

	fpOnce sync.Once
	fp     string
}

// NewMixture builds a mixture spectrum. Components must have positive flux
// and a sampler.
func NewMixture(name string, comps []Component) (*Mixture, error) {
	if len(comps) == 0 {
		return nil, errors.New("spectrum: mixture needs at least one component")
	}
	m := &Mixture{name: name}
	weights := make([]float64, 0, len(comps))
	for _, c := range comps {
		if c.Flux <= 0 {
			return nil, errors.New("spectrum: component flux must be positive")
		}
		if c.Sample == nil {
			return nil, errors.New("spectrum: component sampler must not be nil")
		}
		m.comps = append(m.comps, c)
		m.total += c.Flux
		weights = append(weights, float64(c.Flux))
	}
	pick, err := rng.NewAliasTable(weights)
	if err != nil {
		// Unreachable: every weight is a validated positive flux.
		return nil, err
	}
	m.pick = pick
	m.tables = make([]energyTable, len(m.comps))
	for i, c := range m.comps {
		m.tables[i] = buildEnergyTable(c, i)
	}
	return m, nil
}

// Name returns the spectrum name.
func (m *Mixture) Name() string { return m.name }

// TotalFlux returns the summed component flux.
func (m *Mixture) TotalFlux() units.Flux { return m.total }

// FluxInBand sums the flux of components labeled with band b.
func (m *Mixture) FluxInBand(b physics.EnergyBand) units.Flux {
	var f units.Flux
	for _, c := range m.comps {
		if c.Band == b {
			f += c.Flux
		}
	}
	return f
}

// Sample draws a component proportionally to flux, then an energy from its
// tabulated distribution. The cost is two uniform draws and two table
// reads regardless of component count or the shape of the component
// samplers — no rejection loops run at sampling time. Band purity is
// structural: every table knot lies inside the component's declared band
// (re-drawn or clamped at construction), and each band is a contiguous
// energy interval, so interpolation cannot leave it.
func (m *Mixture) Sample(s *rng.Stream) units.Energy {
	return m.tables[m.pick.Draw(s)].draw(s)
}

// Components returns a copy of the component list.
func (m *Mixture) Components() []Component {
	return append([]Component(nil), m.comps...)
}

// Fingerprint returns a stable content hash of the mixture's sampling
// identity: per-component label, band, flux and the built energy-table
// knots. Two mixtures with equal fingerprints draw identical energy
// sequences from identical streams, which is what lets campaign plans
// compiled against one be reused for the other (internal/plan). The
// display name is deliberately excluded — identity is sampling behavior,
// not labeling. The hash is computed once and cached; Mixtures are
// immutable after NewMixture, so it can never go stale.
func (m *Mixture) Fingerprint() string {
	m.fpOnce.Do(func() {
		h := sha256.New()
		h.Write([]byte("spectrum.Mixture/v1\x00"))
		var buf [8]byte
		writeU64 := func(v uint64) {
			binary.LittleEndian.PutUint64(buf[:], v)
			h.Write(buf[:])
		}
		writeF64 := func(v float64) { writeU64(math.Float64bits(v)) }
		writeU64(uint64(len(m.comps)))
		for i, c := range m.comps {
			h.Write([]byte(c.Label))
			h.Write([]byte{0})
			writeU64(uint64(c.Band))
			writeF64(float64(c.Flux))
			for _, k := range m.tables[i].knots {
				writeF64(k)
			}
		}
		m.fp = hex.EncodeToString(h.Sum(nil))
	})
	return m.fp
}

// Energy tables -------------------------------------------------------------

const (
	// energyTableSamples is the Monte Carlo budget used to tabulate one
	// component's CDF at construction. The empirical-CDF error scales as
	// 1/sqrt(n): ~1.5% in Kolmogorov distance at 8192, well inside the
	// statistical-equivalence tolerances and paid once per component
	// instead of per draw.
	energyTableSamples = 8192
	// energyTableKnots is the number of equally-probable quantile knots
	// kept from the sorted sample; draws interpolate linearly between
	// adjacent knots. 257 knots put adjacent quantiles within a few
	// percent of each other in energy across every catalog component.
	energyTableKnots = 257
	// energyTableSeed seeds the private construction streams. Tables are a
	// pure function of (component sampler, band, index), never of any
	// caller stream, so building the same catalog spectrum twice yields
	// identical tables.
	energyTableSeed = 0x7ab1e5eed0c0ffee
	// bandRedrawAttempts bounds the per-sample band-purity rejection loop
	// during table construction, mirroring the bound the old per-draw
	// rejection used.
	bandRedrawAttempts = 64
)

// energyTable is an inverse-CDF quantile table for one band-pure
// component: knots[k] is the k/(len-1) quantile of the component's energy
// distribution. A draw picks a uniform position along the knots and
// interpolates — one uniform variate, one table read, no rejection.
type energyTable struct {
	knots []float64
}

func buildEnergyTable(c Component, idx int) energyTable {
	s := rng.NewSequence(energyTableSeed, uint64(idx))
	samples := make([]float64, energyTableSamples)
	for i := range samples {
		samples[i] = float64(sampleInBand(c, s))
	}
	sort.Float64s(samples)
	knots := make([]float64, energyTableKnots)
	last := len(samples) - 1
	for k := range knots {
		pos := float64(k) * float64(last) / float64(energyTableKnots-1)
		j := int(pos)
		if j >= last {
			knots[k] = samples[last]
			continue
		}
		f := pos - float64(j)
		knots[k] = samples[j] + f*(samples[j+1]-samples[j])
	}
	return energyTable{knots: knots}
}

// sampleInBand draws from the component sampler until the energy lands in
// the declared band, clamping after bandRedrawAttempts so a pathological
// sampler (one that never hits its band) still yields a usable in-band
// table instead of looping forever.
func sampleInBand(c Component, s *rng.Stream) units.Energy {
	for i := 0; i < bandRedrawAttempts; i++ {
		e := c.Sample(s)
		if physics.Classify(e) == c.Band {
			return e
		}
	}
	return bandClamp(c.Band)
}

// bandClamp is a representative in-band energy for pathological samplers.
func bandClamp(b physics.EnergyBand) units.Energy {
	switch b {
	case physics.BandThermal:
		return 0.0253
	case physics.BandFast:
		return 10 * units.MeV
	default:
		return 1e3
	}
}

func (t energyTable) draw(s *rng.Stream) units.Energy {
	last := len(t.knots) - 1
	u := s.Float64() * float64(last)
	j := int(u)
	if j >= last {
		j = last - 1
	}
	f := u - float64(j)
	return units.Energy(t.knots[j] + f*(t.knots[j+1]-t.knots[j]))
}

// Samplers -----------------------------------------------------------------

// MaxwellSampler returns a sampler for a Maxwellian thermal spectrum with
// temperature kT (eV).
func MaxwellSampler(kT units.Energy) func(*rng.Stream) units.Energy {
	return func(s *rng.Stream) units.Energy {
		return units.Energy(s.MaxwellEnergy(float64(kT)))
	}
}

// OneOverESampler returns a sampler for the classic 1/E slowing-down
// spectrum between lo and hi (log-uniform in energy).
func OneOverESampler(lo, hi units.Energy) func(*rng.Stream) units.Energy {
	return func(s *rng.Stream) units.Energy {
		return units.Energy(s.LogUniform(float64(lo), float64(hi)))
	}
}

// LogNormalBumpSampler returns a sampler concentrated around centerEV with
// the given width in natural-log units, truncated to [lo, hi]. Atmospheric
// and spallation fast spectra are well described by one or two such bumps
// on a lethargy plot.
func LogNormalBumpSampler(centerEV, sigmaLn float64, lo, hi units.Energy) func(*rng.Stream) units.Energy {
	mu := math.Log(centerEV)
	return func(s *rng.Stream) units.Energy {
		for i := 0; i < 64; i++ {
			e := units.Energy(math.Exp(mu + sigmaLn*s.Normal()))
			if e >= lo && e <= hi {
				return e
			}
		}
		return units.Energy(centerEV)
	}
}

// WattSampler returns a Watt fission-like fast sampler (a in MeV, b in
// 1/MeV), truncated below at loMeV.
func WattSampler(a, b, loMeV float64) func(*rng.Stream) units.Energy {
	return func(s *rng.Stream) units.Energy {
		for i := 0; i < 64; i++ {
			e := s.WattEnergy(a, b)
			if e >= loMeV {
				return units.Energy(e * 1e6)
			}
		}
		return units.Energy(loMeV * 1e6)
	}
}

// Beamlines ------------------------------------------------------------------

// Paper fluxes (§III-C): ChipIR >10 MeV flux, ChipIR thermal component, and
// the ROTAX total flux, all in n/cm²/s.
const (
	ChipIRFastFluxAbove10MeV units.Flux = 5.4e6
	ChipIRThermalFlux        units.Flux = 4.0e5
	ROTAXTotalFlux           units.Flux = 2.72e6
)

// The catalog beamlines are process-wide singletons: a Mixture is
// immutable after NewMixture and its energy tables are a pure function of
// (component sampler, band, index) on a fixed private seed, so the
// memoized instance is bit-for-bit identical to a freshly built one.
// Before memoization every one of the ~66 ChipIR()/ROTAX() call sites
// re-ran the 8192-sample table construction per component.
var (
	chipIR = sync.OnceValue(newChipIR)
	rotax  = sync.OnceValue(newROTAX)
)

// ChipIR returns the high-energy beamline spectrum: an atmospheric-like
// fast region (two lethargy bumps near 2 MeV and 80 MeV), a 1/E epithermal
// region, and the residual thermal component quoted by the paper. The
// returned Mixture is a shared immutable singleton.
func ChipIR() *Mixture { return chipIR() }

// ROTAX returns the thermal beamline: a liquid-methane-moderated
// Maxwellian carrying ~95% of the flux plus a small epithermal tail. The
// returned Mixture is a shared immutable singleton.
func ROTAX() *Mixture { return rotax() }

func newChipIR() *Mixture {
	m, err := NewMixture("ChipIR", []Component{
		{
			Label:  "thermal",
			Band:   physics.BandThermal,
			Flux:   ChipIRThermalFlux,
			Sample: MaxwellSampler(units.RoomTemperature.KT()),
		},
		{
			Label:  "epithermal 1/E",
			Band:   physics.BandEpithermal,
			Flux:   1.6e6,
			Sample: OneOverESampler(units.ThermalCutoff, units.FastThreshold),
		},
		{
			Label:  "evaporation bump",
			Band:   physics.BandFast,
			Flux:   2.2e6,
			Sample: LogNormalBumpSampler(2.2e6, 0.75, units.FastThreshold, 10*units.MeV),
		},
		{
			Label:  "spallation bump >10MeV",
			Band:   physics.BandFast,
			Flux:   ChipIRFastFluxAbove10MeV,
			Sample: LogNormalBumpSampler(90e6, 1.0, 10*units.MeV, 800*units.MeV),
		},
	})
	if err != nil {
		panic(err) // static catalog; cannot fail
	}
	return m
}

func newROTAX() *Mixture {
	const thermalShare = 0.95
	// Liquid methane at ~110 K moderates below room temperature; the
	// effective Maxwellian temperature of the emerging beam is ~130 K.
	const effectiveTemp units.Temperature = 130
	m, err := NewMixture("ROTAX", []Component{
		{
			Label:  "thermal Maxwellian",
			Band:   physics.BandThermal,
			Flux:   ROTAXTotalFlux * thermalShare,
			Sample: MaxwellSampler(effectiveTemp.KT()),
		},
		{
			Label:  "epithermal tail",
			Band:   physics.BandEpithermal,
			Flux:   ROTAXTotalFlux * (1 - thermalShare),
			Sample: OneOverESampler(units.ThermalCutoff, 100e3),
		},
	})
	if err != nil {
		panic(err)
	}
	return m
}

// Environments -----------------------------------------------------------------

// EnvironmentConfig describes a natural neutron field by its per-band
// fluxes (n/cm²/h, the natural unit at ground level).
type EnvironmentConfig struct {
	Name                  string
	FastFluxPerHour       float64
	EpithermalFluxPerHour float64
	ThermalFluxPerHour    float64
}

// NewEnvironment builds an atmospheric-like environment spectrum from
// per-band fluxes. The fast shape follows the ground-level cosmic-ray
// spectrum (bumps at ~1-2 MeV and ~100 MeV); thermals are room-temperature
// Maxwellian.
func NewEnvironment(cfg EnvironmentConfig) (*Mixture, error) {
	if cfg.FastFluxPerHour <= 0 && cfg.ThermalFluxPerHour <= 0 && cfg.EpithermalFluxPerHour <= 0 {
		return nil, errors.New("spectrum: environment needs at least one positive flux")
	}
	var comps []Component
	if cfg.ThermalFluxPerHour > 0 {
		comps = append(comps, Component{
			Label:  "thermal",
			Band:   physics.BandThermal,
			Flux:   units.FluxPerHour(cfg.ThermalFluxPerHour),
			Sample: MaxwellSampler(units.RoomTemperature.KT()),
		})
	}
	if cfg.EpithermalFluxPerHour > 0 {
		comps = append(comps, Component{
			Label:  "epithermal",
			Band:   physics.BandEpithermal,
			Flux:   units.FluxPerHour(cfg.EpithermalFluxPerHour),
			Sample: OneOverESampler(units.ThermalCutoff, units.FastThreshold),
		})
	}
	if cfg.FastFluxPerHour > 0 {
		fast := units.FluxPerHour(cfg.FastFluxPerHour)
		comps = append(comps,
			Component{
				Label:  "fast evaporation",
				Band:   physics.BandFast,
				Flux:   fast * 0.45,
				Sample: LogNormalBumpSampler(1.8e6, 0.7, units.FastThreshold, 10*units.MeV),
			},
			Component{
				Label:  "fast cascade",
				Band:   physics.BandFast,
				Flux:   fast * 0.55,
				Sample: LogNormalBumpSampler(100e6, 1.0, 10*units.MeV, 1000*units.MeV),
			},
		)
	}
	name := cfg.Name
	if name == "" {
		name = "environment"
	}
	return NewMixture(name, comps)
}

// Mono is a monoenergetic beam, useful for calibration and tests.
type Mono struct {
	name   string
	energy units.Energy
	flux   units.Flux
}

// NewMono builds a monoenergetic spectrum.
func NewMono(name string, e units.Energy, f units.Flux) (*Mono, error) {
	if e <= 0 || f <= 0 {
		return nil, errors.New("spectrum: mono requires positive energy and flux")
	}
	return &Mono{name: name, energy: e, flux: f}, nil
}

// Name returns the beam name.
func (m *Mono) Name() string { return m.name }

// Sample always returns the beam energy.
func (m *Mono) Sample(*rng.Stream) units.Energy { return m.energy }

// TotalFlux returns the beam flux.
func (m *Mono) TotalFlux() units.Flux { return m.flux }

// FluxInBand returns the flux if the beam energy lies in b, else 0.
func (m *Mono) FluxInBand(b physics.EnergyBand) units.Flux {
	if physics.Classify(m.energy) == b {
		return m.flux
	}
	return 0
}

// Fingerprint returns a stable content hash of the beam's sampling
// identity (energy and flux; the name is excluded, as for Mixture).
func (m *Mono) Fingerprint() string {
	h := sha256.New()
	h.Write([]byte("spectrum.Mono/v1\x00"))
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(float64(m.energy)))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(float64(m.flux)))
	h.Write(buf[:])
	return hex.EncodeToString(h.Sum(nil))
}

// Analysis --------------------------------------------------------------------

// LethargyHistogram samples n energies and returns a log-binned histogram
// weighted so that PerLethargy() is proportional to flux per unit lethargy
// — the representation of Fig. 2.
func LethargyHistogram(sp Spectrum, n int, bins int, s *rng.Stream) (*stats.Histogram, error) {
	if n <= 0 {
		return nil, errors.New("spectrum: sample count must be positive")
	}
	h, err := stats.NewLogHistogram(1e-3, 1e9, bins)
	if err != nil {
		return nil, err
	}
	w := float64(sp.TotalFlux()) / float64(n)
	for i := 0; i < n; i++ {
		h.AddWeighted(float64(sp.Sample(s)), w)
	}
	return h, nil
}

// EstimateBandFluxes estimates per-band fluxes by Monte Carlo, as a
// cross-check of the exact component bookkeeping.
func EstimateBandFluxes(sp Spectrum, n int, s *rng.Stream) map[physics.EnergyBand]units.Flux {
	counts := map[physics.EnergyBand]int{}
	for i := 0; i < n; i++ {
		counts[physics.Classify(sp.Sample(s))]++
	}
	out := map[physics.EnergyBand]units.Flux{}
	for b, c := range counts {
		out[b] = sp.TotalFlux() * units.Flux(float64(c)/float64(n))
	}
	return out
}
