package spectrum

import (
	"math"
	"sort"
	"testing"

	"neutronsim/internal/physics"
	"neutronsim/internal/rng"
	"neutronsim/internal/units"
)

// TestAliasBandFluxEquivalence is the statistical-equivalence bound for
// the alias sampling path: Monte Carlo per-band flux estimates from
// Mixture.Sample must land within 1% of the analytic component fluxes.
// Component selection is an exact alias draw and every energy table is
// band-pure, so the only deviation is binomial noise — 2e6 draws put 1%
// at ≳3σ for every catalog band share.
func TestAliasBandFluxEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("2e6 draws per spectrum")
	}
	env, err := NewEnvironment(EnvironmentConfig{
		Name:                  "equivalence",
		FastFluxPerHour:       13,
		EpithermalFluxPerHour: 5,
		ThermalFluxPerHour:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000000
	for i, sp := range []Spectrum{ChipIR(), ROTAX(), env} {
		got := EstimateBandFluxes(sp, n, rng.New(uint64(100+i)))
		for _, b := range []physics.EnergyBand{physics.BandThermal, physics.BandEpithermal, physics.BandFast} {
			want := sp.FluxInBand(b)
			if want == 0 {
				if got[b] != 0 {
					t.Errorf("%s %s: estimated flux %v for a band with no component", sp.Name(), b, got[b])
				}
				continue
			}
			rel := math.Abs(float64(got[b]-want)) / float64(want)
			if rel > 0.01 {
				t.Errorf("%s %s: estimated flux %v vs analytic %v (rel err %.4f > 1%%)",
					sp.Name(), b, got[b], want, rel)
			}
		}
	}
}

// rejectionSample reproduces the pre-alias Mixture.Sample draw: a linear
// flux-weighted component scan followed by the bounded band-purity
// rejection loop over the raw component sampler. The equivalence tests
// compare the tabulated alias path against this reference.
func rejectionSample(comps []Component, total units.Flux, s *rng.Stream) units.Energy {
	u := s.Float64() * float64(total)
	acc := 0.0
	comp := comps[len(comps)-1]
	for _, c := range comps {
		acc += float64(c.Flux)
		if u < acc {
			comp = c
			break
		}
	}
	for i := 0; i < 64; i++ {
		e := comp.Sample(s)
		if physics.Classify(e) == comp.Band {
			return e
		}
	}
	return bandClamp(comp.Band)
}

// ksDistance returns the two-sample Kolmogorov-Smirnov statistic
// sup|F1 - F2| for sorted samples a and b.
func ksDistance(a, b []float64) float64 {
	d := 0.0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			i++
		} else {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(a)) - float64(j)/float64(len(b)))
		if diff > d {
			d = diff
		}
	}
	return d
}

// TestAliasCDFEquivalence is the KS-style comparison from the issue: the
// energy CDF drawn through the alias + inverse-CDF tables must match the
// CDF of the old rejection sampler. The tolerance budgets ~1.5%
// table-construction noise (8192 samples per component) plus two-sample
// noise at 2×200k draws.
func TestAliasCDFEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("400k draws per spectrum")
	}
	const n = 200000
	for _, m := range []*Mixture{ChipIR(), ROTAX()} {
		alias := make([]float64, n)
		reference := make([]float64, n)
		sa := rng.New(21)
		sr := rng.New(22)
		comps := m.Components()
		for i := 0; i < n; i++ {
			alias[i] = float64(m.Sample(sa))
			reference[i] = float64(rejectionSample(comps, m.TotalFlux(), sr))
		}
		sort.Float64s(alias)
		sort.Float64s(reference)
		if d := ksDistance(alias, reference); d > 0.025 {
			t.Errorf("%s: KS distance alias vs rejection sampler = %.4f, want <= 0.025", m.Name(), d)
		}
	}
}

// TestMixtureBandClampAllBands extends the pathological-sampler coverage
// to every band: a component whose raw sampler never lands in its declared
// band must still yield in-band energies through the tabulated path.
func TestMixtureBandClampAllBands(t *testing.T) {
	cases := []struct {
		band    physics.EnergyBand
		rogue   units.Energy // always outside the declared band
		inBand  func(units.Energy) bool
		wantVal units.Energy
	}{
		{physics.BandThermal, 5 * units.MeV, units.Energy.IsThermal, 0.0253},
		{physics.BandEpithermal, 0.001, func(e units.Energy) bool { return physics.Classify(e) == physics.BandEpithermal }, 1e3},
		{physics.BandFast, 0.0253, units.Energy.IsFast, 10 * units.MeV},
	}
	for _, tc := range cases {
		t.Run(tc.band.String(), func(t *testing.T) {
			m, err := NewMixture("degenerate", []Component{{
				Label:  "mislabeled",
				Band:   tc.band,
				Flux:   1,
				Sample: func(*rng.Stream) units.Energy { return tc.rogue },
			}})
			if err != nil {
				t.Fatal(err)
			}
			s := rng.New(4)
			for i := 0; i < 100; i++ {
				e := m.Sample(s)
				if !tc.inBand(e) {
					t.Fatalf("clamped sample %v not in band %s", e, tc.band)
				}
				if e != tc.wantVal {
					t.Fatalf("clamped sample %v, want the %s clamp energy %v", e, tc.band, tc.wantVal)
				}
			}
		})
	}
}

// TestNewMixtureRejectsZeroFlux pins construction-time validation: a
// zero- or negative-flux component can never reach the alias table.
func TestNewMixtureRejectsZeroFlux(t *testing.T) {
	sampler := func(*rng.Stream) units.Energy { return 0.0253 }
	for _, flux := range []units.Flux{0, -1} {
		_, err := NewMixture("bad", []Component{
			{Label: "ok", Band: physics.BandThermal, Flux: 1, Sample: sampler},
			{Label: "bad", Band: physics.BandThermal, Flux: flux, Sample: sampler},
		})
		if err == nil {
			t.Errorf("NewMixture accepted component flux %v", flux)
		}
	}
}
