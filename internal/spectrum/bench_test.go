package spectrum

import (
	"testing"

	"neutronsim/internal/rng"
)

// benchSink stops the compiler from eliding the sampled energy.
var benchSink float64

func benchMixture(b *testing.B, m *Mixture) {
	b.Helper()
	s := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = float64(m.Sample(s))
	}
}

// BenchmarkChipIRSample measures one energy draw from the four-component
// high-energy beamline spectrum.
func BenchmarkChipIRSample(b *testing.B) { benchMixture(b, ChipIR()) }

// BenchmarkROTAXSample measures one energy draw from the thermal beamline.
func BenchmarkROTAXSample(b *testing.B) { benchMixture(b, ROTAX()) }
