package spectrum

import (
	"testing"

	"neutronsim/internal/physics"
	"neutronsim/internal/rng"
	"neutronsim/internal/units"
)

// TestCatalogSingletons pins the process-wide sharing contract: every call
// to a catalog constructor returns the same immutable instance, and the
// singleton is indistinguishable — fingerprint and drawn energies — from a
// freshly built mixture, because energy tables are derived from a fixed
// private seed rather than any caller state.
func TestCatalogSingletons(t *testing.T) {
	if ChipIR() != ChipIR() || ROTAX() != ROTAX() {
		t.Fatal("catalog constructors must return the shared instance")
	}
	for _, tc := range []struct {
		name      string
		singleton *Mixture
		fresh     *Mixture
	}{
		{"ChipIR", ChipIR(), newChipIR()},
		{"ROTAX", ROTAX(), newROTAX()},
	} {
		if tc.singleton.Fingerprint() != tc.fresh.Fingerprint() {
			t.Errorf("%s: singleton fingerprint differs from a fresh build", tc.name)
		}
		a, b := rng.New(3), rng.New(3)
		for i := 0; i < 1000; i++ {
			if tc.singleton.Sample(a) != tc.fresh.Sample(b) {
				t.Fatalf("%s: singleton and fresh build diverged at draw %d", tc.name, i)
			}
		}
	}
}

// TestMixtureFingerprint checks the fingerprint is stable across calls,
// excludes the display name, and moves when any sampling-relevant
// component attribute moves.
func TestMixtureFingerprint(t *testing.T) {
	comps := func(flux units.Flux) []Component {
		return []Component{{
			Label:  "thermal",
			Band:   physics.BandThermal,
			Flux:   flux,
			Sample: MaxwellSampler(0.0253),
		}}
	}
	build := func(name string, flux units.Flux) *Mixture {
		m, err := NewMixture(name, comps(flux))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a := build("a", 1e6)
	if a.Fingerprint() != a.Fingerprint() {
		t.Error("fingerprint not stable across calls")
	}
	if got := build("renamed", 1e6).Fingerprint(); got != a.Fingerprint() {
		t.Error("display name leaked into the fingerprint")
	}
	if got := build("a", 2e6).Fingerprint(); got == a.Fingerprint() {
		t.Error("component flux change did not move the fingerprint")
	}
	if ChipIR().Fingerprint() == ROTAX().Fingerprint() {
		t.Error("distinct catalog spectra share a fingerprint")
	}
}

// TestMonoFingerprint covers the monoenergetic spectrum: stable, name-free,
// and sensitive to energy and flux.
func TestMonoFingerprint(t *testing.T) {
	mono := func(name string, e units.Energy, f units.Flux) *Mono {
		m, err := NewMono(name, e, f)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a := mono("a", 1*units.MeV, 100)
	if a.Fingerprint() != mono("b", 1*units.MeV, 100).Fingerprint() {
		t.Error("display name leaked into the Mono fingerprint")
	}
	if a.Fingerprint() == mono("a", 2*units.MeV, 100).Fingerprint() {
		t.Error("energy change did not move the Mono fingerprint")
	}
	if a.Fingerprint() == mono("a", 1*units.MeV, 200).Fingerprint() {
		t.Error("flux change did not move the Mono fingerprint")
	}
	if a.Fingerprint() == ChipIR().Fingerprint() {
		t.Error("Mono fingerprint collided with a Mixture fingerprint")
	}
}
