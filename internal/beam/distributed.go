// Distributed shard-range execution: the beam-campaign surface of the
// cluster protocol (internal/cluster, DESIGN.md §15).
//
// A campaign's shard plan is a pure function of (Config.Seed, ShardGrain,
// runs), and every shard's tally is a pure function of (Config, shard
// index). The coordinator therefore partitions the plan into half-open
// shard-index ranges, peers execute ranges with RunRange, and the
// coordinator folds the returned per-shard tallies with AssemblePartials
// — the same merge, in the same shard order, as a single-node RunContext.
// Re-executing a range (a re-dispatch after a worker failure) is
// idempotent: it can only reproduce the identical tallies.
package beam

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"neutronsim/internal/engine"
	"neutronsim/internal/physics"
	"neutronsim/internal/stats"
	"neutronsim/internal/telemetry"
)

// ShardRange is a half-open range [Lo, Hi) of campaign shard indices.
type ShardRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Len returns the number of shards the range covers.
func (r ShardRange) Len() int { return r.Hi - r.Lo }

func (r ShardRange) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }

// Info is the deterministic decomposition of a campaign: how many runs it
// auto-tunes to, the shard grain, and the resulting shard count. Every
// node computing Info for the same Config derives identical values, which
// is what lets a coordinator partition work it will never execute.
type Info struct {
	Runs       int     `json:"runs"`
	Grain      int     `json:"grain"`
	Shards     int     `json:"shards"`
	RunSeconds float64 `json:"run_seconds"`
}

// PlanInfo compiles (or cache-hits) the campaign plan and returns the
// shard decomposition.
func PlanInfo(ctx context.Context, cfg Config) (Info, error) {
	s, err := prepare(ctx, cfg)
	if err != nil {
		return Info{}, err
	}
	return Info{
		Runs:       s.runs,
		Grain:      s.grain,
		Shards:     len(engine.Plan(s.runs, s.grain)),
		RunSeconds: s.runSeconds,
	}, nil
}

// TallyWire is one shard's tally in wire form: the exported mirror of
// shardTally, shipped un-merged so the receiving coordinator can fold
// shards in global shard order exactly as a single-node merge would.
type TallyWire struct {
	SDC          int64 `json:"sdc"`
	DUE          int64 `json:"due"`
	Masked       int64 `json:"masked"`
	Upsets       int64 `json:"upsets"`
	Reprograms   int64 `json:"reprograms"`
	Interactions int64 `json:"interactions"`
	// ByBand is indexed by band value (1..physics.NumBands; index 0 unused),
	// matching the shard tally's fixed array.
	ByBand []int64 `json:"by_band"`
	// Weighted carries the biased campaign's per-shard weighted tallies,
	// with Kahan compensation terms intact (stats.WeightedWire), so the
	// coordinator's fold is bit-identical to a local one. nil on exact
	// campaigns.
	Weighted *WeightedTallyWire `json:"weighted,omitempty"`
}

// WeightedTallyWire mirrors weightedShardTally for transport.
type WeightedTallyWire struct {
	Draws        stats.WeightedWire   `json:"draws"`
	SDC          stats.WeightedWire   `json:"sdc"`
	DUE          stats.WeightedWire   `json:"due"`
	Masked       stats.WeightedWire   `json:"masked"`
	UpsetsByBand []stats.WeightedWire `json:"upsets_by_band"`
	DUEByBand    []stats.WeightedWire `json:"due_by_band"`
}

// Partial is the result of executing one shard range: the per-shard
// tallies in shard order (Tallies[i] is shard Range.Lo+i).
type Partial struct {
	Range   ShardRange  `json:"range"`
	Tallies []TallyWire `json:"tallies"`
}

func wireOf(tc *shardTally, biased bool) TallyWire {
	w := TallyWire{
		SDC:          tc.sdc,
		DUE:          tc.due,
		Masked:       tc.masked,
		Upsets:       tc.upsets,
		Reprograms:   tc.reprograms,
		Interactions: tc.interactions,
		ByBand:       append([]int64(nil), tc.byBand[:]...),
	}
	if biased {
		ww := &WeightedTallyWire{
			Draws:        tc.w.draws.Wire(),
			SDC:          tc.w.sdc.Wire(),
			DUE:          tc.w.due.Wire(),
			Masked:       tc.w.masked.Wire(),
			UpsetsByBand: make([]stats.WeightedWire, len(tc.w.upsetsByBand)),
			DUEByBand:    make([]stats.WeightedWire, len(tc.w.dueByBand)),
		}
		for b := range tc.w.upsetsByBand {
			ww.UpsetsByBand[b] = tc.w.upsetsByBand[b].Wire()
			ww.DUEByBand[b] = tc.w.dueByBand[b].Wire()
		}
		w.Weighted = ww
	}
	return w
}

func (w *TallyWire) tally(biased bool) (shardTally, error) {
	tc := shardTally{
		sdc:          w.SDC,
		due:          w.DUE,
		masked:       w.Masked,
		upsets:       w.Upsets,
		reprograms:   w.Reprograms,
		interactions: w.Interactions,
	}
	if len(w.ByBand) != physics.NumBands+1 {
		return tc, fmt.Errorf("beam: tally by_band has %d entries, want %d", len(w.ByBand), physics.NumBands+1)
	}
	copy(tc.byBand[:], w.ByBand)
	if biased != (w.Weighted != nil) {
		return tc, fmt.Errorf("beam: tally weighted section present=%v, campaign biased=%v", w.Weighted != nil, biased)
	}
	if w.Weighted != nil {
		if len(w.Weighted.UpsetsByBand) != physics.NumBands+1 || len(w.Weighted.DUEByBand) != physics.NumBands+1 {
			return tc, fmt.Errorf("beam: weighted tally band arrays have %d/%d entries, want %d",
				len(w.Weighted.UpsetsByBand), len(w.Weighted.DUEByBand), physics.NumBands+1)
		}
		tc.w.draws = w.Weighted.Draws.Tally()
		tc.w.sdc = w.Weighted.SDC.Tally()
		tc.w.due = w.Weighted.DUE.Tally()
		tc.w.masked = w.Weighted.Masked.Tally()
		for b := range tc.w.upsetsByBand {
			tc.w.upsetsByBand[b] = w.Weighted.UpsetsByBand[b].Tally()
			tc.w.dueByBand[b] = w.Weighted.DUEByBand[b].Tally()
		}
	}
	return tc, nil
}

// RunRange executes shards [lo, hi) of the campaign's deterministic shard
// plan — the worker side of POST /v1/shards. The shard streams and run
// loop are exactly those of RunContext; only the subset of shards
// executed differs, so a shard's wire tally is identical no matter which
// node produced it.
func RunRange(ctx context.Context, cfg Config, lo, hi int) (*Partial, error) {
	ctx, span := telemetry.StartSpan(ctx, "beam.range")
	span.SetStage("run")
	span.AnnotateInt("range_lo", lo)
	span.AnnotateInt("range_hi", hi)
	defer span.End()
	s, err := prepare(ctx, cfg)
	if err != nil {
		return nil, err
	}
	var events atomic.Int64
	tallies, err := engine.MapRange(ctx, engine.Config{
		Workers: s.cfg.Shards,
		Grain:   s.grain,
		Seed:    s.cfg.Seed,
		Name:    "beam",
	}, s.runs, defaultShardGrain, lo, hi, func(_ context.Context, sh engine.Shard) (shardTally, error) {
		return runShard(s.cfg, sh, s.pl, s.lambda, &events)
	})
	if err != nil {
		return nil, err
	}
	p := &Partial{
		Range:   ShardRange{Lo: lo, Hi: hi},
		Tallies: make([]TallyWire, len(tallies)),
	}
	biased := s.cfg.Bias != nil
	for i := range tallies {
		p.Tallies[i] = wireOf(&tallies[i], biased)
	}
	return p, nil
}

// AssemblePartials reconstructs the campaign Result from shard-range
// partials. The partials must tile [0, Shards) exactly — an overlap (a
// shard delivered twice, e.g. by a timed-out range that later completed
// AND its re-dispatch) or a gap is an error, never a silent double- or
// under-count. The merge is the same shard-order fold RunContext uses, so
// the returned Result is bit-identical to a single-node run of the same
// Config.
func AssemblePartials(ctx context.Context, cfg Config, partials []*Partial) (*Result, error) {
	ctx, campaign := telemetry.StartSpan(ctx, "beam.campaign")
	defer campaign.End()
	s, err := prepare(ctx, cfg)
	if err != nil {
		return nil, err
	}
	// Same campaign-proportional calibration accounting as RunContext: the
	// assembling node answered the campaign, wherever the shards ran.
	telemetry.Count("beam.neutrons_sampled", int64(s.cfg.CalSamples))
	nShards := len(engine.Plan(s.runs, s.grain))
	sorted := append([]*Partial(nil), partials...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Range.Lo < sorted[j].Range.Lo })
	biased := s.cfg.Bias != nil
	tallies := make([]shardTally, 0, nShards)
	next := 0
	for _, p := range sorted {
		switch {
		case p == nil:
			return nil, fmt.Errorf("beam: nil partial")
		case p.Range.Lo < next:
			return nil, fmt.Errorf("beam: partial %s overlaps shard %d (double-count)", p.Range, next)
		case p.Range.Lo > next:
			return nil, fmt.Errorf("beam: shard range [%d,%d) missing from partials", next, p.Range.Lo)
		case p.Range.Hi <= p.Range.Lo || p.Range.Hi > nShards:
			return nil, fmt.Errorf("beam: partial %s outside plan of %d shards", p.Range, nShards)
		case len(p.Tallies) != p.Range.Len():
			return nil, fmt.Errorf("beam: partial %s carries %d tallies", p.Range, len(p.Tallies))
		}
		for i := range p.Tallies {
			tc, err := p.Tallies[i].tally(biased)
			if err != nil {
				return nil, fmt.Errorf("beam: shard %d: %w", p.Range.Lo+i, err)
			}
			tallies = append(tallies, tc)
		}
		next = p.Range.Hi
	}
	if next != nShards {
		return nil, fmt.Errorf("beam: shard range [%d,%d) missing from partials", next, nShards)
	}
	return s.assemble(ctx, tallies, 0)
}
