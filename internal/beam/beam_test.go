package beam

import (
	"math"
	"strings"
	"testing"

	"neutronsim/internal/device"
	"neutronsim/internal/physics"
	"neutronsim/internal/spectrum"
	"neutronsim/internal/units"
)

// boosted returns a copy of d with sensitivity raised so that unit-test
// campaigns collect statistics quickly. The boost multiplies thermal and
// fast interaction probabilities identically, preserving calibrated ratios.
func boosted(d *device.Device, factor float64) *device.Device {
	cp := *d
	cp.SensitiveFraction = math.Min(1, cp.SensitiveFraction*factor)
	return &cp
}

func TestRunValidation(t *testing.T) {
	valid := Config{
		Device:          device.K20(),
		WorkloadName:    "MxM",
		Beam:            spectrum.ChipIR(),
		DurationSeconds: 1,
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil device", func(c *Config) { c.Device = nil }},
		{"nil beam", func(c *Config) { c.Beam = nil }},
		{"no workload", func(c *Config) { c.WorkloadName = "" }},
		{"zero duration", func(c *Config) { c.DurationSeconds = 0 }},
		{"derating > 1", func(c *Config) { c.Derating = 2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := valid
			tt.mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Error("expected error")
			}
		})
	}
	if _, err := Run(Config{
		Device:          device.K20(),
		WorkloadName:    "not-a-benchmark",
		Beam:            spectrum.ChipIR(),
		DurationSeconds: 1,
	}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunConservationAndFluence(t *testing.T) {
	cfg := Config{
		Device:          boosted(device.K20(), 200),
		WorkloadName:    "MxM",
		Beam:            spectrum.ChipIR(),
		DurationSeconds: 5,
		RunSeconds:      0.05,
		Seed:            1,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.SDC + res.DUE + res.Masked; got != int64(res.Runs) {
		t.Errorf("outcomes %d != runs %d", got, res.Runs)
	}
	wantFluence := float64(spectrum.ChipIR().TotalFlux()) * 5
	if math.Abs(float64(res.Fluence)-wantFluence)/wantFluence > 0.02 {
		t.Errorf("fluence = %v, want ~%v", res.Fluence, wantFluence)
	}
	if res.Upsets == 0 || res.SDC == 0 {
		t.Errorf("boosted campaign collected no statistics: %+v", res)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{
		Device:          boosted(device.TitanX(), 200),
		WorkloadName:    "HotSpot",
		Beam:            spectrum.ChipIR(),
		DurationSeconds: 2,
		RunSeconds:      0.05,
		Seed:            7,
	}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.SDC != r2.SDC || r1.DUE != r2.DUE || r1.Upsets != r2.Upsets {
		t.Errorf("campaigns with same seed differ: %v vs %v", r1, r2)
	}
}

func TestDeratingScalesFluence(t *testing.T) {
	base := Config{
		Device:          boosted(device.K20(), 100),
		WorkloadName:    "MxM",
		Beam:            spectrum.ChipIR(),
		DurationSeconds: 2,
		RunSeconds:      0.05,
		Seed:            3,
	}
	full, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Derating = 0.5
	half, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(full.Fluence) / float64(half.Fluence)
	if math.Abs(ratio-2) > 1e-9 {
		t.Errorf("fluence derating ratio = %v, want 2", ratio)
	}
	// Error counts scale with fluence, so cross sections should agree
	// within statistics.
	if half.Upsets == 0 {
		t.Fatal("derated campaign collected nothing")
	}
	csRatio := full.SDCCrossSection.Rate / half.SDCCrossSection.Rate
	if csRatio < 0.5 || csRatio > 2 {
		t.Errorf("cross sections disagree across derating: ratio %v", csRatio)
	}
}

func TestBandAttribution(t *testing.T) {
	// At ROTAX, faults must be thermal/epithermal; at ChipIR, mostly fast.
	rotax, err := Run(Config{
		Device:          boosted(device.K20(), 400),
		WorkloadName:    "MxM",
		Beam:            spectrum.ROTAX(),
		DurationSeconds: 20,
		RunSeconds:      0.1,
		Seed:            5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rotax.FaultsByBand[physics.BandFast] != 0 {
		t.Errorf("fast faults at ROTAX: %v", rotax.FaultsByBand)
	}
	if rotax.FaultsByBand[physics.BandThermal] == 0 {
		t.Errorf("no thermal faults at ROTAX: %v", rotax.FaultsByBand)
	}
	chip, err := Run(Config{
		Device:          boosted(device.K20(), 400),
		WorkloadName:    "MxM",
		Beam:            spectrum.ChipIR(),
		DurationSeconds: 5,
		RunSeconds:      0.1,
		Seed:            6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if chip.FaultsByBand[physics.BandFast] == 0 {
		t.Errorf("no fast faults at ChipIR: %v", chip.FaultsByBand)
	}
}

func TestRunPairRatioK20(t *testing.T) {
	if testing.Short() {
		t.Skip("slow MC campaign")
	}
	// K20 target: total ratio ≈ 2.2, SDC ratio ≈ 2. Boosted device keeps
	// the ratio; verify within generous statistics.
	d := boosted(device.K20(), 300)
	pair, err := RunPair(d, "MxM", 30, 240, 11)
	if err != nil {
		t.Fatal(err)
	}
	ratio, lo, hi := pair.SDCRatio()
	if math.IsNaN(ratio) {
		t.Fatalf("no ratio: fast SDC %d thermal SDC %d", pair.Fast.SDC, pair.Thermal.SDC)
	}
	if ratio < 1.0 || ratio > 4.5 {
		t.Errorf("K20 SDC ratio = %v [%v, %v], want ~2", ratio, lo, hi)
	}
	if lo >= hi || lo > ratio || hi < ratio {
		t.Errorf("ratio CI malformed: %v [%v, %v]", ratio, lo, hi)
	}
}

func TestFPGAPersistenceAndReprogram(t *testing.T) {
	res, err := Run(Config{
		Device:          boosted(device.FPGA(), 2000),
		WorkloadName:    "MNIST",
		Beam:            spectrum.ROTAX(),
		DurationSeconds: 30,
		RunSeconds:      0.1,
		Seed:            9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SDC == 0 {
		t.Fatal("FPGA campaign observed no SDCs")
	}
	if res.Reprograms == 0 {
		t.Error("FPGA errors must trigger bitstream reprogramming")
	}
	// DUEs should be rare on the FPGA (no OS / control flow, §V).
	if res.DUE > res.SDC {
		t.Errorf("FPGA DUEs (%d) exceed SDCs (%d)", res.DUE, res.SDC)
	}
}

func TestMerge(t *testing.T) {
	d := boosted(device.K20(), 200)
	mk := func(wl string, seed uint64) *Result {
		res, err := Run(Config{
			Device:          d,
			WorkloadName:    wl,
			Beam:            spectrum.ChipIR(),
			DurationSeconds: 2,
			RunSeconds:      0.05,
			Seed:            seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk("MxM", 1), mk("HotSpot", 2)
	merged, err := Merge([]*Result{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if merged.SDC != a.SDC+b.SDC || merged.Fluence != a.Fluence+b.Fluence {
		t.Error("merge did not sum counts")
	}
	if merged.Workload != "average" {
		t.Errorf("merged workload label %q", merged.Workload)
	}
}

func TestMergeValidation(t *testing.T) {
	if _, err := Merge(nil); err == nil {
		t.Error("empty merge accepted")
	}
	r1 := &Result{Device: "A", Beam: "X", Fluence: 1}
	r2 := &Result{Device: "B", Beam: "X", Fluence: 1}
	if _, err := Merge([]*Result{r1, r2}); err == nil {
		t.Error("cross-device merge accepted")
	}
}

func TestResultString(t *testing.T) {
	res, err := Run(Config{
		Device:          boosted(device.K20(), 100),
		WorkloadName:    "MxM",
		Beam:            spectrum.ChipIR(),
		DurationSeconds: 1,
		RunSeconds:      0.1,
		Seed:            13,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	for _, want := range []string{"K20", "MxM", "ChipIR", "SDC", "DUE"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

func TestBoronFreeDeviceSeesNothingAtROTAX(t *testing.T) {
	res, err := Run(Config{
		Device:          boosted(device.BoronFree(device.K20()), 400),
		WorkloadName:    "MxM",
		Beam:            spectrum.ROTAX(),
		DurationSeconds: 10,
		RunSeconds:      0.1,
		Seed:            15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Upsets != 0 {
		t.Errorf("boron-free device upset %d times in a thermal beam", res.Upsets)
	}
	if !math.IsInf(stats_RelWidth(res), 1) && res.SDC > 0 {
		t.Errorf("unexpected SDCs: %d", res.SDC)
	}
}

// stats_RelWidth is a tiny helper keeping the test readable.
func stats_RelWidth(r *Result) float64 {
	if r.SDC == 0 {
		return math.Inf(1)
	}
	return 0
}

func TestUnitsSanity(t *testing.T) {
	// One second at full ChipIR flux on a 1 cm² die ⇒ fluence equals flux.
	d := device.FPGA() // 1 cm²
	res, err := Run(Config{
		Device:          d,
		WorkloadName:    "MNIST",
		Beam:            spectrum.ChipIR(),
		DurationSeconds: 1,
		RunSeconds:      1,
		Seed:            17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(res.Fluence)-float64(spectrum.ChipIR().TotalFlux())) > 1 {
		t.Errorf("1s fluence = %v", res.Fluence)
	}
	_ = units.Fluence(0)
}
