package beam

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"neutronsim/internal/device"
	"neutronsim/internal/plan"
	"neutronsim/internal/spectrum"
)

// rangeCfg is a small multi-shard campaign: 2000 runs over grain 64 gives
// a 32-shard plan cheap enough for the unit suite.
func rangeCfg(t *testing.T, bias *plan.Bias) Config {
	t.Helper()
	var zynq *device.Device
	for _, d := range device.All() {
		if d.Name == "Zynq7000" {
			zynq = d
		}
	}
	if zynq == nil {
		t.Fatal("Zynq7000 not in catalog")
	}
	return Config{
		Device:          zynq,
		WorkloadName:    "MxM",
		Beam:            spectrum.ROTAX(),
		DurationSeconds: 20,
		RunSeconds:      0.01,
		Seed:            42,
		CalSamples:      2000,
		ShardGrain:      64,
		Bias:            bias,
	}
}

// roundTrip pushes a Partial through its JSON wire form, as the cluster
// protocol does, to prove the encoding is lossless.
func roundTrip(t *testing.T, p *Partial) *Partial {
	t.Helper()
	blob, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("marshal partial: %v", err)
	}
	out := &Partial{}
	if err := json.Unmarshal(blob, out); err != nil {
		t.Fatalf("unmarshal partial: %v", err)
	}
	return out
}

// TestAssemblePartialsBitIdentical is the library-level distributed
// conformance gate: executing a campaign as shard ranges — in any
// partition, serialized over the wire — assembles to a Result DeepEqual
// to the single-node run. Covers the exact path (Zynq7000 carries
// persistent FPGA faults, the stateful case) and the biased path (Kahan
// compensation must survive the wire).
func TestAssemblePartialsBitIdentical(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		bias *plan.Bias
	}{
		{"exact", nil},
		{"biased", &plan.Bias{Thermal: 8}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := rangeCfg(t, tc.bias)
			direct, err := RunContext(ctx, cfg)
			if err != nil {
				t.Fatal(err)
			}
			info, err := PlanInfo(ctx, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if info.Shards < 4 {
				t.Fatalf("want a multi-shard plan, got %d shards", info.Shards)
			}
			for _, cuts := range [][]int{
				{0, info.Shards},
				{0, 1, info.Shards / 3, info.Shards - 1, info.Shards},
			} {
				var partials []*Partial
				for i := 0; i+1 < len(cuts); i++ {
					p, err := RunRange(ctx, cfg, cuts[i], cuts[i+1])
					if err != nil {
						t.Fatal(err)
					}
					partials = append(partials, roundTrip(t, p))
				}
				got, err := AssemblePartials(ctx, cfg, partials)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, direct) {
					t.Errorf("cuts %v: assembled result diverged from single-node run\n got: %+v\nwant: %+v", cuts, got, direct)
				}
			}
		})
	}
}

// TestAssemblePartialsRejectsBadCoverage pins the double-count and
// under-count protections: overlaps, gaps, truncated tallies and
// weighted/exact mismatches are errors, never silently merged.
func TestAssemblePartialsRejectsBadCoverage(t *testing.T) {
	ctx := context.Background()
	cfg := rangeCfg(t, nil)
	info, err := PlanInfo(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mid := info.Shards / 2
	a, err := RunRange(ctx, cfg, 0, mid)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRange(ctx, cfg, mid, info.Shards)
	if err != nil {
		t.Fatal(err)
	}
	overlap, err := RunRange(ctx, cfg, mid-1, info.Shards)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		ps   []*Partial
		want string
	}{
		{"gap", []*Partial{a}, "missing"},
		{"overlap", []*Partial{a, overlap}, "double-count"},
		{"duplicate", []*Partial{a, a, b}, "double-count"},
		{"empty", nil, "missing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := AssemblePartials(ctx, cfg, tc.ps); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
	t.Run("weighted-mismatch", func(t *testing.T) {
		trunc := *a
		trunc.Tallies = append([]TallyWire(nil), a.Tallies...)
		trunc.Tallies[0].Weighted = &WeightedTallyWire{}
		if _, err := AssemblePartials(ctx, cfg, []*Partial{&trunc, b}); err == nil || !strings.Contains(err.Error(), "weighted") {
			t.Errorf("want weighted-mismatch error, got %v", err)
		}
	})
	t.Run("short-tallies", func(t *testing.T) {
		trunc := *a
		trunc.Tallies = a.Tallies[:len(a.Tallies)-1]
		if _, err := AssemblePartials(ctx, cfg, []*Partial{&trunc, b}); err == nil || !strings.Contains(err.Error(), "carries") {
			t.Errorf("want tally-count error, got %v", err)
		}
	})
}
