package beam

import (
	"errors"
	"math"

	"neutronsim/internal/device"
	"neutronsim/internal/rng"
	"neutronsim/internal/spectrum"
)

// Configuration-memory scrubbing. The paper's FPGA protocol reprograms the
// bitstream only after an observed output error (§V); production SRAM-FPGA
// systems instead scrub the configuration periodically so latent upsets
// cannot accumulate. This model quantifies the trade-off.
//
// Upsets hit configuration bits at rate λ. A fraction c of them lands on
// essential bits and corrupts the output immediately — scrubbing cannot
// prevent those. The remaining (1-c) accumulate silently; a new upset can
// interact with the latent population (routing conflicts, voter defeats in
// TMR designs), producing second-order failures at rate κ·λ·N(t), where
// N(t) is the latent count since the last scrub.
type ScrubModel struct {
	// UpsetRatePerSec is the configuration upset rate λ.
	UpsetRatePerSec float64
	// CriticalFraction is the share of upsets that are immediately
	// critical (essential bits).
	CriticalFraction float64
	// InteractionCoeff is κ, the per-(upset × latent) interaction
	// probability.
	InteractionCoeff float64
	// ScrubSeconds is the time one scrub cycle takes (the fabric is
	// unavailable, or at least suspect, while it runs).
	ScrubSeconds float64
	// RecoverySeconds is the cost of one output error: detection, full
	// reconfiguration, and recomputation.
	RecoverySeconds float64
}

// Validate checks the model.
func (m ScrubModel) Validate() error {
	switch {
	case m.UpsetRatePerSec <= 0:
		return errors.New("beam: non-positive upset rate")
	case m.CriticalFraction < 0 || m.CriticalFraction > 1:
		return errors.New("beam: critical fraction out of [0,1]")
	case m.InteractionCoeff < 0:
		return errors.New("beam: negative interaction coefficient")
	case m.ScrubSeconds <= 0:
		return errors.New("beam: non-positive scrub time")
	case m.RecoverySeconds <= 0:
		return errors.New("beam: non-positive recovery time")
	}
	return nil
}

// ErrorRate returns the expected output-error rate (per second) when the
// configuration is scrubbed every periodSeconds: the irreducible critical
// rate plus the second-order rate from the average latent population
// λ(1-c)·T/2.
func (m ScrubModel) ErrorRate(periodSeconds float64) float64 {
	if periodSeconds <= 0 {
		return math.Inf(1)
	}
	lambda := m.UpsetRatePerSec
	latentAvg := lambda * (1 - m.CriticalFraction) * periodSeconds / 2
	return lambda*m.CriticalFraction + m.InteractionCoeff*lambda*latentAvg
}

// Unavailability returns the long-run fraction of time lost to scrubbing
// overhead plus error recovery at the given scrub period.
func (m ScrubModel) Unavailability(periodSeconds float64) float64 {
	if periodSeconds <= 0 {
		return 1
	}
	u := m.ScrubSeconds/periodSeconds + m.ErrorRate(periodSeconds)*m.RecoverySeconds
	if u > 1 {
		return 1
	}
	return u
}

// OptimalPeriod returns the scrub period minimizing Unavailability:
// T* = sqrt(2·δ / (κ·λ²·(1-c)·R)). When second-order failures are
// impossible (κ = 0 or c = 1), scrubbing buys nothing and the period is
// +Inf.
func (m ScrubModel) OptimalPeriod() float64 {
	k := m.InteractionCoeff * m.UpsetRatePerSec * m.UpsetRatePerSec *
		(1 - m.CriticalFraction) * m.RecoverySeconds / 2
	if k <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(m.ScrubSeconds / k)
}

// ConfigUpsetRate estimates an FPGA's configuration-memory upset rate (per
// second) in the given neutron field by Monte Carlo: the device's upset
// cross section restricted to TargetConfig faults, times the flux.
func ConfigUpsetRate(d *device.Device, sp spectrum.Spectrum, n int, s *rng.Stream) (float64, error) {
	if d == nil || sp == nil {
		return 0, errors.New("beam: nil device or spectrum")
	}
	if !d.ConfigMemory {
		return 0, errors.New("beam: device has no configuration memory")
	}
	if n <= 0 {
		return 0, errors.New("beam: sample count must be positive")
	}
	if s == nil {
		return 0, errors.New("beam: nil rng stream")
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		e := sp.Sample(s)
		p := d.InteractionProbability(e)
		if p == 0 {
			continue
		}
		if f, ok := d.InteractionUpset(e, s); ok && f.Target == device.TargetConfig {
			sum += p
		}
	}
	sigmaConfig := sum / float64(n) * d.DieAreaCm2 // cm² per device
	return sigmaConfig * float64(sp.TotalFlux()), nil
}

// PlanDuration estimates the beam seconds needed for a campaign on the
// device to reach the target relative width of the 95% Poisson interval on
// its error count (e.g. 0.4 for ±20%). It runs a short pilot estimate of
// the device's upset cross section against the beam. This is how beam time
// at a facility is budgeted.
func PlanDuration(d *device.Device, sp spectrum.Spectrum, targetRelWidth float64, pilotSamples int, s *rng.Stream) (float64, error) {
	if d == nil || sp == nil {
		return 0, errors.New("beam: nil device or spectrum")
	}
	if targetRelWidth <= 0 || targetRelWidth >= 4 {
		return 0, errors.New("beam: target relative width out of (0,4)")
	}
	if pilotSamples <= 0 {
		pilotSamples = 20000
	}
	if s == nil {
		return 0, errors.New("beam: nil rng stream")
	}
	sigma, err := d.UpsetCrossSection(sp.Sample, pilotSamples, s)
	if err != nil {
		return 0, err
	}
	if sigma <= 0 {
		return 0, errors.New("beam: device shows no sensitivity to this beam")
	}
	// Poisson 95% CI relative width ≈ 2·1.96/sqrt(N).
	needed := math.Pow(2*1.96/targetRelWidth, 2)
	ratePerSecond := float64(sigma) * float64(sp.TotalFlux())
	return needed / ratePerSecond, nil
}
