package beam

import (
	"math"
	"reflect"
	"sync/atomic"
	"testing"

	"neutronsim/internal/device"
	"neutronsim/internal/engine"
	"neutronsim/internal/faultinject"
	"neutronsim/internal/plan"
	"neutronsim/internal/rng"
	"neutronsim/internal/spectrum"
	"neutronsim/internal/workload"
)

// scalarRunShard is a frozen copy of the pre-batch run loop: one neutron
// per iteration, one uniform at a time, drawn straight off an unbuffered
// stream, with every tally written directly. The batched loop in beam.go
// must reproduce its shard tallies bit for bit — this reference is the
// "pre-batch golden" the batching acceptance criterion compares against,
// kept in the test so it can never drift along with the production code.
func scalarRunShard(t *testing.T, cfg Config, sh engine.Shard, pl *plan.CampaignPlan, lambda float64) shardTally {
	t.Helper()
	w, err := workload.New(cfg.WorkloadName)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faultinject.NewInjector(w, cfg.Seed, cfg.Inject)
	if err != nil {
		t.Fatal(err)
	}
	s := sh.Stream
	steps := w.Steps()
	expNegLambda := math.Exp(-lambda)
	poisson := func() int64 {
		if lambda <= 0 {
			return 0
		}
		if lambda >= 30 {
			return s.Poisson(lambda)
		}
		var k int64
		p := 1.0
		for {
			p *= s.Float64()
			if p <= expNegLambda {
				return k
			}
			k++
		}
	}
	var tc shardTally
	var faults, persistent []faultinject.Timed
	wCarried := 1.0
	weighted := pl.IsBiased()
	for run := 0; run < sh.Count; run++ {
		nInt := poisson()
		tc.interactions += nInt
		wRun := 1.0
		faults = faults[:0]
		faults = append(faults, persistent...)
		for k := int64(0); k < nInt; k++ {
			var f device.Fault
			var upset bool
			if weighted {
				en, w := pl.SampleInteractionWeighted(s)
				tc.w.draws.Add(w)
				wRun *= w
				f, upset = cfg.Device.InteractionUpset(en, s)
				if upset {
					tc.w.upsetsByBand[f.Band].Add(w)
				}
			} else {
				en := pl.SampleInteraction(s)
				f, upset = cfg.Device.InteractionUpset(en, s)
			}
			if !upset {
				continue
			}
			tc.upsets++
			tc.byBand[f.Band]++
			tf := faultinject.Timed{Step: s.Intn(steps), Fault: f}
			faults = append(faults, tf)
			if f.Target == device.TargetConfig {
				tf.Step = 0
				persistent = append(persistent, tf)
			}
		}
		wOut := wCarried * wRun
		if len(faults) == 0 {
			tc.masked++
			if weighted {
				tc.w.masked.Add(wOut)
			}
		} else {
			outcomeBand := faults[0].Fault.Band
			switch inj.Run(faults, s).Outcome {
			case faultinject.OutcomeSDC:
				tc.sdc++
				if weighted {
					tc.w.sdc.Add(wOut)
				}
				if len(persistent) > 0 {
					persistent = persistent[:0]
					tc.reprograms++
				}
			case faultinject.OutcomeDUE:
				tc.due++
				if weighted {
					tc.w.due.Add(wOut)
					tc.w.dueByBand[outcomeBand].Add(wOut)
				}
				if len(persistent) > 0 {
					persistent = persistent[:0]
					tc.reprograms++
				}
			default:
				tc.masked++
				if weighted {
					tc.w.masked.Add(wOut)
				}
			}
		}
		if len(persistent) == 0 {
			wCarried = 1
		} else {
			wCarried *= wRun
		}
	}
	return tc
}

// TestBatchedRunLoopMatchesScalarReference is the draw-sequence-identity
// gate for the batched run loop: over devices with and without persistent
// configuration faults, both spectra, exact and biased plans, and λ
// regimes from event-starved to interaction-rich, the batched shard
// runner must produce shard tallies reflect.DeepEqual to the frozen
// scalar reference — including the unexported Kahan compensation state of
// every weighted tally.
func TestBatchedRunLoopMatchesScalarReference(t *testing.T) {
	type tcase struct {
		name   string
		dev    func() *device.Device
		spec   spectrum.Spectrum
		bias   *plan.Bias
		lambda float64
		runs   int
	}
	fpga := func() *device.Device {
		d := device.FPGA()
		d.SensitiveFraction = 0.3 // force upsets, exercising the persistent-fault carry
		return d
	}
	k20 := func() *device.Device {
		d := device.K20()
		d.SensitiveFraction = 0.3
		return d
	}
	cases := []tcase{
		{"K20/ChipIR/auto-tuned", k20, spectrum.ChipIR(), nil, 0.05, 2000},
		{"K20/ROTAX/interaction-rich", k20, spectrum.ROTAX(), nil, 2, 800},
		{"FPGA/ChipIR/persistent-faults", fpga, spectrum.ChipIR(), nil, 0.8, 1200},
		{"FPGA/ROTAX/zero-lambda", fpga, spectrum.ROTAX(), nil, 0, 600},
		{"K20/ChipIR/biased-identity", k20, spectrum.ChipIR(), &plan.Bias{}, 0.5, 1000},
		{"K20/ROTAX/biased-thermal", k20, spectrum.ROTAX(), &plan.Bias{Thermal: 12}, 0.5, 1000},
		{"FPGA/ChipIR/biased-persistent", fpga, spectrum.ChipIR(), &plan.Bias{Thermal: 6, Fast: 0.5}, 0.8, 1200},
		{"K20/ChipIR/huge-lambda", k20, spectrum.ChipIR(), nil, 40, 50},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			d := c.dev()
			cfg := Config{
				Device:       d,
				WorkloadName: "MxM",
				Beam:         c.spec,
				Seed:         11,
				Bias:         c.bias,
			}.withDefaults()
			var pl *plan.CampaignPlan
			var err error
			if c.bias != nil {
				pl, err = plan.CompileBiased(d, c.spec, 4000, rng.New(2), *c.bias)
				if err != nil {
					t.Fatal(err)
				}
			} else {
				pl = plan.Compile(d, c.spec, 4000, rng.New(2))
			}
			// Identical shard decompositions with independently derived
			// streams: the batched runner buffers its stream, the scalar
			// reference draws unbuffered.
			var events atomic.Int64
			got, err := runShard(cfg, engine.Shard{Index: 3, Count: c.runs, Stream: engine.StreamForShard(cfg.Seed, 3)}, pl, c.lambda, &events)
			if err != nil {
				t.Fatal(err)
			}
			want := scalarRunShard(t, cfg, engine.Shard{Index: 3, Count: c.runs, Stream: engine.StreamForShard(cfg.Seed, 3)}, pl, c.lambda)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("batched shard tally diverged from scalar reference:\n got %+v\nwant %+v", got, want)
			}
			if want.interactions == 0 && c.lambda > 0 {
				t.Error("reference drew no interactions; comparison is vacuous")
			}
			// The events counter is flushed in batches but must still total
			// exactly the shard's SDC+DUE count by shard completion.
			if events.Load() != got.sdc+got.due {
				t.Errorf("events counter = %d, want sdc+due = %d", events.Load(), got.sdc+got.due)
			}
		})
	}
}
