package beam

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"

	"neutronsim/internal/device"
	"neutronsim/internal/engine"
	"neutronsim/internal/plan"
	"neutronsim/internal/rng"
	"neutronsim/internal/spectrum"
)

// benchCalSamples sizes the calibration table like a production campaign:
// large enough that a per-draw binary search is measurably more expensive
// than an O(1) alias draw.
const benchCalSamples = 120000

func benchSampler(b *testing.B, sp spectrum.Spectrum, d *device.Device) *plan.CampaignPlan {
	b.Helper()
	return plan.Compile(d, sp, benchCalSamples, rng.New(1))
}

// benchQuietDevice returns a K20 variant whose critical charge sits above
// any possible deposited charge. Interactions then never upset, so the
// run-loop benchmarks isolate the sampling and physics draw cost the
// alias fast path targets, instead of the workload-replay cost of the
// fault injector.
func benchQuietDevice() *device.Device {
	d := device.K20()
	d.QcritFC = 2e4
	d.QcritSigmaFC = 10
	return d
}

// BenchmarkInteractionSamplerDraw measures one conditioned energy draw from
// a 120k-entry calibration table — the innermost sampling operation of the
// beam run loop.
func BenchmarkInteractionSamplerDraw(b *testing.B) {
	is := benchSampler(b, spectrum.ChipIR(), device.K20())
	s := rng.New(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = is.SampleInteraction(s)
	}
}

// benchRunLoop drives the per-run shard loop directly: one op is one beam
// run (Poisson interaction count, conditioned energy draws, device physics,
// fault bookkeeping). lambda≈2 makes interactions — not the Poisson draw —
// the dominant cost, matching interaction-rich campaign configurations.
func benchRunLoop(b *testing.B, sp spectrum.Spectrum, d *device.Device, lambda float64) {
	b.Helper()
	cfg := Config{
		Device:       d,
		WorkloadName: "MxM",
		Beam:         sp,
		Seed:         7,
	}.withDefaults()
	sampler := benchSampler(b, sp, d)
	var events atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	_, err := runShard(cfg, engine.Shard{
		Index:  0,
		Count:  b.N,
		Stream: rng.New(3),
	}, sampler, lambda, &events)
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBeamCampaignRunLoopFast is the ChipIR (fast-dominated) per-run
// hot loop. This is the benchmark the BENCH_sampling.json allocs/op gate
// watches.
func BenchmarkBeamCampaignRunLoopFast(b *testing.B) {
	benchRunLoop(b, spectrum.ChipIR(), benchQuietDevice(), 2)
}

// BenchmarkBeamCampaignRunLoopThermal is the ROTAX (boron-capture) per-run
// hot loop.
func BenchmarkBeamCampaignRunLoopThermal(b *testing.B) {
	benchRunLoop(b, spectrum.ROTAX(), benchQuietDevice(), 2)
}

// BenchmarkInteractionSamplerBuild measures calibration-table construction
// (n Mixture draws + table build), the one-off cost the O(1) draws buy.
func BenchmarkInteractionSamplerBuild(b *testing.B) {
	sp := spectrum.ChipIR()
	d := device.K20()
	s := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = plan.Compile(d, sp, benchCalSamples, s)
	}
}

// BenchmarkCampaignSingleThread runs a complete single-threaded campaign —
// calibration plus the sharded run loop on the serial executor — the
// configuration the BENCH_sampling.json speedup tracks.
func BenchmarkCampaignSingleThread(b *testing.B) {
	cfg := Config{
		Device:          device.K20(),
		WorkloadName:    "MxM",
		Beam:            spectrum.ChipIR(),
		DurationSeconds: 2000,
		RunSeconds:      1,
		Seed:            7,
		CalSamples:      benchCalSamples,
		Shards:          1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// samplingBaselines records the pre-alias numbers these benchmarks
// measured at the parent commit (binary-search interaction sampler,
// rejection-loop Mixture.Sample, allocating run loop) on the reference
// host: GOMAXPROCS=1, Intel Xeon @ 2.10GHz. The snapshot reports current
// numbers as speedups against these.
var samplingBaselines = map[string]float64{
	"BenchmarkInteractionSamplerDraw":     164.2,
	"BenchmarkBeamCampaignRunLoopFast":    546.9,
	"BenchmarkBeamCampaignRunLoopThermal": 571.6,
	"BenchmarkInteractionSamplerBuild":    10675872,
	"BenchmarkCampaignSingleThread":       15821171,
}

// TestMain writes BENCH_sampling.json at the repo root when benchmarks
// run, following the BENCH_engine.json idiom. It exits non-zero if the
// run-loop benchmark reports any allocations, which is the CI allocs/op
// gate.
func TestMain(m *testing.M) {
	code := m.Run()
	bench := flag.Lookup("test.bench")
	if code == 0 && bench != nil && bench.Value.String() != "" {
		if err := writeSamplingSnapshot("../../BENCH_sampling.json"); err != nil {
			fmt.Fprintln(os.Stderr, "sampling bench snapshot:", err)
			code = 1
		}
	}
	os.Exit(code)
}

type samplingBenchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	BaselineNs  float64 `json:"pre_change_baseline_ns_per_op"`
	Speedup     float64 `json:"speedup_vs_baseline"`
}

func writeSamplingSnapshot(path string) error {
	cases := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"BenchmarkInteractionSamplerDraw", BenchmarkInteractionSamplerDraw},
		{"BenchmarkBeamCampaignRunLoopFast", BenchmarkBeamCampaignRunLoopFast},
		{"BenchmarkBeamCampaignRunLoopThermal", BenchmarkBeamCampaignRunLoopThermal},
		{"BenchmarkInteractionSamplerBuild", BenchmarkInteractionSamplerBuild},
		{"BenchmarkCampaignSingleThread", BenchmarkCampaignSingleThread},
	}
	results := map[string]samplingBenchResult{}
	for _, c := range cases {
		r := testing.Benchmark(c.fn)
		base := samplingBaselines[c.name]
		results[c.name] = samplingBenchResult{
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			BaselineNs:  base,
			Speedup:     base / float64(r.NsPerOp()),
		}
	}
	snap := struct {
		Note       string                         `json:"note"`
		GOMAXPROCS int                            `json:"gomaxprocs"`
		Baseline   string                         `json:"baseline"`
		Benchmarks map[string]samplingBenchResult `json:"benchmarks"`
	}{
		Note:       "O(1) alias sampling fast path (DESIGN.md §11); run-loop benchmarks must report 0 allocs/op",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Baseline: "pre-alias parent commit: binary-search interaction sampler, rejection-loop Mixture.Sample, " +
			"allocating run loop (GOMAXPROCS=1, Intel Xeon @ 2.10GHz)",
		Benchmarks: results,
	}
	for _, name := range []string{"BenchmarkBeamCampaignRunLoopFast", "BenchmarkBeamCampaignRunLoopThermal"} {
		if allocs := results[name].AllocsPerOp; allocs != 0 {
			return fmt.Errorf("%s reports %d allocs/op, want 0", name, allocs)
		}
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
