package beam

import (
	"math"
	"testing"
	"testing/quick"

	"neutronsim/internal/device"
	"neutronsim/internal/rng"
	"neutronsim/internal/spectrum"
)

func demoScrubModel() ScrubModel {
	return ScrubModel{
		UpsetRatePerSec:  1e-3,
		CriticalFraction: 0.1,
		InteractionCoeff: 0.05,
		ScrubSeconds:     2,
		RecoverySeconds:  120,
	}
}

func TestScrubModelValidate(t *testing.T) {
	good := demoScrubModel()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	bad := []func(*ScrubModel){
		func(m *ScrubModel) { m.UpsetRatePerSec = 0 },
		func(m *ScrubModel) { m.CriticalFraction = -0.1 },
		func(m *ScrubModel) { m.CriticalFraction = 1.5 },
		func(m *ScrubModel) { m.InteractionCoeff = -1 },
		func(m *ScrubModel) { m.ScrubSeconds = 0 },
		func(m *ScrubModel) { m.RecoverySeconds = 0 },
	}
	for i, mutate := range bad {
		m := demoScrubModel()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestErrorRateGrowsWithPeriod(t *testing.T) {
	m := demoScrubModel()
	if m.ErrorRate(10) >= m.ErrorRate(1000) {
		t.Error("longer scrub periods must raise the error rate")
	}
	// The critical rate is the floor.
	floor := m.UpsetRatePerSec * m.CriticalFraction
	if got := m.ErrorRate(1e-6); math.Abs(got-floor)/floor > 0.01 {
		t.Errorf("tiny period error rate %v, want ~%v", got, floor)
	}
	if !math.IsInf(m.ErrorRate(0), 1) {
		t.Error("zero period should be infinite")
	}
}

func TestOptimalPeriodMinimizesUnavailability(t *testing.T) {
	m := demoScrubModel()
	opt := m.OptimalPeriod()
	if math.IsInf(opt, 1) || opt <= 0 {
		t.Fatalf("optimal period = %v", opt)
	}
	u := m.Unavailability(opt)
	for _, factor := range []float64{0.3, 0.7, 1.5, 3} {
		if m.Unavailability(opt*factor) < u-1e-12 {
			t.Errorf("period %v beats the optimum %v", opt*factor, opt)
		}
	}
}

func TestOptimalPeriodProperty(t *testing.T) {
	f := func(rawRate, rawScrub float64) bool {
		m := demoScrubModel()
		m.UpsetRatePerSec = 1e-5 + math.Abs(math.Mod(rawRate, 0.01))
		m.ScrubSeconds = 0.5 + math.Abs(math.Mod(rawScrub, 10))
		opt := m.OptimalPeriod()
		if math.IsInf(opt, 1) {
			return true
		}
		u := m.Unavailability(opt)
		return u <= m.Unavailability(opt*1.3)+1e-12 && u <= m.Unavailability(opt/1.3)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHarsherBeamNeedsFasterScrubbing(t *testing.T) {
	m := demoScrubModel()
	harsh := m
	harsh.UpsetRatePerSec *= 10
	if harsh.OptimalPeriod() >= m.OptimalPeriod() {
		t.Error("10x upset rate should shorten the optimal scrub period")
	}
}

func TestNoSecondOrderMeansNoScrubbing(t *testing.T) {
	m := demoScrubModel()
	m.InteractionCoeff = 0
	if !math.IsInf(m.OptimalPeriod(), 1) {
		t.Error("without interactions, scrubbing buys nothing")
	}
	m = demoScrubModel()
	m.CriticalFraction = 1
	if !math.IsInf(m.OptimalPeriod(), 1) {
		t.Error("all-critical upsets cannot be prevented by scrubbing")
	}
}

func TestConfigUpsetRate(t *testing.T) {
	s := rng.New(1)
	d := device.FPGA()
	d.SensitiveFraction = 1 // statistics for the unit test
	rate, err := ConfigUpsetRate(d, spectrum.ROTAX(), 100000, s)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 {
		t.Error("FPGA at ROTAX should accumulate config upsets")
	}
	// Boron-free FPGA sees nothing at a thermal beam.
	free := device.BoronFree(device.FPGA())
	free.ConfigMemory = true
	rate0, err := ConfigUpsetRate(free, spectrum.ROTAX(), 20000, s)
	if err != nil {
		t.Fatal(err)
	}
	if rate0 != 0 {
		t.Errorf("boron-free config upset rate = %v", rate0)
	}
}

func TestConfigUpsetRateValidation(t *testing.T) {
	s := rng.New(2)
	if _, err := ConfigUpsetRate(nil, spectrum.ROTAX(), 10, s); err == nil {
		t.Error("nil device accepted")
	}
	if _, err := ConfigUpsetRate(device.K20(), spectrum.ROTAX(), 10, s); err == nil {
		t.Error("non-FPGA device accepted")
	}
	if _, err := ConfigUpsetRate(device.FPGA(), spectrum.ROTAX(), 0, s); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := ConfigUpsetRate(device.FPGA(), spectrum.ROTAX(), 10, nil); err == nil {
		t.Error("nil stream accepted")
	}
}

func TestPlanDuration(t *testing.T) {
	s := rng.New(3)
	d := device.K20()
	// ±20% target takes 4x the beam time of ±40%.
	t20, err := PlanDuration(d, spectrum.ROTAX(), 0.4, 30000, s)
	if err != nil {
		t.Fatal(err)
	}
	t40, err := PlanDuration(d, spectrum.ROTAX(), 0.8, 30000, s)
	if err != nil {
		t.Fatal(err)
	}
	ratio := t20 / t40
	if ratio < 3 || ratio > 5.5 {
		t.Errorf("halving the width should ~4x the time: ratio %v", ratio)
	}
	// ROTAX on a thermally insensitive device takes far longer than on a
	// sensitive one.
	tPhi, err := PlanDuration(device.XeonPhi(), spectrum.ROTAX(), 0.4, 30000, s)
	if err != nil {
		t.Fatal(err)
	}
	if tPhi <= t20 {
		t.Errorf("XeonPhi (%v s) should need more ROTAX time than K20 (%v s)", tPhi, t20)
	}
}

func TestPlanDurationValidation(t *testing.T) {
	s := rng.New(4)
	if _, err := PlanDuration(nil, spectrum.ROTAX(), 0.4, 10, s); err == nil {
		t.Error("nil device accepted")
	}
	if _, err := PlanDuration(device.K20(), spectrum.ROTAX(), 0, 10, s); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := PlanDuration(device.K20(), spectrum.ROTAX(), 0.4, 10, nil); err == nil {
		t.Error("nil stream accepted")
	}
	if _, err := PlanDuration(device.BoronFree(device.K20()), spectrum.ROTAX(), 0.4, 5000, s); err == nil {
		t.Error("insensitive device should error (infinite beam time)")
	}
}
